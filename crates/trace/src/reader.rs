//! NDJSON trace parsing: `--trace` output back into typed
//! [`Event`]s.
//!
//! The wire format is one JSON object per line with a `"ev"` field
//! naming the event type; field elision follows the writer exactly
//! (`count` omitted when 1, `src` omitted for non-migrations, and
//! non-finite floats rendered as `null`). Two modes:
//!
//! * [`ReadMode::Strict`] — the first malformed line aborts with a
//!   [`TraceError`] carrying 1-based line and column numbers. Every
//!   line the writer can produce parses in this mode.
//! * [`ReadMode::Lossy`] — malformed lines are skipped and collected as
//!   [`TraceDiagnostic`]s, so a truncated or concatenated trace still
//!   yields its parseable prefix/suffix.

use loadsteal_obs::json::{parse, JsonValue};
use loadsteal_obs::{
    Event, JobEventKind, PanicRecord, SimEventKind, SpanRecord, TraceHeader, TAIL_SAMPLE_DEPTH,
    TRACE_SCHEMA,
};

/// How to treat malformed lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadMode {
    /// Fail on the first malformed line.
    Strict,
    /// Skip malformed lines, collecting diagnostics.
    Lossy,
}

/// A fatal parse failure (strict mode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// 1-based byte column within the line where parsing failed (best
    /// effort: 1 for semantic errors that concern the whole line).
    pub column: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for TraceError {}

/// A skipped line (lossy mode): same shape as [`TraceError`] but
/// non-fatal.
pub type TraceDiagnostic = TraceError;

/// The outcome of reading a trace.
#[derive(Debug, Clone, Default)]
pub struct ParsedTrace {
    /// The trace's self-describing header, when one was present. For
    /// concatenated traces the *first* header wins; later header lines
    /// still count toward [`ParsedTrace::lines`].
    pub header: Option<TraceHeader>,
    /// Every successfully parsed event, in input order.
    pub events: Vec<Event>,
    /// Lines skipped in lossy mode (always empty in strict mode —
    /// strict fails instead).
    pub skipped: Vec<TraceDiagnostic>,
    /// Per-span profiler summaries (`{"ev":"span",…}` lines, appended
    /// by profiled runs), in input order.
    pub spans: Vec<SpanRecord>,
    /// Panic records (`{"ev":"panic",…}` — the terminal line of a
    /// flight-recorder crash dump), in input order.
    pub panics: Vec<PanicRecord>,
    /// Total non-blank lines seen (parsed + skipped).
    pub lines: usize,
}

/// One parsed NDJSON line: an event, the stream's header, a span
/// summary, or a crash-dump panic record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// An ordinary [`Event`] line.
    Event(Event),
    /// A `{"ev":"header",...}` line.
    Header(TraceHeader),
    /// A `{"ev":"span",...}` profiler summary line.
    Span(SpanRecord),
    /// A `{"ev":"panic",...}` crash-dump terminator.
    Panic(PanicRecord),
}

impl ParsedTrace {
    /// Fold one parsed record in (events append; the first header
    /// wins).
    fn absorb(&mut self, record: Record) {
        match record {
            Record::Event(ev) => self.events.push(ev),
            Record::Header(h) => {
                if self.header.is_none() {
                    self.header = Some(h);
                }
            }
            Record::Span(s) => self.spans.push(s),
            Record::Panic(p) => self.panics.push(p),
        }
    }
}

/// Parse a complete NDJSON document held in memory.
pub fn read_str(text: &str, mode: ReadMode) -> Result<ParsedTrace, TraceError> {
    read_lines(text.lines(), mode)
}

/// Parse a raw byte buffer (e.g. straight from [`std::fs::read`])
/// without requiring the whole file to be valid UTF-8.
///
/// Lines are split on `\n` (a trailing `\r` is trimmed, so CRLF traces
/// work). A line that is not valid UTF-8 is reported with the 1-based
/// byte column of the first invalid byte — in strict mode as the fatal
/// [`TraceError`], in lossy mode as a diagnostic while every decodable
/// line still parses. This keeps a trace with one corrupt region
/// readable instead of failing wholesale the way
/// `String::from_utf8(file)?` would.
pub fn read_bytes(bytes: &[u8], mode: ReadMode) -> Result<ParsedTrace, TraceError> {
    let mut out = ParsedTrace::default();
    for (idx, raw) in bytes.split(|&b| b == b'\n').enumerate() {
        let raw = raw.strip_suffix(b"\r").unwrap_or(raw);
        let line = match std::str::from_utf8(raw) {
            Ok(line) => line,
            Err(e) => {
                out.lines += 1;
                let diag = TraceError {
                    line: idx + 1,
                    column: e.valid_up_to() + 1,
                    message: "invalid UTF-8".to_owned(),
                };
                match mode {
                    ReadMode::Strict => return Err(diag),
                    ReadMode::Lossy => {
                        out.skipped.push(diag);
                        continue;
                    }
                }
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        out.lines += 1;
        match parse_record(line) {
            Ok(record) => out.absorb(record),
            Err((column, message)) => {
                let diag = TraceError {
                    line: idx + 1,
                    column,
                    message,
                };
                match mode {
                    ReadMode::Strict => return Err(diag),
                    ReadMode::Lossy => out.skipped.push(diag),
                }
            }
        }
    }
    Ok(out)
}

/// Parse from any iterator of lines (e.g. `BufRead::lines()` output
/// already unwrapped, or `str::lines`). Blank lines are skipped in both
/// modes — NDJSON writers commonly end with a trailing newline.
pub fn read_lines<'a, I>(lines: I, mode: ReadMode) -> Result<ParsedTrace, TraceError>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut out = ParsedTrace::default();
    for (idx, line) in lines.into_iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.lines += 1;
        match parse_record(line) {
            Ok(record) => out.absorb(record),
            Err((column, message)) => {
                let diag = TraceError {
                    line: idx + 1,
                    column,
                    message,
                };
                match mode {
                    ReadMode::Strict => return Err(diag),
                    ReadMode::Lossy => out.skipped.push(diag),
                }
            }
        }
    }
    Ok(out)
}

/// Parse one NDJSON line into an event. Header lines are an error
/// here — use [`read_str`]/[`read_bytes`]/[`parse_record`], which
/// surface them as [`ParsedTrace::header`]. Errors are
/// `(column, message)` with a 1-based column.
pub fn parse_line(line: &str) -> Result<Event, (usize, String)> {
    match parse_record(line)? {
        Record::Event(ev) => Ok(ev),
        Record::Header(_) => Err((
            1,
            "header line is not an event (readers surface it as ParsedTrace::header)".to_owned(),
        )),
        Record::Span(_) => Err((
            1,
            "span summary line is not an event (readers surface it as ParsedTrace::spans)"
                .to_owned(),
        )),
        Record::Panic(_) => Err((
            1,
            "panic record line is not an event (readers surface it as ParsedTrace::panics)"
                .to_owned(),
        )),
    }
}

fn parse_header(v: &JsonValue) -> Result<TraceHeader, (usize, String)> {
    if let Some(schema) = v.get("schema") {
        let schema = schema
            .as_str()
            .ok_or_else(|| (1, "field \"schema\" is not a string".to_owned()))?;
        if schema != TRACE_SCHEMA {
            return Err((
                1,
                format!("unsupported trace schema {schema:?} (expected {TRACE_SCHEMA:?})"),
            ));
        }
    }
    let model = match v.get("model") {
        None => None,
        Some(m) => Some(
            m.as_str()
                .ok_or_else(|| (1, "field \"model\" is not a string".to_owned()))?
                .to_owned(),
        ),
    };
    Ok(TraceHeader {
        model,
        n: opt_u64_field(v, "n")?,
        seed: opt_u64_field(v, "seed")?,
        runs: opt_u64_field(v, "runs")?,
        sample: opt_u64_field(v, "sample")?,
    })
}

/// Parse one NDJSON line into a [`Record`] (event or header). Errors
/// are `(column, message)` with a 1-based column.
pub fn parse_record(line: &str) -> Result<Record, (usize, String)> {
    let v = parse(line).map_err(|e| (e.offset + 1, e.message))?;
    let ev = v
        .get("ev")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| (1, "missing or non-string \"ev\" field".to_owned()))?;
    if ev == "header" {
        return parse_header(&v).map(Record::Header);
    }
    if ev == "span" {
        return parse_span(&v).map(Record::Span);
    }
    if ev == "panic" {
        return parse_panic(&v).map(Record::Panic);
    }
    parse_event(&v, ev).map(Record::Event)
}

fn parse_span(v: &JsonValue) -> Result<SpanRecord, (usize, String)> {
    let path = v
        .get("path")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| (1, "missing or non-string \"path\" field".to_owned()))?
        .to_owned();
    Ok(SpanRecord {
        path,
        count: u64_field(v, "count")?,
        total_us: f64_field(v, "total_us")?,
        self_us: f64_field(v, "self_us")?,
        p50_us: f64_field(v, "p50_us")?,
        p99_us: f64_field(v, "p99_us")?,
    })
}

fn parse_panic(v: &JsonValue) -> Result<PanicRecord, (usize, String)> {
    let message = v
        .get("message")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| (1, "missing or non-string \"message\" field".to_owned()))?
        .to_owned();
    let thread = match v.get("thread") {
        None => None,
        Some(t) => Some(
            t.as_str()
                .ok_or_else(|| (1, "field \"thread\" is not a string".to_owned()))?
                .to_owned(),
        ),
    };
    Ok(PanicRecord {
        message,
        thread,
        buffered: u64_field(v, "buffered")?,
        dropped: u64_field(v, "dropped")?,
    })
}

fn parse_event(v: &JsonValue, ev: &str) -> Result<Event, (usize, String)> {
    let kind = match ev {
        "solver_step" => {
            return Ok(Event::SolverStep {
                accepted: bool_field(v, "accepted")?,
                t: f64_field(v, "t")?,
                h: f64_field(v, "h")?,
                err_norm: f64_field(v, "err_norm")?,
            })
        }
        "solver_steady" => {
            return Ok(Event::SolverSteady {
                t: f64_field(v, "t")?,
                residual: f64_field(v, "residual")?,
            })
        }
        "solver_done" => {
            return Ok(Event::SolverDone {
                accepted: u64_field(v, "accepted")?,
                rejected: u64_field(v, "rejected")?,
                min_h: f64_field(v, "min_h")?,
                max_h: f64_field(v, "max_h")?,
                max_reject_streak: u64_field(v, "max_reject_streak")?,
                converged: bool_field(v, "converged")?,
                residual: f64_field(v, "residual")?,
            })
        }
        "heartbeat" => {
            return Ok(Event::Heartbeat {
                t: f64_field(v, "t")?,
                events: u64_field(v, "events")?,
                tasks_in_system: u64_field(v, "tasks_in_system")?,
            })
        }
        "replicate_done" => {
            return Ok(Event::ReplicateDone {
                seed: u64_field(v, "seed")?,
                wall_ms: f64_field(v, "wall_ms")?,
                events: u64_field(v, "events")?,
                events_per_sec: f64_field(v, "events_per_sec")?,
            })
        }
        "tail_sample" => return parse_tail_sample(v),
        "job_arrival" => return parse_job(v, JobEventKind::Arrival),
        "job_migrate" => return parse_job(v, JobEventKind::Migrate),
        "job_service_start" => return parse_job(v, JobEventKind::ServiceStart),
        "job_completion" => return parse_job(v, JobEventKind::Completion),
        "arrival" => SimEventKind::Arrival,
        "completion" => SimEventKind::Completion,
        "steal_attempt" => SimEventKind::StealAttempt,
        "steal_success" => SimEventKind::StealSuccess,
        "migration" => SimEventKind::Migration,
        other => return Err((1, format!("unknown event kind {other:?}"))),
    };
    Ok(Event::Sim {
        kind,
        t: f64_field(v, "t")?,
        proc: u32_field(v, "proc")?,
        src: opt_u32_field(v, "src")?,
        count: match v.get("count") {
            // The writer elides unit counts.
            None => 1,
            Some(_) => u32_field(v, "count")?,
        },
    })
}

fn parse_tail_sample(v: &JsonValue) -> Result<Event, (usize, String)> {
    let t = f64_field(v, "t")?;
    let arr = match v.get("s") {
        Some(JsonValue::Arr(items)) => items,
        Some(_) => return Err((1, "field \"s\" is not an array".to_owned())),
        None => return Err(missing("s")),
    };
    if arr.len() > TAIL_SAMPLE_DEPTH {
        return Err((
            1,
            format!(
                "field \"s\" carries {} tails (this reader supports at most {TAIL_SAMPLE_DEPTH})",
                arr.len()
            ),
        ));
    }
    // The writer elides trailing zeros; absent depths really are 0.
    let mut tails = [0.0f64; TAIL_SAMPLE_DEPTH];
    for (i, item) in arr.iter().enumerate() {
        tails[i] = match item {
            // Same null → NaN convention as every other float field.
            JsonValue::Null => f64::NAN,
            other => other
                .as_f64()
                .ok_or_else(|| (1, format!("entry {} of \"s\" is not a number", i + 1)))?,
        };
    }
    Ok(Event::TailSample {
        t,
        tails,
        depth: arr.len() as u32,
    })
}

fn parse_job(v: &JsonValue, kind: JobEventKind) -> Result<Event, (usize, String)> {
    Ok(Event::Job {
        kind,
        t: f64_field(v, "t")?,
        job: u64_field(v, "job")?,
        proc: u32_field(v, "proc")?,
        src: opt_u32_field(v, "src")?,
        delay: match v.get("delay") {
            // The writer elides zero delays (and non-migration stages
            // never carry one).
            None => 0.0,
            Some(_) => f64_field(v, "delay")?,
        },
    })
}

// ---------------------------------------------------------------------
// Field accessors. Column 1 for all semantic errors — the JSON parser
// has already validated the grammar, so byte-precise positions only
// exist for syntax errors.

fn missing(key: &str) -> (usize, String) {
    (1, format!("missing field {key:?}"))
}

fn f64_field(v: &JsonValue, key: &str) -> Result<f64, (usize, String)> {
    match v.get(key) {
        // The writer renders non-finite floats as null; reading them
        // back as NaN keeps "writer lines always parse" true while
        // still quarantining the value (NaN fails every comparison).
        Some(JsonValue::Null) => Ok(f64::NAN),
        Some(val) => val
            .as_f64()
            .ok_or_else(|| (1, format!("field {key:?} is not a number"))),
        None => Err(missing(key)),
    }
}

fn u64_field(v: &JsonValue, key: &str) -> Result<u64, (usize, String)> {
    v.get(key)
        .ok_or_else(|| missing(key))?
        .as_u64()
        .ok_or_else(|| (1, format!("field {key:?} is not a non-negative integer")))
}

fn u32_field(v: &JsonValue, key: &str) -> Result<u32, (usize, String)> {
    let n = u64_field(v, key)?;
    u32::try_from(n).map_err(|_| (1, format!("field {key:?} overflows u32 ({n})")))
}

fn opt_u32_field(v: &JsonValue, key: &str) -> Result<Option<u32>, (usize, String)> {
    match v.get(key) {
        None => Ok(None),
        Some(_) => u32_field(v, key).map(Some),
    }
}

fn opt_u64_field(v: &JsonValue, key: &str) -> Result<Option<u64>, (usize, String)> {
    match v.get(key) {
        None => Ok(None),
        Some(_) => u64_field(v, key).map(Some),
    }
}

fn bool_field(v: &JsonValue, key: &str) -> Result<bool, (usize, String)> {
    v.get(key)
        .ok_or_else(|| missing(key))?
        .as_bool()
        .ok_or_else(|| (1, format!("field {key:?} is not a boolean")))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One of every event the writer can produce, including the field
    /// elision cases (`count == 1`, `src` absent) and a non-finite
    /// float rendered as null.
    fn exemplars() -> Vec<Event> {
        vec![
            Event::SolverStep {
                accepted: true,
                t: 0.0,
                h: 0.1,
                err_norm: 0.42,
            },
            Event::SolverStep {
                accepted: false,
                t: 1.5e-3,
                h: 1e-9,
                err_norm: 17.0,
            },
            Event::SolverSteady {
                t: 12.5,
                residual: 3.2e-11,
            },
            Event::SolverDone {
                accepted: 1000,
                rejected: 17,
                min_h: 1e-6,
                max_h: 2.0,
                max_reject_streak: 4,
                converged: true,
                residual: 9.9e-13,
            },
            Event::Sim {
                kind: SimEventKind::Arrival,
                t: 0.25,
                proc: 0,
                src: None,
                count: 1,
            },
            Event::Sim {
                kind: SimEventKind::Completion,
                t: 1.75,
                proc: 31,
                src: None,
                count: 1,
            },
            Event::Sim {
                kind: SimEventKind::StealAttempt,
                t: 2.0,
                proc: 5,
                src: None,
                count: 1,
            },
            Event::Sim {
                kind: SimEventKind::StealSuccess,
                t: 2.0,
                proc: 5,
                src: None,
                count: 1,
            },
            Event::Sim {
                kind: SimEventKind::Migration,
                t: 2.0,
                proc: 5,
                src: Some(9),
                count: 3,
            },
            Event::Job {
                kind: JobEventKind::Arrival,
                t: 0.25,
                job: 0,
                proc: 0,
                src: None,
                delay: 0.0,
            },
            Event::Job {
                kind: JobEventKind::Migrate,
                t: 1.0,
                job: 7,
                proc: 5,
                src: Some(9),
                delay: 0.75,
            },
            Event::Job {
                kind: JobEventKind::Migrate,
                t: 1.25,
                job: 7,
                proc: 2,
                src: Some(5),
                delay: 0.0, // instantaneous hop: delay elided on the wire
            },
            Event::Job {
                kind: JobEventKind::ServiceStart,
                t: 1.5,
                job: 7,
                proc: 2,
                src: None,
                delay: 0.0,
            },
            Event::Job {
                kind: JobEventKind::Completion,
                t: 2.5,
                job: 7,
                proc: 2,
                src: None,
                delay: 0.0,
            },
            Event::TailSample {
                t: 10.0,
                tails: [0.921875, 0.5, 0.125, 0.03125, 0.0, 0.0, 0.0, 0.0],
                depth: 4,
            },
            Event::TailSample {
                // An empty system: every tail is zero, so the writer
                // elides the whole vector.
                t: 0.5,
                tails: [0.0; 8],
                depth: 0,
            },
            Event::Heartbeat {
                t: 100.0,
                events: 65536,
                tasks_in_system: 42,
            },
            Event::ReplicateDone {
                seed: u64::MAX,
                wall_ms: 15.25,
                events: 123456789,
                events_per_sec: 8.1e6,
            },
        ]
    }

    #[test]
    fn every_writer_line_parses_strict_and_round_trips() {
        for ev in exemplars() {
            let line = ev.to_json_line();
            let back = parse_line(&line).unwrap_or_else(|e| panic!("{line}: {e:?}"));
            assert_eq!(ev, back, "{line}");
        }
    }

    #[test]
    fn full_document_round_trips_in_strict_mode() {
        let events = exemplars();
        let doc: String = events.iter().map(|e| e.to_json_line() + "\n").collect();
        let parsed = read_str(&doc, ReadMode::Strict).unwrap();
        assert_eq!(parsed.events, events);
        assert_eq!(parsed.lines, events.len());
        assert!(parsed.skipped.is_empty());
    }

    #[test]
    fn non_finite_float_reads_back_as_nan() {
        // The writer renders a non-finite residual as null.
        let line = Event::SolverSteady {
            t: 1.0,
            residual: f64::INFINITY,
        }
        .to_json_line();
        assert!(line.contains("null"), "{line}");
        match parse_line(&line).unwrap() {
            Event::SolverSteady { t, residual } => {
                assert_eq!(t, 1.0);
                assert!(residual.is_nan());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn strict_mode_reports_line_and_column() {
        let doc = "{\"ev\":\"arrival\",\"t\":0.5,\"proc\":0}\n{\"ev\": nope}\n";
        let err = read_str(doc, ReadMode::Strict).unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.column, 8); // byte offset 7 of the bad token, 1-based
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn lossy_mode_skips_bad_lines_and_keeps_good_ones() {
        let doc = "\
{\"ev\":\"arrival\",\"t\":0.5,\"proc\":0}
garbage
{\"ev\":\"mystery\",\"t\":1.0}
{\"ev\":\"completion\",\"t\":1.5,\"proc\":0}
{\"ev\":\"arrival\",\"t\":2.0}
";
        let parsed = read_str(doc, ReadMode::Lossy).unwrap();
        assert_eq!(parsed.events.len(), 2);
        assert_eq!(parsed.lines, 5);
        assert_eq!(parsed.skipped.len(), 3);
        assert_eq!(parsed.skipped[0].line, 2); // garbage
        assert_eq!(parsed.skipped[1].line, 3); // unknown kind
        assert_eq!(parsed.skipped[2].line, 5); // missing proc
        assert!(parsed.skipped[2].message.contains("proc"));
    }

    #[test]
    fn blank_lines_are_ignored_in_both_modes() {
        let doc = "\n\n{\"ev\":\"arrival\",\"t\":0.5,\"proc\":3}\n\n";
        for mode in [ReadMode::Strict, ReadMode::Lossy] {
            let parsed = read_str(doc, mode).unwrap();
            assert_eq!(parsed.events.len(), 1);
            assert_eq!(parsed.lines, 1);
        }
    }

    #[test]
    fn semantic_checks_reject_bad_fields() {
        for (line, needle) in [
            (r#"{"t":1.0,"proc":0}"#, "ev"),
            (r#"{"ev":"arrival","proc":0}"#, "\"t\""),
            (r#"{"ev":"arrival","t":1.0,"proc":-1}"#, "proc"),
            (r#"{"ev":"arrival","t":1.0,"proc":4294967296}"#, "overflows"),
            (r#"{"ev":"arrival","t":true,"proc":0}"#, "not a number"),
            (
                r#"{"ev":"solver_step","t":1.0,"h":0.1,"err_norm":0.2}"#,
                "accepted",
            ),
            (
                r#"{"ev":"heartbeat","t":1.0,"events":2.5,"tasks_in_system":0}"#,
                "events",
            ),
        ] {
            let err = parse_line(line).unwrap_err();
            assert!(err.1.contains(needle), "{line} -> {err:?}");
        }
    }

    #[test]
    fn job_events_require_identity() {
        let (_, msg) = parse_line(r#"{"ev":"job_arrival","t":1.0,"proc":0}"#).unwrap_err();
        assert!(msg.contains("job"), "{msg}");
        // Absent delay defaults to zero; absent src to None.
        match parse_line(r#"{"ev":"job_migrate","t":1.0,"job":4,"proc":0}"#).unwrap() {
            Event::Job {
                kind: JobEventKind::Migrate,
                job,
                src,
                delay,
                ..
            } => {
                assert_eq!(job, 4);
                assert_eq!(src, None);
                assert_eq!(delay, 0.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tail_sample_parses_with_padding_null_and_depth_cap() {
        // Short vectors zero-pad; the depth is the wire length.
        match parse_line(r#"{"ev":"tail_sample","t":2.5,"s":[0.75,0.25]}"#).unwrap() {
            Event::TailSample { t, tails, depth } => {
                assert_eq!(t, 2.5);
                assert_eq!(depth, 2);
                assert_eq!(&tails[..3], &[0.75, 0.25, 0.0]);
            }
            other => panic!("{other:?}"),
        }
        // Nulls (non-finite on the writer side) come back as NaN.
        match parse_line(r#"{"ev":"tail_sample","t":1.0,"s":[null]}"#).unwrap() {
            Event::TailSample { tails, depth, .. } => {
                assert_eq!(depth, 1);
                assert!(tails[0].is_nan());
            }
            other => panic!("{other:?}"),
        }
        // Semantic failures: missing/malformed vector, oversized depth.
        let (_, msg) = parse_line(r#"{"ev":"tail_sample","t":1.0}"#).unwrap_err();
        assert!(msg.contains("\"s\""), "{msg}");
        let (_, msg) = parse_line(r#"{"ev":"tail_sample","t":1.0,"s":0.5}"#).unwrap_err();
        assert!(msg.contains("not an array"), "{msg}");
        let (_, msg) = parse_line(r#"{"ev":"tail_sample","t":1.0,"s":[0.5,"x"]}"#).unwrap_err();
        assert!(msg.contains("entry 2"), "{msg}");
        let nine = r#"{"ev":"tail_sample","t":1.0,"s":[1,1,1,1,1,1,1,1,1]}"#;
        let (_, msg) = parse_line(nine).unwrap_err();
        assert!(msg.contains("at most 8"), "{msg}");
    }

    #[test]
    fn unknown_extra_fields_are_tolerated() {
        // Forward compatibility: a newer writer may add fields.
        let ev = parse_line(r#"{"ev":"arrival","t":1.0,"proc":0,"future_field":"x"}"#).unwrap();
        assert!(matches!(
            ev,
            Event::Sim {
                kind: SimEventKind::Arrival,
                ..
            }
        ));
    }

    #[test]
    fn seeds_above_2_pow_53_survive() {
        let seed = 3_189_771_427_388_177_366u64; // needs exact u64 parsing
        let line = Event::ReplicateDone {
            seed,
            wall_ms: 1.0,
            events: 10,
            events_per_sec: 1e4,
        }
        .to_json_line();
        match parse_line(&line).unwrap() {
            Event::ReplicateDone { seed: s, .. } => assert_eq!(s, seed),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn header_round_trips_through_reader() {
        let header = TraceHeader {
            model: Some("lambda=0.9,policy=steal,T=2,d=1,k=1".into()),
            n: Some(128),
            seed: Some(42),
            runs: Some(4),
            sample: Some(8),
        };
        let text = format!(
            "{}\n{}\n",
            header.to_json_line(),
            Event::Heartbeat {
                t: 1.0,
                events: 10,
                tasks_in_system: 3,
            }
            .to_json_line()
        );
        let parsed = read_str(&text, ReadMode::Strict).unwrap();
        assert_eq!(parsed.header.as_ref(), Some(&header));
        assert_eq!(parsed.events.len(), 1);
        assert_eq!(parsed.lines, 2);
    }

    #[test]
    fn first_header_wins_in_concatenated_traces() {
        let a = TraceHeader {
            model: Some("lambda=0.8,policy=none".into()),
            ..TraceHeader::default()
        };
        let b = TraceHeader {
            model: Some("lambda=0.9,policy=steal,T=2,d=1,k=1".into()),
            ..TraceHeader::default()
        };
        let text = format!("{}\n{}\n", a.to_json_line(), b.to_json_line());
        let parsed = read_str(&text, ReadMode::Strict).unwrap();
        assert_eq!(parsed.header, Some(a));
        assert!(parsed.events.is_empty());
        assert_eq!(parsed.lines, 2);
    }

    #[test]
    fn headerless_trace_has_no_header() {
        let parsed = read_str(r#"{"ev":"arrival","t":1.0,"proc":0}"#, ReadMode::Strict).unwrap();
        assert_eq!(parsed.header, None);
        assert_eq!(parsed.events.len(), 1);
    }

    #[test]
    fn unsupported_header_schema_is_rejected_strict_and_skipped_lossy() {
        let line = r#"{"ev":"header","schema":"loadsteal.trace.v99"}"#;
        let err = read_str(line, ReadMode::Strict).unwrap_err();
        assert!(err.message.contains("unsupported trace schema"), "{err}");
        let parsed = read_str(line, ReadMode::Lossy).unwrap();
        assert_eq!(parsed.header, None);
        assert_eq!(parsed.skipped.len(), 1);
    }

    #[test]
    fn schemaless_header_is_accepted() {
        // An older or hand-written header without the schema field.
        let parsed = read_str(
            r#"{"ev":"header","model":"lambda=0.5,policy=steal,T=2,d=1,k=1"}"#,
            ReadMode::Strict,
        )
        .unwrap();
        let header = parsed.header.expect("header");
        assert_eq!(
            header.model.as_deref(),
            Some("lambda=0.5,policy=steal,T=2,d=1,k=1")
        );
        assert_eq!(header.n, None);
    }

    #[test]
    fn parse_line_refuses_header_lines() {
        let line = TraceHeader::default().to_json_line();
        let (_, msg) = parse_line(&line).unwrap_err();
        assert!(msg.contains("header line is not an event"), "{msg}");
    }

    #[test]
    fn span_summary_lines_round_trip() {
        let rec = SpanRecord {
            path: "cli.simulate;sim.run;sim.arrival".into(),
            count: 42,
            total_us: 1234.5,
            self_us: 1000.25,
            p50_us: 20.0,
            p99_us: 95.5,
        };
        let parsed = read_str(&rec.to_json_line(), ReadMode::Strict).unwrap();
        assert_eq!(parsed.spans, vec![rec]);
        assert!(parsed.events.is_empty());
    }

    #[test]
    fn panic_record_parses_strictly_with_and_without_thread() {
        let rec = PanicRecord {
            message: "injected panic (obs.rs:12)".into(),
            thread: Some("main".into()),
            buffered: 4096,
            dropped: 120,
        };
        let parsed = read_str(&rec.to_json_line(), ReadMode::Strict).unwrap();
        assert_eq!(parsed.panics, vec![rec]);

        let anon = PanicRecord {
            message: "boom".into(),
            thread: None,
            buffered: 0,
            dropped: 0,
        };
        let parsed = read_str(&anon.to_json_line(), ReadMode::Strict).unwrap();
        assert_eq!(parsed.panics[0].thread, None);
    }

    #[test]
    fn crash_dump_shape_parses_strictly_and_ends_with_the_panic() {
        // Header, a few events, then the terminal panic record — the
        // exact stream the flight recorder's hook writes.
        let dump = format!(
            "{}\n{}\n{}\n{}\n",
            r#"{"ev":"header","schema":"loadsteal.trace.v1","n":8}"#,
            r#"{"ev":"arrival","t":0.5,"proc":3}"#,
            r#"{"ev":"heartbeat","t":1.0,"events":100,"tasks_in_system":7}"#,
            r#"{"ev":"panic","message":"boom (engine.rs:1)","thread":"main","buffered":2,"dropped":0}"#,
        );
        let parsed = read_str(&dump, ReadMode::Strict).unwrap();
        assert_eq!(parsed.events.len(), 2);
        assert_eq!(parsed.panics.len(), 1);
        assert_eq!(parsed.panics[0].buffered, 2);
        // The panic line is the last non-blank line of the dump.
        let last = dump.lines().last().unwrap();
        assert!(matches!(parse_record(last).unwrap(), Record::Panic(_)));
    }

    #[test]
    fn malformed_span_line_is_fatal_strict_but_skipped_lossy() {
        let text = format!(
            "{}\n{}\n",
            r#"{"ev":"span","count":1}"#, // missing path
            r#"{"ev":"arrival","t":1.0,"proc":0}"#,
        );
        let err = read_str(&text, ReadMode::Strict).unwrap_err();
        assert!(err.message.contains("path"), "{err}");
        let parsed = read_str(&text, ReadMode::Lossy).unwrap();
        assert_eq!(parsed.skipped.len(), 1);
        assert_eq!(parsed.events.len(), 1);
    }

    #[test]
    fn parse_line_refuses_span_and_panic_lines() {
        let (_, msg) =
            parse_line(r#"{"ev":"span","path":"a","count":1,"total_us":1.0,"self_us":1.0,"p50_us":1.0,"p99_us":1.0}"#)
                .unwrap_err();
        assert!(msg.contains("span summary line is not an event"), "{msg}");
        let (_, msg) =
            parse_line(r#"{"ev":"panic","message":"x","buffered":0,"dropped":0}"#).unwrap_err();
        assert!(msg.contains("panic record line is not an event"), "{msg}");
    }
}
