//! Timeline reconstruction: from a flat event stream back to
//! per-processor queue histories, run phases, and measured statistics.
//!
//! The simulator's trace is complete in the sense that every queue
//! transition is reported: arrivals and completions change one
//! processor's depth by one, and migrations carry both endpoints
//! (`proc` = receiver, `src` = donor) and a multiplicity. Starting all
//! queues at zero (pre-loaded tasks are traced as arrivals at `t = 0`)
//! and replaying the stream therefore reproduces the exact load vector
//! at every instant — which is enough to recompute the paper's
//! time-averaged tail fractions `s_i`, the mean number of tasks in
//! system, and (via Little's law) the mean sojourn time, all without
//! access to the simulator's internal statistics.
//!
//! Caveat: a trace of a *multi-run* batch (`--runs > 1`) interleaves
//! events from concurrent replications and cannot be replayed into a
//! single consistent load vector. Use one run per trace for timeline
//! analysis; [`Timeline::replicates`] reports how many runs the trace
//! contains.

use loadsteal_obs::{Event, SimEventKind};

/// Parameters for timeline reconstruction.
#[derive(Debug, Clone)]
pub struct TimelineConfig {
    /// Measurement starts here: events before `warmup` still move the
    /// reconstructed queues but are excluded from time averages.
    pub warmup: f64,
    /// Relative tolerance for the steady-state heuristic: the earliest
    /// heartbeat after which the first- and second-half means of
    /// `tasks_in_system` agree within this factor.
    pub steady_tolerance: f64,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        Self {
            warmup: 0.0,
            steady_tolerance: 0.05,
        }
    }
}

/// Totals per event kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// Tasks that entered the system.
    pub arrivals: u64,
    /// Tasks that finished service.
    pub completions: u64,
    /// Steal (or rebalance/share) probes initiated.
    pub steal_attempts: u64,
    /// Probes that found an eligible victim.
    pub steal_successes: u64,
    /// Migration events (batches, not tasks).
    pub migrations: u64,
    /// Tasks moved by those migrations.
    pub tasks_migrated: u64,
    /// Progress heartbeats.
    pub heartbeats: u64,
}

/// Reconstructed history of one processor.
#[derive(Debug, Clone, Default)]
pub struct ProcTimeline {
    /// Arrivals routed to this processor.
    pub arrivals: u64,
    /// Completions served here.
    pub completions: u64,
    /// Steal probes initiated by this processor (as thief).
    pub steal_attempts: u64,
    /// Successful probes by this processor.
    pub steal_successes: u64,
    /// Tasks received via migration.
    pub tasks_in: u64,
    /// Tasks donated via migration.
    pub tasks_out: u64,
    /// Queue depth at the end of the trace.
    pub final_depth: u64,
    /// Time-averaged queue depth over the measurement window.
    pub mean_depth: f64,
    /// Fraction of measured time spent non-empty (the utilization
    /// `ρ̂`, comparable to the mean-field `s₁`).
    pub busy_fraction: f64,
}

/// Solver-side summary extracted from the same stream.
#[derive(Debug, Clone, Default)]
pub struct SolverSummary {
    /// Accepted integrator steps (from `solver_step` events; falls back
    /// to the `solver_done` total when per-step events are absent).
    pub steps_accepted: u64,
    /// Rejected integrator steps.
    pub steps_rejected: u64,
    /// `(t, residual)` convergence samples from `solver_steady` events.
    pub residuals: Vec<(f64, f64)>,
    /// Whether the run reported steady-state convergence.
    pub converged: Option<bool>,
    /// Final residual from `solver_done`.
    pub final_residual: Option<f64>,
}

impl SolverSummary {
    /// Total steps attempted.
    pub fn steps_total(&self) -> u64 {
        self.steps_accepted + self.steps_rejected
    }
}

/// The reconstructed run: phases, queue statistics, and derived
/// measurements.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Number of processors seen (`max(proc, src) + 1` over sim
    /// events; 0 for solver-only traces).
    pub n_procs: usize,
    /// Earliest simulated time in the trace.
    pub start: f64,
    /// Latest simulated time in the trace.
    pub end: f64,
    /// Warmup boundary used for measurement.
    pub warmup: f64,
    /// Whole-trace event totals.
    pub counts: EventCounts,
    /// Post-warmup event totals (the measurement window).
    pub measured: EventCounts,
    /// Per-processor histories.
    pub per_proc: Vec<ProcTimeline>,
    /// Time-averaged tail fractions over the measurement window:
    /// `tails[i]` = fraction of processors with queue depth ≥ i
    /// (`tails[0] == 1`).
    pub tails: Vec<f64>,
    /// Time-averaged total tasks in system over the measurement window.
    pub mean_tasks: f64,
    /// Solver activity in the same trace, if any.
    pub solver: SolverSummary,
    /// `(t, events, tasks_in_system)` heartbeat samples.
    pub heartbeats: Vec<(f64, u64, u64)>,
    /// Finished replications reported in the trace.
    pub replicates: usize,
    /// Queue-depth underflows clamped during replay. Nonzero means the
    /// trace is not a single consistent run (truncated, or interleaved
    /// from `--runs > 1`).
    pub depth_underflows: u64,
    /// Migration events missing the donor (`src`) endpoint. Nonzero
    /// means the trace predates the two-endpoint migration format and
    /// queue depths cannot be replayed faithfully.
    pub sourceless_migrations: u64,
    /// Detected steady-state onset (heartbeat-based heuristic), if the
    /// trace carries enough heartbeats to tell.
    pub steady_at: Option<f64>,
}

/// Lazily-settled time integral of one processor's queue depth.
#[derive(Debug, Clone, Copy, Default)]
struct DepthCell {
    depth: u64,
    /// ∫ depth dt and ∫ [depth > 0] dt since `warmup`.
    depth_integral: f64,
    busy_integral: f64,
    last_update: f64,
}

impl Timeline {
    /// Replay `events` into a timeline.
    pub fn build(events: &[Event], cfg: &TimelineConfig) -> Self {
        let warmup = cfg.warmup;
        let mut n_procs = 0usize;
        for ev in events {
            if let Event::Sim { proc, src, .. } = ev {
                n_procs = n_procs
                    .max(*proc as usize + 1)
                    .max(src.map_or(0, |s| s as usize + 1));
            }
        }

        let mut tl = Timeline {
            n_procs,
            start: f64::INFINITY,
            end: f64::NEG_INFINITY,
            warmup,
            counts: EventCounts::default(),
            measured: EventCounts::default(),
            per_proc: vec![ProcTimeline::default(); n_procs],
            tails: Vec::new(),
            mean_tasks: 0.0,
            solver: SolverSummary::default(),
            heartbeats: Vec::new(),
            replicates: 0,
            depth_underflows: 0,
            sourceless_migrations: 0,
            steady_at: None,
        };

        let mut cells = vec![DepthCell::default(); n_procs];
        for c in &mut cells {
            c.last_update = warmup;
        }
        // counts_at_depth[d] = processors currently at depth d, with a
        // lazily settled time integral per depth (the LoadHistogram
        // trick: only the depths an event touches are settled, so the
        // replay stays O(1) per event).
        let mut depth_counts: Vec<u64> = vec![0; 8];
        if n_procs > 0 {
            depth_counts[0] = n_procs as u64;
        }
        let mut depth_integrals: Vec<f64> = vec![0.0; depth_counts.len()];
        let mut depth_last: Vec<f64> = vec![warmup; depth_counts.len()];

        let settle = |d: usize,
                      t: f64,
                      counts: &mut Vec<u64>,
                      integrals: &mut Vec<f64>,
                      last: &mut Vec<f64>| {
            if d >= counts.len() {
                counts.resize(d + 1, 0);
                integrals.resize(d + 1, 0.0);
                last.resize(d + 1, warmup);
            }
            if t > warmup {
                let since = last[d].max(warmup);
                if t > since {
                    integrals[d] += counts[d] as f64 * (t - since);
                }
            }
            last[d] = t;
        };

        let mut adjust = |p: usize, delta: i64, t: f64, tl: &mut Timeline| {
            let cell = &mut cells[p];
            // Settle this processor's own integrals up to t.
            if t > warmup {
                let since = cell.last_update.max(warmup);
                if t > since {
                    cell.depth_integral += cell.depth as f64 * (t - since);
                    if cell.depth > 0 {
                        cell.busy_integral += t - since;
                    }
                }
            }
            cell.last_update = t;
            let from = cell.depth as usize;
            let to = if delta >= 0 {
                cell.depth + delta as u64
            } else {
                let dec = (-delta) as u64;
                if cell.depth < dec {
                    tl.depth_underflows += dec - cell.depth;
                    0
                } else {
                    cell.depth - dec
                }
            };
            cell.depth = to;
            let to = to as usize;
            if from != to {
                settle(
                    from,
                    t,
                    &mut depth_counts,
                    &mut depth_integrals,
                    &mut depth_last,
                );
                settle(
                    to,
                    t,
                    &mut depth_counts,
                    &mut depth_integrals,
                    &mut depth_last,
                );
                depth_counts[from] = depth_counts[from].saturating_sub(1);
                depth_counts[to] += 1;
            }
        };

        for ev in events {
            match *ev {
                Event::Sim {
                    kind,
                    t,
                    proc,
                    src,
                    count,
                } => {
                    tl.start = tl.start.min(t);
                    tl.end = tl.end.max(t);
                    let measured = t >= warmup;
                    let p = proc as usize;
                    match kind {
                        SimEventKind::Arrival => {
                            tl.counts.arrivals += 1;
                            tl.per_proc[p].arrivals += 1;
                            if measured {
                                tl.measured.arrivals += 1;
                            }
                            adjust(p, 1, t, &mut tl);
                        }
                        SimEventKind::Completion => {
                            tl.counts.completions += 1;
                            tl.per_proc[p].completions += 1;
                            if measured {
                                tl.measured.completions += 1;
                            }
                            adjust(p, -1, t, &mut tl);
                        }
                        SimEventKind::StealAttempt => {
                            tl.counts.steal_attempts += 1;
                            tl.per_proc[p].steal_attempts += 1;
                            if measured {
                                tl.measured.steal_attempts += 1;
                            }
                        }
                        SimEventKind::StealSuccess => {
                            tl.counts.steal_successes += 1;
                            tl.per_proc[p].steal_successes += 1;
                            if measured {
                                tl.measured.steal_successes += 1;
                            }
                        }
                        SimEventKind::Migration => {
                            tl.counts.migrations += 1;
                            tl.counts.tasks_migrated += count as u64;
                            tl.per_proc[p].tasks_in += count as u64;
                            if measured {
                                tl.measured.migrations += 1;
                                tl.measured.tasks_migrated += count as u64;
                            }
                            adjust(p, count as i64, t, &mut tl);
                            if let Some(s) = src {
                                let s = s as usize;
                                tl.per_proc[s].tasks_out += count as u64;
                                adjust(s, -(count as i64), t, &mut tl);
                            } else {
                                tl.sourceless_migrations += 1;
                            }
                        }
                    }
                }
                Event::Heartbeat {
                    t,
                    events,
                    tasks_in_system,
                } => {
                    tl.start = tl.start.min(t);
                    tl.end = tl.end.max(t);
                    tl.counts.heartbeats += 1;
                    if t >= warmup {
                        tl.measured.heartbeats += 1;
                    }
                    tl.heartbeats.push((t, events, tasks_in_system));
                }
                Event::SolverStep { accepted, .. } => {
                    if accepted {
                        tl.solver.steps_accepted += 1;
                    } else {
                        tl.solver.steps_rejected += 1;
                    }
                }
                Event::SolverSteady { t, residual } => {
                    tl.solver.residuals.push((t, residual));
                }
                Event::SolverDone {
                    accepted,
                    rejected,
                    converged,
                    residual,
                    ..
                } => {
                    // Per-step events may be absent (the solver can be
                    // traced summary-only); trust the totals.
                    tl.solver.steps_accepted = tl.solver.steps_accepted.max(accepted);
                    tl.solver.steps_rejected = tl.solver.steps_rejected.max(rejected);
                    tl.solver.converged = Some(converged);
                    tl.solver.final_residual = Some(residual);
                }
                Event::ReplicateDone { .. } => {
                    tl.replicates += 1;
                }
                // Per-job lifecycle events only widen the trace window;
                // queue depths are driven by the Sim arrival/completion/
                // migration stream, and counting Job events too would
                // double-book every transition.
                Event::Job { t, .. } => {
                    tl.start = tl.start.min(t);
                    tl.end = tl.end.max(t);
                }
                // Tail samples are derived state (the transient module
                // consumes them); here they only widen the window.
                Event::TailSample { t, .. } => {
                    tl.start = tl.start.min(t);
                    tl.end = tl.end.max(t);
                }
            }
        }

        // Close the measurement window at the final timestamp.
        let end = if tl.end.is_finite() { tl.end } else { warmup };
        let span = (end - warmup).max(0.0);
        for (p, cell) in cells.iter_mut().enumerate() {
            if end > warmup {
                let since = cell.last_update.max(warmup);
                if end > since {
                    cell.depth_integral += cell.depth as f64 * (end - since);
                    if cell.depth > 0 {
                        cell.busy_integral += end - since;
                    }
                }
            }
            let pp = &mut tl.per_proc[p];
            pp.final_depth = cell.depth;
            if span > 0.0 {
                pp.mean_depth = cell.depth_integral / span;
                pp.busy_fraction = cell.busy_integral / span;
            }
        }
        for d in 0..depth_counts.len() {
            settle(
                d,
                end,
                &mut depth_counts,
                &mut depth_integrals,
                &mut depth_last,
            );
        }

        // Tail fractions s_i = time-averaged fraction of processors at
        // depth ≥ i, and the mean number of tasks in the whole system.
        if n_procs > 0 && span > 0.0 {
            let mean_counts: Vec<f64> = depth_integrals.iter().map(|&v| v / span).collect();
            let mut acc = 0.0;
            let mut tails = vec![0.0; mean_counts.len() + 1];
            for (d, &m) in mean_counts.iter().enumerate().rev() {
                acc += m;
                tails[d] = acc / n_procs as f64;
            }
            // Trim trailing zeros but keep tails[0].
            while tails.len() > 1 && tails[tails.len() - 1] == 0.0 {
                tails.pop();
            }
            tl.tails = tails;
            tl.mean_tasks = mean_counts
                .iter()
                .enumerate()
                .map(|(d, &m)| d as f64 * m)
                .sum();
        }

        if tl.start == f64::INFINITY {
            tl.start = 0.0;
            tl.end = 0.0;
        }
        tl.steady_at = detect_steady(&tl.heartbeats, cfg.steady_tolerance);
        tl
    }

    /// Post-warmup measurement span.
    pub fn span(&self) -> f64 {
        (self.end - self.warmup).max(0.0)
    }

    /// Measured per-processor arrival rate `λ̂` (arrivals per processor
    /// per unit time over the measurement window).
    pub fn arrival_rate(&self) -> f64 {
        let span = self.span();
        if self.n_procs == 0 || span == 0.0 {
            return 0.0;
        }
        self.measured.arrivals as f64 / (self.n_procs as f64 * span)
    }

    /// Measured per-processor completion rate over the window.
    pub fn throughput(&self) -> f64 {
        let span = self.span();
        if self.n_procs == 0 || span == 0.0 {
            return 0.0;
        }
        self.measured.completions as f64 / (self.n_procs as f64 * span)
    }

    /// Mean sojourn time via Little's law: `Ŵ = L̂ / λ̂_total`, with
    /// `L̂` the time-averaged tasks in system and `λ̂_total` the total
    /// measured arrival rate. Exact for a stationary window; `None`
    /// when no arrivals were measured.
    pub fn mean_sojourn_little(&self) -> Option<f64> {
        let span = self.span();
        if span == 0.0 || self.measured.arrivals == 0 {
            return None;
        }
        let lambda_total = self.measured.arrivals as f64 / span;
        Some(self.mean_tasks / lambda_total)
    }

    /// Measured geometric-mean tail ratio `s_{i+1}/s_i` over the
    /// depths where both tails are resolvable, skipping `s_0 → s_1`
    /// (that ratio is the utilization, not the decay rate). This is the
    /// quantity the mean-field analysis predicts to approach
    /// `λ/(1+λ−π₂)` for the paper's work-stealing model.
    pub fn tail_ratio(&self) -> Option<f64> {
        // Tails below this are dominated by a handful of brief
        // excursions and add noise, not signal.
        const FLOOR: f64 = 1e-4;
        let mut log_sum = 0.0;
        let mut terms = 0usize;
        for i in 1..self.tails.len().saturating_sub(1) {
            let (a, b) = (self.tails[i], self.tails[i + 1]);
            if a > FLOOR && b > FLOOR {
                log_sum += (b / a).ln();
                terms += 1;
            }
        }
        (terms > 0).then(|| (log_sum / terms as f64).exp())
    }

    /// Fraction of measured steal attempts that succeeded.
    pub fn steal_success_rate(&self) -> f64 {
        if self.measured.steal_attempts == 0 {
            0.0
        } else {
            self.measured.steal_successes as f64 / self.measured.steal_attempts as f64
        }
    }
}

/// Earliest heartbeat time after which the `tasks_in_system` series
/// looks stationary: its first- and second-half means agree within
/// `tol` (relative to the overall mean). Needs at least 4 samples past
/// the candidate onset.
fn detect_steady(heartbeats: &[(f64, u64, u64)], tol: f64) -> Option<f64> {
    let series: Vec<(f64, f64)> = heartbeats
        .iter()
        .map(|&(t, _, tasks)| (t, tasks as f64))
        .collect();
    for k in 0..series.len() {
        let rest = &series[k..];
        if rest.len() < 4 {
            break;
        }
        let mid = rest.len() / 2;
        let mean = |s: &[(f64, f64)]| s.iter().map(|&(_, v)| v).sum::<f64>() / s.len() as f64;
        let (a, b) = (mean(&rest[..mid]), mean(&rest[mid..]));
        let overall = mean(rest);
        if overall == 0.0 || ((a - b) / overall).abs() <= tol {
            return Some(rest[0].0);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(kind: SimEventKind, t: f64, proc: u32) -> Event {
        Event::Sim {
            kind,
            t,
            proc,
            src: None,
            count: 1,
        }
    }

    fn migration(t: f64, dst: u32, src: u32, count: u32) -> Event {
        Event::Sim {
            kind: SimEventKind::Migration,
            t,
            proc: dst,
            src: Some(src),
            count,
        }
    }

    #[test]
    fn empty_trace_builds_an_empty_timeline() {
        let tl = Timeline::build(&[], &TimelineConfig::default());
        assert_eq!(tl.n_procs, 0);
        assert_eq!(tl.span(), 0.0);
        assert_eq!(tl.arrival_rate(), 0.0);
        assert!(tl.mean_sojourn_little().is_none());
        assert!(tl.tails.is_empty());
    }

    #[test]
    fn queue_replay_tracks_depths_and_tails() {
        use SimEventKind::*;
        // Two processors over [0, 10]: proc 0 holds one task for the
        // interval [1, 6]; proc 1 stays empty.
        let events = [
            sim(Arrival, 1.0, 0),
            sim(Completion, 6.0, 0),
            sim(Arrival, 10.0, 1), // closes the window at t = 10
            sim(Completion, 10.0, 1),
        ];
        let tl = Timeline::build(&events, &TimelineConfig::default());
        assert_eq!(tl.n_procs, 2);
        assert_eq!(tl.counts.arrivals, 2);
        assert_eq!(tl.per_proc[0].arrivals, 1);
        assert!((tl.per_proc[0].mean_depth - 0.5).abs() < 1e-12);
        assert!((tl.per_proc[0].busy_fraction - 0.5).abs() < 1e-12);
        assert_eq!(tl.per_proc[1].mean_depth, 0.0);
        // s_1 = one of two procs busy half the time = 0.25.
        assert!((tl.tails[1] - 0.25).abs() < 1e-12, "{:?}", tl.tails);
        assert!((tl.tails[0] - 1.0).abs() < 1e-12);
        assert!((tl.mean_tasks - 0.5).abs() < 1e-12);
    }

    #[test]
    fn migrations_move_depth_between_processors() {
        use SimEventKind::*;
        let events = [
            sim(Arrival, 0.0, 0),
            sim(Arrival, 0.0, 0),
            sim(Arrival, 0.0, 0),
            // 2 tasks hop 0 → 1 at t = 5.
            migration(5.0, 1, 0, 2),
            sim(Completion, 10.0, 1),
        ];
        let tl = Timeline::build(&events, &TimelineConfig::default());
        assert_eq!(tl.per_proc[0].tasks_out, 2);
        assert_eq!(tl.per_proc[1].tasks_in, 2);
        assert_eq!(tl.per_proc[0].final_depth, 1);
        assert_eq!(tl.per_proc[1].final_depth, 1);
        assert_eq!(tl.depth_underflows, 0);
        // proc 0: depth 3 for [0,5], 1 for [5,10] → mean 2.
        assert!((tl.per_proc[0].mean_depth - 2.0).abs() < 1e-12);
        // proc 1: depth 0 for [0,5], 2 for [5,10] → mean 1.
        assert!((tl.per_proc[1].mean_depth - 1.0).abs() < 1e-12);
        assert!((tl.mean_tasks - 3.0).abs() < 1e-12);
    }

    #[test]
    fn warmup_excludes_early_activity_from_averages() {
        use SimEventKind::*;
        let events = [
            sim(Arrival, 0.0, 0),
            sim(Completion, 4.0, 0), // entirely pre-warmup
            sim(Arrival, 5.0, 0),
            sim(Completion, 20.0, 0),
        ];
        let cfg = TimelineConfig {
            warmup: 10.0,
            ..TimelineConfig::default()
        };
        let tl = Timeline::build(&events, &cfg);
        assert_eq!(tl.counts.arrivals, 2);
        assert_eq!(tl.measured.arrivals, 0); // both arrived before warmup
        assert_eq!(tl.measured.completions, 1);
        // Depth 1 over [10, 20] (the task arrived at 5, pre-warmup).
        assert!((tl.per_proc[0].mean_depth - 1.0).abs() < 1e-12);
        assert!((tl.span() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn underflow_is_counted_not_wrapped() {
        use SimEventKind::*;
        let events = [sim(Completion, 1.0, 0), sim(Completion, 2.0, 0)];
        let tl = Timeline::build(&events, &TimelineConfig::default());
        assert_eq!(tl.depth_underflows, 2);
        assert_eq!(tl.per_proc[0].final_depth, 0);
    }

    #[test]
    fn migrations_without_a_donor_are_flagged() {
        use SimEventKind::*;
        // A legacy trace whose migrations only name the receiver: the
        // donated task is double-counted, so the replay must say so.
        let events = [sim(Arrival, 1.0, 0), sim(Migration, 2.0, 1)];
        let tl = Timeline::build(&events, &TimelineConfig::default());
        assert_eq!(tl.sourceless_migrations, 1);
        assert_eq!(tl.per_proc[0].final_depth, 1); // donor never debited
        assert_eq!(tl.per_proc[1].final_depth, 1);
        let two_sided = [sim(Arrival, 1.0, 0), migration(2.0, 1, 0, 1)];
        let tl2 = Timeline::build(&two_sided, &TimelineConfig::default());
        assert_eq!(tl2.sourceless_migrations, 0);
        assert_eq!(tl2.per_proc[0].final_depth, 0);
    }

    #[test]
    fn littles_law_recovers_sojourn_for_a_simple_stream() {
        use SimEventKind::*;
        // One proc, deterministic: a task arrives every 2s and stays
        // exactly 1s. λ_total = 0.5, L = 0.5 → W = 1.
        let mut events = Vec::new();
        for k in 0..50 {
            let t = 2.0 * k as f64;
            events.push(sim(Arrival, t, 0));
            events.push(sim(Completion, t + 1.0, 0));
        }
        // Close the window exactly at the last completion.
        let cfg = TimelineConfig::default();
        let tl = Timeline::build(&events, &cfg);
        let w = tl.mean_sojourn_little().unwrap();
        // End = 99, span 99, 50 arrivals: small edge effects.
        assert!((w - 1.0).abs() < 0.05, "W = {w}");
    }

    #[test]
    fn solver_events_summarize() {
        let events = [
            Event::SolverStep {
                accepted: true,
                t: 0.0,
                h: 0.1,
                err_norm: 0.5,
            },
            Event::SolverStep {
                accepted: false,
                t: 0.1,
                h: 0.2,
                err_norm: 2.0,
            },
            Event::SolverSteady {
                t: 0.1,
                residual: 1e-3,
            },
            Event::SolverDone {
                accepted: 10,
                rejected: 3,
                min_h: 0.01,
                max_h: 0.5,
                max_reject_streak: 2,
                converged: true,
                residual: 1e-9,
            },
        ];
        let tl = Timeline::build(&events, &TimelineConfig::default());
        // solver_done totals dominate partial per-step counts.
        assert_eq!(tl.solver.steps_accepted, 10);
        assert_eq!(tl.solver.steps_rejected, 3);
        assert_eq!(tl.solver.steps_total(), 13);
        assert_eq!(tl.solver.converged, Some(true));
        assert_eq!(tl.solver.residuals.len(), 1);
        assert_eq!(tl.solver.final_residual, Some(1e-9));
    }

    #[test]
    fn steady_state_detection_finds_the_plateau() {
        // Ramp 0→100 over five beats, then stable around 100.
        let mut hb = Vec::new();
        for (i, v) in [0u64, 25, 50, 75, 95, 100, 101, 99, 100, 100, 101, 99]
            .iter()
            .enumerate()
        {
            hb.push((i as f64 * 10.0, i as u64 * 1000, *v));
        }
        let steady = detect_steady(&hb, 0.05).expect("plateau exists");
        // Onset detected somewhere in the ramp's tail, not at t = 0.
        assert!(steady > 0.0, "{steady}");
        assert!(steady <= 50.0, "{steady}");
        // A pure ramp never qualifies.
        let ramp: Vec<(f64, u64, u64)> = (0..10).map(|i| (i as f64, 0, i as u64 * 100)).collect();
        assert_eq!(detect_steady(&ramp, 0.05), None);
    }

    #[test]
    fn tail_ratio_of_geometric_tails_is_the_ratio() {
        use SimEventKind::*;
        // Synthesize a trace whose tails decay geometrically: a single
        // proc ping-pongs between depths so that time at depth ≥ i
        // halves with i. Simpler: check against hand-set tails via a
        // two-depth trace, then the formulaic accessor on a fabricated
        // timeline.
        let events = [
            sim(Arrival, 0.0, 0),
            sim(Arrival, 0.0, 0),
            sim(Completion, 5.0, 0),
            sim(Completion, 10.0, 0),
        ];
        let mut tl = Timeline::build(&events, &TimelineConfig::default());
        // tails = [1, 1, 0.5]: ratio over i=1 → 0.5.
        assert!((tl.tails[2] - 0.5).abs() < 1e-12, "{:?}", tl.tails);
        assert!((tl.tail_ratio().unwrap() - 0.5).abs() < 1e-12);
        // Fabricated long geometric tail.
        tl.tails = vec![1.0, 0.9, 0.45, 0.225, 0.1125];
        let r = tl.tail_ratio().unwrap();
        assert!((r - 0.5).abs() < 1e-12, "{r}");
    }

    #[test]
    fn replicate_done_events_are_counted() {
        let events = [
            Event::ReplicateDone {
                seed: 1,
                wall_ms: 2.0,
                events: 100,
                events_per_sec: 5e4,
            },
            Event::ReplicateDone {
                seed: 2,
                wall_ms: 2.1,
                events: 101,
                events_per_sec: 4.8e4,
            },
        ];
        let tl = Timeline::build(&events, &TimelineConfig::default());
        assert_eq!(tl.replicates, 2);
    }
}
