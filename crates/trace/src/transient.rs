//! Online sim-vs-ODE transient comparison.
//!
//! `loadsteal simulate --sample-tails <dt>` makes the engine emit
//! [`Event::TailSample`] records: the instantaneous empirical tail
//! vector `ŝ₁…ŝ_k(t)` on a uniform time grid. This module replays that
//! sample stream against the mean-field ODE solution integrated on the
//! same grid and quantifies how far the finite-n system strays from
//! the n → ∞ trajectory:
//!
//! * **per-time residuals** `ŝᵢ(t) − sᵢ(t)` for each tracked tail,
//! * the **sup-norm deviation** `‖ŝ − s‖∞` over the whole trajectory,
//! * the **empirical relaxation time** — the first sample instant from
//!   which the trajectory stays within ε of the fixed point — next to
//!   the ODE's own settling time, and
//! * **drift events**: instants where a residual exceeds a CI-derived
//!   envelope (Kurtz fluctuations are `O(1/√n)`, the mean drift is
//!   `O(1/n)`, so the envelope is
//!   `z·√(s(1−s)/(n·runs)) + c·s/n + floor`).
//!
//! Layering note: like [`crate::report`], the ODE side is an *input* —
//! the CLI integrates the model with `loadsteal-core` and passes the
//! sampled trajectory in as plain data, so this crate keeps its
//! obs-only dependency footprint.

use loadsteal_obs::{Event, TAIL_SAMPLE_DEPTH};

/// One `tail_sample` event, lifted out of the stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplePoint {
    /// Simulated time of the sample.
    pub t: f64,
    /// Empirical tails `ŝ₁…ŝ₈`; entries past `depth` are zero.
    pub tails: [f64; TAIL_SAMPLE_DEPTH],
    /// Number of leading entries actually carried on the wire.
    pub depth: usize,
}

/// Pull every tail sample out of an event stream, in stream order.
pub fn extract_samples(events: &[Event]) -> Vec<SamplePoint> {
    events
        .iter()
        .filter_map(|ev| match *ev {
            Event::TailSample { t, tails, depth } => Some(SamplePoint {
                t,
                tails,
                depth: depth as usize,
            }),
            _ => None,
        })
        .collect()
}

/// All samples taken at one grid instant (one per replicate when the
/// trace interleaves several runs).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedSample {
    /// The shared sample instant.
    pub t: f64,
    /// One tail vector per replicate that sampled at `t`.
    pub runs: Vec<[f64; TAIL_SAMPLE_DEPTH]>,
    /// Maximum wire depth across the replicates.
    pub depth: usize,
}

impl GroupedSample {
    /// Cross-replicate mean tail vector at this instant.
    pub fn mean(&self) -> [f64; TAIL_SAMPLE_DEPTH] {
        let mut m = [0.0f64; TAIL_SAMPLE_DEPTH];
        if self.runs.is_empty() {
            return m;
        }
        for run in &self.runs {
            for (acc, v) in m.iter_mut().zip(run) {
                *acc += v;
            }
        }
        let k = self.runs.len() as f64;
        for acc in &mut m {
            *acc /= k;
        }
        m
    }
}

/// Sort samples by time and merge samples taken at the same instant
/// (relative tolerance `1e-9`, so replicates emitting on the same
/// additive grid coalesce). Samples with a non-finite timestamp (a
/// `null` in a lossy trace) are dropped.
pub fn group_by_time(samples: &[SamplePoint]) -> Vec<GroupedSample> {
    let mut sorted: Vec<&SamplePoint> = samples.iter().filter(|s| s.t.is_finite()).collect();
    sorted.sort_by(|a, b| a.t.partial_cmp(&b.t).expect("finite times"));
    let mut out: Vec<GroupedSample> = Vec::new();
    for s in sorted {
        match out.last_mut() {
            Some(g) if same_instant(g.t, s.t) => {
                g.runs.push(s.tails);
                g.depth = g.depth.max(s.depth);
            }
            _ => out.push(GroupedSample {
                t: s.t,
                runs: vec![s.tails],
                depth: s.depth,
            }),
        }
    }
    out
}

fn same_instant(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// Infer the sampling grid `(dt, t_end)` from grouped samples: `dt` is
/// the smallest spacing between consecutive distinct instants (or the
/// first instant when only one exists), `t_end` the last instant.
pub fn grid_of(groups: &[GroupedSample]) -> Option<(f64, f64)> {
    let first = groups.first()?;
    let mut dt = first.t;
    for w in groups.windows(2) {
        let gap = w[1].t - w[0].t;
        if gap > 0.0 {
            dt = if dt > 0.0 { dt.min(gap) } else { gap };
        }
    }
    (dt > 0.0).then(|| (dt, groups.last().expect("non-empty").t))
}

/// The CI-derived residual envelope.
///
/// At sample size `n·runs`, the empirical tail `ŝᵢ(t)` fluctuates
/// around the ODE value with standard deviation `≈ √(s(1−s)/(n·runs))`
/// (Kurtz), and its mean drifts by `O(1/n)` (the finite-n bias). The
/// envelope adds an absolute floor so near-deterministic tails don't
/// produce zero-width bands:
///
/// ```text
/// bound(s) = z·√(s(1−s)/(n·runs)) + finite_n_rel·s/n + abs_floor
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    /// Normal quantile for the fluctuation term (default 3.29 ≈ 99.9%).
    pub z: f64,
    /// Finite-n bias allowance, relative to the predicted tail.
    pub finite_n_rel: f64,
    /// Absolute slack added to every bound.
    pub abs_floor: f64,
}

impl Default for Envelope {
    fn default() -> Self {
        Self {
            z: 3.29,
            finite_n_rel: 2.0,
            abs_floor: 0.01,
        }
    }
}

impl Envelope {
    /// Bound on `|ŝᵢ(t) − sᵢ(t)|` for predicted tail `predicted`,
    /// `n_procs` processors, and `runs` averaged replicates.
    pub fn bound(&self, predicted: f64, n_procs: usize, runs: usize) -> f64 {
        let n = (n_procs.max(1) * runs.max(1)) as f64;
        let p = predicted.clamp(0.0, 1.0);
        self.z * (p * (1.0 - p) / n).sqrt()
            + self.finite_n_rel * p / n_procs.max(1) as f64
            + self.abs_floor
    }
}

/// Knobs for [`TransientAnalysis::build`].
#[derive(Debug, Clone, PartialEq)]
pub struct TransientOptions {
    /// Number of processors behind each sample (sets the envelope
    /// width; take it from the trace header).
    pub n_procs: usize,
    /// Tails to compare. `0` means "deepest tail any sample carried".
    pub depth: usize,
    /// Relaxation threshold: the trajectory has relaxed once it stays
    /// within `epsilon` (sup-norm) of the fixed point.
    pub epsilon: f64,
    /// Drift envelope parameters.
    pub envelope: Envelope,
}

impl TransientOptions {
    /// Defaults for an `n_procs`-processor trace: auto depth, ε = 0.02,
    /// default envelope.
    pub fn new(n_procs: usize) -> Self {
        Self {
            n_procs,
            depth: 0,
            epsilon: 0.02,
            envelope: Envelope::default(),
        }
    }
}

/// One comparison instant: cross-run mean tails vs the ODE solution.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualPoint {
    /// Sample instant.
    pub t: f64,
    /// Empirical tails `ŝ₁…ŝ_depth` (cross-run mean).
    pub sim: Vec<f64>,
    /// ODE tails `s₁(t)…s_depth(t)`.
    pub ode: Vec<f64>,
    /// `maxᵢ |ŝᵢ(t) − sᵢ(t)|`.
    pub sup: f64,
    /// Replicates averaged at this instant.
    pub runs: usize,
}

/// A residual that escaped the CI envelope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftEvent {
    /// Instant of the breach.
    pub t: f64,
    /// Tail index (1-based: `1` is the busy fraction `s₁`).
    pub tail: usize,
    /// Signed residual `ŝᵢ(t) − sᵢ(t)`.
    pub residual: f64,
    /// Envelope bound it exceeded.
    pub bound: f64,
}

/// The full sim-vs-ODE transient comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientAnalysis {
    /// Per-instant residuals, time-ordered.
    pub points: Vec<ResidualPoint>,
    /// Tails compared at each instant.
    pub depth: usize,
    /// Processors behind each sample (from the options).
    pub n_procs: usize,
    /// Sup-norm deviation `‖ŝ − s‖∞` over the whole trajectory.
    pub residual_sup: f64,
    /// Where the sup was attained: `(t, tail)` (1-based tail).
    pub residual_sup_at: Option<(f64, usize)>,
    /// Mean of `|ŝᵢ(t) − sᵢ(t)|` over all comparisons.
    pub mean_abs_residual: f64,
    /// Per-tail sup residual, indices `0…depth-1` ↔ tails `1…depth`.
    pub per_tail_sup: Vec<f64>,
    /// First sample instant from which the empirical trajectory stays
    /// within ε of the fixed point (`None`: never relaxes, or no fixed
    /// point was supplied).
    pub relaxation_time: Option<f64>,
    /// Same notion evaluated on the ODE trajectory.
    pub ode_settling_time: Option<f64>,
    /// Relaxation threshold used.
    pub epsilon: f64,
    /// Envelope the drift events were judged against.
    pub envelope: Envelope,
    /// Residuals outside the CI envelope, time-ordered.
    pub drift: Vec<DriftEvent>,
    /// Total `(instant, tail)` comparisons made.
    pub comparisons: usize,
    /// Samples without a matching ODE grid instant (grid mismatch).
    pub unmatched: usize,
}

impl TransientAnalysis {
    /// Replay the tail samples in `events` against `ode`, the model
    /// trajectory sampled on the same grid (`(t, tails)` with
    /// `tails[0] = s₀ = 1`, as produced by the core trajectory
    /// sampler). `fixed_point` is the model's fixed-point tail vector
    /// (same convention) and drives the relaxation clocks; pass `None`
    /// to skip them.
    pub fn build(
        events: &[Event],
        ode: &[(f64, Vec<f64>)],
        fixed_point: Option<&[f64]>,
        opts: &TransientOptions,
    ) -> Self {
        let groups = group_by_time(&extract_samples(events));
        Self::from_groups(&groups, ode, fixed_point, opts)
    }

    /// Like [`TransientAnalysis::build`], starting from already
    /// grouped samples.
    pub fn from_groups(
        groups: &[GroupedSample],
        ode: &[(f64, Vec<f64>)],
        fixed_point: Option<&[f64]>,
        opts: &TransientOptions,
    ) -> Self {
        let depth = if opts.depth > 0 {
            opts.depth.min(TAIL_SAMPLE_DEPTH)
        } else {
            groups.iter().map(|g| g.depth).max().unwrap_or(0).max(1)
        };

        let mut points = Vec::with_capacity(groups.len());
        let mut drift = Vec::new();
        let mut unmatched = 0usize;
        let mut sup = 0.0f64;
        let mut sup_at = None;
        let mut per_tail_sup = vec![0.0f64; depth];
        let mut abs_sum = 0.0f64;
        let mut comparisons = 0usize;

        let mut cursor = 0usize; // monotone pointer into `ode`
        for g in groups {
            while cursor < ode.len() && ode[cursor].0 < g.t && !same_instant(ode[cursor].0, g.t) {
                cursor += 1;
            }
            let Some((_, ode_tails)) = ode.get(cursor).filter(|(t, _)| same_instant(*t, g.t))
            else {
                unmatched += 1;
                continue;
            };

            let mean = g.mean();
            let mut sim = Vec::with_capacity(depth);
            let mut ode_row = Vec::with_capacity(depth);
            let mut point_sup = 0.0f64;
            for i in 1..=depth {
                let hat = mean[i - 1];
                let s = ode_tails.get(i).copied().unwrap_or(0.0);
                let r = hat - s;
                sim.push(hat);
                ode_row.push(s);
                comparisons += 1;
                abs_sum += r.abs();
                point_sup = point_sup.max(r.abs());
                if r.abs() > per_tail_sup[i - 1] {
                    per_tail_sup[i - 1] = r.abs();
                }
                if r.abs() > sup {
                    sup = r.abs();
                    sup_at = Some((g.t, i));
                }
                let bound = opts.envelope.bound(s, opts.n_procs, g.runs.len());
                if r.abs() > bound {
                    drift.push(DriftEvent {
                        t: g.t,
                        tail: i,
                        residual: r,
                        bound,
                    });
                }
            }
            points.push(ResidualPoint {
                t: g.t,
                sim,
                ode: ode_row,
                sup: point_sup,
                runs: g.runs.len(),
            });
        }

        let relaxation_time = fixed_point.and_then(|fp| {
            relaxation_of(
                points.iter().map(|p| (p.t, p.sim.as_slice())),
                fp,
                opts.epsilon,
            )
        });
        let ode_settling_time = fixed_point.and_then(|fp| {
            relaxation_of(
                ode.iter()
                    .map(|(t, tails)| (*t, tails.get(1..).unwrap_or(&[]))),
                fp,
                opts.epsilon,
            )
        });

        Self {
            points,
            depth,
            n_procs: opts.n_procs,
            residual_sup: sup,
            residual_sup_at: sup_at,
            mean_abs_residual: if comparisons > 0 {
                abs_sum / comparisons as f64
            } else {
                0.0
            },
            per_tail_sup,
            relaxation_time,
            ode_settling_time,
            epsilon: opts.epsilon,
            envelope: opts.envelope,
            drift,
            comparisons,
            unmatched,
        }
    }
}

/// Earliest instant from which every later point stays within `eps`
/// (sup-norm over the compared tails) of the fixed point. The iterator
/// yields `(t, tails)` with `tails[0] = s₁`; `fp` uses the model
/// convention `fp[0] = s₀ = 1`.
fn relaxation_of<'a>(
    traj: impl Iterator<Item = (f64, &'a [f64])>,
    fp: &[f64],
    eps: f64,
) -> Option<f64> {
    let mut relaxed_since: Option<f64> = None;
    for (t, tails) in traj {
        let dev = tails
            .iter()
            .enumerate()
            .map(|(j, hat)| (hat - fp.get(j + 1).copied().unwrap_or(0.0)).abs())
            .fold(0.0f64, f64::max);
        if dev <= eps {
            relaxed_since.get_or_insert(t);
        } else {
            relaxed_since = None;
        }
    }
    relaxed_since
}

const SUBSCRIPTS: [char; 10] = ['₀', '₁', '₂', '₃', '₄', '₅', '₆', '₇', '₈', '₉'];

fn sub(i: usize) -> String {
    if i < 10 {
        SUBSCRIPTS[i].to_string()
    } else {
        format!("_{i}")
    }
}

/// Maximum trajectory rows printed before elision kicks in.
const MAX_TABLE_ROWS: usize = 24;
/// Tail columns shown in the trajectory table (the summary still
/// covers every compared tail).
const MAX_TABLE_TAILS: usize = 3;

/// Render the transient comparison: trajectory table, deviation
/// summary, and drift warnings.
pub fn render_transient(a: &TransientAnalysis) -> String {
    let mut out = String::new();
    if a.points.is_empty() {
        out.push_str("no tail samples in trace (run simulate with --sample-tails <dt>)\n");
        if a.unmatched > 0 {
            out.push_str(&format!(
                "  ({} samples had no matching ODE grid instant)\n",
                a.unmatched
            ));
        }
        return out;
    }

    let dt = if a.points.len() >= 2 {
        a.points[1].t - a.points[0].t
    } else {
        a.points[0].t
    };
    let runs = a.points.iter().map(|p| p.runs).max().unwrap_or(1);
    out.push_str(&format!(
        "transient trajectory  ({} instants, depth {}, dt ≈ {:.3}{})\n",
        a.points.len(),
        a.depth,
        dt,
        if runs > 1 {
            format!(", {runs} replicates averaged")
        } else {
            String::new()
        }
    ));

    let cols = a.depth.min(MAX_TABLE_TAILS);
    out.push_str(&format!("  {:>9}", "t"));
    for i in 1..=cols {
        out.push_str(&format!(
            "{:>9}{:>9}",
            format!("ŝ{}", sub(i)),
            format!("s{}(t)", sub(i))
        ));
    }
    out.push_str(&format!("{:>11}\n", "‖resid‖∞"));

    let stride = a.points.len().div_ceil(MAX_TABLE_ROWS).max(1);
    let last = a.points.len() - 1;
    for (idx, p) in a.points.iter().enumerate() {
        if idx % stride != 0 && idx != last {
            continue;
        }
        out.push_str(&format!("  {:>9.2}", p.t));
        for i in 0..cols {
            out.push_str(&format!("{:>9.4}{:>9.4}", p.sim[i], p.ode[i]));
        }
        out.push_str(&format!("{:>11.4}\n", p.sup));
    }
    if stride > 1 {
        out.push_str(&format!(
            "  … 1 in {} instants shown ({} total)\n",
            stride,
            a.points.len()
        ));
    }

    out.push_str("\ndeviation summary\n");
    out.push_str(&format!(
        "  compared            {:>8} points  ({} instants × {} tails)\n",
        a.comparisons,
        a.points.len(),
        a.depth
    ));
    match a.residual_sup_at {
        Some((t, i)) => out.push_str(&format!(
            "  sup-norm ‖ŝ−s‖∞    {:>8.4}  at t = {:.2} (tail s{})\n",
            a.residual_sup,
            t,
            sub(i)
        )),
        None => out.push_str(&format!("  sup-norm ‖ŝ−s‖∞    {:>8.4}\n", a.residual_sup)),
    }
    out.push_str(&format!(
        "  mean |residual|     {:>8.4}\n",
        a.mean_abs_residual
    ));
    out.push_str("  per-tail sup       ");
    for (i, s) in a.per_tail_sup.iter().enumerate() {
        out.push_str(&format!(" s{} {:.4}", sub(i + 1), s));
    }
    out.push('\n');
    out.push_str(&format!(
        "  relaxation (ε = {:.3})   sim {}   ode {}\n",
        a.epsilon,
        match a.relaxation_time {
            Some(t) => format!("{t:.2}"),
            None => "—".to_owned(),
        },
        match a.ode_settling_time {
            Some(t) => format!("{t:.2}"),
            None => "—".to_owned(),
        }
    ));
    out.push_str(&format!(
        "  drift events        {:>8}  (envelope: z = {:.2}, n = {})\n",
        a.drift.len(),
        a.envelope.z,
        a.n_procs
    ));
    if a.unmatched > 0 {
        out.push_str(&format!(
            "  WARNING: {} sample instants had no matching ODE grid point\n",
            a.unmatched
        ));
    }
    for d in a.drift.iter().take(5) {
        out.push_str(&format!(
            "  WARNING: drift at t = {:.2}, tail s{}: residual {:+.4} outside envelope ±{:.4}\n",
            d.t,
            sub(d.tail),
            d.residual,
            d.bound
        ));
    }
    if a.drift.len() > 5 {
        out.push_str(&format!(
            "  … and {} more drift events\n",
            a.drift.len() - 5
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, s: &[f64]) -> Event {
        let mut tails = [0.0f64; TAIL_SAMPLE_DEPTH];
        let mut depth = 0u32;
        for (i, &v) in s.iter().enumerate() {
            tails[i] = v;
            if v != 0.0 {
                depth = i as u32 + 1;
            }
        }
        Event::TailSample { t, tails, depth }
    }

    /// A toy "ODE" trajectory relaxing exponentially towards s₁ = 0.5,
    /// s₂ = 0.25 on the grid dt = 1.
    fn toy_ode(steps: usize) -> Vec<(f64, Vec<f64>)> {
        (1..=steps)
            .map(|k| {
                let t = k as f64;
                let decay = (-t / 3.0).exp();
                (t, vec![1.0, 0.5 * (1.0 - decay), 0.25 * (1.0 - decay)])
            })
            .collect()
    }

    #[test]
    fn groups_replicates_and_averages() {
        let evs = vec![
            sample(1.0, &[0.4, 0.2]),
            sample(2.0, &[0.6, 0.3]),
            sample(1.0, &[0.6, 0.4]), // second replicate, same instant
        ];
        let groups = group_by_time(&extract_samples(&evs));
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].runs.len(), 2);
        let m = groups[0].mean();
        assert!((m[0] - 0.5).abs() < 1e-12);
        assert!((m[1] - 0.3).abs() < 1e-12);
        assert_eq!(grid_of(&groups), Some((1.0, 2.0)));
    }

    #[test]
    fn perfect_agreement_has_zero_residuals_and_no_drift() {
        let ode = toy_ode(30);
        let evs: Vec<Event> = ode
            .iter()
            .map(|(t, tails)| sample(*t, &tails[1..]))
            .collect();
        let fp = vec![1.0, 0.5, 0.25];
        let a = TransientAnalysis::build(&evs, &ode, Some(&fp), &TransientOptions::new(128));
        assert_eq!(a.points.len(), 30);
        assert_eq!(a.unmatched, 0);
        assert!(a.residual_sup < 1e-12, "sup = {}", a.residual_sup);
        assert!(a.drift.is_empty());
        // The toy system reaches ε = 0.02 of the fixed point once
        // 0.5·e^{−t/3} ≤ 0.02, i.e. t ≥ 3·ln(25) ≈ 9.66 → first grid
        // instant 10. Both clocks see the same trajectory here.
        assert_eq!(a.relaxation_time, Some(10.0));
        assert_eq!(a.ode_settling_time, Some(10.0));
    }

    #[test]
    fn persistent_offset_breaches_the_envelope() {
        let ode = toy_ode(30);
        let evs: Vec<Event> = ode
            .iter()
            .map(|(t, tails)| sample(*t, &[tails[1] + 0.2, tails[2]]))
            .collect();
        let a = TransientAnalysis::build(&evs, &ode, None, &TransientOptions::new(256));
        assert!((a.residual_sup - 0.2).abs() < 1e-12);
        let (_, tail) = a.residual_sup_at.unwrap();
        assert_eq!(tail, 1);
        assert!(
            !a.drift.is_empty(),
            "a 0.2 offset must escape the n = 256 envelope"
        );
        assert!(a.drift.iter().all(|d| d.tail == 1));
        assert!(a.drift.iter().all(|d| d.residual > d.bound));
    }

    #[test]
    fn small_noise_stays_inside_the_envelope() {
        let ode = toy_ode(30);
        // ±0.005 alternating noise: well inside the 0.01 floor.
        let evs: Vec<Event> = ode
            .iter()
            .enumerate()
            .map(|(k, (t, tails))| {
                let eps = if k % 2 == 0 { 0.005 } else { -0.005 };
                sample(*t, &[(tails[1] + eps).max(0.0), tails[2]])
            })
            .collect();
        let a = TransientAnalysis::build(&evs, &ode, None, &TransientOptions::new(64));
        assert!(a.drift.is_empty(), "drift: {:?}", a.drift);
        assert!(a.residual_sup <= 0.005 + 1e-12);
    }

    #[test]
    fn never_settling_trajectory_has_no_relaxation_time() {
        let ode = toy_ode(10);
        let evs: Vec<Event> = ode
            .iter()
            .map(|(t, tails)| sample(*t, &[tails[1] + 0.5, tails[2]]))
            .collect();
        let fp = vec![1.0, 0.5, 0.25];
        let a = TransientAnalysis::build(&evs, &ode, Some(&fp), &TransientOptions::new(64));
        assert_eq!(a.relaxation_time, None);
        assert!(a.ode_settling_time.is_some());
    }

    #[test]
    fn unmatched_instants_are_counted_not_compared() {
        let ode = toy_ode(5);
        let evs = vec![
            sample(1.0, &[0.1]),
            sample(2.5, &[0.2]),
            sample(3.0, &[0.3]),
        ];
        let a = TransientAnalysis::build(&evs, &ode, None, &TransientOptions::new(64));
        assert_eq!(a.unmatched, 1);
        assert_eq!(a.points.len(), 2);
    }

    #[test]
    fn render_mentions_summary_relaxation_and_drift() {
        let ode = toy_ode(30);
        let evs: Vec<Event> = ode
            .iter()
            .map(|(t, tails)| sample(*t, &[tails[1] + 0.3, tails[2]]))
            .collect();
        let fp = vec![1.0, 0.5, 0.25];
        let a = TransientAnalysis::build(&evs, &ode, Some(&fp), &TransientOptions::new(128));
        let text = render_transient(&a);
        assert!(text.contains("transient trajectory"), "{text}");
        assert!(text.contains("deviation summary"), "{text}");
        assert!(text.contains("sup-norm"), "{text}");
        assert!(text.contains("relaxation"), "{text}");
        assert!(text.contains("WARNING: drift"), "{text}");
    }

    #[test]
    fn render_handles_empty_traces() {
        let a = TransientAnalysis::build(&[], &[], None, &TransientOptions::new(64));
        let text = render_transient(&a);
        assert!(text.contains("no tail samples"), "{text}");
    }
}
