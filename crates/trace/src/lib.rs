//! Offline analysis of `loadsteal` NDJSON traces.
//!
//! The simulator and solver stream [`loadsteal_obs::Event`]s as NDJSON
//! (one JSON object per line) via `--trace`. This crate closes the
//! loop: it parses those lines back into typed events
//! ([`reader`]), reconstructs per-processor queue timelines and run
//! phases from the event stream alone ([`timeline`]), rebuilds
//! individual job lifecycles with a wait/transfer/service sojourn
//! decomposition from `job_*` events ([`jobs`]), renders a
//! sim-vs-mean-field comparison table ([`report`]), and replays
//! `tail_sample` streams against the mean-field ODE trajectory to
//! quantify transient drift ([`transient`]).
//!
//! The layering is deliberate: this crate depends only on
//! `loadsteal-obs` (for the event model and the hand-rolled JSON
//! parser). Mean-field predictions are *inputs* — the CLI computes
//! them with `loadsteal-core` and passes a [`report::MeanFieldPrediction`]
//! in, so trace analysis stays usable on any conforming trace without
//! dragging in the ODE stack.
//!
//! # Example
//!
//! ```
//! use loadsteal_trace::{read_str, ReadMode, Timeline, TimelineConfig};
//!
//! let ndjson = "\
//! {\"ev\":\"arrival\",\"t\":0.5,\"proc\":0}\n\
//! {\"ev\":\"completion\",\"t\":1.25,\"proc\":0}\n";
//! let trace = read_str(ndjson, ReadMode::Strict).unwrap();
//! let tl = Timeline::build(&trace.events, &TimelineConfig::default());
//! assert_eq!(tl.counts.arrivals, 1);
//! assert_eq!(tl.n_procs, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod jobs;
pub mod reader;
pub mod report;
pub mod timeline;
pub mod transient;

pub use jobs::{render_jobs, Hop, JobAnalysis, JobAnomalies, JobRecord};
pub use reader::{
    parse_record, read_bytes, read_lines, read_str, ParsedTrace, ReadMode, Record, TraceDiagnostic,
    TraceError,
};
pub use report::{render_report, MeanFieldPrediction};
pub use timeline::{EventCounts, ProcTimeline, SolverSummary, Timeline, TimelineConfig};
pub use transient::{render_transient, DriftEvent, Envelope, TransientAnalysis, TransientOptions};
