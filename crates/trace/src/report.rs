//! Rendering a reconstructed [`Timeline`] as a human-readable
//! sim-vs-mean-field comparison.
//!
//! Predictions are inputs: the caller (normally the CLI, which has
//! `loadsteal-core` at hand) evaluates the paper's fixed point and
//! passes a [`MeanFieldPrediction`]; this module only formats. Without
//! a prediction the report degrades to a measurement summary.

use crate::timeline::Timeline;

/// Mean-field quantities to compare the trace against.
#[derive(Debug, Clone, Copy)]
pub struct MeanFieldPrediction {
    /// Arrival rate λ the prediction was computed at.
    pub lambda: f64,
    /// The paper's π₂ fixed point (fraction of processors with ≥ 2
    /// tasks under work stealing).
    pub pi2: f64,
    /// Predicted asymptotic tail ratio `λ/(1+λ−π₂)`.
    pub tail_ratio: f64,
    /// Predicted mean sojourn time (the paper's "time in system").
    pub mean_sojourn: f64,
}

impl MeanFieldPrediction {
    /// Assemble a prediction from λ and π₂, deriving the tail ratio
    /// `λ/(1+λ−π₂)` internally.
    pub fn new(lambda: f64, pi2: f64, mean_sojourn: f64) -> Self {
        Self {
            lambda,
            pi2,
            tail_ratio: lambda / (1.0 + lambda - pi2),
            mean_sojourn,
        }
    }
}

/// Format one comparison row: measured, predicted, relative error.
fn row(out: &mut String, label: &str, sim: Option<f64>, pred: Option<f64>) {
    let fmt = |v: Option<f64>| match v {
        Some(v) if v.is_finite() => format!("{v:>12.4}"),
        _ => format!("{:>12}", "—"),
    };
    let err = match (sim, pred) {
        (Some(s), Some(p)) if p != 0.0 && s.is_finite() && p.is_finite() => {
            format!("{:>+9.1}%", 100.0 * (s - p) / p)
        }
        _ => format!("{:>10}", "—"),
    };
    out.push_str(&format!("  {label:<26}{}{}{err}\n", fmt(sim), fmt(pred)));
}

/// Render the sim-vs-mean-field report.
pub fn render_report(tl: &Timeline, pred: Option<&MeanFieldPrediction>) -> String {
    let mut out = String::new();

    out.push_str("trace summary\n");
    out.push_str(&format!("  processors          {:>8}\n", tl.n_procs));
    out.push_str(&format!(
        "  span                [{:.1}, {:.1}]  (warmup {:.1}, measured {:.1})\n",
        tl.start,
        tl.end,
        tl.warmup,
        tl.span()
    ));
    out.push_str(&format!(
        "  events              {:>8} arrivals, {} completions, {} steal attempts, {} migrations\n",
        tl.counts.arrivals, tl.counts.completions, tl.counts.steal_attempts, tl.counts.migrations
    ));
    if tl.replicates > 0 {
        out.push_str(&format!("  replicates          {:>8}\n", tl.replicates));
    }
    if tl.depth_underflows > 0 {
        out.push_str(&format!(
            "  WARNING: {} queue-depth underflows — trace is truncated or interleaves multiple runs; per-processor statistics are unreliable\n",
            tl.depth_underflows
        ));
    }
    if tl.sourceless_migrations > 0 {
        out.push_str(&format!(
            "  WARNING: {} migrations carry no donor (`src`) — trace predates the two-endpoint format; queue depths and tail fractions are unreliable\n",
            tl.sourceless_migrations
        ));
    }
    if let Some(t) = tl.steady_at {
        out.push_str(&format!("  steady state from   {t:>8.1}\n"));
        let span = tl.end - tl.start;
        if span > 0.0 {
            let frac = ((t - tl.start) / span).clamp(0.0, 1.0);
            out.push_str(&format!(
                "  relaxation          {:>8.1}  ({:.0}% of run in transient)\n",
                t - tl.start,
                frac * 100.0
            ));
        }
    }

    if tl.n_procs > 0 {
        out.push('\n');
        match pred {
            Some(p) => out.push_str(&format!(
                "sim vs mean-field  (λ = {:.4}, π₂ = {:.4})\n",
                p.lambda, p.pi2
            )),
            None => out.push_str("measurements  (no mean-field prediction supplied)\n"),
        }
        out.push_str(&format!(
            "  {:<26}{:>12}{:>12}{:>10}\n",
            "quantity", "simulated", "predicted", "rel. err"
        ));
        row(
            &mut out,
            "arrival rate λ",
            Some(tl.arrival_rate()),
            pred.map(|p| p.lambda),
        );
        row(
            &mut out,
            "mean sojourn time",
            tl.mean_sojourn_little(),
            pred.map(|p| p.mean_sojourn),
        );
        row(
            &mut out,
            "tail ratio s(i+1)/s(i)",
            tl.tail_ratio(),
            pred.map(|p| p.tail_ratio),
        );
        row(
            &mut out,
            "utilization s(1)",
            tl.tails.get(1).copied(),
            pred.map(|p| p.lambda),
        );
        row(
            &mut out,
            "π₂ (fraction ≥ 2 tasks)",
            tl.tails.get(2).copied(),
            pred.map(|p| p.pi2),
        );
        row(
            &mut out,
            "steal success rate",
            (tl.measured.steal_attempts > 0).then(|| tl.steal_success_rate()),
            None,
        );
        row(
            &mut out,
            "throughput / proc",
            Some(tl.throughput()),
            pred.map(|p| p.lambda),
        );
    }

    if tl.n_procs > 0 && (tl.counts.steal_attempts > 0 || tl.counts.migrations > 0) {
        out.push('\n');
        out.push_str("steal / migration breakdown\n");
        out.push_str(&format!(
            "  attempts            {:>8}  ({} successful, {:.1}% hit rate)\n",
            tl.counts.steal_attempts,
            tl.counts.steal_successes,
            if tl.counts.steal_attempts > 0 {
                100.0 * tl.counts.steal_successes as f64 / tl.counts.steal_attempts as f64
            } else {
                0.0
            }
        ));
        out.push_str(&format!(
            "  migrations          {:>8}  ({} tasks moved, {:.3} per migration)\n",
            tl.counts.migrations,
            tl.counts.tasks_migrated,
            if tl.counts.migrations > 0 {
                tl.counts.tasks_migrated as f64 / tl.counts.migrations as f64
            } else {
                0.0
            }
        ));
        // Per-processor spread: min / mean / max over the fleet, so a
        // 128-proc trace stays a 4-line section rather than a table.
        let spread = |get: fn(&crate::timeline::ProcTimeline) -> u64| {
            let vals: Vec<u64> = tl.per_proc.iter().map(get).collect();
            let min = vals.iter().min().copied().unwrap_or(0);
            let max = vals.iter().max().copied().unwrap_or(0);
            let mean = vals.iter().sum::<u64>() as f64 / vals.len().max(1) as f64;
            format!("{min:>6} min {mean:>9.2} mean {max:>6} max")
        };
        out.push_str(&format!(
            "  attempts / proc     {}\n",
            spread(|p| p.steal_attempts)
        ));
        out.push_str(&format!(
            "  successes / proc    {}\n",
            spread(|p| p.steal_successes)
        ));
        out.push_str(&format!(
            "  tasks in / proc     {}\n",
            spread(|p| p.tasks_in)
        ));
        out.push_str(&format!(
            "  tasks out / proc    {}\n",
            spread(|p| p.tasks_out)
        ));
    }

    if tl.solver.steps_total() > 0 {
        out.push('\n');
        out.push_str("solver\n");
        out.push_str(&format!(
            "  steps               {} accepted, {} rejected\n",
            tl.solver.steps_accepted, tl.solver.steps_rejected
        ));
        if let Some(c) = tl.solver.converged {
            out.push_str(&format!(
                "  converged           {c}{}\n",
                tl.solver
                    .final_residual
                    .map(|r| format!("  (residual {r:.3e})"))
                    .unwrap_or_default()
            ));
        }
        if let Some((t, r)) = tl.solver.residuals.last() {
            out.push_str(&format!("  last residual       {r:.3e} at t = {t:.1}\n"));
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::TimelineConfig;
    use loadsteal_obs::{Event, SimEventKind};

    fn small_timeline() -> Timeline {
        let mut events = Vec::new();
        for k in 0..20 {
            let t = k as f64;
            events.push(Event::Sim {
                kind: SimEventKind::Arrival,
                t,
                proc: (k % 4) as u32,
                src: None,
                count: 1,
            });
            events.push(Event::Sim {
                kind: SimEventKind::Completion,
                t: t + 0.5,
                proc: (k % 4) as u32,
                src: None,
                count: 1,
            });
        }
        events.push(Event::Sim {
            kind: SimEventKind::StealAttempt,
            t: 10.0,
            proc: 1,
            src: None,
            count: 1,
        });
        Timeline::build(&events, &TimelineConfig::default())
    }

    #[test]
    fn prediction_derives_tail_ratio() {
        let p = MeanFieldPrediction::new(0.5, 0.1, 1.63);
        assert!((p.tail_ratio - 0.5 / 1.4).abs() < 1e-12);
    }

    #[test]
    fn report_with_prediction_has_comparison_rows() {
        let tl = small_timeline();
        let p = MeanFieldPrediction::new(0.25, 0.02, 1.2);
        let r = render_report(&tl, Some(&p));
        assert!(r.contains("sim vs mean-field"), "{r}");
        assert!(r.contains("mean sojourn time"), "{r}");
        assert!(r.contains("tail ratio"), "{r}");
        assert!(r.contains("rel. err"), "{r}");
        assert!(r.contains("processors"), "{r}");
        // Every comparison row carries a relative error or a dash.
        assert!(r.contains('%') || r.contains('—'), "{r}");
    }

    #[test]
    fn report_includes_steal_breakdown_when_steals_happened() {
        let tl = small_timeline();
        let r = render_report(&tl, None);
        assert!(r.contains("steal / migration breakdown"), "{r}");
        assert!(r.contains("attempts / proc"), "{r}");
        assert!(r.contains("tasks out / proc"), "{r}");
    }

    #[test]
    fn report_omits_steal_breakdown_for_steal_free_traces() {
        let events = [Event::Sim {
            kind: SimEventKind::Arrival,
            t: 0.0,
            proc: 0,
            src: None,
            count: 1,
        }];
        let tl = Timeline::build(&events, &TimelineConfig::default());
        let r = render_report(&tl, None);
        assert!(!r.contains("steal / migration breakdown"), "{r}");
    }

    #[test]
    fn report_without_prediction_degrades_gracefully() {
        let tl = small_timeline();
        let r = render_report(&tl, None);
        assert!(r.contains("no mean-field prediction"), "{r}");
        assert!(!r.contains("sim vs mean-field"), "{r}");
    }

    #[test]
    fn empty_timeline_reports_summary_only() {
        let tl = Timeline::build(&[], &TimelineConfig::default());
        let r = render_report(&tl, None);
        assert!(r.contains("trace summary"), "{r}");
        assert!(!r.contains("quantity"), "{r}");
    }

    #[test]
    fn underflow_warning_appears() {
        let events = [Event::Sim {
            kind: SimEventKind::Completion,
            t: 1.0,
            proc: 0,
            src: None,
            count: 1,
        }];
        let tl = Timeline::build(&events, &TimelineConfig::default());
        let r = render_report(&tl, None);
        assert!(r.contains("WARNING"), "{r}");
    }
}
