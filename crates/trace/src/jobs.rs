//! Per-job causal reconstruction: from a `job_*` event stream back to
//! individual job timelines, migration chains, and a three-way sojourn
//! decomposition.
//!
//! The simulator's opt-in job tracing (`--trace-jobs`) gives every task
//! a stable identity and reports four lifecycle moments: `job_arrival`
//! (the job enters the system), `job_migrate` (it is stolen, shared, or
//! rebalanced from one processor to another, with the transfer delay it
//! paid), `job_service_start` (it reaches the front of a queue and
//! begins service), and `job_completion` (it leaves). Because steals in
//! the paper's models only ever move *tail* tasks, the in-service task
//! never migrates: every job has exactly one service start, and all of
//! its migrations precede it. The sojourn therefore decomposes exactly:
//!
//! ```text
//! sojourn  =  queue wait  +  transfer time  +  service time
//! service  =  completion − service_start
//! transfer =  Σ migration delays
//! wait     =  (service_start − arrival) − transfer
//! ```
//!
//! [`JobAnalysis::build`] replays a trace into this decomposition plus
//! migration-chain statistics (hops per job, chain shape, per-hop
//! delays) and migrated-vs-local sojourn distributions — the
//! measurement side of the paper's claim that stealing trades a little
//! transfer time for a lot of queueing time.
//!
//! The reconstructor is tolerant by design: traces may be truncated
//! (jobs still in flight at the horizon), lossy-read (lines dropped by
//! `ReadMode::Lossy`), or interleaved from `--runs > 1` (job ids
//! collide across runs). Inconsistencies are counted in
//! [`JobAnomalies`], never panicked on, and anomalous jobs are excluded
//! from the aggregates.

use std::collections::HashMap;

use loadsteal_obs::{Digest, Event, JobEventKind};

/// One migration hop in a job's causal chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hop {
    /// When the job landed on the destination.
    pub t: f64,
    /// Donor processor.
    pub src: u32,
    /// Receiving processor.
    pub dst: u32,
    /// Transfer delay paid for this hop (0 for instantaneous moves).
    pub delay: f64,
}

/// The reconstructed lifecycle of a single job.
#[derive(Debug, Clone, Default)]
pub struct JobRecord {
    /// Arrival time, once observed.
    pub arrival_t: Option<f64>,
    /// Processor the job first arrived at.
    pub arrival_proc: u32,
    /// Migration hops in trace order.
    pub hops: Vec<Hop>,
    /// Service start time, once observed.
    pub service_start_t: Option<f64>,
    /// Processor that served the job.
    pub service_proc: u32,
    /// Completion time, once observed.
    pub completion_t: Option<f64>,
    /// Processor the completion was reported on.
    pub completion_proc: u32,
    /// Set when this job's event sequence violated the lifecycle
    /// (duplicate arrival, migration after service start, …); such
    /// jobs are excluded from the aggregates.
    pub anomalous: bool,
}

impl JobRecord {
    /// Where the job currently sits according to the chain so far:
    /// arrival processor, then the destination of the last hop.
    fn location(&self) -> u32 {
        self.hops.last().map_or(self.arrival_proc, |h| h.dst)
    }

    /// Total transfer delay across all hops.
    pub fn transfer(&self) -> f64 {
        self.hops.iter().map(|h| h.delay).sum()
    }

    /// The three-way decomposition `(wait, transfer, service)`, when
    /// the lifecycle is complete and consistent.
    pub fn decompose(&self) -> Option<(f64, f64, f64)> {
        let (a, s, c) = (self.arrival_t?, self.service_start_t?, self.completion_t?);
        if self.anomalous {
            return None;
        }
        let transfer = self.transfer();
        Some((s - a - transfer, transfer, c - s))
    }

    /// Full sojourn `completion − arrival`, when both ends were seen.
    pub fn sojourn(&self) -> Option<f64> {
        Some(self.completion_t? - self.arrival_t?)
    }
}

/// Lifecycle inconsistencies observed during replay. Nonzero fields
/// mean the trace is truncated, lossy-read, or interleaves multiple
/// runs (`--runs > 1` reuses job ids across replications).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobAnomalies {
    /// `job_arrival` seen for an id that already arrived.
    pub duplicate_arrivals: u64,
    /// `job_migrate` after the job's service had started.
    pub migrations_after_service: u64,
    /// `job_migrate` whose `src` does not match the job's current
    /// location (broken causal chain — usually a dropped line).
    pub chain_breaks: u64,
    /// `job_service_start` seen twice for one id.
    pub duplicate_service_starts: u64,
    /// `job_completion` seen twice for one id.
    pub duplicate_completions: u64,
    /// Lifecycle events for ids with no observed `job_arrival`.
    pub orphan_events: u64,
    /// Events whose timestamp ran backwards within one job's chain.
    pub time_regressions: u64,
}

impl JobAnomalies {
    /// Total inconsistencies of any kind.
    pub fn total(&self) -> u64 {
        self.duplicate_arrivals
            + self.migrations_after_service
            + self.chain_breaks
            + self.duplicate_service_starts
            + self.duplicate_completions
            + self.orphan_events
            + self.time_regressions
    }
}

/// Aggregated decomposition and chain statistics over completed,
/// consistent jobs (optionally restricted to completions at or after a
/// warmup boundary).
#[derive(Debug, Clone, Default)]
pub struct JobAnalysis {
    /// Jobs whose `job_arrival` was observed.
    pub arrived: u64,
    /// Jobs with a full consistent lifecycle inside the measurement
    /// window (these feed every digest below).
    pub completed: u64,
    /// Completed jobs that migrated at least once.
    pub migrated: u64,
    /// Total migration hops across completed jobs.
    pub hops: u64,
    /// Longest migration chain (hops) seen on a completed job.
    pub longest_chain: u64,
    /// Ids of an example job attaining `longest_chain` (first seen).
    pub longest_chain_job: Option<u64>,
    /// Queue-wait component distribution.
    pub wait: Digest,
    /// Transfer component distribution.
    pub transfer: Digest,
    /// Service component distribution.
    pub service: Digest,
    /// Full sojourn distribution (all completed jobs).
    pub sojourn: Digest,
    /// Sojourns of jobs that migrated at least once.
    pub sojourn_migrated: Digest,
    /// Sojourns of jobs served where they arrived.
    pub sojourn_local: Digest,
    /// Per-hop transfer delays (zero-delay hops included).
    pub hop_delay: Digest,
    /// Inconsistencies found during replay.
    pub anomalies: JobAnomalies,
    /// Warmup boundary applied (completions before it are replayed for
    /// causality but excluded from the aggregates, mirroring the
    /// simulator's own online statistics).
    pub warmup: f64,
}

impl JobAnalysis {
    /// Replay `events` into per-job timelines and aggregate the
    /// decomposition over jobs completing at or after `warmup`.
    pub fn build(events: &[Event], warmup: f64) -> Self {
        let (analysis, _) = Self::build_with_records(events, warmup);
        analysis
    }

    /// As [`build`](Self::build), additionally returning the raw
    /// per-job records (keyed by job id) for callers that need the
    /// individual timelines — tests, invariant checks, drill-downs.
    pub fn build_with_records(events: &[Event], warmup: f64) -> (Self, HashMap<u64, JobRecord>) {
        let mut jobs: HashMap<u64, JobRecord> = HashMap::new();
        let mut an = JobAnomalies::default();

        for ev in events {
            let Event::Job {
                kind,
                t,
                job,
                proc,
                src,
                delay,
            } = *ev
            else {
                continue;
            };
            match kind {
                JobEventKind::Arrival => {
                    let rec = jobs.entry(job).or_default();
                    if rec.arrival_t.is_some() {
                        an.duplicate_arrivals += 1;
                        rec.anomalous = true;
                    } else {
                        rec.arrival_t = Some(t);
                        rec.arrival_proc = proc;
                    }
                }
                JobEventKind::Migrate => {
                    let rec = match jobs.get_mut(&job) {
                        Some(r) if r.arrival_t.is_some() => r,
                        _ => {
                            an.orphan_events += 1;
                            continue;
                        }
                    };
                    if rec.service_start_t.is_some() {
                        an.migrations_after_service += 1;
                        rec.anomalous = true;
                    }
                    let from = src.unwrap_or(rec.location());
                    if from != rec.location() {
                        an.chain_breaks += 1;
                        rec.anomalous = true;
                    }
                    let last_t = rec.hops.last().map_or(rec.arrival_t.unwrap(), |h| h.t);
                    if t < last_t {
                        an.time_regressions += 1;
                        rec.anomalous = true;
                    }
                    rec.hops.push(Hop {
                        t,
                        src: from,
                        dst: proc,
                        delay,
                    });
                }
                JobEventKind::ServiceStart => {
                    let rec = match jobs.get_mut(&job) {
                        Some(r) if r.arrival_t.is_some() => r,
                        _ => {
                            an.orphan_events += 1;
                            continue;
                        }
                    };
                    if rec.service_start_t.is_some() {
                        an.duplicate_service_starts += 1;
                        rec.anomalous = true;
                        continue;
                    }
                    let last_t = rec.hops.last().map_or(rec.arrival_t.unwrap(), |h| h.t);
                    if t < last_t {
                        an.time_regressions += 1;
                        rec.anomalous = true;
                    }
                    rec.service_start_t = Some(t);
                    rec.service_proc = proc;
                }
                JobEventKind::Completion => {
                    let rec = match jobs.get_mut(&job) {
                        Some(r) if r.arrival_t.is_some() => r,
                        _ => {
                            an.orphan_events += 1;
                            continue;
                        }
                    };
                    if rec.completion_t.is_some() {
                        an.duplicate_completions += 1;
                        rec.anomalous = true;
                        continue;
                    }
                    match rec.service_start_t {
                        Some(s) if t >= s => {}
                        _ => {
                            an.time_regressions += 1;
                            rec.anomalous = true;
                        }
                    }
                    rec.completion_t = Some(t);
                    rec.completion_proc = proc;
                }
            }
        }

        let mut out = JobAnalysis {
            warmup,
            anomalies: an,
            ..JobAnalysis::default()
        };
        for (&id, rec) in &jobs {
            if rec.arrival_t.is_some() {
                out.arrived += 1;
            }
            let Some((wait, transfer, service)) = rec.decompose() else {
                continue;
            };
            let completion = rec.completion_t.unwrap();
            if completion < warmup {
                continue;
            }
            // A consistent lifecycle can still have a (numerically)
            // negative wait only through float cancellation; clamp the
            // digest input, the identity check elsewhere uses raw sums.
            out.completed += 1;
            out.wait.record(wait.max(0.0));
            out.transfer.record(transfer);
            out.service.record(service);
            let sojourn = rec.sojourn().unwrap();
            out.sojourn.record(sojourn);
            if rec.hops.is_empty() {
                out.sojourn_local.record(sojourn);
            } else {
                out.migrated += 1;
                out.sojourn_migrated.record(sojourn);
                out.hops += rec.hops.len() as u64;
                for h in &rec.hops {
                    out.hop_delay.record(h.delay);
                }
                if rec.hops.len() as u64 > out.longest_chain {
                    out.longest_chain = rec.hops.len() as u64;
                    out.longest_chain_job = Some(id);
                }
            }
        }
        (out, jobs)
    }

    /// Fraction of completed jobs that migrated at least once.
    pub fn migrated_fraction(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.migrated as f64 / self.completed as f64
        }
    }

    /// Mean hops per migrated job.
    pub fn hops_per_migrated(&self) -> f64 {
        if self.migrated == 0 {
            0.0
        } else {
            self.hops as f64 / self.migrated as f64
        }
    }
}

/// Format a `(mean, p50, p90, p99)` digest row.
fn digest_row(out: &mut String, label: &str, d: &Digest, share_of: Option<f64>) {
    let q = |p: f64| match d.quantile(p) {
        // `+ 0.0` normalizes the interpolator's occasional -0.0.
        Some(v) => format!("{:>10.4}", v + 0.0),
        None => format!("{:>10}", "—"),
    };
    let share = match share_of {
        Some(total) if total > 0.0 => format!("{:>7.1}%", 100.0 * d.mean() / total),
        _ => format!("{:>8}", ""),
    };
    out.push_str(&format!(
        "  {label:<18}{:>10.4}{}{}{}{share}\n",
        d.mean(),
        q(0.5),
        q(0.9),
        q(0.99),
    ));
}

/// Render the job-level report: decomposition table, migrated-vs-local
/// comparison, and chain statistics.
pub fn render_jobs(a: &JobAnalysis) -> String {
    let mut out = String::new();
    out.push_str("job lifecycle summary\n");
    out.push_str(&format!("  jobs arrived        {:>10}\n", a.arrived));
    out.push_str(&format!(
        "  jobs completed      {:>10}  (measured from t ≥ {:.1})\n",
        a.completed, a.warmup
    ));
    out.push_str(&format!(
        "  jobs migrated       {:>10}  ({:.2}% of completed)\n",
        a.migrated,
        100.0 * a.migrated_fraction()
    ));
    if a.anomalies.total() > 0 {
        let an = &a.anomalies;
        out.push_str(&format!(
            "  WARNING: {} lifecycle inconsistencies (dup arrivals {}, post-service migrations {}, chain breaks {}, dup starts {}, dup completions {}, orphans {}, time regressions {}) — trace is truncated, lossy, or interleaves --runs > 1; anomalous jobs excluded\n",
            an.total(),
            an.duplicate_arrivals,
            an.migrations_after_service,
            an.chain_breaks,
            an.duplicate_service_starts,
            an.duplicate_completions,
            an.orphan_events,
            an.time_regressions,
        ));
    }
    if a.completed == 0 {
        out.push_str("  no completed jobs in the measurement window\n");
        return out;
    }

    out.push('\n');
    out.push_str("sojourn decomposition  (sojourn = wait + transfer + service)\n");
    out.push_str(&format!(
        "  {:<18}{:>10}{:>10}{:>10}{:>10}{:>8}\n",
        "component", "mean", "p50", "p90", "p99", "share"
    ));
    let total = a.sojourn.mean();
    digest_row(&mut out, "queue wait", &a.wait, Some(total));
    digest_row(&mut out, "transfer", &a.transfer, Some(total));
    digest_row(&mut out, "service", &a.service, Some(total));
    digest_row(&mut out, "sojourn", &a.sojourn, None);

    out.push('\n');
    out.push_str("migrated vs local jobs\n");
    out.push_str(&format!(
        "  {:<18}{:>10}{:>10}{:>10}{:>10}{:>8}\n",
        "sojourn of", "mean", "p50", "p90", "p99", "count"
    ));
    let count_row = |out: &mut String, label: &str, d: &Digest| {
        let q = |p: f64| match d.quantile(p) {
            Some(v) => format!("{v:>10.4}"),
            None => format!("{:>10}", "—"),
        };
        out.push_str(&format!(
            "  {label:<18}{:>10.4}{}{}{}{:>8}\n",
            d.mean(),
            q(0.5),
            q(0.9),
            q(0.99),
            d.count(),
        ));
    };
    count_row(&mut out, "local jobs", &a.sojourn_local);
    count_row(&mut out, "migrated jobs", &a.sojourn_migrated);

    if a.migrated > 0 {
        out.push('\n');
        out.push_str("migration chains\n");
        out.push_str(&format!(
            "  hops (total)        {:>10}  ({:.3} per migrated job)\n",
            a.hops,
            a.hops_per_migrated()
        ));
        let chain = match a.longest_chain_job {
            Some(id) => format!("  (job {id})"),
            None => String::new(),
        };
        out.push_str(&format!(
            "  longest chain       {:>10}{chain}\n",
            a.longest_chain
        ));
        out.push_str(&format!(
            "  hop delay           {:>10.4} mean, {:.4} max\n",
            a.hop_delay.mean(),
            a.hop_delay.max().unwrap_or(0.0)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(kind: JobEventKind, t: f64, job: u64, proc: u32) -> Event {
        Event::Job {
            kind,
            t,
            job,
            proc,
            src: None,
            delay: 0.0,
        }
    }

    fn migrate(t: f64, id: u64, dst: u32, src: u32, delay: f64) -> Event {
        Event::Job {
            kind: JobEventKind::Migrate,
            t,
            job: id,
            proc: dst,
            src: Some(src),
            delay,
        }
    }

    /// A deterministic SplitMix64 so property tests need no external
    /// randomness crates.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
        fn f64(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// Generate a random but causally-valid trace of `n` jobs; returns
    /// the events plus each job's expected (wait, transfer, service).
    fn synthetic_trace(seed: u64, n: u64) -> (Vec<Event>, Vec<(f64, f64, f64)>) {
        let mut rng = Rng(seed);
        let mut events = Vec::new();
        let mut expected = Vec::new();
        for id in 0..n {
            let arrival = rng.f64() * 100.0;
            let mut proc = rng.below(16) as u32;
            events.push(job(JobEventKind::Arrival, arrival, id, proc));
            let mut t = arrival;
            let mut transfer = 0.0;
            for _ in 0..rng.below(4) {
                let dst = (proc + 1 + rng.below(15) as u32) % 16;
                let delay = if rng.below(3) == 0 { 0.0 } else { rng.f64() };
                t += delay + rng.f64() * 0.5; // queueing between hops
                events.push(migrate(t, id, dst, proc, delay));
                transfer += delay;
                proc = dst;
            }
            let start = t + rng.f64();
            events.push(job(JobEventKind::ServiceStart, start, id, proc));
            let service = rng.f64() + 0.01;
            events.push(job(JobEventKind::Completion, start + service, id, proc));
            expected.push((start - arrival - transfer, transfer, service));
        }
        (events, expected)
    }

    #[test]
    fn single_job_decomposes_exactly() {
        let events = [
            job(JobEventKind::Arrival, 1.0, 7, 3),
            migrate(2.5, 7, 9, 3, 0.75),
            job(JobEventKind::ServiceStart, 4.0, 7, 9),
            job(JobEventKind::Completion, 6.0, 7, 9),
        ];
        let (a, recs) = JobAnalysis::build_with_records(&events, 0.0);
        assert_eq!(a.completed, 1);
        assert_eq!(a.migrated, 1);
        assert_eq!(a.anomalies.total(), 0);
        let (w, tr, s) = recs[&7].decompose().unwrap();
        assert!((w - 2.25).abs() < 1e-12, "wait {w}");
        assert!((tr - 0.75).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert!((w + tr + s - recs[&7].sojourn().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn local_job_has_zero_transfer() {
        let events = [
            job(JobEventKind::Arrival, 0.0, 1, 0),
            job(JobEventKind::ServiceStart, 0.5, 1, 0),
            job(JobEventKind::Completion, 1.5, 1, 0),
        ];
        let a = JobAnalysis::build(&events, 0.0);
        assert_eq!(a.migrated, 0);
        assert_eq!(a.transfer.mean(), 0.0);
        assert_eq!(a.sojourn_local.count(), 1);
        assert_eq!(a.sojourn_migrated.count(), 0);
    }

    #[test]
    fn warmup_excludes_early_completions() {
        let mut events = Vec::new();
        for (id, base) in [(0u64, 0.0), (1, 50.0)] {
            events.push(job(JobEventKind::Arrival, base, id, 0));
            events.push(job(JobEventKind::ServiceStart, base + 1.0, id, 0));
            events.push(job(JobEventKind::Completion, base + 2.0, id, 0));
        }
        let a = JobAnalysis::build(&events, 10.0);
        assert_eq!(a.arrived, 2);
        assert_eq!(a.completed, 1); // only the job completing at t = 52
    }

    #[test]
    fn incomplete_jobs_are_not_aggregated() {
        // Truncated trace: job 2 never completes, job 3 never starts.
        let events = [
            job(JobEventKind::Arrival, 0.0, 2, 0),
            job(JobEventKind::ServiceStart, 1.0, 2, 0),
            job(JobEventKind::Arrival, 0.5, 3, 1),
        ];
        let a = JobAnalysis::build(&events, 0.0);
        assert_eq!(a.arrived, 2);
        assert_eq!(a.completed, 0);
        assert_eq!(a.anomalies.total(), 0); // truncation is not an anomaly
    }

    #[test]
    fn lifecycle_violations_are_counted_and_quarantined() {
        let events = [
            job(JobEventKind::Arrival, 0.0, 1, 0),
            job(JobEventKind::Arrival, 0.1, 1, 2), // duplicate
            job(JobEventKind::ServiceStart, 1.0, 1, 0),
            migrate(2.0, 1, 3, 0, 0.5), // after service start
            job(JobEventKind::Completion, 3.0, 1, 3),
            job(JobEventKind::Completion, 4.0, 9, 0), // orphan: never arrived
        ];
        let (a, recs) = JobAnalysis::build_with_records(&events, 0.0);
        assert_eq!(a.anomalies.duplicate_arrivals, 1);
        assert_eq!(a.anomalies.migrations_after_service, 1);
        assert_eq!(a.anomalies.orphan_events, 1);
        assert!(recs[&1].anomalous);
        assert_eq!(a.completed, 0, "anomalous job must not feed aggregates");
    }

    #[test]
    fn chain_breaks_are_detected() {
        // Hop claims src = 5 but the job sits on proc 0.
        let events = [
            job(JobEventKind::Arrival, 0.0, 1, 0),
            migrate(1.0, 1, 2, 5, 0.1),
            job(JobEventKind::ServiceStart, 2.0, 1, 2),
            job(JobEventKind::Completion, 3.0, 1, 2),
        ];
        let a = JobAnalysis::build(&events, 0.0);
        assert_eq!(a.anomalies.chain_breaks, 1);
        assert_eq!(a.completed, 0);
    }

    #[test]
    fn property_every_completion_pairs_with_one_arrival() {
        for seed in 1..=8u64 {
            let (events, _) = synthetic_trace(seed, 50);
            let (a, recs) = JobAnalysis::build_with_records(&events, 0.0);
            assert_eq!(a.anomalies.total(), 0, "seed {seed}");
            assert_eq!(a.completed, 50, "seed {seed}");
            for (id, r) in &recs {
                assert!(r.arrival_t.is_some(), "job {id} completed sans arrival");
                assert!(r.completion_t.is_some());
            }
        }
    }

    #[test]
    fn property_chains_are_time_ordered_and_acyclic_in_time() {
        for seed in 11..=18u64 {
            let (events, _) = synthetic_trace(seed, 40);
            let (_, recs) = JobAnalysis::build_with_records(&events, 0.0);
            for (id, r) in &recs {
                let mut t = r.arrival_t.unwrap();
                let mut loc = r.arrival_proc;
                for h in &r.hops {
                    assert!(h.t >= t, "job {id}: hop time ran backwards");
                    assert_eq!(h.src, loc, "job {id}: chain broken");
                    assert_ne!(h.src, h.dst, "job {id}: self-hop");
                    t = h.t;
                    loc = h.dst;
                }
                assert!(r.service_start_t.unwrap() >= t, "job {id}");
                assert_eq!(r.service_proc, loc, "job {id}: served off-chain");
                assert!(r.completion_t.unwrap() >= r.service_start_t.unwrap());
            }
        }
    }

    #[test]
    fn property_components_nonnegative_and_sum_to_sojourn() {
        for seed in 21..=28u64 {
            let (events, expected) = synthetic_trace(seed, 60);
            let (_, recs) = JobAnalysis::build_with_records(&events, 0.0);
            for (id, want) in expected.iter().enumerate() {
                let r = &recs[&(id as u64)];
                let (w, tr, s) = r.decompose().unwrap();
                assert!(w >= -1e-9 && tr >= 0.0 && s >= 0.0, "job {id}");
                let sojourn = r.sojourn().unwrap();
                assert!(
                    (w + tr + s - sojourn).abs() < 1e-9,
                    "job {id}: {w} + {tr} + {s} != {sojourn}"
                );
                assert!((w - want.0).abs() < 1e-9, "job {id} wait");
                assert!((tr - want.1).abs() < 1e-9, "job {id} transfer");
                assert!((s - want.2).abs() < 1e-9, "job {id} service");
            }
        }
    }

    #[test]
    fn property_lossy_traces_degrade_to_counted_anomalies() {
        // Drop random lines (simulating ReadMode::Lossy survivors) and
        // require: no panic, anomaly counts consistent, surviving
        // complete jobs still decompose exactly.
        for seed in 31..=36u64 {
            let (events, _) = synthetic_trace(seed, 40);
            let mut rng = Rng(seed ^ 0xDEAD);
            let kept: Vec<Event> = events
                .iter()
                .copied()
                .filter(|_| rng.below(5) != 0) // drop ~20%
                .collect();
            let (a, recs) = JobAnalysis::build_with_records(&kept, 0.0);
            for r in recs.values() {
                if let Some((w, tr, s)) = r.decompose() {
                    let sojourn = r.sojourn().unwrap();
                    assert!((w + tr + s - sojourn).abs() < 1e-9);
                }
            }
            // Dropped arrivals orphan later events; dropped hops break
            // chains. Both must surface as counts, not silent misdata.
            let dropped = events.len() - kept.len();
            if dropped > 0 {
                assert!(a.completed <= 40);
            }
        }
    }

    #[test]
    fn render_mentions_every_section() {
        let (events, _) = synthetic_trace(5, 30);
        let a = JobAnalysis::build(&events, 0.0);
        let r = render_jobs(&a);
        assert!(r.contains("job lifecycle summary"), "{r}");
        assert!(r.contains("sojourn decomposition"), "{r}");
        assert!(r.contains("queue wait"), "{r}");
        assert!(r.contains("migrated vs local"), "{r}");
        assert!(r.contains("migration chains"), "{r}");
        assert!(!r.contains("WARNING"), "{r}");
    }

    #[test]
    fn render_handles_empty_analysis() {
        let a = JobAnalysis::build(&[], 0.0);
        let r = render_jobs(&a);
        assert!(r.contains("no completed jobs"), "{r}");
    }

    #[test]
    fn sim_events_are_ignored() {
        use loadsteal_obs::SimEventKind;
        let events = [
            Event::Sim {
                kind: SimEventKind::Arrival,
                t: 0.0,
                proc: 0,
                src: None,
                count: 1,
            },
            job(JobEventKind::Arrival, 0.0, 1, 0),
            job(JobEventKind::ServiceStart, 1.0, 1, 0),
            job(JobEventKind::Completion, 2.0, 1, 0),
        ];
        let a = JobAnalysis::build(&events, 0.0);
        assert_eq!(a.arrived, 1);
        assert_eq!(a.completed, 1);
    }
}
