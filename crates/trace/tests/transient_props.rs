//! Property tests for the transient pipeline's windowed tail
//! estimator, mirroring `reader_props.rs`:
//!
//! * Reconstruction — `ŝᵢ(t)` pulled back out of a trace's
//!   `tail_sample` lines must equal an exact `O(n·events)` replay of
//!   the per-processor queue depths at every sample instant, bit for
//!   bit (the wire format prints shortest-round-trip floats).
//! * Replicates — concatenating the trace with itself doubles every
//!   group's run count and leaves the cross-run mean unchanged.
//! * Degradation — corrupting `tail_sample` lines in lossy mode
//!   becomes counted skips, never a panic, and the analysis still
//!   compares every *surviving* instant with zero residual against
//!   the replay trajectory.

use loadsteal_obs::{Event, SimEventKind, TAIL_SAMPLE_DEPTH};
use loadsteal_trace::transient::{extract_samples, group_by_time};
use loadsteal_trace::{read_str, ReadMode, TransientAnalysis, TransientOptions};
use proptest::prelude::*;

/// Sampling grid used by every synthetic trace in this file.
const DT: f64 = 0.5;

/// A synthetic trace of `len` queue-changing events across `n_procs`
/// processors, with `tail_sample` lines injected on the `DT` grid the
/// way the engine does it: the snapshot reflects the state *just
/// before* the first event at or past the grid instant.
///
/// Returns the NDJSON document and the exact replay — one
/// `(t, tails)` row per sample, where `tails[i-1]` is the fraction of
/// processors with queue depth ≥ i.
fn sampled_doc(seed: u64, len: usize, n_procs: usize) -> (String, Vec<(f64, [f64; 8])>) {
    let mut s = seed;
    let mut next = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        s >> 33
    };

    let mut depths = vec![0u64; n_procs];
    let tails_of = |depths: &[u64]| {
        let mut tails = [0.0f64; TAIL_SAMPLE_DEPTH];
        for (i, tail) in tails.iter_mut().enumerate() {
            let at_least = depths.iter().filter(|&&d| d > i as u64).count();
            *tail = at_least as f64 / n_procs as f64;
        }
        tails
    };
    let sample_event = |t: f64, tails: [f64; 8]| {
        let depth = tails.iter().rposition(|&v| v != 0.0).map_or(0, |p| p + 1);
        Event::TailSample {
            t,
            tails,
            depth: depth as u32,
        }
    };

    let mut doc = String::new();
    let mut expected = Vec::new();
    let mut t = 0.0f64;
    let mut next_sample = DT;
    for _ in 0..len {
        t += 0.125 + (next() % 8) as f64 * 0.0625;
        // The engine convention: the grid snapshot is the state at the
        // sample instant, emitted just before the first event past it.
        while t >= next_sample {
            let tails = tails_of(&depths);
            doc.push_str(&sample_event(next_sample, tails).to_json_line());
            doc.push('\n');
            expected.push((next_sample, tails));
            next_sample += DT;
        }
        let p = (next() % n_procs as u64) as usize;
        let ev = match next() % 4 {
            0 if depths[p] > 0 => {
                depths[p] -= 1;
                Event::Sim {
                    kind: SimEventKind::Completion,
                    t,
                    proc: p as u32,
                    src: None,
                    count: 1,
                }
            }
            1 if depths[p] > 0 => {
                let q = (p + 1 + (next() % (n_procs as u64 - 1)) as usize) % n_procs;
                let count = 1 + next() % depths[p].min(2);
                depths[p] -= count;
                depths[q] += count;
                Event::Sim {
                    kind: SimEventKind::Migration,
                    t,
                    proc: q as u32,
                    src: Some(p as u32),
                    count: count as u32,
                }
            }
            2 => Event::Sim {
                kind: SimEventKind::StealAttempt,
                t,
                proc: p as u32,
                src: None,
                count: 1,
            },
            _ => {
                depths[p] += 1;
                Event::Sim {
                    kind: SimEventKind::Arrival,
                    t,
                    proc: p as u32,
                    src: None,
                    count: 1,
                }
            }
        };
        doc.push_str(&ev.to_json_line());
        doc.push('\n');
    }
    (doc, expected)
}

/// The replay trajectory shaped as an ODE grid (`tails[0] = s₀ = 1`),
/// so the analysis can be run against a reference it must match
/// exactly.
fn as_trajectory(expected: &[(f64, [f64; 8])]) -> Vec<(f64, Vec<f64>)> {
    expected
        .iter()
        .map(|(t, tails)| {
            let mut row = vec![1.0];
            row.extend_from_slice(tails);
            (*t, row)
        })
        .collect()
}

/// Line numbers (0-based) of the `tail_sample` lines in `doc`.
fn sample_lines(doc: &str) -> Vec<usize> {
    doc.lines()
        .enumerate()
        .filter(|(_, l)| l.contains("\"tail_sample\""))
        .map(|(i, _)| i)
        .collect()
}

proptest! {
    /// Reconstruction: every `tail_sample` read back from the wire
    /// equals the exact depth replay at its instant — same count, same
    /// times, bit-identical tails (zero-padded past the wire depth).
    #[test]
    fn reconstruction_matches_exact_replay(seed in any::<u64>(), len in 1usize..200, n in 2usize..12) {
        let (doc, expected) = sampled_doc(seed, len, n);
        let parsed = read_str(&doc, ReadMode::Strict).unwrap();
        let samples = extract_samples(&parsed.events);
        prop_assert_eq!(samples.len(), expected.len());
        for (got, (t, tails)) in samples.iter().zip(&expected) {
            prop_assert_eq!(got.t, *t);
            prop_assert_eq!(&got.tails, tails, "tails diverge at t = {}", t);
        }
        // Grouping a single replicate is the identity on the values.
        let groups = group_by_time(&samples);
        prop_assert_eq!(groups.len(), expected.len());
        for (g, (t, tails)) in groups.iter().zip(&expected) {
            prop_assert_eq!(g.t, *t);
            prop_assert_eq!(g.runs.len(), 1);
            prop_assert_eq!(&g.mean(), tails);
        }
    }

    /// Replicates: a second identical run doubles each group's run
    /// count and cannot move the cross-run mean.
    #[test]
    fn duplicate_replicate_preserves_the_mean(seed in any::<u64>(), len in 1usize..120, n in 2usize..8) {
        let (doc, expected) = sampled_doc(seed, len, n);
        let twice = format!("{doc}{doc}");
        let parsed = read_str(&twice, ReadMode::Strict).unwrap();
        let groups = group_by_time(&extract_samples(&parsed.events));
        prop_assert_eq!(groups.len(), expected.len());
        for (g, (t, tails)) in groups.iter().zip(&expected) {
            prop_assert_eq!(g.t, *t);
            prop_assert_eq!(g.runs.len(), 2);
            prop_assert_eq!(&g.mean(), tails);
        }
    }

    /// Degradation: tearing a subset of the `tail_sample` lines is a
    /// counted skip in lossy mode — never a panic — and the analysis
    /// still matches every surviving instant against the replay
    /// trajectory with zero residual and no drift.
    #[test]
    fn lossy_drops_degrade_to_counted_anomalies(seed in any::<u64>(), len in 8usize..160, n in 2usize..8, mask in any::<u64>()) {
        let (doc, expected) = sampled_doc(seed, len, n);
        // len ≥ 8 with increments ≥ 0.125 guarantees t crosses DT.
        let victims = sample_lines(&doc);
        prop_assert!(!victims.is_empty());
        // Corrupt a pseudo-random, possibly empty subset of the sample
        // lines by truncating them mid-JSON.
        let corrupt: Vec<usize> = victims
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> (i % 64) & 1 == 1)
            .map(|(_, &line)| line)
            .collect();
        let torn: String = doc
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if corrupt.contains(&i) {
                    format!("{}\n", &l[..l.len() / 2])
                } else {
                    format!("{l}\n")
                }
            })
            .collect();

        let lossy = read_str(&torn, ReadMode::Lossy).unwrap();
        prop_assert_eq!(lossy.skipped.len(), corrupt.len());
        prop_assert_eq!(lossy.lines, lossy.events.len() + lossy.skipped.len());

        let survivors = extract_samples(&lossy.events);
        prop_assert_eq!(survivors.len(), expected.len() - corrupt.len());

        let ode = as_trajectory(&expected);
        let a = TransientAnalysis::build(&lossy.events, &ode, None, &TransientOptions::new(n));
        prop_assert_eq!(a.points.len(), survivors.len());
        prop_assert_eq!(a.unmatched, 0, "every survivor sits on the replay grid");
        prop_assert_eq!(a.residual_sup, 0.0, "replay reference must agree exactly");
        prop_assert!(a.drift.is_empty(), "{} drift events from exact agreement", a.drift.len());
    }
}
