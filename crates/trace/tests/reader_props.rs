//! Property tests for the trace reader's error paths: truncation,
//! invalid UTF-8, unknown event kinds, and the strict/lossy contract.
//!
//! The invariants under test:
//!
//! * Strict mode fails on exactly the first malformed line, with a
//!   1-based line number pointing at it.
//! * Lossy mode never fails; `events + skipped == lines` and every
//!   line before the corruption parses to the same events strict mode
//!   would have produced.
//! * [`read_bytes`] agrees with [`read_str`] on valid UTF-8 input and
//!   degrades per-line (not per-file) on invalid UTF-8.

use loadsteal_obs::{Event, SimEventKind};
use loadsteal_trace::{read_bytes, read_str, ReadMode};
use proptest::prelude::*;

/// A synthetic but well-formed event stream of `len` lines, seeded so
/// failures replay.
fn valid_doc(seed: u64, len: usize) -> String {
    let mut s = seed;
    let mut next = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        s >> 33
    };
    (0..len)
        .map(|i| {
            let kind = match next() % 5 {
                0 => SimEventKind::Arrival,
                1 => SimEventKind::Completion,
                2 => SimEventKind::StealAttempt,
                3 => SimEventKind::StealSuccess,
                _ => SimEventKind::Migration,
            };
            let src = matches!(kind, SimEventKind::Migration).then(|| (next() % 64) as u32);
            Event::Sim {
                kind,
                t: i as f64 * 0.25,
                proc: (next() % 64) as u32,
                src,
                count: 1 + (next() % 3) as u32,
            }
            .to_json_line()
                + "\n"
        })
        .collect()
}

proptest! {
    /// Truncating a valid document mid-line leaves a prefix strict mode
    /// rejects at the last line, while lossy mode keeps every complete
    /// line.
    #[test]
    fn truncated_tail_is_isolated(seed in any::<u64>(), len in 1usize..20, cut in 1usize..40) {
        let doc = valid_doc(seed, len);
        let full = read_str(&doc, ReadMode::Strict).unwrap();
        // Cut strictly inside the final line (never at a line boundary,
        // never the whole line, and past the opening brace so the
        // remnant cannot be blank or accidentally valid).
        let last_start = doc[..doc.len() - 1].rfind('\n').map_or(0, |p| p + 1);
        let last_len = doc.len() - 1 - last_start;
        let cut_at = last_start + 1 + cut % (last_len - 1);
        let truncated = &doc[..cut_at];

        let err = read_str(truncated, ReadMode::Strict).unwrap_err();
        prop_assert_eq!(err.line, len, "strict must point at the torn line");

        let lossy = read_str(truncated, ReadMode::Lossy).unwrap();
        prop_assert_eq!(lossy.events.len(), len - 1);
        prop_assert_eq!(lossy.skipped.len(), 1);
        prop_assert_eq!(lossy.lines, lossy.events.len() + lossy.skipped.len());
        prop_assert_eq!(&lossy.events[..], &full.events[..len - 1]);
    }

    /// An unknown event kind anywhere in the stream: strict mode names
    /// its line, lossy mode drops exactly that line.
    #[test]
    fn unknown_event_kind_is_pinpointed(seed in any::<u64>(), len in 1usize..20, at in any::<usize>()) {
        let mut lines: Vec<String> = valid_doc(seed, len).lines().map(str::to_owned).collect();
        let at = at % (len + 1);
        lines.insert(at, r#"{"ev":"quantum_steal","t":1.0,"proc":0}"#.to_owned());
        let doc = lines.join("\n");

        let err = read_str(&doc, ReadMode::Strict).unwrap_err();
        prop_assert_eq!(err.line, at + 1);
        prop_assert!(err.message.contains("unknown event kind"), "{}", err);
        prop_assert!(err.message.contains("quantum_steal"), "{}", err);

        let lossy = read_str(&doc, ReadMode::Lossy).unwrap();
        prop_assert_eq!(lossy.events.len(), len);
        prop_assert_eq!(lossy.skipped.len(), 1);
        prop_assert_eq!(lossy.skipped[0].line, at + 1);
    }

    /// On valid UTF-8, `read_bytes` and `read_str` are the same parser.
    #[test]
    fn read_bytes_matches_read_str_on_utf8(seed in any::<u64>(), len in 0usize..20) {
        let doc = valid_doc(seed, len);
        for mode in [ReadMode::Strict, ReadMode::Lossy] {
            let via_str = read_str(&doc, mode).unwrap();
            let via_bytes = read_bytes(doc.as_bytes(), mode).unwrap();
            prop_assert_eq!(&via_str.events[..], &via_bytes.events[..]);
            prop_assert_eq!(via_str.lines, via_bytes.lines);
            prop_assert_eq!(via_str.skipped.len(), via_bytes.skipped.len());
        }
    }

    /// A line corrupted into invalid UTF-8 fails strict `read_bytes`
    /// with the corrupt line and byte column; lossy keeps every other
    /// line.
    #[test]
    fn invalid_utf8_degrades_per_line(seed in any::<u64>(), len in 1usize..20, at in any::<usize>(), bad in any::<u8>()) {
        let doc = valid_doc(seed, len);
        let at = at % len;
        let mut bytes = doc.into_bytes();
        // Overwrite the victim line's second byte (inside the JSON, not
        // the newline) with a lone continuation byte.
        let line_starts: Vec<usize> = std::iter::once(0)
            .chain(bytes.iter().enumerate().filter(|&(_, &b)| b == b'\n').map(|(p, _)| p + 1))
            .collect();
        let victim = line_starts[at] + 1;
        bytes[victim] = 0x80 | (bad & 0x3f); // 0x80..=0xBF: never a valid start byte

        let err = read_bytes(&bytes, ReadMode::Strict).unwrap_err();
        prop_assert_eq!(err.line, at + 1);
        prop_assert_eq!(err.column, 2, "first invalid byte is at byte 2 of the line");
        prop_assert!(err.message.contains("UTF-8"), "{}", err);

        let lossy = read_bytes(&bytes, ReadMode::Lossy).unwrap();
        prop_assert_eq!(lossy.events.len(), len - 1);
        prop_assert_eq!(lossy.skipped.len(), 1);
        prop_assert_eq!(lossy.lines, len);
    }
}

/// CRLF traces parse identically to LF traces through `read_bytes`.
#[test]
fn crlf_lines_are_accepted() {
    let doc = valid_doc(7, 5);
    let crlf = doc.replace('\n', "\r\n");
    let a = read_bytes(doc.as_bytes(), ReadMode::Strict).unwrap();
    let b = read_bytes(crlf.as_bytes(), ReadMode::Strict).unwrap();
    assert_eq!(a.events, b.events);
}

/// Strict mode surfaces the UTF-8 column exactly where decoding stopped.
#[test]
fn utf8_column_is_valid_up_to_plus_one() {
    let mut bytes = br#"{"ev":"arrival","t":1.0,"proc":0}"#.to_vec();
    bytes[20] = 0xFF;
    let err = read_bytes(&bytes, ReadMode::Strict).unwrap_err();
    assert_eq!((err.line, err.column), (1, 21));
}
