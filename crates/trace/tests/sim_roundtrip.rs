//! End-to-end: run the real simulator with an NDJSON recorder, parse
//! the trace back, and check the reconstructed timeline against the
//! simulator's own statistics.

use loadsteal_obs::{NdjsonRecorder, Recorder};
use loadsteal_sim::{run_recorded, SimConfig};
use loadsteal_trace::{read_str, ReadMode, Timeline, TimelineConfig};

fn traced_run(cfg: &SimConfig, seed: u64) -> (String, loadsteal_sim::SimResult) {
    let mut rec = NdjsonRecorder::new(Vec::new());
    let result = run_recorded(cfg, seed, &mut rec);
    Recorder::flush(&mut rec);
    let (buf, err) = rec.into_inner();
    assert!(err.is_none());
    (String::from_utf8(buf).unwrap(), result)
}

#[test]
fn every_simulator_line_parses_in_strict_mode() {
    let mut cfg = SimConfig::paper_default(8, 0.7);
    cfg.horizon = 2_000.0;
    cfg.warmup = 200.0;
    cfg.heartbeat_every = 10_000;
    let (trace, _) = traced_run(&cfg, 42);
    let parsed =
        read_str(&trace, ReadMode::Strict).unwrap_or_else(|e| panic!("strict parse failed: {e}"));
    assert_eq!(parsed.events.len(), parsed.lines);
    assert!(parsed.lines > 1_000, "expected a substantial trace");
    assert!(parsed.skipped.is_empty());
}

#[test]
fn timeline_matches_simulator_statistics() {
    let mut cfg = SimConfig::paper_default(16, 0.8);
    cfg.horizon = 5_000.0;
    cfg.warmup = 500.0;
    let (trace, result) = traced_run(&cfg, 7);
    let parsed = read_str(&trace, ReadMode::Strict).unwrap();
    let tl = Timeline::build(
        &parsed.events,
        &TimelineConfig {
            warmup: cfg.warmup,
            ..TimelineConfig::default()
        },
    );

    assert_eq!(tl.n_procs, 16);
    assert_eq!(tl.depth_underflows, 0, "trace must replay consistently");
    // Whole-trace totals equal the engine's own counters.
    assert_eq!(tl.counts.arrivals, result.tasks_arrived);
    assert_eq!(tl.counts.completions, result.tasks_completed);
    assert_eq!(tl.counts.steal_attempts, result.steal_attempts);
    assert_eq!(tl.counts.steal_successes, result.steal_successes);
    assert_eq!(tl.counts.tasks_migrated, result.tasks_migrated);

    // Measured arrival rate ≈ λ (sampling noise only).
    let lambda_hat = tl.arrival_rate();
    assert!(
        (lambda_hat - 0.8).abs() < 0.05,
        "λ̂ = {lambda_hat}, expected ≈ 0.8"
    );

    // Little's-law sojourn from the replayed queues tracks the
    // simulator's directly measured mean sojourn.
    let w_trace = tl.mean_sojourn_little().expect("arrivals were measured");
    let w_sim = result.mean_sojourn();
    assert!(
        (w_trace - w_sim).abs() / w_sim < 0.15,
        "Little's law {w_trace} vs measured {w_sim}"
    );

    // Replayed time-averaged tails track the engine's LoadHistogram.
    for (i, &s) in result.load_tails.iter().enumerate().take(4).skip(1) {
        let replayed = tl.tails.get(i).copied().unwrap_or(0.0);
        assert!(
            (replayed - s).abs() < 0.05,
            "s_{i}: replayed {replayed} vs engine {s}"
        );
    }
}

#[test]
fn lossy_mode_recovers_a_corrupted_trace() {
    let mut cfg = SimConfig::paper_default(4, 0.5);
    cfg.horizon = 500.0;
    cfg.warmup = 50.0;
    let (trace, _) = traced_run(&cfg, 3);
    // Corrupt every 10th line.
    let mangled: String = trace
        .lines()
        .enumerate()
        .map(|(i, l)| {
            if i % 10 == 0 {
                format!("{}\n", &l[..l.len() / 2])
            } else {
                format!("{l}\n")
            }
        })
        .collect();
    assert!(read_str(&mangled, ReadMode::Strict).is_err());
    let parsed = read_str(&mangled, ReadMode::Lossy).unwrap();
    assert!(!parsed.skipped.is_empty());
    assert_eq!(parsed.events.len() + parsed.skipped.len(), parsed.lines);
    // ~90% of lines survive.
    assert!(parsed.events.len() * 10 >= parsed.lines * 8);
}
