//! Check plumbing: tiers, outcomes, and the pass/fail report.

/// How much statistical work to spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// CI-sized: seconds, every layer exercised, 8+ model variants.
    Quick,
    /// The paper's protocol scale: minutes, plus the Table 1–4 grids.
    Full,
}

/// Harness configuration: tier plus the simulation protocol shared by
/// every differential check. The presets keep the two tiers honest;
/// tests shrink the fields directly for sub-second runs.
#[derive(Debug, Clone)]
pub struct Settings {
    /// Which tier's check set to build.
    pub tier: Tier,
    /// Base RNG seed; every replication derives from it.
    pub seed: u64,
    /// Processors per simulation.
    pub n: usize,
    /// Independent replications per differential check.
    pub runs: usize,
    /// Simulated horizon per run (seconds).
    pub horizon: f64,
    /// Warmup discarded from each run (seconds).
    pub warmup: f64,
    /// Run check bodies concurrently on the work-stealing pool
    /// (checks marked [`Check::serial`] — wall-clock-sensitive
    /// executor measurements — still run alone, afterwards).
    pub parallel: bool,
}

impl Settings {
    /// The `--quick` tier: n = 128, 4 × 3,000 s runs.
    pub fn quick(seed: u64) -> Self {
        Self {
            tier: Tier::Quick,
            seed,
            n: 128,
            runs: 4,
            horizon: 3_000.0,
            warmup: 400.0,
            parallel: false,
        }
    }

    /// The `--full` tier: n = 128, 5 × 15,000 s runs plus the table
    /// grids.
    pub fn full(seed: u64) -> Self {
        Self {
            tier: Tier::Full,
            seed,
            n: 128,
            runs: 5,
            horizon: 15_000.0,
            warmup: 1_500.0,
            // The table grids alone are ~15 independent replicated
            // cells; the pool turns the full tier's wall time into
            // max(cell) instead of sum(cell) on multi-core hosts.
            parallel: true,
        }
    }

    /// A deliberately tiny protocol for the harness's own unit tests:
    /// statistically meaningful only for gross errors (which is exactly
    /// what those tests inject).
    pub fn tiny(seed: u64) -> Self {
        Self {
            tier: Tier::Quick,
            seed,
            n: 32,
            runs: 4,
            horizon: 1_500.0,
            warmup: 200.0,
            parallel: false,
        }
    }
}

/// The verdict of one check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The property held; the string summarizes the margin.
    Pass(String),
    /// The property failed; the string says by how much.
    Fail(String),
    /// The check did not apply at this tier/configuration.
    Skip(String),
}

impl Outcome {
    /// Whether this outcome counts against the run.
    pub fn is_fail(&self) -> bool {
        matches!(self, Self::Fail(_))
    }
}

/// A runnable check: a named closure returning an [`Outcome`].
pub struct Check {
    /// Layer the check belongs to (`differential`, `metamorphic`, …).
    pub group: &'static str,
    /// Check name, unique within the group.
    pub name: String,
    /// Must not run concurrently with other checks (wall-clock-timed
    /// executor measurements, which CPU contention would distort).
    pub serial: bool,
    /// The check body.
    pub run: Box<dyn FnOnce() -> Outcome + Send>,
}

impl Check {
    /// Convenience constructor.
    pub fn new(
        group: &'static str,
        name: impl Into<String>,
        run: impl FnOnce() -> Outcome + Send + 'static,
    ) -> Self {
        Self {
            group,
            name: name.into(),
            serial: false,
            run: Box::new(run),
        }
    }

    /// A check that must run with the machine otherwise quiet (see
    /// [`Check::serial`]).
    pub fn serial(
        group: &'static str,
        name: impl Into<String>,
        run: impl FnOnce() -> Outcome + Send + 'static,
    ) -> Self {
        Self {
            serial: true,
            ..Self::new(group, name, run)
        }
    }
}

/// One executed check with its timing.
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// Layer the check belongs to.
    pub group: &'static str,
    /// Check name.
    pub name: String,
    /// Verdict.
    pub outcome: Outcome,
    /// Wall-clock duration of the check body.
    pub wall_ms: f64,
}

/// The outcome of a harness run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Every executed check, in execution order.
    pub results: Vec<CheckResult>,
}

impl Report {
    /// Whether every check passed (skips do not count against).
    pub fn passed(&self) -> bool {
        self.failures() == 0
    }

    /// Number of failed checks.
    pub fn failures(&self) -> usize {
        self.results.iter().filter(|r| r.outcome.is_fail()).count()
    }

    /// Render the pass/fail table (the CLI's output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let name_w = self
            .results
            .iter()
            .map(|r| r.group.len() + 1 + r.name.len())
            .max()
            .unwrap_or(20)
            .max(20);
        let mut last_group = "";
        for r in &self.results {
            if r.group != last_group {
                if !last_group.is_empty() {
                    out.push('\n');
                }
                out.push_str(&format!("── {} ──\n", r.group));
                last_group = r.group;
            }
            let (verdict, detail) = match &r.outcome {
                Outcome::Pass(d) => ("PASS", d),
                Outcome::Fail(d) => ("FAIL", d),
                Outcome::Skip(d) => ("skip", d),
            };
            out.push_str(&format!(
                "{verdict}  {:<name_w$}  {:>8.0} ms  {detail}\n",
                format!("{}:{}", r.group, r.name),
                r.wall_ms,
            ));
        }
        let total_ms: f64 = self.results.iter().map(|r| r.wall_ms).sum();
        let skips = self
            .results
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Skip(_)))
            .count();
        out.push_str(&format!(
            "\n{} checks, {} failed, {} skipped ({:.1} s)\n",
            self.results.len(),
            self.failures(),
            skips,
            total_ms / 1_000.0,
        ));
        out
    }
}

/// Execute one check body with its profiler spans and timing.
fn run_one(c: Check) -> CheckResult {
    // Per-layer and per-check profiler spans: nested so a profiled
    // `verify` run shows time by layer, then by check within it.
    let _layer_span = loadsteal_obs::span::span_dyn(format!("verify.{}", c.group));
    let _check_span = loadsteal_obs::span::span_dyn(format!("verify.{}.{}", c.group, c.name));
    let start = std::time::Instant::now();
    let outcome = (c.run)();
    CheckResult {
        group: c.group,
        name: c.name,
        outcome,
        wall_ms: start.elapsed().as_secs_f64() * 1_000.0,
    }
}

/// Execute checks sequentially (each differential check already
/// parallelizes its replications internally), timing each body.
pub fn run_checks(checks: Vec<Check>) -> Report {
    Report {
        results: checks.into_iter().map(run_one).collect(),
    }
}

/// Execute check bodies concurrently on the work-stealing pool,
/// preserving display order in the report. Checks marked
/// [`Check::serial`] are held back and run one at a time afterwards,
/// so wall-clock-sensitive measurements see a quiet machine. The
/// full tier's table grids are the payoff: ~15 independent replicated
/// cells become max(cell) wall time instead of sum(cell).
pub fn run_checks_parallel(checks: Vec<Check>) -> Report {
    let total = checks.len();
    let (serial, concurrent): (Vec<_>, Vec<_>) =
        checks.into_iter().enumerate().partition(|(_, c)| c.serial);
    let mut slots: Vec<Option<CheckResult>> = (0..total).map(|_| None).collect();
    let done = loadsteal_exec::parallel_map_on(
        loadsteal_exec::global(),
        concurrent,
        &|(i, c): (usize, Check)| (i, run_one(c)),
    );
    for (i, r) in done {
        slots[i] = Some(r);
    }
    for (i, c) in serial {
        slots[i] = Some(run_one(c));
    }
    Report {
        results: slots.into_iter().flatten().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_and_renders() {
        let report = run_checks(vec![
            Check::new("a", "ok", || Outcome::Pass("fine".into())),
            Check::new("a", "bad", || Outcome::Fail("off by 2".into())),
            Check::new("b", "na", || Outcome::Skip("full tier only".into())),
        ]);
        assert!(!report.passed());
        assert_eq!(report.failures(), 1);
        let table = report.render();
        assert!(table.contains("PASS  a:ok"), "{table}");
        assert!(table.contains("FAIL  a:bad"), "{table}");
        assert!(table.contains("skip  b:na"), "{table}");
        assert!(table.contains("3 checks, 1 failed, 1 skipped"), "{table}");
    }

    #[test]
    fn empty_report_passes() {
        assert!(Report::default().passed());
    }
}
