//! Differential checks: simulation vs mean-field fixed point.
//!
//! Each zoo variant is replicated `runs` times and its mean sojourn time
//! and first three tail fractions are compared against the solved fixed
//! point within [`crate::stat`] bounds. A single-long-run batch-means
//! check exercises [`loadsteal_queueing::BatchMeans`] on the busy
//! fraction (whose fixed-point value is exactly λ). The full tier
//! additionally re-simulates the paper's Table 1–4 parameter grids
//! against the printed estimates.

use loadsteal_core::ModelRegistry;
use loadsteal_queueing::BatchMeans;
use loadsteal_sim::{replicate, run_seeded, SimConfig, ToSimConfig};

use crate::harness::{Check, Outcome, Settings, Tier};
use crate::stat;
use crate::zoo::{self, Variant};

/// Number of tail levels compared per variant (`s_1 ..= s_3`).
const TAIL_DEPTH: usize = 3;

/// Run the differential comparison for one variant: solve the fixed
/// point, replicate the simulation, and require every agreement to hold.
/// Public so the sabotage test can drive it against a deliberately
/// corrupted predictor.
pub fn check_variant(settings: &Settings, v: Variant) -> Outcome {
    let fp = match (v.predict)() {
        Ok(fp) => fp,
        Err(e) => return Outcome::Fail(format!("fixed-point solve failed: {e}")),
    };
    let rep = replicate(&v.cfg, settings.runs, settings.seed);
    let mut agreements = vec![stat::sojourn_agreement(
        &rep,
        fp.mean_time_in_system,
        settings.n,
    )];
    for level in 1..=TAIL_DEPTH {
        let predicted = fp.task_tails.get(level).copied().unwrap_or(0.0);
        agreements.push(stat::tail_agreement(
            &rep.runs, level, predicted, settings.n,
        ));
    }
    let failed: Vec<String> = agreements
        .iter()
        .filter(|a| !a.holds())
        .map(stat::Agreement::describe)
        .collect();
    if failed.is_empty() {
        Outcome::Pass(agreements[0].describe())
    } else {
        Outcome::Fail(failed.join("; "))
    }
}

/// Batch-means check: one long simple-WS run, post-warmup busy-fraction
/// snapshots grouped into batches of 20 (batch span 100 s, far beyond
/// the correlation time), interval must cover the exact value λ.
fn batch_means_check(settings: &Settings) -> Outcome {
    let lambda = 0.8;
    let mut cfg = preset_cfg(settings, "simple-ws", lambda);
    cfg.snapshot_interval = Some(5.0);
    let result = run_seeded(&cfg, settings.seed);
    let mut bm = BatchMeans::new(20);
    for (t, tails) in &result.snapshots {
        if *t >= cfg.warmup {
            bm.push(tails.get(1).copied().unwrap_or(0.0));
        }
    }
    let Some(ci) = bm.confidence_interval(stat::CONFIDENCE_LEVEL) else {
        return Outcome::Fail(format!("only {} batches collected", bm.batches()));
    };
    let slack = stat::FINITE_N_REL_TAIL / settings.n as f64 * lambda + stat::ABS_FLOOR_TAIL;
    let delta = (ci.mean - lambda).abs();
    let bound = ci.half_width + slack;
    let line = format!(
        "busy fraction: {} batches, s₁ {:.4} vs λ {:.2} (|Δ| {:.4} ≤ {:.4})",
        bm.batches(),
        ci.mean,
        lambda,
        delta,
        bound,
    );
    if delta <= bound {
        Outcome::Pass(line)
    } else {
        Outcome::Fail(line)
    }
}

/// One golden cell: simulate `cfg` and compare the mean sojourn time
/// against the value printed in the paper.
fn table_cell(settings: &Settings, cfg: SimConfig, paper_w: f64) -> Outcome {
    let rep = replicate(&cfg, settings.runs, settings.seed);
    let a = stat::Agreement {
        what: "paper W".into(),
        ..stat::sojourn_agreement(&rep, paper_w, settings.n)
    };
    if a.holds() {
        Outcome::Pass(a.describe())
    } else {
        Outcome::Fail(a.describe())
    }
}

/// Derive a simulator config from a registry preset re-pinned to
/// `lambda`, with this run's horizon/warmup applied. The paper's table
/// grids sweep λ over the preset's fixed policy parameters, so the
/// preset is the single source of truth for everything but λ.
fn preset_cfg(settings: &Settings, preset: &str, lambda: f64) -> SimConfig {
    let spec = ModelRegistry::standard()
        .get(preset)
        .unwrap_or_else(|| panic!("registry preset {preset:?} missing"))
        .spec
        .clone()
        .with_lambda(lambda);
    let mut cfg = spec
        .sim_config(settings.n)
        .unwrap_or_else(|e| panic!("preset {preset:?} at λ={lambda}: {e}"));
    cfg.horizon = settings.horizon;
    cfg.warmup = settings.warmup;
    cfg
}

/// Full-tier golden grids: `(table name, config, paper estimate)`.
/// Configs come from registry presets swept over λ; the estimates are
/// the paper's printed predictions (3 decimals).
fn table_cells(settings: &Settings) -> Vec<(String, SimConfig, f64)> {
    let mut cells = Vec::new();
    // Table 1 — simple WS.
    for &(lambda, w) in &[
        (0.50, 1.618),
        (0.70, 2.107),
        (0.80, 2.562),
        (0.90, 3.541),
        (0.95, 4.887),
    ] {
        cells.push((
            format!("table1(λ={lambda})"),
            preset_cfg(settings, "simple-ws", lambda),
            w,
        ));
    }
    // Table 2 — Erlang service stages, c = 20 (≈ constant service).
    for &(lambda, w) in &[(0.50, 1.391), (0.80, 2.039), (0.95, 3.625)] {
        cells.push((
            format!("table2(λ={lambda},c=20)"),
            preset_cfg(settings, "erlang-service", lambda),
            w,
        ));
    }
    // Table 3 — transfer delays, r = 0.25, T = 4.
    for &(lambda, w) in &[(0.50, 1.950), (0.80, 3.996), (0.90, 7.015)] {
        cells.push((
            format!("table3(λ={lambda},r=0.25,T=4)"),
            preset_cfg(settings, "transfer", lambda),
            w,
        ));
    }
    // Table 4 — two victim choices, T = 2.
    for &(lambda, w) in &[(0.50, 1.433), (0.80, 1.864), (0.90, 2.220), (0.95, 2.640)] {
        cells.push((
            format!("table4(λ={lambda},d=2)"),
            preset_cfg(settings, "multi-choice", lambda),
            w,
        ));
    }
    cells
}

/// Build the differential check family.
pub fn checks(settings: &Settings) -> Vec<Check> {
    let mut checks = Vec::new();
    for v in zoo::variants(settings) {
        let s = settings.clone();
        let name = v.name;
        checks.push(Check::new("differential", name, move || {
            check_variant(&s, v)
        }));
    }
    {
        let s = settings.clone();
        checks.push(Check::new(
            "differential",
            "batch-means(simple-ws,λ=0.8)",
            move || batch_means_check(&s),
        ));
    }
    if settings.tier == Tier::Full {
        for (name, cfg, w) in table_cells(settings) {
            let s = settings.clone();
            checks.push(Check::new("differential", name, move || {
                table_cell(&s, cfg, w)
            }));
        }
    } else {
        checks.push(Check::new("differential", "paper-tables", || {
            Outcome::Skip("full tier only (run with --full)".into())
        }));
    }
    checks
}
