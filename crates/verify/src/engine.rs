//! Engine-equivalence differential suite.
//!
//! The simulator promises that its two future-event-list
//! implementations — the original `BinaryHeap` and the calendar queue
//! ([`loadsteal_sim::CalendarQueue`]) — are observationally identical:
//! both pop in the pinned event total order (time, then sequence), so
//! a given `(config, seed)` must produce a bit-identical NDJSON trace
//! under either engine. These checks run every quick-tier zoo preset
//! through both engines and compare the FNV-1a hashes of the full
//! byte streams — event-for-event equality, not summary-statistic
//! agreement — plus the scalar results that do not flow through the
//! trace (tails, counters, sojourn moments).
//!
//! This is the verification half of the calendar-queue bargain: the
//! heap is kept as the oracle precisely so that the faster engine's
//! entire behaviour stays provably pinned to it.

use loadsteal_obs::NdjsonRecorder;
use loadsteal_sim::{run_recorded, EngineKind, SimConfig};

use crate::determinism::fnv1a;
use crate::harness::{Check, Outcome, Settings};
use crate::zoo;

/// Run one recorded simulation under `engine` and return the trace
/// hash plus the run's scalar fingerprint.
fn engine_fingerprint(
    cfg: &SimConfig,
    seed: u64,
    engine: EngineKind,
) -> Result<(u64, u64, u64, u64), String> {
    let mut cfg = cfg.clone();
    cfg.engine = engine;
    let mut rec = NdjsonRecorder::new(Vec::new());
    let result = run_recorded(&cfg, seed, &mut rec);
    let (bytes, err) = rec.into_inner();
    if let Some(e) = err {
        return Err(format!("trace write failed: {e}"));
    }
    if bytes.is_empty() {
        return Err("trace stream is empty".into());
    }
    Ok((
        fnv1a(&bytes),
        result.tasks_completed,
        result.steal_successes,
        result.mean_sojourn().to_bits(),
    ))
}

/// Compare heap and calendar on one configuration.
fn equivalence(cfg: &SimConfig, seed: u64) -> Outcome {
    let heap = match engine_fingerprint(cfg, seed, EngineKind::Heap) {
        Ok(f) => f,
        Err(e) => return Outcome::Fail(format!("heap engine: {e}")),
    };
    let cal = match engine_fingerprint(cfg, seed, EngineKind::Calendar) {
        Ok(f) => f,
        Err(e) => return Outcome::Fail(format!("calendar engine: {e}")),
    };
    if heap.0 != cal.0 {
        return Outcome::Fail(format!(
            "trace hash diverged: heap {:016x} vs calendar {:016x}",
            heap.0, cal.0
        ));
    }
    if heap != cal {
        return Outcome::Fail(format!(
            "traces match but results diverged: heap {heap:?} vs calendar {cal:?}"
        ));
    }
    Outcome::Pass(format!(
        "trace {:016x} bit-identical, {} tasks",
        heap.0, heap.1
    ))
}

/// Build the engine-equivalence check family: one check per quick-tier
/// zoo preset (the full tier inherits the same presets — the property
/// is structural, not statistical, so more simulated seconds buy
/// nothing).
pub fn checks(settings: &Settings) -> Vec<Check> {
    let quick = Settings {
        tier: crate::harness::Tier::Quick,
        ..settings.clone()
    };
    zoo::variants(&quick)
        .into_iter()
        .map(|v| {
            let mut cfg = v.cfg;
            // Bit-equality needs no statistics; a short horizon keeps
            // 12 presets × 2 engines inside the CI budget while still
            // crossing several calendar rebuilds per run.
            cfg.horizon = (settings.horizon / 10.0).clamp(100.0, 500.0);
            cfg.warmup = cfg.horizon / 10.0;
            let seed = settings.seed;
            Check::new("engine", v.name, move || equivalence(&cfg, seed))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Outcome;

    #[test]
    fn quick_zoo_presets_are_engine_equivalent() {
        // The real layer at test scale: every preset, tiny horizon.
        let mut settings = Settings::tiny(7);
        settings.horizon = 800.0; // layer divides by 10
        for c in checks(&settings) {
            let name = c.name.clone();
            match (c.run)() {
                Outcome::Pass(_) => {}
                other => panic!("{name}: {other:?}"),
            }
        }
    }

    #[test]
    fn seed_mismatch_is_not_reported_as_equivalence() {
        // Guard the guard: different seeds must produce different
        // fingerprints, otherwise the comparison is vacuous.
        let cfg = {
            let mut c = loadsteal_sim::SimConfig::paper_default(16, 0.7);
            c.horizon = 150.0;
            c.warmup = 15.0;
            c
        };
        let a = engine_fingerprint(&cfg, 1, EngineKind::Calendar).unwrap();
        let b = engine_fingerprint(&cfg, 2, EngineKind::Calendar).unwrap();
        assert_ne!(a.0, b.0, "seeds 1 and 2 collided");
    }
}
