//! Empirical convergence-order checks for the integrators.
//!
//! Step-halving Richardson estimate: integrating the same smooth system
//! with steps `h, h/2, h/4` and comparing successive solutions gives
//! `p ≈ log2(‖y_h − y_{h/2}‖ / ‖y_{h/2} − y_{h/4}‖)` — the observed
//! order of the method. Euler must land near 1, RK4 near 4, and the
//! adaptive DOPRI5 error must shrink monotonically as its tolerance
//! tightens. The test system is the simple-WS family from the empty
//! state: smooth, non-stiff, and far from the projection clamps.

use loadsteal_core::models::{MeanFieldModel, SimpleWs};
use loadsteal_ode::{AdaptiveOptions, DormandPrince45, Euler, Rk4};

use crate::harness::{Check, Outcome, Settings};

fn sup_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .fold(0.0_f64, |acc, (x, y)| acc.max((x - y).abs()))
}

/// Observed order from three step-halved solutions.
fn richardson_order(solve_at: impl Fn(f64) -> Vec<f64>, h: f64) -> (f64, f64, f64) {
    let y_h = solve_at(h);
    let y_h2 = solve_at(h / 2.0);
    let y_h4 = solve_at(h / 4.0);
    let d1 = sup_diff(&y_h, &y_h2);
    let d2 = sup_diff(&y_h2, &y_h4);
    ((d1 / d2).log2(), d1, d2)
}

fn euler_order() -> Outcome {
    let m = SimpleWs::new(0.5).unwrap();
    let start = m.empty_state();
    let (p, d1, d2) = richardson_order(
        |h| {
            let mut y = start.clone();
            Euler::new(h).integrate(&m, 0.0, 2.0, &mut y).unwrap();
            y
        },
        0.2,
    );
    let line = format!("observed order {p:.3} (d₁ {d1:.2e}, d₂ {d2:.2e})");
    if (0.6..=1.4).contains(&p) {
        Outcome::Pass(line)
    } else {
        Outcome::Fail(format!("{line}, expected ≈ 1"))
    }
}

fn rk4_order() -> Outcome {
    let m = SimpleWs::new(0.5).unwrap();
    let start = m.empty_state();
    let (p, d1, d2) = richardson_order(
        |h| {
            let mut y = start.clone();
            Rk4::new(h).integrate(&m, 0.0, 2.0, &mut y).unwrap();
            y
        },
        0.4,
    );
    let line = format!("observed order {p:.3} (d₁ {d1:.2e}, d₂ {d2:.2e})");
    if (3.0..=5.0).contains(&p) {
        Outcome::Pass(line)
    } else {
        Outcome::Fail(format!("{line}, expected ≈ 4"))
    }
}

/// DOPRI5 error against a tight-tolerance reference must decrease
/// monotonically as `rtol` tightens, and the tightest run must be
/// accurate in absolute terms.
fn dopri_tolerance_scaling() -> Outcome {
    let m = SimpleWs::new(0.7).unwrap();
    let t_end = 50.0;
    let run = |rtol: f64| {
        let opts = AdaptiveOptions {
            rtol,
            atol: rtol * 1e-3,
            ..AdaptiveOptions::default()
        };
        let mut y = m.empty_state();
        DormandPrince45::new(opts)
            .integrate(&m, 0.0, t_end, &mut y)
            .unwrap();
        y
    };
    let reference = run(1e-12);
    let errs: Vec<f64> = [1e-4, 1e-6, 1e-8]
        .iter()
        .map(|&rtol| sup_diff(&run(rtol), &reference))
        .collect();
    let line = format!(
        "errors at rtol 1e-4/1e-6/1e-8: {:.2e} / {:.2e} / {:.2e}",
        errs[0], errs[1], errs[2]
    );
    if errs[0] > errs[1] && errs[1] > errs[2] && errs[2] < 1e-6 {
        Outcome::Pass(line)
    } else {
        Outcome::Fail(format!("{line}, expected strictly decreasing"))
    }
}

/// Build the convergence check family (tier-independent: these are
/// deterministic and fast).
pub fn checks(_settings: &Settings) -> Vec<Check> {
    vec![
        Check::new("convergence", "euler-order≈1", euler_order),
        Check::new("convergence", "rk4-order≈4", rk4_order),
        Check::new(
            "convergence",
            "dopri5-error-scales-with-tol",
            dopri_tolerance_scaling,
        ),
    ]
}
