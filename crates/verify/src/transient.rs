//! Transient-trajectory agreement: the sixth verify layer.
//!
//! The other simulation-facing layers compare *time averages* against
//! the mean-field *fixed point*. Kurtz's theorem promises more: over
//! any finite horizon the empirical tail process tracks the whole ODE
//! *trajectory*, with fluctuations of order `1/√n`. This layer checks
//! exactly that, per quick-zoo variant:
//!
//! * **envelope** — sample `ŝᵢ(t)` on a uniform grid (the engine's
//!   `--sample-tails` machinery), average across replicates, integrate
//!   the variant's ODE on the same grid, and require every residual to
//!   stay inside a CI-derived envelope along the *whole* trajectory —
//!   not just at the end.
//! * **relaxation** — the empirical ε-relaxation time (first instant
//!   from which the sampled trajectory stays within ε of the fixed
//!   point) must be finite and consistent with the ODE's own settling
//!   time on the basic model.
//! * **n-scaling** — the mean absolute sim-vs-ODE deviation at
//!   `n = 256` must fall strictly below the deviation at `n = 64`
//!   (the `O(1/√n)` Kurtz rate, two-point version).
//!
//! The [`crate::sabotage`] sign-flipped ODE is the teeth test: its
//! trajectory settles at a visibly wrong busy fraction, so the honest
//! simulation must breach the envelope against it (asserted in this
//! module's tests and in `tests/harness.rs`).

use loadsteal_core::models::MeanFieldModel;
use loadsteal_core::ModelSpec;
use loadsteal_obs::CollectingRecorder;
use loadsteal_sim::{run_recorded, ToSimConfig};
use loadsteal_trace::transient::Envelope;
use loadsteal_trace::{TransientAnalysis, TransientOptions};

use crate::harness::{Check, Outcome, Settings};
use crate::zoo;

/// Sampling grid for the transient comparison (simulated seconds).
const SAMPLE_DT: f64 = 2.0;

/// Drift envelope for the layer. Wider than the analyzer's reporting
/// default (`z = 5`, floor 0.02): the trajectory check makes tens of
/// thousands of grid comparisons across the zoo, so the
/// per-comparison false-positive rate must be far below 1/comparisons
/// for the pinned seeds to stay breach-free — while a sign-flipped
/// steal term shifts the settled tails by `O(λ)` and still breaks out.
const ENVELOPE: Envelope = Envelope {
    z: 5.0,
    finite_n_rel: 2.0,
    abs_floor: 0.02,
};

/// The transient horizon: the drama is in the first few hundred
/// simulated seconds (relaxation is `O(1/(1 − λ))`), so the layer
/// trims the differential protocol's horizon instead of paying it in
/// full per variant.
fn transient_horizon(settings: &Settings) -> f64 {
    (settings.horizon / 4.0).max(600.0)
}

/// ε for the relaxation clocks, scaled to what the averaged finite-n
/// trajectory can actually hold: a generous multiple of the Kurtz
/// fluctuation at sample size `n·runs`, plus the `O(1/n)` bias and an
/// absolute floor.
fn relax_epsilon(settings: &Settings) -> f64 {
    let eff = (settings.n * settings.runs) as f64;
    4.0 * (0.25 / eff).sqrt() + 2.0 / settings.n as f64 + 0.01
}

/// Run `settings.runs` replicates of `cfg` with tail sampling on and
/// compare against the ODE trajectory of `spec` integrated on the same
/// grid. `n_override` swaps the processor count (for the n-scaling
/// check); everything else follows the shared protocol.
fn analyse(
    settings: &Settings,
    spec: &ModelSpec,
    mut cfg: loadsteal_sim::SimConfig,
    n_override: Option<usize>,
) -> Result<TransientAnalysis, String> {
    if let Some(n) = n_override {
        cfg.n = n;
    }
    cfg.horizon = transient_horizon(settings);
    cfg.warmup = cfg.warmup.min(cfg.horizon / 4.0);
    cfg.sample_tails = Some(SAMPLE_DT);
    cfg.validate().map_err(|e| e.to_string())?;

    let mut events = Vec::new();
    for i in 0..settings.runs {
        let mut rec = CollectingRecorder::new();
        run_recorded(&cfg, settings.seed.wrapping_add(i as u64), &mut rec);
        events.extend_from_slice(rec.events());
    }

    let model = spec.mean_field().map_err(|e| e.to_string())?;
    let ode = loadsteal_core::trajectory::sample_tails(
        &model,
        &model.empty_state(),
        cfg.horizon + 0.5 * SAMPLE_DT,
        SAMPLE_DT,
    )
    .map_err(|e| format!("ODE trajectory failed: {e}"))?;
    let fixed_point = spec.fixed_point().ok().map(|fp| fp.task_tails);

    let mut opts = TransientOptions::new(cfg.n);
    opts.epsilon = relax_epsilon(settings);
    opts.envelope = ENVELOPE;
    Ok(TransientAnalysis::build(
        &events,
        &ode,
        fixed_point.as_deref(),
        &opts,
    ))
}

/// The envelope check for one zoo variant: every residual along the
/// trajectory inside the CI envelope, every sample matched to the grid.
pub fn envelope_check(settings: &Settings, v: &zoo::Variant) -> Outcome {
    let a = match analyse(settings, &v.spec, v.cfg.clone(), None) {
        Ok(a) => a,
        Err(e) => return Outcome::Skip(e),
    };
    if a.points.is_empty() {
        return Outcome::Fail("no tail samples were emitted".into());
    }
    if a.unmatched > 0 {
        return Outcome::Fail(format!(
            "{} sample instants missed the ODE grid",
            a.unmatched
        ));
    }
    if let Some(d) = a.drift.first() {
        return Outcome::Fail(format!(
            "{} drift events; first at t = {:.1}, tail s{}: residual {:+.4} outside ±{:.4}",
            a.drift.len(),
            d.t,
            d.tail,
            d.residual,
            d.bound
        ));
    }
    Outcome::Pass(format!(
        "‖ŝ−s‖∞ = {:.4} over {} instants × {} tails",
        a.residual_sup,
        a.points.len(),
        a.depth
    ))
}

/// The relaxation check on the paper's basic model: both clocks
/// finite, and the empirical one consistent with the ODE's.
fn relaxation_check(settings: &Settings) -> Outcome {
    let spec = ModelSpec::simple_ws(0.9);
    let cfg = match spec.sim_config(settings.n) {
        Ok(c) => c,
        Err(e) => return Outcome::Skip(e.to_string()),
    };
    let a = match analyse(settings, &spec, cfg, None) {
        Ok(a) => a,
        Err(e) => return Outcome::Skip(e),
    };
    let Some(ode) = a.ode_settling_time else {
        return Outcome::Fail(format!(
            "ODE trajectory never settles within ε = {:.3}",
            a.epsilon
        ));
    };
    let Some(sim) = a.relaxation_time else {
        return Outcome::Fail(format!(
            "empirical trajectory never stays within ε = {:.3} of the fixed point \
             (ODE settles at {ode:.1})",
            a.epsilon
        ));
    };
    // The sampled trajectory cannot beat its own grid, and should not
    // lag the ODE by more than a small factor plus grid slack.
    let limit = 3.0 * ode + 10.0 * SAMPLE_DT;
    if sim > limit {
        return Outcome::Fail(format!(
            "empirical relaxation {sim:.1} ≫ ODE settling {ode:.1} (limit {limit:.1})"
        ));
    }
    Outcome::Pass(format!(
        "sim relaxes at {sim:.1}, ODE at {ode:.1} (ε = {:.3})",
        a.epsilon
    ))
}

/// Two-point Kurtz scaling: the mean absolute deviation from the ODE
/// trajectory must fall with n (sampled at n = 64 and n = 256).
fn n_scaling_check(settings: &Settings) -> Outcome {
    let spec = ModelSpec::simple_ws(0.7);
    let cfg = match spec.sim_config(64) {
        Ok(c) => c,
        Err(e) => return Outcome::Skip(e.to_string()),
    };
    let coarse = match analyse(settings, &spec, cfg.clone(), Some(64)) {
        Ok(a) => a,
        Err(e) => return Outcome::Skip(e),
    };
    let fine = match analyse(settings, &spec, cfg, Some(256)) {
        Ok(a) => a,
        Err(e) => return Outcome::Skip(e),
    };
    let (d64, d256) = (coarse.mean_abs_residual, fine.mean_abs_residual);
    // O(1/√n) predicts a factor 2; require clear improvement, not the
    // exact rate (the constant hides warmup and depth effects).
    if d256 < 0.9 * d64 {
        Outcome::Pass(format!(
            "mean |ŝ−s|: {d64:.4} at n = 64 → {d256:.4} at n = 256"
        ))
    } else {
        Outcome::Fail(format!(
            "deviation did not shrink with n: {d64:.4} at n = 64 vs {d256:.4} at n = 256"
        ))
    }
}

/// Assemble the layer: one envelope check per zoo variant, the
/// relaxation clock, and the two-point n-scaling check.
pub fn checks(settings: &Settings) -> Vec<Check> {
    let mut checks = Vec::new();
    for v in zoo::variants(settings) {
        let s = settings.clone();
        checks.push(Check::new("transient", format!("envelope({})", v.name), {
            move || envelope_check(&s, &v)
        }));
    }
    let s = settings.clone();
    checks.push(Check::new("transient", "relaxation(simple-ws,λ=0.9)", {
        move || relaxation_check(&s)
    }));
    let s = settings.clone();
    checks.push(Check::new("transient", "n-scaling(64→256,λ=0.7)", {
        move || n_scaling_check(&s)
    }));
    checks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sabotage;

    /// The honest basic model passes the envelope check even at the
    /// tiny protocol (the envelope widens as `1/√(n·runs)`).
    #[test]
    fn honest_simple_ws_stays_inside_the_envelope() {
        let settings = Settings::tiny(11);
        let v = zoo::variants(&settings)
            .into_iter()
            .find(|v| v.name.starts_with("simple-ws"))
            .expect("zoo lost the basic model");
        match envelope_check(&settings, &v) {
            Outcome::Pass(detail) => assert!(detail.contains('∞'), "{detail}"),
            other => panic!("honest variant breached the envelope: {other:?}"),
        }
    }

    /// Teeth: replaying the honest simulation against the sabotaged
    /// (sign-flipped) ODE trajectory must breach the envelope — the
    /// transient layer catches the transcription error on its own,
    /// without consulting the fixed point.
    #[test]
    fn sabotaged_ode_trajectory_breaches_the_envelope() {
        let settings = Settings::tiny(11);
        let v = sabotage::sabotaged_variant(&settings);
        let bad = sabotage::SabotagedSimpleWs::new(0.5).expect("valid λ");
        let ode = loadsteal_core::trajectory::sample_tails(
            &bad,
            &bad.empty_state(),
            transient_horizon(&settings) + 0.5 * SAMPLE_DT,
            SAMPLE_DT,
        )
        .expect("sabotaged ODE integrates");

        let mut cfg = v.cfg.clone();
        cfg.horizon = transient_horizon(&settings);
        cfg.warmup = cfg.warmup.min(cfg.horizon / 4.0);
        cfg.sample_tails = Some(SAMPLE_DT);
        let mut events = Vec::new();
        for i in 0..settings.runs {
            let mut rec = CollectingRecorder::new();
            run_recorded(&cfg, settings.seed.wrapping_add(i as u64), &mut rec);
            events.extend_from_slice(rec.events());
        }
        let mut opts = TransientOptions::new(cfg.n);
        opts.envelope = ENVELOPE;
        let a = TransientAnalysis::build(&events, &ode, None, &opts);
        assert!(
            !a.drift.is_empty(),
            "sign-flipped trajectory went undetected (sup {:.4})",
            a.residual_sup
        );
        // The breach is persistent, not a lone fluctuation.
        assert!(a.drift.len() >= 10, "only {} drift events", a.drift.len());
    }

    #[test]
    fn layer_carries_one_envelope_check_per_variant_plus_two() {
        let settings = Settings::quick(1);
        let expected = zoo::variants(&settings).len() + 2;
        assert_eq!(checks(&settings).len(), expected);
    }
}
