//! Overhead layer: the telemetry pipeline itself.
//!
//! Every other layer trusts the trace: it treats the recorded event
//! stream as ground truth about what the simulator or the executor
//! did. This layer closes the loop on that assumption by checking the
//! *pipeline* that produces the stream:
//!
//! * **sharded-vs-locked equivalence** — a deterministic multi-thread
//!   synthetic stream recorded through the sharded path
//!   ([`loadsteal_obs::ShardedRecorder`]) and the locked path
//!   ([`loadsteal_obs::SharedRecorder`]-style mutex) must serialize to
//!   bit-for-bit identical event multisets, and the merged sharded
//!   stream must preserve each shard's emission order and be globally
//!   nondecreasing in `t` (the ordering contract in
//!   `docs/trace-schema.md`);
//! * **pinned-seed stealbench equivalence** — the executor bench run
//!   once with the locked tracer and once with the sharded tracer on
//!   the same seed must submit the same jobs, trace the same arrival
//!   sequence (the driver's plan is seed-deterministic), and account
//!   for every completion its pool counters report, in both runs;
//! * **tracing overhead budget** — full tracing on the simulator bench
//!   (every event serialized to NDJSON) must cost at most
//!   [`OVERHEAD_BUDGET`] × the untraced run. The sharded/batched
//!   pipeline exists so observability stays affordable; this check is
//!   the regression gate on that promise (budget table in
//!   `docs/telemetry.md`).
//!
//! The overhead measurement is wall-clock timed, so it and the bench
//! run are marked [`Check::serial`]; the synthetic equivalence check
//! is pure CPU and runs with the concurrent pool.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use loadsteal_core::ModelSpec;
use loadsteal_exec::stealbench::{run_once, run_once_sharded, StealBenchConfig};
use loadsteal_obs::{
    CollectingRecorder, Event, NdjsonRecorder, Recorder, ShardSink, ShardedRecorder, SimEventKind,
};
use loadsteal_sim::{run_recorded, run_seeded, sim_config};

use crate::harness::{Check, Outcome, Settings, Tier};

/// Maximum allowed wall-clock ratio of a fully traced simulator run
/// (every event serialized to NDJSON) over the untraced run. Measured
/// ratios on CI-class hardware sit near 7× (the engine simulates
/// ≈ 13 M events/s untraced; JSON formatting caps the traced path
/// near 2 M events/s); the budget leaves headroom for slow shared
/// runners while still catching a reintroduced per-event sink lock or
/// an unbatched write path, which cost several× more on top.
pub const OVERHEAD_BUDGET: f64 = 12.0;

/// Threads hammering the recorder in the synthetic equivalence check.
const SYN_THREADS: usize = 8;

/// Events emitted per thread in the synthetic stream.
const SYN_EVENTS: usize = 4_000;

/// The deterministic event stream thread `shard` emits: `count` is a
/// 1-based per-shard sequence stamp (so order survives serialization)
/// and the `t` values are strictly increasing within the shard.
fn synthetic_stream(shard: usize) -> Vec<Event> {
    (0..SYN_EVENTS)
        .map(|i| Event::Sim {
            kind: match i % 4 {
                0 => SimEventKind::Arrival,
                1 => SimEventKind::StealAttempt,
                2 => SimEventKind::StealSuccess,
                _ => SimEventKind::Completion,
            },
            t: shard as f64 + i as f64 * 1e-5,
            proc: shard as u32,
            src: None,
            count: i as u32 + 1,
        })
        .collect()
}

/// Record every shard's synthetic stream from its own thread through
/// `record`, which receives `(shard, event)`.
fn hammer(record: impl Fn(usize, &Event) + Sync) {
    std::thread::scope(|scope| {
        for shard in 0..SYN_THREADS {
            let record = &record;
            scope.spawn(move || {
                for ev in synthetic_stream(shard) {
                    record(shard, &ev);
                }
            });
        }
    });
}

/// Sharded-vs-locked equivalence on the synthetic stream: identical
/// serialized multisets, per-shard order preserved after the merge,
/// global `t` order nondecreasing.
fn equivalence_check() -> Outcome {
    let sharded = ShardedRecorder::with_shards(CollectingRecorder::new(), SYN_THREADS);
    hammer(|shard, ev| sharded.record(shard, ev));
    let total = sharded.recorded();
    let merged = sharded.finish().into_events();

    let locked = Mutex::new(CollectingRecorder::new());
    hammer(|_, ev| locked.lock().unwrap().record(ev));
    let interleaved = locked.into_inner().unwrap().into_events();

    let expected = (SYN_THREADS * SYN_EVENTS) as u64;
    if total != expected || merged.len() as u64 != expected {
        return Outcome::Fail(format!(
            "sharded recorder lost events: {total} recorded, {} merged, {expected} emitted",
            merged.len()
        ));
    }

    // Bit-for-bit multiset equality of the serialized streams.
    let canon = |evs: &[Event]| {
        let mut lines: Vec<String> = evs.iter().map(Event::to_json_line).collect();
        lines.sort_unstable();
        lines
    };
    if canon(&merged) != canon(&interleaved) {
        return Outcome::Fail(
            "sharded and locked recorders serialized different event multisets".into(),
        );
    }

    // Per-shard emission order survives the merge (count is the
    // per-shard sequence stamp), and the merge is globally t-ordered.
    let mut next_seq = [1u32; SYN_THREADS];
    let mut last_t = f64::NEG_INFINITY;
    for ev in &merged {
        let Event::Sim { t, proc, count, .. } = ev else {
            return Outcome::Fail("unexpected event kind in merged stream".into());
        };
        if *t < last_t {
            return Outcome::Fail(format!("merged stream regressed in t at proc {proc}"));
        }
        last_t = *t;
        let shard = *proc as usize;
        if *count != next_seq[shard] {
            return Outcome::Fail(format!(
                "shard {shard} order broken: saw seq {count}, expected {}",
                next_seq[shard]
            ));
        }
        next_seq[shard] += 1;
    }
    Outcome::Pass(format!(
        "{SYN_THREADS} threads × {SYN_EVENTS} events: multisets bit-identical, per-shard order and global t-order hold"
    ))
}

/// Stealbench configuration for the pinned-seed equivalence run:
/// small enough that two serial wall-clock runs cost ≈ 0.2 s.
fn bench_cfg(seed: u64) -> StealBenchConfig {
    StealBenchConfig {
        workers: 8,
        lambda: 0.8,
        horizon: 50.0,
        tau: 0.002,
        seed,
    }
}

/// The arrival `proc` sequence of a trace, in stream order. Both
/// tracer paths must reproduce the driver's seed-deterministic
/// submission plan exactly.
fn arrival_procs(events: &[Event]) -> Vec<u32> {
    events
        .iter()
        .filter_map(|ev| match ev {
            Event::Sim {
                kind: SimEventKind::Arrival,
                proc,
                ..
            } => Some(*proc),
            _ => None,
        })
        .collect()
}

/// Pinned-seed equivalence of the two executor tracer paths.
fn stealbench_check(settings: &Settings) -> Outcome {
    let cfg = bench_cfg(settings.seed ^ 0x0B5E_C0DE);
    let locked_sink: Arc<Mutex<CollectingRecorder>> =
        Arc::new(Mutex::new(CollectingRecorder::new()));
    let locked_out = match run_once(
        &cfg,
        Arc::clone(&locked_sink) as Arc<Mutex<dyn Recorder + Send>>,
    ) {
        Ok(o) => o,
        Err(e) => return Outcome::Fail(format!("locked run failed: {e}")),
    };
    let locked_events = locked_sink.lock().unwrap().events().to_vec();

    let sharded_sink = Arc::new(ShardedRecorder::with_shards(
        CollectingRecorder::new(),
        cfg.workers + 1,
    ));
    let sharded_out = match run_once_sharded(&cfg, Arc::clone(&sharded_sink) as Arc<dyn ShardSink>)
    {
        Ok(o) => o,
        Err(e) => return Outcome::Fail(format!("sharded run failed: {e}")),
    };
    let sharded_events = match Arc::try_unwrap(sharded_sink) {
        Ok(s) => s.finish().into_events(),
        Err(_) => return Outcome::Fail("sharded sink still shared after shutdown".into()),
    };

    if locked_out.submitted != sharded_out.submitted {
        return Outcome::Fail(format!(
            "same seed submitted {} jobs locked vs {} sharded — plan is not deterministic",
            locked_out.submitted, sharded_out.submitted
        ));
    }
    let (la, sa) = (
        arrival_procs(&locked_events),
        arrival_procs(&sharded_events),
    );
    if la != sa {
        return Outcome::Fail(format!(
            "arrival sequences diverge: {} locked vs {} sharded arrivals",
            la.len(),
            sa.len()
        ));
    }
    if la.len() as u64 != locked_out.submitted {
        return Outcome::Fail(format!(
            "{} traced arrivals vs {} submitted",
            la.len(),
            locked_out.submitted
        ));
    }
    for (path, out, events) in [
        ("locked", &locked_out, &locked_events),
        ("sharded", &sharded_out, &sharded_events),
    ] {
        let completions = events
            .iter()
            .filter(|ev| {
                matches!(
                    ev,
                    Event::Sim {
                        kind: SimEventKind::Completion,
                        ..
                    }
                )
            })
            .count() as u64;
        if completions != out.stats.executed {
            return Outcome::Fail(format!(
                "{path} trace has {completions} completions, pool executed {}",
                out.stats.executed
            ));
        }
    }
    let mut last_t = f64::NEG_INFINITY;
    for ev in &sharded_events {
        if let Event::Sim { t, .. } = ev {
            if *t < last_t {
                return Outcome::Fail("merged sharded bench trace regressed in t".into());
            }
            last_t = *t;
        }
    }
    Outcome::Pass(format!(
        "seed {:#x}: {} submitted, identical arrival sequences, completions match pool counters, merged trace t-ordered",
        cfg.seed, locked_out.submitted
    ))
}

/// Model-time horizon for the overhead measurement (long enough that
/// the baseline run is well above timer resolution).
fn overhead_horizon(tier: Tier) -> f64 {
    match tier {
        Tier::Quick => 1_500.0,
        Tier::Full => 4_000.0,
    }
}

/// Best-of-`reps` wall time of `body`, in seconds.
fn best_of(reps: usize, mut body: impl FnMut()) -> f64 {
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            body();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Enabled-tracing overhead on the sim bench vs [`OVERHEAD_BUDGET`].
fn overhead_check(settings: &Settings) -> Outcome {
    let spec = ModelSpec::simple_ws(0.9);
    let mut cfg = match sim_config(&spec, settings.n) {
        Ok(c) => c,
        Err(e) => return Outcome::Fail(format!("sim config: {e}")),
    };
    cfg.horizon = overhead_horizon(settings.tier);
    cfg.warmup = 0.1 * cfg.horizon;
    let seed = settings.seed;

    let baseline = best_of(3, || {
        std::hint::black_box(run_seeded(&cfg, seed));
    });
    let mut lines = 0u64;
    let traced = best_of(3, || {
        let mut rec = NdjsonRecorder::new(std::io::sink());
        std::hint::black_box(run_recorded(&cfg, seed, &mut rec));
        lines = rec.lines();
    });
    if baseline < 1e-3 {
        return Outcome::Skip(format!(
            "baseline run too fast to time reliably ({:.2} ms)",
            baseline * 1e3
        ));
    }
    let ratio = traced / baseline;
    let msg = format!(
        "traced {lines} events: {:.1} ms vs {:.1} ms untraced, ratio {ratio:.2}× (budget {OVERHEAD_BUDGET}×)",
        traced * 1e3,
        baseline * 1e3,
    );
    if ratio <= OVERHEAD_BUDGET {
        Outcome::Pass(msg)
    } else {
        Outcome::Fail(msg)
    }
}

/// Assemble the overhead checks. The two wall-clock measurements are
/// serial; the synthetic equivalence check is not.
pub fn checks(settings: &Settings) -> Vec<Check> {
    let mut checks = Vec::new();
    checks.push(Check::new(
        "overhead",
        "sharded-vs-locked",
        equivalence_check,
    ));
    let s = settings.clone();
    checks.push(Check::serial(
        "overhead",
        "stealbench-pinned-seed",
        move || stealbench_check(&s),
    ));
    let s = settings.clone();
    checks.push(Check::serial("overhead", "tracing-budget", move || {
        overhead_check(&s)
    }));
    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_checks_in_the_overhead_group() {
        let s = Settings::tiny(5);
        let cs = checks(&s);
        assert_eq!(cs.len(), 3);
        for c in &cs {
            assert_eq!(c.group, "overhead");
        }
        assert!(!cs[0].serial, "equivalence check is pure CPU");
        assert!(cs[1].serial && cs[2].serial, "timed checks must be serial");
    }

    #[test]
    fn synthetic_equivalence_holds() {
        assert!(
            matches!(equivalence_check(), Outcome::Pass(_)),
            "{:?}",
            equivalence_check()
        );
    }

    #[test]
    fn pinned_seed_stealbench_paths_agree() {
        let s = Settings::tiny(11);
        let out = stealbench_check(&s);
        assert!(matches!(out, Outcome::Pass(_)), "{out:?}");
    }
}
