//! Metamorphic checks: properties the models must satisfy independently
//! of any simulation.
//!
//! These are relations the paper derives analytically — each one holds
//! for *every* correct transcription of the equations, so a violation
//! pins a defect to the model code without needing a statistical
//! comparison.

use loadsteal_core::fixed_point::{solve, FixedPointOptions};
use loadsteal_core::models::{
    GeneralWs, MeanFieldModel, MultiChoice, MultiSteal, NoSteal, Preemptive, Rebalance,
    RebalanceRateFn, RepeatedSteal, SimpleWs, ThresholdWs, WorkSharing,
};
use loadsteal_core::trajectory::mass_balance_residual;
use loadsteal_core::TailVector;

use crate::harness::{Check, Outcome, Settings};
use crate::zoo;

/// Every fixed point in the zoo must be a valid tail vector (entries in
/// `[0, 1]`, non-increasing in the level), and — for unit-speed
/// conservative variants — its busy fraction must equal λ exactly
/// (throughput balance: departures at rate `s_1` match arrivals at λ).
fn fixed_points_valid(settings: &Settings) -> Outcome {
    let mut problems = Vec::new();
    let mut seen = 0;
    for v in zoo::variants(settings) {
        let fp = match (v.predict)() {
            Ok(fp) => fp,
            Err(e) => {
                problems.push(format!("{}: solve failed: {e}", v.name));
                continue;
            }
        };
        seen += 1;
        let tails = TailVector::from_slice(&fp.task_tails[1..]);
        if !tails.is_valid(1e-6) {
            problems.push(format!("{}: fixed-point tails invalid", v.name));
        }
        if v.busy_is_lambda {
            let s1 = fp.task_tails[1];
            if (s1 - v.lambda).abs() > 1e-6 {
                problems.push(format!(
                    "{}: busy fraction {s1:.8} ≠ λ = {}",
                    v.name, v.lambda
                ));
            }
        }
    }
    if problems.is_empty() {
        Outcome::Pass(format!("{seen} fixed points valid, busy fraction = λ"))
    } else {
        Outcome::Fail(problems.join("; "))
    }
}

/// Mass conservation under the ODE flow: for unit-speed models whose
/// state is the plain task tail, `dL/dt = λ − s_1` must hold at every
/// state (stealing only moves tasks). Checked at three states with
/// negligible truncation-boundary mass.
fn mass_conservation() -> Outcome {
    fn probe<M: MeanFieldModel>(model: &M, problems: &mut Vec<String>) {
        let states = [
            model.empty_state(),
            TailVector::geometric(0.5, model.truncation()).into_vec(),
            TailVector::uniform_load(3, model.truncation()).into_vec(),
        ];
        for (k, state) in states.iter().enumerate() {
            let r = mass_balance_residual(model, state);
            if r.abs() > 1e-6 {
                problems.push(format!("{} state {k}: residual {r:.2e}", model.name()));
            }
        }
    }
    let mut problems = Vec::new();
    probe(&NoSteal::new(0.8).unwrap(), &mut problems);
    probe(&SimpleWs::new(0.9).unwrap(), &mut problems);
    probe(&ThresholdWs::new(0.85, 4).unwrap(), &mut problems);
    probe(&Preemptive::new(0.85, 1, 3).unwrap(), &mut problems);
    probe(&RepeatedSteal::new(0.9, 2.0, 2).unwrap(), &mut problems);
    probe(&MultiChoice::new(0.9, 2, 2).unwrap(), &mut problems);
    probe(&MultiSteal::new(0.85, 3, 6).unwrap(), &mut problems);
    probe(&GeneralWs::new(0.9, 6, 2, 3).unwrap(), &mut problems);
    probe(&WorkSharing::new(0.9, 2, 2).unwrap(), &mut problems);
    probe(
        &Rebalance::new(0.8, RebalanceRateFn::Constant(0.5)).unwrap(),
        &mut problems,
    );
    if problems.is_empty() {
        Outcome::Pass("dL/dt = λ − s₁ on 10 models × 3 states".into())
    } else {
        Outcome::Fail(problems.join("; "))
    }
}

/// The no-steal system is `n` independent M/M/1 queues: its fixed point
/// must be the geometric tail `s_i = λ^i` with `W = 1/(1 − λ)`.
fn no_steal_is_mm1() -> Outcome {
    let lambda = 0.8;
    let m = NoSteal::new(lambda).unwrap();
    let fp = match solve(&m, &FixedPointOptions::default()) {
        Ok(fp) => fp,
        Err(e) => return Outcome::Fail(format!("solve failed: {e}")),
    };
    let mut worst = 0.0_f64;
    for i in 1..=20 {
        let expect = lambda.powi(i as i32);
        let got = fp.task_tails.get(i).copied().unwrap_or(0.0);
        worst = worst.max((got - expect).abs());
    }
    let w_err = (fp.mean_time_in_system - 1.0 / (1.0 - lambda)).abs();
    if worst < 1e-7 && w_err < 1e-7 {
        Outcome::Pass(format!(
            "s_i = λ^i to {worst:.1e}, W = 1/(1−λ) to {w_err:.1e}"
        ))
    } else {
        Outcome::Fail(format!("tail error {worst:.2e}, W error {w_err:.2e}"))
    }
}

/// Mean sojourn time must be strictly increasing in λ (more load, more
/// waiting) — checked on the simple-WS family.
fn sojourn_monotone_in_lambda() -> Outcome {
    let lambdas = [0.5, 0.7, 0.8, 0.9, 0.95];
    let mut ws = Vec::new();
    for &l in &lambdas {
        let m = SimpleWs::new(l).unwrap();
        match solve(&m, &FixedPointOptions::default()) {
            Ok(fp) => ws.push(fp.mean_time_in_system),
            Err(e) => return Outcome::Fail(format!("solve(λ={l}) failed: {e}")),
        }
    }
    if ws.windows(2).all(|w| w[0] < w[1]) {
        Outcome::Pass(format!(
            "W(λ) = {:?} strictly increasing",
            ws.iter()
                .map(|w| (w * 1e3).round() / 1e3)
                .collect::<Vec<_>>()
        ))
    } else {
        Outcome::Fail(format!("W(λ) not monotone: {ws:?}"))
    }
}

/// Every stealing variant must beat the no-steal baseline at equal λ:
/// `W < 1/(1 − λ)` (Section 2.2's headline comparison, extended across
/// the zoo).
fn stealing_dominates_no_steal(settings: &Settings) -> Outcome {
    let mut problems = Vec::new();
    let mut seen = 0;
    for v in zoo::variants(settings) {
        if !v.dominates_no_steal {
            continue;
        }
        let mm1 = 1.0 / (1.0 - v.lambda);
        match (v.predict)() {
            Ok(fp) => {
                seen += 1;
                if fp.mean_time_in_system >= mm1 {
                    problems.push(format!(
                        "{}: W = {:.3} ≥ M/M/1 {:.3}",
                        v.name, fp.mean_time_in_system, mm1
                    ));
                }
            }
            Err(e) => problems.push(format!("{}: solve failed: {e}", v.name)),
        }
    }
    if problems.is_empty() {
        Outcome::Pass(format!("{seen} variants beat 1/(1−λ)"))
    } else {
        Outcome::Fail(problems.join("; "))
    }
}

/// The numeric pipeline must agree with Section 2.2's closed form:
/// `W`, and the geometric tail ratio `ρ' = λ/(1 + λ − π_2)`.
fn simple_ws_closed_form() -> Outcome {
    let m = SimpleWs::new(0.9).unwrap();
    let exact = m.closed_form_fixed_point();
    let fp = match solve(&m, &FixedPointOptions::default()) {
        Ok(fp) => fp,
        Err(e) => return Outcome::Fail(format!("solve failed: {e}")),
    };
    let w_err = (fp.mean_time_in_system - exact.mean_time_in_system).abs();
    let ratio = fp.tail_ratio().unwrap_or(f64::NAN);
    let ratio_err = (ratio - m.rho_prime()).abs();
    if w_err < 1e-6 && ratio_err < 1e-3 {
        Outcome::Pass(format!(
            "W to {w_err:.1e}, tail ratio {ratio:.4} ≈ ρ' {:.4}",
            m.rho_prime()
        ))
    } else {
        Outcome::Fail(format!("W error {w_err:.2e}, ratio error {ratio_err:.2e}"))
    }
}

/// Build the metamorphic check family.
pub fn checks(settings: &Settings) -> Vec<Check> {
    let s1 = settings.clone();
    let s2 = settings.clone();
    vec![
        Check::new("metamorphic", "fixed-points-valid", move || {
            fixed_points_valid(&s1)
        }),
        Check::new("metamorphic", "mass-conservation", mass_conservation),
        Check::new("metamorphic", "no-steal-is-mm1", no_steal_is_mm1),
        Check::new(
            "metamorphic",
            "sojourn-monotone-in-lambda",
            sojourn_monotone_in_lambda,
        ),
        Check::new("metamorphic", "stealing-dominates-no-steal", move || {
            stealing_dominates_no_steal(&s2)
        }),
        Check::new(
            "metamorphic",
            "simple-ws-closed-form",
            simple_ws_closed_form,
        ),
    ]
}
