//! Statistical verification harness for the model zoo.
//!
//! The paper's central claim is that finite-system simulations agree
//! with the mean-field fixed points (Tables 1–4, Theorems 1–2). The
//! three top-level integration tests spot-check a couple of variants
//! with hand-picked tolerances; this crate systematizes the check into
//! ten layers, each a family of pass/fail [`harness::Check`]s:
//!
//! * **differential** — every simulable variant paired with its ODE
//!   fixed point, agreement asserted within confidence-interval-derived
//!   bounds (run-level Student-t intervals plus an explicit `O(1/n)`
//!   finite-size allowance; a single-run batch-means check reuses
//!   [`loadsteal_queueing::BatchMeans`]). The full tier re-simulates
//!   the paper's Table 1–4 parameter grids against the printed
//!   estimates.
//! * **metamorphic** — properties the models must satisfy regardless of
//!   any simulation: tails non-increasing and in `[0, 1]`, mass
//!   conservation under the ODE flow, mean sojourn monotone in λ,
//!   no-steal reducing to the M/M/1 `λ^i` tail, every stealing variant
//!   dominating no-steal at equal λ.
//! * **convergence** — empirical integrator orders via step-halving
//!   Richardson ratios (Euler ≈ 1, RK4 ≈ 4) and DOPRI5 error scaling
//!   with its tolerance.
//! * **determinism** — seed-replay: identical configs and seeds hash to
//!   identical `--trace` byte streams, different seeds do not.
//! * **engine** — future-event-list equivalence: every quick-tier zoo
//!   preset run under the heap and calendar engines must produce
//!   bit-identical NDJSON traces (event-for-event, via FNV-1a over the
//!   full byte stream) and identical scalar results.
//! * **jobs** — per-job causal traces: the `--trace-jobs` sojourn
//!   decomposition (`wait + transfer + service`) must reproduce the
//!   engine's internal sojourn statistics exactly, and the migrated
//!   fraction and service-station Little's law must agree with the
//!   fixed point on the basic model.
//! * **transient** — Kurtz trajectory agreement: `--sample-tails`
//!   streams replayed against the ODE solution on the same grid must
//!   stay inside a CI-derived residual envelope along the whole
//!   trajectory, the empirical ε-relaxation time must be finite and
//!   consistent with the ODE settling time, and the deviation must
//!   shrink from n = 64 to n = 256 (the `O(1/√n)` rate, two-point
//!   version).
//! * **rate** — the stationary finite-size law: tail errors against
//!   the fixed point over a geometric grid of n must decay with a
//!   log-log slope near −1 (`Θ(1/n)`, Ying's refinement of the Kurtz
//!   bound); an injected O(1) bias floor must flatten the slope and
//!   fail.
//! * **executor** — the *measured* work-stealing thread pool: the real
//!   Chase–Lev executor driven with the paper's Poisson workload at
//!   λ = 0.9, its wall-clock trace replayed through the same timeline
//!   pipeline, steal success rate and tail occupancies required to
//!   match the mean-field fixed point within the usual CI + `c/n`
//!   bounds.
//! * **overhead** — the telemetry pipeline itself: the sharded
//!   recorder must serialize the same event multiset as the locked
//!   recorder (bit-for-bit, on deterministic concurrent streams and
//!   pinned-seed executor runs) while preserving per-shard order in
//!   the merge, and full NDJSON tracing on the sim bench must cost at
//!   most a declared wall-clock budget over the untraced run.
//!
//! The harness is exposed on the CLI as `loadsteal verify
//! [--quick|--full]`; the [`sabotage`] module carries a deliberately
//! sign-flipped copy of the simple-WS equations demonstrating that the
//! differential layer catches a transcription error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convergence;
pub mod determinism;
pub mod differential;
pub mod engine;
pub mod executor;
pub mod harness;
pub mod jobs;
pub mod metamorphic;
pub mod overhead;
pub mod rate;
pub mod sabotage;
pub mod stat;
pub mod transient;
pub mod zoo;

pub use harness::{Check, CheckResult, Outcome, Report, Settings, Tier};

/// Assemble every check for `settings`, in display order.
pub fn all_checks(settings: &Settings) -> Vec<Check> {
    let mut checks = Vec::new();
    checks.extend(metamorphic::checks(settings));
    checks.extend(convergence::checks(settings));
    checks.extend(determinism::checks(settings));
    checks.extend(engine::checks(settings));
    checks.extend(differential::checks(settings));
    checks.extend(jobs::checks(settings));
    checks.extend(transient::checks(settings));
    checks.extend(rate::checks(settings));
    checks.extend(executor::checks(settings));
    checks.extend(overhead::checks(settings));
    checks
}

/// Run the harness: every check whose `group:name` contains `filter`
/// (all of them when `None`), timed, in order. With
/// [`Settings::parallel`] set (the full tier), check bodies fan out
/// over the work-stealing pool — except the serial executor
/// measurements, which run alone afterwards.
pub fn run(settings: &Settings, filter: Option<&str>) -> Report {
    let checks: Vec<Check> = all_checks(settings)
        .into_iter()
        .filter(|c| filter.is_none_or(|f| format!("{}:{}", c.group, c.name).contains(f)))
        .collect();
    if settings.parallel {
        harness::run_checks_parallel(checks)
    } else {
        harness::run_checks(checks)
    }
}
