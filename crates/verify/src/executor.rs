//! Executor layer: the *measured* work-stealing pool against the
//! mean-field fixed point.
//!
//! Every other layer checks the discrete-event simulator against the
//! ODEs. This one closes the remaining gap to the paper's subject
//! matter: it drives the real thread pool
//! ([`loadsteal_exec::stealbench`]) with the per-processor
//! Poisson(λ)/Exp(1) workload at λ = 0.9 under the
//! one-steal-per-idle-transition policy, captures the pool's
//! `loadsteal.trace.v1` event stream, reconstructs queue occupancies
//! with the same [`loadsteal_trace::Timeline`] replay the simulator
//! traces go through, and requires:
//!
//! * **trace consistency** — the measured trace replays into a single
//!   coherent run: no queue-depth underflows, every migration carries
//!   both endpoints, arrivals and completions in the trace equal the
//!   driver's and the pool's own counters;
//! * **steal success ≈ π₂** — the fraction of steal probes that find a
//!   task matches the fixed point's probability that a random victim
//!   holds ≥ 2 tasks;
//! * **tail occupancies ≈ s₁…s₃** — time-averaged fractions of busy /
//!   doubly-loaded / triply-loaded workers match the fixed point;
//! * **arrival-rate sanity** — the trace-measured λ̂ is the λ that was
//!   asked for (the timing discipline in the bench driver actually
//!   landed).
//!
//! Bounds are the harness's usual `t-CI + c/n + floor` with `n` the
//! *worker* count — 16 workers is far from the mean-field limit, so
//! the finite-size allowance does real work here, exactly as the
//! theory says it must.
//!
//! The measurements are wall-clock timed, so these checks are marked
//! [`Check::serial`] and a run's data is captured once and shared.

use std::sync::{Arc, Mutex, OnceLock};

use loadsteal_core::ModelSpec;
use loadsteal_exec::stealbench::{run_once, StealBenchConfig, StealBenchOutcome};
use loadsteal_obs::{CollectingRecorder, Recorder};
use loadsteal_queueing::OnlineStats;
use loadsteal_trace::{Timeline, TimelineConfig};

use crate::harness::{Check, Outcome, Settings, Tier};
use crate::stat;

/// Pool workers = model processors for the measured runs.
const WORKERS: usize = 16;

/// Arrival rate for the agreement checks (the paper's hardest Table 1
/// row that is still comfortably stable).
const LAMBDA: f64 = 0.9;

/// Seconds of wall clock per model time unit.
const TAU: f64 = 0.004;

/// Deepest tail level compared (`s_1 ..= s_3`).
const TAIL_DEPTH: usize = 3;

/// One measured run: driver/pool counters plus the trace replay.
pub struct MeasuredRun {
    /// Counters from the bench driver and the pool.
    pub out: StealBenchOutcome,
    /// Timeline reconstructed from the captured trace.
    pub tl: Timeline,
}

/// Model-time horizon per run for a tier (wall time = horizon × τ; the
/// full tier buys roughly double the sample).
fn tier_horizon(tier: Tier) -> f64 {
    match tier {
        Tier::Quick => 300.0,
        Tier::Full => 600.0,
    }
}

/// Drive `runs` measured executor runs and replay each trace. Warmup
/// for the replay is 15% of the horizon (the occupancy process mixes
/// in O(10) time units at λ = 0.9).
pub fn measure(runs: usize, base_seed: u64, horizon: f64) -> Result<Vec<MeasuredRun>, String> {
    let warmup = 0.15 * horizon;
    let mut all = Vec::with_capacity(runs);
    for i in 0..runs as u64 {
        let cfg = StealBenchConfig {
            workers: WORKERS,
            lambda: LAMBDA,
            horizon,
            tau: TAU,
            seed: base_seed.wrapping_add(i),
        };
        let sink: Arc<Mutex<CollectingRecorder>> = Arc::new(Mutex::new(CollectingRecorder::new()));
        let out = run_once(&cfg, Arc::clone(&sink) as Arc<Mutex<dyn Recorder + Send>>)?;
        let events = sink.lock().unwrap().events().to_vec();
        let tl = Timeline::build(
            &events,
            &TimelineConfig {
                warmup,
                ..TimelineConfig::default()
            },
        );
        all.push(MeasuredRun { out, tl });
    }
    Ok(all)
}

/// Shared measurement cache: the four checks report on one set of runs
/// (checks execute one at a time — they are serial — so the first one
/// to run pays the wall time).
type BenchCache = Arc<OnceLock<Result<Vec<MeasuredRun>, String>>>;

fn cached<'a>(cache: &'a BenchCache, settings: &Settings) -> Result<&'a [MeasuredRun], String> {
    cache
        .get_or_init(|| measure(settings.runs, settings.seed, tier_horizon(settings.tier)))
        .as_ref()
        .map(|v| v.as_slice())
        .map_err(Clone::clone)
}

/// Trace hygiene: every run's trace must replay into a coherent
/// single-run timeline that agrees with the independent counters.
fn consistency_check(cache: &BenchCache, settings: &Settings) -> Outcome {
    let data = match cached(cache, settings) {
        Ok(d) => d,
        Err(e) => return Outcome::Fail(e),
    };
    let mut total_events = 0u64;
    for (i, r) in data.iter().enumerate() {
        let tl = &r.tl;
        if tl.depth_underflows > 0 || tl.sourceless_migrations > 0 {
            return Outcome::Fail(format!(
                "run {i}: {} depth underflows, {} sourceless migrations — trace is not a coherent single run",
                tl.depth_underflows, tl.sourceless_migrations
            ));
        }
        if tl.n_procs != WORKERS {
            return Outcome::Fail(format!(
                "run {i}: trace names {} processors, pool has {WORKERS}",
                tl.n_procs
            ));
        }
        if tl.counts.arrivals != r.out.submitted {
            return Outcome::Fail(format!(
                "run {i}: trace has {} arrivals, driver submitted {}",
                tl.counts.arrivals, r.out.submitted
            ));
        }
        if tl.counts.completions != r.out.stats.executed {
            return Outcome::Fail(format!(
                "run {i}: trace has {} completions, pool executed {}",
                tl.counts.completions, r.out.stats.executed
            ));
        }
        if tl.counts.steal_attempts != r.out.stats.steal_attempts
            || tl.counts.steal_successes != r.out.stats.steal_successes
        {
            return Outcome::Fail(format!(
                "run {i}: trace steal counts ({}/{}) disagree with pool counters ({}/{})",
                tl.counts.steal_successes,
                tl.counts.steal_attempts,
                r.out.stats.steal_successes,
                r.out.stats.steal_attempts
            ));
        }
        total_events += tl.counts.arrivals
            + tl.counts.completions
            + tl.counts.steal_attempts
            + tl.counts.steal_successes
            + tl.counts.migrations;
    }
    Outcome::Pass(format!(
        "{} runs, {total_events} events; every trace replays cleanly and matches the pool counters",
        data.len()
    ))
}

/// Solve the mean-field fixed point the measurements are compared to.
fn fixed_point() -> Result<loadsteal_core::fixed_point::FixedPoint, String> {
    ModelSpec::simple_ws(LAMBDA).fixed_point()
}

/// Steal success rate vs π₂ (the fixed-point probability a random
/// victim holds ≥ 2 tasks).
fn steal_success_check(cache: &BenchCache, settings: &Settings) -> Outcome {
    let data = match cached(cache, settings) {
        Ok(d) => d,
        Err(e) => return Outcome::Fail(e),
    };
    let fp = match fixed_point() {
        Ok(fp) => fp,
        Err(e) => return Outcome::Fail(format!("fixed-point solve failed: {e}")),
    };
    let pi2 = fp.task_tails.get(2).copied().unwrap_or(0.0);
    let rates: OnlineStats = data.iter().map(|r| r.out.steal_success_rate()).collect();
    let attempts: u64 = data.iter().map(|r| r.out.stats.steal_attempts).sum();
    let a = stat::Agreement {
        what: format!("steal success over {attempts} probes"),
        observed: rates.mean(),
        predicted: pi2,
        bound: stat::bound_from(
            &rates,
            pi2,
            WORKERS,
            stat::FINITE_N_REL_TAIL,
            stat::ABS_FLOOR_TAIL,
        ),
    };
    if a.holds() {
        Outcome::Pass(a.describe())
    } else {
        Outcome::Fail(a.describe())
    }
}

/// Time-averaged tail occupancies `s_1 ..= s_3` vs the fixed point.
fn tails_check(cache: &BenchCache, settings: &Settings) -> Outcome {
    let data = match cached(cache, settings) {
        Ok(d) => d,
        Err(e) => return Outcome::Fail(e),
    };
    let fp = match fixed_point() {
        Ok(fp) => fp,
        Err(e) => return Outcome::Fail(format!("fixed-point solve failed: {e}")),
    };
    let mut agreements = Vec::new();
    for level in 1..=TAIL_DEPTH {
        let predicted = fp.task_tails.get(level).copied().unwrap_or(0.0);
        let stats: OnlineStats = data
            .iter()
            .map(|r| r.tl.tails.get(level).copied().unwrap_or(0.0))
            .collect();
        agreements.push(stat::Agreement {
            what: format!("measured tail s_{level}"),
            observed: stats.mean(),
            predicted,
            bound: stat::bound_from(
                &stats,
                predicted,
                WORKERS,
                stat::FINITE_N_REL_TAIL,
                stat::ABS_FLOOR_TAIL,
            ),
        });
    }
    let failed: Vec<String> = agreements
        .iter()
        .filter(|a| !a.holds())
        .map(stat::Agreement::describe)
        .collect();
    if failed.is_empty() {
        Outcome::Pass(
            agreements
                .iter()
                .map(stat::Agreement::describe)
                .collect::<Vec<_>>()
                .join("; "),
        )
    } else {
        Outcome::Fail(failed.join("; "))
    }
}

/// The trace-measured per-worker arrival rate must be the λ the bench
/// driver was asked for — the timing discipline check.
fn arrival_rate_check(cache: &BenchCache, settings: &Settings) -> Outcome {
    let data = match cached(cache, settings) {
        Ok(d) => d,
        Err(e) => return Outcome::Fail(e),
    };
    let rates: OnlineStats = data.iter().map(|r| r.tl.arrival_rate()).collect();
    let a = stat::Agreement {
        what: "measured λ̂".into(),
        observed: rates.mean(),
        predicted: LAMBDA,
        bound: stat::bound_from(
            &rates,
            LAMBDA,
            WORKERS,
            stat::FINITE_N_REL_TAIL,
            stat::ABS_FLOOR_TAIL,
        ),
    };
    if a.holds() {
        Outcome::Pass(a.describe())
    } else {
        Outcome::Fail(a.describe())
    }
}

/// Assemble the executor checks. All four are serial (wall-clock
/// measurements) and share one cached set of runs.
pub fn checks(settings: &Settings) -> Vec<Check> {
    let cache: BenchCache = Arc::new(OnceLock::new());
    let mut checks = Vec::new();
    let (c, s) = (Arc::clone(&cache), settings.clone());
    checks.push(Check::serial("executor", "trace-consistency", move || {
        consistency_check(&c, &s)
    }));
    let (c, s) = (Arc::clone(&cache), settings.clone());
    checks.push(Check::serial(
        "executor",
        format!("steal-success(λ={LAMBDA})"),
        move || steal_success_check(&c, &s),
    ));
    let (c, s) = (Arc::clone(&cache), settings.clone());
    checks.push(Check::serial(
        "executor",
        format!("tails(λ={LAMBDA})"),
        move || tails_check(&c, &s),
    ));
    let (c, s) = (Arc::clone(&cache), settings.clone());
    checks.push(Check::serial(
        "executor",
        format!("arrival-rate(λ={LAMBDA})"),
        move || arrival_rate_check(&c, &s),
    ));
    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_serial_checks_in_the_executor_group() {
        let s = Settings::tiny(3);
        let cs = checks(&s);
        assert_eq!(cs.len(), 4);
        for c in &cs {
            assert_eq!(c.group, "executor");
            assert!(c.serial, "{} must be serial", c.name);
        }
    }

    #[test]
    fn fixed_point_matches_the_paper_row() {
        // Table 1's λ = 0.9 column: π₂ ≈ 0.6459 for the basic model.
        let fp = fixed_point().unwrap();
        let pi2 = fp.task_tails[2];
        assert!((pi2 - 0.6459).abs() < 5e-4, "π₂ = {pi2}");
        assert!((fp.task_tails[1] - LAMBDA).abs() < 1e-9);
    }

    /// A short measured run (≈0.4 s wall) replays cleanly and lands in
    /// a loose physical window. The λ = 0.9 precision claims are
    /// exercised by `loadsteal verify --quick`, where the serial
    /// scheduling guarantees a quiet machine; here other test threads
    /// share the CPU, so only robustness is asserted.
    #[test]
    fn short_measured_run_is_coherent() {
        let data = measure(2, 77, 100.0).expect("bench runs");
        assert_eq!(data.len(), 2);
        for r in &data {
            assert_eq!(r.tl.depth_underflows, 0);
            assert_eq!(r.tl.sourceless_migrations, 0);
            assert_eq!(r.tl.counts.arrivals, r.out.submitted);
            assert_eq!(r.tl.counts.completions, r.out.stats.executed);
            assert!(r.out.stats.steal_attempts > 0, "idle workers must probe");
            let rate = r.out.steal_success_rate();
            assert!(
                (0.3..=0.95).contains(&rate),
                "steal success {rate} outside any plausible window for λ = 0.9"
            );
            let s1 = r.tl.tails.get(1).copied().unwrap_or(0.0);
            assert!((0.7..=1.0).contains(&s1), "s₁ = {s1}");
        }
    }
}
