//! Seed-replay determinism checks.
//!
//! The simulator promises bitwise reproducibility for a given
//! `(config, seed)` pair. These checks hash the NDJSON `--trace` byte
//! stream of a recorded run (FNV-1a, no dependencies) and assert that
//! equal seeds produce equal streams, different seeds different ones,
//! and that [`loadsteal_sim::replicate`] is bitwise repeatable.

use loadsteal_obs::NdjsonRecorder;
use loadsteal_sim::{replicate, run_recorded, SimConfig};

use crate::harness::{Check, Outcome, Settings};

/// FNV-1a over a byte stream (64-bit).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn small_cfg(n: usize) -> SimConfig {
    let mut cfg = SimConfig::paper_default(n.min(16), 0.7);
    cfg.horizon = 200.0;
    cfg.warmup = 20.0;
    cfg
}

/// Run one recorded simulation and hash its trace bytes.
fn trace_hash(cfg: &SimConfig, seed: u64) -> Result<u64, String> {
    let mut rec = NdjsonRecorder::new(Vec::new());
    let _ = run_recorded(cfg, seed, &mut rec);
    let (bytes, err) = rec.into_inner();
    if let Some(e) = err {
        return Err(format!("trace write failed: {e}"));
    }
    if bytes.is_empty() {
        return Err("trace stream is empty".into());
    }
    Ok(fnv1a(&bytes))
}

fn trace_replay(settings: &Settings) -> Outcome {
    let cfg = small_cfg(settings.n);
    let (a, b, c) = match (
        trace_hash(&cfg, settings.seed),
        trace_hash(&cfg, settings.seed),
        trace_hash(&cfg, settings.seed + 1),
    ) {
        (Ok(a), Ok(b), Ok(c)) => (a, b, c),
        (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => return Outcome::Fail(e),
    };
    if a != b {
        Outcome::Fail(format!("same seed, different traces: {a:016x} vs {b:016x}"))
    } else if a == c {
        Outcome::Fail(format!("different seeds collided on trace {a:016x}"))
    } else {
        Outcome::Pass(format!("trace hash {a:016x} replays; seed+1 differs"))
    }
}

fn replicate_repeatable(settings: &Settings) -> Outcome {
    let cfg = small_cfg(settings.n);
    let a = replicate(&cfg, 2, settings.seed);
    let b = replicate(&cfg, 2, settings.seed);
    let (wa, wb) = (a.mean_sojourn(), b.mean_sojourn());
    if wa.to_bits() != wb.to_bits() {
        return Outcome::Fail(format!("mean sojourn differs: {wa} vs {wb}"));
    }
    for (x, y) in a.runs.iter().zip(&b.runs) {
        if x.tasks_completed != y.tasks_completed
            || x.sojourn.mean().to_bits() != y.sojourn.mean().to_bits()
        {
            return Outcome::Fail(format!("run (seed {}) not bitwise repeatable", x.seed));
        }
    }
    Outcome::Pass(format!("2 runs bitwise repeatable, W = {wa:.4}"))
}

/// Build the determinism check family.
pub fn checks(settings: &Settings) -> Vec<Check> {
    let s1 = settings.clone();
    let s2 = settings.clone();
    vec![
        Check::new("determinism", "trace-seed-replay", move || {
            trace_replay(&s1)
        }),
        Check::new("determinism", "replicate-repeatable", move || {
            replicate_repeatable(&s2)
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_known_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
