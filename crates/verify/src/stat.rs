//! Agreement bounds derived from confidence intervals.
//!
//! A differential check compares a simulated estimate against a
//! mean-field prediction. The simulated estimate carries *sampling*
//! error (shrinks with runs × horizon) and *finite-size* error (the
//! mean-field limit is exact only as `n → ∞`; Kurtz gives `O(1/√n)`
//! fluctuations and the bias itself is `O(1/n)` for these systems). The
//! acceptance bound adds the two explicitly instead of hiding them in a
//! hand-tuned tolerance:
//!
//! ```text
//! bound = t-CI half-width at level 0.99 (over runs)
//!       + FINITE_N_REL / n × |predicted|
//!       + abs_floor
//! ```
//!
//! The absolute floor keeps near-zero quantities (deep tails) from
//! demanding impossible relative precision.

use loadsteal_queueing::OnlineStats;
use loadsteal_sim::{ReplicateResult, SimResult};

/// Confidence level for every interval the harness derives bounds from.
pub const CONFIDENCE_LEVEL: f64 = 0.99;

/// Finite-size allowance for mean sojourn times, relative to the
/// prediction: `4/n`. Empirically the `n = 128` bias against the
/// mean-field `W` stays under `2/n` across the zoo; the factor-2
/// headroom keeps the quick tier's 4-run checks off the noise edge.
pub const FINITE_N_REL_SOJOURN: f64 = 4.0;

/// Finite-size allowance for tail fractions `s_i` (already in `[0, 1]`,
/// so a milder relative term suffices).
pub const FINITE_N_REL_TAIL: f64 = 2.0;

/// Absolute floor for sojourn-time bounds.
pub const ABS_FLOOR_SOJOURN: f64 = 0.02;

/// Absolute floor for tail-fraction bounds.
pub const ABS_FLOOR_TAIL: f64 = 0.01;

/// One observed-vs-predicted comparison with its derived bound.
#[derive(Debug, Clone)]
pub struct Agreement {
    /// What is being compared (for the report line).
    pub what: String,
    /// Simulated estimate (mean over runs).
    pub observed: f64,
    /// Mean-field prediction.
    pub predicted: f64,
    /// Acceptance bound on `|observed − predicted|`.
    pub bound: f64,
}

impl Agreement {
    /// Whether the comparison passes.
    pub fn holds(&self) -> bool {
        (self.observed - self.predicted).abs() <= self.bound
    }

    /// Human-readable margin line.
    pub fn describe(&self) -> String {
        format!(
            "{}: sim {:.4} vs ode {:.4} (|Δ| {:.4} ≤ {:.4})",
            self.what,
            self.observed,
            self.predicted,
            (self.observed - self.predicted).abs(),
            self.bound,
        )
    }
}

/// Bound for a run-level statistic against `predicted` on an
/// `n`-processor system: Student-t interval over runs plus the
/// finite-size allowance.
pub fn bound_from(
    stats: &OnlineStats,
    predicted: f64,
    n: usize,
    finite_n_rel: f64,
    abs_floor: f64,
) -> f64 {
    let ci = stats.t_confidence_interval(CONFIDENCE_LEVEL);
    ci.half_width + finite_n_rel / n as f64 * predicted.abs() + abs_floor
}

/// Compare the replications' mean sojourn time against the mean-field
/// `W` prediction.
pub fn sojourn_agreement(rep: &ReplicateResult, predicted: f64, n: usize) -> Agreement {
    Agreement {
        what: "mean sojourn W".into(),
        observed: rep.mean_sojourn(),
        predicted,
        bound: bound_from(
            &rep.sojourn_mean,
            predicted,
            n,
            FINITE_N_REL_SOJOURN,
            ABS_FLOOR_SOJOURN,
        ),
    }
}

/// Compare the time-averaged tail fraction `s_level` across runs
/// against the fixed-point prediction.
pub fn tail_agreement(runs: &[SimResult], level: usize, predicted: f64, n: usize) -> Agreement {
    let stats: OnlineStats = runs
        .iter()
        .map(|r| r.load_tails.get(level).copied().unwrap_or(0.0))
        .collect();
    Agreement {
        what: format!("tail s_{level}"),
        observed: stats.mean(),
        predicted,
        bound: bound_from(&stats, predicted, n, FINITE_N_REL_TAIL, ABS_FLOOR_TAIL),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_includes_all_three_terms() {
        let stats: OnlineStats = [2.0, 2.1, 1.9, 2.0].into_iter().collect();
        let b = bound_from(&stats, 2.0, 128, FINITE_N_REL_SOJOURN, ABS_FLOOR_SOJOURN);
        let ci = stats.t_confidence_interval(CONFIDENCE_LEVEL).half_width;
        let expect = ci + 4.0 / 128.0 * 2.0 + 0.02;
        assert!((b - expect).abs() < 1e-12, "{b} vs {expect}");
    }

    #[test]
    fn agreement_holds_iff_within_bound() {
        let a = Agreement {
            what: "x".into(),
            observed: 1.05,
            predicted: 1.0,
            bound: 0.1,
        };
        assert!(a.holds());
        let b = Agreement {
            bound: 0.01,
            ..a.clone()
        };
        assert!(!b.holds());
        assert!(b.describe().contains("sim 1.05"));
    }
}
