//! The model zoo: every simulable variant paired with its mean-field
//! predictor.
//!
//! Each [`Variant`] bundles a simulator configuration with a thunk that
//! solves the matching ODE fixed point, plus the structural flags the
//! metamorphic layer keys on (is the fixed-point busy fraction exactly
//! λ? does the variant provably dominate no-steal?). The quick tier
//! carries twelve variants spanning every policy family; the full tier
//! adds the Section 3.1 service/arrival-distribution variants.

use loadsteal_core::fixed_point::{solve, FixedPoint, FixedPointOptions};
use loadsteal_core::models::{
    ErlangArrivals, ErlangStages, GeneralWs, Heterogeneous, HyperService, MeanFieldModel,
    MultiChoice, MultiSteal, NoSteal, Preemptive, Rebalance, RebalanceRateFn, RepeatedSteal,
    SimpleWs, ThresholdWs, TransferWs, WorkSharing,
};
use loadsteal_queueing::ServiceDistribution;
use loadsteal_sim::{RebalanceRate, SimConfig, SpeedProfile, StealPolicy, TransferTime};

use crate::harness::{Settings, Tier};

/// A simulable model variant paired with its mean-field prediction.
pub struct Variant {
    /// Display name with the parameters that identify the cell.
    pub name: &'static str,
    /// Simulator configuration (n/horizon/warmup already applied).
    pub cfg: SimConfig,
    /// Per-processor arrival rate λ.
    pub lambda: f64,
    /// Whether the fixed point's busy fraction `s_1` equals λ exactly
    /// (unit-speed processors; false for heterogeneous speeds).
    pub busy_is_lambda: bool,
    /// Whether the variant provably improves on independent M/M/1
    /// queues at equal λ (false for the no-steal baseline itself and
    /// for heterogeneous speeds, where the comparison is ill-posed).
    pub dominates_no_steal: bool,
    /// Solve the matching mean-field fixed point.
    pub predict: Box<dyn Fn() -> Result<FixedPoint, String> + Send>,
}

fn predictor<M>(model: Result<M, String>) -> Box<dyn Fn() -> Result<FixedPoint, String> + Send>
where
    M: MeanFieldModel + Send + 'static,
{
    Box::new(move || {
        let m = model.as_ref().map_err(Clone::clone)?;
        solve(m, &FixedPointOptions::default()).map_err(|e| e.to_string())
    })
}

fn base_cfg(settings: &Settings, lambda: f64) -> SimConfig {
    let mut cfg = SimConfig::paper_default(settings.n, lambda);
    cfg.horizon = settings.horizon;
    cfg.warmup = settings.warmup;
    cfg
}

/// Build the zoo for `settings` (the full tier appends the Section 3.1
/// distribution variants).
pub fn variants(settings: &Settings) -> Vec<Variant> {
    let mut zoo = Vec::new();

    let cfg = {
        let mut c = base_cfg(settings, 0.8);
        c.policy = StealPolicy::None;
        c
    };
    zoo.push(Variant {
        name: "no-steal(λ=0.8)",
        cfg,
        lambda: 0.8,
        busy_is_lambda: true,
        dominates_no_steal: false,
        predict: predictor(NoSteal::new(0.8)),
    });

    zoo.push(Variant {
        name: "simple-ws(λ=0.9)",
        cfg: base_cfg(settings, 0.9),
        lambda: 0.9,
        busy_is_lambda: true,
        dominates_no_steal: true,
        predict: predictor(SimpleWs::new(0.9)),
    });

    let cfg = {
        let mut c = base_cfg(settings, 0.85);
        c.policy = StealPolicy::OnEmpty {
            threshold: 4,
            choices: 1,
            batch: 1,
        };
        c
    };
    zoo.push(Variant {
        name: "threshold(λ=0.85,T=4)",
        cfg,
        lambda: 0.85,
        busy_is_lambda: true,
        dominates_no_steal: true,
        predict: predictor(ThresholdWs::new(0.85, 4)),
    });

    let cfg = {
        let mut c = base_cfg(settings, 0.85);
        c.policy = StealPolicy::Preemptive {
            begin_at: 1,
            rel_threshold: 3,
        };
        c
    };
    zoo.push(Variant {
        name: "preemptive(λ=0.85,B=1,T=3)",
        cfg,
        lambda: 0.85,
        busy_is_lambda: true,
        dominates_no_steal: true,
        predict: predictor(Preemptive::new(0.85, 1, 3)),
    });

    let cfg = {
        let mut c = base_cfg(settings, 0.9);
        c.policy = StealPolicy::Repeated {
            rate: 2.0,
            threshold: 2,
        };
        c
    };
    zoo.push(Variant {
        name: "repeated(λ=0.9,r=2)",
        cfg,
        lambda: 0.9,
        busy_is_lambda: true,
        dominates_no_steal: true,
        predict: predictor(RepeatedSteal::new(0.9, 2.0, 2)),
    });

    let cfg = {
        let mut c = base_cfg(settings, 0.9);
        c.policy = StealPolicy::OnEmpty {
            threshold: 2,
            choices: 2,
            batch: 1,
        };
        c
    };
    zoo.push(Variant {
        name: "multi-choice(λ=0.9,d=2)",
        cfg,
        lambda: 0.9,
        busy_is_lambda: true,
        dominates_no_steal: true,
        predict: predictor(MultiChoice::new(0.9, 2, 2)),
    });

    let cfg = {
        let mut c = base_cfg(settings, 0.85);
        c.policy = StealPolicy::OnEmpty {
            threshold: 6,
            choices: 1,
            batch: 3,
        };
        c
    };
    zoo.push(Variant {
        name: "multi-steal(λ=0.85,T=6,k=3)",
        cfg,
        lambda: 0.85,
        busy_is_lambda: true,
        dominates_no_steal: true,
        predict: predictor(MultiSteal::new(0.85, 3, 6)),
    });

    let cfg = {
        let mut c = base_cfg(settings, 0.8);
        c.policy = StealPolicy::OnEmpty {
            threshold: 4,
            choices: 1,
            batch: 1,
        };
        c.transfer = Some(TransferTime::exponential(0.25));
        c
    };
    zoo.push(Variant {
        name: "transfer(λ=0.8,r=0.25,T=4)",
        cfg,
        lambda: 0.8,
        busy_is_lambda: true,
        dominates_no_steal: true,
        predict: predictor(TransferWs::new(0.8, 0.25, 4)),
    });

    let cfg = {
        let mut c = base_cfg(settings, 0.8);
        c.speeds = SpeedProfile::Classes(vec![(0.5, 1.2), (0.5, 0.9)]);
        c
    };
    zoo.push(Variant {
        name: "heterogeneous(λ=0.8,μ=1.2/0.9)",
        cfg,
        lambda: 0.8,
        busy_is_lambda: false,
        dominates_no_steal: false,
        predict: predictor(Heterogeneous::new(0.8, 0.5, 1.2, 0.9, 2)),
    });

    let cfg = {
        let mut c = base_cfg(settings, 0.9);
        c.policy = StealPolicy::Share {
            send_threshold: 2,
            recv_threshold: 2,
        };
        c
    };
    zoo.push(Variant {
        name: "work-sharing(λ=0.9,F=2,R=2)",
        cfg,
        lambda: 0.9,
        busy_is_lambda: true,
        dominates_no_steal: true,
        predict: predictor(WorkSharing::new(0.9, 2, 2)),
    });

    let cfg = {
        let mut c = base_cfg(settings, 0.9);
        c.policy = StealPolicy::OnEmpty {
            threshold: 6,
            choices: 2,
            batch: 3,
        };
        c
    };
    zoo.push(Variant {
        name: "general(λ=0.9,T=6,d=2,k=3)",
        cfg,
        lambda: 0.9,
        busy_is_lambda: true,
        dominates_no_steal: true,
        predict: predictor(GeneralWs::new(0.9, 6, 2, 3)),
    });

    let cfg = {
        let mut c = base_cfg(settings, 0.8);
        c.policy = StealPolicy::Rebalance {
            rate: RebalanceRate::Constant(0.5),
        };
        c
    };
    zoo.push(Variant {
        name: "rebalance(λ=0.8,r=0.5)",
        cfg,
        lambda: 0.8,
        busy_is_lambda: true,
        dominates_no_steal: true,
        predict: predictor(Rebalance::new(0.8, RebalanceRateFn::Constant(0.5))),
    });

    if settings.tier == Tier::Full {
        let cfg = {
            let mut c = base_cfg(settings, 0.8);
            c.service = ServiceDistribution::Erlang {
                stages: 20,
                rate: 20.0,
            };
            c
        };
        zoo.push(Variant {
            name: "erlang-service(λ=0.8,c=20)",
            cfg,
            lambda: 0.8,
            busy_is_lambda: true,
            dominates_no_steal: true,
            predict: predictor(ErlangStages::new(0.8, 20)),
        });

        let cfg = {
            let mut c = base_cfg(settings, 0.8);
            c.arrival = Some(ServiceDistribution::Erlang {
                stages: 5,
                rate: 5.0 * 0.8,
            });
            c
        };
        zoo.push(Variant {
            name: "erlang-arrivals(λ=0.8,c=5)",
            cfg,
            lambda: 0.8,
            busy_is_lambda: true,
            dominates_no_steal: true,
            predict: predictor(ErlangArrivals::new(0.8, 5, 2)),
        });

        let cfg = {
            let mut c = base_cfg(settings, 0.8);
            c.service = ServiceDistribution::HyperExp {
                p: 0.1,
                rate1: 0.2,
                rate2: 1.8,
            };
            c
        };
        zoo.push(Variant {
            name: "hyper-service(λ=0.8,scv≈4.6)",
            cfg,
            lambda: 0.8,
            busy_is_lambda: true,
            // Bursty service inflates W past the exponential M/M/1
            // baseline, so the domination comparison is ill-posed.
            dominates_no_steal: false,
            predict: predictor(HyperService::new(0.8, 0.1, 0.2, 1.8, 2)),
        });
    }

    zoo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_zoo_covers_at_least_eight_variants_with_valid_configs() {
        let settings = Settings::quick(1);
        let zoo = variants(&settings);
        assert!(zoo.len() >= 8, "only {} variants", zoo.len());
        for v in &zoo {
            v.cfg.validate().unwrap_or_else(|e| {
                panic!("variant {} has invalid config: {e}", v.name);
            });
            assert_eq!(v.cfg.n, settings.n);
        }
    }

    #[test]
    fn full_zoo_extends_quick() {
        let quick = variants(&Settings::quick(1)).len();
        let full = variants(&Settings::full(1)).len();
        assert!(full > quick, "full {full} vs quick {quick}");
    }
}
