//! The model zoo: every simulable variant paired with its mean-field
//! predictor.
//!
//! The zoo is the verification-facing view of
//! [`loadsteal_core::ModelRegistry`]: each registry preset becomes one
//! [`Variant`] bundling the simulator configuration derived from its
//! [`loadsteal_core::ModelSpec`] with a thunk that solves the matching
//! ODE fixed point, plus the structural flags the metamorphic layer
//! keys on (is the fixed-point busy fraction exactly λ? does the
//! variant provably dominate no-steal?). The quick tier carries the
//! twelve [`PresetTier::Quick`] presets spanning every policy family;
//! the full tier adds the Section 3.1 distribution presets and the
//! threshold × Erlang cross-product.

use loadsteal_core::fixed_point::FixedPoint;
use loadsteal_core::{ModelRegistry, ModelSpec, PresetTier};
use loadsteal_sim::{SimConfig, ToSimConfig};

use crate::harness::{Settings, Tier};

/// A simulable model variant paired with its mean-field prediction.
pub struct Variant {
    /// Display name with the parameters that identify the cell.
    pub name: &'static str,
    /// Simulator configuration (n/horizon/warmup already applied).
    pub cfg: SimConfig,
    /// Per-processor arrival rate λ.
    pub lambda: f64,
    /// Whether the fixed point's busy fraction `s_1` equals λ exactly
    /// (unit-speed processors; false for heterogeneous speeds).
    pub busy_is_lambda: bool,
    /// Whether the variant provably improves on independent M/M/1
    /// queues at equal λ (false for the no-steal baseline itself, for
    /// heterogeneous speeds, and for service distributions burstier
    /// than exponential, where the comparison is ill-posed).
    pub dominates_no_steal: bool,
    /// Solve the matching mean-field fixed point.
    pub predict: Box<dyn Fn() -> Result<FixedPoint, String> + Send>,
    /// The typed spec the variant was built from — the transient layer
    /// integrates its ODE trajectory (not just the fixed point).
    pub spec: ModelSpec,
}

/// Build the zoo for `settings` by enumerating the standard model
/// registry (the full tier appends the [`PresetTier::Full`] presets).
pub fn variants(settings: &Settings) -> Vec<Variant> {
    ModelRegistry::standard()
        .presets()
        .iter()
        .filter(|p| settings.tier == Tier::Full || p.tier == PresetTier::Quick)
        .map(|p| {
            let mut cfg = p
                .spec
                .sim_config(settings.n)
                .unwrap_or_else(|e| panic!("preset {} has invalid config: {e}", p.name));
            cfg.horizon = settings.horizon;
            cfg.warmup = settings.warmup;
            let spec = p.spec.clone();
            Variant {
                name: p.label,
                cfg,
                lambda: spec.lambda,
                busy_is_lambda: spec.busy_is_lambda(),
                dominates_no_steal: spec.dominates_no_steal(),
                predict: {
                    let spec = spec.clone();
                    Box::new(move || spec.fixed_point())
                },
                spec,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_zoo_covers_at_least_eight_variants_with_valid_configs() {
        let settings = Settings::quick(1);
        let zoo = variants(&settings);
        assert!(zoo.len() >= 8, "only {} variants", zoo.len());
        for v in &zoo {
            v.cfg.validate().unwrap_or_else(|e| {
                panic!("variant {} has invalid config: {e}", v.name);
            });
            assert_eq!(v.cfg.n, settings.n);
        }
    }

    #[test]
    fn full_zoo_extends_quick() {
        let quick = variants(&Settings::quick(1)).len();
        let full = variants(&Settings::full(1)).len();
        assert!(full > quick, "full {full} vs quick {quick}");
    }

    #[test]
    fn quick_zoo_is_exactly_the_quick_registry_tier() {
        let zoo = variants(&Settings::quick(1));
        let quick_presets: Vec<_> = ModelRegistry::standard()
            .presets()
            .iter()
            .filter(|p| p.tier == PresetTier::Quick)
            .map(|p| p.label)
            .collect();
        let names: Vec<_> = zoo.iter().map(|v| v.name).collect();
        assert_eq!(names, quick_presets);
        assert_eq!(zoo.len(), 12, "quick tier is pinned at twelve variants");
    }

    #[test]
    fn every_variant_has_a_mean_field_prediction() {
        // The registry guarantees each preset dispatches to a model;
        // the zoo must not lose that on the way to a predictor.
        for v in variants(&Settings::full(1)) {
            let fp = (v.predict)().unwrap_or_else(|e| panic!("{}: {e}", v.name));
            assert!(fp.mean_time_in_system.is_finite(), "{}", v.name);
        }
    }
}
