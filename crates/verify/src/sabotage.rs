//! A deliberately corrupted model for harness self-tests.
//!
//! [`SabotagedSimpleWs`] copies the simple-WS equations but flips the
//! sign of the steal-rate term in the `i ≥ 2` departures —
//! `(1 + s_1 − s_2)` becomes `(1 − s_1 + s_2)` — exactly the kind of
//! transcription error a reimplementation of the paper could make. The
//! corrupted flow converges to a fixed point with a too-high busy
//! fraction and *heavier* tails (slowed instead of accelerated
//! departures), so the predicted mean sojourn time is far off the honest
//! simulation and the differential layer must flag it. The acceptance
//! test in `tests/harness.rs` asserts precisely that.

use loadsteal_core::fixed_point::{solve, FixedPointOptions};
use loadsteal_core::models::MeanFieldModel;
use loadsteal_core::TailVector;
use loadsteal_ode::OdeSystem;
use loadsteal_sim::SimConfig;

use crate::harness::Settings;
use crate::zoo::Variant;

/// Simple-WS equations with the steal-rate sign flipped for `i ≥ 2`.
#[derive(Debug, Clone, PartialEq)]
pub struct SabotagedSimpleWs {
    lambda: f64,
    levels: usize,
}

impl SabotagedSimpleWs {
    /// Create the corrupted model for `0 < λ < 1`.
    pub fn new(lambda: f64) -> Result<Self, String> {
        if !(lambda.is_finite() && 0.0 < lambda && lambda < 1.0) {
            return Err(format!("need 0 < λ < 1, got {lambda}"));
        }
        Ok(Self {
            lambda,
            // The corrupted tails decay like λ/(1 − λ + …) — slower than
            // λ^i — so carry a deeper truncation than the honest model.
            levels: loadsteal_core::tail::truncation_for_ratio(
                (lambda * 1.2).min(0.95),
                1e-14,
                48,
                8_192,
            ),
        })
    }

    #[inline]
    fn s(&self, y: &[f64], i: usize) -> f64 {
        if i == 0 {
            1.0
        } else if i <= y.len() {
            y[i - 1]
        } else {
            0.0
        }
    }
}

impl OdeSystem for SabotagedSimpleWs {
    fn dim(&self) -> usize {
        self.levels
    }

    fn deriv(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
        let lambda = self.lambda;
        let s1 = self.s(y, 1);
        let s2 = self.s(y, 2);
        let steal_rate = s1 - s2;
        dy[0] = lambda * (1.0 - s1) - (s1 - s2) * (1.0 - s2);
        for i in 2..=self.levels {
            // The injected bug: the honest equation multiplies the
            // departure flux by (1.0 + steal_rate).
            dy[i - 1] = lambda * (self.s(y, i - 1) - self.s(y, i))
                - (self.s(y, i) - self.s(y, i + 1)) * (1.0 - steal_rate);
        }
    }

    fn project(&self, y: &mut [f64]) {
        TailVector::project_slice(y);
    }
}

impl MeanFieldModel for SabotagedSimpleWs {
    fn name(&self) -> String {
        format!("sabotaged simple WS (λ = {})", self.lambda)
    }

    fn lambda(&self) -> f64 {
        self.lambda
    }

    fn truncation(&self) -> usize {
        self.levels
    }

    fn with_truncation(&self, levels: usize) -> Self {
        Self {
            levels,
            ..self.clone()
        }
    }

    fn empty_state(&self) -> Vec<f64> {
        vec![0.0; self.levels]
    }

    fn mean_tasks(&self, y: &[f64]) -> f64 {
        y.iter().rev().sum()
    }

    fn task_tails(&self, y: &[f64]) -> Vec<f64> {
        std::iter::once(1.0).chain(y.iter().copied()).collect()
    }

    fn boundary_mass(&self, y: &[f64]) -> f64 {
        y.last().copied().unwrap_or(0.0)
    }
}

/// An honest simple-WS simulation at `λ = 0.5` paired with the
/// sabotaged predictor — the differential check on this variant must
/// FAIL if the harness has any teeth.
pub fn sabotaged_variant(settings: &Settings) -> Variant {
    let mut cfg = SimConfig::paper_default(settings.n, 0.5);
    cfg.horizon = settings.horizon;
    cfg.warmup = settings.warmup;
    Variant {
        name: "sabotaged-simple-ws(λ=0.5)",
        cfg,
        lambda: 0.5,
        busy_is_lambda: true,
        dominates_no_steal: false,
        predict: Box::new(|| {
            let m = SabotagedSimpleWs::new(0.5)?;
            solve(&m, &FixedPointOptions::default()).map_err(|e| e.to_string())
        }),
        // The honest spec: the sabotage lives in the predictor (and,
        // for the transient layer, in the sabotaged ODE itself).
        spec: loadsteal_core::ModelSpec::simple_ws(0.5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sabotaged_fixed_point_is_heavier_than_the_truth() {
        use loadsteal_core::models::SimpleWs;
        let honest = SimpleWs::new(0.5).unwrap().closed_form_fixed_point();
        let bad = SabotagedSimpleWs::new(0.5).unwrap();
        let fp = solve(&bad, &FixedPointOptions::default()).unwrap();
        // The sign flip breaks throughput balance (s₁ drifts above λ)…
        assert!(fp.task_tails[1] > 0.5 + 0.1, "s₁ {}", fp.task_tails[1]);
        // …and slows departures: W far above the truth.
        assert!(
            fp.mean_time_in_system > honest.mean_time_in_system + 0.3,
            "sabotaged W {} vs honest {}",
            fp.mean_time_in_system,
            honest.mean_time_in_system
        );
    }
}
