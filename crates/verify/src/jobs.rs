//! Job-lifecycle checks: causal traces vs the engine's own statistics
//! and the mean-field predictions.
//!
//! The simulator's `--trace-jobs` stream claims to be a *complete*
//! causal account of every task: arrival, each migration with its
//! transfer delay, exactly one service start, completion. This layer
//! verifies that claim two ways:
//!
//! * **decomposition identity** — for every quick-zoo variant, replay
//!   one traced run through [`loadsteal_trace::JobAnalysis`] and require
//!   (a) zero lifecycle anomalies, (b) each job's `wait + transfer +
//!   service` to equal its measured sojourn to `1e-9`, and (c) the
//!   reconstructed post-warmup sojourn population to match the engine's
//!   own [`OnlineStats`] in count and mean — the trace and the internal
//!   statistics must be two views of the same numbers, not two
//!   estimators of the same quantity.
//! * **mean-field agreement** — on the paper's basic model, replicated
//!   traced runs must reproduce the fixed point's steal picture: the
//!   service component satisfies Little's law against the busy fraction
//!   `s₁ = λ`; the fraction of jobs migrated matches the fixed-point
//!   steal flow `(s₁ − s₂)·s₂ / λ`; and stolen jobs (which land on an
//!   empty thief) beat locally-served jobs on mean sojourn.

use loadsteal_obs::CollectingRecorder;
use loadsteal_queueing::OnlineStats;
use loadsteal_sim::run_recorded;
use loadsteal_trace::JobAnalysis;

use crate::harness::{Check, Outcome, Settings};
use crate::stat;
use crate::zoo;

/// Per-job decomposition identity tolerance. The components are sums
/// and differences of the very timestamps in the trace, so this is a
/// float-roundoff budget, not a statistical bound.
const IDENTITY_TOL: f64 = 1e-9;

/// Replay one traced run of `cfg` and check the decomposition
/// identities against the engine's internal statistics.
fn decomposition_check(settings: &Settings, mut cfg: loadsteal_sim::SimConfig) -> Outcome {
    cfg.trace_jobs = true;
    let mut rec = CollectingRecorder::new();
    let result = run_recorded(&cfg, settings.seed, &mut rec);
    let (analysis, records) = JobAnalysis::build_with_records(rec.events(), cfg.warmup);

    if analysis.anomalies.total() > 0 {
        return Outcome::Fail(format!(
            "{} lifecycle anomalies in a clean single-run trace: {:?}",
            analysis.anomalies.total(),
            analysis.anomalies
        ));
    }
    let mut max_residual = 0.0f64;
    for (id, r) in &records {
        let Some((wait, transfer, service)) = r.decompose() else {
            continue;
        };
        if wait < -IDENTITY_TOL || transfer < 0.0 || service < 0.0 {
            return Outcome::Fail(format!(
                "job {id}: negative component (wait {wait:.3e}, transfer {transfer:.3e}, service {service:.3e})"
            ));
        }
        let residual = (wait + transfer + service - r.sojourn().unwrap()).abs();
        max_residual = max_residual.max(residual);
        if residual > IDENTITY_TOL {
            return Outcome::Fail(format!(
                "job {id}: wait + transfer + service misses sojourn by {residual:.3e} (> {IDENTITY_TOL:.0e})"
            ));
        }
    }
    // The reconstructed population must BE the engine's measured one.
    let engine = &result.sojourn;
    if analysis.completed != engine.count() {
        return Outcome::Fail(format!(
            "trace reconstructs {} measured jobs, engine counted {}",
            analysis.completed,
            engine.count()
        ));
    }
    let mean_delta = (analysis.sojourn.mean() - engine.mean()).abs();
    let mean_tol = IDENTITY_TOL * engine.mean().abs().max(1.0);
    if analysis.completed > 0 && mean_delta > mean_tol {
        return Outcome::Fail(format!(
            "mean sojourn: trace {:.12} vs engine {:.12} (|Δ| {mean_delta:.3e} > {mean_tol:.0e})",
            analysis.sojourn.mean(),
            engine.mean()
        ));
    }
    Outcome::Pass(format!(
        "{} jobs ({} migrated), max identity residual {max_residual:.1e}, mean sojourn {:.4} = engine's",
        analysis.completed, analysis.migrated, engine.mean()
    ))
}

/// Mean-field agreement on the paper's basic model (`simple-ws`,
/// steal-on-empty with free transfers): replicated traced runs, three
/// agreements derived from the job decomposition.
fn mean_field_check(settings: &Settings) -> Outcome {
    let Some(v) = zoo::variants(settings)
        .into_iter()
        .find(|v| v.name.starts_with("simple-ws"))
    else {
        return Outcome::Skip("simple-ws preset not in this tier's zoo".into());
    };
    let fp = match (v.predict)() {
        Ok(fp) => fp,
        Err(e) => return Outcome::Fail(format!("fixed-point solve failed: {e}")),
    };
    let lambda = v.lambda;
    let s2 = fp.task_tails.get(2).copied().unwrap_or(0.0);

    let mut cfg = v.cfg.clone();
    cfg.trace_jobs = true;
    let mut util = OnlineStats::new(); // λ·W_service per run (Little)
    let mut migrated = OnlineStats::new(); // migrated fraction per run
    let mut gaps = OnlineStats::new(); // local − migrated mean sojourn
    for i in 0..settings.runs as u64 {
        let mut rec = CollectingRecorder::new();
        let result = run_recorded(&cfg, settings.seed.wrapping_add(i), &mut rec);
        let a = JobAnalysis::build(rec.events(), cfg.warmup);
        if a.anomalies.total() > 0 || a.completed == 0 {
            return Outcome::Fail(format!(
                "seed {}: unusable trace ({} anomalies, {} jobs)",
                settings.seed.wrapping_add(i),
                a.anomalies.total(),
                a.completed
            ));
        }
        // Little's law on the service station: arrivals × mean service
        // time = mean number in service = n × s₁. Per processor:
        // λ̂ · W_service with λ̂ the measured completion rate.
        let span = (result.end_time - cfg.warmup).max(f64::MIN_POSITIVE);
        let rate = a.completed as f64 / (cfg.n as f64 * span);
        util.push(rate * a.service.mean());
        migrated.push(a.migrated_fraction());
        gaps.push(a.sojourn_local.mean() - a.sojourn_migrated.mean());
    }

    let mut agreements = vec![
        stat::Agreement {
            what: "service Little s₁".into(),
            observed: util.mean(),
            predicted: lambda,
            bound: stat::bound_from(
                &util,
                lambda,
                settings.n,
                stat::FINITE_N_REL_TAIL,
                stat::ABS_FLOOR_TAIL,
            ),
        },
        stat::Agreement {
            what: "migrated fraction".into(),
            observed: migrated.mean(),
            predicted: (lambda - s2) * s2 / lambda,
            bound: stat::bound_from(
                &migrated,
                (lambda - s2) * s2 / lambda,
                settings.n,
                stat::FINITE_N_REL_TAIL,
                stat::ABS_FLOOR_TAIL,
            ),
        },
    ];
    let failed: Vec<String> = agreements
        .iter()
        .filter(|a| !a.holds())
        .map(stat::Agreement::describe)
        .collect();
    if !failed.is_empty() {
        return Outcome::Fail(failed.join("; "));
    }
    // Stolen jobs start service immediately on an empty thief (and the
    // basic model's transfers are free), so they must beat the local
    // population on mean sojourn in every run — a sign check, since the
    // mean-field limit has no per-class sojourn prediction to bound by.
    if gaps.min() <= 0.0 {
        return Outcome::Fail(format!(
            "stolen jobs not faster than local ones in some run (min gap {:.4})",
            gaps.min()
        ));
    }
    agreements.push(stat::Agreement {
        what: "sojourn gap local−migrated".into(),
        observed: gaps.mean(),
        predicted: 0.0,
        bound: f64::INFINITY,
    });
    Outcome::Pass(format!(
        "{}; {}; stolen jobs {:.4} faster on average",
        agreements[0].describe(),
        agreements[1].describe(),
        gaps.mean()
    ))
}

/// Assemble the job-lifecycle checks: one decomposition identity per
/// zoo variant plus the mean-field agreement on the basic model.
pub fn checks(settings: &Settings) -> Vec<Check> {
    let mut checks = Vec::new();
    for v in zoo::variants(settings) {
        let s = settings.clone();
        checks.push(Check::new("jobs", format!("decomposition({})", v.name), {
            let cfg = v.cfg;
            move || decomposition_check(&s, cfg)
        }));
    }
    let s = settings.clone();
    checks.push(Check::new("jobs", "mean-field(simple-ws)", move || {
        mean_field_check(&s)
    }));
    checks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Outcome;

    /// Tiny-protocol settings keep these unit tests in CI budget; the
    /// identity checks are exact, so statistical power is irrelevant.
    fn settings() -> Settings {
        Settings::tiny(11)
    }

    #[test]
    fn decomposition_identity_holds_on_the_basic_model() {
        let s = settings();
        let v = zoo::variants(&s)
            .into_iter()
            .find(|v| v.name.starts_with("simple-ws"))
            .unwrap();
        match decomposition_check(&s, v.cfg) {
            Outcome::Pass(line) => assert!(line.contains("max identity residual"), "{line}"),
            other => panic!("expected pass, got {other:?}"),
        }
    }

    #[test]
    fn decomposition_identity_holds_with_transfer_delays() {
        // Transfer delays are the component most likely to break the
        // identity (they ride on separate events); the transfer preset
        // must still decompose exactly.
        let s = settings();
        let v = zoo::variants(&s)
            .into_iter()
            .find(|v| v.name.starts_with("transfer("))
            .unwrap();
        match decomposition_check(&s, v.cfg) {
            Outcome::Pass(line) => assert!(line.contains("migrated"), "{line}"),
            other => panic!("expected pass, got {other:?}"),
        }
    }

    #[test]
    fn checks_cover_every_zoo_variant_plus_mean_field() {
        let s = settings();
        let names: Vec<String> = checks(&s).into_iter().map(|c| c.name).collect();
        assert_eq!(names.len(), zoo::variants(&s).len() + 1);
        assert!(names
            .iter()
            .any(|n| n.starts_with("decomposition(simple-ws")));
        assert!(names.iter().any(|n| n == "mean-field(simple-ws)"));
    }

    #[test]
    fn mean_field_agreement_holds_at_tiny_scale() {
        // n = 32 is rough, but the bounds scale with 1/n and the CI, so
        // the check must still pass — it guards signs and identities,
        // not precision.
        match mean_field_check(&settings()) {
            Outcome::Pass(line) => {
                assert!(line.contains("migrated fraction"), "{line}");
                assert!(line.contains("faster on average"), "{line}");
            }
            other => panic!("expected pass, got {other:?}"),
        }
    }
}
