//! Convergence-rate layer: the `Θ(1/n)` finite-size law.
//!
//! Kurtz's theorem gives sample-path convergence of the empirical tail
//! process to the ODE trajectory at `O(1/√n)`; Ying's refinement puts
//! the *stationary* expectation error at `Θ(1/n)`. This layer measures
//! the law directly: simulate the basic work-stealing system over a
//! geometric grid of sizes, form the stationary tail error
//! `e(n) = max_{i∈2..4} |ŝᵢ(n) − sᵢ|` against the fixed point, and
//! fit the log-log slope ([`loadsteal_core::rate::fit_power_law`]).
//! A genuine `Θ(1/n)` decay fits a steep negative slope; an O(1)
//! systematic bias — a transcribed-wrong equation, a warmup leak, an
//! engine bug that shifts the stationary law — flattens it towards 0.
//!
//! The verdict ([`slope_verdict`]) is factored out of the measurement
//! so the sabotage suite can feed it synthetic bias floors and assert
//! the layer *fails* — a verifier that cannot be made to fail verifies
//! nothing.

use loadsteal_core::rate::{fit_power_law, geometric_grid};
use loadsteal_core::ModelSpec;
use loadsteal_sim::{replicate, ToSimConfig};

use crate::harness::{Check, Outcome, Settings, Tier};

/// Steepest slope the noise floor can plausibly fake on a healthy
/// system (O(1/√n) would be −0.5; the stationary law is a full −1).
const SLOPE_CEILING: f64 = -0.55;
/// Slack below −1: small grids overshoot the asymptotic exponent.
const SLOPE_FLOOR: f64 = -1.8;
/// Minimum fit quality: an O(1) floor not only flattens the slope, it
/// also wrecks the log-log linearity.
const MIN_R_SQUARED: f64 = 0.45;

/// Measured error curve: `(n, e(n))` pairs over the size grid.
pub fn measure(settings: &Settings) -> Result<Vec<(f64, f64)>, String> {
    let spec = ModelSpec::simple_ws(0.9);
    let fp = spec.fixed_point()?;
    // 64..512 at the quick tier: large enough that the 1/n signal at
    // the top of the grid still clears the Monte-Carlo floor of a
    // CI-sized horizon; the full tier doubles the ceiling.
    let n_max = match settings.tier {
        Tier::Quick => 512,
        Tier::Full => 1_024,
    };
    let mut points = Vec::new();
    for n in geometric_grid(64, n_max) {
        let mut cfg = spec.sim_config(n).map_err(|e| e.to_string())?;
        cfg.horizon = settings.horizon;
        cfg.warmup = settings.warmup;
        cfg.validate().map_err(|e| e.to_string())?;
        let result = replicate(&cfg, settings.runs, settings.seed);
        let tails = result.mean_load_tails();
        let err = (2..=4)
            .map(|i| {
                let sim = tails.get(i).copied().unwrap_or(0.0);
                let fp_i = fp.task_tails.get(i).copied().unwrap_or(0.0);
                (sim - fp_i).abs()
            })
            .fold(0.0f64, f64::max);
        points.push((n as f64, err));
    }
    Ok(points)
}

/// Judge an error curve against the `Θ(1/n)` law. Pure so the
/// sabotage layer can feed it poisoned curves.
pub fn slope_verdict(points: &[(f64, f64)]) -> Outcome {
    let Some(fit) = fit_power_law(points) else {
        return Outcome::Fail(format!(
            "could not fit a slope through {points:?} (degenerate errors)"
        ));
    };
    let (n_lo, e_lo) = points[0];
    let (n_hi, e_hi) = points[points.len() - 1];
    if e_hi >= e_lo {
        return Outcome::Fail(format!(
            "error did not shrink: e({n_lo}) = {e_lo:.3e} vs e({n_hi}) = {e_hi:.3e}"
        ));
    }
    if fit.slope > SLOPE_CEILING {
        return Outcome::Fail(format!(
            "slope {:.3} is shallower than {SLOPE_CEILING} — an O(1) bias floor, \
             not a Θ(1/n) decay (R² {:.3})",
            fit.slope, fit.r_squared
        ));
    }
    if fit.slope < SLOPE_FLOOR {
        return Outcome::Fail(format!(
            "slope {:.3} is implausibly steep (< {SLOPE_FLOOR}); the error curve \
             {points:?} looks degenerate",
            fit.slope
        ));
    }
    if fit.r_squared < MIN_R_SQUARED {
        return Outcome::Fail(format!(
            "slope {:.3} but R² {:.3} < {MIN_R_SQUARED}: the decay is not a \
             power law",
            fit.slope, fit.r_squared
        ));
    }
    Outcome::Pass(format!(
        "slope {:.3} (R² {:.3}) over n ∈ [{n_lo:.0}, {n_hi:.0}]",
        fit.slope, fit.r_squared
    ))
}

fn stationary_rate(settings: &Settings) -> Outcome {
    match measure(settings) {
        Ok(points) => slope_verdict(&points),
        Err(e) => Outcome::Fail(e),
    }
}

/// Build the convergence-rate check family.
pub fn checks(settings: &Settings) -> Vec<Check> {
    let s = settings.clone();
    vec![Check::new(
        "rate",
        "stationary-error-theta-1-over-n",
        move || stationary_rate(&s),
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The layer must catch an injected O(1) bias: this is the
    /// sabotage check for the rate layer. A clean 1/n curve passes;
    /// the same curve with a constant 2×10⁻² floor — the size of a
    /// transcription error in a tail equation — must fail.
    #[test]
    fn injected_o1_bias_fails_the_verdict() {
        let clean: Vec<(f64, f64)> = geometric_grid(64, 1024)
            .into_iter()
            .map(|n| (n as f64, 1.2 / n as f64))
            .collect();
        assert!(
            !slope_verdict(&clean).is_fail(),
            "clean 1/n curve rejected: {:?}",
            slope_verdict(&clean)
        );
        let biased: Vec<(f64, f64)> = clean.iter().map(|&(n, e)| (n, e + 2e-2)).collect();
        let verdict = slope_verdict(&biased);
        assert!(verdict.is_fail(), "O(1) bias floor passed: {verdict:?}");
    }

    #[test]
    fn non_shrinking_error_fails() {
        let flat = [(64.0, 1e-3), (128.0, 1.1e-3), (256.0, 1e-3)];
        assert!(slope_verdict(&flat).is_fail());
    }

    #[test]
    fn sqrt_n_rate_is_rejected_as_too_shallow_only_past_the_ceiling() {
        // A pure O(1/√n) curve sits right at −0.5, shallower than the
        // −0.55 ceiling: the layer insists on the stationary rate, not
        // the sample-path one.
        let sqrt: Vec<(f64, f64)> = geometric_grid(64, 1024)
            .into_iter()
            .map(|n| (n as f64, 0.5 / (n as f64).sqrt()))
            .collect();
        assert!(slope_verdict(&sqrt).is_fail());
    }

    /// End-to-end at test scale: the real measurement on a reduced
    /// protocol must produce a strictly shrinking, fittable curve.
    /// (The slope itself is asserted by the harness at CI scale, where
    /// the horizon buys the statistics; at the tiny protocol only the
    /// gross shape is stable.)
    #[test]
    fn measurement_produces_a_shrinking_curve() {
        let mut s = Settings::tiny(3);
        s.horizon = 2_500.0;
        s.warmup = 300.0;
        s.runs = 3;
        let points = measure(&s).unwrap();
        assert!(points.len() >= 4, "{points:?}");
        let (_, e_first) = points[0];
        let (_, e_last) = points[points.len() - 1];
        assert!(
            e_last < e_first,
            "error failed to shrink across the grid: {points:?}"
        );
    }
}
