//! Differential guard for the `ModelSpec → SimConfig` refactor.
//!
//! The registry presets replaced hand-built `SimConfig` literals in the
//! zoo (PR 4). This test pins the old construction: every pre-refactor
//! literal is rebuilt here by hand and must equal `spec.sim_config(n)`
//! byte for byte, a pinned-seed simulation of both must produce
//! identical results, and the derived configs' `Debug` rendering is
//! compared against a blessed golden file (re-bless with
//! `LOADSTEAL_BLESS=1 cargo test -p loadsteal-verify --test
//! spec_golden`). Once a release has shipped on the registry path this
//! file can be deleted.

use loadsteal_core::ModelRegistry;
use loadsteal_queueing::ServiceDistribution;
use loadsteal_sim::{
    run_seeded, RebalanceRate, SimConfig, SpeedProfile, StealPolicy, ToSimConfig, TransferTime,
};

/// System size used throughout; any value works, 64 keeps sims cheap.
const N: usize = 64;

/// The pre-refactor zoo construction, verbatim: `paper_default` plus
/// per-variant mutations (horizon/warmup overrides excluded — the old
/// zoo applied those after construction, and `sim_config` leaves them
/// at the paper defaults too).
fn hand_built() -> Vec<(&'static str, SimConfig)> {
    let base = |lambda: f64| SimConfig::paper_default(N, lambda);
    let mut configs = Vec::new();

    let mut c = base(0.8);
    c.policy = StealPolicy::None;
    configs.push(("no-steal", c));

    configs.push(("simple-ws", base(0.9)));

    let mut c = base(0.85);
    c.policy = StealPolicy::OnEmpty {
        threshold: 4,
        choices: 1,
        batch: 1,
    };
    configs.push(("threshold", c));

    let mut c = base(0.85);
    c.policy = StealPolicy::Preemptive {
        begin_at: 1,
        rel_threshold: 3,
    };
    configs.push(("preemptive", c));

    let mut c = base(0.9);
    c.policy = StealPolicy::Repeated {
        rate: 2.0,
        threshold: 2,
    };
    configs.push(("repeated", c));

    let mut c = base(0.9);
    c.policy = StealPolicy::OnEmpty {
        threshold: 2,
        choices: 2,
        batch: 1,
    };
    configs.push(("multi-choice", c));

    let mut c = base(0.85);
    c.policy = StealPolicy::OnEmpty {
        threshold: 6,
        choices: 1,
        batch: 3,
    };
    configs.push(("multi-steal", c));

    let mut c = base(0.8);
    c.policy = StealPolicy::OnEmpty {
        threshold: 4,
        choices: 1,
        batch: 1,
    };
    c.transfer = Some(TransferTime::exponential(0.25));
    configs.push(("transfer", c));

    let mut c = base(0.8);
    c.policy = StealPolicy::OnEmpty {
        threshold: 2,
        choices: 1,
        batch: 1,
    };
    c.speeds = SpeedProfile::Classes(vec![(0.5, 1.2), (0.5, 0.9)]);
    configs.push(("heterogeneous", c));

    let mut c = base(0.9);
    c.policy = StealPolicy::Share {
        send_threshold: 2,
        recv_threshold: 2,
    };
    configs.push(("work-sharing", c));

    let mut c = base(0.9);
    c.policy = StealPolicy::OnEmpty {
        threshold: 6,
        choices: 2,
        batch: 3,
    };
    configs.push(("general", c));

    let mut c = base(0.8);
    c.policy = StealPolicy::Rebalance {
        rate: RebalanceRate::Constant(0.5),
    };
    configs.push(("rebalance", c));

    let mut c = base(0.8);
    c.service = ServiceDistribution::Erlang {
        stages: 20,
        rate: 20.0,
    };
    configs.push(("erlang-service", c));

    let mut c = base(0.8);
    c.arrival = Some(ServiceDistribution::Erlang {
        stages: 5,
        rate: 5.0 * 0.8,
    });
    configs.push(("erlang-arrivals", c));

    let mut c = base(0.8);
    c.service = ServiceDistribution::HyperExp {
        p: 0.1,
        rate1: 0.2,
        rate2: 1.8,
    };
    configs.push(("hyper-service", c));

    configs
}

fn spec_derived(preset: &str) -> SimConfig {
    ModelRegistry::standard()
        .get(preset)
        .unwrap_or_else(|| panic!("registry preset {preset:?} missing"))
        .spec
        .sim_config(N)
        .unwrap_or_else(|e| panic!("preset {preset:?}: {e}"))
}

#[test]
fn spec_derived_configs_equal_the_pre_refactor_literals() {
    for (preset, hand) in hand_built() {
        assert_eq!(
            spec_derived(preset),
            hand,
            "preset {preset:?} no longer reproduces the pre-refactor SimConfig"
        );
    }
}

#[test]
fn pinned_seed_runs_match_between_hand_built_and_spec_configs() {
    // Short horizons keep this cheap; the point is bitwise determinism
    // of the whole (config → engine → metrics) path, not statistics.
    for preset in ["simple-ws", "threshold", "transfer", "erlang-service"] {
        let (_, mut hand) = hand_built()
            .into_iter()
            .find(|(name, _)| *name == preset)
            .unwrap();
        let mut derived = spec_derived(preset);
        for cfg in [&mut hand, &mut derived] {
            cfg.n = 16;
            cfg.horizon = 300.0;
            cfg.warmup = 30.0;
        }
        let a = run_seeded(&hand, 7);
        let b = run_seeded(&derived, 7);
        assert_eq!(
            a.mean_sojourn().to_bits(),
            b.mean_sojourn().to_bits(),
            "{preset}"
        );
        assert_eq!(a.tasks_completed, b.tasks_completed, "{preset}");
        assert_eq!(a.events_processed, b.events_processed, "{preset}");
        assert_eq!(a.load_tails, b.load_tails, "{preset}");
    }
}

#[test]
fn derived_configs_match_the_golden_file() {
    let mut rendered = String::new();
    for p in ModelRegistry::standard().presets() {
        let cfg = p
            .spec
            .sim_config(N)
            .unwrap_or_else(|e| panic!("preset {}: {e}", p.name));
        rendered.push_str(&format!("{} {:?}\n", p.name, cfg));
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/sim_configs.txt");
    if std::env::var_os("LOADSTEAL_BLESS").is_some() {
        std::fs::write(path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("golden file missing ({e}); bless with LOADSTEAL_BLESS=1"));
    assert_eq!(
        rendered, golden,
        "spec-derived SimConfigs drifted from the blessed golden file; \
         re-bless with LOADSTEAL_BLESS=1 if the change is intentional"
    );
}
