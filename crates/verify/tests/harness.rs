//! Harness self-tests: the sabotage acceptance criterion, coverage
//! floors, and smoke runs of the deterministic layers.
//!
//! Simulation-backed tests here use [`Settings::tiny`] — deliberately
//! underpowered protocols that are still statistically decisive for the
//! gross errors they target.

use loadsteal_verify::{all_checks, differential, sabotage, zoo, Outcome, Settings};

/// Acceptance criterion: an intentionally injected ODE sign error must
/// be caught by the differential layer, even at a tiny protocol.
#[test]
fn injected_sign_error_is_caught() {
    let settings = Settings::tiny(7);
    let outcome = differential::check_variant(&settings, sabotage::sabotaged_variant(&settings));
    match outcome {
        Outcome::Fail(detail) => {
            assert!(
                detail.contains("sojourn") || detail.contains("tail"),
                "failure should name the disagreeing statistic: {detail}"
            );
        }
        other => panic!("sabotaged variant was not flagged: {other:?}"),
    }
}

/// Control for the sabotage test: the honest no-steal variant — exact
/// M/M/1, zero finite-size bias — passes the same differential check at
/// the same tiny protocol.
#[test]
fn honest_variant_passes_where_sabotage_fails() {
    let settings = Settings::tiny(7);
    let v = zoo::variants(&settings)
        .into_iter()
        .find(|v| v.name.starts_with("no-steal"))
        .expect("zoo lost its no-steal baseline");
    let outcome = differential::check_variant(&settings, v);
    assert!(
        matches!(outcome, Outcome::Pass(_)),
        "honest no-steal check did not pass: {outcome:?}"
    );
}

/// The quick tier must cover at least eight simulable model variants
/// (the ISSUE's floor) and carry all four check layers.
#[test]
fn quick_tier_covers_the_zoo_and_all_layers() {
    let settings = Settings::quick(1);
    let checks = all_checks(&settings);
    let variant_checks = checks
        .iter()
        .filter(|c| c.group == "differential" && c.name.contains('λ'))
        .count();
    assert!(
        variant_checks >= 8,
        "only {variant_checks} differential variant checks"
    );
    for group in ["metamorphic", "convergence", "determinism", "differential"] {
        assert!(
            checks.iter().any(|c| c.group == group),
            "layer {group} missing from the quick tier"
        );
    }
}

/// The deterministic layers (no simulation statistics involved) must
/// pass outright; run them through the public filter API.
#[test]
fn convergence_and_determinism_layers_pass() {
    let settings = Settings::tiny(3);
    for filter in ["convergence", "determinism"] {
        let report = loadsteal_verify::run(&settings, Some(filter));
        assert!(!report.results.is_empty(), "{filter}: no checks matched");
        assert!(
            report.passed(),
            "{filter} layer failed:\n{}",
            report.render()
        );
    }
}
