//! A registry cross-product (threshold × Erlang stages, §2.3 × §3.1)
//! run end to end through the differential harness: the spec must
//! dispatch to a mean-field model, yield a simulable config, and the
//! quick-protocol simulation at n = 128 must agree with the fixed point.

use loadsteal_core::ModelRegistry;
use loadsteal_sim::ToSimConfig;
use loadsteal_verify::differential::check_variant;
use loadsteal_verify::zoo::Variant;
use loadsteal_verify::{Outcome, Settings};

#[test]
fn threshold_erlang_cross_product_passes_the_differential_check() {
    let settings = Settings::quick(42);
    let registry = ModelRegistry::standard();
    let preset = registry
        .get("threshold-erlang")
        .expect("cross-product preset registered");
    let spec = preset.spec.clone();
    let mut cfg = spec.sim_config(settings.n).expect("simulable");
    cfg.horizon = settings.horizon;
    cfg.warmup = settings.warmup;
    let variant = Variant {
        name: "threshold-erlang(cross-product)",
        cfg,
        lambda: spec.lambda,
        busy_is_lambda: spec.busy_is_lambda(),
        dominates_no_steal: spec.dominates_no_steal(),
        predict: {
            let spec = spec.clone();
            Box::new(move || spec.fixed_point())
        },
        spec,
    };
    match check_variant(&settings, variant) {
        Outcome::Pass(detail) => {
            assert!(!detail.is_empty());
        }
        other => panic!("cross-product differential check did not pass: {other:?}"),
    }
}
