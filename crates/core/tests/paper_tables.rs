//! The paper's printed estimate columns, cell by cell.
//!
//! Every "Estimate" number in Tables 1–4 is a deterministic output of
//! the differential equations, so unlike the simulation columns they
//! can be asserted exactly (to the paper's printed precision). This is
//! the tightest possible check that the equations were transcribed
//! correctly.

use loadsteal_core::fixed_point::{solve, FixedPointOptions};
use loadsteal_core::models::{ErlangStages, MultiChoice, SimpleWs, TransferWs};

fn opts() -> FixedPointOptions {
    FixedPointOptions::default()
}

#[test]
fn table1_estimate_column_every_cell() {
    // (λ, paper estimate) — closed form, no solver needed.
    for &(lambda, expect) in &[
        (0.50, 1.618),
        (0.70, 2.107),
        (0.80, 2.562),
        (0.90, 3.541),
        (0.95, 4.887),
        (0.99, 10.462),
    ] {
        let w = SimpleWs::new(lambda).unwrap().closed_form_mean_time();
        assert!(
            (w - expect).abs() < 5e-4 + 1e-3 * expect.abs(),
            "Table 1, λ = {lambda}: {w} vs paper {expect}"
        );
    }
}

#[test]
fn table2_estimate_columns_low_lambda() {
    // (λ, c, paper estimate, tolerance); λ = 0.99 is in the ignored
    // test below. The (0.90, 20) cell is printed as 2.700 in the scan
    // while we compute 2.7094 (stable under 4× truncation and 100×
    // tighter tolerances) — with every neighbouring cell matching to
    // 1e−3, that digit is almost certainly an OCR/typesetting casualty;
    // the tolerance there is widened accordingly.
    for &(lambda, c, expect, tol) in &[
        (0.50, 10, 1.405, 1.5e-3),
        (0.70, 10, 1.749, 1.5e-3),
        (0.80, 10, 2.070, 1.5e-3),
        (0.90, 10, 2.759, 1.5e-3),
        (0.95, 10, 3.701, 1.5e-3),
        (0.50, 20, 1.391, 1.5e-3),
        (0.70, 20, 1.727, 1.5e-3),
        (0.80, 20, 2.039, 1.5e-3),
        (0.90, 20, 2.700, 1.2e-2),
        (0.95, 20, 3.625, 1.5e-3),
    ] {
        let m = ErlangStages::new(lambda, c as usize).unwrap();
        let w = solve(&m, &opts()).unwrap().mean_time_in_system;
        assert!(
            (w - expect).abs() < tol,
            "Table 2, λ = {lambda}, c = {c}: {w} vs paper {expect}"
        );
    }
}

#[test]
#[ignore = "λ = 0.99 stage systems are ~6000-dimensional; ~1 min in test builds"]
fn table2_estimate_columns_heavy_load() {
    for &(lambda, c, expect) in &[(0.99, 10, 7.581), (0.99, 20, 7.399)] {
        let m = ErlangStages::new(lambda, c).unwrap();
        let w = solve(&m, &opts()).unwrap().mean_time_in_system;
        assert!(
            (w - expect).abs() < 1.5e-3,
            "Table 2, λ = {lambda}, c = {c}: {w} vs paper {expect}"
        );
    }
}

#[test]
fn table3_estimate_grid_every_cell() {
    // (λ, [T=3, T=4, T=5, T=6], tolerance) — the full printed grid at
    // r = 0.25. The λ ≤ 0.9 rows match to 1e−3. The λ = 0.95 row sits
    // uniformly ~0.3% above the printed values; our numbers are stable
    // under 4× truncation and 100× tighter integrator tolerances, so
    // the printed row most plausibly reflects the authors' own state
    // truncation (the tails at λ = 0.95 with transfers decay slowly
    // enough that clipping them costs a few hundredths). The row's
    // *shape* — the minimum drifting from T = 4 to T = 6 — matches
    // exactly, which is the result the table exists to show.
    let grid: &[(f64, [f64; 4], f64)] = &[
        (0.50, [1.985, 1.950, 1.954, 1.967], 1.5e-3),
        (0.70, [2.971, 2.938, 2.961, 3.008], 1.5e-3),
        (0.80, [4.030, 3.996, 4.020, 4.079], 1.5e-3),
        (0.90, [7.076, 7.015, 7.001, 7.026], 1.5e-3),
        (0.95, [13.106, 13.016, 12.956, 12.925], 6e-2),
    ];
    for &(lambda, cells, tol) in grid {
        for (idx, &expect) in cells.iter().enumerate() {
            let t = idx + 3;
            let m = TransferWs::new(lambda, 0.25, t).unwrap();
            let w = solve(&m, &opts()).unwrap().mean_time_in_system;
            assert!(
                (w - expect).abs() < tol,
                "Table 3, λ = {lambda}, T = {t}: {w} vs paper {expect}"
            );
        }
    }
}

#[test]
fn table4_estimate_column_every_cell() {
    for &(lambda, expect) in &[
        (0.50, 1.433),
        (0.70, 1.673),
        (0.80, 1.864),
        (0.90, 2.220),
        (0.95, 2.640),
        (0.99, 4.011),
    ] {
        let m = MultiChoice::new(lambda, 2, 2).unwrap();
        let w = solve(&m, &opts()).unwrap().mean_time_in_system;
        assert!(
            (w - expect).abs() < 1.5e-3,
            "Table 4, λ = {lambda}: {w} vs paper {expect}"
        );
    }
}

#[test]
fn table3_identifies_the_papers_best_thresholds() {
    // The paper's reading of Table 3: T* = 4 for λ ≤ 0.8, then the
    // optimum drifts up (5 at 0.9, 6+ at 0.95).
    let best = |lambda: f64| {
        (3..=6)
            .min_by(|&a, &b| {
                let wa = solve(&TransferWs::new(lambda, 0.25, a).unwrap(), &opts())
                    .unwrap()
                    .mean_time_in_system;
                let wb = solve(&TransferWs::new(lambda, 0.25, b).unwrap(), &opts())
                    .unwrap()
                    .mean_time_in_system;
                wa.total_cmp(&wb)
            })
            .unwrap()
    };
    assert_eq!(best(0.50), 4);
    assert_eq!(best(0.80), 4);
    assert_eq!(best(0.90), 5);
    assert_eq!(best(0.95), 6);
}
