//! Failure injection: the solver pipeline reports the right errors when
//! pushed outside its envelope instead of silently returning garbage.

use loadsteal_core::fixed_point::{solve, FixedPointOptions, SolveError};
use loadsteal_core::models::{MeanFieldModel, SimpleWs};
use loadsteal_ode::solver::SteadyStateOptions;
use loadsteal_ode::{AdaptiveOptions, DormandPrince45, IntegrationError, OdeSystem};

#[test]
fn truncation_cap_is_reported() {
    // λ = 0.95 needs ~hundreds of levels; force an 8-level cap and a
    // model that starts at the cap.
    let m = SimpleWs::new(0.95).unwrap().with_truncation(8);
    let opts = FixedPointOptions {
        max_truncation: 8,
        ..FixedPointOptions::default()
    };
    match solve(&m, &opts) {
        Err(SolveError::TruncationExhausted { levels }) => assert_eq!(levels, 8),
        other => panic!("expected TruncationExhausted, got {other:?}"),
    }
}

#[test]
fn truncation_growth_rescues_small_starts() {
    // Same model, but with room to grow: the pipeline must converge and
    // end up at a larger truncation.
    let m = SimpleWs::new(0.95).unwrap().with_truncation(8);
    let fp = solve(&m, &FixedPointOptions::default()).unwrap();
    assert!(fp.truncation > 8, "truncation stayed at {}", fp.truncation);
    let exact = SimpleWs::new(0.95).unwrap().closed_form_mean_time();
    assert!((fp.mean_time_in_system - exact).abs() < 1e-6);
}

#[test]
fn short_integration_horizon_is_not_converged() {
    let m = SimpleWs::new(0.9).unwrap();
    let opts = FixedPointOptions {
        steady: SteadyStateOptions {
            tol: 1e-10,
            t_max: 0.5, // hopeless: relaxation needs hundreds of units
            min_time: 0.0,
        },
        newton_max_dim: 0, // and no Newton rescue
        ..FixedPointOptions::default()
    };
    match solve(&m, &opts) {
        Err(SolveError::NotConverged { residual }) => assert!(residual > 1e-8),
        other => panic!("expected NotConverged, got {other:?}"),
    }
}

#[test]
fn newton_rescues_short_integration() {
    // Same hopeless horizon, but Newton allowed: the integrated state is
    // a poor but usable initial guess only if integration got somewhere;
    // give it a slightly longer (still too short) leash.
    let m = SimpleWs::new(0.5).unwrap();
    let opts = FixedPointOptions {
        steady: SteadyStateOptions {
            tol: 1e-10,
            t_max: 30.0,
            min_time: 0.0,
        },
        ..FixedPointOptions::default()
    };
    let fp = solve(&m, &opts).unwrap();
    assert!(fp.polished, "Newton did not run");
    let exact = SimpleWs::new(0.5).unwrap().closed_form_mean_time();
    assert!((fp.mean_time_in_system - exact).abs() < 1e-8);
}

#[test]
fn integrator_step_budget_is_enforced() {
    let m = SimpleWs::new(0.9).unwrap();
    let mut y = m.empty_state();
    let mut dp = DormandPrince45::new(AdaptiveOptions {
        max_steps: 10,
        ..AdaptiveOptions::default()
    });
    let err = dp.integrate(&m, 0.0, 1e6, &mut y).unwrap_err();
    assert!(matches!(err, IntegrationError::MaxStepsExceeded { .. }));
}

#[test]
fn nonfinite_model_state_is_caught() {
    // A adversarial system that blows up in finite time.
    struct Blowup;
    impl OdeSystem for Blowup {
        fn dim(&self) -> usize {
            1
        }
        fn deriv(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
            dy[0] = y[0] * y[0];
        }
    }
    let mut y = vec![1.0];
    let mut dp = DormandPrince45::new(AdaptiveOptions::default());
    let err = dp.integrate(&Blowup, 0.0, 5.0, &mut y).unwrap_err();
    assert!(
        matches!(
            err,
            IntegrationError::NonFinite { .. } | IntegrationError::StepSizeUnderflow { .. }
        ),
        "got {err:?}"
    );
}
