//! Conformance suite: every model in the zoo satisfies the structural
//! contract of [`MeanFieldModel`] and the physics every work-stealing
//! system must obey at its fixed point.

use loadsteal_core::fixed_point::{solve, FixedPoint, FixedPointOptions};
use loadsteal_core::models::*;
use loadsteal_core::tail::TailVector;
use loadsteal_ode::OdeSystem;

const LAMBDA: f64 = 0.85;

/// A named, deferred fixed-point computation.
type ZooEntry = (String, Box<dyn Fn() -> (usize, FixedPoint)>);

/// Every dynamic model at λ = 0.85, boxed behind a common test closure.
fn zoo() -> Vec<ZooEntry> {
    macro_rules! entry {
        ($m:expr) => {{
            let m = $m;
            let name = m.name();
            (
                name,
                Box::new(move || {
                    let fp = solve(&m, &FixedPointOptions::default()).expect("fixed point");
                    (m.dim(), fp)
                }) as Box<dyn Fn() -> (usize, FixedPoint)>,
            )
        }};
    }
    vec![
        entry!(NoSteal::new(LAMBDA).unwrap()),
        entry!(SimpleWs::new(LAMBDA).unwrap()),
        entry!(ThresholdWs::new(LAMBDA, 4).unwrap()),
        entry!(Preemptive::new(LAMBDA, 1, 3).unwrap()),
        entry!(RepeatedSteal::new(LAMBDA, 2.0, 2).unwrap()),
        entry!(ErlangStages::new(LAMBDA, 5).unwrap()),
        entry!(ErlangArrivals::new(LAMBDA, 5, 2).unwrap()),
        entry!(TransferWs::new(LAMBDA, 0.5, 3).unwrap()),
        entry!(MultiChoice::new(LAMBDA, 2, 2).unwrap()),
        entry!(MultiSteal::new(LAMBDA, 2, 4).unwrap()),
        entry!(GeneralWs::new(LAMBDA, 4, 2, 2).unwrap()),
        entry!(Rebalance::new(LAMBDA, RebalanceRateFn::Constant(1.0)).unwrap()),
        entry!(Heterogeneous::new(LAMBDA, 0.5, 1.3, 0.9, 2).unwrap()),
        entry!(StaticDrain::new(LAMBDA, 0.0, 256).unwrap()),
        entry!(WorkSharing::new(LAMBDA, 2, 2).unwrap()),
        entry!(HyperService::with_scv(LAMBDA, 3.0, 2).unwrap()),
    ]
}

#[test]
fn every_model_reaches_a_clean_fixed_point() {
    for (name, solve_it) in zoo() {
        let (_, fp) = solve_it();
        assert!(
            fp.residual < 1e-7,
            "{name}: residual {} too large",
            fp.residual
        );
        assert!(
            fp.mean_time_in_system.is_finite() && fp.mean_time_in_system > 1.0,
            "{name}: W = {}",
            fp.mean_time_in_system
        );
    }
}

#[test]
fn every_fixed_point_satisfies_throughput_balance() {
    // Busy mass × service rate = λ. For the homogeneous unit-rate models
    // this is s₁ = λ; the heterogeneous model is checked in its own
    // module (its folded s₁ is not the throughput).
    for (name, solve_it) in zoo() {
        // Mixed service rates make the folded s₁ a different quantity
        // than the throughput; those models check balance in their own
        // unit tests.
        if name.starts_with("heterogeneous") || name.starts_with("hyperexp") {
            continue;
        }
        let (_, fp) = solve_it();
        assert!(
            (fp.task_tails[1] - LAMBDA).abs() < 1e-6,
            "{name}: s₁ = {} ≠ λ",
            fp.task_tails[1]
        );
    }
}

#[test]
fn every_fixed_point_tail_is_a_valid_tail_vector() {
    for (name, solve_it) in zoo() {
        let (_, fp) = solve_it();
        let t = TailVector::from_slice(&fp.task_tails[1..]);
        assert!(
            t.is_valid(1e-8),
            "{name}: invalid tail {:?}…",
            &fp.task_tails[..5]
        );
        assert!((fp.task_tails[0] - 1.0).abs() < 1e-12, "{name}: s₀ ≠ 1");
    }
}

#[test]
fn every_stealing_model_beats_no_stealing() {
    let baseline = NoSteal::new(LAMBDA).unwrap().closed_form_mean_time();
    for (name, solve_it) in zoo() {
        // Exclusions: the baseline itself; different service laws
        // (hyperexponential is burstier than M/M/1 even with stealing);
        // heterogeneous compares against a different capacity.
        if name.starts_with("no stealing")
            || name.starts_with("heterogeneous")
            || name.starts_with("hyperexp")
        {
            continue;
        }
        let (_, fp) = solve_it();
        assert!(
            fp.mean_time_in_system < baseline + 1e-9,
            "{name}: W = {} not better than M/M/1 {baseline}",
            fp.mean_time_in_system
        );
    }
}

#[test]
fn mean_tasks_agrees_with_tail_sum() {
    // For models without in-transit mass, L must equal Σ_{i≥1} s_i of
    // the folded tails.
    for (name, solve_it) in zoo() {
        if name.starts_with("transfer") {
            continue; // in-transit tasks are in L but not in the tails
        }
        let (_, fp) = solve_it();
        let tail_sum: f64 = fp.task_tails[1..].iter().rev().sum();
        assert!(
            (fp.mean_tasks - tail_sum).abs() < 1e-9 * (1.0 + fp.mean_tasks),
            "{name}: L = {} vs Σ tails = {tail_sum}",
            fp.mean_tasks
        );
    }
}

#[test]
fn transfer_mean_tasks_exceeds_tail_sum_by_transit_mass() {
    let m = TransferWs::new(LAMBDA, 0.5, 3).unwrap();
    let fp = solve(&m, &FixedPointOptions::default()).unwrap();
    let tail_sum: f64 = fp.task_tails[1..].iter().rev().sum();
    let transit = fp.mean_tasks - tail_sum;
    assert!(transit > 0.0, "no in-transit mass measured");
    // In-transit mass = w₀ = 1 − s₀.
    assert!(
        (transit - (1.0 - fp.state[0])).abs() < 1e-9,
        "transit {transit} vs w₀ = {}",
        1.0 - fp.state[0]
    );
}
