//! Property-based tests on the mean-field models' structure:
//! closed forms satisfy their defining equations, derivative fields
//! preserve the tail-vector invariants, and task conservation holds at
//! arbitrary states.

use proptest::prelude::*;

use loadsteal_core::models::{
    Heterogeneous, MeanFieldModel, MultiChoice, MultiSteal, NoSteal, SimpleWs, ThresholdWs,
    TransferWs,
};
use loadsteal_core::tail::TailVector;
use loadsteal_ode::OdeSystem;

/// A random valid tail state for a model of `levels` truncation.
fn arb_tail(levels: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, levels).prop_map(|mut v| {
        // Sort descending to make a valid non-increasing tail.
        v.sort_by(|a, b| b.total_cmp(a));
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simple_ws_pi2_solves_its_quadratic(lambda in 0.01f64..0.995) {
        let m = SimpleWs::new(lambda).unwrap();
        let p = m.pi2();
        // π₂² − (1+λ)π₂ + λ² = 0 (from eq. (2) at the fixed point).
        let resid = p * p - (1.0 + lambda) * p + lambda * lambda;
        prop_assert!(resid.abs() < 1e-12, "residual {resid}");
        prop_assert!(p > 0.0 && p < lambda);
    }

    #[test]
    fn threshold_closed_form_is_fixed_point(
        lambda in 0.05f64..0.98,
        threshold in 2usize..9,
    ) {
        let m = ThresholdWs::new(lambda, threshold).unwrap();
        let state = m.closed_form_tails().into_vec();
        prop_assert!(TailVector::from_slice(&state).is_valid(1e-9));
        let mut dy = vec![0.0; state.len()];
        m.deriv(0.0, &state, &mut dy);
        for (i, d) in dy.iter().enumerate().take(state.len() - 2) {
            prop_assert!(d.abs() < 1e-10, "ds_{}/dt = {d}", i + 1);
        }
    }

    #[test]
    fn closed_form_tails_are_geometric_beyond_t(
        lambda in 0.1f64..0.95,
        threshold in 2usize..7,
    ) {
        let m = ThresholdWs::new(lambda, threshold).unwrap();
        let tails = m.closed_form_tails();
        let rho = m.rho_prime();
        for i in threshold..threshold + 6 {
            if tails.get(i) > 1e-12 {
                let ratio = tails.get(i + 1) / tails.get(i);
                prop_assert!((ratio - rho).abs() < 1e-9, "i = {i}: {ratio} vs {rho}");
            }
        }
    }

    #[test]
    fn task_conservation_in_simple_ws_drift(
        lambda in 0.1f64..0.95,
        state in arb_tail(64),
    ) {
        // dL/dt = λ − s₁ at ANY state: arrivals add, services remove,
        // steals merely move tasks.
        let m = SimpleWs::new(lambda).unwrap().with_truncation(64);
        let mut dy = vec![0.0; 64];
        m.deriv(0.0, &state, &mut dy);
        let dl: f64 = dy.iter().sum();
        // Truncation leaks at most the boundary flow.
        let leak = state[63] * (2.0 + lambda);
        prop_assert!(
            (dl - (lambda - state[0])).abs() < leak + 1e-9,
            "dL/dt = {dl} vs λ − s₁ = {}",
            lambda - state[0]
        );
    }

    #[test]
    fn multi_steal_conserves_tasks(
        lambda in 0.1f64..0.95,
        batch in 1usize..4,
        state in arb_tail(72),
    ) {
        let threshold = 2 * batch + 2;
        let m = MultiSteal::new(lambda, batch, threshold).unwrap().with_truncation(72);
        let mut dy = vec![0.0; 72];
        m.deriv(0.0, &state, &mut dy);
        let dl: f64 = dy.iter().sum();
        // Steal-loss terms reference up to k levels past the boundary,
        // so the leak is bounded by flows at depth L − k.
        let leak = state[72 - 1 - batch] * (2.0 + lambda + batch as f64);
        prop_assert!((dl - (lambda - state[0])).abs() < leak + 1e-9);
    }

    #[test]
    fn multi_choice_drift_keeps_tails_ordered(
        lambda in 0.1f64..0.95,
        d in 1u32..5,
        state in arb_tail(48),
    ) {
        // One Euler step from a valid tail must stay (nearly) valid: the
        // drift never drives s_i above s_{i−1} at first order.
        let m = MultiChoice::new(lambda, d, 2).unwrap().with_truncation(48);
        let mut dy = vec![0.0; 48];
        m.deriv(0.0, &state, &mut dy);
        let h = 1e-4;
        let mut next: Vec<f64> = state.iter().zip(&dy).map(|(s, d)| s + h * d).collect();
        m.project(&mut next);
        prop_assert!(TailVector::from_slice(&next).is_valid(1e-6));
    }

    #[test]
    fn transfer_model_conserves_tasks_in_flight(
        lambda in 0.1f64..0.9,
        s0 in 0.3f64..1.0,
        raw in prop::collection::vec(0.0f64..1.0, 64),
    ) {
        // Build a valid stacked state: s-block below s0, w-block below
        // w0 = 1 − s0, both non-increasing.
        let m = TransferWs::new(lambda, 0.5, 3).unwrap().with_truncation(32);
        let mut y = vec![0.0; m.dim()];
        y[0] = s0;
        let mut prev = s0;
        for i in 0..32 {
            prev *= raw[i];
            y[1 + i] = prev;
        }
        let mut prev = 1.0 - s0;
        for i in 0..32 {
            prev *= raw[32 + i];
            y[33 + i] = prev;
        }
        let mut dy = vec![0.0; m.dim()];
        m.deriv(0.0, &y, &mut dy);
        // L = Σ_{i≥1}(s_i + w_i) + w_0 with w_0 = 1 − s_0, so
        // dL/dt = Σ dy[1..] − dy[0]; it must equal λ − (s₁ + w₁)
        // (arrivals everywhere, services at busy processors; steals and
        // transfers only move tasks).
        let dl: f64 = dy[1..].iter().sum::<f64>() - dy[0];
        let busy = y[1] + y[33];
        // Truncation leakage at the two block boundaries.
        let leak = (y[32] + y[64]) * (3.0 + lambda) + 1e-9;
        prop_assert!(
            (dl - (lambda - busy)).abs() < leak,
            "dL/dt = {dl} vs λ − busy = {}",
            lambda - busy
        );
    }

    #[test]
    fn heterogeneous_model_conserves_tasks(
        lambda in 0.1f64..0.8,
        alpha in 0.2f64..0.8,
        raw in prop::collection::vec(0.0f64..1.0, 64),
    ) {
        let (mu_f, mu_s) = (1.6, 0.9);
        let m = Heterogeneous::new(lambda, alpha, mu_f, mu_s, 2)
            .unwrap()
            .with_truncation(32);
        let mut y = vec![0.0; m.dim()];
        let mut prev = alpha;
        for i in 0..32 {
            prev *= raw[i];
            y[i] = prev;
        }
        let mut prev = 1.0 - alpha;
        for i in 0..32 {
            prev *= raw[32 + i];
            y[32 + i] = prev;
        }
        let mut dy = vec![0.0; m.dim()];
        m.deriv(0.0, &y, &mut dy);
        let dl: f64 = dy.iter().sum();
        let throughput = mu_f * y[0] + mu_s * y[32];
        let leak = (y[31] + y[63]) * (3.0 + mu_f + lambda) + 1e-9;
        prop_assert!(
            (dl - (lambda - throughput)).abs() < leak,
            "dL/dt = {dl} vs λ − throughput = {}",
            lambda - throughput
        );
    }

    #[test]
    fn stealing_dominates_no_stealing_everywhere(lambda in 0.05f64..0.99) {
        let ws = SimpleWs::new(lambda).unwrap();
        let none = NoSteal::new(lambda).unwrap();
        prop_assert!(ws.closed_form_mean_time() < none.closed_form_mean_time());
        // And the tails are pointwise no heavier from level 2 on.
        let wt = ws.closed_form_tails();
        let nt = none.closed_form_tails();
        for i in 2..12 {
            prop_assert!(wt.get(i) <= nt.get(i) + 1e-12, "level {i}");
        }
    }

    #[test]
    fn mean_time_is_monotone_in_lambda(l1 in 0.05f64..0.9) {
        let l2 = l1 + 0.05;
        let w1 = SimpleWs::new(l1).unwrap().closed_form_mean_time();
        let w2 = SimpleWs::new(l2).unwrap().closed_form_mean_time();
        prop_assert!(w2 > w1, "W({l2}) = {w2} !> W({l1}) = {w1}");
    }
}
