//! Property tests for the spec grammar: `ModelSpec::parse` is the exact
//! inverse of `Display`, for every registry preset and for randomized
//! valid specs — including cross-products (policy × service × arrival ×
//! speeds) the registry does not enumerate.

use proptest::prelude::*;

use loadsteal_core::spec::{ArrivalSpec, PolicySpec, ServiceSpec, SpeedSpec};
use loadsteal_core::{ModelRegistry, ModelSpec};

/// Any valid policy. Dependent constraints (1 ≤ k ≤ T/2) are sampled by
/// reducing an unconstrained seed modulo the allowed range.
fn arb_policy() -> impl Strategy<Value = PolicySpec> {
    prop_oneof![
        Just(PolicySpec::NoSteal),
        (2usize..12, 1u32..5, any::<u64>()).prop_map(|(threshold, choices, k_seed)| {
            PolicySpec::OnEmpty {
                threshold,
                choices,
                batch: 1 + (k_seed as usize) % (threshold / 2),
            }
        }),
        (1usize..4, 2usize..8).prop_map(|(begin_at, rel_threshold)| PolicySpec::Preemptive {
            begin_at,
            rel_threshold,
        }),
        (0.05f64..8.0, 2usize..8)
            .prop_map(|(rate, threshold)| PolicySpec::Repeated { rate, threshold }),
        (0.05f64..4.0, any::<bool>())
            .prop_map(|(rate, per_task)| PolicySpec::Rebalance { rate, per_task }),
        (2usize..8, 1usize..8).prop_map(|(send_threshold, recv_threshold)| PolicySpec::Share {
            send_threshold,
            recv_threshold,
        }),
    ]
}

/// Any valid service distribution. Hyperexponential rates are solved for
/// unit mean: given branch probability `p` and `rate1 > p`, the second
/// rate `(1 − p) / (1 − p/rate1)` makes `p/r₁ + (1−p)/r₂ = 1` exactly.
fn arb_service() -> impl Strategy<Value = ServiceSpec> {
    prop_oneof![
        Just(ServiceSpec::Exponential),
        Just(ServiceSpec::Deterministic),
        (1u32..40).prop_map(|stages| ServiceSpec::Erlang { stages }),
        (0.05f64..0.9, 0.05f64..2.0).prop_map(|(p, excess)| {
            let rate1 = p + excess;
            let rate2 = (1.0 - p) / (1.0 - p / rate1);
            ServiceSpec::HyperExp { p, rate1, rate2 }
        }),
    ]
}

fn arb_arrival() -> impl Strategy<Value = ArrivalSpec> {
    prop_oneof![
        Just(ArrivalSpec::Poisson),
        (1u32..9).prop_map(|phases| ArrivalSpec::Erlang { phases }),
    ]
}

fn arb_speeds() -> impl Strategy<Value = SpeedSpec> {
    prop_oneof![
        Just(SpeedSpec::Homogeneous),
        (0.1f64..0.9, 0.5f64..2.5, 0.1f64..1.5).prop_map(
            |(fast_fraction, fast_rate, slow_rate)| {
                SpeedSpec::TwoClass {
                    fast_fraction,
                    fast_rate,
                    slow_rate,
                }
            }
        ),
    ]
}

/// A random valid spec. Transfer delays are only attached to the policy
/// shapes that support them (mirroring `ModelSpec::validate`).
fn arb_spec() -> impl Strategy<Value = ModelSpec> {
    (
        0.01f64..0.99,
        arb_policy(),
        arb_service(),
        arb_arrival(),
        arb_speeds(),
        (any::<bool>(), 0.05f64..4.0),
    )
        .prop_map(
            |(lambda, policy, service, arrival, speeds, (want_transfer, rate))| {
                let transfer_ok = matches!(
                    policy,
                    PolicySpec::OnEmpty { batch: 1, .. }
                        | PolicySpec::Preemptive { .. }
                        | PolicySpec::NoSteal
                );
                ModelSpec {
                    lambda,
                    arrival,
                    service,
                    policy,
                    transfer_rate: (want_transfer && transfer_ok).then_some(rate),
                    speeds,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_specs_display_then_parse_to_themselves(spec in arb_spec()) {
        prop_assert!(
            spec.validate().is_ok(),
            "generator made an invalid spec {:?}: {:?}",
            spec,
            spec.validate()
        );
        let text = spec.to_string();
        let parsed = ModelSpec::parse(&text)
            .unwrap_or_else(|e| panic!("canonical string {text:?} failed to parse: {e}"));
        prop_assert_eq!(parsed, spec, "via {}", text);
    }

    #[test]
    fn lambda_override_appended_to_canonical_string_wins(
        spec in arb_spec(),
        lambda in 0.01f64..0.99,
    ) {
        // The CLI composes `--lambda` by appending `,lambda=<λ>` to
        // whatever spec text the user gave; last key wins.
        let text = format!("{spec},lambda={lambda}");
        let parsed = ModelSpec::parse(&text).unwrap();
        prop_assert_eq!(parsed, spec.with_lambda(lambda));
    }
}

#[test]
fn every_preset_spec_round_trips_through_display() {
    for p in ModelRegistry::standard().presets() {
        let text = p.spec.to_string();
        let parsed = ModelSpec::parse(&text)
            .unwrap_or_else(|e| panic!("preset {}: {text:?} failed to parse: {e}", p.name));
        assert_eq!(parsed, p.spec, "preset {} via {text:?}", p.name);
    }
}

#[test]
fn preset_names_parse_to_their_specs() {
    for p in ModelRegistry::standard().presets() {
        let parsed = ModelSpec::parse(p.name)
            .unwrap_or_else(|e| panic!("preset name {:?} failed to parse: {e}", p.name));
        assert_eq!(parsed, p.spec, "preset {}", p.name);
        // Preset name plus overrides: the preset seeds the defaults.
        let overridden = ModelSpec::parse(&format!("{},lambda=0.42", p.name)).unwrap();
        assert_eq!(
            overridden,
            p.spec.clone().with_lambda(0.42),
            "preset {}",
            p.name
        );
    }
}

#[test]
fn every_preset_spec_is_valid() {
    for p in ModelRegistry::standard().presets() {
        p.spec
            .validate()
            .unwrap_or_else(|e| panic!("preset {} is invalid: {e}", p.name));
    }
}
