//! Tail-vector utilities.
//!
//! The paper's state is the infinite vector `s = (s_0, s_1, s_2, …)` of
//! tail fractions: `s_i` = fraction of processors with at least `i`
//! tasks. Numerically we work with a finite truncation `(s_1, …, s_L)`
//! (`s_0 ≡ 1`, `s_i ≡ 0` for `i > L`), valid because all the paper's
//! fixed points have geometrically decaying tails.

/// A truncated tail vector `(s_1, …, s_L)` with `s_0 ≡ 1` implicit.
#[derive(Debug, Clone, PartialEq)]
pub struct TailVector {
    values: Vec<f64>,
}

impl TailVector {
    /// Wrap a raw `(s_1, …, s_L)` slice.
    pub fn from_slice(values: &[f64]) -> Self {
        Self {
            values: values.to_vec(),
        }
    }

    /// The empty-system tail (`s_i = 0` for all `i ≥ 1`).
    pub fn empty(levels: usize) -> Self {
        Self {
            values: vec![0.0; levels],
        }
    }

    /// Tail of a system where every processor holds exactly `load`
    /// tasks (`s_i = 1` for `i ≤ load`).
    pub fn uniform_load(load: usize, levels: usize) -> Self {
        let mut values = vec![0.0; levels];
        for v in values.iter_mut().take(load.min(levels)) {
            *v = 1.0;
        }
        Self { values }
    }

    /// Geometric tail `s_i = ratio^i` (the M/M/1 stationary tail when
    /// `ratio = λ`).
    pub fn geometric(ratio: f64, levels: usize) -> Self {
        let mut values = Vec::with_capacity(levels);
        let mut v = 1.0;
        for _ in 0..levels {
            v *= ratio;
            values.push(v);
        }
        Self { values }
    }

    /// Number of stored levels `L`.
    pub fn levels(&self) -> usize {
        self.values.len()
    }

    /// `s_i`, with the `s_0 = 1` and `s_{i>L} = 0` conventions.
    pub fn get(&self, i: usize) -> f64 {
        if i == 0 {
            1.0
        } else {
            self.values.get(i - 1).copied().unwrap_or(0.0)
        }
    }

    /// The raw `(s_1, …, s_L)` slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the raw slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consume into the raw vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.values
    }

    /// Mean number of tasks per processor: `Σ_{i≥1} s_i`.
    ///
    /// Summed smallest-first for floating-point accuracy.
    pub fn mean_tasks(&self) -> f64 {
        self.values.iter().rev().sum()
    }

    /// Whether the vector is a valid tail: entries in `[0, 1]`,
    /// non-increasing (up to `tol` of slack for floating-point drift).
    pub fn is_valid(&self, tol: f64) -> bool {
        let mut prev = 1.0_f64;
        for &v in &self.values {
            if !(v.is_finite() && (-tol..=1.0 + tol).contains(&v)) || v > prev + tol {
                return false;
            }
            prev = v;
        }
        true
    }

    /// Estimated geometric decay ratio `s_{i+1}/s_i` measured at the
    /// deepest pair of levels above `floor` (returns `None` when the
    /// tail is too short or too small to measure).
    pub fn tail_ratio(&self, floor: f64) -> Option<f64> {
        let vals = &self.values;
        for i in (1..vals.len()).rev() {
            if vals[i] > floor && vals[i - 1] > floor {
                return Some(vals[i] / vals[i - 1]);
            }
        }
        None
    }

    /// Clamp to `[0, 1]` and restore monotonicity; used as the
    /// projection step after integrator steps near the boundary.
    pub fn project_slice(values: &mut [f64]) {
        let mut prev = 1.0_f64;
        for v in values.iter_mut() {
            *v = v.clamp(0.0, prev);
            prev = *v;
        }
    }
}

/// Truncation level so that a geometric tail with the given `ratio`
/// drops below `eps`: the smallest `L` with `ratio^L < eps`, clamped to
/// `[min, max]`.
pub fn truncation_for_ratio(ratio: f64, eps: f64, min: usize, max: usize) -> usize {
    if !(0.0..1.0).contains(&ratio) || ratio == 0.0 {
        return min;
    }
    let l = (eps.ln() / ratio.ln()).ceil();
    (l as usize).clamp(min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_tail_matches_formula() {
        let t = TailVector::geometric(0.5, 5);
        assert_eq!(t.get(0), 1.0);
        assert!((t.get(1) - 0.5).abs() < 1e-15);
        assert!((t.get(3) - 0.125).abs() < 1e-15);
        assert_eq!(t.get(6), 0.0);
    }

    #[test]
    fn mean_tasks_of_geometric_tail() {
        // Σ_{i≥1} λ^i = λ/(1−λ); with enough levels the truncation error
        // is negligible.
        let t = TailVector::geometric(0.5, 60);
        assert!((t.mean_tasks() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_load_tail() {
        let t = TailVector::uniform_load(3, 6);
        assert_eq!(t.as_slice(), &[1.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
        assert_eq!(t.mean_tasks(), 3.0);
    }

    #[test]
    fn validity_checks() {
        assert!(TailVector::from_slice(&[0.9, 0.5, 0.1]).is_valid(1e-12));
        assert!(!TailVector::from_slice(&[0.5, 0.9]).is_valid(1e-12)); // increasing
        assert!(!TailVector::from_slice(&[1.5]).is_valid(1e-12)); // > 1
        assert!(!TailVector::from_slice(&[f64::NAN]).is_valid(1e-12));
    }

    #[test]
    fn tail_ratio_recovers_geometric_rate() {
        let t = TailVector::geometric(0.37, 40);
        let r = t.tail_ratio(1e-12).unwrap();
        assert!((r - 0.37).abs() < 1e-9, "ratio {r}");
    }

    #[test]
    fn tail_ratio_none_when_too_small() {
        let t = TailVector::empty(10);
        assert!(t.tail_ratio(1e-12).is_none());
    }

    #[test]
    fn projection_restores_monotonicity() {
        let mut v = [0.9, 0.95, -0.1, 0.2];
        TailVector::project_slice(&mut v);
        assert_eq!(v, [0.9, 0.9, 0.0, 0.0]);
    }

    #[test]
    fn truncation_levels_scale_with_ratio() {
        let small = truncation_for_ratio(0.5, 1e-14, 16, 10_000);
        let big = truncation_for_ratio(0.99, 1e-14, 16, 10_000);
        assert!(small < big);
        assert!(0.5f64.powi(small as i32) < 1e-14);
        assert!(0.99f64.powi(big as i32) < 1e-14);
        assert_eq!(truncation_for_ratio(0.0, 1e-14, 16, 10_000), 16);
        assert_eq!(truncation_for_ratio(0.9, 1e-300, 16, 100), 100); // clamped
    }
}
