//! Declarative model specifications: one typed description of a
//! load-stealing variant from which every layer derives its view.
//!
//! A [`ModelSpec`] names the *system* — arrival process, service
//! distribution, steal policy (threshold, victim choices, batch size),
//! transfer delay, and processor speed profile — without committing to
//! any particular representation. From one spec the rest of the stack
//! derives:
//!
//! * [`ModelSpec::mean_field`] — the matching differential-equation
//!   model from [`crate::models`], as an [`AnyModel`], or a typed
//!   [`UnsupportedSpec`] when the paper has no equations for that
//!   combination;
//! * [`ModelSpec::fixed_point`] — the solved fixed point (predictor for
//!   `verify` and `report`);
//! * `spec.sim_config(n)` in `loadsteal-sim` — the event-driven
//!   simulator configuration;
//! * [`ModelSpec::parse`] / [`std::fmt::Display`] — the CLI's
//!   `--model <name|key=val,...>` grammar. The canonical string
//!   round-trips exactly: `ModelSpec::parse(&spec.to_string()) ==
//!   Ok(spec)`.
//!
//! Named presets covering every system the paper analyzes live in
//! [`crate::registry::ModelRegistry`].
//!
//! # Grammar
//!
//! A spec string is a comma-separated list of `key=value` pairs; the
//! first segment may instead be a preset name from the registry, with
//! later pairs overriding its fields. Later occurrences of a key win.
//!
//! ```text
//! simple-ws,lambda=0.8
//! lambda=0.9,policy=steal,T=6,d=2,k=3
//! lambda=0.8,policy=steal,T=4,service=erlang:10      # threshold × Erlang
//! lambda=0.8,policy=steal,T=4,transfer=0.25
//! lambda=0.8,speeds=classes:0.5:1.2:0.9
//! ```
//!
//! | key | meaning |
//! |-----|---------|
//! | `lambda` (`l`) | external arrival rate per processor |
//! | `policy` | `none`, `steal`, `preemptive`, `repeated`, `rebalance`, `share` |
//! | `T` (`threshold`) | victim/steal threshold (`steal`, `repeated`) or relative threshold (`preemptive`) |
//! | `d` (`choices`) | victim candidates per steal attempt (`steal`) |
//! | `k` (`batch`) | tasks moved per steal (`steal`) |
//! | `B` (`begin`) | tasks left when preemptive stealing starts |
//! | `r` (`rate`) | retry rate (`repeated`) or rebalance rate (`rebalance`) |
//! | `per-task` | `true`: rebalance rate is per unit of load imbalance |
//! | `send`, `recv` | work-sharing thresholds |
//! | `service` | `exp`, `erlang:<stages>`, `det`, `hyper:<p>:<rate1>:<rate2>` (unit mean) |
//! | `arrival` | `poisson`, `erlang:<phases>` |
//! | `transfer` | stolen tasks travel for `Exp(rate)` time |
//! | `speeds` | `homogeneous`, `classes:<fast-fraction>:<fast-rate>:<slow-rate>` |

use loadsteal_obs::Recorder;
use loadsteal_ode::OdeSystem;

use crate::fixed_point::{solve, solve_traced, FixedPoint, FixedPointOptions};
use crate::models::{
    ErlangArrivals, ErlangStages, GeneralWs, Heterogeneous, HyperService, MeanFieldModel,
    MultiChoice, MultiSteal, NoSteal, Preemptive, Rebalance, RebalanceRateFn, RepeatedSteal,
    SimpleWs, ThresholdWs, TransferWs, WorkSharing,
};

/// Tolerance for the unit-mean check on service distributions.
const UNIT_MEAN_TOL: f64 = 1e-9;

/// The task arrival process at each processor (unit: tasks per second,
/// mean rate fixed by [`ModelSpec::lambda`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalSpec {
    /// Poisson arrivals (the paper's default).
    Poisson,
    /// Erlang inter-arrival times with the given number of phases
    /// (§3.1's "more regular arrivals"; phase rate is `phases × λ` so
    /// the mean rate stays λ).
    Erlang {
        /// Number of exponential phases per inter-arrival time.
        phases: u32,
    },
}

/// The task service distribution (always unit mean, so λ is also the
/// offered load).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServiceSpec {
    /// Exponential(1) service (the paper's default).
    Exponential,
    /// Erlang with the given stage count, stage rate `stages` (§3.1's
    /// nearly-constant service as `stages` grows).
    Erlang {
        /// Number of exponential stages per task.
        stages: u32,
    },
    /// Deterministic unit service (simulable; no mean-field model).
    Deterministic,
    /// Two-branch hyperexponential: rate `rate1` with probability `p`,
    /// else `rate2` (§3.1's bursty service). The mean
    /// `p/rate1 + (1−p)/rate2` must be 1.
    HyperExp {
        /// Probability of the first branch.
        p: f64,
        /// Service rate of the first branch.
        rate1: f64,
        /// Service rate of the second branch.
        rate2: f64,
    },
}

impl ServiceSpec {
    /// Squared coefficient of variation of the service time; the
    /// stealing-beats-no-stealing comparison only holds when this is
    /// ≤ 1 (bursty service can invert it).
    pub fn scv(&self) -> f64 {
        match *self {
            Self::Exponential => 1.0,
            Self::Erlang { stages } => 1.0 / stages.max(1) as f64,
            Self::Deterministic => 0.0,
            Self::HyperExp { p, rate1, rate2 } => {
                let mean = p / rate1 + (1.0 - p) / rate2;
                let second = 2.0 * p / (rate1 * rate1) + 2.0 * (1.0 - p) / (rate2 * rate2);
                second / (mean * mean) - 1.0
            }
        }
    }
}

/// How (and whether) idle processors acquire work from others.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicySpec {
    /// No stealing: `n` independent queues (the eq. (1) baseline).
    NoSteal,
    /// Steal when empty: the paper's receiver-initiated family
    /// (§2.2–§2.3, §3.3–§3.4 combined as desired).
    OnEmpty {
        /// Minimum victim load `T` for a steal to succeed (§2.3).
        threshold: usize,
        /// Victim candidates examined per attempt, best of `d` (§3.3).
        choices: u32,
        /// Tasks moved per successful steal (§3.4); `1 ≤ k ≤ T/2`.
        batch: usize,
    },
    /// Preemptive stealing: start when `begin_at` tasks remain, steal
    /// only from victims with ≥ `rel_threshold` more tasks (§2.4).
    Preemptive {
        /// Tasks left in the local queue when stealing begins.
        begin_at: usize,
        /// Required victim excess over the thief.
        rel_threshold: usize,
    },
    /// Empty processors retry failed steals at rate `rate` (§2.5).
    Repeated {
        /// Steal-attempt rate while empty.
        rate: f64,
        /// Minimum victim load for success.
        threshold: usize,
    },
    /// Pairwise load rebalancing at rate `rate` (§3.4).
    Rebalance {
        /// Rebalance-attempt rate per processor (or per task, below).
        rate: f64,
        /// `true`: attempts scale with the local load.
        per_task: bool,
    },
    /// Sender-initiated work sharing (§1's foil): processors at ≥
    /// `send_threshold` push a task to one at < `recv_threshold`.
    Share {
        /// Queue length at which a processor tries to shed work.
        send_threshold: usize,
        /// Maximum receiver load for a push to land.
        recv_threshold: usize,
    },
}

/// Relative processor speeds (§3.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpeedSpec {
    /// All processors serve at rate 1.
    Homogeneous,
    /// Two classes: a `fast_fraction` of processors at `fast_rate`, the
    /// rest at `slow_rate`.
    TwoClass {
        /// Fraction of processors in the fast class, in `(0, 1)`.
        fast_fraction: f64,
        /// Service rate of the fast class.
        fast_rate: f64,
        /// Service rate of the slow class.
        slow_rate: f64,
    },
}

/// A complete declarative description of one load-stealing system.
///
/// See the [module docs](self) for the grammar and the derivations.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// External arrival rate λ per processor.
    pub lambda: f64,
    /// Arrival process shape.
    pub arrival: ArrivalSpec,
    /// Service distribution (unit mean).
    pub service: ServiceSpec,
    /// Steal policy.
    pub policy: PolicySpec,
    /// Stolen tasks travel for `Exp(rate)` time before arriving (§3.2);
    /// `None` means instantaneous transfer.
    pub transfer_rate: Option<f64>,
    /// Processor speed profile.
    pub speeds: SpeedSpec,
}

/// A spec field combination the mean-field layer has no equations for.
///
/// The variant is usually still *simulable* — the simulator composes
/// knobs freely — it just has no differential-equation predictor.
#[derive(Debug, Clone, PartialEq)]
pub struct UnsupportedSpec {
    /// The spec field no model consumes in this combination.
    pub field: &'static str,
    /// What about the combination is unsupported.
    pub detail: String,
}

impl std::fmt::Display for UnsupportedSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no mean-field model for this spec ({}): {}",
            self.field, self.detail
        )
    }
}

impl std::error::Error for UnsupportedSpec {}

fn unsupported(field: &'static str, detail: impl Into<String>) -> UnsupportedSpec {
    UnsupportedSpec {
        field,
        detail: detail.into(),
    }
}

/// Which auxiliary spec fields a dispatch target consumes; anything
/// left non-default and unconsumed is an [`UnsupportedSpec`].
#[derive(Default)]
struct Consumes {
    service: bool,
    arrival: bool,
    transfer: bool,
    speeds: bool,
}

impl ModelSpec {
    /// A simple-WS spec at rate `lambda`: Poisson arrivals, exponential
    /// service, steal-one-on-empty with victim threshold 2 — the §2.2
    /// baseline every other variant perturbs.
    pub fn simple_ws(lambda: f64) -> Self {
        Self {
            lambda,
            arrival: ArrivalSpec::Poisson,
            service: ServiceSpec::Exponential,
            policy: PolicySpec::OnEmpty {
                threshold: 2,
                choices: 1,
                batch: 1,
            },
            transfer_rate: None,
            speeds: SpeedSpec::Homogeneous,
        }
    }

    /// The same spec at a different arrival rate (used by the verify
    /// harness to sweep the paper's table grids from one preset).
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Whether the fixed-point busy fraction must equal λ exactly
    /// (throughput balance; breaks once speed classes differ because
    /// the folded tail mixes rates).
    pub fn busy_is_lambda(&self) -> bool {
        matches!(self.speeds, SpeedSpec::Homogeneous)
    }

    /// Whether the §2.2 dominance comparison `W < 1/(1−λ)` applies:
    /// some form of redistribution, homogeneous speeds, and service no
    /// burstier than exponential.
    pub fn dominates_no_steal(&self) -> bool {
        !matches!(self.policy, PolicySpec::NoSteal)
            && matches!(self.speeds, SpeedSpec::Homogeneous)
            && self.service.scv() <= 1.0
    }

    /// Validate field ranges and cross-field constraints (mirrors
    /// `SimConfig::validate` so a valid spec yields a valid config).
    pub fn validate(&self) -> Result<(), String> {
        if !self.lambda.is_finite() || self.lambda < 0.0 {
            return Err(format!(
                "arrival rate must be finite and non-negative, got {}",
                self.lambda
            ));
        }
        match self.arrival {
            ArrivalSpec::Poisson => {}
            ArrivalSpec::Erlang { phases } => {
                if phases == 0 {
                    return Err("arrival=erlang needs at least 1 phase".into());
                }
            }
        }
        match self.service {
            ServiceSpec::Exponential | ServiceSpec::Deterministic => {}
            ServiceSpec::Erlang { stages } => {
                if stages == 0 {
                    return Err("service=erlang needs at least 1 stage".into());
                }
            }
            ServiceSpec::HyperExp { p, rate1, rate2 } => {
                if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                    return Err(format!(
                        "hyperexponential branch probability {p} not in [0, 1]"
                    ));
                }
                if rate1 <= 0.0 || rate2 <= 0.0 || !rate1.is_finite() || !rate2.is_finite() {
                    return Err("hyperexponential rates must be positive and finite".into());
                }
                let mean = p / rate1 + (1.0 - p) / rate2;
                if (mean - 1.0).abs() > UNIT_MEAN_TOL {
                    return Err(format!(
                        "hyperexponential service mean must be 1, got {mean}"
                    ));
                }
            }
        }
        match self.policy {
            PolicySpec::NoSteal => {}
            PolicySpec::OnEmpty {
                threshold,
                choices,
                batch,
            } => {
                if threshold < 2 {
                    return Err(format!("steal threshold must be ≥ 2, got {threshold}"));
                }
                if choices == 0 {
                    return Err("victim choices must be ≥ 1".into());
                }
                if batch == 0 || batch > threshold / 2 {
                    return Err(format!(
                        "steal batch must satisfy 1 ≤ k ≤ T/2, got k = {batch}, T = {threshold}"
                    ));
                }
            }
            PolicySpec::Preemptive {
                begin_at,
                rel_threshold,
            } => {
                if begin_at == 0 {
                    return Err("preemptive begin-at must be ≥ 1".into());
                }
                if rel_threshold < 2 {
                    return Err(format!(
                        "preemptive relative threshold must be ≥ 2, got {rel_threshold}"
                    ));
                }
            }
            PolicySpec::Repeated { rate, threshold } => {
                if !(rate.is_finite() && rate > 0.0) {
                    return Err(format!("repeated-steal rate must be positive, got {rate}"));
                }
                if threshold < 2 {
                    return Err(format!("steal threshold must be ≥ 2, got {threshold}"));
                }
            }
            PolicySpec::Rebalance { rate, .. } => {
                if !(rate.is_finite() && rate > 0.0) {
                    return Err(format!("rebalance rate must be positive, got {rate}"));
                }
            }
            PolicySpec::Share {
                send_threshold,
                recv_threshold,
            } => {
                if send_threshold < 2 {
                    return Err(format!(
                        "share send threshold must be ≥ 2, got {send_threshold}"
                    ));
                }
                if recv_threshold == 0 {
                    return Err("share receive threshold must be ≥ 1".into());
                }
            }
        }
        if let Some(rate) = self.transfer_rate {
            if !(rate.is_finite() && rate > 0.0) {
                return Err(format!("transfer rate must be positive, got {rate}"));
            }
            match self.policy {
                PolicySpec::OnEmpty { batch: 1, .. }
                | PolicySpec::Preemptive { .. }
                | PolicySpec::NoSteal => {}
                PolicySpec::OnEmpty { batch, .. } => {
                    return Err(format!(
                        "transfer delays are only modeled for single-task steals, got batch {batch}"
                    ));
                }
                _ => {
                    return Err("transfer delays are only modeled for on-empty stealing".into());
                }
            }
        }
        if let SpeedSpec::TwoClass {
            fast_fraction,
            fast_rate,
            slow_rate,
        } = self.speeds
        {
            if !(fast_fraction > 0.0 && fast_fraction < 1.0) {
                return Err(format!(
                    "fast fraction must be in (0, 1), got {fast_fraction}"
                ));
            }
            if fast_rate <= 0.0 || slow_rate <= 0.0 {
                return Err("speed-class rates must be positive".into());
            }
        }
        Ok(())
    }

    fn check_unconsumed(&self, consumes: Consumes) -> Result<(), UnsupportedSpec> {
        if !consumes.service && self.service != ServiceSpec::Exponential {
            return Err(unsupported(
                "service",
                "this policy's equations assume exponential service",
            ));
        }
        if !consumes.arrival && self.arrival != ArrivalSpec::Poisson {
            return Err(unsupported(
                "arrival",
                "this combination's equations assume Poisson arrivals",
            ));
        }
        if !consumes.transfer && self.transfer_rate.is_some() {
            return Err(unsupported(
                "transfer",
                "transfer delays are only modeled for single-choice, single-task on-empty steals",
            ));
        }
        if !consumes.speeds && self.speeds != SpeedSpec::Homogeneous {
            return Err(unsupported(
                "speeds",
                "heterogeneous speeds are only modeled with threshold on-empty stealing",
            ));
        }
        Ok(())
    }

    /// Dispatch to the differential-equation model matching this spec.
    ///
    /// Every constructor consumes exactly the fields it supports; a
    /// non-default field nothing consumes is a typed
    /// [`UnsupportedSpec`] (the variant may still be simulable).
    pub fn mean_field(&self) -> Result<AnyModel, UnsupportedSpec> {
        let err = |e: String| unsupported("lambda", e);
        match self.policy {
            PolicySpec::NoSteal => {
                self.check_unconsumed(Consumes::default())?;
                NoSteal::new(self.lambda)
                    .map(AnyModel::NoSteal)
                    .map_err(err)
            }
            PolicySpec::OnEmpty {
                threshold,
                choices,
                batch,
            } => self.on_empty_mean_field(threshold, choices, batch),
            PolicySpec::Preemptive {
                begin_at,
                rel_threshold,
            } => {
                self.check_unconsumed(Consumes::default())?;
                Preemptive::new(self.lambda, begin_at, rel_threshold)
                    .map(AnyModel::Preemptive)
                    .map_err(err)
            }
            PolicySpec::Repeated { rate, threshold } => {
                self.check_unconsumed(Consumes::default())?;
                RepeatedSteal::new(self.lambda, rate, threshold)
                    .map(AnyModel::Repeated)
                    .map_err(err)
            }
            PolicySpec::Rebalance { rate, per_task } => {
                self.check_unconsumed(Consumes::default())?;
                let rate_fn = if per_task {
                    RebalanceRateFn::PerTask(rate)
                } else {
                    RebalanceRateFn::Constant(rate)
                };
                Rebalance::new(self.lambda, rate_fn)
                    .map(AnyModel::Rebalance)
                    .map_err(err)
            }
            PolicySpec::Share {
                send_threshold,
                recv_threshold,
            } => {
                self.check_unconsumed(Consumes::default())?;
                WorkSharing::new(self.lambda, send_threshold, recv_threshold)
                    .map(AnyModel::Share)
                    .map_err(err)
            }
        }
    }

    /// Dispatch within the on-empty steal family, where the §3
    /// refinements (service shape, arrival shape, transfer delay, speed
    /// classes) each have their own equations.
    fn on_empty_mean_field(
        &self,
        threshold: usize,
        choices: u32,
        batch: usize,
    ) -> Result<AnyModel, UnsupportedSpec> {
        let err = |e: String| unsupported("lambda", e);
        let single = choices == 1 && batch == 1;
        if let Some(rate) = self.transfer_rate {
            if !single {
                return Err(unsupported(
                    if batch == 1 { "choices" } else { "batch" },
                    "the §3.2 transfer-delay equations steal one task from one victim",
                ));
            }
            self.check_unconsumed(Consumes {
                transfer: true,
                ..Consumes::default()
            })?;
            return TransferWs::new(self.lambda, rate, threshold)
                .map(AnyModel::Transfer)
                .map_err(err);
        }
        match self.service {
            ServiceSpec::Erlang { stages } => {
                if !single {
                    return Err(unsupported(
                        if batch == 1 { "choices" } else { "batch" },
                        "the §3.1 Erlang-stage equations steal one task from one victim",
                    ));
                }
                self.check_unconsumed(Consumes {
                    service: true,
                    ..Consumes::default()
                })?;
                return ErlangStages::with_threshold(self.lambda, stages as usize, threshold)
                    .map(AnyModel::ErlangStages)
                    .map_err(err);
            }
            ServiceSpec::HyperExp { p, rate1, rate2 } => {
                if !single {
                    return Err(unsupported(
                        if batch == 1 { "choices" } else { "batch" },
                        "the §3.1 hyperexponential equations steal one task from one victim",
                    ));
                }
                self.check_unconsumed(Consumes {
                    service: true,
                    ..Consumes::default()
                })?;
                return HyperService::new(self.lambda, p, rate1, rate2, threshold)
                    .map(AnyModel::HyperService)
                    .map_err(err);
            }
            ServiceSpec::Deterministic => {
                return Err(unsupported(
                    "service",
                    "deterministic service has no exact mean-field model; \
                     approximate it with service=erlang:<large c>",
                ));
            }
            ServiceSpec::Exponential => {}
        }
        if let ArrivalSpec::Erlang { phases } = self.arrival {
            if !single {
                return Err(unsupported(
                    if batch == 1 { "choices" } else { "batch" },
                    "the §3.1 Erlang-arrival equations steal one task from one victim",
                ));
            }
            self.check_unconsumed(Consumes {
                arrival: true,
                ..Consumes::default()
            })?;
            return ErlangArrivals::new(self.lambda, phases as usize, threshold)
                .map(AnyModel::ErlangArrivals)
                .map_err(err);
        }
        if let SpeedSpec::TwoClass {
            fast_fraction,
            fast_rate,
            slow_rate,
        } = self.speeds
        {
            if !single {
                return Err(unsupported(
                    if batch == 1 { "choices" } else { "batch" },
                    "the §3.5 heterogeneous equations steal one task from one victim",
                ));
            }
            self.check_unconsumed(Consumes {
                speeds: true,
                ..Consumes::default()
            })?;
            return Heterogeneous::new(self.lambda, fast_fraction, fast_rate, slow_rate, threshold)
                .map(AnyModel::Heterogeneous)
                .map_err(err);
        }
        self.check_unconsumed(Consumes::default())?;
        match (threshold, choices, batch) {
            (2, 1, 1) => SimpleWs::new(self.lambda).map(AnyModel::SimpleWs),
            (t, 1, 1) => ThresholdWs::new(self.lambda, t).map(AnyModel::ThresholdWs),
            (t, d, 1) => MultiChoice::new(self.lambda, d, t).map(AnyModel::MultiChoice),
            (t, 1, k) => MultiSteal::new(self.lambda, k, t).map(AnyModel::MultiSteal),
            (t, d, k) => GeneralWs::new(self.lambda, t, d, k).map(AnyModel::GeneralWs),
        }
        .map_err(err)
    }

    /// Solve the fixed point of this spec's mean-field model with
    /// default options.
    pub fn fixed_point(&self) -> Result<FixedPoint, String> {
        let model = self.mean_field().map_err(|e| e.to_string())?;
        solve(&model, &FixedPointOptions::default()).map_err(|e| e.to_string())
    }

    /// [`ModelSpec::fixed_point`] with explicit options and a trace
    /// recorder for solver events.
    pub fn fixed_point_traced(
        &self,
        opts: &FixedPointOptions,
        rec: &mut dyn Recorder,
    ) -> Result<FixedPoint, String> {
        let model = self.mean_field().map_err(|e| e.to_string())?;
        solve_traced(&model, opts, rec).map_err(|e| e.to_string())
    }

    /// Parse the `--model` grammar (see the [module docs](self)). A
    /// leading preset name resolves through
    /// [`crate::registry::ModelRegistry::standard`]; later `key=value`
    /// pairs override. The result is validated.
    pub fn parse(s: &str) -> Result<Self, String> {
        parse::parse(s)
    }
}

impl std::str::FromStr for ModelSpec {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

impl std::fmt::Display for ModelSpec {
    /// The canonical spec string: `lambda` first, then the policy with
    /// all of its parameters, then only the non-default shape fields.
    /// Parsing this string reproduces the spec exactly (`f64` display
    /// round-trips).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lambda={}", self.lambda)?;
        match self.policy {
            PolicySpec::NoSteal => write!(f, ",policy=none")?,
            PolicySpec::OnEmpty {
                threshold,
                choices,
                batch,
            } => write!(f, ",policy=steal,T={threshold},d={choices},k={batch}")?,
            PolicySpec::Preemptive {
                begin_at,
                rel_threshold,
            } => write!(f, ",policy=preemptive,B={begin_at},T={rel_threshold}")?,
            PolicySpec::Repeated { rate, threshold } => {
                write!(f, ",policy=repeated,r={rate},T={threshold}")?
            }
            PolicySpec::Rebalance { rate, per_task } => {
                write!(f, ",policy=rebalance,r={rate}")?;
                if per_task {
                    write!(f, ",per-task=true")?;
                }
            }
            PolicySpec::Share {
                send_threshold,
                recv_threshold,
            } => write!(
                f,
                ",policy=share,send={send_threshold},recv={recv_threshold}"
            )?,
        }
        match self.service {
            ServiceSpec::Exponential => {}
            ServiceSpec::Erlang { stages } => write!(f, ",service=erlang:{stages}")?,
            ServiceSpec::Deterministic => write!(f, ",service=det")?,
            ServiceSpec::HyperExp { p, rate1, rate2 } => {
                write!(f, ",service=hyper:{p}:{rate1}:{rate2}")?
            }
        }
        if let ArrivalSpec::Erlang { phases } = self.arrival {
            write!(f, ",arrival=erlang:{phases}")?;
        }
        if let Some(rate) = self.transfer_rate {
            write!(f, ",transfer={rate}")?;
        }
        if let SpeedSpec::TwoClass {
            fast_fraction,
            fast_rate,
            slow_rate,
        } = self.speeds
        {
            write!(f, ",speeds=classes:{fast_fraction}:{fast_rate}:{slow_rate}")?;
        }
        Ok(())
    }
}

/// A mean-field model dispatched from a [`ModelSpec`].
///
/// [`MeanFieldModel`] is not object-safe (`with_truncation` returns
/// `Self`), so dynamic dispatch goes through this enum; every method
/// delegates to the wrapped concrete model.
#[derive(Debug, Clone)]
#[allow(missing_docs)] // variants mirror the concrete model names
pub enum AnyModel {
    NoSteal(NoSteal),
    SimpleWs(SimpleWs),
    ThresholdWs(ThresholdWs),
    MultiChoice(MultiChoice),
    MultiSteal(MultiSteal),
    GeneralWs(GeneralWs),
    Preemptive(Preemptive),
    Repeated(RepeatedSteal),
    Rebalance(Rebalance),
    Share(WorkSharing),
    ErlangStages(ErlangStages),
    ErlangArrivals(ErlangArrivals),
    HyperService(HyperService),
    Transfer(TransferWs),
    Heterogeneous(Heterogeneous),
}

macro_rules! delegate {
    ($self:expr, $m:ident => $body:expr) => {
        match $self {
            AnyModel::NoSteal($m) => $body,
            AnyModel::SimpleWs($m) => $body,
            AnyModel::ThresholdWs($m) => $body,
            AnyModel::MultiChoice($m) => $body,
            AnyModel::MultiSteal($m) => $body,
            AnyModel::GeneralWs($m) => $body,
            AnyModel::Preemptive($m) => $body,
            AnyModel::Repeated($m) => $body,
            AnyModel::Rebalance($m) => $body,
            AnyModel::Share($m) => $body,
            AnyModel::ErlangStages($m) => $body,
            AnyModel::ErlangArrivals($m) => $body,
            AnyModel::HyperService($m) => $body,
            AnyModel::Transfer($m) => $body,
            AnyModel::Heterogeneous($m) => $body,
        }
    };
}

macro_rules! delegate_rewrap {
    ($self:expr, $m:ident => $body:expr) => {
        match $self {
            AnyModel::NoSteal($m) => AnyModel::NoSteal($body),
            AnyModel::SimpleWs($m) => AnyModel::SimpleWs($body),
            AnyModel::ThresholdWs($m) => AnyModel::ThresholdWs($body),
            AnyModel::MultiChoice($m) => AnyModel::MultiChoice($body),
            AnyModel::MultiSteal($m) => AnyModel::MultiSteal($body),
            AnyModel::GeneralWs($m) => AnyModel::GeneralWs($body),
            AnyModel::Preemptive($m) => AnyModel::Preemptive($body),
            AnyModel::Repeated($m) => AnyModel::Repeated($body),
            AnyModel::Rebalance($m) => AnyModel::Rebalance($body),
            AnyModel::Share($m) => AnyModel::Share($body),
            AnyModel::ErlangStages($m) => AnyModel::ErlangStages($body),
            AnyModel::ErlangArrivals($m) => AnyModel::ErlangArrivals($body),
            AnyModel::HyperService($m) => AnyModel::HyperService($body),
            AnyModel::Transfer($m) => AnyModel::Transfer($body),
            AnyModel::Heterogeneous($m) => AnyModel::Heterogeneous($body),
        }
    };
}

impl OdeSystem for AnyModel {
    fn dim(&self) -> usize {
        delegate!(self, m => m.dim())
    }
    fn deriv(&self, t: f64, y: &[f64], dy: &mut [f64]) {
        delegate!(self, m => m.deriv(t, y, dy))
    }
    fn project(&self, y: &mut [f64]) {
        delegate!(self, m => m.project(y))
    }
}

impl MeanFieldModel for AnyModel {
    fn name(&self) -> String {
        delegate!(self, m => m.name())
    }
    fn lambda(&self) -> f64 {
        delegate!(self, m => m.lambda())
    }
    fn truncation(&self) -> usize {
        delegate!(self, m => m.truncation())
    }
    fn with_truncation(&self, levels: usize) -> Self {
        delegate_rewrap!(self, m => m.with_truncation(levels))
    }
    fn empty_state(&self) -> Vec<f64> {
        delegate!(self, m => m.empty_state())
    }
    fn mean_tasks(&self, y: &[f64]) -> f64 {
        delegate!(self, m => m.mean_tasks(y))
    }
    fn task_tails(&self, y: &[f64]) -> Vec<f64> {
        delegate!(self, m => m.task_tails(y))
    }
    fn boundary_mass(&self, y: &[f64]) -> f64 {
        delegate!(self, m => m.boundary_mass(y))
    }
    fn mean_time_in_system(&self, y: &[f64]) -> f64 {
        delegate!(self, m => m.mean_time_in_system(y))
    }
}

mod parse {
    use super::*;

    /// One `key=value` segment, position-tagged for error messages.
    struct Pair<'a> {
        key: &'a str,
        value: &'a str,
    }

    pub(super) fn parse(s: &str) -> Result<ModelSpec, String> {
        let s = s.trim();
        if s.is_empty() {
            return Err("empty model spec".into());
        }
        let mut segments = s.split(',');
        let first = segments.next().unwrap_or_default().trim();
        let (mut spec, mut lambda_set) = if first.contains('=') {
            (ModelSpec::simple_ws(f64::NAN), false)
        } else {
            let registry = crate::registry::ModelRegistry::standard();
            match registry.get(first) {
                Some(preset) => (preset.spec.clone(), true),
                None => {
                    return Err(format!(
                        "unknown model preset {first:?} (run `loadsteal models` to list presets, \
                         or pass key=val pairs like lambda=0.9,policy=steal,T=4)"
                    ));
                }
            }
        };
        let mut pairs: Vec<Pair> = Vec::new();
        let rest = if first.contains('=') {
            std::iter::once(first).chain(segments)
        } else {
            // Consumed the preset name; iterate the remaining segments.
            #[allow(clippy::iter_skip_zero)]
            std::iter::once("").chain(segments)
        };
        for seg in rest {
            let seg = seg.trim();
            if seg.is_empty() {
                continue;
            }
            let Some((key, value)) = seg.split_once('=') else {
                return Err(format!(
                    "expected key=value, got {seg:?} (only the first segment may be a preset name)"
                ));
            };
            pairs.push(Pair {
                key: key.trim(),
                value: value.trim(),
            });
        }

        // Policy first: it decides which parameter keys are meaningful.
        // Later occurrences of any key win (that is what makes
        // `preset,lambda=0.8` overrides work).
        if let Some(p) = pairs.iter().rev().find(|p| p.key == "policy") {
            spec.policy = default_policy(p.value)?;
        }
        let mut consumed = vec![false; pairs.len()];
        for (i, p) in pairs.iter().enumerate() {
            if p.key == "policy" {
                consumed[i] = true;
            }
        }
        // Everything else, last occurrence wins: walk in order so a
        // later pair simply overwrites.
        for (i, p) in pairs.iter().enumerate() {
            if consumed[i] {
                continue;
            }
            let used = apply_pair(&mut spec, p, &mut lambda_set)?;
            if used {
                consumed[i] = true;
            }
        }
        for (i, p) in pairs.iter().enumerate() {
            if !consumed[i] {
                return Err(format!(
                    "key {:?} does not apply to policy {:?}",
                    p.key,
                    policy_name(&spec.policy)
                ));
            }
        }
        if !lambda_set {
            return Err("model spec needs lambda=<rate> (or a preset name)".into());
        }
        spec.validate()?;
        Ok(spec)
    }

    fn policy_name(p: &PolicySpec) -> &'static str {
        match p {
            PolicySpec::NoSteal => "none",
            PolicySpec::OnEmpty { .. } => "steal",
            PolicySpec::Preemptive { .. } => "preemptive",
            PolicySpec::Repeated { .. } => "repeated",
            PolicySpec::Rebalance { .. } => "rebalance",
            PolicySpec::Share { .. } => "share",
        }
    }

    /// A policy keyword with its parameter defaults; `T=`/`r=`/… pairs
    /// then overwrite individual fields.
    fn default_policy(name: &str) -> Result<PolicySpec, String> {
        Ok(match name {
            "none" => PolicySpec::NoSteal,
            "steal" => PolicySpec::OnEmpty {
                threshold: 2,
                choices: 1,
                batch: 1,
            },
            "preemptive" => PolicySpec::Preemptive {
                begin_at: 1,
                rel_threshold: 2,
            },
            "repeated" => PolicySpec::Repeated {
                rate: 1.0,
                threshold: 2,
            },
            "rebalance" => PolicySpec::Rebalance {
                rate: 1.0,
                per_task: false,
            },
            "share" => PolicySpec::Share {
                send_threshold: 2,
                recv_threshold: 1,
            },
            other => {
                return Err(format!(
                    "unknown policy {other:?} (none|steal|preemptive|repeated|rebalance|share)"
                ))
            }
        })
    }

    fn num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
        value
            .parse()
            .map_err(|_| format!("{key}={value:?} is not a valid number"))
    }

    /// Apply one pair to the spec; returns whether the key applied.
    fn apply_pair(spec: &mut ModelSpec, p: &Pair, lambda_set: &mut bool) -> Result<bool, String> {
        let Pair { key, value } = *p;
        match key {
            "lambda" | "l" => {
                spec.lambda = num(key, value)?;
                *lambda_set = true;
            }
            "T" | "threshold" => match &mut spec.policy {
                PolicySpec::OnEmpty { threshold, .. } | PolicySpec::Repeated { threshold, .. } => {
                    *threshold = num(key, value)?
                }
                PolicySpec::Preemptive { rel_threshold, .. } => *rel_threshold = num(key, value)?,
                _ => return Ok(false),
            },
            "d" | "choices" => match &mut spec.policy {
                PolicySpec::OnEmpty { choices, .. } => *choices = num(key, value)?,
                _ => return Ok(false),
            },
            "k" | "batch" => match &mut spec.policy {
                PolicySpec::OnEmpty { batch, .. } => *batch = num(key, value)?,
                _ => return Ok(false),
            },
            "B" | "begin" => match &mut spec.policy {
                PolicySpec::Preemptive { begin_at, .. } => *begin_at = num(key, value)?,
                _ => return Ok(false),
            },
            "r" | "rate" => match &mut spec.policy {
                PolicySpec::Repeated { rate, .. } | PolicySpec::Rebalance { rate, .. } => {
                    *rate = num(key, value)?
                }
                _ => return Ok(false),
            },
            "per-task" => match &mut spec.policy {
                PolicySpec::Rebalance { per_task, .. } => {
                    *per_task = match value {
                        "true" => true,
                        "false" => false,
                        _ => return Err(format!("per-task={value:?} must be true or false")),
                    }
                }
                _ => return Ok(false),
            },
            "send" => match &mut spec.policy {
                PolicySpec::Share { send_threshold, .. } => *send_threshold = num(key, value)?,
                _ => return Ok(false),
            },
            "recv" => match &mut spec.policy {
                PolicySpec::Share { recv_threshold, .. } => *recv_threshold = num(key, value)?,
                _ => return Ok(false),
            },
            "service" => spec.service = parse_service(value)?,
            "arrival" => spec.arrival = parse_arrival(value)?,
            "transfer" => spec.transfer_rate = Some(num(key, value)?),
            "speeds" => spec.speeds = parse_speeds(value)?,
            other => return Err(format!("unknown spec key {other:?}")),
        }
        Ok(true)
    }

    fn parse_service(value: &str) -> Result<ServiceSpec, String> {
        let mut parts = value.split(':');
        let kind = parts.next().unwrap_or_default();
        let args: Vec<&str> = parts.collect();
        match (kind, args.as_slice()) {
            ("exp", []) => Ok(ServiceSpec::Exponential),
            ("det", []) => Ok(ServiceSpec::Deterministic),
            ("erlang", [stages]) => Ok(ServiceSpec::Erlang {
                stages: num("service=erlang", stages)?,
            }),
            ("hyper", [p, rate1, rate2]) => Ok(ServiceSpec::HyperExp {
                p: num("service=hyper p", p)?,
                rate1: num("service=hyper rate1", rate1)?,
                rate2: num("service=hyper rate2", rate2)?,
            }),
            _ => Err(format!(
                "service={value:?} must be exp, det, erlang:<stages>, or hyper:<p>:<rate1>:<rate2>"
            )),
        }
    }

    fn parse_arrival(value: &str) -> Result<ArrivalSpec, String> {
        let mut parts = value.split(':');
        let kind = parts.next().unwrap_or_default();
        let args: Vec<&str> = parts.collect();
        match (kind, args.as_slice()) {
            ("poisson", []) => Ok(ArrivalSpec::Poisson),
            ("erlang", [phases]) => Ok(ArrivalSpec::Erlang {
                phases: num("arrival=erlang", phases)?,
            }),
            _ => Err(format!(
                "arrival={value:?} must be poisson or erlang:<phases>"
            )),
        }
    }

    fn parse_speeds(value: &str) -> Result<SpeedSpec, String> {
        let mut parts = value.split(':');
        let kind = parts.next().unwrap_or_default();
        let args: Vec<&str> = parts.collect();
        match (kind, args.as_slice()) {
            ("homogeneous", []) => Ok(SpeedSpec::Homogeneous),
            ("classes", [frac, fast, slow]) => Ok(SpeedSpec::TwoClass {
                fast_fraction: num("speeds=classes fraction", frac)?,
                fast_rate: num("speeds=classes fast", fast)?,
                slow_rate: num("speeds=classes slow", slow)?,
            }),
            _ => Err(format!(
                "speeds={value:?} must be homogeneous or classes:<fraction>:<fast>:<slow>"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_elides_defaults() {
        let spec = ModelSpec::simple_ws(0.9);
        assert_eq!(spec.to_string(), "lambda=0.9,policy=steal,T=2,d=1,k=1");
    }

    #[test]
    fn parse_roundtrips_canonical_string() {
        let spec = ModelSpec {
            lambda: 0.85,
            arrival: ArrivalSpec::Erlang { phases: 5 },
            service: ServiceSpec::Erlang { stages: 10 },
            policy: PolicySpec::OnEmpty {
                threshold: 6,
                choices: 1,
                batch: 3,
            },
            transfer_rate: None,
            speeds: SpeedSpec::Homogeneous,
        };
        // This combination has no mean-field model, but it must still
        // round-trip through the grammar.
        assert_eq!(ModelSpec::parse(&spec.to_string()), Ok(spec));
    }

    #[test]
    fn preset_name_with_override() {
        let spec = ModelSpec::parse("simple-ws,lambda=0.5").unwrap();
        assert_eq!(spec, ModelSpec::simple_ws(0.5));
    }

    #[test]
    fn later_keys_win() {
        let spec = ModelSpec::parse("lambda=0.9,lambda=0.7").unwrap();
        assert_eq!(spec.lambda, 0.7);
    }

    #[test]
    fn policy_param_for_wrong_policy_rejected() {
        let err = ModelSpec::parse("lambda=0.9,policy=none,T=4").unwrap_err();
        assert!(err.contains("does not apply"), "{err}");
    }

    #[test]
    fn unknown_key_rejected() {
        let err = ModelSpec::parse("lambda=0.9,frobnicate=2").unwrap_err();
        assert!(err.contains("unknown spec key"), "{err}");
    }

    #[test]
    fn unknown_preset_rejected() {
        let err = ModelSpec::parse("bogus-preset").unwrap_err();
        assert!(err.contains("unknown model preset"), "{err}");
    }

    #[test]
    fn missing_lambda_rejected() {
        let err = ModelSpec::parse("policy=steal,T=4").unwrap_err();
        assert!(err.contains("lambda"), "{err}");
    }

    #[test]
    fn invalid_batch_rejected_by_validate() {
        let err = ModelSpec::parse("lambda=0.9,policy=steal,T=4,k=3").unwrap_err();
        assert!(err.contains("1 ≤ k ≤ T/2"), "{err}");
    }

    #[test]
    fn simple_ws_dispatch_matches_closed_form() {
        let spec = ModelSpec::simple_ws(0.9);
        let fp = spec.fixed_point().unwrap();
        assert!((fp.mean_time_in_system - 3.541).abs() < 5e-3);
    }

    #[test]
    fn dispatch_covers_every_policy() {
        let cases = [
            ("lambda=0.8,policy=none", "no stealing"),
            ("lambda=0.9,policy=steal,T=2", "simple WS"),
            ("lambda=0.85,policy=steal,T=4", "threshold WS"),
            ("lambda=0.9,policy=steal,T=2,d=2", "multi-choice WS"),
            ("lambda=0.85,policy=steal,T=6,k=3", "multi-steal WS"),
            ("lambda=0.9,policy=steal,T=6,d=2,k=3", "general WS"),
            ("lambda=0.85,policy=preemptive,B=1,T=3", "preemptive WS"),
            ("lambda=0.9,policy=repeated,r=2,T=2", "repeated-attempt WS"),
            ("lambda=0.8,policy=rebalance,r=0.5", "rebalanc"),
            ("lambda=0.9,policy=share,send=2,recv=2", "work sharing"),
            (
                "lambda=0.8,policy=steal,T=2,service=erlang:20",
                "erlang-stage WS",
            ),
            (
                "lambda=0.8,policy=steal,T=2,arrival=erlang:5",
                "erlang-arrival WS",
            ),
            ("lambda=0.8,policy=steal,T=4,transfer=0.25", "transfer WS"),
            (
                "lambda=0.8,policy=steal,T=2,service=hyper:0.1:0.2:1.8",
                "hyperexp-service WS",
            ),
            (
                "lambda=0.8,policy=steal,T=2,speeds=classes:0.5:1.2:0.9",
                "heterogeneous WS",
            ),
        ];
        for (s, name_fragment) in cases {
            let spec = ModelSpec::parse(s).unwrap();
            let model = spec.mean_field().unwrap_or_else(|e| panic!("{s}: {e}"));
            let name = model.name();
            assert!(
                name.contains(name_fragment),
                "{s} dispatched to {name:?}, expected a name containing {name_fragment:?}"
            );
        }
    }

    #[test]
    fn cross_product_threshold_erlang_dispatches() {
        let spec = ModelSpec::parse("lambda=0.8,policy=steal,T=4,service=erlang:10").unwrap();
        let fp = spec.fixed_point().unwrap();
        // Busy fraction equals λ for any conservative unit-speed system.
        assert!((fp.task_tails[1] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn unsupported_combination_is_typed() {
        // Multi-choice stealing with transfer delays has no equations.
        let spec = ModelSpec::parse("lambda=0.8,policy=steal,T=4,d=2,transfer=0.25").unwrap();
        let err = spec.mean_field().unwrap_err();
        assert_eq!(err.field, "choices");
        // ... but bursty service with rebalancing fails on the service field.
        let spec = ModelSpec::parse("lambda=0.8,policy=rebalance,r=0.5,service=erlang:4").unwrap();
        assert_eq!(spec.mean_field().unwrap_err().field, "service");
    }

    #[test]
    fn deterministic_service_unsupported_but_parsable() {
        let spec = ModelSpec::parse("lambda=0.8,policy=steal,T=2,service=det").unwrap();
        let err = spec.mean_field().unwrap_err();
        assert_eq!(err.field, "service");
    }

    #[test]
    fn dominance_flags_match_zoo_conventions() {
        let hetero =
            ModelSpec::parse("lambda=0.8,policy=steal,T=2,speeds=classes:0.5:1.2:0.9").unwrap();
        assert!(!hetero.busy_is_lambda());
        assert!(!hetero.dominates_no_steal());
        let hyper =
            ModelSpec::parse("lambda=0.8,policy=steal,T=2,service=hyper:0.1:0.2:1.8").unwrap();
        assert!(hyper.busy_is_lambda());
        assert!(!hyper.dominates_no_steal(), "scv {}", hyper.service.scv());
        assert!(ModelSpec::simple_ws(0.9).dominates_no_steal());
        assert!(!ModelSpec::parse("lambda=0.8,policy=none")
            .unwrap()
            .dominates_no_steal());
    }

    #[test]
    fn any_model_retruncates_in_place() {
        let spec = ModelSpec::simple_ws(0.9);
        let m = spec.mean_field().unwrap();
        let bigger = m.with_truncation(m.truncation() + 8);
        assert_eq!(bigger.truncation(), m.truncation() + 8);
        assert_eq!(bigger.name(), m.name());
    }
}
