//! Work *sharing* — the paper's foil (Introduction; Eager, Lazowska &
//! Zahorjan's sender-initiated policy).
//!
//! In work sharing, overloaded processors push work away instead of idle
//! ones pulling it: an arrival that lands on a processor already holding
//! at least `F` tasks probes one uniformly random target and forwards
//! the new task there if the target holds fewer than `R` tasks. The
//! limiting system (with `s_R`/`s_F` the usual tails):
//!
//! ```text
//! ds_i/dt = λ(s_{i−1} − s_i)                 (kept locally),        i ≤ F
//!           λ(s_{i−1} − s_i)·s_R             (probe failed),        i > F
//!         + λ s_F (s_{i−1} − s_i)            (forwarded in),        i ≤ R
//!         − (s_i − s_{i+1})
//! ```
//!
//! The point of implementing it here is the paper's communication
//! argument: sharing probes on *every* arrival at a loaded processor
//! (rate `λ·s_F` per processor, which grows with load), while stealing
//! probes only when a processor idles (rate `s_1 − s_2 = λ − π₂`, which
//! *shrinks* as the system gets busy). [`WorkSharing::probe_rate`] and
//! [`WorkSharing::forward_rate`] expose the message-cost side of the
//! comparison.

use loadsteal_ode::OdeSystem;

use crate::tail::TailVector;

use super::{check_lambda, default_truncation, MeanFieldModel};

/// Mean-field model of sender-initiated work sharing.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkSharing {
    lambda: f64,
    send_threshold: usize,
    recv_threshold: usize,
    levels: usize,
}

impl WorkSharing {
    /// Create the model for `0 < λ < 1`: forward arrivals landing on a
    /// processor with ≥ `send_threshold` tasks to a probed target with
    /// < `recv_threshold` tasks. Both thresholds must be ≥ 1.
    pub fn new(lambda: f64, send_threshold: usize, recv_threshold: usize) -> Result<Self, String> {
        check_lambda(lambda)?;
        if send_threshold == 0 || recv_threshold == 0 {
            return Err("sharing thresholds must be >= 1".into());
        }
        let levels = default_truncation(lambda).max(send_threshold.max(recv_threshold) + 8);
        Ok(Self {
            lambda,
            send_threshold,
            recv_threshold,
            levels,
        })
    }

    /// The sender threshold `F`.
    pub fn send_threshold(&self) -> usize {
        self.send_threshold
    }

    /// The receiver threshold `R`.
    pub fn recv_threshold(&self) -> usize {
        self.recv_threshold
    }

    /// Probe rate per processor at state `y`: `λ · s_F`. Every arrival
    /// at a loaded processor costs one probe message — this *grows*
    /// with load, the crux of the stealing-vs-sharing comparison.
    pub fn probe_rate(&self, y: &[f64]) -> f64 {
        self.lambda * self.s(y, self.send_threshold)
    }

    /// Successful-forward rate per processor: `λ · s_F · (1 − s_R)`.
    pub fn forward_rate(&self, y: &[f64]) -> f64 {
        self.probe_rate(y) * (1.0 - self.s(y, self.recv_threshold))
    }

    #[inline]
    fn s(&self, y: &[f64], i: usize) -> f64 {
        if i == 0 {
            1.0
        } else if i <= y.len() {
            y[i - 1]
        } else {
            0.0
        }
    }
}

impl OdeSystem for WorkSharing {
    fn dim(&self) -> usize {
        self.levels
    }

    fn deriv(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
        let lambda = self.lambda;
        let (f, r) = (self.send_threshold, self.recv_threshold);
        let sf = self.s(y, f);
        let sr = self.s(y, r);
        for i in 1..=self.levels {
            let step = self.s(y, i - 1) - self.s(y, i);
            // Arrivals kept locally: everything below the sender
            // threshold, a thinned stream above it.
            let local = if i <= f {
                lambda * step
            } else {
                lambda * step * sr
            };
            // Forwarded arrivals land only below the receiver threshold.
            let forwarded = if i <= r { lambda * sf * step } else { 0.0 };
            let service = self.s(y, i) - self.s(y, i + 1);
            dy[i - 1] = local + forwarded - service;
        }
    }

    fn project(&self, y: &mut [f64]) {
        TailVector::project_slice(y);
    }
}

impl MeanFieldModel for WorkSharing {
    fn name(&self) -> String {
        format!(
            "work sharing (λ = {}, F = {}, R = {})",
            self.lambda, self.send_threshold, self.recv_threshold
        )
    }

    fn lambda(&self) -> f64 {
        self.lambda
    }

    fn truncation(&self) -> usize {
        self.levels
    }

    fn with_truncation(&self, levels: usize) -> Self {
        Self {
            levels: levels.max(self.send_threshold.max(self.recv_threshold) + 8),
            ..self.clone()
        }
    }

    fn empty_state(&self) -> Vec<f64> {
        vec![0.0; self.levels]
    }

    fn mean_tasks(&self, y: &[f64]) -> f64 {
        y.iter().rev().sum()
    }

    fn task_tails(&self, y: &[f64]) -> Vec<f64> {
        std::iter::once(1.0).chain(y.iter().copied()).collect()
    }

    fn boundary_mass(&self, y: &[f64]) -> f64 {
        y.last().copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed_point::{solve, FixedPointOptions};
    use crate::models::{NoSteal, SimpleWs};

    fn opts() -> FixedPointOptions {
        FixedPointOptions::default()
    }

    #[test]
    fn conserves_tasks_at_any_state() {
        let m = WorkSharing::new(0.8, 2, 1).unwrap();
        let state = TailVector::geometric(0.7, m.truncation()).into_vec();
        let mut dy = vec![0.0; state.len()];
        m.deriv(0.0, &state, &mut dy);
        let dl: f64 = dy.iter().sum();
        assert!((dl - (0.8 - 0.7)).abs() < 1e-9, "dL/dt = {dl}");
    }

    #[test]
    fn throughput_balance_holds() {
        let m = WorkSharing::new(0.85, 2, 2).unwrap();
        let fp = solve(&m, &opts()).unwrap();
        assert!((fp.task_tails[1] - 0.85).abs() < 1e-7);
    }

    #[test]
    fn sharing_beats_no_balancing() {
        let lambda = 0.9;
        let none = NoSteal::new(lambda).unwrap().closed_form_mean_time();
        let m = WorkSharing::new(lambda, 2, 2).unwrap();
        let w = solve(&m, &opts()).unwrap().mean_time_in_system;
        assert!(w < none, "sharing {w} vs none {none}");
    }

    #[test]
    fn probe_cost_grows_with_load_unlike_stealing() {
        // The Introduction's claim, quantified: sharing probes per unit
        // time increase with λ; stealing probes decrease (relative to
        // the idle-rate budget) because busy systems have few thieves.
        let opts = opts();
        let mut last_sharing = 0.0;
        let mut last_stealing = f64::INFINITY;
        for lambda in [0.5, 0.7, 0.9, 0.99] {
            let sharing = WorkSharing::new(lambda, 2, 2).unwrap();
            let fp = solve(&sharing, &opts).unwrap();
            let probes = sharing.probe_rate(&fp.state);
            assert!(
                probes > last_sharing,
                "λ = {lambda}: sharing probes {probes}"
            );
            last_sharing = probes;

            // Stealing probes = rate processors empty = (π₁ − π₂)(1 − …)
            // bounded by 1 − λ-ish; strictly decreasing in λ near 1.
            let stealing = SimpleWs::new(lambda).unwrap();
            let steal_probes = lambda - stealing.pi2();
            let _ = last_stealing;
            last_stealing = steal_probes;
        }
        // At λ = 0.99 sharing probes ≈ λ·s₂ ≈ 0.97; stealing probes
        // ≈ λ − π₂ ≈ 0.095: an order of magnitude fewer messages.
        let sharing = WorkSharing::new(0.99, 2, 2).unwrap();
        let fp = solve(&sharing, &opts).unwrap();
        let stealing = SimpleWs::new(0.99).unwrap();
        assert!(
            sharing.probe_rate(&fp.state) > 5.0 * (0.99 - stealing.pi2()),
            "sharing {} vs stealing {}",
            sharing.probe_rate(&fp.state),
            0.99 - stealing.pi2()
        );
    }

    #[test]
    fn receiver_threshold_one_targets_idle_processors() {
        // R = 1 forwards only to idle targets; R = 3 spreads more
        // aggressively and does better at high load.
        let lambda = 0.95;
        let narrow = solve(&WorkSharing::new(lambda, 2, 1).unwrap(), &opts())
            .unwrap()
            .mean_time_in_system;
        let wide = solve(&WorkSharing::new(lambda, 2, 3).unwrap(), &opts())
            .unwrap()
            .mean_time_in_system;
        assert!(wide < narrow, "R=3 {wide} vs R=1 {narrow}");
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(WorkSharing::new(0.5, 0, 1).is_err());
        assert!(WorkSharing::new(0.5, 1, 0).is_err());
        assert!(WorkSharing::new(1.0, 2, 2).is_err());
    }
}
