//! Multi-task steals — Section 3.4.
//!
//! With a high threshold `T` it pays to take more than one task per
//! steal: here a successful steal takes exactly `k ≤ T/2` tasks from the
//! victim's tail (the victim keeps at least `T − k ≥ k` tasks). A steal
//! now moves several levels at once:
//!
//! ```text
//! ds_1/dt = λ(s_0 − s_1) − (s_1 − s_2)(1 − s_T)
//! ds_i/dt = λ(s_{i−1} − s_i) − (s_i − s_{i+1}) + (s_1 − s_2) s_T,        2 ≤ i ≤ k
//! ds_i/dt = λ(s_{i−1} − s_i) − (s_i − s_{i+1}),                          k+1 ≤ i ≤ T−k
//! ds_i/dt = λ(s_{i−1} − s_i) − (s_i − s_{i+1})
//!              − (s_1 − s_2)(s_T − s_{i+k}),                             T−k+1 ≤ i ≤ T
//! ds_i/dt = λ(s_{i−1} − s_i) − (s_i − s_{i+1})
//!              − (s_1 − s_2)(s_i − s_{i+k}),                             i ≥ T+1
//! ```
//!
//! The gain term `(s_1 − s_2) s_T` on levels `≤ k` is the thief jumping
//! from 0 to k tasks; the loss terms are victims dropping k levels.

use loadsteal_ode::OdeSystem;

use crate::tail::TailVector;

use super::{check_lambda, default_truncation, MeanFieldModel};

/// Mean-field model of threshold stealing that takes `k` tasks per
/// steal.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSteal {
    lambda: f64,
    batch: usize,
    threshold: usize,
    levels: usize,
}

impl MultiSteal {
    /// Create the model for `0 < λ < 1`, batch `k ≥ 1`, threshold
    /// `T ≥ 2` with `2k ≤ T`.
    pub fn new(lambda: f64, batch: usize, threshold: usize) -> Result<Self, String> {
        check_lambda(lambda)?;
        if threshold < 2 {
            return Err(format!("threshold must be >= 2, got {threshold}"));
        }
        if batch == 0 || batch * 2 > threshold {
            return Err(format!(
                "batch k must satisfy 1 <= k <= T/2 (got k = {batch}, T = {threshold})"
            ));
        }
        let levels = default_truncation(lambda).max(threshold + batch + 8);
        Ok(Self {
            lambda,
            batch,
            threshold,
            levels,
        })
    }

    /// The batch size `k`.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The victim threshold `T`.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    #[inline]
    fn s(&self, y: &[f64], i: usize) -> f64 {
        if i == 0 {
            1.0
        } else if i <= y.len() {
            y[i - 1]
        } else {
            0.0
        }
    }
}

impl OdeSystem for MultiSteal {
    fn dim(&self) -> usize {
        self.levels
    }

    fn deriv(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
        let lambda = self.lambda;
        let (k, t) = (self.batch, self.threshold);
        let s1 = self.s(y, 1);
        let s2 = self.s(y, 2);
        let st = self.s(y, t);
        let thief_rate = s1 - s2;
        dy[0] = lambda * (1.0 - s1) - thief_rate * (1.0 - st);
        for i in 2..=self.levels {
            let flow = lambda * (self.s(y, i - 1) - self.s(y, i));
            let dep = self.s(y, i) - self.s(y, i + 1);
            let steal = if i <= k {
                // Thief jumps 0 → k, lifting every level up to k.
                thief_rate * st
            } else if i <= t - k {
                0.0
            } else if i <= t {
                // Victims with load in [T, i+k−1] drop below i.
                -thief_rate * (st - self.s(y, i + k))
            } else {
                // Victims with load in [i, i+k−1] drop below i.
                -thief_rate * (self.s(y, i) - self.s(y, i + k))
            };
            dy[i - 1] = flow - dep + steal;
        }
    }

    fn project(&self, y: &mut [f64]) {
        TailVector::project_slice(y);
    }
}

impl MeanFieldModel for MultiSteal {
    fn name(&self) -> String {
        format!(
            "multi-steal WS (λ = {}, k = {}, T = {})",
            self.lambda, self.batch, self.threshold
        )
    }

    fn lambda(&self) -> f64 {
        self.lambda
    }

    fn truncation(&self) -> usize {
        self.levels
    }

    fn with_truncation(&self, levels: usize) -> Self {
        Self {
            levels: levels.max(self.threshold + self.batch + 8),
            ..self.clone()
        }
    }

    fn empty_state(&self) -> Vec<f64> {
        vec![0.0; self.levels]
    }

    fn mean_tasks(&self, y: &[f64]) -> f64 {
        y.iter().rev().sum()
    }

    fn task_tails(&self, y: &[f64]) -> Vec<f64> {
        std::iter::once(1.0).chain(y.iter().copied()).collect()
    }

    fn boundary_mass(&self, y: &[f64]) -> f64 {
        y.last().copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed_point::{solve, FixedPointOptions};
    use crate::models::ThresholdWs;

    fn opts() -> FixedPointOptions {
        FixedPointOptions::default()
    }

    #[test]
    fn k1_reduces_to_threshold_model() {
        for (lambda, t) in [(0.7, 4), (0.9, 6)] {
            let m = MultiSteal::new(lambda, 1, t).unwrap();
            let fp = solve(&m, &opts()).unwrap();
            let exact = ThresholdWs::new(lambda, t).unwrap().closed_form_mean_time();
            assert!(
                (fp.mean_time_in_system - exact).abs() < 1e-6,
                "λ = {lambda}, T = {t}: {} vs {exact}",
                fp.mean_time_in_system
            );
        }
    }

    #[test]
    fn stealing_more_helps_with_high_threshold() {
        // Section 3.4: with instant transfers, equalizing harder is
        // better — k = 3 beats k = 1 at T = 6.
        let lambda = 0.9;
        let w1 = solve(&MultiSteal::new(lambda, 1, 6).unwrap(), &opts())
            .unwrap()
            .mean_time_in_system;
        let w3 = solve(&MultiSteal::new(lambda, 3, 6).unwrap(), &opts())
            .unwrap()
            .mean_time_in_system;
        assert!(w3 < w1, "k=3 {w3} vs k=1 {w1}");
    }

    #[test]
    fn batch_gain_is_monotone_in_k() {
        let lambda = 0.95;
        let t = 8;
        let mut last = f64::INFINITY;
        for k in 1..=4 {
            let w = solve(&MultiSteal::new(lambda, k, t).unwrap(), &opts())
                .unwrap()
                .mean_time_in_system;
            assert!(w < last, "k = {k}: {w} !< {last}");
            last = w;
        }
    }

    #[test]
    fn throughput_balance_holds() {
        let m = MultiSteal::new(0.85, 2, 5).unwrap();
        let fp = solve(&m, &opts()).unwrap();
        assert!((fp.task_tails[1] - 0.85).abs() < 1e-8);
    }

    #[test]
    fn mass_conservation_of_steal_terms() {
        // A steal moves k tasks: the net change of Σ_i s_i from steal
        // terms alone must be 0 per steal... i.e. the gain on levels
        // ≤ k equals the loss on levels > T−k. Check dL/dt equals
        // arrivals − services at a random interior state.
        let m = MultiSteal::new(0.8, 2, 6).unwrap();
        let state = crate::tail::TailVector::geometric(0.7, m.truncation()).into_vec();
        let mut dy = vec![0.0; state.len()];
        m.deriv(0.0, &state, &mut dy);
        let dl: f64 = dy.iter().sum();
        // Arrivals − services = λ − s_1 (per processor); steals conserve
        // tasks, so dL/dt must equal it (up to truncation leakage).
        let expect = 0.8 - 0.7;
        assert!(
            (dl - expect).abs() < 1e-9,
            "dL/dt = {dl}, expected {expect}"
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(MultiSteal::new(0.5, 0, 4).is_err());
        assert!(MultiSteal::new(0.5, 3, 4).is_err()); // 2k > T
        assert!(MultiSteal::new(0.5, 2, 4).is_ok());
    }
}
