//! Preemptive stealing — Section 2.4.
//!
//! Rather than waiting until it is empty, a processor starts stealing
//! when its queue drops to `B` tasks: a completion that leaves
//! `j ≤ B` tasks triggers an attempt against a victim holding at least
//! `j + T` tasks. The limiting system:
//!
//! ```text
//! ds_i/dt = λ(s_{i−1} − s_i) − (s_i − s_{i+1})(1 − s_{i+T−1}),      1 ≤ i ≤ B+1
//! ds_i/dt = λ(s_{i−1} − s_i) − (s_i − s_{i+1}),                     B+2 ≤ i ≤ T−1
//! ds_i/dt = λ(s_{i−1} − s_i) − (s_i − s_{i+1})
//!              − (s_i − s_{i+1})(s_1 − s_{min(B+2, i−T+2)}),        i ≥ T
//! ```
//!
//! For `i > B + T` the tails decay geometrically with ratio
//! `λ/(1 + λ − π_{B+2} + ...)` — the paper expresses it via the
//! asymptotic steal pressure `s_1 − s_{B+2}`; we verify the measured
//! ratio against `λ/(1 + λ − π_2')` with `π_2' ≝ π_{B+2}` in the tests.
//! `B = 0` recovers the simple WS model.

use loadsteal_ode::OdeSystem;

use crate::tail::TailVector;

use super::{check_lambda, default_truncation, MeanFieldModel};

/// Mean-field model of preemptive stealing with parameters `(B, T)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Preemptive {
    lambda: f64,
    begin_at: usize,
    rel_threshold: usize,
    levels: usize,
}

impl Preemptive {
    /// Create the model for `0 < λ < 1`, steal-start level `B ≥ 0` and
    /// relative threshold `T ≥ 2` with `B + 2 ≤ T` (so the thief and
    /// victim level ranges in the paper's equations do not overlap).
    pub fn new(lambda: f64, begin_at: usize, rel_threshold: usize) -> Result<Self, String> {
        check_lambda(lambda)?;
        if rel_threshold < 2 {
            return Err(format!(
                "relative threshold must be >= 2, got {rel_threshold}"
            ));
        }
        if begin_at + 2 > rel_threshold {
            return Err(format!(
                "need B + 2 <= T (got B = {begin_at}, T = {rel_threshold})"
            ));
        }
        let levels = default_truncation(lambda).max(begin_at + rel_threshold + 8);
        Ok(Self {
            lambda,
            begin_at,
            rel_threshold,
            levels,
        })
    }

    /// `B`: the queue length at which stealing begins.
    pub fn begin_at(&self) -> usize {
        self.begin_at
    }

    /// `T`: the required victim surplus.
    pub fn rel_threshold(&self) -> usize {
        self.rel_threshold
    }

    /// Asymptotic tail ratio `λ / (1 + λ − (π_1 − π_{B+2}))`, where
    /// `π_1 − π_{B+2}` is the total steal pressure felt by deeply loaded
    /// victims. Requires a fixed-point tail vector.
    pub fn asymptotic_tail_ratio(&self, tails: &TailVector) -> f64 {
        let pressure = tails.get(1) - tails.get(self.begin_at + 2);
        self.lambda / (1.0 + pressure)
    }

    #[inline]
    fn s(&self, y: &[f64], i: usize) -> f64 {
        if i == 0 {
            1.0
        } else if i <= y.len() {
            y[i - 1]
        } else {
            0.0
        }
    }
}

impl OdeSystem for Preemptive {
    fn dim(&self) -> usize {
        self.levels
    }

    fn deriv(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
        let lambda = self.lambda;
        let (b, t) = (self.begin_at, self.rel_threshold);
        let s1 = self.s(y, 1);
        for i in 1..=self.levels {
            let flow = lambda * (self.s(y, i - 1) - self.s(y, i));
            let dep = self.s(y, i) - self.s(y, i + 1);
            dy[i - 1] = if i <= b + 1 {
                // Dropping from i to i−1 ≤ B triggers an attempt against
                // victims ≥ (i−1)+T = i+T−1; on success the thief's load
                // returns to i, so the departure is thinned by the
                // failure probability.
                flow - dep * (1.0 - self.s(y, i + t - 1))
            } else if i < t {
                flow - dep
            } else {
                // Victims at level ≥ i are robbed by thieves dropping to
                // level j ≤ min(B, i−T): total pressure
                // s_1 − s_{min(B+2, i−T+2)}.
                let cut = (b + 2).min(i - t + 2);
                flow - dep * (1.0 + (s1 - self.s(y, cut)))
            };
        }
    }

    fn project(&self, y: &mut [f64]) {
        TailVector::project_slice(y);
    }
}

impl MeanFieldModel for Preemptive {
    fn name(&self) -> String {
        format!(
            "preemptive WS (λ = {}, B = {}, T = {})",
            self.lambda, self.begin_at, self.rel_threshold
        )
    }

    fn lambda(&self) -> f64 {
        self.lambda
    }

    fn truncation(&self) -> usize {
        self.levels
    }

    fn with_truncation(&self, levels: usize) -> Self {
        Self {
            levels: levels.max(self.begin_at + self.rel_threshold + 8),
            ..self.clone()
        }
    }

    fn empty_state(&self) -> Vec<f64> {
        vec![0.0; self.levels]
    }

    fn mean_tasks(&self, y: &[f64]) -> f64 {
        y.iter().rev().sum()
    }

    fn task_tails(&self, y: &[f64]) -> Vec<f64> {
        std::iter::once(1.0).chain(y.iter().copied()).collect()
    }

    fn boundary_mass(&self, y: &[f64]) -> f64 {
        y.last().copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed_point::{solve, FixedPointOptions};
    use crate::models::SimpleWs;

    #[test]
    fn b0_t2_reduces_to_simple_ws() {
        let lambda = 0.8;
        let p = Preemptive::new(lambda, 0, 2).unwrap();
        let s = SimpleWs::new(lambda).unwrap();
        let fp_p = solve(&p, &FixedPointOptions::default()).unwrap();
        assert!(
            (fp_p.mean_time_in_system - s.closed_form_mean_time()).abs() < 1e-7,
            "preemptive(0,2) {} vs simple {}",
            fp_p.mean_time_in_system,
            s.closed_form_mean_time()
        );
    }

    #[test]
    fn fixed_point_satisfies_throughput_balance() {
        let m = Preemptive::new(0.9, 1, 3).unwrap();
        let fp = solve(&m, &FixedPointOptions::default()).unwrap();
        assert!(
            (fp.task_tails[1] - 0.9).abs() < 1e-8,
            "π₁ = {}",
            fp.task_tails[1]
        );
    }

    #[test]
    fn tail_ratio_matches_asymptotic_formula() {
        let m = Preemptive::new(0.9, 1, 3).unwrap();
        let fp = solve(&m, &FixedPointOptions::default()).unwrap();
        let tails = TailVector::from_slice(&fp.task_tails[1..]);
        let predicted = m.asymptotic_tail_ratio(&tails);
        let measured = fp.tail_ratio().unwrap();
        assert!(
            (measured - predicted).abs() < 1e-6,
            "measured {measured} vs predicted {predicted}"
        );
    }

    #[test]
    fn preemption_beats_waiting_until_empty() {
        // With the same asymptotic threshold shift, stealing earlier
        // reduces the mean time in system at high load.
        let lambda = 0.95;
        let eager = Preemptive::new(lambda, 1, 3).unwrap();
        let lazy = Preemptive::new(lambda, 0, 3).unwrap();
        let opts = FixedPointOptions::default();
        let we = solve(&eager, &opts).unwrap().mean_time_in_system;
        let wl = solve(&lazy, &opts).unwrap().mean_time_in_system;
        assert!(we < wl, "eager {we} vs lazy {wl}");
    }

    #[test]
    fn rejects_overlapping_ranges() {
        assert!(Preemptive::new(0.5, 1, 2).is_err()); // B+2 > T
        assert!(Preemptive::new(0.5, 0, 1).is_err());
        assert!(Preemptive::new(0.5, 3, 4).is_err());
        assert!(Preemptive::new(0.5, 2, 4).is_ok());
    }
}
