//! The combined model: threshold × choices × batch size.
//!
//! Section 3 closes with the observation that "the extensions can be
//! combined as desired"; this module does exactly that for the three
//! orthogonal knobs of the on-empty stealing policy:
//!
//! * victim threshold `T` (Section 2.3),
//! * `d` iid victim candidates, steal from the most loaded (Section 3.3),
//! * `k ≤ T/2` tasks per steal (Section 3.4).
//!
//! Writing `hit(m) = 1 − (1 − s_m)^d` for the probability that the best
//! of `d` candidates holds at least `m` tasks, the limiting system is
//!
//! ```text
//! ds_1/dt = λ(s_0 − s_1) − (s_1 − s_2)(1 − hit(T))
//! ds_i/dt = λ(s_{i−1} − s_i) − (s_i − s_{i+1})
//!             + (s_1 − s_2)·hit(T)                         for 2 ≤ i ≤ k
//!             − (s_1 − s_2)·(hit(max(i,T)) − hit(i+k))     for i ≥ T−k+1
//! ```
//!
//! which reduces exactly to [`super::ThresholdWs`] (`d = 1, k = 1`),
//! [`super::MultiChoice`] (`k = 1`) and [`super::MultiSteal`] (`d = 1`).

use loadsteal_ode::OdeSystem;

use crate::tail::TailVector;

use super::{check_lambda, default_truncation, MeanFieldModel};

/// Mean-field model of on-empty stealing with all three knobs.
///
/// ```
/// use loadsteal_core::models::GeneralWs;
/// use loadsteal_core::fixed_point::{solve, FixedPointOptions};
/// let combo = GeneralWs::new(0.9, 6, 2, 3).unwrap();
/// let w = solve(&combo, &FixedPointOptions::default()).unwrap().mean_time_in_system;
/// // Stacking d = 2 choices and k = 3 batches recovers most of what the
/// // high threshold T = 6 gave up.
/// assert!(w < 4.7 && w > 3.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GeneralWs {
    lambda: f64,
    threshold: usize,
    choices: u32,
    batch: usize,
    levels: usize,
}

impl GeneralWs {
    /// Create the model for `0 < λ < 1`, threshold `T ≥ 2`, `d ≥ 1`
    /// victim candidates, batch `k` with `1 ≤ k ≤ T/2`.
    pub fn new(lambda: f64, threshold: usize, choices: u32, batch: usize) -> Result<Self, String> {
        check_lambda(lambda)?;
        if threshold < 2 {
            return Err(format!("threshold must be >= 2, got {threshold}"));
        }
        if choices == 0 {
            return Err("need at least one victim choice".into());
        }
        if batch == 0 || batch * 2 > threshold {
            return Err(format!(
                "batch k must satisfy 1 <= k <= T/2 (got k = {batch}, T = {threshold})"
            ));
        }
        let levels = default_truncation(lambda).max(threshold + batch + 8);
        Ok(Self {
            lambda,
            threshold,
            choices,
            batch,
            levels,
        })
    }

    /// The victim threshold `T`.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// The number of victim candidates `d`.
    pub fn choices(&self) -> u32 {
        self.choices
    }

    /// The batch size `k`.
    pub fn batch(&self) -> usize {
        self.batch
    }

    #[inline]
    fn s(&self, y: &[f64], i: usize) -> f64 {
        if i == 0 {
            1.0
        } else if i <= y.len() {
            y[i - 1]
        } else {
            0.0
        }
    }

    /// `hit(m) = 1 − (1 − s_m)^d`: the best of `d` candidates holds
    /// ≥ m tasks.
    #[inline]
    fn hit(&self, y: &[f64], m: usize) -> f64 {
        1.0 - (1.0 - self.s(y, m)).powi(self.choices as i32)
    }
}

impl OdeSystem for GeneralWs {
    fn dim(&self) -> usize {
        self.levels
    }

    fn deriv(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
        let lambda = self.lambda;
        let (t, k) = (self.threshold, self.batch);
        let s1 = self.s(y, 1);
        let s2 = self.s(y, 2);
        let thief_rate = s1 - s2;
        let succ = self.hit(y, t);
        dy[0] = lambda * (1.0 - s1) - thief_rate * (1.0 - succ);
        for i in 2..=self.levels {
            let flow = lambda * (self.s(y, i - 1) - self.s(y, i));
            let dep = self.s(y, i) - self.s(y, i + 1);
            let mut steal = 0.0;
            if i <= k {
                steal += thief_rate * succ; // thief jumps 0 → k
            }
            if i + k > t {
                // Victims with best-of-d load in [max(i,T), i+k−1] drop
                // below level i.
                let lo = i.max(t);
                steal -= thief_rate * (self.hit(y, lo) - self.hit(y, i + k));
            }
            dy[i - 1] = flow - dep + steal;
        }
    }

    fn project(&self, y: &mut [f64]) {
        TailVector::project_slice(y);
    }
}

impl MeanFieldModel for GeneralWs {
    fn name(&self) -> String {
        format!(
            "general WS (λ = {}, T = {}, d = {}, k = {})",
            self.lambda, self.threshold, self.choices, self.batch
        )
    }

    fn lambda(&self) -> f64 {
        self.lambda
    }

    fn truncation(&self) -> usize {
        self.levels
    }

    fn with_truncation(&self, levels: usize) -> Self {
        Self {
            levels: levels.max(self.threshold + self.batch + 8),
            ..self.clone()
        }
    }

    fn empty_state(&self) -> Vec<f64> {
        vec![0.0; self.levels]
    }

    fn mean_tasks(&self, y: &[f64]) -> f64 {
        y.iter().rev().sum()
    }

    fn task_tails(&self, y: &[f64]) -> Vec<f64> {
        std::iter::once(1.0).chain(y.iter().copied()).collect()
    }

    fn boundary_mass(&self, y: &[f64]) -> f64 {
        y.last().copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed_point::{solve, FixedPointOptions};
    use crate::models::{MultiChoice, MultiSteal, ThresholdWs};

    fn opts() -> FixedPointOptions {
        FixedPointOptions::default()
    }

    fn w<M: MeanFieldModel>(m: &M) -> f64 {
        solve(m, &opts()).unwrap().mean_time_in_system
    }

    #[test]
    fn reduces_to_threshold_model() {
        for (lambda, t) in [(0.7, 3), (0.9, 5)] {
            let g = GeneralWs::new(lambda, t, 1, 1).unwrap();
            let exact = ThresholdWs::new(lambda, t).unwrap().closed_form_mean_time();
            assert!(
                (w(&g) - exact).abs() < 1e-6,
                "T = {t}: {} vs {exact}",
                w(&g)
            );
        }
    }

    #[test]
    fn reduces_to_multi_choice() {
        let lambda = 0.9;
        let g = GeneralWs::new(lambda, 2, 2, 1).unwrap();
        let m = MultiChoice::new(lambda, 2, 2).unwrap();
        assert!((w(&g) - w(&m)).abs() < 1e-7);
    }

    #[test]
    fn reduces_to_multi_steal() {
        let lambda = 0.85;
        let g = GeneralWs::new(lambda, 6, 1, 3).unwrap();
        let m = MultiSteal::new(lambda, 3, 6).unwrap();
        assert!((w(&g) - w(&m)).abs() < 1e-7);
    }

    #[test]
    fn knobs_compose_monotonically() {
        // Adding choices or batch on top of a threshold never hurts in
        // this zero-cost model.
        let lambda = 0.95;
        let base = w(&GeneralWs::new(lambda, 6, 1, 1).unwrap());
        let more_choices = w(&GeneralWs::new(lambda, 6, 2, 1).unwrap());
        let more_batch = w(&GeneralWs::new(lambda, 6, 1, 3).unwrap());
        let both = w(&GeneralWs::new(lambda, 6, 2, 3).unwrap());
        assert!(more_choices < base);
        assert!(more_batch < base);
        assert!(both < more_choices && both < more_batch);
    }

    #[test]
    fn throughput_balance_holds() {
        let g = GeneralWs::new(0.9, 6, 2, 3).unwrap();
        let fp = solve(&g, &opts()).unwrap();
        assert!((fp.task_tails[1] - 0.9).abs() < 1e-8);
    }

    #[test]
    fn conservation_at_arbitrary_state() {
        let g = GeneralWs::new(0.8, 6, 3, 2).unwrap();
        let state = TailVector::geometric(0.7, g.truncation()).into_vec();
        let mut dy = vec![0.0; state.len()];
        g.deriv(0.0, &state, &mut dy);
        let dl: f64 = dy.iter().sum();
        assert!((dl - (0.8 - 0.7)).abs() < 1e-9, "dL/dt = {dl}");
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(GeneralWs::new(0.5, 1, 1, 1).is_err());
        assert!(GeneralWs::new(0.5, 4, 0, 1).is_err());
        assert!(GeneralWs::new(0.5, 4, 1, 3).is_err());
    }
}
