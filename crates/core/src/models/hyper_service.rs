//! Hyperexponential service — the mixture half of Section 3.1.
//!
//! The paper notes any service law can be approached by mixtures of
//! gamma distributions. [`super::ErlangStages`] covers the low-variance
//! direction (sums of exponentials → constants); this model covers the
//! high-variance direction: service is Exponential(`μ₁`) with
//! probability `p`, else Exponential(`μ₂`) — a two-branch
//! hyperexponential with squared coefficient of variation above 1.
//!
//! The state tracks the branch of the *in-service* task:
//! `h^b_i` = fraction of processors whose current task is branch `b`
//! and whose queue holds at least `i` tasks (queued tasks have no
//! branch yet — it is sampled when service begins). With
//! `H_m = Σ_b h^b_m`, `A = Σ_b μ_b (h^b_1 − h^b_2)` (the rate thieves
//! appear) and threshold `T`:
//!
//! ```text
//! dh^b_1/dt = λ p_b (1 − H_1) + p_b Σ_c μ_c h^c_2 + p_b A H_T − μ_b h^b_1
//! dh^b_i/dt = λ(h^b_{i−1} − h^b_i) + p_b Σ_c μ_c h^c_{i+1} − μ_b h^b_i
//!               − A (h^b_i − h^b_{i+1}) · [i ≥ T]
//! ```
//!
//! (every completion by a branch-`b` server leaves the `b` class — the
//! next task resamples its branch — which is why the loss term is the
//! clean `μ_b h^b_i`). A single branch recovers the threshold model
//! exactly; two distinct branches show Table 2's effect mirrored:
//! *more* service variability means *longer* times in system.

use loadsteal_ode::OdeSystem;

use super::{default_truncation, MeanFieldModel};

/// Mean-field model of threshold stealing with two-branch
/// hyperexponential service.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperService {
    lambda: f64,
    p: f64,
    mu1: f64,
    mu2: f64,
    threshold: usize,
    levels: usize,
}

impl HyperService {
    /// Create the model: arrival rate `λ`, branch-1 probability
    /// `p ∈ [0, 1]`, branch rates `μ₁, μ₂ > 0`, threshold `T ≥ 2`.
    /// Requires `λ · E[S] < 1` with `E[S] = p/μ₁ + (1−p)/μ₂`.
    pub fn new(lambda: f64, p: f64, mu1: f64, mu2: f64, threshold: usize) -> Result<Self, String> {
        if !(lambda > 0.0 && lambda.is_finite()) {
            return Err(format!("arrival rate must be positive, got {lambda}"));
        }
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("branch probability must be in [0, 1], got {p}"));
        }
        if !(mu1 > 0.0 && mu2 > 0.0) {
            return Err("branch rates must be positive".into());
        }
        if threshold < 2 {
            return Err(format!("threshold must be >= 2, got {threshold}"));
        }
        let mean = p / mu1 + (1.0 - p) / mu2;
        let rho = lambda * mean;
        if rho >= 1.0 {
            return Err(format!("unstable: λ·E[S] = {rho} >= 1"));
        }
        let levels =
            crate::tail::truncation_for_ratio(rho.max(0.05), 1e-14, 32, 8_192).max(threshold + 8);
        let _ = default_truncation; // λ-based default replaced by ρ-based
        Ok(Self {
            lambda,
            p,
            mu1,
            mu2,
            threshold,
            levels,
        })
    }

    /// Construct with unit mean service and a target squared coefficient
    /// of variation `scv ≥ 1`, using balanced branch means
    /// (`p/μ₁ = (1−p)/μ₂ = 1/2`).
    pub fn with_scv(lambda: f64, scv: f64, threshold: usize) -> Result<Self, String> {
        if scv < 1.0 {
            return Err(format!(
                "two-branch hyperexponential needs scv >= 1, got {scv} \
                 (use ErlangStages for scv < 1)"
            ));
        }
        // Balanced-means parameterization: p = (1 ± sqrt((c²−1)/(c²+1)))/2.
        let x = ((scv - 1.0) / (scv + 1.0)).sqrt();
        let p = 0.5 * (1.0 + x);
        let mu1 = 2.0 * p;
        let mu2 = 2.0 * (1.0 - p);
        Self::new(lambda, p, mu1, mu2, threshold)
    }

    /// Branch parameters `(p, μ₁, μ₂)`.
    pub fn branches(&self) -> (f64, f64, f64) {
        (self.p, self.mu1, self.mu2)
    }

    /// Mean service time `E[S]`.
    pub fn mean_service(&self) -> f64 {
        self.p / self.mu1 + (1.0 - self.p) / self.mu2
    }

    /// Squared coefficient of variation of the service law.
    pub fn service_scv(&self) -> f64 {
        let m = self.mean_service();
        let ex2 = 2.0 * (self.p / (self.mu1 * self.mu1) + (1.0 - self.p) / (self.mu2 * self.mu2));
        ex2 / (m * m) - 1.0
    }

    // State layout: y[b * levels + (i−1)] = h^b_i for b ∈ {0, 1}.

    #[inline]
    fn h(&self, y: &[f64], b: usize, i: usize) -> f64 {
        if i == 0 {
            unreachable!("h^b_0 is not defined; use the idle mass");
        }
        if i <= self.levels {
            y[b * self.levels + i - 1]
        } else {
            0.0
        }
    }

    #[inline]
    fn agg(&self, y: &[f64], i: usize) -> f64 {
        if i == 0 {
            1.0
        } else if i > self.levels {
            0.0
        } else {
            self.h(y, 0, i) + self.h(y, 1, i)
        }
    }
}

impl OdeSystem for HyperService {
    fn dim(&self) -> usize {
        2 * self.levels
    }

    fn deriv(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
        let lambda = self.lambda;
        let t = self.threshold;
        let probs = [self.p, 1.0 - self.p];
        let mus = [self.mu1, self.mu2];
        let h1 = self.agg(y, 1);
        let thief_rate = mus[0] * (self.h(y, 0, 1) - self.h(y, 0, 2))
            + mus[1] * (self.h(y, 1, 1) - self.h(y, 1, 2));
        let success = self.agg(y, t);
        for b in 0..2 {
            // Completions by either branch whose next task lands in b.
            for i in 1..=self.levels {
                let restart_gain =
                    probs[b] * (mus[0] * self.h(y, 0, i + 1) + mus[1] * self.h(y, 1, i + 1));
                let d = if i == 1 {
                    lambda * probs[b] * (1.0 - h1) + restart_gain + probs[b] * thief_rate * success
                        - mus[b] * self.h(y, b, 1)
                } else {
                    let arrivals = lambda * (self.h(y, b, i - 1) - self.h(y, b, i));
                    let robbed = if i >= t {
                        thief_rate * (self.h(y, b, i) - self.h(y, b, i + 1))
                    } else {
                        0.0
                    };
                    arrivals + restart_gain - mus[b] * self.h(y, b, i) - robbed
                };
                dy[b * self.levels + i - 1] = d;
            }
        }
    }

    fn project(&self, y: &mut [f64]) {
        for b in 0..2 {
            let block = &mut y[b * self.levels..(b + 1) * self.levels];
            let mut prev = 1.0_f64;
            for v in block.iter_mut() {
                *v = v.clamp(0.0, prev);
                prev = *v;
            }
        }
    }
}

impl MeanFieldModel for HyperService {
    fn name(&self) -> String {
        format!(
            "hyperexp-service WS (λ = {}, p = {:.3}, μ₁ = {:.3}, μ₂ = {:.3}, T = {})",
            self.lambda, self.p, self.mu1, self.mu2, self.threshold
        )
    }

    fn lambda(&self) -> f64 {
        self.lambda
    }

    fn truncation(&self) -> usize {
        self.levels
    }

    fn with_truncation(&self, levels: usize) -> Self {
        Self {
            levels: levels.max(self.threshold + 8),
            ..self.clone()
        }
    }

    fn empty_state(&self) -> Vec<f64> {
        vec![0.0; 2 * self.levels]
    }

    fn mean_tasks(&self, y: &[f64]) -> f64 {
        y.iter().rev().sum()
    }

    fn task_tails(&self, y: &[f64]) -> Vec<f64> {
        (0..=self.levels).map(|i| self.agg(y, i)).collect()
    }

    fn boundary_mass(&self, y: &[f64]) -> f64 {
        self.agg(y, self.levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed_point::{solve, FixedPointOptions};
    use crate::models::{SimpleWs, ThresholdWs};

    fn opts() -> FixedPointOptions {
        FixedPointOptions::default()
    }

    #[test]
    fn degenerate_mixture_is_the_simple_model() {
        // p = 1 collapses to Exponential(1).
        let lambda = 0.85;
        let m = HyperService::new(lambda, 1.0, 1.0, 5.0, 2).unwrap();
        let fp = solve(&m, &opts()).unwrap();
        let exact = SimpleWs::new(lambda).unwrap().closed_form_mean_time();
        assert!(
            (fp.mean_time_in_system - exact).abs() < 1e-6,
            "{} vs {exact}",
            fp.mean_time_in_system
        );
    }

    #[test]
    fn equal_branches_are_exponential_threshold_model() {
        let lambda = 0.9;
        let m = HyperService::new(lambda, 0.5, 1.0, 1.0, 4).unwrap();
        let fp = solve(&m, &opts()).unwrap();
        let exact = ThresholdWs::new(lambda, 4).unwrap().closed_form_mean_time();
        assert!((fp.mean_time_in_system - exact).abs() < 1e-6);
    }

    #[test]
    fn with_scv_hits_its_targets() {
        let m = HyperService::with_scv(0.8, 4.0, 2).unwrap();
        assert!((m.mean_service() - 1.0).abs() < 1e-12);
        assert!((m.service_scv() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_balance_holds() {
        // Completions = μ₁ h¹₁ + μ₂ h²₁ = λ at the fixed point.
        let m = HyperService::with_scv(0.8, 4.0, 2).unwrap();
        let fp = solve(&m, &opts()).unwrap();
        let (p, mu1, mu2) = m.branches();
        let _ = p;
        let l = m.truncation();
        let throughput = mu1 * fp.state[0] + mu2 * fp.state[l];
        assert!((throughput - 0.8).abs() < 1e-7, "throughput {throughput}");
    }

    #[test]
    fn variability_hurts_monotonically() {
        // Table 2's effect mirrored: scv 1 → 2 → 4 increases W.
        let lambda = 0.9;
        let mut last = 0.0;
        for scv in [1.0, 2.0, 4.0] {
            let m = HyperService::with_scv(lambda, scv, 2).unwrap();
            let w = solve(&m, &opts()).unwrap().mean_time_in_system;
            assert!(w > last, "scv = {scv}: W = {w} !> {last}");
            last = w;
        }
        // And scv = 1 equals the exponential closed form.
        let m1 = HyperService::with_scv(lambda, 1.0, 2).unwrap();
        let w1 = solve(&m1, &opts()).unwrap().mean_time_in_system;
        let exact = SimpleWs::new(lambda).unwrap().closed_form_mean_time();
        assert!((w1 - exact).abs() < 1e-6);
    }

    #[test]
    fn conservation_at_the_fixed_point_only() {
        // dL/dt = λ − throughput; at an arbitrary state throughput is
        // μ-weighted, so check at the fixed point where it equals λ.
        let m = HyperService::with_scv(0.7, 3.0, 2).unwrap();
        let fp = solve(&m, &opts()).unwrap();
        let mut dy = vec![0.0; fp.state.len()];
        m.deriv(0.0, &fp.state, &mut dy);
        let dl: f64 = dy.iter().sum();
        assert!(dl.abs() < 1e-9, "dL/dt = {dl} at the fixed point");
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(HyperService::new(0.5, 1.5, 1.0, 1.0, 2).is_err());
        assert!(HyperService::new(0.5, 0.5, 0.0, 1.0, 2).is_err());
        assert!(HyperService::new(2.0, 0.5, 1.0, 1.0, 2).is_err());
        assert!(HyperService::with_scv(0.5, 0.5, 2).is_err());
        assert!(HyperService::new(0.5, 0.5, 1.0, 1.0, 1).is_err());
    }
}
