//! The paper's model families, one module per system.
//!
//! Every model implements [`MeanFieldModel`]: it is an
//! [`loadsteal_ode::OdeSystem`] over some finite truncation of the
//! infinite mean-field state, and it knows how to interpret that state —
//! what the arrival rate is, how many tasks per processor the state
//! carries, and what the task-count tail `s_i` looks like.
//!
//! | Module | Paper section | System |
//! |--------|---------------|--------|
//! | [`no_steal`] | eq. (1) | independent M/M/1 queues |
//! | [`simple_ws`] | §2.2, eqs. (2)–(3) | steal one task on empty, victim ≥ 2 |
//! | [`threshold`] | §2.3, eqs. (4)–(6) | victim must hold ≥ T |
//! | [`preemptive`] | §2.4 | start stealing at B tasks left |
//! | [`repeated`] | §2.5 | empty processors retry at rate r |
//! | [`erlang_stages`] | §3.1 | c-stage (≈ constant) service |
//! | [`erlang_arrivals`] | §3.1 | c-phase (≈ regular) arrivals |
//! | [`hyper_service`] | §3.1 | hyperexponential (bursty) service |
//! | [`transfer`] | §3.2 | stolen tasks travel for Exp(r) time |
//! | [`multi_choice`] | §3.3 | best of d victim candidates |
//! | [`multi_steal`] | §3.4 | k tasks per steal |
//! | [`general`] | §3 ("combined as desired") | threshold × d choices × k batch |
//! | [`rebalance`] | §3.4 | pairwise load equalization |
//! | [`heterogeneous`] | §3.5 | fast/slow processor classes |
//! | [`static_drain`] | §3.5 | internal arrivals / drain from a loaded start |
//! | [`work_sharing`] | §1 (the foil) | sender-initiated sharing, for the probe-cost comparison |

pub mod erlang_arrivals;
pub mod erlang_stages;
pub mod general;
pub mod heterogeneous;
pub mod hyper_service;
pub mod multi_choice;
pub mod multi_steal;
pub mod no_steal;
pub mod preemptive;
pub mod rebalance;
pub mod repeated;
pub mod simple_ws;
pub mod static_drain;
pub mod threshold;
pub mod transfer;
pub mod work_sharing;

pub use erlang_arrivals::ErlangArrivals;
pub use erlang_stages::ErlangStages;
pub use general::GeneralWs;
pub use heterogeneous::Heterogeneous;
pub use hyper_service::HyperService;
pub use multi_choice::MultiChoice;
pub use multi_steal::MultiSteal;
pub use no_steal::NoSteal;
pub use preemptive::Preemptive;
pub use rebalance::{Rebalance, RebalanceRateFn};
pub use repeated::RepeatedSteal;
pub use simple_ws::SimpleWs;
pub use static_drain::StaticDrain;
pub use threshold::ThresholdWs;
pub use transfer::TransferWs;
pub use work_sharing::WorkSharing;

use loadsteal_ode::OdeSystem;

/// A mean-field work-stealing model: a truncated ODE family plus the
/// interpretation of its state.
pub trait MeanFieldModel: OdeSystem + Clone {
    /// Short human-readable name with parameters, e.g.
    /// `"threshold WS (λ = 0.9, T = 3)"`.
    fn name(&self) -> String;

    /// Per-processor task arrival rate `λ` (external + internal; used by
    /// Little's law).
    fn lambda(&self) -> f64;

    /// Number of truncation levels currently carried.
    fn truncation(&self) -> usize;

    /// The same model re-truncated to `levels`.
    fn with_truncation(&self, levels: usize) -> Self;

    /// The empty-system state (the canonical integration start).
    fn empty_state(&self) -> Vec<f64>;

    /// Mean number of tasks per processor in state `y`, including tasks
    /// in transit where the model has them.
    fn mean_tasks(&self, y: &[f64]) -> f64;

    /// Task-count tail `s = (s_0 = 1, s_1, s_2, …)` folded over any
    /// internal structure (stages, waiting classes, speed classes).
    /// `result[i]` = fraction of processors with at least `i` tasks.
    fn task_tails(&self, y: &[f64]) -> Vec<f64>;

    /// Mass at the truncation boundary — used to decide whether the
    /// truncation must grow before trusting the solution.
    fn boundary_mass(&self, y: &[f64]) -> f64;

    /// Mean time a task spends in the system at state `y`
    /// (Little's law, `W = L/λ`).
    fn mean_time_in_system(&self, y: &[f64]) -> f64 {
        loadsteal_queueing::littles_law::time_in_system(self.mean_tasks(y), self.lambda())
    }
}

/// Validate an arrival rate for the dynamic models (`0 < λ < 1`).
pub(crate) fn check_lambda(lambda: f64) -> Result<(), String> {
    if lambda.is_finite() && 0.0 < lambda && lambda < 1.0 {
        Ok(())
    } else {
        Err(format!(
            "arrival rate must satisfy 0 < λ < 1 for stability, got {lambda}"
        ))
    }
}

/// Default truncation for a task-tail model: enough levels that an
/// `M/M/1`-speed tail (`λ^i`, an upper bound on every stealing model's
/// tail) falls below 1e−14, with a floor for shallow systems.
pub(crate) fn default_truncation(lambda: f64) -> usize {
    crate::tail::truncation_for_ratio(lambda, 1e-14, 32, 8_192)
}
