//! Erlang's method of stages on the *arrival* process — Section 3.1's
//! other half.
//!
//! The paper notes the staging trick works for arrival distributions
//! too: replace the Poisson process with `c` exponential phases of rate
//! `cλ` each, so inter-arrival times are Erlang-c with mean `1/λ`
//! (`c → ∞` gives perfectly regular, constant-spaced arrivals). The
//! state carries the arrival phase: `s^a_i` = fraction of processors in
//! arrival phase `a ∈ {0, …, c−1}` holding at least `i` tasks. Phase
//! masses stay uniform (`s^a_0 = 1/c`) from a uniform start, so only
//! the queue tails evolve:
//!
//! ```text
//! ds^a_i/dt = cλ(s^{a−1}_i − s^a_i)                       (phase advance, a ≥ 1)
//! ds^0_i/dt = cλ(s^{c−1}_{i−1} − s^0_i)                   (wrap = an arrival)
//!             − (s^a_i − s^a_{i+1})·[service/steal terms as in the
//!                threshold model, with s_m ≝ Σ_b s^b_m]
//! ```
//!
//! Stealing is the on-empty threshold-`T` policy; victims are chosen
//! over all processors so the steal terms couple the phases only through
//! the aggregated tails.

use loadsteal_ode::OdeSystem;

use super::{check_lambda, default_truncation, MeanFieldModel};

/// Mean-field model of threshold stealing under Erlang-`c` arrivals.
#[derive(Debug, Clone, PartialEq)]
pub struct ErlangArrivals {
    lambda: f64,
    phases: usize,
    threshold: usize,
    levels: usize,
}

impl ErlangArrivals {
    /// Create the model for `0 < λ < 1`, `c ≥ 1` arrival phases, and
    /// victim threshold `T ≥ 2`.
    pub fn new(lambda: f64, phases: usize, threshold: usize) -> Result<Self, String> {
        check_lambda(lambda)?;
        if phases == 0 {
            return Err("need at least one arrival phase".into());
        }
        if threshold < 2 {
            return Err(format!("threshold must be >= 2, got {threshold}"));
        }
        let levels = default_truncation(lambda).max(threshold + 8);
        Ok(Self {
            lambda,
            phases,
            threshold,
            levels,
        })
    }

    /// The number of arrival phases `c`.
    pub fn phases(&self) -> usize {
        self.phases
    }

    /// The victim threshold `T`.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// The matching simulator inter-arrival distribution (Erlang-`c`
    /// with mean `1/λ`).
    pub fn sim_arrival_distribution(&self) -> loadsteal_queueing::ServiceDistribution {
        loadsteal_queueing::ServiceDistribution::Erlang {
            stages: self.phases as u32,
            rate: self.phases as f64 * self.lambda,
        }
    }

    // State layout: y[a * levels + (i − 1)] = s^a_i; s^a_0 ≡ 1/c.

    #[inline]
    fn sp(&self, y: &[f64], a: usize, i: usize) -> f64 {
        if i == 0 {
            1.0 / self.phases as f64
        } else if i <= self.levels {
            y[a * self.levels + i - 1]
        } else {
            0.0
        }
    }

    /// Aggregated tail `s_i = Σ_a s^a_i`.
    #[inline]
    fn agg(&self, y: &[f64], i: usize) -> f64 {
        if i == 0 {
            1.0
        } else if i > self.levels {
            0.0
        } else {
            (0..self.phases).map(|a| self.sp(y, a, i)).sum()
        }
    }
}

impl OdeSystem for ErlangArrivals {
    fn dim(&self) -> usize {
        self.phases * self.levels
    }

    fn deriv(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
        let c = self.phases;
        let rate = c as f64 * self.lambda;
        let t = self.threshold;
        let thief_rate: f64 = (0..c).map(|a| self.sp(y, a, 1) - self.sp(y, a, 2)).sum();
        let success = self.agg(y, t);
        for a in 0..c {
            let prev = if a == 0 { c - 1 } else { a - 1 };
            for i in 1..=self.levels {
                // Phase advance; the wrap from the last phase delivers a
                // task, lifting ≥ i−1 to ≥ i.
                let inflow = if a == 0 {
                    rate * self.sp(y, prev, i - 1)
                } else {
                    rate * self.sp(y, prev, i)
                };
                let phase_flow = inflow - rate * self.sp(y, a, i);
                let dep = self.sp(y, a, i) - self.sp(y, a, i + 1);
                let service = if i == 1 {
                    dep * (1.0 - success)
                } else if i < t {
                    dep
                } else {
                    dep * (1.0 + thief_rate)
                };
                dy[a * self.levels + i - 1] = phase_flow - service;
            }
        }
    }

    fn project(&self, y: &mut [f64]) {
        let cap = 1.0 / self.phases as f64;
        for a in 0..self.phases {
            let block = &mut y[a * self.levels..(a + 1) * self.levels];
            let mut prev = cap;
            for v in block.iter_mut() {
                *v = v.clamp(0.0, prev);
                prev = *v;
            }
        }
    }
}

impl MeanFieldModel for ErlangArrivals {
    fn name(&self) -> String {
        format!(
            "erlang-arrival WS (λ = {}, c = {} phases, T = {})",
            self.lambda, self.phases, self.threshold
        )
    }

    fn lambda(&self) -> f64 {
        self.lambda
    }

    fn truncation(&self) -> usize {
        self.levels
    }

    fn with_truncation(&self, levels: usize) -> Self {
        Self {
            levels: levels.max(self.threshold + 8),
            ..self.clone()
        }
    }

    fn empty_state(&self) -> Vec<f64> {
        // Empty queues, phases uniform (which the dynamics preserve).
        vec![0.0; self.phases * self.levels]
    }

    fn mean_tasks(&self, y: &[f64]) -> f64 {
        y.iter().rev().sum()
    }

    fn task_tails(&self, y: &[f64]) -> Vec<f64> {
        (0..=self.levels).map(|i| self.agg(y, i)).collect()
    }

    fn boundary_mass(&self, y: &[f64]) -> f64 {
        self.agg(y, self.levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed_point::{solve, FixedPointOptions};
    use crate::models::{SimpleWs, ThresholdWs};

    fn opts() -> FixedPointOptions {
        FixedPointOptions::default()
    }

    #[test]
    fn one_phase_is_poisson() {
        let lambda = 0.8;
        let m = ErlangArrivals::new(lambda, 1, 2).unwrap();
        let fp = solve(&m, &opts()).unwrap();
        let exact = SimpleWs::new(lambda).unwrap().closed_form_mean_time();
        assert!(
            (fp.mean_time_in_system - exact).abs() < 1e-6,
            "c = 1: {} vs {exact}",
            fp.mean_time_in_system
        );
    }

    #[test]
    fn one_phase_matches_threshold_model_too() {
        let lambda = 0.9;
        let m = ErlangArrivals::new(lambda, 1, 4).unwrap();
        let fp = solve(&m, &opts()).unwrap();
        let exact = ThresholdWs::new(lambda, 4).unwrap().closed_form_mean_time();
        assert!((fp.mean_time_in_system - exact).abs() < 1e-6);
    }

    #[test]
    fn throughput_balance_holds() {
        let m = ErlangArrivals::new(0.8, 5, 2).unwrap();
        let fp = solve(&m, &opts()).unwrap();
        assert!(
            (fp.task_tails[1] - 0.8).abs() < 1e-7,
            "s₁ = {}",
            fp.task_tails[1]
        );
    }

    #[test]
    fn regular_arrivals_beat_poisson() {
        // Less arrival variability → shorter times (the E_k/M/1 analogue
        // of Table 2's service-side result).
        let lambda = 0.9;
        let poisson = SimpleWs::new(lambda).unwrap().closed_form_mean_time();
        let regular = solve(&ErlangArrivals::new(lambda, 10, 2).unwrap(), &opts())
            .unwrap()
            .mean_time_in_system;
        assert!(
            regular < poisson,
            "Erlang-10 arrivals {regular} vs Poisson {poisson}"
        );
    }

    #[test]
    fn more_phases_help_monotonically() {
        let lambda = 0.9;
        let mut last = f64::INFINITY;
        for c in [1usize, 2, 5, 10] {
            let w = solve(&ErlangArrivals::new(lambda, c, 2).unwrap(), &opts())
                .unwrap()
                .mean_time_in_system;
            assert!(w < last + 1e-9, "c = {c}: {w} !< {last}");
            last = w;
        }
    }

    #[test]
    fn sim_distribution_is_consistent() {
        let m = ErlangArrivals::new(0.7, 8, 2).unwrap();
        let d = m.sim_arrival_distribution();
        assert!((d.mean() - 1.0 / 0.7).abs() < 1e-12);
        assert!((d.scv() - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(ErlangArrivals::new(0.5, 0, 2).is_err());
        assert!(ErlangArrivals::new(0.5, 4, 1).is_err());
        assert!(ErlangArrivals::new(1.1, 4, 2).is_err());
    }
}
