//! Pairwise rebalancing — Section 3.4, after Rudolph, Slivkin-Allalouf,
//! and Upfal.
//!
//! At exponential rate `r(i)` (possibly depending on its load `i`) a
//! processor picks a uniform partner and the two equalize their loads:
//! a pair `(j, k)` with `j ≥ k` becomes `(⌈(j+k)/2⌉, ⌊(j+k)/2⌋)`. In
//! the mean field, pair `(j, k)` meetings occur at rate
//! `(r(j) + r(k)) p_j p_k` and affect `s_i` only for `k < i ≤ j`:
//! the pair ends with both sides ≥ i when `j + k ≥ 2i`, with both below
//! `i` when `j + k ≤ 2i − 2`, and unchanged at `j + k = 2i − 1`. Hence
//! for `i ≥ 1`:
//!
//! ```text
//! ds_i/dt = λ(s_{i−1} − s_i) − (s_i − s_{i+1})
//!           − Σ_{j=i}^{2i−2} Σ_{k=0}^{2i−2−j} (r(j)+r(k)) p_j p_k
//!           + Σ_{k=0}^{i−1}  Σ_{j=2i−k}^{∞}   (r(j)+r(k)) p_j p_k
//! ```
//!
//! with `p_m = s_m − s_{m+1}`. The double sums are evaluated with suffix
//! prefix sums, so one derivative evaluation costs `O(L²)` in the worst
//! case but with small constants.

use loadsteal_ode::OdeSystem;

use crate::tail::TailVector;

use super::{check_lambda, default_truncation, MeanFieldModel};

/// Load-dependent rebalance rate `r(i)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RebalanceRateFn {
    /// `r(i) = rate` for every load.
    Constant(f64),
    /// `r(i) = rate · i`.
    PerTask(f64),
}

impl RebalanceRateFn {
    /// Evaluate `r(i)`.
    #[inline]
    pub fn rate(&self, load: usize) -> f64 {
        match *self {
            Self::Constant(r) => r,
            Self::PerTask(r) => r * load as f64,
        }
    }
}

/// Mean-field model of pairwise load rebalancing.
#[derive(Debug, Clone, PartialEq)]
pub struct Rebalance {
    lambda: f64,
    rate: RebalanceRateFn,
    levels: usize,
}

impl Rebalance {
    /// Create the model for `0 < λ < 1` and a rebalance rate function.
    pub fn new(lambda: f64, rate: RebalanceRateFn) -> Result<Self, String> {
        check_lambda(lambda)?;
        let base = match rate {
            RebalanceRateFn::Constant(r) | RebalanceRateFn::PerTask(r) => r,
        };
        if !(base > 0.0 && base.is_finite()) {
            return Err(format!(
                "rebalance rate must be positive and finite, got {base}"
            ));
        }
        Ok(Self {
            lambda,
            rate,
            levels: default_truncation(lambda),
        })
    }

    /// The rebalance rate function.
    pub fn rate_fn(&self) -> RebalanceRateFn {
        self.rate
    }

    #[inline]
    fn s(&self, y: &[f64], i: usize) -> f64 {
        if i == 0 {
            1.0
        } else if i <= y.len() {
            y[i - 1]
        } else {
            0.0
        }
    }
}

impl OdeSystem for Rebalance {
    fn dim(&self) -> usize {
        self.levels
    }

    // Loop variables are occupancy levels mirroring the paper's double
    // sums; positional iteration would hide the index arithmetic.
    #[allow(clippy::needless_range_loop)]
    fn deriv(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
        let lambda = self.lambda;
        let l = self.levels;
        // Point masses p_m = s_m − s_{m+1} and their r-weighted version,
        // for m = 0..=L.
        let mut p = vec![0.0; l + 1];
        let mut rp = vec![0.0; l + 1];
        for m in 0..=l {
            p[m] = self.s(y, m) - self.s(y, m + 1);
            rp[m] = self.rate.rate(m) * p[m];
        }
        // Suffix sums: ps[m] = Σ_{j≥m} p_j, rs[m] = Σ_{j≥m} r(j) p_j;
        // prefix sums: pp[m] = Σ_{k≤m} p_k, rpp[m] = Σ_{k≤m} r(k) p_k.
        let mut ps = vec![0.0; l + 2];
        let mut rs = vec![0.0; l + 2];
        for m in (0..=l).rev() {
            ps[m] = ps[m + 1] + p[m];
            rs[m] = rs[m + 1] + rp[m];
        }
        let mut pp = vec![0.0; l + 1];
        let mut rpp = vec![0.0; l + 1];
        let (mut acc_p, mut acc_rp) = (0.0, 0.0);
        for m in 0..=l {
            acc_p += p[m];
            acc_rp += rp[m];
            pp[m] = acc_p;
            rpp[m] = acc_rp;
        }

        for i in 1..=l {
            let flow = lambda * (self.s(y, i - 1) - self.s(y, i));
            let dep = self.s(y, i) - self.s(y, i + 1);
            // Loss: pairs (j ≥ i, k < i) with j + k ≤ 2i − 2:
            //   Σ_j p_j [ r(j) Σ_{k≤kmax} p_k + Σ_{k≤kmax} r(k) p_k ].
            let mut loss = 0.0;
            for j in i..=(2 * i - 2).min(l) {
                let kmax = 2 * i - 2 - j;
                loss += p[j] * (self.rate.rate(j) * pp[kmax.min(l)] + rpp[kmax.min(l)]);
            }
            // Gain: pairs (k < i, j ≥ 2i − k).
            let mut gain = 0.0;
            for k in 0..i.min(l + 1) {
                let jmin = 2 * i - k;
                if jmin > l {
                    continue;
                }
                gain += p[k] * self.rate.rate(k) * ps[jmin] + p[k] * rs[jmin];
            }
            dy[i - 1] = flow - dep - loss + gain;
        }
    }

    fn project(&self, y: &mut [f64]) {
        TailVector::project_slice(y);
    }
}

impl MeanFieldModel for Rebalance {
    fn name(&self) -> String {
        let desc = match self.rate {
            RebalanceRateFn::Constant(r) => format!("r(i) = {r}"),
            RebalanceRateFn::PerTask(r) => format!("r(i) = {r}·i"),
        };
        format!("pairwise rebalance (λ = {}, {desc})", self.lambda)
    }

    fn lambda(&self) -> f64 {
        self.lambda
    }

    fn truncation(&self) -> usize {
        self.levels
    }

    fn with_truncation(&self, levels: usize) -> Self {
        Self {
            levels,
            ..self.clone()
        }
    }

    fn empty_state(&self) -> Vec<f64> {
        vec![0.0; self.levels]
    }

    fn mean_tasks(&self, y: &[f64]) -> f64 {
        y.iter().rev().sum()
    }

    fn task_tails(&self, y: &[f64]) -> Vec<f64> {
        std::iter::once(1.0).chain(y.iter().copied()).collect()
    }

    fn boundary_mass(&self, y: &[f64]) -> f64 {
        y.last().copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed_point::{solve, FixedPointOptions};
    use crate::models::NoSteal;

    fn opts() -> FixedPointOptions {
        FixedPointOptions::default()
    }

    #[test]
    fn rebalancing_conserves_tasks() {
        // Σ dy_i must equal arrivals − services at any state: the
        // rebalance terms only move tasks around. ⌈·⌉ + ⌊·⌋ = j + k.
        let m = Rebalance::new(0.8, RebalanceRateFn::Constant(1.0)).unwrap();
        let state = TailVector::geometric(0.75, m.truncation()).into_vec();
        let mut dy = vec![0.0; state.len()];
        m.deriv(0.0, &state, &mut dy);
        let dl: f64 = dy.iter().sum();
        let expect = 0.8 - 0.75; // λ − s₁
        assert!(
            (dl - expect).abs() < 1e-8,
            "dL/dt = {dl}, expected {expect}"
        );
    }

    #[test]
    fn throughput_balance_holds() {
        let m = Rebalance::new(0.8, RebalanceRateFn::Constant(0.5)).unwrap();
        let fp = solve(&m, &opts()).unwrap();
        assert!(
            (fp.task_tails[1] - 0.8).abs() < 1e-7,
            "π₁ = {}",
            fp.task_tails[1]
        );
    }

    #[test]
    fn rebalancing_beats_no_stealing() {
        let lambda = 0.9;
        let none = NoSteal::new(lambda).unwrap().closed_form_mean_time();
        let m = Rebalance::new(lambda, RebalanceRateFn::Constant(1.0)).unwrap();
        let w = solve(&m, &opts()).unwrap().mean_time_in_system;
        assert!(w < none, "rebalance {w} vs none {none}");
    }

    #[test]
    fn faster_rebalancing_helps_more() {
        let lambda = 0.9;
        let slow = solve(
            &Rebalance::new(lambda, RebalanceRateFn::Constant(0.2)).unwrap(),
            &opts(),
        )
        .unwrap()
        .mean_time_in_system;
        let fast = solve(
            &Rebalance::new(lambda, RebalanceRateFn::Constant(2.0)).unwrap(),
            &opts(),
        )
        .unwrap()
        .mean_time_in_system;
        assert!(fast < slow, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn per_task_rates_work() {
        let lambda = 0.85;
        let m = Rebalance::new(lambda, RebalanceRateFn::PerTask(0.25)).unwrap();
        let fp = solve(&m, &opts()).unwrap();
        let none = NoSteal::new(lambda).unwrap().closed_form_mean_time();
        assert!(fp.mean_time_in_system < none);
    }

    #[test]
    fn rejects_bad_rates() {
        assert!(Rebalance::new(0.5, RebalanceRateFn::Constant(0.0)).is_err());
        assert!(Rebalance::new(0.5, RebalanceRateFn::PerTask(-1.0)).is_err());
    }
}
