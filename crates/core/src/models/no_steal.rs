//! The no-stealing baseline — equation (1) of the paper.
//!
//! Without stealing each processor is an independent M/M/1 queue:
//!
//! ```text
//! ds_i/dt = λ(s_{i−1} − s_i) − (s_i − s_{i+1})
//! ```
//!
//! with fixed point `π_i = λ^i` and mean time in system `1/(1−λ)`.
//! Every stealing model in this crate is compared against this tail.

use loadsteal_ode::OdeSystem;

use crate::tail::TailVector;

use super::{check_lambda, default_truncation, MeanFieldModel};

/// Mean-field model of `n → ∞` independent M/M/1 queues.
#[derive(Debug, Clone, PartialEq)]
pub struct NoSteal {
    lambda: f64,
    levels: usize,
}

impl NoSteal {
    /// Create the model for arrival rate `0 < λ < 1`.
    pub fn new(lambda: f64) -> Result<Self, String> {
        check_lambda(lambda)?;
        Ok(Self {
            lambda,
            levels: default_truncation(lambda),
        })
    }

    /// The arrival rate λ.
    pub fn arrival_rate(&self) -> f64 {
        self.lambda
    }

    /// Exact fixed point tail `π_i = λ^i` down to the truncation.
    pub fn closed_form_tails(&self) -> TailVector {
        TailVector::geometric(self.lambda, self.levels)
    }

    /// Exact mean time in system, `1/(1 − λ)` (M/M/1).
    pub fn closed_form_mean_time(&self) -> f64 {
        1.0 / (1.0 - self.lambda)
    }

    #[inline]
    fn s(&self, y: &[f64], i: usize) -> f64 {
        if i == 0 {
            1.0
        } else if i <= y.len() {
            y[i - 1]
        } else {
            0.0
        }
    }
}

impl OdeSystem for NoSteal {
    fn dim(&self) -> usize {
        self.levels
    }

    fn deriv(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
        let lambda = self.lambda;
        for i in 1..=self.levels {
            dy[i - 1] =
                lambda * (self.s(y, i - 1) - self.s(y, i)) - (self.s(y, i) - self.s(y, i + 1));
        }
    }

    fn project(&self, y: &mut [f64]) {
        TailVector::project_slice(y);
    }
}

impl MeanFieldModel for NoSteal {
    fn name(&self) -> String {
        format!("no stealing (λ = {})", self.lambda)
    }

    fn lambda(&self) -> f64 {
        self.lambda
    }

    fn truncation(&self) -> usize {
        self.levels
    }

    fn with_truncation(&self, levels: usize) -> Self {
        Self {
            levels,
            ..self.clone()
        }
    }

    fn empty_state(&self) -> Vec<f64> {
        vec![0.0; self.levels]
    }

    fn mean_tasks(&self, y: &[f64]) -> f64 {
        y.iter().rev().sum()
    }

    fn task_tails(&self, y: &[f64]) -> Vec<f64> {
        std::iter::once(1.0).chain(y.iter().copied()).collect()
    }

    fn boundary_mass(&self, y: &[f64]) -> f64 {
        y.last().copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed_point::{solve, FixedPointOptions};

    #[test]
    fn numeric_fixed_point_matches_mm1() {
        for lambda in [0.3, 0.7, 0.9] {
            let m = NoSteal::new(lambda).unwrap();
            let fp = solve(&m, &FixedPointOptions::default()).unwrap();
            let w = m.closed_form_mean_time();
            assert!(
                (fp.mean_time_in_system - w).abs() < 1e-7,
                "λ = {lambda}: {} vs {w}",
                fp.mean_time_in_system
            );
            // Geometric tails at rate λ.
            for i in 1..6 {
                assert!(
                    (fp.task_tails[i] - lambda.powi(i as i32)).abs() < 1e-8,
                    "λ = {lambda}, i = {i}"
                );
            }
        }
    }

    #[test]
    fn closed_form_tail_is_fixed_point_of_the_ode() {
        let m = NoSteal::new(0.8).unwrap();
        let y = m.closed_form_tails().into_vec();
        let mut dy = vec![0.0; y.len()];
        m.deriv(0.0, &y, &mut dy);
        // Away from the truncation boundary the derivative vanishes.
        for (i, d) in dy.iter().enumerate().take(y.len() - 2) {
            assert!(d.abs() < 1e-12, "ds_{}/dt = {d}", i + 1);
        }
    }

    #[test]
    fn rejects_unstable_rates() {
        assert!(NoSteal::new(1.0).is_err());
        assert!(NoSteal::new(0.0).is_err());
        assert!(NoSteal::new(-0.5).is_err());
        assert!(NoSteal::new(f64::NAN).is_err());
    }

    #[test]
    fn tail_ratio_is_lambda() {
        let m = NoSteal::new(0.6).unwrap();
        let fp = solve(&m, &FixedPointOptions::default()).unwrap();
        let r = fp.tail_ratio().unwrap();
        assert!((r - 0.6).abs() < 1e-4, "ratio {r}");
    }
}
