//! Multiple victim choices — Section 3.3.
//!
//! Motivated by the power of two choices in load *sharing*, the thief
//! samples `d` potential victims independently and uniformly at random
//! and steals from the most loaded one (if it clears the threshold `T`):
//!
//! ```text
//! ds_1/dt = λ(s_0 − s_1) − (s_1 − s_2)(1 − s_T)^d
//! ds_i/dt = λ(s_{i−1} − s_i) − (s_i − s_{i+1}),                     2 ≤ i ≤ T−1
//! ds_i/dt = λ(s_{i−1} − s_i) − (s_i − s_{i+1})
//!              − ((1 − s_{i+1})^d − (1 − s_i)^d)(s_1 − s_2),        i ≥ T
//! ```
//!
//! `(1 − s_{i+1})^d − (1 − s_i)^d` is the probability the *maximum* of
//! `d` draws lands exactly on load `i`. Unlike the load-sharing setting,
//! the gain here is bounded: steals already target the right place, so
//! extra choices raise the effective steal pressure by at most a factor
//! `d` — Table 4 shows two choices help, but one choice captures most of
//! the benefit.

use loadsteal_ode::OdeSystem;

use crate::tail::TailVector;

use super::{check_lambda, default_truncation, MeanFieldModel};

/// Mean-field model of work stealing with `d` victim choices.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiChoice {
    lambda: f64,
    choices: u32,
    threshold: usize,
    levels: usize,
}

impl MultiChoice {
    /// Create the model for `0 < λ < 1`, `d ≥ 1` choices, threshold
    /// `T ≥ 2`.
    pub fn new(lambda: f64, choices: u32, threshold: usize) -> Result<Self, String> {
        check_lambda(lambda)?;
        if choices == 0 {
            return Err("need at least one victim choice".into());
        }
        if threshold < 2 {
            return Err(format!("threshold must be >= 2, got {threshold}"));
        }
        let levels = default_truncation(lambda).max(threshold + 8);
        Ok(Self {
            lambda,
            choices,
            threshold,
            levels,
        })
    }

    /// The number of victim choices `d`.
    pub fn choices(&self) -> u32 {
        self.choices
    }

    /// The victim threshold `T`.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    #[inline]
    fn s(&self, y: &[f64], i: usize) -> f64 {
        if i == 0 {
            1.0
        } else if i <= y.len() {
            y[i - 1]
        } else {
            0.0
        }
    }

    #[inline]
    fn pow_d(&self, x: f64) -> f64 {
        // d is small (1–4 in practice); powi is exact and fast.
        x.powi(self.choices as i32)
    }
}

impl OdeSystem for MultiChoice {
    fn dim(&self) -> usize {
        self.levels
    }

    fn deriv(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
        let lambda = self.lambda;
        let t = self.threshold;
        let s1 = self.s(y, 1);
        let s2 = self.s(y, 2);
        let thief_rate = s1 - s2;
        let fail = self.pow_d(1.0 - self.s(y, t));
        dy[0] = lambda * (1.0 - s1) - thief_rate * fail;
        for i in 2..=self.levels {
            let flow = lambda * (self.s(y, i - 1) - self.s(y, i));
            let dep = self.s(y, i) - self.s(y, i + 1);
            dy[i - 1] = if i < t {
                flow - dep
            } else {
                // P(max of d draws = i) — only such victims lose a task.
                let hit = self.pow_d(1.0 - self.s(y, i + 1)) - self.pow_d(1.0 - self.s(y, i));
                flow - dep - hit * thief_rate
            };
        }
    }

    fn project(&self, y: &mut [f64]) {
        TailVector::project_slice(y);
    }
}

impl MeanFieldModel for MultiChoice {
    fn name(&self) -> String {
        format!(
            "multi-choice WS (λ = {}, d = {}, T = {})",
            self.lambda, self.choices, self.threshold
        )
    }

    fn lambda(&self) -> f64 {
        self.lambda
    }

    fn truncation(&self) -> usize {
        self.levels
    }

    fn with_truncation(&self, levels: usize) -> Self {
        Self {
            levels: levels.max(self.threshold + 8),
            ..self.clone()
        }
    }

    fn empty_state(&self) -> Vec<f64> {
        vec![0.0; self.levels]
    }

    fn mean_tasks(&self, y: &[f64]) -> f64 {
        y.iter().rev().sum()
    }

    fn task_tails(&self, y: &[f64]) -> Vec<f64> {
        std::iter::once(1.0).chain(y.iter().copied()).collect()
    }

    fn boundary_mass(&self, y: &[f64]) -> f64 {
        y.last().copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed_point::{solve, FixedPointOptions};
    use crate::models::SimpleWs;

    fn opts() -> FixedPointOptions {
        FixedPointOptions::default()
    }

    #[test]
    fn one_choice_is_the_simple_model() {
        let lambda = 0.9;
        let m = MultiChoice::new(lambda, 1, 2).unwrap();
        let fp = solve(&m, &opts()).unwrap();
        let exact = SimpleWs::new(lambda).unwrap().closed_form_mean_time();
        assert!(
            (fp.mean_time_in_system - exact).abs() < 1e-7,
            "{} vs {exact}",
            fp.mean_time_in_system
        );
    }

    #[test]
    fn reproduces_table4_estimates() {
        // Table 4, "Estimate, 2 choices" column.
        for &(lambda, expect) in &[
            (0.50, 1.433),
            (0.70, 1.673),
            (0.80, 1.864),
            (0.90, 2.220),
            (0.95, 2.640),
            (0.99, 4.011),
        ] {
            let m = MultiChoice::new(lambda, 2, 2).unwrap();
            let w = solve(&m, &opts()).unwrap().mean_time_in_system;
            assert!(
                (w - expect).abs() < 5e-3,
                "λ = {lambda}: computed {w}, paper {expect}"
            );
        }
    }

    #[test]
    fn more_choices_help_monotonically() {
        let lambda = 0.95;
        let mut last = f64::INFINITY;
        for d in 1..=4 {
            let m = MultiChoice::new(lambda, d, 2).unwrap();
            let w = solve(&m, &opts()).unwrap().mean_time_in_system;
            assert!(w < last, "d = {d}: {w} !< {last}");
            last = w;
        }
    }

    #[test]
    fn deep_tail_ratio_attains_the_d_fold_rate() {
        // Section 3.3's intuition: d choices raise the steal pressure on
        // the most loaded queues by at most a factor d, so the best
        // possible tail ratio is λ/(1 + d(λ − π₂)). Deep in the tail the
        // hit probability (1−s_{i+1})^d − (1−s_i)^d linearizes to
        // d(s_i − s_{i+1}), so that best case is *attained*
        // asymptotically.
        let lambda = 0.9;
        let d = 2;
        let m = MultiChoice::new(lambda, d, 2).unwrap();
        let fp = solve(&m, &opts()).unwrap();
        let pi2 = fp.task_tails[2];
        let predicted = lambda / (1.0 + d as f64 * (lambda - pi2));
        let measured = fp.tail_ratio().unwrap();
        assert!(
            (measured - predicted).abs() < 1e-6,
            "measured {measured} vs asymptotic {predicted}"
        );
    }

    #[test]
    fn throughput_balance_holds() {
        let m = MultiChoice::new(0.8, 3, 2).unwrap();
        let fp = solve(&m, &opts()).unwrap();
        assert!((fp.task_tails[1] - 0.8).abs() < 1e-8);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(MultiChoice::new(0.5, 0, 2).is_err());
        assert!(MultiChoice::new(0.5, 2, 1).is_err());
    }
}
