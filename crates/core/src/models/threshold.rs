//! Threshold stealing — Section 2.3, equations (4)–(6).
//!
//! A thief only steals from victims holding at least `T` tasks (to make
//! the transfer worth its cost). The limiting system:
//!
//! ```text
//! ds_1/dt = λ(s_0 − s_1) − (s_1 − s_2)(1 − s_T)
//! ds_i/dt = λ(s_{i−1} − s_i) − (s_i − s_{i+1}),                        2 ≤ i ≤ T−1
//! ds_i/dt = λ(s_{i−1} − s_i) − (s_i − s_{i+1})(1 + s_1 − s_2),         i ≥ T
//! ```
//!
//! The fixed point is closed form (derived by telescoping the first
//! `T − 1` equations): `π_T = (1 + λ − √((1+λ)² − 4λ^T))/2`,
//! `π_2 = λ(λ − π_T)/(1 − π_T)`, `π_i − π_{i+1} = λ^{i−1}(λ − π_2)` up
//! to `T`, and geometric tails at ratio `λ/(1 + λ − π_2)` beyond `T`.
//! `T = 2` recovers the simple WS model exactly.

use loadsteal_ode::OdeSystem;

use crate::fixed_point::FixedPoint;
use crate::tail::TailVector;

use super::{check_lambda, default_truncation, MeanFieldModel};

/// Mean-field model of threshold-`T` work stealing.
///
/// ```
/// use loadsteal_core::models::ThresholdWs;
/// let model = ThresholdWs::new(0.9, 4).unwrap();
/// // Raising the threshold throttles stealing: more waiting than the
/// // steal-whenever-possible policy, but fewer transfers.
/// let aggressive = ThresholdWs::new(0.9, 2).unwrap();
/// assert!(model.closed_form_mean_time() > aggressive.closed_form_mean_time());
/// // Beyond T the tails stay geometric and tighter than λ.
/// assert!(model.rho_prime() < 0.9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdWs {
    lambda: f64,
    threshold: usize,
    levels: usize,
}

impl ThresholdWs {
    /// Create the model for `0 < λ < 1` and threshold `T ≥ 2`.
    pub fn new(lambda: f64, threshold: usize) -> Result<Self, String> {
        check_lambda(lambda)?;
        if threshold < 2 {
            return Err(format!("threshold must be >= 2, got {threshold}"));
        }
        let levels = default_truncation(lambda).max(threshold + 8);
        Ok(Self {
            lambda,
            threshold,
            levels,
        })
    }

    /// The steal threshold `T`.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Closed-form `π_T = (1 + λ − √((1 + λ)² − 4 λ^T)) / 2`.
    pub fn pi_t(&self) -> f64 {
        let l = self.lambda;
        let disc = (1.0 + l) * (1.0 + l) - 4.0 * l.powi(self.threshold as i32);
        0.5 * (1.0 + l - disc.sqrt())
    }

    /// Closed-form `π_2 = λ(λ − π_T)/(1 − π_T)` (from equation (4) at
    /// the fixed point).
    pub fn pi2(&self) -> f64 {
        if self.threshold == 2 {
            return self.pi_t();
        }
        let pt = self.pi_t();
        self.lambda * (self.lambda - pt) / (1.0 - pt)
    }

    /// Geometric tail ratio beyond `T`: `λ / (1 + λ − π_2)`.
    pub fn rho_prime(&self) -> f64 {
        self.lambda / (1.0 + self.lambda - self.pi2())
    }

    /// Closed-form fixed-point tails.
    ///
    /// For `i ≤ T`: `π_i = λ − (λ − π_2)(1 − λ^{i−1})/(1 − λ)`
    /// (telescoped recurrence `π_{i+1} = π_i − λ^{i−1}(λ − π_2)`);
    /// beyond `T`, geometric at [`Self::rho_prime`].
    pub fn closed_form_tails(&self) -> TailVector {
        let l = self.lambda;
        let pi2 = self.pi2();
        let rho = self.rho_prime();
        let mut v = Vec::with_capacity(self.levels);
        v.push(l); // π₁ = λ
        let mut diff = l - pi2; // π_i − π_{i+1} at i = 1
        for _ in 2..=self.threshold.min(self.levels) {
            let next = v.last().unwrap() - diff;
            v.push(next);
            diff *= l;
        }
        let mut cur = *v.last().unwrap();
        while v.len() < self.levels {
            cur *= rho;
            v.push(cur);
        }
        TailVector::from_slice(&v)
    }

    /// Closed-form mean tasks per processor
    /// `L = Σ_{i=1}^{T−1} π_i + π_T/(1 − ρ')`.
    pub fn closed_form_mean_tasks(&self) -> f64 {
        let tails = self.closed_form_tails();
        let head: f64 = (1..self.threshold).map(|i| tails.get(i)).sum();
        head + self.pi_t() / (1.0 - self.rho_prime())
    }

    /// Closed-form mean time in system `W = L/λ`.
    pub fn closed_form_mean_time(&self) -> f64 {
        self.closed_form_mean_tasks() / self.lambda
    }

    /// The closed-form fixed point packaged with its metrics.
    pub fn closed_form_fixed_point(&self) -> FixedPoint {
        let state = self.closed_form_tails().into_vec();
        let mut dy = vec![0.0; state.len()];
        self.deriv(0.0, &state, &mut dy);
        let residual = dy.iter().fold(0.0_f64, |a, &v| a.max(v.abs()));
        FixedPoint {
            residual,
            polished: true,
            mean_tasks: self.closed_form_mean_tasks(),
            mean_time_in_system: self.closed_form_mean_time(),
            task_tails: std::iter::once(1.0).chain(state.iter().copied()).collect(),
            truncation: self.levels,
            state,
        }
    }

    #[inline]
    fn s(&self, y: &[f64], i: usize) -> f64 {
        if i == 0 {
            1.0
        } else if i <= y.len() {
            y[i - 1]
        } else {
            0.0
        }
    }
}

impl OdeSystem for ThresholdWs {
    fn dim(&self) -> usize {
        self.levels
    }

    fn deriv(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
        let lambda = self.lambda;
        let s1 = self.s(y, 1);
        let s2 = self.s(y, 2);
        let st = self.s(y, self.threshold);
        let steal_rate = s1 - s2;
        dy[0] = lambda * (1.0 - s1) - (s1 - s2) * (1.0 - st);
        for i in 2..=self.levels {
            let flow = lambda * (self.s(y, i - 1) - self.s(y, i));
            let dep = self.s(y, i) - self.s(y, i + 1);
            dy[i - 1] = if i < self.threshold {
                flow - dep
            } else {
                flow - dep * (1.0 + steal_rate)
            };
        }
    }

    fn project(&self, y: &mut [f64]) {
        TailVector::project_slice(y);
    }
}

impl MeanFieldModel for ThresholdWs {
    fn name(&self) -> String {
        format!("threshold WS (λ = {}, T = {})", self.lambda, self.threshold)
    }

    fn lambda(&self) -> f64 {
        self.lambda
    }

    fn truncation(&self) -> usize {
        self.levels
    }

    fn with_truncation(&self, levels: usize) -> Self {
        Self {
            levels: levels.max(self.threshold + 8),
            ..self.clone()
        }
    }

    fn empty_state(&self) -> Vec<f64> {
        vec![0.0; self.levels]
    }

    fn mean_tasks(&self, y: &[f64]) -> f64 {
        y.iter().rev().sum()
    }

    fn task_tails(&self, y: &[f64]) -> Vec<f64> {
        std::iter::once(1.0).chain(y.iter().copied()).collect()
    }

    fn boundary_mass(&self, y: &[f64]) -> f64 {
        y.last().copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed_point::{solve, FixedPointOptions};
    use crate::models::SimpleWs;

    #[test]
    fn t2_reduces_to_simple_ws() {
        for lambda in [0.5, 0.9] {
            let t = ThresholdWs::new(lambda, 2).unwrap();
            let s = SimpleWs::new(lambda).unwrap();
            assert!((t.pi2() - s.pi2()).abs() < 1e-14);
            assert!((t.closed_form_mean_time() - s.closed_form_mean_time()).abs() < 1e-12);
        }
    }

    #[test]
    fn closed_form_is_a_fixed_point() {
        for threshold in [2, 3, 5, 8] {
            for lambda in [0.5, 0.9] {
                let m = ThresholdWs::new(lambda, threshold).unwrap();
                let fp = m.closed_form_fixed_point();
                assert!(
                    fp.residual < 1e-12,
                    "λ = {lambda}, T = {threshold}: residual {}",
                    fp.residual
                );
            }
        }
    }

    #[test]
    fn numeric_matches_closed_form() {
        for threshold in [3, 4] {
            for lambda in [0.6, 0.9] {
                let m = ThresholdWs::new(lambda, threshold).unwrap();
                let fp = solve(&m, &FixedPointOptions::default()).unwrap();
                let exact = m.closed_form_mean_time();
                assert!(
                    (fp.mean_time_in_system - exact).abs() < 1e-7,
                    "λ = {lambda}, T = {threshold}: {} vs {exact}",
                    fp.mean_time_in_system
                );
            }
        }
    }

    #[test]
    fn telescoped_sum_condition_holds() {
        // Σ_{i=1}^{T−1} dπ_i/dt = 0 collapses to
        // λ(1 − π_{T−1}) − (λ − π_T) + (λ − π_2) π_T = 0.
        let m = ThresholdWs::new(0.8, 5).unwrap();
        let t = m.closed_form_tails();
        let lhs = 0.8 * (1.0 - t.get(4)) - (0.8 - t.get(5)) + (0.8 - t.get(2)) * t.get(5);
        assert!(lhs.abs() < 1e-12, "sum condition residual {lhs}");
    }

    #[test]
    fn higher_threshold_means_fewer_steals_but_bounded_tails() {
        // π_T decreases in T; the tail ratio stays below λ (stealing
        // still beats no stealing beyond the threshold).
        let lambda = 0.9;
        let mut last_pit = f64::INFINITY;
        for t in 2..7 {
            let m = ThresholdWs::new(lambda, t).unwrap();
            assert!(m.pi_t() < last_pit);
            last_pit = m.pi_t();
            assert!(m.rho_prime() < lambda);
        }
    }

    #[test]
    fn tails_below_threshold_match_recurrence() {
        let m = ThresholdWs::new(0.7, 6).unwrap();
        let t = m.closed_form_tails();
        // π_{i+1} = π_i − λ^{i−1}(λ − π_2) for i < T.
        for i in 1..5usize {
            let expect = t.get(i) - 0.7f64.powi(i as i32 - 1) * (0.7 - m.pi2());
            assert!((t.get(i + 1) - expect).abs() < 1e-12, "i = {i}");
        }
    }

    #[test]
    fn rejects_threshold_below_two() {
        assert!(ThresholdWs::new(0.5, 1).is_err());
        assert!(ThresholdWs::new(0.5, 0).is_err());
    }
}
