//! Transfer times — Section 3.2.
//!
//! Stolen tasks are no longer teleported: a successful steal removes the
//! task from the victim immediately, but it reaches the thief only after
//! an exponential transfer delay of mean `1/r`. A thief with a task in
//! flight does not steal again (at most one outstanding steal), although
//! it can still be a victim. The state doubles: `s_i` counts processors
//! *not* awaiting a transfer with ≥ i tasks, `w_i` counts awaiting ones.
//!
//! ```text
//! ds_0/dt = r w_0 − (s_1 − s_2)(s_T + w_T)
//! ds_i/dt = λ(s_{i−1} − s_i) + r w_{i−1} − (s_i − s_{i+1}),             1 ≤ i ≤ T−1
//! ds_i/dt = λ(s_{i−1} − s_i) + r w_{i−1} − (s_i − s_{i+1})(1 + s_1 − s_2),   i ≥ T
//! dw_0/dt = −r w_0 + (s_1 − s_2)(s_T + w_T)
//! dw_i/dt = λ(w_{i−1} − w_i) − r w_i − (w_i − w_{i+1}),                 1 ≤ i ≤ T−1
//! dw_i/dt = λ(w_{i−1} − w_i) − r w_i − (w_i − w_{i+1})(1 + s_1 − s_2),  i ≥ T
//! ```
//!
//! `w_0 = 1 − s_0` is eliminated from the numeric state (it is conserved
//! by the dynamics, and keeping it would make the fixed-point Jacobian
//! singular). The mean number of tasks per processor counts the tasks in
//! transit: `L = Σ_{i≥1}(s_i + w_i) + w_0`.

use loadsteal_ode::OdeSystem;

use super::{check_lambda, default_truncation, MeanFieldModel};

/// Mean-field model of threshold stealing with transfer delays.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferWs {
    lambda: f64,
    rate: f64,
    threshold: usize,
    levels: usize,
}

impl TransferWs {
    /// Create the model for `0 < λ < 1`, transfer rate `r > 0` (mean
    /// transfer time `1/r`), threshold `T ≥ 2`.
    pub fn new(lambda: f64, rate: f64, threshold: usize) -> Result<Self, String> {
        check_lambda(lambda)?;
        if !(rate > 0.0 && rate.is_finite()) {
            return Err(format!(
                "transfer rate must be positive and finite, got {rate}"
            ));
        }
        if threshold < 2 {
            return Err(format!("threshold must be >= 2, got {threshold}"));
        }
        let levels = default_truncation(lambda).max(threshold + 8);
        Ok(Self {
            lambda,
            rate,
            threshold,
            levels,
        })
    }

    /// The transfer rate `r`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The victim threshold `T`.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    // State layout: y = [s_0, s_1 … s_L, w_1 … w_L]; w_0 = 1 − s_0.

    #[inline]
    fn s(&self, y: &[f64], i: usize) -> f64 {
        if i <= self.levels {
            y[i]
        } else {
            0.0
        }
    }

    #[inline]
    fn w(&self, y: &[f64], i: usize) -> f64 {
        if i == 0 {
            1.0 - y[0]
        } else if i <= self.levels {
            y[self.levels + i]
        } else {
            0.0
        }
    }
}

impl OdeSystem for TransferWs {
    fn dim(&self) -> usize {
        2 * self.levels + 1
    }

    // Loop variables are occupancy levels i as in the paper's equations.
    #[allow(clippy::needless_range_loop)]
    fn deriv(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
        let (lambda, r, t) = (self.lambda, self.rate, self.threshold);
        let s1 = self.s(y, 1);
        let s2 = self.s(y, 2);
        let thief_rate = s1 - s2;
        let success = self.s(y, t) + self.w(y, t);
        // s_0
        dy[0] = r * self.w(y, 0) - thief_rate * success;
        // s_i
        for i in 1..=self.levels {
            let flow = lambda * (self.s(y, i - 1) - self.s(y, i)) + r * self.w(y, i - 1);
            let dep = self.s(y, i) - self.s(y, i + 1);
            dy[i] = if i < t {
                flow - dep
            } else {
                flow - dep * (1.0 + thief_rate)
            };
        }
        // w_i (i ≥ 1; w_0 is implicit)
        for i in 1..=self.levels {
            let flow = lambda * (self.w(y, i - 1) - self.w(y, i)) - r * self.w(y, i);
            let dep = self.w(y, i) - self.w(y, i + 1);
            dy[self.levels + i] = if i < t {
                flow - dep
            } else {
                flow - dep * (1.0 + thief_rate)
            };
        }
    }

    fn project(&self, y: &mut [f64]) {
        // s-block: s_0 ∈ [0, 1], then non-increasing.
        let mut prev = 1.0_f64;
        for v in y[..=self.levels].iter_mut() {
            *v = v.clamp(0.0, prev);
            prev = *v;
        }
        // w-block: bounded by w_0 = 1 − s_0, then non-increasing.
        let mut prev = 1.0 - y[0];
        for v in y[self.levels + 1..].iter_mut() {
            *v = v.clamp(0.0, prev);
            prev = *v;
        }
    }
}

impl MeanFieldModel for TransferWs {
    fn name(&self) -> String {
        format!(
            "transfer WS (λ = {}, r = {}, T = {})",
            self.lambda, self.rate, self.threshold
        )
    }

    fn lambda(&self) -> f64 {
        self.lambda
    }

    fn truncation(&self) -> usize {
        self.levels
    }

    fn with_truncation(&self, levels: usize) -> Self {
        Self {
            levels: levels.max(self.threshold + 8),
            ..self.clone()
        }
    }

    fn empty_state(&self) -> Vec<f64> {
        let mut y = vec![0.0; 2 * self.levels + 1];
        y[0] = 1.0; // everyone idle, nobody awaiting a transfer
        y
    }

    /// `L = Σ_{i≥1}(s_i + w_i) + w_0` — the `w_0` term counts the tasks
    /// in transit (each awaiting processor has exactly one).
    fn mean_tasks(&self, y: &[f64]) -> f64 {
        let queued: f64 = y[1..].iter().rev().sum();
        queued + self.w(y, 0)
    }

    fn task_tails(&self, y: &[f64]) -> Vec<f64> {
        // Folded over the waiting split: fraction with ≥ i queued tasks.
        let mut tails = vec![1.0];
        for i in 1..=self.levels {
            tails.push(self.s(y, i) + self.w(y, i));
        }
        tails
    }

    fn boundary_mass(&self, y: &[f64]) -> f64 {
        self.s(y, self.levels).max(self.w(y, self.levels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed_point::{solve, FixedPointOptions};
    use crate::models::ThresholdWs;

    fn opts() -> FixedPointOptions {
        FixedPointOptions::default()
    }

    #[test]
    fn throughput_balance_holds() {
        // At the fixed point s_1 + w_1 = λ (busy fraction = arrival rate).
        let m = TransferWs::new(0.8, 0.25, 4).unwrap();
        let fp = solve(&m, &opts()).unwrap();
        let busy = fp.task_tails[1];
        assert!((busy - 0.8).abs() < 1e-7, "busy fraction {busy}");
    }

    #[test]
    fn population_split_is_conserved() {
        // s_0 + w_0 = 1 by construction; check s_0 stays in (0, 1).
        let m = TransferWs::new(0.9, 0.25, 4).unwrap();
        let fp = solve(&m, &opts()).unwrap();
        let s0 = fp.state[0];
        assert!(s0 > 0.0 && s0 < 1.0, "s₀ = {s0}");
    }

    #[test]
    fn reproduces_table3_estimates() {
        // Table 3 (r = 0.25): selected cells.
        for &(lambda, t, expect) in &[
            (0.50, 4, 1.950),
            (0.70, 4, 2.938),
            (0.90, 4, 7.015),
            (0.50, 3, 1.985),
            (0.90, 6, 7.026),
        ] {
            let m = TransferWs::new(lambda, 0.25, t).unwrap();
            let w = solve(&m, &opts()).unwrap().mean_time_in_system;
            assert!(
                (w - expect).abs() < 0.02,
                "λ = {lambda}, T = {t}: computed {w}, paper {expect}"
            );
        }
    }

    #[test]
    fn best_threshold_shifts_with_load() {
        // Table 3's observation: T* = 4 ≈ 1/r at λ = 0.5; larger at 0.95.
        let best_t = |lambda: f64| -> usize {
            (3..=6)
                .min_by(|&a, &b| {
                    let wa = solve(&TransferWs::new(lambda, 0.25, a).unwrap(), &opts())
                        .unwrap()
                        .mean_time_in_system;
                    let wb = solve(&TransferWs::new(lambda, 0.25, b).unwrap(), &opts())
                        .unwrap()
                        .mean_time_in_system;
                    wa.total_cmp(&wb)
                })
                .unwrap()
        };
        assert_eq!(best_t(0.5), 4);
        assert!(best_t(0.95) > 4);
    }

    #[test]
    fn transfer_cost_hurts_relative_to_instant_steals() {
        let lambda = 0.8;
        let instant = ThresholdWs::new(lambda, 4).unwrap().closed_form_mean_time();
        let delayed = solve(&TransferWs::new(lambda, 0.25, 4).unwrap(), &opts())
            .unwrap()
            .mean_time_in_system;
        assert!(delayed > instant, "delayed {delayed} vs instant {instant}");
    }

    #[test]
    fn fast_transfers_approach_instant_stealing() {
        let lambda = 0.8;
        let instant = ThresholdWs::new(lambda, 4).unwrap().closed_form_mean_time();
        let fast = solve(&TransferWs::new(lambda, 64.0, 4).unwrap(), &opts())
            .unwrap()
            .mean_time_in_system;
        assert!(
            (fast - instant).abs() < 0.05,
            "r = 64: {fast} vs instant {instant}"
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(TransferWs::new(0.5, 0.0, 4).is_err());
        assert!(TransferWs::new(0.5, 0.25, 1).is_err());
        assert!(TransferWs::new(0.0, 0.25, 4).is_err());
    }
}
