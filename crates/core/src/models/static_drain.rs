//! Internal arrivals and static systems — Section 3.5.
//!
//! The arrival rate splits into `λ_ext` (new tasks from outside) and
//! `λ_int` (tasks spawned by tasks already at the processor; active only
//! while the queue is non-empty). Setting `λ_ext = 0` and starting from
//! a loaded state gives a *static* system that runs until all queues are
//! empty: for large `n` the trajectory of the differential equations
//! approximates the drain profile, and the time until `s_1` falls below
//! a small threshold approximates the makespan.
//!
//! With simple (threshold-2) stealing:
//!
//! ```text
//! ds_1/dt = λ_ext(s_0 − s_1) − (s_1 − s_2)(1 − s_2)
//! ds_i/dt = (λ_ext + λ_int)(s_{i−1} − s_i) − (s_i − s_{i+1})(1 + s_1 − s_2),   i ≥ 2
//! ```
//!
//! — internal arrivals cannot lift an empty processor to load 1, so the
//! `i = 1` flow only carries `λ_ext`.

use loadsteal_ode::solver::Control;
use loadsteal_ode::{AdaptiveOptions, DormandPrince45, IntegrationError, OdeSystem};

use crate::tail::TailVector;

use super::MeanFieldModel;

/// Mean-field model with split external/internal arrivals; supports the
/// static (`λ_ext = 0`) drain regime.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticDrain {
    lambda_ext: f64,
    lambda_int: f64,
    levels: usize,
}

impl StaticDrain {
    /// Create the model. Requires `λ_ext + λ_int < 1` for stability and
    /// `λ_ext ≥ 0`, `λ_int ≥ 0`. `levels` bounds the initial loads the
    /// state can represent.
    pub fn new(lambda_ext: f64, lambda_int: f64, levels: usize) -> Result<Self, String> {
        if !(lambda_ext >= 0.0 && lambda_ext.is_finite()) {
            return Err(format!("λ_ext must be finite and >= 0, got {lambda_ext}"));
        }
        if !(lambda_int >= 0.0 && lambda_int.is_finite()) {
            return Err(format!("λ_int must be finite and >= 0, got {lambda_int}"));
        }
        if lambda_ext + lambda_int >= 1.0 {
            return Err(format!(
                "unstable: λ_ext + λ_int = {} >= 1",
                lambda_ext + lambda_int
            ));
        }
        if levels == 0 {
            return Err("need at least one level".into());
        }
        Ok(Self {
            lambda_ext,
            lambda_int,
            levels,
        })
    }

    /// External arrival rate `λ_ext`.
    pub fn lambda_ext(&self) -> f64 {
        self.lambda_ext
    }

    /// Internal (spawned-while-busy) arrival rate `λ_int`.
    pub fn lambda_int(&self) -> f64 {
        self.lambda_int
    }

    /// Trajectory from a uniformly loaded start (`initial_load` tasks on
    /// every processor) until `s_1 < eps` or `t_max`; returns the drain
    /// time. Meaningful in the static regime (`λ_ext = 0`).
    pub fn drain_time(
        &self,
        initial_load: usize,
        eps: f64,
        t_max: f64,
    ) -> Result<f64, IntegrationError> {
        let mut y = TailVector::uniform_load(initial_load, self.levels).into_vec();
        let mut dp = DormandPrince45::new(AdaptiveOptions::default());
        dp.integrate_observed(self, 0.0, t_max, &mut y, |_t, y| {
            if y[0] < eps {
                Control::Stop
            } else {
                Control::Continue
            }
        })
    }

    #[inline]
    fn s(&self, y: &[f64], i: usize) -> f64 {
        if i == 0 {
            1.0
        } else if i <= y.len() {
            y[i - 1]
        } else {
            0.0
        }
    }
}

impl OdeSystem for StaticDrain {
    fn dim(&self) -> usize {
        self.levels
    }

    fn deriv(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
        let s1 = self.s(y, 1);
        let s2 = self.s(y, 2);
        let steal_rate = s1 - s2;
        let total = self.lambda_ext + self.lambda_int;
        dy[0] = self.lambda_ext * (1.0 - s1) - (s1 - s2) * (1.0 - s2);
        for i in 2..=self.levels {
            dy[i - 1] = total * (self.s(y, i - 1) - self.s(y, i))
                - (self.s(y, i) - self.s(y, i + 1)) * (1.0 + steal_rate);
        }
    }

    fn project(&self, y: &mut [f64]) {
        TailVector::project_slice(y);
    }
}

impl MeanFieldModel for StaticDrain {
    fn name(&self) -> String {
        format!(
            "internal-arrival WS (λ_ext = {}, λ_int = {})",
            self.lambda_ext, self.lambda_int
        )
    }

    /// Total task-generation rate; Little's law uses it in the dynamic
    /// regime. (In the pure static regime there are no arrivals and the
    /// fixed point is the empty system.)
    fn lambda(&self) -> f64 {
        (self.lambda_ext + self.lambda_int).max(f64::MIN_POSITIVE)
    }

    fn truncation(&self) -> usize {
        self.levels
    }

    fn with_truncation(&self, levels: usize) -> Self {
        Self {
            levels,
            ..self.clone()
        }
    }

    fn empty_state(&self) -> Vec<f64> {
        vec![0.0; self.levels]
    }

    fn mean_tasks(&self, y: &[f64]) -> f64 {
        y.iter().rev().sum()
    }

    fn task_tails(&self, y: &[f64]) -> Vec<f64> {
        std::iter::once(1.0).chain(y.iter().copied()).collect()
    }

    fn boundary_mass(&self, y: &[f64]) -> f64 {
        y.last().copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed_point::{solve, FixedPointOptions};
    use crate::models::SimpleWs;

    #[test]
    fn pure_external_matches_simple_ws() {
        let lambda = 0.85;
        let m = StaticDrain::new(lambda, 0.0, 256).unwrap();
        let fp = solve(&m, &FixedPointOptions::default()).unwrap();
        let exact = SimpleWs::new(lambda).unwrap().closed_form_mean_time();
        assert!(
            (fp.mean_time_in_system - exact).abs() < 1e-6,
            "{} vs {exact}",
            fp.mean_time_in_system
        );
    }

    #[test]
    fn static_system_drains() {
        let m = StaticDrain::new(0.0, 0.0, 64).unwrap();
        let t = m.drain_time(10, 1e-6, 1e4).unwrap();
        // 10 unit-mean tasks per processor, served at rate ≥ 1 with
        // stealing smoothing the end: drain time is O(10), not O(100).
        assert!(t > 8.0 && t < 60.0, "drain time {t}");
    }

    #[test]
    fn heavier_initial_load_drains_later() {
        let m = StaticDrain::new(0.0, 0.0, 128).unwrap();
        let t_small = m.drain_time(5, 1e-6, 1e4).unwrap();
        let t_big = m.drain_time(50, 1e-6, 1e4).unwrap();
        assert!(t_big > t_small + 30.0, "{t_small} vs {t_big}");
    }

    #[test]
    fn internal_spawning_slows_the_drain() {
        let plain = StaticDrain::new(0.0, 0.0, 64).unwrap();
        let spawning = StaticDrain::new(0.0, 0.5, 64).unwrap();
        let t0 = plain.drain_time(10, 1e-6, 1e5).unwrap();
        let t1 = spawning.drain_time(10, 1e-6, 1e5).unwrap();
        assert!(t1 > t0, "spawning {t1} vs plain {t0}");
    }

    #[test]
    fn internal_arrivals_raise_steady_load() {
        let base = solve(
            &StaticDrain::new(0.5, 0.0, 256).unwrap(),
            &FixedPointOptions::default(),
        )
        .unwrap();
        let spawning = solve(
            &StaticDrain::new(0.5, 0.3, 256).unwrap(),
            &FixedPointOptions::default(),
        )
        .unwrap();
        assert!(spawning.mean_tasks > base.mean_tasks);
    }

    #[test]
    fn rejects_unstable_totals() {
        assert!(StaticDrain::new(0.6, 0.5, 64).is_err());
        assert!(StaticDrain::new(-0.1, 0.0, 64).is_err());
        assert!(StaticDrain::new(0.1, 0.0, 0).is_err());
    }
}
