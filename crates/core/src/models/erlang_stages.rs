//! Erlang's method of stages: (nearly) constant service times —
//! Section 3.1.
//!
//! A constant unit service is approximated by `c` exponential stages of
//! mean `1/c` each (a gamma/Erlang-c service law; `c → ∞` gives a
//! constant). The state tracks *stages*: `s_i` = fraction of processors
//! with at least `i` stages of work left. A queued task carries `c`
//! stages, so a processor with ≥ 2 tasks is one with ≥ c + 1 stages.
//! Stealing is the simple policy (steal whenever a random victim has at
//! least two tasks, i.e. `T = 2`):
//!
//! ```text
//! ds_1/dt = λ(s_0 − s_1) − c(s_1 − s_2)(1 − s_{c+1})
//! ds_i/dt = λ(s_0 − s_i) + c(s_1 − s_2) s_{i+c} − c(s_i − s_{i+1}),       2 ≤ i ≤ c
//! ds_i/dt = λ(s_{i−c} − s_i) − c(s_i − s_{i+1})
//!              − c(s_i − s_{i+c})(s_1 − s_2),                             i ≥ c+1
//! ```
//!
//! (An arrival adds `c` stages at once, which is why `s_i` for `i ≤ c`
//! feeds from `s_0`; a steal moves exactly `c` stages from victim to
//! thief.) The paper's Table 2 compares the `c = 10` and `c = 20` fixed
//! points against simulations with truly constant service times.

use loadsteal_ode::OdeSystem;

use crate::tail::{truncation_for_ratio, TailVector};

use super::{check_lambda, MeanFieldModel};

/// Mean-field model of simple WS with Erlang-`c` (≈ constant) service.
#[derive(Debug, Clone, PartialEq)]
pub struct ErlangStages {
    lambda: f64,
    stages: usize,
    threshold: usize,
    levels: usize,
}

impl ErlangStages {
    /// Create the model for `0 < λ < 1` and `c ≥ 1` service stages with
    /// the paper's steal-whenever-possible policy (`T = 2`).
    pub fn new(lambda: f64, stages: usize) -> Result<Self, String> {
        Self::with_threshold(lambda, stages, 2)
    }

    /// Like [`Self::new`] but with a victim-load threshold `T ≥ 2`
    /// (a victim must hold at least `T` tasks, i.e. `(T−1)c + 1`
    /// stages) — the Section 2.3 and 3.1 extensions combined.
    pub fn with_threshold(lambda: f64, stages: usize, threshold: usize) -> Result<Self, String> {
        check_lambda(lambda)?;
        if stages == 0 {
            return Err("need at least one service stage".into());
        }
        if threshold < 2 {
            return Err(format!("threshold must be >= 2, got {threshold}"));
        }
        // Per-task tails decay at least as fast as the exponential-service
        // stealing system's ρ'; per-stage that is ρ'^(1/c).
        let rho_task = {
            let disc = (1.0 + lambda) * (1.0 + lambda) - 4.0 * lambda * lambda;
            let pi2 = 0.5 * (1.0 + lambda - disc.sqrt());
            lambda / (1.0 + lambda - pi2)
        };
        let stage_ratio = rho_task.powf(1.0 / stages as f64);
        let levels = truncation_for_ratio(stage_ratio, 1e-14, stages * 8, 60_000)
            .max((threshold + 1) * stages + 8);
        Ok(Self {
            lambda,
            stages,
            threshold,
            levels,
        })
    }

    /// The number of service stages `c`.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// The victim-load threshold `T` (in tasks).
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// The threshold in *stages*: a victim holds ≥ T tasks iff it holds
    /// ≥ (T−1)c + 1 stages.
    fn stage_threshold(&self) -> usize {
        (self.threshold - 1) * self.stages + 1
    }

    #[inline]
    fn s(&self, y: &[f64], i: usize) -> f64 {
        if i == 0 {
            1.0
        } else if i <= y.len() {
            y[i - 1]
        } else {
            0.0
        }
    }

    #[inline]
    fn s_signed(&self, y: &[f64], i: isize) -> f64 {
        if i <= 0 {
            1.0
        } else {
            self.s(y, i as usize)
        }
    }
}

impl OdeSystem for ErlangStages {
    fn dim(&self) -> usize {
        self.levels
    }

    fn deriv(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
        let lambda = self.lambda;
        let c = self.stages;
        let cf = c as f64;
        let s1 = self.s(y, 1);
        let s2 = self.s(y, 2);
        // Rate of steal attempts = rate of final-stage completions; a
        // victim qualifies with ≥ T tasks, i.e. ≥ q = (T−1)c+1 stages.
        let steal_rate = cf * (s1 - s2);
        let q = self.stage_threshold();
        let sq = self.s(y, q);
        dy[0] = lambda * (1.0 - s1) - steal_rate * (1.0 - sq);
        for i in 2..=self.levels {
            // Arrivals add c fresh stages: any processor with ≥ i−c
            // stages reaches ≥ i (s_0 = 1 covers i ≤ c).
            let arrivals = lambda * (self.s_signed(y, i as isize - c as isize) - self.s(y, i));
            let stage_dep = cf * (self.s(y, i) - self.s(y, i + 1));
            // Thief side: a successful steal lifts an empty processor to
            // exactly c stages, feeding every level i ≤ c.
            let gain = if i <= c { steal_rate * sq } else { 0.0 };
            // Victim side: qualifying victims with stages in
            // [max(i, q), i+c−1] drop below i when robbed of c stages.
            let lo = i.max(q);
            let loss = if i + c > q {
                steal_rate * (self.s(y, lo) - self.s(y, i + c))
            } else {
                0.0
            };
            dy[i - 1] = arrivals - stage_dep + gain - loss;
        }
    }

    fn project(&self, y: &mut [f64]) {
        TailVector::project_slice(y);
    }
}

impl MeanFieldModel for ErlangStages {
    fn name(&self) -> String {
        format!(
            "erlang-stage WS (λ = {}, c = {} stages, T = {})",
            self.lambda, self.stages, self.threshold
        )
    }

    fn lambda(&self) -> f64 {
        self.lambda
    }

    fn truncation(&self) -> usize {
        self.levels
    }

    fn with_truncation(&self, levels: usize) -> Self {
        Self {
            levels: levels.max(self.stages * 4),
            ..self.clone()
        }
    }

    fn empty_state(&self) -> Vec<f64> {
        vec![0.0; self.levels]
    }

    /// Mean *tasks* per processor: a processor has ≥ k tasks iff it has
    /// ≥ (k−1)c + 1 stages, so `L = Σ_{k≥1} s_{(k−1)c+1}`.
    fn mean_tasks(&self, y: &[f64]) -> f64 {
        let mut total = 0.0;
        let mut idx = 1;
        while idx <= self.levels {
            total += self.s(y, idx);
            idx += self.stages;
        }
        total
    }

    fn task_tails(&self, y: &[f64]) -> Vec<f64> {
        let mut tails = vec![1.0];
        let mut idx = 1;
        while idx <= self.levels {
            tails.push(self.s(y, idx));
            idx += self.stages;
        }
        tails
    }

    fn boundary_mass(&self, y: &[f64]) -> f64 {
        y.last().copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed_point::{solve, FixedPointOptions};
    use crate::models::SimpleWs;

    fn opts() -> FixedPointOptions {
        FixedPointOptions::default()
    }

    #[test]
    fn one_stage_reduces_to_simple_ws() {
        let lambda = 0.8;
        let m = ErlangStages::new(lambda, 1).unwrap();
        let fp = solve(&m, &opts()).unwrap();
        let exact = SimpleWs::new(lambda).unwrap().closed_form_mean_time();
        assert!(
            (fp.mean_time_in_system - exact).abs() < 1e-6,
            "c = 1: {} vs simple WS {exact}",
            fp.mean_time_in_system
        );
    }

    #[test]
    fn throughput_balance_in_stages() {
        // At the fixed point service output (fraction busy) equals λ.
        let m = ErlangStages::new(0.7, 10).unwrap();
        let fp = solve(&m, &opts()).unwrap();
        assert!(
            (fp.task_tails[1] - 0.7).abs() < 1e-7,
            "π₁ = {}",
            fp.task_tails[1]
        );
    }

    #[test]
    fn constant_service_beats_exponential() {
        // Table 2's headline: lower service variability → smaller W.
        let lambda = 0.9;
        let exp_w = SimpleWs::new(lambda).unwrap().closed_form_mean_time();
        let det_w = solve(&ErlangStages::new(lambda, 10).unwrap(), &opts())
            .unwrap()
            .mean_time_in_system;
        assert!(det_w < exp_w, "c=10 {det_w} vs exponential {exp_w}");
    }

    #[test]
    fn reproduces_table2_estimates_c10() {
        // Table 2, "c = 10" column.
        for &(lambda, expect) in &[(0.50, 1.405), (0.80, 2.070), (0.90, 2.759)] {
            let m = ErlangStages::new(lambda, 10).unwrap();
            let w = solve(&m, &opts()).unwrap().mean_time_in_system;
            assert!(
                (w - expect).abs() < 0.02,
                "λ = {lambda}: computed {w}, paper {expect}"
            );
        }
    }

    #[test]
    fn more_stages_move_towards_constant() {
        // W decreases with c (less service variability).
        let lambda = 0.9;
        let w10 = solve(&ErlangStages::new(lambda, 10).unwrap(), &opts())
            .unwrap()
            .mean_time_in_system;
        let w20 = solve(&ErlangStages::new(lambda, 20).unwrap(), &opts())
            .unwrap()
            .mean_time_in_system;
        assert!(w20 < w10, "c=20 {w20} vs c=10 {w10}");
        // And the paper's c = 20 value at λ = 0.9 is 2.700.
        assert!((w20 - 2.700).abs() < 0.02, "w20 = {w20}");
    }

    #[test]
    fn one_stage_with_threshold_matches_threshold_model() {
        use crate::models::ThresholdWs;
        let lambda = 0.9;
        for t in [3usize, 5] {
            let m = ErlangStages::with_threshold(lambda, 1, t).unwrap();
            let fp = solve(&m, &opts()).unwrap();
            let exact = ThresholdWs::new(lambda, t).unwrap().closed_form_mean_time();
            assert!(
                (fp.mean_time_in_system - exact).abs() < 1e-6,
                "c = 1, T = {t}: {} vs {exact}",
                fp.mean_time_in_system
            );
        }
    }

    #[test]
    fn threshold_raises_constant_service_times_too() {
        // Raising T restricts stealing, so W grows (at c = 5, λ = 0.9).
        let lambda = 0.9;
        let w2 = solve(
            &ErlangStages::with_threshold(lambda, 5, 2).unwrap(),
            &opts(),
        )
        .unwrap()
        .mean_time_in_system;
        let w4 = solve(
            &ErlangStages::with_threshold(lambda, 5, 4).unwrap(),
            &opts(),
        )
        .unwrap()
        .mean_time_in_system;
        assert!(w4 > w2, "T=4 {w4} vs T=2 {w2}");
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(ErlangStages::new(0.5, 0).is_err());
        assert!(ErlangStages::new(1.2, 10).is_err());
        assert!(ErlangStages::with_threshold(0.5, 5, 1).is_err());
    }
}
