//! The simple work-stealing model — Section 2.2, equations (2)–(3).
//!
//! A processor that completes its final task attempts to steal one task
//! from the tail of a uniformly random victim; the steal succeeds iff
//! the victim holds at least two tasks. In the mean field:
//!
//! ```text
//! ds_1/dt = λ(s_0 − s_1) − (s_1 − s_2)(1 − s_2)
//! ds_i/dt = λ(s_{i−1} − s_i) − (s_i − s_{i+1})(1 + s_1 − s_2),   i ≥ 2
//! ```
//!
//! The fixed point is known in closed form (`π_1 = λ`,
//! `π_2 = (1 + λ − √(1 + 2λ − 3λ²))/2`, then geometric with ratio
//! `ρ' = λ/(1 + λ − π_2)`), which is what the paper's Table 1
//! "Estimate" column reports via the mean time in system.

use loadsteal_ode::OdeSystem;

use crate::fixed_point::FixedPoint;
use crate::tail::TailVector;

use super::{check_lambda, default_truncation, MeanFieldModel};

/// Mean-field model of the paper's simple WS algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct SimpleWs {
    lambda: f64,
    levels: usize,
}

impl SimpleWs {
    /// Create the model for arrival rate `0 < λ < 1`.
    pub fn new(lambda: f64) -> Result<Self, String> {
        check_lambda(lambda)?;
        Ok(Self {
            lambda,
            levels: default_truncation(lambda),
        })
    }

    /// The arrival rate λ.
    pub fn arrival_rate(&self) -> f64 {
        self.lambda
    }

    /// Closed-form `π_2 = (1 + λ − √(1 + 2λ − 3λ²)) / 2`, the fraction
    /// of processors with at least two tasks at the fixed point.
    pub fn pi2(&self) -> f64 {
        let l = self.lambda;
        let disc = (1.0 + l) * (1.0 + l) - 4.0 * l * l; // = 1 + 2λ − 3λ²
        0.5 * (1.0 + l - disc.sqrt())
    }

    /// The geometric tail ratio `ρ' = λ / (1 + λ − π_2)`.
    ///
    /// The denominator is the *apparent service rate*: the real rate 1
    /// plus the steal rate `π_1 − π_2 = λ − π_2` experienced by loaded
    /// processors. Strictly less than λ, so stealing tightens the tails.
    pub fn rho_prime(&self) -> f64 {
        self.lambda / (1.0 + self.lambda - self.pi2())
    }

    /// Closed-form fixed point tail: `π_1 = λ`,
    /// `π_i = π_2 ρ'^{i−2}` for `i ≥ 2`.
    pub fn closed_form_tails(&self) -> TailVector {
        let pi2 = self.pi2();
        let rho = self.rho_prime();
        let mut v = Vec::with_capacity(self.levels);
        v.push(self.lambda);
        let mut cur = pi2;
        for _ in 1..self.levels {
            v.push(cur);
            cur *= rho;
        }
        TailVector::from_slice(&v)
    }

    /// Closed-form mean tasks per processor
    /// `L = λ + π_2 / (1 − ρ')`.
    pub fn closed_form_mean_tasks(&self) -> f64 {
        self.lambda + self.pi2() / (1.0 - self.rho_prime())
    }

    /// Closed-form mean time in system `W = L / λ` (the paper's Table 1
    /// "Estimate" column).
    pub fn closed_form_mean_time(&self) -> f64 {
        self.closed_form_mean_tasks() / self.lambda
    }

    /// The closed-form fixed point packaged with its metrics.
    pub fn closed_form_fixed_point(&self) -> FixedPoint {
        let tails = self.closed_form_tails();
        let state = tails.clone().into_vec();
        let mut dy = vec![0.0; state.len()];
        self.deriv(0.0, &state, &mut dy);
        let residual = dy.iter().fold(0.0_f64, |a, &v| a.max(v.abs()));
        FixedPoint {
            residual,
            polished: true,
            mean_tasks: self.closed_form_mean_tasks(),
            mean_time_in_system: self.closed_form_mean_time(),
            task_tails: std::iter::once(1.0).chain(state.iter().copied()).collect(),
            truncation: self.levels,
            state,
        }
    }

    #[inline]
    fn s(&self, y: &[f64], i: usize) -> f64 {
        if i == 0 {
            1.0
        } else if i <= y.len() {
            y[i - 1]
        } else {
            0.0
        }
    }
}

impl OdeSystem for SimpleWs {
    fn dim(&self) -> usize {
        self.levels
    }

    fn deriv(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
        let lambda = self.lambda;
        let s1 = self.s(y, 1);
        let s2 = self.s(y, 2);
        // Rate at which thieves appear = rate processors complete their
        // final task.
        let steal_rate = s1 - s2;
        dy[0] = lambda * (1.0 - s1) - (s1 - s2) * (1.0 - s2);
        for i in 2..=self.levels {
            dy[i - 1] = lambda * (self.s(y, i - 1) - self.s(y, i))
                - (self.s(y, i) - self.s(y, i + 1)) * (1.0 + steal_rate);
        }
    }

    fn project(&self, y: &mut [f64]) {
        TailVector::project_slice(y);
    }
}

impl MeanFieldModel for SimpleWs {
    fn name(&self) -> String {
        format!("simple WS (λ = {})", self.lambda)
    }

    fn lambda(&self) -> f64 {
        self.lambda
    }

    fn truncation(&self) -> usize {
        self.levels
    }

    fn with_truncation(&self, levels: usize) -> Self {
        Self {
            levels,
            ..self.clone()
        }
    }

    fn empty_state(&self) -> Vec<f64> {
        vec![0.0; self.levels]
    }

    fn mean_tasks(&self, y: &[f64]) -> f64 {
        y.iter().rev().sum()
    }

    fn task_tails(&self, y: &[f64]) -> Vec<f64> {
        std::iter::once(1.0).chain(y.iter().copied()).collect()
    }

    fn boundary_mass(&self, y: &[f64]) -> f64 {
        y.last().copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed_point::{solve, FixedPointOptions};

    /// The paper's Table 1 "Estimate" column.
    const TABLE1_ESTIMATES: &[(f64, f64)] = &[
        (0.50, 1.618),
        (0.70, 2.107),
        (0.80, 2.562),
        (0.90, 3.541),
        (0.95, 4.887),
        (0.99, 10.462),
    ];

    #[test]
    fn closed_form_reproduces_table1_estimates() {
        for &(lambda, expect) in TABLE1_ESTIMATES {
            let m = SimpleWs::new(lambda).unwrap();
            let w = m.closed_form_mean_time();
            assert!(
                (w - expect).abs() < 5e-3,
                "λ = {lambda}: computed {w}, paper {expect}"
            );
        }
    }

    #[test]
    fn numeric_solve_matches_closed_form() {
        for lambda in [0.5, 0.8, 0.95] {
            let m = SimpleWs::new(lambda).unwrap();
            let fp = solve(&m, &FixedPointOptions::default()).unwrap();
            let exact = m.closed_form_mean_time();
            assert!(
                (fp.mean_time_in_system - exact).abs() < 1e-7,
                "λ = {lambda}: numeric {} vs exact {exact}",
                fp.mean_time_in_system
            );
        }
    }

    #[test]
    fn closed_form_is_a_fixed_point_of_the_equations() {
        for lambda in [0.3, 0.6, 0.9, 0.99] {
            let m = SimpleWs::new(lambda).unwrap();
            let fp = m.closed_form_fixed_point();
            assert!(
                fp.residual < 1e-12,
                "λ = {lambda}: residual {}",
                fp.residual
            );
        }
    }

    #[test]
    fn pi1_is_lambda_at_fixed_point() {
        // Throughput balance: the fraction of busy processors equals λ.
        let m = SimpleWs::new(0.85).unwrap();
        let fp = solve(&m, &FixedPointOptions::default()).unwrap();
        assert!((fp.task_tails[1] - 0.85).abs() < 1e-9);
    }

    #[test]
    fn tails_decay_faster_than_without_stealing() {
        for lambda in [0.5, 0.9, 0.99] {
            let m = SimpleWs::new(lambda).unwrap();
            assert!(
                m.rho_prime() < lambda,
                "λ = {lambda}: ρ' = {} must beat λ",
                m.rho_prime()
            );
        }
    }

    #[test]
    fn numeric_tail_ratio_matches_rho_prime() {
        let m = SimpleWs::new(0.9).unwrap();
        let fp = solve(&m, &FixedPointOptions::default()).unwrap();
        let ratio = fp.tail_ratio().unwrap();
        assert!(
            (ratio - m.rho_prime()).abs() < 1e-6,
            "measured {ratio} vs ρ' = {}",
            m.rho_prime()
        );
    }

    #[test]
    fn apparent_service_interpretation() {
        // ρ' = λ/μ' with μ' = 1 + (π_1 − π_2) = 1 + steal rate.
        let m = SimpleWs::new(0.7).unwrap();
        let mu_prime = 1.0 + (0.7 - m.pi2());
        assert!((m.rho_prime() - 0.7 / mu_prime).abs() < 1e-14);
    }

    #[test]
    fn pi2_bounds() {
        // 0 < π₂ < π₁ = λ for all admissible λ.
        for lambda in [0.05, 0.5, 0.95, 0.999] {
            let m = SimpleWs::new(lambda).unwrap();
            let p = m.pi2();
            assert!(p > 0.0 && p < lambda, "λ = {lambda}, π₂ = {p}");
        }
    }

    #[test]
    fn mean_time_beats_mm1() {
        for lambda in [0.5, 0.9] {
            let ws = SimpleWs::new(lambda).unwrap().closed_form_mean_time();
            let mm1 = 1.0 / (1.0 - lambda);
            assert!(ws < mm1, "λ = {lambda}: WS {ws} vs M/M/1 {mm1}");
        }
    }
}
