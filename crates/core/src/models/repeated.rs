//! Repeated steal attempts — Section 2.5.
//!
//! As in the WS algorithm of Blumofe–Leiserson, a thief that fails keeps
//! trying: empty processors make steal attempts at exponential rate `r`
//! (on top of the attempt made the moment they empty). With victim
//! threshold `T`:
//!
//! ```text
//! ds_1/dt = λ(s_0 − s_1) + r(s_0 − s_1) s_T − (s_1 − s_2)(1 − s_T)
//! ds_i/dt = λ(s_{i−1} − s_i) − (s_i − s_{i+1}),                     2 ≤ i ≤ T−1
//! ds_i/dt = λ(s_{i−1} − s_i) − (s_i − s_{i+1})
//!              − (s_1 − s_2)(s_i − s_{i+1})
//!              − r(s_0 − s_1)(s_i − s_{i+1}),                       i ≥ T
//! ```
//!
//! Beyond `T` the tails decay geometrically with ratio
//! `λ / (1 + r(1 − π_1) + π_1 − π_2)`; as `r → ∞`, `π_T → 0`: with
//! instantaneous retries no queue can keep `T` tasks for long.

use loadsteal_ode::OdeSystem;

use crate::tail::TailVector;

use super::{check_lambda, default_truncation, MeanFieldModel};

/// Mean-field model of repeated steal attempts at rate `r`.
#[derive(Debug, Clone, PartialEq)]
pub struct RepeatedSteal {
    lambda: f64,
    rate: f64,
    threshold: usize,
    levels: usize,
}

impl RepeatedSteal {
    /// Create the model for `0 < λ < 1`, retry rate `r > 0`, threshold
    /// `T ≥ 2`.
    pub fn new(lambda: f64, rate: f64, threshold: usize) -> Result<Self, String> {
        check_lambda(lambda)?;
        if !(rate > 0.0 && rate.is_finite()) {
            return Err(format!(
                "retry rate must be positive and finite, got {rate}"
            ));
        }
        if threshold < 2 {
            return Err(format!("threshold must be >= 2, got {threshold}"));
        }
        let levels = default_truncation(lambda).max(threshold + 8);
        Ok(Self {
            lambda,
            rate,
            threshold,
            levels,
        })
    }

    /// The retry rate `r`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The victim threshold `T`.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Asymptotic tail ratio `λ / (1 + r(1 − π_1) + π_1 − π_2)` given a
    /// fixed-point tail vector (Section 2.5's closed form, with
    /// `π_1 = λ` at the fixed point).
    pub fn asymptotic_tail_ratio(&self, tails: &TailVector) -> f64 {
        let p1 = tails.get(1);
        let p2 = tails.get(2);
        self.lambda / (1.0 + self.rate * (1.0 - p1) + p1 - p2)
    }

    #[inline]
    fn s(&self, y: &[f64], i: usize) -> f64 {
        if i == 0 {
            1.0
        } else if i <= y.len() {
            y[i - 1]
        } else {
            0.0
        }
    }
}

impl OdeSystem for RepeatedSteal {
    fn dim(&self) -> usize {
        self.levels
    }

    fn deriv(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
        let lambda = self.lambda;
        let r = self.rate;
        let s1 = self.s(y, 1);
        let s2 = self.s(y, 2);
        let st = self.s(y, self.threshold);
        // Steal pressure on deep victims: completions of final tasks
        // plus retry probes from the idle pool.
        let pressure = (s1 - s2) + r * (1.0 - s1);
        dy[0] = lambda * (1.0 - s1) + r * (1.0 - s1) * st - (s1 - s2) * (1.0 - st);
        for i in 2..=self.levels {
            let flow = lambda * (self.s(y, i - 1) - self.s(y, i));
            let dep = self.s(y, i) - self.s(y, i + 1);
            dy[i - 1] = if i < self.threshold {
                flow - dep
            } else {
                flow - dep * (1.0 + pressure)
            };
        }
    }

    fn project(&self, y: &mut [f64]) {
        TailVector::project_slice(y);
    }
}

impl MeanFieldModel for RepeatedSteal {
    fn name(&self) -> String {
        format!(
            "repeated-attempt WS (λ = {}, r = {}, T = {})",
            self.lambda, self.rate, self.threshold
        )
    }

    fn lambda(&self) -> f64 {
        self.lambda
    }

    fn truncation(&self) -> usize {
        self.levels
    }

    fn with_truncation(&self, levels: usize) -> Self {
        Self {
            levels: levels.max(self.threshold + 8),
            ..self.clone()
        }
    }

    fn empty_state(&self) -> Vec<f64> {
        vec![0.0; self.levels]
    }

    fn mean_tasks(&self, y: &[f64]) -> f64 {
        y.iter().rev().sum()
    }

    fn task_tails(&self, y: &[f64]) -> Vec<f64> {
        std::iter::once(1.0).chain(y.iter().copied()).collect()
    }

    fn boundary_mass(&self, y: &[f64]) -> f64 {
        y.last().copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed_point::{solve, FixedPointOptions};
    use crate::models::ThresholdWs;

    #[test]
    fn fixed_point_satisfies_throughput_balance() {
        let m = RepeatedSteal::new(0.9, 2.0, 2).unwrap();
        let fp = solve(&m, &FixedPointOptions::default()).unwrap();
        assert!((fp.task_tails[1] - 0.9).abs() < 1e-8);
    }

    #[test]
    fn retries_beat_single_attempts() {
        let lambda = 0.9;
        let single = ThresholdWs::new(lambda, 2).unwrap().closed_form_mean_time();
        let m = RepeatedSteal::new(lambda, 2.0, 2).unwrap();
        let w = solve(&m, &FixedPointOptions::default())
            .unwrap()
            .mean_time_in_system;
        assert!(w < single, "repeated {w} vs single-attempt {single}");
    }

    #[test]
    fn more_retries_help_monotonically() {
        let lambda = 0.9;
        let opts = FixedPointOptions::default();
        let mut last = f64::INFINITY;
        for r in [0.5, 1.0, 2.0, 4.0, 8.0] {
            let m = RepeatedSteal::new(lambda, r, 2).unwrap();
            let w = solve(&m, &opts).unwrap().mean_time_in_system;
            assert!(w < last, "r = {r}: {w} !< {last}");
            last = w;
        }
    }

    #[test]
    fn pi_t_vanishes_as_rate_grows() {
        // Section 2.5: as r → ∞, π_T → 0.
        let lambda = 0.8;
        let threshold = 3;
        let opts = FixedPointOptions::default();
        let small = solve(&RepeatedSteal::new(lambda, 1.0, threshold).unwrap(), &opts)
            .unwrap()
            .task_tails[threshold];
        let large = solve(&RepeatedSteal::new(lambda, 64.0, threshold).unwrap(), &opts)
            .unwrap()
            .task_tails[threshold];
        assert!(large < small / 5.0, "π_T: r=1 → {small}, r=64 → {large}");
    }

    #[test]
    fn tail_ratio_matches_section_2_5_formula() {
        let m = RepeatedSteal::new(0.9, 2.0, 2).unwrap();
        let fp = solve(&m, &FixedPointOptions::default()).unwrap();
        let tails = TailVector::from_slice(&fp.task_tails[1..]);
        let predicted = m.asymptotic_tail_ratio(&tails);
        let measured = fp.tail_ratio().unwrap();
        assert!(
            (measured - predicted).abs() < 1e-6,
            "measured {measured} vs predicted {predicted}"
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(RepeatedSteal::new(0.5, 0.0, 2).is_err());
        assert!(RepeatedSteal::new(0.5, -1.0, 2).is_err());
        assert!(RepeatedSteal::new(0.5, f64::INFINITY, 2).is_err());
        assert!(RepeatedSteal::new(0.5, 1.0, 1).is_err());
    }
}
