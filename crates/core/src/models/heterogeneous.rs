//! Heterogeneous processor speeds — Section 3.5.
//!
//! Two processor classes, "fast" (fraction `α`, service rate `μ_f`) and
//! "slow" (fraction `1 − α`, rate `μ_s`), each with its own state
//! vector; both receive Poisson(λ) arrivals and run the simple stealing
//! policy with threshold `T` against victims drawn uniformly over *all*
//! processors. Writing `f_i`/`g_i` for the fraction of all processors
//! that are fast/slow with at least `i` tasks (`f_0 = α`,
//! `g_0 = 1 − α`):
//!
//! ```text
//! df_1/dt = λ(f_0 − f_1) − μ_f (f_1 − f_2)(1 − f_T − g_T)
//! df_i/dt = λ(f_{i−1} − f_i) − μ_f (f_i − f_{i+1}),                  2 ≤ i ≤ T−1
//! df_i/dt = λ(f_{i−1} − f_i) − μ_f (f_i − f_{i+1}) − A (f_i − f_{i+1}),   i ≥ T
//! ```
//!
//! (symmetrically for `g`), where
//! `A = μ_f (f_1 − f_2) + μ_s (g_1 − g_2)` is the total rate at which
//! thieves appear. Stability requires the aggregate capacity to cover
//! the load: `λ < α μ_f + (1 − α) μ_s` is necessary; stealing couples
//! the classes so slow processors can even handle `λ > μ_s`.

use loadsteal_ode::OdeSystem;

use super::MeanFieldModel;

/// Mean-field model of two-speed-class work stealing.
#[derive(Debug, Clone, PartialEq)]
pub struct Heterogeneous {
    lambda: f64,
    fast_fraction: f64,
    fast_rate: f64,
    slow_rate: f64,
    threshold: usize,
    levels: usize,
}

impl Heterogeneous {
    /// Create the model: arrival rate `λ > 0`, fraction `α ∈ (0, 1)` of
    /// fast processors with service rate `μ_f`, slow rate `μ_s`,
    /// threshold `T ≥ 2`. Requires spare aggregate capacity
    /// `λ < α μ_f + (1 − α) μ_s`.
    pub fn new(
        lambda: f64,
        fast_fraction: f64,
        fast_rate: f64,
        slow_rate: f64,
        threshold: usize,
    ) -> Result<Self, String> {
        if !(lambda > 0.0 && lambda.is_finite()) {
            return Err(format!("arrival rate must be positive, got {lambda}"));
        }
        if !(0.0 < fast_fraction && fast_fraction < 1.0) {
            return Err(format!(
                "fast fraction must be in (0, 1), got {fast_fraction}"
            ));
        }
        if !(fast_rate > 0.0 && slow_rate > 0.0) {
            return Err("service rates must be positive".into());
        }
        if threshold < 2 {
            return Err(format!("threshold must be >= 2, got {threshold}"));
        }
        let capacity = fast_fraction * fast_rate + (1.0 - fast_fraction) * slow_rate;
        if lambda >= capacity {
            return Err(format!(
                "unstable: λ = {lambda} >= aggregate capacity {capacity}"
            ));
        }
        // Tail decay is at worst governed by the slow class utilization
        // λ/μ_s; if that exceeds 1, stealing carries the surplus and the
        // tails still decay, so fall back to the aggregate utilization.
        let ratio = (lambda / slow_rate).min(0.999).max(lambda / capacity);
        let levels = crate::tail::truncation_for_ratio(ratio, 1e-14, 32, 8_192).max(threshold + 8);
        Ok(Self {
            lambda,
            fast_fraction,
            fast_rate,
            slow_rate,
            threshold,
            levels,
        })
    }

    /// Fraction of fast processors `α`.
    pub fn fast_fraction(&self) -> f64 {
        self.fast_fraction
    }

    /// Fast/slow service rates `(μ_f, μ_s)`.
    pub fn rates(&self) -> (f64, f64) {
        (self.fast_rate, self.slow_rate)
    }

    // State layout: y = [f_1 … f_L, g_1 … g_L];
    // f_0 = α and g_0 = 1 − α implicit.

    #[inline]
    fn f(&self, y: &[f64], i: usize) -> f64 {
        if i == 0 {
            self.fast_fraction
        } else if i <= self.levels {
            y[i - 1]
        } else {
            0.0
        }
    }

    #[inline]
    fn g(&self, y: &[f64], i: usize) -> f64 {
        if i == 0 {
            1.0 - self.fast_fraction
        } else if i <= self.levels {
            y[self.levels + i - 1]
        } else {
            0.0
        }
    }

    /// Per-class tail fractions `(fast, slow)`, each normalized by its
    /// own class size so `result[0] = 1`.
    pub fn class_tails(&self, y: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let fast: Vec<f64> = (0..=self.levels)
            .map(|i| self.f(y, i) / self.fast_fraction)
            .collect();
        let slow: Vec<f64> = (0..=self.levels)
            .map(|i| self.g(y, i) / (1.0 - self.fast_fraction))
            .collect();
        (fast, slow)
    }
}

impl OdeSystem for Heterogeneous {
    fn dim(&self) -> usize {
        2 * self.levels
    }

    fn deriv(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
        let (lambda, t) = (self.lambda, self.threshold);
        let (mf, ms) = (self.fast_rate, self.slow_rate);
        let thief_rate = mf * (self.f(y, 1) - self.f(y, 2)) + ms * (self.g(y, 1) - self.g(y, 2));
        let success = self.f(y, t) + self.g(y, t);
        for i in 1..=self.levels {
            // Fast class.
            let flow = lambda * (self.f(y, i - 1) - self.f(y, i));
            let dep = mf * (self.f(y, i) - self.f(y, i + 1));
            dy[i - 1] = if i == 1 {
                flow - dep * (1.0 - success)
            } else if i < t {
                flow - dep
            } else {
                flow - dep - thief_rate * (self.f(y, i) - self.f(y, i + 1))
            };
            // Slow class.
            let flow = lambda * (self.g(y, i - 1) - self.g(y, i));
            let dep = ms * (self.g(y, i) - self.g(y, i + 1));
            dy[self.levels + i - 1] = if i == 1 {
                flow - dep * (1.0 - success)
            } else if i < t {
                flow - dep
            } else {
                flow - dep - thief_rate * (self.g(y, i) - self.g(y, i + 1))
            };
        }
    }

    fn project(&self, y: &mut [f64]) {
        let (f_block, g_block) = y.split_at_mut(self.levels);
        let mut prev = self.fast_fraction;
        for v in f_block.iter_mut() {
            *v = v.clamp(0.0, prev);
            prev = *v;
        }
        let mut prev = 1.0 - self.fast_fraction;
        for v in g_block.iter_mut() {
            *v = v.clamp(0.0, prev);
            prev = *v;
        }
    }
}

impl MeanFieldModel for Heterogeneous {
    fn name(&self) -> String {
        format!(
            "heterogeneous WS (λ = {}, α = {}, μ_f = {}, μ_s = {}, T = {})",
            self.lambda, self.fast_fraction, self.fast_rate, self.slow_rate, self.threshold
        )
    }

    fn lambda(&self) -> f64 {
        self.lambda
    }

    fn truncation(&self) -> usize {
        self.levels
    }

    fn with_truncation(&self, levels: usize) -> Self {
        Self {
            levels: levels.max(self.threshold + 8),
            ..self.clone()
        }
    }

    fn empty_state(&self) -> Vec<f64> {
        vec![0.0; 2 * self.levels]
    }

    fn mean_tasks(&self, y: &[f64]) -> f64 {
        y.iter().rev().sum()
    }

    fn task_tails(&self, y: &[f64]) -> Vec<f64> {
        let mut tails = vec![1.0];
        for i in 1..=self.levels {
            tails.push(self.f(y, i) + self.g(y, i));
        }
        tails
    }

    fn boundary_mass(&self, y: &[f64]) -> f64 {
        self.f(y, self.levels).max(self.g(y, self.levels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed_point::{solve, FixedPointOptions};
    use crate::models::SimpleWs;

    fn opts() -> FixedPointOptions {
        FixedPointOptions::default()
    }

    #[test]
    fn equal_speeds_reduce_to_simple_ws() {
        let lambda = 0.8;
        let m = Heterogeneous::new(lambda, 0.5, 1.0, 1.0, 2).unwrap();
        let fp = solve(&m, &opts()).unwrap();
        let exact = SimpleWs::new(lambda).unwrap().closed_form_mean_time();
        assert!(
            (fp.mean_time_in_system - exact).abs() < 1e-6,
            "{} vs {exact}",
            fp.mean_time_in_system
        );
    }

    #[test]
    fn throughput_balance_holds() {
        // μ_f f₁ + μ_s g₁ = λ at the fixed point.
        let m = Heterogeneous::new(0.9, 0.25, 2.0, 0.8, 2).unwrap();
        let fp = solve(&m, &opts()).unwrap();
        let f1 = fp.state[0];
        let g1 = fp.state[m.truncation()];
        let throughput = 2.0 * f1 + 0.8 * g1;
        assert!((throughput - 0.9).abs() < 1e-7, "throughput {throughput}");
    }

    #[test]
    fn slow_class_can_exceed_its_own_capacity() {
        // λ = 0.9 > μ_s = 0.8: without stealing the slow class diverges;
        // with stealing the coupled system is stable and solvable.
        let m = Heterogeneous::new(0.9, 0.5, 1.5, 0.8, 2).unwrap();
        let fp = solve(&m, &opts()).unwrap();
        assert!(fp.mean_time_in_system.is_finite());
        assert!(fp.task_tails[1] < 1.0);
    }

    #[test]
    fn slow_processors_hold_more_load() {
        let m = Heterogeneous::new(0.8, 0.5, 2.0, 0.6, 2).unwrap();
        let fp = solve(&m, &opts()).unwrap();
        let (fast, slow) = m.class_tails(&fp.state);
        assert!(
            slow[1] > fast[1],
            "slow busy fraction {} should exceed fast {}",
            slow[1],
            fast[1]
        );
    }

    #[test]
    fn rejects_inconsistent_parameters() {
        assert!(Heterogeneous::new(0.9, 0.0, 1.0, 1.0, 2).is_err());
        assert!(Heterogeneous::new(0.9, 0.5, 1.0, 1.0, 1).is_err());
        // aggregate capacity 0.5·0.6 + 0.5·0.6 = 0.6 < λ
        assert!(Heterogeneous::new(0.9, 0.5, 0.6, 0.6, 2).is_err());
    }
}
