//! Stability of the fixed points — Section 4.
//!
//! The paper calls a fixed point *stable* when the L₁ distance
//! `D(t) = Σ_i |s_i(t) − π_i|` never increases along trajectories
//! (stronger than the usual Lyapunov notion). Theorems 1 and 2 prove
//! stability of the simple and threshold systems whenever `π_2 < 1/2`,
//! which for the simple system means
//! `λ < λ* = (1 + √5)/4 ≈ 0.809` (the root of `π_2(λ) = 1/2`).
//!
//! Convergence (let alone monotone contraction) is open beyond that
//! regime; the paper suggests checking numerically from varied starting
//! points, which is what [`check_l1_contraction`] does.

use loadsteal_ode::norms::l1_distance;
use loadsteal_ode::solver::Control;
use loadsteal_ode::{AdaptiveOptions, DormandPrince45, IntegrationError};

use crate::models::{MeanFieldModel, SimpleWs};

/// The critical arrival rate of Theorem 1 for the simple WS system:
/// `π_2(λ*) = 1/2` at `λ* = (1 + √5)/4 ≈ 0.809017`.
pub fn simple_ws_stability_threshold() -> f64 {
    0.25 * (1.0 + 5.0_f64.sqrt())
}

/// Whether the Theorem 1/2 hypothesis `π_2 < 1/2` holds for the simple
/// system at arrival rate `lambda`.
pub fn theorem_condition_holds(lambda: f64) -> bool {
    SimpleWs::new(lambda)
        .map(|m| m.pi2() < 0.5)
        .unwrap_or(false)
}

/// Outcome of a numeric L₁-contraction check.
#[derive(Debug, Clone)]
pub struct ContractionReport {
    /// L₁ distance at the start.
    pub initial_distance: f64,
    /// L₁ distance when the check stopped.
    pub final_distance: f64,
    /// Largest observed increase of `D` between consecutive accepted
    /// steps (0 for a perfectly monotone trajectory).
    pub max_increase: f64,
    /// Time at which the trajectory entered `D < tol` (if it did).
    pub converged_at: Option<f64>,
    /// Sampled `(t, D(t))` trajectory (thinned).
    pub trajectory: Vec<(f64, f64)>,
}

impl ContractionReport {
    /// Whether `D(t)` was non-increasing up to `slack` (floating-point
    /// and integrator tolerance head-room).
    pub fn is_monotone(&self, slack: f64) -> bool {
        self.max_increase <= slack
    }

    /// Estimated asymptotic decay rate `γ` of `D(t) ≈ C e^{−γt}`,
    /// least-squares fitted on `log D` over the later half of the
    /// recorded trajectory (where the slowest mode dominates). `None`
    /// when the trajectory is too short or already at the noise floor.
    ///
    /// `1/γ` is the relaxation time of the system — how long the
    /// transient behind the paper's Table 1 protocol actually lasts.
    pub fn decay_rate(&self) -> Option<f64> {
        let pts: Vec<(f64, f64)> = self
            .trajectory
            .iter()
            .filter(|(_, d)| *d > 1e-10)
            .map(|&(t, d)| (t, d.ln()))
            .collect();
        if pts.len() < 6 {
            return None;
        }
        let tail = &pts[pts.len() / 2..];
        let n = tail.len() as f64;
        let (st, sd): (f64, f64) = tail
            .iter()
            .fold((0.0, 0.0), |(a, b), (t, l)| (a + t, b + l));
        let (mt, md) = (st / n, sd / n);
        let (mut num, mut den) = (0.0, 0.0);
        for (t, l) in tail {
            num += (t - mt) * (l - md);
            den += (t - mt) * (t - mt);
        }
        if den <= 0.0 {
            return None;
        }
        let slope = num / den;
        (slope < 0.0).then_some(-slope)
    }
}

/// Integrate `model` from `start` and track the L₁ distance to `fixed`.
///
/// Stops when the distance falls below `tol` or at `t_max`. The state
/// and fixed point must have the model's dimension.
pub fn check_l1_contraction<M: MeanFieldModel>(
    model: &M,
    start: &[f64],
    fixed: &[f64],
    tol: f64,
    t_max: f64,
) -> Result<ContractionReport, IntegrationError> {
    assert_eq!(start.len(), model.dim(), "start state has wrong dimension");
    assert_eq!(fixed.len(), model.dim(), "fixed point has wrong dimension");
    let mut y = start.to_vec();
    let initial = l1_distance(&y, fixed);
    let mut last = initial;
    let mut max_increase = 0.0_f64;
    let mut trajectory = vec![(0.0, initial)];
    let mut converged_at = None;
    let mut dp = DormandPrince45::new(AdaptiveOptions::default());
    dp.integrate_observed(model, 0.0, t_max, &mut y, |t, y| {
        let d = l1_distance(y, fixed);
        max_increase = max_increase.max(d - last);
        last = d;
        // Thin the trajectory: keep ~1 sample per unit time.
        if trajectory
            .last()
            .map(|&(tt, _)| t - tt >= 1.0)
            .unwrap_or(true)
        {
            trajectory.push((t, d));
        }
        if d < tol {
            converged_at = Some(t);
            Control::Stop
        } else {
            Control::Continue
        }
    })?;
    trajectory.push((t_max.min(converged_at.unwrap_or(t_max)), last));
    Ok(ContractionReport {
        initial_distance: initial,
        final_distance: last,
        max_increase,
        converged_at,
        trajectory,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed_point::{solve, FixedPointOptions};
    use crate::tail::TailVector;

    #[test]
    fn threshold_constant_is_the_golden_like_root() {
        let l = simple_ws_stability_threshold();
        // π₂(λ*) = 1/2 exactly.
        let m = SimpleWs::new(l).unwrap();
        assert!((m.pi2() - 0.5).abs() < 1e-12, "π₂(λ*) = {}", m.pi2());
        assert!(theorem_condition_holds(l - 0.01));
        assert!(!theorem_condition_holds(l + 0.01));
    }

    #[test]
    fn distance_contracts_from_overloaded_start() {
        let m = SimpleWs::new(0.7).unwrap();
        let fp = solve(&m, &FixedPointOptions::default()).unwrap();
        let start = TailVector::uniform_load(5, m.truncation()).into_vec();
        let report = check_l1_contraction(&m, &start, &fp.state, 1e-8, 2_000.0).unwrap();
        assert!(
            report.converged_at.is_some(),
            "did not converge: {report:?}"
        );
        // Theorem 1 regime: monotone up to integrator noise.
        assert!(
            report.is_monotone(1e-7),
            "max increase {}",
            report.max_increase
        );
    }

    #[test]
    fn distance_contracts_from_empty_start() {
        let m = SimpleWs::new(0.5).unwrap();
        let fp = solve(&m, &FixedPointOptions::default()).unwrap();
        let start = m.empty_state();
        let report = check_l1_contraction(&m, &start, &fp.state, 1e-8, 2_000.0).unwrap();
        assert!(report.converged_at.is_some());
        assert!(report.final_distance < report.initial_distance);
    }

    #[test]
    fn trajectory_is_recorded() {
        let m = SimpleWs::new(0.6).unwrap();
        let fp = solve(&m, &FixedPointOptions::default()).unwrap();
        let start = TailVector::uniform_load(3, m.truncation()).into_vec();
        let report = check_l1_contraction(&m, &start, &fp.state, 1e-6, 500.0).unwrap();
        assert!(report.trajectory.len() > 3);
        assert!(report.trajectory[0].1 >= report.trajectory.last().unwrap().1);
    }

    #[test]
    fn decay_rate_tracks_relaxation_speed() {
        // Relaxation slows as λ → 1: γ(0.5) must beat γ(0.9).
        let rate = |lambda: f64| {
            let m = SimpleWs::new(lambda).unwrap();
            let fp = solve(&m, &FixedPointOptions::default()).unwrap();
            let start = TailVector::uniform_load(3, m.truncation()).into_vec();
            check_l1_contraction(&m, &start, &fp.state, 1e-9, 20_000.0)
                .unwrap()
                .decay_rate()
                .expect("fit")
        };
        let fast = rate(0.5);
        let slow = rate(0.9);
        assert!(
            fast > 2.0 * slow,
            "γ(0.5) = {fast} should dwarf γ(0.9) = {slow}"
        );
    }

    #[test]
    fn beyond_theorem_regime_still_converges_numerically() {
        // The paper can only *prove* stability for π₂ < 1/2, but suggests
        // numerical checks beyond; at λ = 0.95 the system still converges.
        let m = SimpleWs::new(0.95).unwrap();
        let fp = solve(&m, &FixedPointOptions::default()).unwrap();
        let start = TailVector::uniform_load(4, m.truncation()).into_vec();
        let report = check_l1_contraction(&m, &start, &fp.state, 1e-6, 20_000.0).unwrap();
        assert!(
            report.converged_at.is_some(),
            "no convergence at λ = 0.95: final D = {}",
            report.final_distance
        );
    }
}
