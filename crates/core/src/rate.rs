//! Finite-size convergence-rate estimation.
//!
//! Kurtz-type mean-field limits come with a rate: the stationary tail
//! estimate of the n-processor system approaches the fixed point like
//! `|ŝ(n) − s| = Θ(1/n)` (Ying 2016 sharpens the classical `O(1/√n)`
//! sample-path bound to `O(1/n)` for stationary expectations). This
//! module carries the two pieces needed to *measure* that exponent
//! from simulations: a geometric grid of system sizes, and a log-log
//! least-squares fit `log e = slope·log n + intercept` whose slope
//! should sit near −1.
//!
//! The fit is deliberately plain (ordinary least squares on the log
//! pairs, with an R² diagnostic) so the verify layer can reason about
//! it: a genuine `Θ(1/n)` decay fits a slope near −1 with high R²,
//! while an O(1) bias floor drags the slope towards 0 — which is
//! exactly the sabotage case the harness must catch.

/// A geometric grid of system sizes `lo, 2·lo, 4·lo, … ≤ hi`.
///
/// Powers of two because the simulator's cost is linear in `n` while
/// the information about the exponent is linear in `log n`: doubling
/// spends the budget evenly across the abscissa. Always contains `lo`
/// (even when `lo > hi`), so callers can assume a non-empty grid.
pub fn geometric_grid(lo: usize, hi: usize) -> Vec<usize> {
    let mut grid = vec![lo.max(1)];
    loop {
        let next = grid.last().unwrap().saturating_mul(2);
        if next > hi {
            return grid;
        }
        grid.push(next);
    }
}

/// Result of a log-log least-squares fit `log y = slope·log x + c`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlopeFit {
    /// The fitted exponent: `y ∝ x^slope`.
    pub slope: f64,
    /// Intercept in log space (`ln` of the prefactor).
    pub intercept: f64,
    /// Coefficient of determination of the fit in log space.
    pub r_squared: f64,
}

/// Fit a power law `y ≈ C·x^slope` to `(x, y)` pairs by ordinary least
/// squares on `(ln x, ln y)`.
///
/// Returns `None` with fewer than two usable points or when any value
/// is non-positive (a zero error is a measurement artifact, not a data
/// point on a log scale).
pub fn fit_power_law(points: &[(f64, f64)]) -> Option<SlopeFit> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0 && x.is_finite() && y.is_finite())
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    if logs.len() < 2 {
        return None;
    }
    let m = logs.len() as f64;
    let mean_x = logs.iter().map(|(x, _)| x).sum::<f64>() / m;
    let mean_y = logs.iter().map(|(_, y)| y).sum::<f64>() / m;
    let sxx: f64 = logs.iter().map(|(x, _)| (x - mean_x).powi(2)).sum();
    let sxy: f64 = logs.iter().map(|(x, y)| (x - mean_x) * (y - mean_y)).sum();
    let syy: f64 = logs.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    // R² = 1 − SSE/SST; a constant y (syy = 0) is a perfect fit of a
    // zero slope.
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        let sse: f64 = logs
            .iter()
            .map(|(x, y)| (y - (slope * x + intercept)).powi(2))
            .sum();
        1.0 - sse / syy
    };
    Some(SlopeFit {
        slope,
        intercept,
        r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_doubles_from_lo_to_hi() {
        assert_eq!(geometric_grid(128, 1024), vec![128, 256, 512, 1024]);
        assert_eq!(geometric_grid(128, 1000), vec![128, 256, 512]);
        assert_eq!(geometric_grid(7, 7), vec![7]);
        // Degenerate ranges still yield the non-empty promise.
        assert_eq!(geometric_grid(16, 4), vec![16]);
        assert_eq!(geometric_grid(0, 4), vec![1, 2, 4]);
    }

    #[test]
    fn exact_inverse_law_fits_slope_minus_one() {
        // Golden check: e(n) = 3/n must fit slope −1, intercept ln 3,
        // R² = 1 to machine precision.
        let pts: Vec<(f64, f64)> = geometric_grid(128, 1 << 20)
            .into_iter()
            .map(|n| (n as f64, 3.0 / n as f64))
            .collect();
        let fit = fit_power_law(&pts).unwrap();
        assert!((fit.slope + 1.0).abs() < 1e-12, "slope {}", fit.slope);
        assert!(
            (fit.intercept - 3.0f64.ln()).abs() < 1e-12,
            "intercept {}",
            fit.intercept
        );
        assert!(fit.r_squared > 1.0 - 1e-12);
    }

    #[test]
    fn sqrt_law_fits_slope_minus_half() {
        let pts: Vec<(f64, f64)> = (1..=6)
            .map(|k| {
                let n = (1u64 << (7 + k)) as f64;
                (n, 2.0 / n.sqrt())
            })
            .collect();
        let fit = fit_power_law(&pts).unwrap();
        assert!((fit.slope + 0.5).abs() < 1e-12, "slope {}", fit.slope);
    }

    #[test]
    fn constant_bias_floor_flattens_the_slope() {
        // An O(1) systematic bias (the sabotage scenario): e(n) =
        // 1/n + 0.05. Over n = 2⁷..2¹³ the fit must land far from −1.
        let pts: Vec<(f64, f64)> = geometric_grid(128, 8192)
            .into_iter()
            .map(|n| (n as f64, 1.0 / n as f64 + 0.05))
            .collect();
        let fit = fit_power_law(&pts).unwrap();
        assert!(fit.slope > -0.25, "bias floor still fit {}", fit.slope);
    }

    #[test]
    fn noisy_inverse_law_recovers_the_exponent() {
        // Deterministic ±20% multiplicative "noise" — the fit should
        // still land near −1 (log-noise is bounded by ln 1.2).
        let noise = [1.2, 0.85, 1.1, 0.9, 1.15, 0.8, 1.05];
        let pts: Vec<(f64, f64)> = geometric_grid(128, 8192)
            .into_iter()
            .enumerate()
            .map(|(i, n)| (n as f64, noise[i % noise.len()] * 4.0 / n as f64))
            .collect();
        let fit = fit_power_law(&pts).unwrap();
        assert!(
            (fit.slope + 1.0).abs() < 0.15,
            "slope {} strayed from −1",
            fit.slope
        );
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        assert!(fit_power_law(&[]).is_none());
        assert!(fit_power_law(&[(128.0, 0.5)]).is_none());
        // Zero and negative values are filtered, not ln'd into NaN.
        assert!(fit_power_law(&[(128.0, 0.0), (256.0, -1.0)]).is_none());
        // Identical abscissae cannot identify a slope.
        assert!(fit_power_law(&[(64.0, 0.1), (64.0, 0.2)]).is_none());
    }
}
