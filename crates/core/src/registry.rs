//! Named [`ModelSpec`] presets covering every system the paper
//! analyzes — the single source of truth behind `loadsteal models`,
//! the `--model <name>` grammar, and the verify harness's model zoo.
//!
//! Adding a variant is one [`Preset`] entry here (plus an ODE file in
//! [`crate::models`] if it needs a new mean-field predictor): the
//! simulator config, the CLI grammar, and the verify zoo all derive
//! from the spec automatically.

use crate::spec::{ArrivalSpec, ModelSpec, PolicySpec, ServiceSpec, SpeedSpec};

/// Which verification tier a preset belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PresetTier {
    /// Simulated in both the `--quick` and `--full` verify tiers.
    Quick,
    /// Simulated only in the `--full` tier (slow-mixing or §3 shapes).
    Full,
}

/// One named model preset.
#[derive(Debug, Clone)]
pub struct Preset {
    /// Registry key, usable as `--model <name>`.
    pub name: &'static str,
    /// Human-readable label with the headline parameters (the verify
    /// zoo's display name).
    pub label: &'static str,
    /// Paper section the variant comes from.
    pub section: &'static str,
    /// Verification tier.
    pub tier: PresetTier,
    /// The full declarative spec.
    pub spec: ModelSpec,
}

/// The preset collection. Construct with [`ModelRegistry::standard`].
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    presets: Vec<Preset>,
}

/// Shorthand for the common single-victim steal policy.
fn on_empty(threshold: usize, choices: u32, batch: usize) -> PolicySpec {
    PolicySpec::OnEmpty {
        threshold,
        choices,
        batch,
    }
}

fn spec(lambda: f64, policy: PolicySpec) -> ModelSpec {
    ModelSpec {
        lambda,
        arrival: ArrivalSpec::Poisson,
        service: ServiceSpec::Exponential,
        policy,
        transfer_rate: None,
        speeds: SpeedSpec::Homogeneous,
    }
}

impl ModelRegistry {
    /// Every model the paper writes equations for, at the parameters
    /// the verify harness pins, plus the cross-product presets the
    /// spec layer makes expressible.
    pub fn standard() -> Self {
        use PresetTier::{Full, Quick};
        let p = |name, label, section, tier, spec| Preset {
            name,
            label,
            section,
            tier,
            spec,
        };
        let presets = vec![
            p(
                "no-steal",
                "no-steal(λ=0.8)",
                "eq. (1)",
                Quick,
                spec(0.8, PolicySpec::NoSteal),
            ),
            p(
                "simple-ws",
                "simple-ws(λ=0.9)",
                "§2.2",
                Quick,
                spec(0.9, on_empty(2, 1, 1)),
            ),
            p(
                "threshold",
                "threshold(λ=0.85,T=4)",
                "§2.3",
                Quick,
                spec(0.85, on_empty(4, 1, 1)),
            ),
            p(
                "preemptive",
                "preemptive(λ=0.85,B=1,T=3)",
                "§2.4",
                Quick,
                spec(
                    0.85,
                    PolicySpec::Preemptive {
                        begin_at: 1,
                        rel_threshold: 3,
                    },
                ),
            ),
            p(
                "repeated",
                "repeated(λ=0.9,r=2)",
                "§2.5",
                Quick,
                spec(
                    0.9,
                    PolicySpec::Repeated {
                        rate: 2.0,
                        threshold: 2,
                    },
                ),
            ),
            p(
                "multi-choice",
                "multi-choice(λ=0.9,d=2)",
                "§3.3",
                Quick,
                spec(0.9, on_empty(2, 2, 1)),
            ),
            p(
                "multi-steal",
                "multi-steal(λ=0.85,T=6,k=3)",
                "§3.4",
                Quick,
                spec(0.85, on_empty(6, 1, 3)),
            ),
            p("transfer", "transfer(λ=0.8,r=0.25,T=4)", "§3.2", Quick, {
                let mut s = spec(0.8, on_empty(4, 1, 1));
                s.transfer_rate = Some(0.25);
                s
            }),
            p(
                "heterogeneous",
                "heterogeneous(λ=0.8,μ=1.2/0.9)",
                "§3.5",
                Quick,
                {
                    let mut s = spec(0.8, on_empty(2, 1, 1));
                    s.speeds = SpeedSpec::TwoClass {
                        fast_fraction: 0.5,
                        fast_rate: 1.2,
                        slow_rate: 0.9,
                    };
                    s
                },
            ),
            p(
                "work-sharing",
                "work-sharing(λ=0.9,F=2,R=2)",
                "§1",
                Quick,
                spec(
                    0.9,
                    PolicySpec::Share {
                        send_threshold: 2,
                        recv_threshold: 2,
                    },
                ),
            ),
            p(
                "general",
                "general(λ=0.9,T=6,d=2,k=3)",
                "§3",
                Quick,
                spec(0.9, on_empty(6, 2, 3)),
            ),
            p(
                "rebalance",
                "rebalance(λ=0.8,r=0.5)",
                "§3.4",
                Quick,
                spec(
                    0.8,
                    PolicySpec::Rebalance {
                        rate: 0.5,
                        per_task: false,
                    },
                ),
            ),
            p(
                "erlang-service",
                "erlang-service(λ=0.8,c=20)",
                "§3.1",
                Full,
                {
                    let mut s = spec(0.8, on_empty(2, 1, 1));
                    s.service = ServiceSpec::Erlang { stages: 20 };
                    s
                },
            ),
            p(
                "erlang-arrivals",
                "erlang-arrivals(λ=0.8,c=5)",
                "§3.1",
                Full,
                {
                    let mut s = spec(0.8, on_empty(2, 1, 1));
                    s.arrival = ArrivalSpec::Erlang { phases: 5 };
                    s
                },
            ),
            p(
                "hyper-service",
                "hyper-service(λ=0.8,scv≈4.6)",
                "§3.1",
                Full,
                {
                    let mut s = spec(0.8, on_empty(2, 1, 1));
                    s.service = ServiceSpec::HyperExp {
                        p: 0.1,
                        rate1: 0.2,
                        rate2: 1.8,
                    };
                    s
                },
            ),
            // Cross-product the paper suggests ("combined as desired")
            // but never tabulates: victim threshold × Erlang stages.
            p(
                "threshold-erlang",
                "threshold-erlang(λ=0.8,T=4,c=10)",
                "§2.3 × §3.1",
                Full,
                {
                    let mut s = spec(0.8, on_empty(4, 1, 1));
                    s.service = ServiceSpec::Erlang { stages: 10 };
                    s
                },
            ),
        ];
        Self { presets }
    }

    /// All presets, in paper order.
    pub fn presets(&self) -> &[Preset] {
        &self.presets
    }

    /// Look up a preset by registry key or accepted alias.
    pub fn get(&self, name: &str) -> Option<&Preset> {
        let name = ALIASES
            .iter()
            .find(|(alias, _)| *alias == name)
            .map_or(name, |(_, target)| *target);
        self.presets.iter().find(|p| p.name == name)
    }
}

/// Alternate spellings accepted by [`ModelRegistry::get`] (and thus by
/// the whole `--model` grammar): the paper's own names for presets
/// listed under their registry keys. Aliases are resolution-only —
/// they do not appear in `loadsteal models` or the verify zoo.
const ALIASES: &[(&str, &str)] = &[
    // §2.2 calls simple-ws "the basic model".
    ("basic", "simple-ws"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_is_valid_and_has_a_mean_field_model() {
        let reg = ModelRegistry::standard();
        assert!(reg.presets().len() >= 16);
        for p in reg.presets() {
            p.spec
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
            p.spec
                .mean_field()
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn preset_names_resolve_through_the_grammar() {
        let reg = ModelRegistry::standard();
        for p in reg.presets() {
            let parsed = ModelSpec::parse(p.name).unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert_eq!(parsed, p.spec, "{}", p.name);
        }
    }

    #[test]
    fn labels_carry_the_spec_lambda() {
        for p in ModelRegistry::standard().presets() {
            let expect = format!("λ={}", p.spec.lambda);
            assert!(
                p.label.contains(&expect),
                "{}: label {:?} missing {expect:?}",
                p.name,
                p.label
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let reg = ModelRegistry::standard();
        for (i, a) in reg.presets().iter().enumerate() {
            for b in &reg.presets()[i + 1..] {
                assert_ne!(a.name, b.name);
                assert_ne!(a.label, b.label);
            }
        }
    }

    #[test]
    fn basic_alias_resolves_to_the_simple_ws_preset() {
        let reg = ModelRegistry::standard();
        let via_alias = reg.get("basic").expect("alias resolves");
        assert_eq!(via_alias.name, "simple-ws");
        // The alias flows through the full spec grammar, including
        // key=value overrides.
        let parsed = ModelSpec::parse("basic").unwrap();
        assert_eq!(parsed, via_alias.spec);
        let overridden = ModelSpec::parse("basic,lambda=0.5").unwrap();
        assert_eq!(overridden.lambda, 0.5);
        // Aliases never add presets (the zoo and `models` output are
        // keyed by registry name only).
        assert!(reg.presets().iter().all(|p| p.name != "basic"));
    }

    #[test]
    fn quick_tier_has_the_twelve_zoo_variants() {
        let reg = ModelRegistry::standard();
        let quick: Vec<_> = reg
            .presets()
            .iter()
            .filter(|p| p.tier == PresetTier::Quick)
            .collect();
        assert_eq!(quick.len(), 12);
    }
}
