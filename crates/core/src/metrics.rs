//! Performance metrics derived from mean-field states.
//!
//! The paper's headline comparison (Tables 1–4) is the expected time a
//! task spends in the system, obtained from a fixed point via Little's
//! law. This module also exposes the tail-law checks used throughout the
//! experiments: the geometric decay ratio and the "apparent service
//! rate" interpretation of Section 2.2.

use crate::models::MeanFieldModel;
use crate::tail::TailVector;

/// Summary of a state's occupancy metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct OccupancySummary {
    /// Mean tasks per processor `L` (in-transit included).
    pub mean_tasks: f64,
    /// Mean time in system `W = L/λ`.
    pub mean_time_in_system: f64,
    /// Busy fraction `s_1` (folded over classes).
    pub busy_fraction: f64,
    /// Measured geometric decay ratio deep in the tail, if resolvable.
    pub tail_ratio: Option<f64>,
}

/// Compute an [`OccupancySummary`] for `state` under `model`.
pub fn summarize<M: MeanFieldModel>(model: &M, state: &[f64]) -> OccupancySummary {
    let tails = model.task_tails(state);
    OccupancySummary {
        mean_tasks: model.mean_tasks(state),
        mean_time_in_system: model.mean_time_in_system(state),
        busy_fraction: tails.get(1).copied().unwrap_or(0.0),
        tail_ratio: TailVector::from_slice(&tails[1..]).tail_ratio(1e-11),
    }
}

/// The apparent-service-rate prediction of Section 2.2: with steal
/// pressure `σ` added to unit service, tails should decay at
/// `λ / (1 + σ)`.
pub fn apparent_rate_ratio(lambda: f64, steal_pressure: f64) -> f64 {
    lambda / (1.0 + steal_pressure)
}

/// Relative error in percent, as reported in the paper's Table 1:
/// `100 · |sim − estimate| / sim`.
pub fn relative_error_percent(sim: f64, estimate: f64) -> f64 {
    100.0 * (sim - estimate).abs() / sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed_point::{solve, FixedPointOptions};
    use crate::models::SimpleWs;

    #[test]
    fn summary_is_consistent_with_fixed_point() {
        let m = SimpleWs::new(0.8).unwrap();
        let fp = solve(&m, &FixedPointOptions::default()).unwrap();
        let s = summarize(&m, &fp.state);
        assert!((s.mean_tasks - fp.mean_tasks).abs() < 1e-12);
        assert!((s.mean_time_in_system - fp.mean_time_in_system).abs() < 1e-12);
        assert!((s.busy_fraction - 0.8).abs() < 1e-8);
        let predicted = apparent_rate_ratio(0.8, 0.8 - m.pi2());
        assert!((s.tail_ratio.unwrap() - predicted).abs() < 1e-6);
    }

    #[test]
    fn relative_error_matches_paper_convention() {
        // Table 1, λ = 0.99: sim 11.306, estimate 10.462 → 7.46%.
        let err = relative_error_percent(11.306, 10.462);
        assert!((err - 7.46).abs() < 0.02, "error {err}");
    }
}
