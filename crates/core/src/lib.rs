//! Mean-field (differential-equation) models of randomized work
//! stealing — a reproduction of Mitzenmacher, *Analyses of Load Stealing
//! Models Based on Differential Equations*, SPAA 1998.
//!
//! # The method
//!
//! Consider `n` processors, each receiving its own Poisson(λ) task
//! stream (λ < 1) and serving FIFO at rate 1. Let
//! `s_i(t)` be the *fraction of processors with at least `i` tasks*.
//! The empirical process `(s_0, s_1, …)` is a density-dependent jump
//! Markov chain; by Kurtz's theorem, as `n → ∞` it converges to the
//! solution of a family of differential equations. For the paper's
//! simple work-stealing algorithm (an empty processor steals one task
//! from the tail of a uniformly random victim holding at least two):
//!
//! ```text
//! ds_1/dt = λ(s_0 − s_1) − (s_1 − s_2)(1 − s_2)
//! ds_i/dt = λ(s_{i−1} − s_i) − (s_i − s_{i+1}) − (s_i − s_{i+1})(s_1 − s_2),   i ≥ 2
//! ```
//!
//! The fixed point of this family has closed form: `π_1 = λ`,
//! `π_2 = (1 + λ − √(1 + 2λ − 3λ²))/2`, and geometric tails
//! `π_i = π_2 · ρ'^{i−2}` with `ρ' = λ/(1 + λ − π_2) < λ` — work
//! stealing makes the queue-length tails decay *strictly faster* than
//! the `λ^i` of independent M/M/1 queues, as if the service rate had
//! increased by the steal rate `λ − π_2`.
//!
//! # What's here
//!
//! * [`models`] — every system the paper writes equations for:
//!   no-stealing baseline, simple WS, victim-load thresholds, preemptive
//!   stealing, repeated steal attempts, Erlang service stages (constant
//!   service approximation), transfer delays, multiple victim choices,
//!   multi-task steals, pairwise rebalancing, heterogeneous speeds, and
//!   internal-arrival/static-drain systems. Each implements
//!   [`MeanFieldModel`].
//! * [`fixed_point`] — the numeric pipeline (integrate to steady state,
//!   then Newton-polish) plus closed forms where the paper derives them.
//! * [`stability`] — the Section 4 analysis: L₁ distance to the fixed
//!   point along trajectories, and the `π₂ < 1/2` hypothesis of
//!   Theorems 1–2.
//! * [`metrics`] — mean occupancy, Little's-law sojourn times, tail
//!   decay ratios.
//!
//! # Quickstart
//!
//! ```
//! use loadsteal_core::models::SimpleWs;
//! use loadsteal_core::fixed_point::{solve, FixedPointOptions};
//!
//! let model = SimpleWs::new(0.9).unwrap();
//! // Closed form (Section 2.2):
//! let exact = model.closed_form_fixed_point();
//! assert!((exact.mean_time_in_system - 3.541).abs() < 5e-3); // Table 1
//! // Numeric pipeline agrees:
//! let numeric = solve(&model, &FixedPointOptions::default()).unwrap();
//! assert!((numeric.mean_time_in_system - exact.mean_time_in_system).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fixed_point;
pub mod metrics;
pub mod models;
pub mod rate;
pub mod registry;
pub mod spec;
pub mod stability;
pub mod tail;
pub mod trajectory;

pub use fixed_point::{solve, solve_traced, FixedPoint, FixedPointOptions, SolveError};
pub use models::MeanFieldModel;
pub use rate::{fit_power_law, geometric_grid, SlopeFit};
pub use registry::{ModelRegistry, Preset, PresetTier};
pub use spec::{AnyModel, ModelSpec, UnsupportedSpec};
pub use tail::TailVector;
