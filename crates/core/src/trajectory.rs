//! Transient trajectories of the mean-field systems.
//!
//! Kurtz's theorem is about *trajectories*, not just fixed points: over
//! any finite horizon, the empirical tail process of the n-processor
//! system converges to the ODE solution as `n → ∞` (with fluctuations
//! of order `1/√n`). This module samples those ODE trajectories on a
//! uniform grid so they can be compared against simulator snapshots —
//! the basis of the convergence experiment (`fig_convergence`).

use loadsteal_ode::{AdaptiveOptions, DormandPrince45, IntegrationError};

use crate::models::MeanFieldModel;

/// A sampled trajectory: `(t, folded task tails at t)`.
pub type Trajectory = Vec<(f64, Vec<f64>)>;

/// Integrate `model` from `start` to `t_end`, sampling the folded task
/// tails at exactly `dt, 2dt, …` (the integrator is driven segment by
/// segment, so samples land on the grid points — important when
/// comparing against simulator snapshots taken at those exact times).
pub fn sample_tails<M: MeanFieldModel>(
    model: &M,
    start: &[f64],
    t_end: f64,
    dt: f64,
) -> Result<Trajectory, IntegrationError> {
    assert!(dt > 0.0 && t_end > 0.0, "need positive horizon and step");
    assert_eq!(start.len(), model.dim(), "start state has wrong dimension");
    let mut y = start.to_vec();
    let steps = (t_end / dt).floor() as usize;
    let mut out: Trajectory = Vec::with_capacity(steps);
    let mut dp = DormandPrince45::new(AdaptiveOptions::default());
    let mut t = 0.0;
    for k in 1..=steps {
        let target = k as f64 * dt;
        dp.integrate(model, t, target, &mut y)?;
        t = target;
        out.push((t, model.task_tails(&y)));
    }
    Ok(out)
}

/// Integrate `model` from `start` until the folded busy fraction
/// `s_1(t)` falls below `eps`, returning that time — the generic drain
/// clock for static (no-external-arrival) experiments. Matching
/// `eps ≈ 1/n` makes this comparable to an n-processor makespan (the
/// time at which less than one processor's worth of busy mass remains).
///
/// Works for any model whose dynamics actually drain from `start`
/// within `t_max` (use a vanishing arrival rate, e.g. `λ = 1e−9`, for
/// models that insist on `λ > 0`); returns the time reached otherwise.
pub fn drain_time<M: MeanFieldModel>(
    model: &M,
    start: &[f64],
    eps: f64,
    t_max: f64,
) -> Result<f64, IntegrationError> {
    use loadsteal_ode::solver::Control;
    assert!(eps > 0.0, "need a positive drain threshold");
    assert_eq!(start.len(), model.dim(), "start state has wrong dimension");
    let mut y = start.to_vec();
    let mut dp = DormandPrince45::new(AdaptiveOptions::default());
    dp.integrate_observed(model, 0.0, t_max, &mut y, |_t, y| {
        if model.task_tails(y)[1] < eps {
            Control::Stop
        } else {
            Control::Continue
        }
    })
}

/// Mass-balance residual `d L/dt − (λ − s₁)` of `model` at `state`.
///
/// Tasks enter a conservative system at rate λ per processor and leave
/// at rate `s₁` (the fraction of busy unit-speed processors), so along
/// any ODE trajectory the mean task count `L` must obey
/// `dL/dt = λ − s₁` *exactly* — stealing only moves tasks around. The
/// residual is computed from the model's own derivative field via a
/// directional derivative of `mean_tasks` (exact for the linear
/// `mean_tasks` every tail model uses, up to rounding).
///
/// Only meaningful for models whose processors serve at unit rate and
/// whose state carries no in-transit mass outside `mean_tasks`
/// (heterogeneous speeds scale the departure rate; transfer-delay
/// models count in-flight tasks in `L` but drain them at rate r).
pub fn mass_balance_residual<M: MeanFieldModel>(model: &M, state: &[f64]) -> f64 {
    assert_eq!(state.len(), model.dim(), "state has wrong dimension");
    let mut dy = vec![0.0; model.dim()];
    model.deriv(0.0, state, &mut dy);
    // Directional derivative of mean_tasks along dy: central difference
    // with a step small enough that the (linear) functional is exact.
    let eps = 1e-6;
    let plus: Vec<f64> = state.iter().zip(&dy).map(|(y, d)| y + eps * d).collect();
    let minus: Vec<f64> = state.iter().zip(&dy).map(|(y, d)| y - eps * d).collect();
    let dl_dt = (model.mean_tasks(&plus) - model.mean_tasks(&minus)) / (2.0 * eps);
    let s1 = model.task_tails(state)[1];
    dl_dt - (model.lambda() - s1)
}

/// Sup-norm distance between a simulated snapshot train and the model
/// trajectory, matching samples by index (both must use the same `dt`).
/// Compares the first `depth` tail levels.
pub fn sup_distance(model_traj: &Trajectory, sim_traj: &[(f64, Vec<f64>)], depth: usize) -> f64 {
    let mut worst = 0.0_f64;
    for ((_, m), (_, s)) in model_traj.iter().zip(sim_traj) {
        for i in 0..depth {
            let mv = m.get(i).copied().unwrap_or(0.0);
            let sv = s.get(i).copied().unwrap_or(0.0);
            worst = worst.max((mv - sv).abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{MeanFieldModel, SimpleWs};

    #[test]
    fn trajectory_approaches_fixed_point() {
        let m = SimpleWs::new(0.7).unwrap();
        let traj = sample_tails(&m, &m.empty_state(), 200.0, 5.0).unwrap();
        assert!(traj.len() >= 39, "got {} samples", traj.len());
        let last = &traj.last().unwrap().1;
        // s₁ → λ.
        assert!((last[1] - 0.7).abs() < 1e-4, "s₁(200) = {}", last[1]);
        // Busy fraction increases from empty.
        assert!(traj[0].1[1] < last[1]);
    }

    #[test]
    fn samples_are_on_the_grid() {
        let m = SimpleWs::new(0.5).unwrap();
        let traj = sample_tails(&m, &m.empty_state(), 10.0, 1.0).unwrap();
        assert_eq!(traj.len(), 10);
        for (k, (t, _)) in traj.iter().enumerate() {
            let expect = (k + 1) as f64;
            assert!((t - expect).abs() < 1e-12, "sample {k} at t = {t}");
        }
    }

    #[test]
    fn drain_time_matches_static_drain_model() {
        // The generic helper on the StaticDrain model must agree with
        // the model's own drain_time method.
        use crate::models::StaticDrain;
        use crate::tail::TailVector;
        let m = StaticDrain::new(0.0, 0.0, 64).unwrap();
        let start = TailVector::uniform_load(10, 64).into_vec();
        let generic = drain_time(&m, &start, 1e-3, 1e4).unwrap();
        let method = m.drain_time(10, 1e-3, 1e4).unwrap();
        assert!((generic - method).abs() < 0.05, "{generic} vs {method}");
    }

    #[test]
    fn retries_shorten_the_mean_field_drain_tail() {
        // Repeated attempts rob stragglers continuously, so the drain
        // to a small busy fraction ends sooner than one-shot stealing.
        use crate::models::{RepeatedSteal, StaticDrain};
        use crate::tail::TailVector;
        let eps = 1.0 / 256.0;
        let one_shot = StaticDrain::new(0.0, 0.0, 96).unwrap();
        let start = TailVector::uniform_load(20, 96).into_vec();
        let slow = drain_time(&one_shot, &start, eps, 1e4).unwrap();
        let repeated = RepeatedSteal::new(1e-9, 8.0, 2)
            .unwrap()
            .with_truncation(96);
        let fast = drain_time(&repeated, &start, eps, 1e4).unwrap();
        assert!(fast < slow, "repeated {fast} vs one-shot {slow}");
    }

    #[test]
    fn mass_is_conserved_along_the_simple_ws_flow() {
        use crate::tail::TailVector;
        let m = SimpleWs::new(0.8).unwrap();
        for state in [
            m.empty_state(),
            TailVector::geometric(0.6, m.truncation()).into_vec(),
            TailVector::uniform_load(3, m.truncation()).into_vec(),
        ] {
            let r = mass_balance_residual(&m, &state);
            assert!(r.abs() < 1e-9, "residual {r}");
        }
    }

    #[test]
    fn mass_balance_flags_non_conservative_dynamics() {
        // Heterogeneous speeds change the departure rate away from s₁,
        // so the plain balance must NOT hold — the probe distinguishes.
        use crate::models::Heterogeneous;
        use crate::tail::TailVector;
        use loadsteal_ode::OdeSystem;
        let m = Heterogeneous::new(0.9, 0.5, 1.5, 0.8, 2).unwrap();
        let dim = m.dim();
        let per = dim / 2;
        let mut state = Vec::with_capacity(dim);
        for _ in 0..2 {
            state.extend(TailVector::geometric(0.5, per).into_vec());
        }
        let r = mass_balance_residual(&m, &state);
        assert!(r.abs() > 1e-3, "expected imbalance, residual {r}");
    }

    #[test]
    fn sup_distance_of_identical_trajectories_is_zero() {
        let m = SimpleWs::new(0.6).unwrap();
        let traj = sample_tails(&m, &m.empty_state(), 20.0, 2.0).unwrap();
        assert_eq!(sup_distance(&traj, &traj, 8), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive horizon")]
    fn zero_dt_panics() {
        let m = SimpleWs::new(0.6).unwrap();
        let _ = sample_tails(&m, &m.empty_state(), 10.0, 0.0);
    }
}
