//! Transient trajectories of the mean-field systems.
//!
//! Kurtz's theorem is about *trajectories*, not just fixed points: over
//! any finite horizon, the empirical tail process of the n-processor
//! system converges to the ODE solution as `n → ∞` (with fluctuations
//! of order `1/√n`). This module samples those ODE trajectories on a
//! uniform grid so they can be compared against simulator snapshots —
//! the basis of the convergence experiment (`fig_convergence`).

use loadsteal_ode::{AdaptiveOptions, DormandPrince45, IntegrationError};

use crate::models::MeanFieldModel;

/// A sampled trajectory: `(t, folded task tails at t)`.
pub type Trajectory = Vec<(f64, Vec<f64>)>;

/// Integrate `model` from `start` to `t_end`, sampling the folded task
/// tails at exactly `dt, 2dt, …` (the integrator is driven segment by
/// segment, so samples land on the grid points — important when
/// comparing against simulator snapshots taken at those exact times).
pub fn sample_tails<M: MeanFieldModel>(
    model: &M,
    start: &[f64],
    t_end: f64,
    dt: f64,
) -> Result<Trajectory, IntegrationError> {
    assert!(dt > 0.0 && t_end > 0.0, "need positive horizon and step");
    assert_eq!(start.len(), model.dim(), "start state has wrong dimension");
    let mut y = start.to_vec();
    let steps = (t_end / dt).floor() as usize;
    let mut out: Trajectory = Vec::with_capacity(steps);
    let mut dp = DormandPrince45::new(AdaptiveOptions::default());
    let mut t = 0.0;
    for k in 1..=steps {
        let target = k as f64 * dt;
        dp.integrate(model, t, target, &mut y)?;
        t = target;
        out.push((t, model.task_tails(&y)));
    }
    Ok(out)
}

/// Integrate `model` from `start` until the folded busy fraction
/// `s_1(t)` falls below `eps`, returning that time — the generic drain
/// clock for static (no-external-arrival) experiments. Matching
/// `eps ≈ 1/n` makes this comparable to an n-processor makespan (the
/// time at which less than one processor's worth of busy mass remains).
///
/// Works for any model whose dynamics actually drain from `start`
/// within `t_max` (use a vanishing arrival rate, e.g. `λ = 1e−9`, for
/// models that insist on `λ > 0`); returns the time reached otherwise.
pub fn drain_time<M: MeanFieldModel>(
    model: &M,
    start: &[f64],
    eps: f64,
    t_max: f64,
) -> Result<f64, IntegrationError> {
    use loadsteal_ode::solver::Control;
    assert!(eps > 0.0, "need a positive drain threshold");
    assert_eq!(start.len(), model.dim(), "start state has wrong dimension");
    let mut y = start.to_vec();
    let mut dp = DormandPrince45::new(AdaptiveOptions::default());
    dp.integrate_observed(model, 0.0, t_max, &mut y, |_t, y| {
        if model.task_tails(y)[1] < eps {
            Control::Stop
        } else {
            Control::Continue
        }
    })
}

/// Sup-norm distance between a simulated snapshot train and the model
/// trajectory, matching samples by index (both must use the same `dt`).
/// Compares the first `depth` tail levels.
pub fn sup_distance(model_traj: &Trajectory, sim_traj: &[(f64, Vec<f64>)], depth: usize) -> f64 {
    let mut worst = 0.0_f64;
    for ((_, m), (_, s)) in model_traj.iter().zip(sim_traj) {
        for i in 0..depth {
            let mv = m.get(i).copied().unwrap_or(0.0);
            let sv = s.get(i).copied().unwrap_or(0.0);
            worst = worst.max((mv - sv).abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{MeanFieldModel, SimpleWs};

    #[test]
    fn trajectory_approaches_fixed_point() {
        let m = SimpleWs::new(0.7).unwrap();
        let traj = sample_tails(&m, &m.empty_state(), 200.0, 5.0).unwrap();
        assert!(traj.len() >= 39, "got {} samples", traj.len());
        let last = &traj.last().unwrap().1;
        // s₁ → λ.
        assert!((last[1] - 0.7).abs() < 1e-4, "s₁(200) = {}", last[1]);
        // Busy fraction increases from empty.
        assert!(traj[0].1[1] < last[1]);
    }

    #[test]
    fn samples_are_on_the_grid() {
        let m = SimpleWs::new(0.5).unwrap();
        let traj = sample_tails(&m, &m.empty_state(), 10.0, 1.0).unwrap();
        assert_eq!(traj.len(), 10);
        for (k, (t, _)) in traj.iter().enumerate() {
            let expect = (k + 1) as f64;
            assert!((t - expect).abs() < 1e-12, "sample {k} at t = {t}");
        }
    }

    #[test]
    fn drain_time_matches_static_drain_model() {
        // The generic helper on the StaticDrain model must agree with
        // the model's own drain_time method.
        use crate::models::StaticDrain;
        use crate::tail::TailVector;
        let m = StaticDrain::new(0.0, 0.0, 64).unwrap();
        let start = TailVector::uniform_load(10, 64).into_vec();
        let generic = drain_time(&m, &start, 1e-3, 1e4).unwrap();
        let method = m.drain_time(10, 1e-3, 1e4).unwrap();
        assert!((generic - method).abs() < 0.05, "{generic} vs {method}");
    }

    #[test]
    fn retries_shorten_the_mean_field_drain_tail() {
        // Repeated attempts rob stragglers continuously, so the drain
        // to a small busy fraction ends sooner than one-shot stealing.
        use crate::models::{RepeatedSteal, StaticDrain};
        use crate::tail::TailVector;
        let eps = 1.0 / 256.0;
        let one_shot = StaticDrain::new(0.0, 0.0, 96).unwrap();
        let start = TailVector::uniform_load(20, 96).into_vec();
        let slow = drain_time(&one_shot, &start, eps, 1e4).unwrap();
        let repeated = RepeatedSteal::new(1e-9, 8.0, 2)
            .unwrap()
            .with_truncation(96);
        let fast = drain_time(&repeated, &start, eps, 1e4).unwrap();
        assert!(fast < slow, "repeated {fast} vs one-shot {slow}");
    }

    #[test]
    fn sup_distance_of_identical_trajectories_is_zero() {
        let m = SimpleWs::new(0.6).unwrap();
        let traj = sample_tails(&m, &m.empty_state(), 20.0, 2.0).unwrap();
        assert_eq!(sup_distance(&traj, &traj, 8), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive horizon")]
    fn zero_dt_panics() {
        let m = SimpleWs::new(0.6).unwrap();
        let _ = sample_tails(&m, &m.empty_state(), 10.0, 0.0);
    }
}
