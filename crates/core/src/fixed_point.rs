//! Fixed points of the mean-field families and the numeric pipeline
//! that computes them.
//!
//! A fixed point is a state `π` with `dπ/dt = 0`; the paper's systems
//! flow towards attracting fixed points, so the robust way to find one
//! is to integrate from the empty state until the derivative vanishes,
//! then — when the truncated dimension is small enough — polish the
//! result with a damped Newton iteration on the algebraic system
//! `F(π) = 0` to (near) machine precision. The truncation is grown and
//! the solve repeated whenever mass reaches the boundary.

use loadsteal_obs::{NullRecorder, Recorder};
use loadsteal_ode::solver::SteadyStateOptions;
use loadsteal_ode::{
    newton_solve, AdaptiveOptions, DormandPrince45, IntegrationError, NewtonError, NewtonOptions,
};

use crate::models::MeanFieldModel;

/// Options for [`solve`].
#[derive(Debug, Clone, Copy)]
pub struct FixedPointOptions {
    /// Steady-state detection for the integration phase.
    pub steady: SteadyStateOptions,
    /// Integrator tolerances.
    pub adaptive: AdaptiveOptions,
    /// Newton-polish settings.
    pub newton: NewtonOptions,
    /// Skip the Newton polish above this dimension (the dense
    /// finite-difference Jacobian is O(dim²) evaluations).
    pub newton_max_dim: usize,
    /// Grow the truncation when the boundary mass exceeds this.
    pub boundary_tol: f64,
    /// Hard cap on truncation growth.
    pub max_truncation: usize,
}

impl Default for FixedPointOptions {
    fn default() -> Self {
        Self {
            steady: SteadyStateOptions {
                tol: 1e-10,
                t_max: 1e6,
                min_time: 1.0,
            },
            adaptive: AdaptiveOptions::default(),
            newton: NewtonOptions::default(),
            newton_max_dim: 700,
            boundary_tol: 1e-12,
            max_truncation: 60_000,
        }
    }
}

/// A computed fixed point with its derived performance metrics.
#[derive(Debug, Clone)]
pub struct FixedPoint {
    /// The raw model state at the fixed point.
    pub state: Vec<f64>,
    /// `‖F(π)‖∞` at the returned state.
    pub residual: f64,
    /// Whether the Newton polish ran (as opposed to integration only).
    pub polished: bool,
    /// Mean tasks per processor `L` (including in-transit tasks).
    pub mean_tasks: f64,
    /// Mean time in system `W = L/λ`.
    pub mean_time_in_system: f64,
    /// Folded task-count tails `s_0, s_1, …`.
    pub task_tails: Vec<f64>,
    /// Truncation level used.
    pub truncation: usize,
}

impl FixedPoint {
    /// Estimated geometric decay ratio of the task tails, measured at
    /// the deepest depth that stays well above the solver's residual
    /// noise floor.
    pub fn tail_ratio(&self) -> Option<f64> {
        let floor = (self.residual * 1e4).max(1e-9);
        crate::tail::TailVector::from_slice(&self.task_tails[1..]).tail_ratio(floor)
    }
}

/// Why [`solve`] failed.
#[derive(Debug)]
pub enum SolveError {
    /// The integration phase failed.
    Integration(IntegrationError),
    /// Integration hit `t_max` without reaching the residual tolerance
    /// and Newton could not rescue it.
    NotConverged {
        /// Best residual achieved.
        residual: f64,
    },
    /// Mass kept reaching the truncation boundary up to the cap.
    TruncationExhausted {
        /// The truncation level at which we gave up.
        levels: usize,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Integration(e) => write!(f, "integration failed: {e}"),
            Self::NotConverged { residual } => {
                write!(f, "fixed point not converged (residual {residual})")
            }
            Self::TruncationExhausted { levels } => {
                write!(f, "tail mass still at boundary after {levels} levels")
            }
        }
    }
}

impl std::error::Error for SolveError {}

impl From<IntegrationError> for SolveError {
    fn from(e: IntegrationError) -> Self {
        Self::Integration(e)
    }
}

/// Compute the fixed point of `model` (integrate from empty, grow the
/// truncation as needed, Newton-polish when feasible).
pub fn solve<M: MeanFieldModel>(
    model: &M,
    opts: &FixedPointOptions,
) -> Result<FixedPoint, SolveError> {
    solve_traced(model, opts, &mut NullRecorder)
}

/// [`solve`] with the integrator's convergence trace (per-step
/// residuals, accept/reject decisions, end-of-run summaries) sent to
/// `rec`. One `SolverDone` event is emitted per integration chunk.
pub fn solve_traced<M: MeanFieldModel>(
    model: &M,
    opts: &FixedPointOptions,
    rec: &mut dyn Recorder,
) -> Result<FixedPoint, SolveError> {
    let mut m = model.clone();
    loop {
        let (state, residual, polished) = solve_at_truncation(&m, opts, rec)?;
        let boundary = m.boundary_mass(&state);
        if boundary > opts.boundary_tol {
            let next = (m.truncation() * 3 / 2).max(m.truncation() + 16);
            if next > opts.max_truncation {
                return Err(SolveError::TruncationExhausted {
                    levels: m.truncation(),
                });
            }
            m = m.with_truncation(next);
            continue;
        }
        let task_tails = m.task_tails(&state);
        let mean_tasks = m.mean_tasks(&state);
        return Ok(FixedPoint {
            residual,
            polished,
            mean_tasks,
            mean_time_in_system: m.mean_time_in_system(&state),
            task_tails,
            truncation: m.truncation(),
            state,
        });
    }
}

/// One pass at the model's current truncation: integrate in growing
/// time chunks, attempting a Newton polish after each chunk.
///
/// Some systems (notably load-proportional rebalancing) relax towards
/// their fixed point very slowly under pure integration; Newton's basin
/// of attraction is reached long before the trajectory itself settles,
/// so interleaving attempts turns minutes into milliseconds without
/// giving up the integration fallback.
fn solve_at_truncation<M: MeanFieldModel>(
    m: &M,
    opts: &FixedPointOptions,
    rec: &mut dyn Recorder,
) -> Result<(Vec<f64>, f64, bool), SolveError> {
    let mut y = m.empty_state();
    let mut dp = DormandPrince45::new(opts.adaptive);
    let mut t = 0.0;
    // Short first chunk: Newton's basin is usually reached within a few
    // dozen time units, far before the trajectory itself settles.
    let mut chunk = 50.0_f64.min(opts.steady.t_max);
    let mut residual;
    loop {
        let stage = loadsteal_ode::solver::SteadyStateOptions {
            t_max: (t + chunk).min(opts.steady.t_max) - t,
            ..opts.steady
        };
        let report = dp.integrate_to_steady_traced(m, t, &mut y, &stage, rec)?;
        t = report.t;
        residual = report.residual;

        if m.dim() <= opts.newton_max_dim {
            if let Some((state, r)) = try_newton(m, &y, residual, opts) {
                return Ok((state, r, true));
            }
        }
        if report.converged {
            return Ok((y, residual, false));
        }
        if t >= opts.steady.t_max {
            if residual <= opts.steady.tol.max(1e-8) {
                return Ok((y, residual, false));
            }
            return Err(SolveError::NotConverged { residual });
        }
        chunk *= 4.0;
    }
}

/// Attempt a Newton polish from `y`; returns the improved state when the
/// iteration converges to a better residual than `residual`.
fn try_newton<M: MeanFieldModel>(
    m: &M,
    y: &[f64],
    residual: f64,
    opts: &FixedPointOptions,
) -> Option<(Vec<f64>, f64)> {
    let mut trial = y.to_vec();
    // Interleaved attempts are speculative: bound the cost of a failed
    // attempt (each iteration pays a dim² finite-difference Jacobian).
    let newton_opts = loadsteal_ode::NewtonOptions {
        max_iters: opts.newton.max_iters.min(25),
        ..opts.newton
    };
    match newton_solve(|x, out| m.deriv(0.0, x, out), &mut trial, &newton_opts) {
        Ok(_) => {
            m.project(&mut trial);
            // Projection can nudge the residual; re-evaluate honestly.
            let mut f = vec![0.0; trial.len()];
            m.deriv(0.0, &trial, &mut f);
            let r = f.iter().fold(0.0_f64, |a, &v| a.max(v.abs()));
            // Accept only genuine convergence (not a stalled local
            // improvement far from the fixed point).
            if r < opts.newton.tol * 100.0 && r <= residual {
                return Some((trial, r));
            }
            None
        }
        Err(
            NewtonError::SingularJacobian { .. }
            | NewtonError::Stalled { .. }
            | NewtonError::MaxIterations { .. }
            | NewtonError::NonFinite,
        ) => None,
    }
}
