//! Shared harness for the reproduction benches.
//!
//! Every table and figure of the paper has a `[[bench]]` target in this
//! crate (`cargo bench -p loadsteal-bench --bench table1`, …); each
//! prints the same rows the paper reports, with the simulation protocol
//! controlled by environment variables:
//!
//! | Variable | Meaning | Default |
//! |----------|---------|---------|
//! | `LOADSTEAL_RUNS` | replications per cell | 3 |
//! | `LOADSTEAL_HORIZON` | simulated seconds per run | 20 000 |
//! | `LOADSTEAL_WARMUP` | discarded prefix | horizon/10 |
//! | `LOADSTEAL_FULL=1` | the paper's exact protocol (10 × 100 000 s, 10 000 s warmup) | off |
//!
//! The defaults regenerate every table in minutes on a laptop with
//! sampling error well under the model-vs-simulation differences being
//! demonstrated; `LOADSTEAL_FULL=1` reproduces the paper's protocol
//! verbatim.

use loadsteal_queueing::ConfidenceInterval;
use loadsteal_sim::{replicate, SimConfig};

/// Simulation protocol (replications / horizon / warmup).
#[derive(Debug, Clone, Copy)]
pub struct Protocol {
    /// Replications per table cell.
    pub runs: usize,
    /// Simulated time per run.
    pub horizon: f64,
    /// Discarded warmup prefix.
    pub warmup: f64,
}

impl Protocol {
    /// Read the protocol from the environment (see crate docs).
    pub fn from_env() -> Self {
        if env_flag("LOADSTEAL_FULL") {
            return Self {
                runs: 10,
                horizon: 100_000.0,
                warmup: 10_000.0,
            };
        }
        let runs = env_parse("LOADSTEAL_RUNS").unwrap_or(3);
        let horizon = env_parse("LOADSTEAL_HORIZON").unwrap_or(20_000.0);
        let warmup = env_parse("LOADSTEAL_WARMUP").unwrap_or(horizon / 10.0);
        Self {
            runs,
            horizon,
            warmup,
        }
    }

    /// Apply the protocol to a config.
    pub fn apply(&self, cfg: &mut SimConfig) {
        cfg.horizon = self.horizon;
        cfg.warmup = self.warmup;
    }

    /// Run the protocol on `cfg` and return the mean sojourn time.
    pub fn mean_sojourn(&self, mut cfg: SimConfig, seed: u64) -> f64 {
        self.apply(&mut cfg);
        replicate(&cfg, self.runs, seed).mean_sojourn()
    }

    /// Run the protocol and return mean ± CI.
    pub fn sojourn_ci(&self, mut cfg: SimConfig, seed: u64) -> ConfidenceInterval {
        self.apply(&mut cfg);
        replicate(&cfg, self.runs, seed).sojourn_ci()
    }

    /// One-line description for bench headers.
    pub fn describe(&self) -> String {
        format!(
            "{} runs × {:.0} s (warmup {:.0} s); paper: 10 × 100000 s (LOADSTEAL_FULL=1)",
            self.runs, self.horizon, self.warmup
        )
    }
}

fn env_flag(name: &str) -> bool {
    std::env::var(name)
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false)
}

fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Print a table header: a title line, the protocol, and column names.
pub fn print_header(title: &str, protocol: &Protocol, columns: &[&str]) {
    println!("\n=== {title} ===");
    println!("protocol: {}", protocol.describe());
    for c in columns {
        print!("{c:>12}");
    }
    println!();
    println!("{}", "-".repeat(12 * columns.len()));
}

/// Print one row of f64 cells (NaN renders as a dash).
pub fn print_row(cells: &[f64]) {
    for &c in cells {
        if c.is_nan() {
            print!("{:>12}", "—");
        } else {
            print!("{c:>12.3}");
        }
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_protocol_is_reasonable() {
        let p = Protocol::from_env();
        assert!(p.runs >= 1);
        assert!(p.warmup < p.horizon);
    }

    #[test]
    fn protocol_applies_to_config() {
        let p = Protocol {
            runs: 2,
            horizon: 500.0,
            warmup: 50.0,
        };
        let mut cfg = SimConfig::paper_default(8, 0.5);
        p.apply(&mut cfg);
        assert_eq!(cfg.horizon, 500.0);
        assert_eq!(cfg.warmup, 50.0);
    }
}
