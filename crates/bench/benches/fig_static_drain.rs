//! Figure: static systems (Section 3.5) — drain a loaded system.
//!
//! All processors start with m₀ tasks and no new work arrives
//! (λ_ext = 0). The mean-field `s₁(t)` predicts the drain profile; the
//! finite-n makespan is the time the *last* processor finishes, which
//! corresponds to the mean-field time at which `s₁` falls below `1/n`
//! (less than one processor's worth of busy mass). Policies are matched
//! on both sides: one-shot stealing vs the `StaticDrain` equations,
//! repeated attempts vs the `RepeatedSteal` equations at a vanishing
//! arrival rate. Expected shape: the ε = 1/n prediction tracks the
//! simulated makespan at each n; retries shorten the drain tail;
//! internal spawning (λ_int > 0) stretches it by ≈ 1/(1 − λ_int).

use loadsteal_bench::{print_header, print_row, Protocol};
use loadsteal_core::models::{MeanFieldModel, RepeatedSteal, StaticDrain};
use loadsteal_core::tail::TailVector;
use loadsteal_core::trajectory::drain_time;
use loadsteal_sim::{replicate, SimConfig, StealPolicy};

const RETRY_RATE: f64 = 8.0;

fn simulate_makespan(
    protocol: &Protocol,
    n: usize,
    initial: usize,
    internal: f64,
    retries: bool,
    seed: u64,
) -> f64 {
    let mut cfg = SimConfig::paper_default(n, 0.0);
    cfg.lambda = 0.0;
    cfg.internal_lambda = internal;
    cfg.run_until_drained = true;
    cfg.initial_load = initial;
    cfg.warmup = 0.0;
    cfg.policy = if retries {
        StealPolicy::Repeated {
            rate: RETRY_RATE,
            threshold: 2,
        }
    } else {
        StealPolicy::simple_ws()
    };
    replicate(&cfg, protocol.runs.max(5), seed)
        .makespan_mean
        .mean()
}

fn mean_field_drain(initial: usize, internal: f64, retries: bool, eps: f64) -> f64 {
    let levels = 4 * initial + 16;
    let start = TailVector::uniform_load(initial, levels).into_vec();
    if retries {
        let m = RepeatedSteal::new(1e-9, RETRY_RATE, 2)
            .expect("valid")
            .with_truncation(levels);
        assert!(internal == 0.0, "repeated mean-field has no λ_int");
        drain_time(&m, &start, eps, 1e6).expect("drains")
    } else {
        let m = StaticDrain::new(0.0, internal, levels).expect("valid");
        drain_time(&m, &start, eps, 1e6).expect("drains")
    }
}

fn main() {
    let protocol = Protocol::from_env();
    print_header(
        "Figure: static drain — mean-field s₁ < 1/n vs simulated makespan",
        &protocol,
        &[
            "m₀",
            "λ_int",
            "retries",
            "MF(1/64)",
            "Sim n=64",
            "MF(1/256)",
            "Sim n=256",
        ],
    );
    // (initial load, λ_int, retries?)
    let rows = [
        (10usize, 0.0, true),
        (20, 0.0, true),
        (40, 0.0, true),
        (20, 0.0, false),
        (20, 0.3, false),
    ];
    for (k, (initial, internal, retries)) in rows.into_iter().enumerate() {
        let mf64 = mean_field_drain(initial, internal, retries, 1.0 / 64.0);
        let mf256 = mean_field_drain(initial, internal, retries, 1.0 / 256.0);
        let s64 = simulate_makespan(&protocol, 64, initial, internal, retries, 12_000 + k as u64);
        let s256 = simulate_makespan(
            &protocol,
            256,
            initial,
            internal,
            retries,
            12_100 + k as u64,
        );
        print_row(&[
            initial as f64,
            internal,
            if retries { 1.0 } else { 0.0 },
            mf64,
            s64,
            mf256,
            s256,
        ]);
    }
    println!("\nshape check: ε = 1/n mean-field drain times track the simulated makespans");
    println!("at each n; retries (row 2 vs row 4) shorten the straggler tail; spawning");
    println!("(last row) stretches the drain by ≈ 1/(1 − λ_int).");
}
