//! Table 2 — constant service times vs. Erlang-stage estimates (T = 2).
//!
//! Simulations run with *truly constant* unit service; the estimates are
//! fixed points of the method-of-stages systems with c = 10 and c = 20
//! stages. Expected shape: constant service beats exponential service
//! (compare Table 1), and the c = 20 estimate tracks Sim(128) closely.

use loadsteal_bench::{print_header, print_row, Protocol};
use loadsteal_core::fixed_point::{solve, FixedPointOptions};
use loadsteal_core::models::ErlangStages;
use loadsteal_queueing::ServiceDistribution;
use loadsteal_sim::SimConfig;

fn main() {
    let protocol = Protocol::from_env();
    let opts = FixedPointOptions::default();
    print_header(
        "Table 2: constant service times (T = 2), stage estimates c = 10, 20",
        &protocol,
        &[
            "λ", "Sim(16)", "Sim(32)", "Sim(64)", "Sim(128)", "c=10", "c=20",
        ],
    );
    for (row, &lambda) in [0.50, 0.70, 0.80, 0.90, 0.95, 0.99].iter().enumerate() {
        let mut cells = vec![lambda];
        for (col, n) in [16usize, 32, 64, 128].into_iter().enumerate() {
            let mut cfg = SimConfig::paper_default(n, lambda);
            cfg.service = ServiceDistribution::unit_deterministic();
            let seed = 2000 + (row * 10 + col) as u64;
            cells.push(protocol.mean_sojourn(cfg, seed));
        }
        for stages in [10usize, 20] {
            let m = ErlangStages::new(lambda, stages).expect("valid");
            cells.push(solve(&m, &opts).expect("fixed point").mean_time_in_system);
        }
        print_row(&cells);
    }
    println!("\npaper (Sim(128) | c=10 | c=20):");
    println!("  λ=0.50: 1.378 | 1.405 | 1.391     λ=0.90: 2.677 | 2.759 | 2.700");
    println!("  λ=0.70: 1.706 | 1.749 | 1.727     λ=0.95: 3.594 | 3.701 | 3.625");
    println!("  λ=0.80: 2.013 | 2.070 | 2.039     λ=0.99: 7.542 | 7.581 | 7.399");
}
