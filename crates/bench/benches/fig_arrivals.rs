//! Figure: arrival variability (Section 3.1, applied to arrivals).
//!
//! The staging trick works on arrivals too: Erlang-c inter-arrival
//! times interpolate from Poisson (c = 1) to perfectly regular
//! (c → ∞). Expected shape: like Table 2's service-side result, less
//! variability means less waiting; the fixed points track simulations
//! that use true Erlang-c arrival streams.

use loadsteal_bench::{print_header, print_row, Protocol};
use loadsteal_core::fixed_point::{solve, FixedPointOptions};
use loadsteal_core::models::ErlangArrivals;
use loadsteal_sim::{SimConfig, StealPolicy};

fn main() {
    let protocol = Protocol::from_env();
    let opts = FixedPointOptions::default();
    for lambda in [0.8, 0.95] {
        print_header(
            &format!("Figure: arrival-phase sweep (T = 2, λ = {lambda})"),
            &protocol,
            &["phases c", "Estimate W", "Sim(128) W"],
        );
        for c in [1usize, 2, 5, 10, 20] {
            let m = ErlangArrivals::new(lambda, c, 2).expect("valid");
            let est = solve(&m, &opts).expect("fp").mean_time_in_system;
            let mut cfg = SimConfig::paper_default(128, lambda);
            cfg.policy = StealPolicy::simple_ws();
            if c > 1 {
                cfg.arrival = Some(m.sim_arrival_distribution());
            }
            let sim = protocol.mean_sojourn(cfg, 14_000 + (lambda * 100.0) as u64 + c as u64);
            print_row(&[c as f64, est, sim]);
        }
    }
    println!("\nshape check: W decreases as arrivals regularize (c ↑), mirroring the");
    println!("constant-service result of Table 2 on the arrival side.");
}
