//! Figure: work stealing vs work sharing (the Introduction's argument).
//!
//! Same system, two migration philosophies: idle processors *pulling*
//! tasks (stealing) vs loaded processors *pushing* arrivals away
//! (sharing). Expected shape: comparable sojourn times at moderate load,
//! but wildly different message budgets — sharing probes on every
//! arrival at a loaded processor (rate grows with λ), stealing probes
//! only when someone idles (rate shrinks with λ). "When all processors
//! are busy, no attempts are made to migrate work."

use loadsteal_bench::{print_header, Protocol};
use loadsteal_core::fixed_point::{solve, FixedPointOptions};
use loadsteal_core::models::{SimpleWs, WorkSharing};
use loadsteal_sim::{replicate, SimConfig, StealPolicy};

fn main() {
    let protocol = Protocol::from_env();
    let opts = FixedPointOptions::default();
    print_header(
        "Figure: stealing (pull) vs sharing (push), T = F = R = 2, n = 128",
        &protocol,
        &[
            "λ",
            "W steal",
            "W share",
            "probes/s steal",
            "probes/s share",
        ],
    );
    for lambda in [0.50, 0.70, 0.80, 0.90, 0.95, 0.99] {
        let steal_model = SimpleWs::new(lambda).unwrap();
        let share_model = WorkSharing::new(lambda, 2, 2).unwrap();
        let share_fp = solve(&share_model, &opts).unwrap();

        let run = |policy: StealPolicy, seed: u64| {
            let mut cfg = SimConfig::paper_default(128, lambda);
            cfg.policy = policy;
            protocol.apply(&mut cfg);
            let rep = replicate(&cfg, protocol.runs, seed);
            let r0 = &rep.runs[0];
            let probes_per_sec = r0.steal_attempts as f64 / r0.end_time / 128.0;
            (rep.mean_sojourn(), probes_per_sec)
        };
        let (w_steal, p_steal) = run(StealPolicy::simple_ws(), 15_000);
        let (w_share, p_share) = run(
            StealPolicy::Share {
                send_threshold: 2,
                recv_threshold: 2,
            },
            15_100,
        );
        println!("{lambda:>12.2} {w_steal:>12.3} {w_share:>12.3} {p_steal:>14.4} {p_share:>14.4}");
        println!(
            "{:>12} {:>12.3} {:>12.3} {:>14.4} {:>14.4}",
            "(estimates)",
            steal_model.closed_form_mean_time(),
            share_fp.mean_time_in_system,
            lambda - steal_model.pi2(),
            share_model.probe_rate(&share_fp.state),
        );
    }
    println!("\nshape check: stealing's probe rate λ − π₂ *falls* towards 1 − λ as the");
    println!("system saturates, sharing's λ·s_F *grows* towards λ — the communication");
    println!("efficiency argument for work stealing, quantified.");
}
