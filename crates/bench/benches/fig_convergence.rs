//! Figure: convergence of finite systems to the mean-field trajectory
//! (Section 4 / Kurtz's theorem, quantitatively).
//!
//! From an empty start, compares the simulated tail trajectory
//! `s_i^n(t)` against the ODE solution over a transient window, for
//! n = 16 … 512. Expected shape: the sup-norm error shrinks roughly
//! like 1/√n (halving n quadruples the squared error) — the mean-field
//! approximation is already tight at n = 128, which is why the paper's
//! tables work.

use loadsteal_bench::{print_header, Protocol};
use loadsteal_core::models::{MeanFieldModel, SimpleWs};
use loadsteal_core::trajectory::{sample_tails, sup_distance};
use loadsteal_sim::{run_seeded, SimConfig};

fn main() {
    let protocol = Protocol::from_env();
    let lambda = 0.9;
    let horizon = 60.0;
    let dt = 1.0;
    let depth = 10;

    let model = SimpleWs::new(lambda).unwrap();
    let ode = sample_tails(&model, &model.empty_state(), horizon, dt).expect("trajectory");

    print_header(
        &format!(
            "Figure: transient convergence to the ODE trajectory (λ = {lambda}, t ≤ {horizon})"
        ),
        &protocol,
        &["n", "sup error", "√n · err"],
    );
    for n in [16usize, 32, 64, 128, 256, 512] {
        let mut cfg = SimConfig::paper_default(n, lambda);
        cfg.horizon = horizon;
        cfg.warmup = 0.0;
        cfg.snapshot_interval = Some(dt);
        // Average the error over a few replications to tame noise.
        let runs = protocol.runs.max(3);
        let mut err_sum = 0.0;
        for r in 0..runs {
            let res = run_seeded(&cfg, 13_000 + (n * 17 + r) as u64);
            err_sum += sup_distance(&ode, &res.snapshots, depth);
        }
        let err = err_sum / runs as f64;
        println!("{n:>12} {err:>12.5} {:>12.4}", (n as f64).sqrt() * err);
    }
    println!("\nshape check: sup error falls ≈ like 1/√n (the √n-scaled column is flat);");
    println!("this is the quantitative content of the Kurtz limit behind the whole paper.");
}
