//! Figure: the full service-variability axis (Section 3.1 both ways).
//!
//! One curve from nearly-constant service (Erlang-20, scv = 0.05)
//! through exponential (scv = 1) to bursty hyperexponential (scv = 4),
//! with simulations drawing from the true service law at each point.
//! Expected shape: W increases monotonically in the squared coefficient
//! of variation — Table 2 was the left end of this curve.

use loadsteal_bench::{print_header, print_row, Protocol};
use loadsteal_core::fixed_point::{solve, FixedPointOptions};
use loadsteal_core::models::{ErlangStages, HyperService, SimpleWs};
use loadsteal_queueing::ServiceDistribution;
use loadsteal_sim::{SimConfig, StealPolicy};

fn main() {
    let protocol = Protocol::from_env();
    let opts = FixedPointOptions::default();
    let lambda = 0.9;
    print_header(
        &format!("Figure: service variability sweep (T = 2, λ = {lambda})"),
        &protocol,
        &["scv", "Estimate W", "Sim(128) W"],
    );
    // (scv, model estimate, simulator service law)
    let mut points: Vec<(f64, f64, ServiceDistribution)> = Vec::new();
    for stages in [20u32, 5, 2] {
        let m = ErlangStages::new(lambda, stages as usize).expect("valid");
        let est = solve(&m, &opts).expect("fp").mean_time_in_system;
        points.push((
            1.0 / stages as f64,
            est,
            ServiceDistribution::unit_erlang(stages),
        ));
    }
    points.push((
        1.0,
        SimpleWs::new(lambda).unwrap().closed_form_mean_time(),
        ServiceDistribution::unit_exponential(),
    ));
    for scv in [2.0, 4.0] {
        let m = HyperService::with_scv(lambda, scv, 2).expect("valid");
        let (p, mu1, mu2) = m.branches();
        let est = solve(&m, &opts).expect("fp").mean_time_in_system;
        points.push((
            scv,
            est,
            ServiceDistribution::HyperExp {
                p,
                rate1: mu1,
                rate2: mu2,
            },
        ));
    }

    for (k, (scv, est, service)) in points.into_iter().enumerate() {
        let mut cfg = SimConfig::paper_default(128, lambda);
        cfg.policy = StealPolicy::simple_ws();
        cfg.service = service;
        let sim = protocol.mean_sojourn(cfg, 16_000 + k as u64);
        print_row(&[scv, est, sim]);
    }
    println!("\nshape check: W is monotone in the service scv; the M/M/1-style");
    println!("variability penalty survives work stealing (Table 2 generalized).");
}
