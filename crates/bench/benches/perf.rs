//! Criterion micro-benchmarks for the substrates: derivative evaluation
//! throughput, fixed-point solves, and simulator event throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use loadsteal_core::fixed_point::{solve, FixedPointOptions};
use loadsteal_core::models::{MeanFieldModel, Rebalance, RebalanceRateFn, SimpleWs, TransferWs};
use loadsteal_obs::CountingRecorder;
use loadsteal_ode::{AdaptiveOptions, DormandPrince45, OdeSystem};
use loadsteal_sim::{replicate, run, run_recorded, SimConfig};

fn bench_deriv(c: &mut Criterion) {
    let mut g = c.benchmark_group("deriv");
    let simple = SimpleWs::new(0.95).unwrap();
    let y = simple.closed_form_tails().into_vec();
    let mut dy = vec![0.0; y.len()];
    g.bench_function("simple_ws_dim_~500", |b| {
        b.iter(|| simple.deriv(0.0, black_box(&y), &mut dy))
    });
    let transfer = TransferWs::new(0.9, 0.25, 4).unwrap();
    let yt = transfer.empty_state();
    let mut dyt = vec![0.0; yt.len()];
    g.bench_function("transfer_ws", |b| {
        b.iter(|| transfer.deriv(0.0, black_box(&yt), &mut dyt))
    });
    let reb = Rebalance::new(0.9, RebalanceRateFn::Constant(1.0)).unwrap();
    let yr = SimpleWs::new(0.9).unwrap().closed_form_tails().into_vec();
    let yr = {
        let mut v = yr;
        v.resize(reb.dim(), 0.0);
        v
    };
    let mut dyr = vec![0.0; yr.len()];
    g.bench_function("rebalance_quadratic", |b| {
        b.iter(|| reb.deriv(0.0, black_box(&yr), &mut dyr))
    });
    g.finish();
}

fn bench_integrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("integrate");
    g.sample_size(10);
    let m = SimpleWs::new(0.9).unwrap();
    g.bench_function("simple_ws_to_t100", |b| {
        b.iter_batched(
            || {
                (
                    m.empty_state(),
                    DormandPrince45::new(AdaptiveOptions::default()),
                )
            },
            |(mut y, mut dp)| {
                dp.integrate(&m, 0.0, 100.0, &mut y).unwrap();
                y
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("simple_ws_fixed_point", |b| {
        b.iter(|| solve(&m, &FixedPointOptions::default()).unwrap())
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    let mut cfg = SimConfig::paper_default(128, 0.9);
    cfg.horizon = 500.0;
    cfg.warmup = 50.0;
    // ~115k events per iteration at these settings.
    g.bench_function("simple_ws_n128_500s", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run(&cfg, seed)
        })
    });
    // The same run with tail sampling on a 5 s grid into a counting
    // recorder: the price of the transient observatory when enabled.
    // The disabled path is the bench above — `sample_tails = None` is
    // the default — so the pair bounds the feature's overhead.
    let mut sampled = cfg.clone();
    sampled.sample_tails = Some(5.0);
    g.bench_function("simple_ws_n128_500s_sampled", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut rec = CountingRecorder::new();
            run_recorded(&sampled, seed, &mut rec);
            rec
        })
    });
    // Large-n throughput on the calendar engine (the default): 65 536
    // processors over a short horizon is ~2.4 M events per iteration,
    // dominated by event-list churn at a pending-set size no heap-era
    // protocol ever reached. Guards the scalable-core claim — SoA
    // state, O(1) victim sampling, calendar scheduling — at a size
    // where an O(log n) or allocation regression is unmissable.
    let mut big = SimConfig::paper_default(65_536, 0.9);
    big.horizon = 20.0;
    big.warmup = 2.0;
    g.bench_function("simple_ws_n65536_20s", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run(&big, seed)
        })
    });
    g.finish();
}

/// Replication fan-out on the real work-stealing executor: the same
/// 8-run replicate pinned to a 1-worker and an 8-worker pool. The
/// runs are independent and seeded per index, so the pair measures
/// pure executor speedup (results are bit-identical — asserted in
/// `crates/sim/tests/replicate_parallel.rs`). On a single-CPU host
/// the two land within noise of each other; the fan-out shows on
/// machines with spare cores, so treat the committed snapshot numbers
/// as a 1-CPU floor, not the parallel ceiling (docs/executor.md §5.3).
fn bench_replicate(c: &mut Criterion) {
    let mut g = c.benchmark_group("replicate");
    g.sample_size(10);
    let mut cfg = SimConfig::paper_default(64, 0.9);
    cfg.horizon = 300.0;
    cfg.warmup = 30.0;
    let runs = 8;
    let seq = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    g.bench_function("simple_ws_n64_8runs_1w", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            seq.install(|| replicate(&cfg, runs, seed))
        })
    });
    let par = rayon::ThreadPoolBuilder::new()
        .num_threads(8)
        .build()
        .unwrap();
    g.bench_function("simple_ws_n64_8runs_8w", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            par.install(|| replicate(&cfg, runs, seed))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_deriv,
    bench_integrate,
    bench_simulator,
    bench_replicate
);
criterion_main!(benches);
