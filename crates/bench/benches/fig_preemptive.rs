//! Figure: preemptive stealing sweep (Section 2.4).
//!
//! Mean time in system over the (B, T) grid, with simulation spot
//! checks. Expected shape: starting to steal before the queue empties
//! (B > 0) helps, most visibly at high arrival rates; the tails beyond
//! B + T keep the geometric law.

use loadsteal_bench::{print_header, print_row, Protocol};
use loadsteal_core::fixed_point::{solve, FixedPointOptions};
use loadsteal_core::models::Preemptive;
use loadsteal_core::tail::TailVector;
use loadsteal_sim::{SimConfig, StealPolicy};

fn main() {
    let protocol = Protocol::from_env();
    let opts = FixedPointOptions::default();
    for lambda in [0.8, 0.95] {
        print_header(
            &format!("Figure: preemptive stealing, λ = {lambda} (estimates)"),
            &protocol,
            &["B \\ T", "T=2", "T=3", "T=4", "T=5"],
        );
        for b in 0usize..=3 {
            let mut cells = vec![b as f64];
            for t in 2usize..=5 {
                if b + 2 > t {
                    cells.push(f64::NAN);
                    continue;
                }
                let m = Preemptive::new(lambda, b, t).expect("valid");
                cells.push(solve(&m, &opts).expect("fp").mean_time_in_system);
            }
            print_row(&cells);
        }
    }

    // Simulation spot check at λ = 0.95, (B, T) = (1, 3) vs (0, 3).
    let lambda = 0.95;
    println!("\nsimulation spot check (n = 128, λ = {lambda}):");
    for (b, t) in [(0usize, 3usize), (1, 3), (2, 4)] {
        let mut cfg = SimConfig::paper_default(128, lambda);
        cfg.policy = StealPolicy::Preemptive {
            begin_at: b,
            rel_threshold: t,
        };
        let sim = protocol.mean_sojourn(cfg, 6000 + (10 * b + t) as u64);
        let m = Preemptive::new(lambda, b, t).unwrap();
        let fp = solve(&m, &opts).unwrap();
        let tails = TailVector::from_slice(&fp.task_tails[1..]);
        println!(
            "  (B={b}, T={t}): sim {sim:.3} vs estimate {:.3}; tail ratio {:.4} (predicted {:.4})",
            fp.mean_time_in_system,
            fp.tail_ratio().unwrap_or(f64::NAN),
            m.asymptotic_tail_ratio(&tails)
        );
    }
    println!("\nshape check: W decreases in B at fixed T; estimates track simulation.");
}
