//! Figure: the geometric tail law (Sections 2.2–2.3).
//!
//! Prints the fixed-point occupancy tails of no-stealing vs simple WS vs
//! threshold WS, the measured simulation tails at n = 128, and the
//! decay ratios against the apparent-service-rate prediction
//! `λ/(1 + λ − π₂)`. Expected shape: both model and simulation tails are
//! geometric; stealing's ratio is strictly below λ.

use loadsteal_bench::{print_header, Protocol};
use loadsteal_core::models::{NoSteal, SimpleWs, ThresholdWs};
use loadsteal_sim::{replicate, SimConfig, StealPolicy};

fn main() {
    let protocol = Protocol::from_env();
    let lambda = 0.9;
    let no_steal = NoSteal::new(lambda).unwrap();
    let simple = SimpleWs::new(lambda).unwrap();
    let threshold = ThresholdWs::new(lambda, 4).unwrap();

    let mut cfg = SimConfig::paper_default(128, lambda);
    cfg.policy = StealPolicy::simple_ws();
    protocol.apply(&mut cfg);
    let sim = replicate(&cfg, protocol.runs, 5000).mean_load_tails();

    print_header(
        "Figure: occupancy tails s_i at λ = 0.9",
        &protocol,
        &["i", "M/M/1", "simple WS", "T=4 WS", "sim simple"],
    );
    let nt = no_steal.closed_form_tails();
    let st = simple.closed_form_tails();
    let tt = threshold.closed_form_tails();
    for i in 1..=12usize {
        println!(
            "{i:>12} {:>12.6} {:>12.6} {:>12.6} {:>12.6}",
            nt.get(i),
            st.get(i),
            tt.get(i),
            sim.get(i).copied().unwrap_or(0.0)
        );
    }
    println!("\ndecay ratios (deep tail):");
    println!("  M/M/1:      λ = {lambda}");
    println!(
        "  simple WS:  ρ' = λ/(1+λ−π₂) = {:.6} (π₂ = {:.6})",
        simple.rho_prime(),
        simple.pi2()
    );
    println!(
        "  T=4 WS:     ρ' = {:.6} (π₂ = {:.6})",
        threshold.rho_prime(),
        threshold.pi2()
    );
    let mut ratios = Vec::new();
    for i in 3..=7 {
        if sim.get(i + 1).copied().unwrap_or(0.0) > 1e-4 {
            ratios.push(sim[i + 1] / sim[i]);
        }
    }
    if !ratios.is_empty() {
        let mean: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        println!("  sim simple: measured ratio ≈ {mean:.4}");
    }
    println!("\nshape check: stealing tails decay strictly faster than λ^i, at the");
    println!("predicted 'apparent service rate' ratio.");
}
