//! Figure: repeated steal attempts, rate sweep (Section 2.5).
//!
//! Mean time in system and π_T as the retry rate r grows. Expected
//! shape: W decreases monotonically in r; π_T → 0 as r → ∞ (a processor
//! holding T tasks is robbed almost immediately); the tail ratio matches
//! λ/(1 + r(1 − λ) + λ − π₂).

use loadsteal_bench::{print_header, print_row, Protocol};
use loadsteal_core::fixed_point::{solve, FixedPointOptions};
use loadsteal_core::models::{RepeatedSteal, ThresholdWs};
use loadsteal_core::tail::TailVector;
use loadsteal_sim::{SimConfig, StealPolicy};

fn main() {
    let protocol = Protocol::from_env();
    let opts = FixedPointOptions::default();
    for (lambda, threshold) in [(0.9, 2usize), (0.9, 3)] {
        let single = ThresholdWs::new(lambda, threshold)
            .unwrap()
            .closed_form_mean_time();
        print_header(
            &format!("Figure: retry-rate sweep, λ = {lambda}, T = {threshold} (single-attempt W = {single:.3})"),
            &protocol,
            &["r", "Estimate W", "π_T", "tail ratio", "predicted"],
        );
        for r in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0] {
            let m = RepeatedSteal::new(lambda, r, threshold).expect("valid");
            let fp = solve(&m, &opts).expect("fp");
            let tails = TailVector::from_slice(&fp.task_tails[1..]);
            print_row(&[
                r,
                fp.mean_time_in_system,
                fp.task_tails[threshold],
                fp.tail_ratio().unwrap_or(f64::NAN),
                m.asymptotic_tail_ratio(&tails),
            ]);
        }
    }

    // Simulation spot checks.
    let lambda = 0.9;
    println!("\nsimulation spot check (n = 128, λ = {lambda}, T = 2):");
    for r in [1.0, 4.0] {
        let mut cfg = SimConfig::paper_default(128, lambda);
        cfg.policy = StealPolicy::Repeated {
            rate: r,
            threshold: 2,
        };
        let sim = protocol.mean_sojourn(cfg, 7000 + r as u64);
        let m = RepeatedSteal::new(lambda, r, 2).unwrap();
        let est = solve(&m, &opts).unwrap().mean_time_in_system;
        println!("  r = {r}: sim {sim:.3} vs estimate {est:.3}");
    }
    println!("\nshape check: W ↓ in r, π_T → 0 as r → ∞ (Section 2.5's limit).");
}
