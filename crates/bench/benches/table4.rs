//! Table 4 — one victim choice vs. two (T = 2, n = 128).
//!
//! Expected shape: two choices help, especially at high λ (4.6 → ~2.7×
//! at λ = 0.99 in the paper), but one choice already captures most of
//! the gain; the 2-choice estimate tracks the simulation except at the
//! highest arrival rates.

use loadsteal_bench::{print_header, print_row, Protocol};
use loadsteal_core::fixed_point::{solve, FixedPointOptions};
use loadsteal_core::models::MultiChoice;
use loadsteal_sim::{SimConfig, StealPolicy};

fn main() {
    let protocol = Protocol::from_env();
    let opts = FixedPointOptions::default();
    print_header(
        "Table 4: one choice vs two victim choices (T = 2, n = 128)",
        &protocol,
        &["λ", "Sim d=1", "Sim d=2", "Est d=2", "Est d=1"],
    );
    for (row, &lambda) in [0.50, 0.70, 0.80, 0.90, 0.95, 0.99].iter().enumerate() {
        let mut cells = vec![lambda];
        for (col, d) in [1usize, 2].into_iter().enumerate() {
            let mut cfg = SimConfig::paper_default(128, lambda);
            cfg.policy = StealPolicy::OnEmpty {
                threshold: 2,
                choices: d,
                batch: 1,
            };
            let seed = 4000 + (row * 10 + col) as u64;
            cells.push(protocol.mean_sojourn(cfg, seed));
        }
        for d in [2u32, 1] {
            let m = MultiChoice::new(lambda, d, 2).expect("valid");
            cells.push(solve(&m, &opts).expect("fixed point").mean_time_in_system);
        }
        print_row(&cells);
    }
    println!("\npaper (Sim d=1 | Sim d=2 | Est d=2):");
    println!("  λ=0.50: 1.620 | 1.436 | 1.433     λ=0.90: 3.586 | 2.260 | 2.220");
    println!("  λ=0.70: 2.114 | 1.680 | 1.673     λ=0.95: 5.000 | 2.742 | 2.640");
    println!("  λ=0.80: 2.576 | 1.879 | 1.864     λ=0.99: 11.306 | 4.597 | 4.011");
}
