//! Table 3 — transfer times (r = 0.25): threshold sweep T = 3..6.
//!
//! Simulations at n = 128 with exponential transfer delays of mean 4,
//! against the fixed points of the two-class (s, w) differential
//! equations. Expected shape: the best threshold is T = 4 ≈ 1/r at low
//! arrival rates and drifts larger at high arrival rates.

use loadsteal_bench::{print_header, print_row, Protocol};
use loadsteal_core::fixed_point::{solve, FixedPointOptions};
use loadsteal_core::models::TransferWs;
use loadsteal_sim::{SimConfig, StealPolicy, TransferTime};

fn main() {
    let rate = 0.25;
    let protocol = Protocol::from_env();
    let opts = FixedPointOptions::default();
    print_header(
        "Table 3: transfer times, r = 0.25 (n = 128 sims vs estimates)",
        &protocol,
        &[
            "λ", "T=3 Sim", "T=3 Est", "T=4 Sim", "T=4 Est", "T=5 Sim", "T=5 Est", "T=6 Sim",
            "T=6 Est",
        ],
    );
    for (row, &lambda) in [0.50, 0.70, 0.80, 0.90, 0.95].iter().enumerate() {
        let mut cells = vec![lambda];
        let mut best = (0usize, f64::INFINITY);
        for (col, t) in (3usize..=6).enumerate() {
            let mut cfg = SimConfig::paper_default(128, lambda);
            cfg.policy = StealPolicy::OnEmpty {
                threshold: t,
                choices: 1,
                batch: 1,
            };
            cfg.transfer = Some(TransferTime::exponential(rate));
            let seed = 3000 + (row * 10 + col) as u64;
            cells.push(protocol.mean_sojourn(cfg, seed));
            let m = TransferWs::new(lambda, rate, t).expect("valid");
            let est = solve(&m, &opts).expect("fixed point").mean_time_in_system;
            if est < best.1 {
                best = (t, est);
            }
            cells.push(est);
        }
        print_row(&cells);
        println!("           best threshold by estimate: T = {}", best.0);
    }
    println!("\npaper (Sim(128) | Est at λ=0.90): T=3 7.099|7.076  T=4 7.056|7.015  T=5 7.025|7.001  T=6 7.045|7.026");
    println!("paper's best T: 4 for λ ≤ 0.9, larger (6) at λ = 0.95.");
}
