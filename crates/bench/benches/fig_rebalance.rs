//! Figure: pairwise rebalancing (Section 3.4, second part — the
//! Rudolph–Slivkin-Allalouf–Upfal variant).
//!
//! Mean time in system under pairwise load equalization at rate r(i),
//! constant and load-proportional, vs the no-steal and simple-WS
//! references. Expected shape: rebalancing beats no stealing, improves
//! with rate, and load-proportional rates spend effort where the load
//! is.

use loadsteal_bench::{print_header, print_row, Protocol};
use loadsteal_core::fixed_point::{solve, FixedPointOptions};
use loadsteal_core::models::{NoSteal, Rebalance, RebalanceRateFn, SimpleWs};
use loadsteal_sim::{RebalanceRate, SimConfig, StealPolicy};

fn main() {
    let protocol = Protocol::from_env();
    let opts = FixedPointOptions::default();
    let lambda = 0.9;
    let none = NoSteal::new(lambda).unwrap().closed_form_mean_time();
    let simple = SimpleWs::new(lambda).unwrap().closed_form_mean_time();
    println!("\nreferences at λ = {lambda}: no stealing {none:.3}, simple WS {simple:.3}");

    print_header(
        &format!("Figure: rebalancing rate sweep, λ = {lambda} (constant r(i) = r)"),
        &protocol,
        &["r", "Estimate W", "Sim(128) W"],
    );
    for r in [0.1, 0.25, 0.5, 1.0, 2.0] {
        let m = Rebalance::new(lambda, RebalanceRateFn::Constant(r)).expect("valid");
        let est = solve(&m, &opts).expect("fp").mean_time_in_system;
        let mut cfg = SimConfig::paper_default(128, lambda);
        cfg.policy = StealPolicy::Rebalance {
            rate: RebalanceRate::Constant(r),
        };
        let sim = protocol.mean_sojourn(cfg, 9000 + (r * 100.0) as u64);
        print_row(&[r, est, sim]);
    }

    print_header(
        &format!("Figure: load-proportional rebalancing, λ = {lambda} (r(i) = a·i)"),
        &protocol,
        &["a", "Estimate W", "Sim(128) W"],
    );
    for a in [0.05, 0.1, 0.25, 0.5] {
        let m = Rebalance::new(lambda, RebalanceRateFn::PerTask(a)).expect("valid");
        let est = solve(&m, &opts).expect("fp").mean_time_in_system;
        let mut cfg = SimConfig::paper_default(128, lambda);
        cfg.policy = StealPolicy::Rebalance {
            rate: RebalanceRate::PerTask(a),
        };
        let sim = protocol.mean_sojourn(cfg, 9500 + (a * 100.0) as u64);
        print_row(&[a, est, sim]);
    }
    println!("\nshape check: W ↓ in the rebalance rate; estimates track simulation.");
}
