//! Figure: multi-task steals (Section 3.4, first part).
//!
//! With a high threshold T, taking k > 1 tasks per steal equalizes the
//! load better (transfers are instantaneous in this model). Expected
//! shape: W decreases in k up to k = T/2, with the gain largest at high
//! arrival rates; the simulation agrees.

use loadsteal_bench::{print_header, print_row, Protocol};
use loadsteal_core::fixed_point::{solve, FixedPointOptions};
use loadsteal_core::models::MultiSteal;
use loadsteal_sim::{SimConfig, StealPolicy};

fn main() {
    let protocol = Protocol::from_env();
    let opts = FixedPointOptions::default();
    for (lambda, threshold) in [(0.8, 6usize), (0.95, 6), (0.95, 8)] {
        print_header(
            &format!("Figure: multi-steal sweep, λ = {lambda}, T = {threshold}"),
            &protocol,
            &["k", "Estimate W", "Sim(128) W"],
        );
        for k in 1..=threshold / 2 {
            let m = MultiSteal::new(lambda, k, threshold).expect("valid");
            let est = solve(&m, &opts).expect("fp").mean_time_in_system;
            let mut cfg = SimConfig::paper_default(128, lambda);
            cfg.policy = StealPolicy::OnEmpty {
                threshold,
                choices: 1,
                batch: k,
            };
            let sim = protocol.mean_sojourn(cfg, 8000 + (threshold * 10 + k) as u64);
            print_row(&[k as f64, est, sim]);
        }
    }
    println!("\nshape check: W decreases in k (equalizing loads helps when transfers are free).");
}
