//! Figure: stability of the fixed point (Section 4, Theorems 1–2).
//!
//! For each arrival rate, launches trajectories from three very
//! different starting states and reports the L₁ distance profile: the
//! maximum observed increase (0 ⟺ monotone contraction, the paper's
//! strong stability notion) and the time to reach a 1e−6 neighbourhood.
//! Expected shape: monotone contraction everywhere, provable only for
//! λ < (1+√5)/4 ≈ 0.809 (π₂ < 1/2).

use loadsteal_bench::Protocol;
use loadsteal_core::fixed_point::{solve, FixedPointOptions};
use loadsteal_core::models::{MeanFieldModel, SimpleWs, ThresholdWs};
use loadsteal_core::stability::{
    check_l1_contraction, simple_ws_stability_threshold, theorem_condition_holds,
};
use loadsteal_core::tail::TailVector;

fn main() {
    let _ = Protocol::from_env(); // no sims here; keep the env interface uniform
    println!("\n=== Figure: L₁ stability of the simple/threshold WS fixed points ===");
    println!(
        "Theorem 1 regime: λ < λ* = {:.6} (π₂ < 1/2)\n",
        simple_ws_stability_threshold()
    );
    println!(
        "{:>10} {:>6} {:>10} {:>16} {:>12} {:>14} {:>12} {:>10}",
        "model", "λ", "π₂<1/2?", "start", "initial D", "max increase", "t(D<1e-6)", "decay γ"
    );
    let opts = FixedPointOptions::default();
    for lambda in [0.5, 0.7, 0.809, 0.9, 0.95, 0.99] {
        // Simple WS.
        let m = SimpleWs::new(lambda).unwrap();
        let fp = solve(&m, &opts).unwrap();
        for (name, start) in starts(&m) {
            let rep = check_l1_contraction(&m, &start, &fp.state, 1e-6, 100_000.0).unwrap();
            print_line(
                "simple",
                lambda,
                theorem_condition_holds(lambda),
                name,
                &rep,
            );
        }
        // Threshold T = 4 (Theorem 2).
        let m = ThresholdWs::new(lambda, 4).unwrap();
        let fp = solve(&m, &opts).unwrap();
        for (name, start) in starts(&m) {
            let rep = check_l1_contraction(&m, &start, &fp.state, 1e-6, 100_000.0).unwrap();
            print_line("T=4", lambda, theorem_condition_holds(lambda), name, &rep);
        }
    }
    println!("\nshape check: max increase ≈ 0 (within integrator noise) for every row;");
    println!("the paper proves it only for π₂ < 1/2 and leaves the rest open.");
}

fn starts<M: MeanFieldModel>(m: &M) -> Vec<(&'static str, Vec<f64>)> {
    let l = m.truncation();
    vec![
        ("empty", m.empty_state()),
        ("uniform 4", TailVector::uniform_load(4, l).into_vec()),
        ("geometric .97", TailVector::geometric(0.97, l).into_vec()),
    ]
}

fn print_line(
    model: &str,
    lambda: f64,
    cond: bool,
    start: &str,
    rep: &loadsteal_core::stability::ContractionReport,
) {
    println!(
        "{model:>10} {lambda:>6.3} {:>10} {start:>16} {:>12.4} {:>14.2e} {:>12} {:>10}",
        if cond { "yes" } else { "no" },
        rep.initial_distance,
        rep.max_increase,
        rep.converged_at
            .map(|t| format!("{t:.1}"))
            .unwrap_or_else(|| "—".into()),
        rep.decay_rate()
            .map(|g| format!("{g:.4}"))
            .unwrap_or_else(|| "—".into()),
    );
}
