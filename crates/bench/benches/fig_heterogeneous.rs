//! Figure: heterogeneous processor speeds (Section 3.5).
//!
//! Two speed classes with fixed aggregate capacity 1.15·λ-ish; sweep the
//! speed asymmetry. Expected shape: stealing lets slow processors run
//! above their individual capacity (λ > μ_s); more asymmetry costs more
//! waiting; slow processors carry visibly heavier tails than fast ones.

use loadsteal_bench::{print_header, print_row, Protocol};
use loadsteal_core::fixed_point::{solve, FixedPointOptions};
use loadsteal_core::models::Heterogeneous;
use loadsteal_sim::{SimConfig, SpeedProfile, StealPolicy};

fn main() {
    let protocol = Protocol::from_env();
    let opts = FixedPointOptions::default();
    let lambda = 0.9;
    // Half fast, half slow; aggregate capacity fixed at 1.15.
    let pairs = [(1.15, 1.15), (1.3, 1.0), (1.5, 0.8), (1.7, 0.6)];
    print_header(
        &format!("Figure: two speed classes (α = 0.5, capacity 1.15, λ = {lambda})"),
        &protocol,
        &[
            "μ_fast",
            "μ_slow",
            "Est W",
            "Sim(128) W",
            "slow s₁",
            "fast s₁",
        ],
    );
    for (mf, ms) in pairs {
        let m = Heterogeneous::new(lambda, 0.5, mf, ms, 2).expect("valid");
        let fp = solve(&m, &opts).expect("fp");
        let (fast, slow) = m.class_tails(&fp.state);
        let mut cfg = SimConfig::paper_default(128, lambda);
        cfg.policy = StealPolicy::simple_ws();
        cfg.speeds = SpeedProfile::Classes(vec![(0.5, mf), (0.5, ms)]);
        let sim = protocol.mean_sojourn(cfg, 11_000 + (mf * 10.0) as u64);
        print_row(&[mf, ms, fp.mean_time_in_system, sim, slow[1], fast[1]]);
    }
    println!("\nshape check: slow processors stay busier (larger s₁) and W grows with");
    println!("asymmetry; λ = 0.9 > μ_slow is stable because stealing moves the surplus.");
}
