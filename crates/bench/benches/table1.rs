//! Table 1 — simulations vs. estimates for the simplest WS model.
//!
//! Columns: λ, Sim(16), Sim(32), Sim(64), Sim(128), the fixed-point
//! estimate, and the relative error between Sim(128) and the estimate —
//! exactly the paper's layout. Expected shape: predictions within a
//! fraction of a percent at λ ≤ 0.8, degrading to several percent at
//! λ = 0.99, and improving with n.

use loadsteal_bench::{print_header, print_row, Protocol};
use loadsteal_core::models::SimpleWs;
use loadsteal_sim::SimConfig;

fn main() {
    let protocol = Protocol::from_env();
    print_header(
        "Table 1: simple work stealing (steal one task on empty, victim ≥ 2)",
        &protocol,
        &[
            "λ",
            "Sim(16)",
            "Sim(32)",
            "Sim(64)",
            "Sim(128)",
            "Estimate",
            "RelErr(%)",
        ],
    );
    for (row, &lambda) in [0.50, 0.70, 0.80, 0.90, 0.95, 0.99].iter().enumerate() {
        let estimate = SimpleWs::new(lambda)
            .expect("valid λ")
            .closed_form_mean_time();
        let mut cells = vec![lambda];
        let mut sim128 = f64::NAN;
        for (col, n) in [16usize, 32, 64, 128].into_iter().enumerate() {
            let cfg = SimConfig::paper_default(n, lambda);
            let seed = 1000 + (row * 10 + col) as u64;
            let mean = protocol.mean_sojourn(cfg, seed);
            if n == 128 {
                sim128 = mean;
            }
            cells.push(mean);
        }
        cells.push(estimate);
        cells.push(100.0 * (sim128 - estimate).abs() / sim128);
        print_row(&cells);
    }
    println!("\npaper (Sim(128) | Estimate | RelErr%):");
    println!("  λ=0.50: 1.620 | 1.618 | 0.15      λ=0.90: 3.586 | 3.541  | 1.24");
    println!("  λ=0.70: 2.114 | 2.107 | 0.30      λ=0.95: 5.000 | 4.887  | 2.25");
    println!("  λ=0.80: 2.576 | 2.562 | 0.56      λ=0.99: 11.306 | 10.462 | 7.46");
}
