//! Ad-hoc perf probe: times the bench-gate simulator config directly so
//! engine optimizations can be iterated without the criterion harness.
use loadsteal_sim::{EngineKind, SimConfig};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    if std::env::args().any(|a| a == "micro") {
        micro();
        return;
    }
    if std::env::args().any(|a| a == "queue") {
        queue_churn();
        return;
    }
    let engine = match args.next().as_deref() {
        Some("heap") => EngineKind::Heap,
        _ => EngineKind::Calendar,
    };
    let mm1 = std::env::args().any(|a| a == "mm1");
    let mut cfg = SimConfig::paper_default(if mm1 { 1 } else { 128 }, 0.9);
    if mm1 {
        cfg.policy = loadsteal_sim::StealPolicy::None;
    }
    cfg.horizon = if mm1 { 64_000.0 } else { 500.0 };
    cfg.warmup = 50.0;
    cfg.engine = engine;
    // warm up
    let _ = loadsteal_sim::run(&cfg, 1);
    let mut best = f64::INFINITY;
    let mut events = 0u64;
    for rep in 0..6 {
        let t0 = Instant::now();
        let mut total = 0u64;
        for seed in 0..10u64 {
            let r = loadsteal_sim::run(&cfg, 1000 + rep * 100 + seed);
            total += r.events_processed;
        }
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt / 10.0);
        events = total / 10;
    }
    println!(
        "{engine:?}: {:.3} ms/run, {events} events, {:.1} ns/event",
        best * 1e3,
        best * 1e9 / events as f64
    );
}

#[allow(dead_code)]
fn micro() {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(7);
    let n = 50_000_000u64;
    let t0 = std::time::Instant::now();
    let mut acc = 0.0f64;
    for _ in 0..n {
        acc += loadsteal_queueing::dist::exp_sample(&mut rng, 0.9);
    }
    println!(
        "exp_sample: {:.2} ns/op (acc {acc:.1})",
        t0.elapsed().as_secs_f64() * 1e9 / n as f64
    );
}

#[allow(dead_code)]
fn queue_churn() {
    use loadsteal_sim::{CalendarQueue, Event, EventKind, EventQueue};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(7);
    // Steady-state shape of the bench config: ~250 pending events,
    // inter-event gap ~1/230 of the mean lookahead.
    let mut q = CalendarQueue::with_hint(256);
    let mut heap = std::collections::BinaryHeap::<Event>::with_hint(256);
    let mut seq = 0u64;
    for _ in 0..250 {
        let t = loadsteal_queueing::dist::exp_sample(&mut rng, 1.0);
        q.push(Event {
            time: t,
            seq,
            kind: EventKind::ExtArrival { proc: 0 },
        });
        heap.push(Event {
            time: t,
            seq,
            kind: EventKind::ExtArrival { proc: 0 },
        });
        seq += 1;
    }
    let n = 20_000_000u64;
    let t0 = std::time::Instant::now();
    let mut acc = 0.0;
    for _ in 0..n {
        let e = q.pop().unwrap();
        acc += e.time;
        let dt = loadsteal_queueing::dist::exp_sample(&mut rng, 1.0);
        q.push(Event {
            time: e.time + dt,
            seq,
            kind: e.kind,
        });
        seq += 1;
    }
    println!(
        "calendar pop+push: {:.2} ns/op (acc {acc:.0})",
        t0.elapsed().as_secs_f64() * 1e9 / n as f64
    );
    let t0 = std::time::Instant::now();
    let mut acc2 = 0.0;
    for _ in 0..n {
        let e = heap.pop().unwrap();
        acc2 += e.time;
        let dt = loadsteal_queueing::dist::exp_sample(&mut rng, 1.0);
        heap.push(Event {
            time: e.time + dt,
            seq,
            kind: e.kind,
        });
        seq += 1;
    }
    println!(
        "heap pop+push:     {:.2} ns/op (acc {acc2:.0})",
        t0.elapsed().as_secs_f64() * 1e9 / n as f64
    );
}
