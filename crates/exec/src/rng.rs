//! Small self-contained RNG for victim selection and the steal-bench
//! arrival/service streams. (The workspace `rand` shim lives above
//! `obs` in the dependency graph; the executor keeps to `std` only.)

/// SplitMix64: the standard seeding/stream-splitting mixer.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// xoshiro256**-class generator (here: SplitMix64-seeded xorshift64*),
/// good enough for victim picking and exponential sampling; not for
/// cryptography.
#[derive(Debug, Clone)]
pub struct Rng {
    s: u64,
}

impl Rng {
    /// Seed deterministically from `seed` (any value, including 0).
    pub fn new(seed: u64) -> Self {
        let mut st = seed;
        // One mixing round so consecutive seeds give unrelated streams.
        let s = splitmix64(&mut st) | 1;
        Rng { s }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64* (Vigna): passes BigCrush on the high bits.
        let mut x = self.s;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.s = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        // Multiply-shift reduction; bias is < 2^-32 for the small n
        // (worker counts) used here.
        (((self.next_u64() >> 32) * n as u64) >> 32) as usize
    }

    /// Exponential with mean `1/rate`.
    #[inline]
    pub fn exp(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        // f64() < 1.0, so 1 - f64() > 0 and ln() is finite.
        -(1.0 - self.f64()).ln() / rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        let mut c = Rng::new(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_covers_range_roughly_uniformly() {
        let mut r = Rng::new(1);
        let n = 8;
        let mut counts = vec![0usize; n];
        let draws = 80_000;
        for _ in 0..draws {
            counts[r.below(n)] += 1;
        }
        let expect = draws / n;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect as f64).abs() < 0.1 * expect as f64,
                "bucket {i}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn exp_mean_close() {
        let mut r = Rng::new(9);
        let rate = 2.0;
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.exp(rate)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
