//! Drive the pool with the paper's workload and record what really
//! happens.
//!
//! Each worker plays the role of one processor in the load-stealing
//! model: an open-loop driver submits a Poisson(λ) stream of tasks to
//! each worker's inbox, every task "serves" for an Exp(1) duration
//! (scaled by `tau` seconds per model time unit), and idle workers
//! probe one random victim per transition-to-empty
//! ([`StealMode::OnEmptyOnce`]). With a tracer attached the pool
//! emits `loadsteal.trace.v1` arrival/completion/steal events with
//! measured wall-clock timestamps mapped back to model time, so the
//! exact pipeline that analyzes simulator traces — `loadsteal report`,
//! the transient comparator, the verify harness — consumes *measured
//! executor* behavior unchanged.
//!
//! Timing discipline (the part that makes λ and μ land where they
//! were asked to):
//!
//! * the arrival schedule is pre-generated and driven by **absolute**
//!   deadlines from the pool epoch, so scheduling jitter never
//!   accumulates into rate drift;
//! * "service" is `thread::sleep`, which keeps a worker's task slot
//!   occupied without burning the CPU other workers need — the
//!   executor stays honest even when workers outnumber cores;
//! * `thread::sleep` only ever oversleeps, so a startup calibration
//!   measures the typical overshoot, sleeps short by that much, and
//!   spins the residual microseconds to the deadline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use loadsteal_obs::{Recorder, ShardSink};

use crate::pool::{Pool, PoolBuilder, PoolStats, StealMode};
use crate::rng::{splitmix64, Rng};

/// Workload parameters for one measured run.
#[derive(Debug, Clone)]
pub struct StealBenchConfig {
    /// Number of pool workers (model processors).
    pub workers: usize,
    /// Per-worker arrival rate in tasks per model time unit (the
    /// paper's λ; service rate is fixed at μ = 1).
    pub lambda: f64,
    /// How long to drive arrivals, in model time units.
    pub horizon: f64,
    /// Seconds of wall clock per model time unit. The default of 4 ms
    /// keeps scheduler jitter (tens of µs) below 2% of a mean service
    /// time while a 400-unit run still fits in ~1.6 s.
    pub tau: f64,
    /// Seed for the arrival/service streams and victim selection.
    pub seed: u64,
}

impl Default for StealBenchConfig {
    fn default() -> Self {
        StealBenchConfig {
            workers: 16,
            lambda: 0.9,
            horizon: 400.0,
            tau: 0.004,
            seed: 0x5eed,
        }
    }
}

impl StealBenchConfig {
    /// Validate ranges (λ ∈ (0,1) for a stable system, sane τ, …).
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("need at least one worker".into());
        }
        // NaN fails every range test below (is_finite guards), so a
        // poisoned config cannot slip through as "in range".
        if !self.lambda.is_finite() || self.lambda <= 0.0 || self.lambda >= 1.0 {
            return Err(format!(
                "lambda must be in (0, 1) for a stable system, got {}",
                self.lambda
            ));
        }
        if !self.horizon.is_finite() || self.horizon <= 0.0 {
            return Err("horizon must be positive".into());
        }
        if !self.tau.is_finite() || self.tau < 0.0005 {
            return Err(format!(
                "tau must be at least 0.5 ms (OS timer resolution), got {} s",
                self.tau
            ));
        }
        Ok(())
    }

    /// Expected number of task arrivals over the horizon.
    pub fn expected_arrivals(&self) -> f64 {
        self.workers as f64 * self.lambda * self.horizon
    }
}

/// What a measured run produced (the trace itself goes to the
/// recorder).
#[derive(Debug, Clone, Copy)]
pub struct StealBenchOutcome {
    /// Pool counters at shutdown.
    pub stats: PoolStats,
    /// Tasks actually submitted by the driver.
    pub submitted: u64,
    /// Tasks completed before the horizon cut execution off.
    pub completed: u64,
    /// Wall-clock duration of the driven phase, seconds.
    pub wall_secs: f64,
    /// Calibrated `thread::sleep` overshoot, seconds.
    pub sleep_overshoot: f64,
}

impl StealBenchOutcome {
    /// Fraction of steal probes that brought back a task.
    pub fn steal_success_rate(&self) -> f64 {
        if self.stats.steal_attempts == 0 {
            0.0
        } else {
            self.stats.steal_successes as f64 / self.stats.steal_attempts as f64
        }
    }
}

/// One scheduled arrival.
struct Arrival {
    /// Model time of submission.
    t: f64,
    /// Destination worker.
    worker: usize,
    /// Exp(1) service requirement, model time units.
    service: f64,
}

/// Measure how far `thread::sleep` typically overshoots, so service
/// sleeps can compensate. Returns a high quantile (sleeping *short* by
/// this much and spinning the residue hits deadlines within a few µs).
fn calibrate_sleep_overshoot() -> f64 {
    let probe = Duration::from_micros(500);
    let mut overshoots: Vec<f64> = (0..24)
        .map(|_| {
            let start = Instant::now();
            std::thread::sleep(probe);
            (start.elapsed() - probe).as_secs_f64()
        })
        .collect();
    overshoots.sort_by(f64::total_cmp);
    // p90, clamped to something sane in case the host is pathological.
    overshoots[21].clamp(0.0, 0.002)
}

/// Sleep until `deadline` with overshoot compensation plus a short
/// spin for the residue.
fn sleep_until(deadline: Instant, overshoot: f64) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = (deadline - now).as_secs_f64();
        if remaining > overshoot {
            std::thread::sleep(Duration::from_secs_f64(remaining - overshoot));
        } else {
            // Residue: spin out the final microseconds.
            while Instant::now() < deadline {
                std::hint::spin_loop();
            }
            return;
        }
    }
}

/// Pre-generate the merged arrival schedule: one Poisson(λ) stream per
/// worker, each with i.i.d. Exp(1) service draws, merged in time
/// order. Deterministic per seed.
fn schedule(cfg: &StealBenchConfig) -> Vec<Arrival> {
    let mut all = Vec::with_capacity(cfg.expected_arrivals() as usize + 64);
    for w in 0..cfg.workers {
        let mut st = cfg.seed ^ (w as u64).wrapping_mul(0xA076_1D64_78BD_642F);
        let mut rng = Rng::new(splitmix64(&mut st));
        let mut t = rng.exp(cfg.lambda);
        while t < cfg.horizon {
            all.push(Arrival {
                t,
                worker: w,
                service: rng.exp(1.0),
            });
            t += rng.exp(cfg.lambda);
        }
    }
    all.sort_by(|a, b| a.t.total_cmp(&b.t));
    all
}

/// A measured steal-bench with its pool already built: construct,
/// [`drive`](StealBench::drive) the Poisson schedule, then
/// [`finish`](StealBench::finish) to join the workers and collect the
/// outcome. Between construction and finish, any thread may poll
/// [`pool`](StealBench::pool)`().worker_stats()` — the live view the
/// `loadsteal top` dashboard renders while the workload runs.
pub struct StealBench {
    cfg: StealBenchConfig,
    plan: Vec<Arrival>,
    overshoot: f64,
    pool: Pool,
    submitted: AtomicU64,
    wall_secs: Mutex<f64>,
}

impl StealBench {
    /// Build the bench around a classic locked recorder (every trace
    /// event takes the sink lock; see [`PoolBuilder::tracer`]).
    pub fn new(
        cfg: &StealBenchConfig,
        recorder: Arc<Mutex<dyn Recorder + Send>>,
    ) -> Result<Self, String> {
        Self::build(cfg, |b| b.tracer(recorder, cfg.tau))
    }

    /// Build the bench around a sharded sink: workers trace into their
    /// own shards, the driver into shard `workers` — no global sink
    /// lock on the hot path. `sink` needs at least `workers + 1`
    /// shards (see [`PoolBuilder::sharded_tracer`]).
    pub fn new_sharded(cfg: &StealBenchConfig, sink: Arc<dyn ShardSink>) -> Result<Self, String> {
        Self::build(cfg, |b| b.sharded_tracer(sink, cfg.tau))
    }

    /// Build the bench without any tracer: the pool emits nothing, so
    /// the workload runs at full speed while observers still poll
    /// [`pool`](Self::pool)`().worker_stats()` (the `loadsteal top`
    /// in-process mode, and the overhead baseline).
    pub fn new_untraced(cfg: &StealBenchConfig) -> Result<Self, String> {
        Self::build(cfg, |b| b)
    }

    fn build(
        cfg: &StealBenchConfig,
        attach: impl FnOnce(PoolBuilder) -> PoolBuilder,
    ) -> Result<Self, String> {
        cfg.validate()?;
        let plan = schedule(cfg);
        let overshoot = calibrate_sleep_overshoot();
        let builder = Pool::builder()
            .num_threads(cfg.workers)
            .steal_mode(StealMode::OnEmptyOnce)
            .seed(cfg.seed ^ 0xD1FF_57EA);
        let pool = attach(builder).build();
        Ok(StealBench {
            cfg: cfg.clone(),
            plan,
            overshoot,
            pool,
            submitted: AtomicU64::new(0),
            wall_secs: Mutex::new(0.0),
        })
    }

    /// The pool under measurement (poll `worker_stats()` from here).
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// The workload parameters this bench was built with.
    pub fn config(&self) -> &StealBenchConfig {
        &self.cfg
    }

    /// Arrivals submitted so far (grows while [`drive`](Self::drive)
    /// runs — the dashboard's λ-estimate numerator).
    pub fn submitted_so_far(&self) -> u64 {
        self.submitted.load(Ordering::SeqCst)
    }

    /// Play the pre-generated schedule against the pool: submit each
    /// arrival at its absolute deadline, then sleep out the horizon.
    /// Call exactly once, from any one thread.
    pub fn drive(&self) {
        let epoch = self.pool.epoch();
        for a in &self.plan {
            sleep_until(
                epoch + Duration::from_secs_f64(a.t * self.cfg.tau),
                self.overshoot,
            );
            let service_wall = Duration::from_secs_f64(a.service * self.cfg.tau);
            let overshoot = self.overshoot;
            self.pool.submit_to(a.worker, move || {
                let deadline = Instant::now() + service_wall;
                sleep_until(deadline, overshoot);
            });
            self.submitted.fetch_add(1, Ordering::SeqCst);
        }
        sleep_until(
            epoch + Duration::from_secs_f64(self.cfg.horizon * self.cfg.tau),
            self.overshoot,
        );
        *self.wall_secs.lock().unwrap() = epoch.elapsed().as_secs_f64();
    }

    /// Join the workers (in-flight tasks finish and are traced;
    /// undelivered backlog is discarded) and collect the outcome.
    pub fn finish(self) -> StealBenchOutcome {
        self.finish_detailed().0
    }

    /// [`finish`](Self::finish), also returning the final per-worker
    /// stats (read after the workers joined, so the counters are
    /// settled — the `exec.worker.<i>.*` metric source).
    pub fn finish_detailed(self) -> (StealBenchOutcome, Vec<crate::pool::WorkerStats>) {
        let submitted = self.submitted.load(Ordering::SeqCst);
        let wall_secs = *self.wall_secs.lock().unwrap();
        let overshoot = self.overshoot;
        let (stats, per_worker) = self.pool.shutdown_detailed();
        (
            StealBenchOutcome {
                stats,
                submitted,
                completed: stats.executed,
                wall_secs,
                sleep_overshoot: overshoot,
            },
            per_worker,
        )
    }
}

/// Run one measured steal-bench: build an [`StealMode::OnEmptyOnce`]
/// pool tracing into `recorder`, drive the Poisson schedule against
/// it, and return the counters. The recorder receives the full event
/// stream (monotone in model time `t`).
pub fn run_once(
    cfg: &StealBenchConfig,
    recorder: Arc<Mutex<dyn Recorder + Send>>,
) -> Result<StealBenchOutcome, String> {
    let bench = StealBench::new(cfg, recorder)?;
    bench.drive();
    Ok(bench.finish())
}

/// [`run_once`] over the sharded trace path: no global sink lock per
/// event; the sink's drain recovers the globally `t`-ordered stream.
pub fn run_once_sharded(
    cfg: &StealBenchConfig,
    sink: Arc<dyn ShardSink>,
) -> Result<StealBenchOutcome, String> {
    let bench = StealBench::new_sharded(cfg, sink)?;
    bench.drive();
    Ok(bench.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use loadsteal_obs::{CollectingRecorder, Event, SimEventKind};

    fn tiny() -> StealBenchConfig {
        StealBenchConfig {
            workers: 4,
            lambda: 0.7,
            horizon: 40.0,
            tau: 0.002,
            seed: 11,
        }
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = tiny();
        c.lambda = 1.2;
        assert!(c.validate().is_err());
        let mut c = tiny();
        c.workers = 0;
        assert!(c.validate().is_err());
        let mut c = tiny();
        c.tau = 1e-5;
        assert!(c.validate().is_err());
        assert!(StealBenchConfig::default().validate().is_ok());
    }

    #[test]
    fn schedule_is_deterministic_and_roughly_poisson() {
        let cfg = tiny();
        let a = schedule(&cfg);
        let b = schedule(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.t, y.t);
            assert_eq!(x.worker, y.worker);
            assert_eq!(x.service, y.service);
        }
        // Count within 5 sigma of the Poisson mean.
        let mean = cfg.expected_arrivals();
        assert!(
            (a.len() as f64 - mean).abs() < 5.0 * mean.sqrt() + 5.0,
            "got {} arrivals, expected ≈{mean}",
            a.len()
        );
        // Sorted by time, workers covered.
        assert!(a.windows(2).all(|w| w[0].t <= w[1].t));
    }

    /// End-to-end smoke: a short run produces a monotone trace whose
    /// arrival/completion/steal events are consistent with the pool
    /// counters. (~80 ms of wall clock.)
    #[test]
    fn run_once_produces_a_consistent_trace() {
        let sink: Arc<Mutex<CollectingRecorder>> = Arc::new(Mutex::new(CollectingRecorder::new()));
        let out = run_once(
            &tiny(),
            Arc::clone(&sink) as Arc<Mutex<dyn Recorder + Send>>,
        )
        .expect("bench runs");
        let events = sink.lock().unwrap().events().to_vec();
        assert!(!events.is_empty(), "trace must not be empty");
        let mut arrivals = 0u64;
        let mut completions = 0u64;
        let mut attempts = 0u64;
        let mut successes = 0u64;
        let mut migrations = 0u64;
        let mut last_t = f64::NEG_INFINITY;
        for e in &events {
            if let Event::Sim { kind, t, .. } = e {
                assert!(*t >= last_t, "trace must be monotone in t");
                last_t = *t;
                match kind {
                    SimEventKind::Arrival => arrivals += 1,
                    SimEventKind::Completion => completions += 1,
                    SimEventKind::StealAttempt => attempts += 1,
                    SimEventKind::StealSuccess => successes += 1,
                    SimEventKind::Migration => migrations += 1,
                }
            }
        }
        assert_eq!(arrivals, out.submitted);
        assert_eq!(completions, out.completed);
        assert_eq!(attempts, out.stats.steal_attempts);
        assert_eq!(successes, out.stats.steal_successes);
        assert_eq!(migrations, successes, "every success migrates one task");
        assert!(completions <= arrivals, "cannot complete more than arrived");
        // At λ=0.7 over 40 time units the system is busy enough that
        // the vast majority of arrivals complete within the horizon.
        assert!(completions as f64 >= 0.8 * arrivals as f64);
    }

    /// The sharded path must emit the same *kind* of trace the locked
    /// path does: after the merge-on-drain, globally monotone in `t`
    /// and count-consistent with the pool's own counters.
    #[test]
    fn run_once_sharded_produces_a_consistent_merged_trace() {
        use loadsteal_obs::{ShardSink, ShardedRecorder};
        let cfg = tiny();
        let sharded = Arc::new(ShardedRecorder::with_shards(
            CollectingRecorder::new(),
            cfg.workers + 1,
        ));
        let out = run_once_sharded(&cfg, Arc::clone(&sharded) as Arc<dyn ShardSink>)
            .expect("sharded bench runs");
        let rec = Arc::try_unwrap(sharded)
            .unwrap_or_else(|_| panic!("pool must release its sink on shutdown"))
            .finish();
        let events = rec.events().to_vec();
        assert!(!events.is_empty(), "merged trace must not be empty");
        let mut arrivals = 0u64;
        let mut completions = 0u64;
        let mut attempts = 0u64;
        let mut last_t = f64::NEG_INFINITY;
        for e in &events {
            if let Event::Sim { kind, t, .. } = e {
                assert!(*t >= last_t, "merged trace must be monotone in t");
                last_t = *t;
                match kind {
                    SimEventKind::Arrival => arrivals += 1,
                    SimEventKind::Completion => completions += 1,
                    SimEventKind::StealAttempt => attempts += 1,
                    _ => {}
                }
            }
        }
        assert_eq!(arrivals, out.submitted);
        assert_eq!(completions, out.completed);
        assert_eq!(attempts, out.stats.steal_attempts);
    }
}
