//! `join` and `scope`: structured fork-join on the pool.
//!
//! Semantics follow rayon's: `join(a, b)` runs both closures,
//! potentially in parallel, and returns both results; `scope(f)` lets
//! `f` spawn borrowing tasks that are all guaranteed to finish before
//! `scope` returns. Panics propagate to the caller — after every
//! sibling in the same scope/batch has drained.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use crate::pool::{erase_task, global, help_until_done, push_task, Batch};

/// Run `a` and `b`, potentially in parallel on the global pool, and
/// return both results. The calling thread always executes `a` itself;
/// `b` is offered to the pool and reclaimed by helping if nobody took
/// it.
pub fn join<RA, RB>(a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    let pool = global();
    let batch = Arc::new(Batch::new(1));
    let slot: Arc<Mutex<Option<RB>>> = Arc::new(Mutex::new(None));
    let job = {
        let batch = Arc::clone(&batch);
        let slot = Arc::clone(&slot);
        let job: Box<dyn FnOnce() + Send> = Box::new(move || {
            match catch_unwind(AssertUnwindSafe(b)) {
                Ok(r) => *slot.lock().unwrap() = Some(r),
                Err(p) => batch.record_panic(p),
            }
            drop(slot);
            batch.job_done();
        });
        // Safety: `help_until_done` below blocks until the job has
        // executed.
        unsafe { erase_task(job) }
    };
    // Offer `b` to the pool *before* running `a`, so the two arms can
    // genuinely overlap; then reclaim it by helping.
    push_task(pool.shared(), job);
    let ra = catch_unwind(AssertUnwindSafe(a));
    // Whatever happened to `a`, `b` must finish before we return or
    // unwind — its borrows die with this frame.
    help_until_done(pool.shared(), &batch);
    match ra {
        Err(p) => resume_unwind(p),
        Ok(ra) => {
            batch.resume_if_panicked();
            let rb = slot.lock().unwrap().take();
            (ra, rb.expect("join arm completed without result or panic"))
        }
    }
}

/// A handle for spawning borrowing tasks; see [`scope`].
pub struct Scope<'scope> {
    batch: Arc<Batch>,
    /// Invariant over `'scope` (mirrors `std::thread::Scope`).
    _marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawn a task that may borrow from the enclosing scope. It is
    /// guaranteed to finish before [`scope`] returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.batch.add_jobs(1);
        let batch = Arc::clone(&self.batch);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let inner = Scope {
                batch: Arc::clone(&batch),
                _marker: std::marker::PhantomData,
            };
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(&inner))) {
                batch.record_panic(p);
            }
            drop(inner);
            batch.job_done();
        });
        // Safety: the `scope` frame waits on this batch before
        // returning, so `'scope` borrows outlive the task.
        let job = unsafe { erase_task(job) };
        push_task(global().shared(), job);
    }
}

/// Create a scope in which spawned tasks may borrow local data. All
/// spawned tasks complete before `scope` returns; the first panic from
/// `f` or any task resumes on the caller after the rest drain.
pub fn scope<'scope, R>(f: impl FnOnce(&Scope<'scope>) -> R) -> R {
    // The batch starts at 1: a guard slot held by this frame so the
    // latch cannot open while `f` is still spawning.
    let batch = Arc::new(Batch::new(1));
    let s = Scope {
        batch: Arc::clone(&batch),
        _marker: std::marker::PhantomData,
    };
    let r = catch_unwind(AssertUnwindSafe(|| f(&s)));
    // Release the guard slot, then help until every spawn has run.
    batch.job_done();
    help_until_done(global().shared(), &batch);
    match r {
        Err(p) => resume_unwind(p),
        Ok(r) => {
            batch.resume_if_panicked();
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "right");
        assert_eq!(a, 4);
        assert_eq!(b, "right");
    }

    #[test]
    fn join_can_borrow() {
        let data = [1u32, 2, 3, 4];
        let (s1, s2) = join(
            || data[..2].iter().sum::<u32>(),
            || data[2..].iter().sum::<u32>(),
        );
        assert_eq!(s1 + s2, 10);
    }

    #[test]
    fn join_propagates_a_panic() {
        let r = catch_unwind(AssertUnwindSafe(|| join(|| panic!("left"), || 1)));
        assert!(r.is_err());
    }

    #[test]
    fn join_propagates_b_panic() {
        let r = catch_unwind(AssertUnwindSafe(|| join(|| 1, || panic!("right"))));
        assert!(r.is_err());
    }

    #[test]
    fn scope_waits_for_all_spawns() {
        let hits = AtomicU32::new(0);
        scope(|s| {
            for _ in 0..32 {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn scope_supports_nested_spawns() {
        let hits = AtomicU32::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|s| {
                    hits.fetch_add(1, Ordering::SeqCst);
                    for _ in 0..3 {
                        s.spawn(|_| {
                            hits.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn scope_panic_drains_siblings_then_propagates() {
        let hits = AtomicU32::new(0);
        let r = catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                for i in 0..8 {
                    s.spawn(move |_| {
                        if i == 2 {
                            panic!("poisoned spawn");
                        }
                    });
                }
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }));
        assert!(r.is_err());
        assert_eq!(
            hits.load(Ordering::SeqCst),
            1,
            "scope body ran to completion"
        );
    }
}
