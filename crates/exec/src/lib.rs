//! A real work-stealing executor for the loadsteal workspace — the
//! paper's subject matter running as genuinely concurrent code.
//!
//! The crate has two personalities:
//!
//! 1. **A rayon-shaped thread pool.** Per-worker [Chase–Lev
//!    deques](deque), a global [injector](injector), randomized victim
//!    selection, parking idle workers, and panic isolation, surfaced
//!    through the same `prelude`/[`join`]/[`scope`] API the old
//!    sequential `compat/rayon` shim faked — so `sim::replicate`, the
//!    verify grids, and every other caller went parallel without a
//!    line of API churn. Results keep input order and per-seed bit
//!    determinism: parallelism changes *when* a replication runs,
//!    never *what* it computes.
//!
//! 2. **A measurable load-stealing system.** Built with
//!    [`PoolBuilder::tracer`], the pool emits `loadsteal.trace.v1`
//!    arrival/completion/steal-attempt/steal-success/migration events
//!    with wall-clock timestamps mapped to model time, and
//!    [`stealbench`] drives it with the paper's per-processor
//!    Poisson(λ)/Exp(1) workload under the one-probe-per-idle-
//!    transition policy ([`StealMode::OnEmptyOnce`]). The measured
//!    trace flows through the exact pipeline that consumes simulator
//!    traces — `loadsteal report`, the transient comparator, and the
//!    verify harness's executor layer, which checks measured steal
//!    success rates and tail occupancies against the mean-field fixed
//!    point.
//!
//! Concurrency primitives are `std`-only (no external dependencies);
//! `unsafe` is confined to the deque's published algorithm and one
//! audited lifetime-erasure helper. See `docs/executor.md` for the
//! memory-ordering argument and the measured-vs-theory methodology.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod deque;
pub mod injector;
pub mod iter;
mod pool;
pub mod rng;
mod scope_api;
pub mod stealbench;

pub use iter::{parallel_map_on, prelude, IntoParallelIterator, ParallelIterator};
pub use pool::{global, Pool, PoolBuilder, PoolStats, StealMode, WorkerStats};
pub use scope_api::{join, scope, Scope};

/// Number of threads the global pool uses (for rayon API parity).
pub fn current_num_threads() -> usize {
    global().num_threads()
}
