//! Global MPMC injection queue.
//!
//! External (non-worker) threads submit work here; any worker drains
//! it when its own deque runs dry. Unlike the per-worker deques the
//! injector is deliberately lock-based: it is the *cold* path (batch
//! submission and occasional pickup), and a `Mutex<VecDeque>` with an
//! atomic length for the empty fast-path is simpler to reason about
//! than a lock-free MPMC ring while costing nothing measurable at
//! this fan-in. The hot path — a worker scheduling its own spawned
//! subtasks — never touches it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// FIFO multi-producer multi-consumer queue.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
    len: AtomicUsize,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// Create an empty injector.
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
        }
    }

    /// Append one item (FIFO order).
    pub fn push(&self, v: T) {
        let mut q = self.queue.lock().unwrap();
        q.push_back(v);
        // Under the lock, so `len` can never over-report across a pop.
        self.len.store(q.len(), Ordering::Release);
    }

    /// Take the oldest item, if any. Lock-free `None` when empty.
    pub fn pop(&self) -> Option<T> {
        if self.len.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut q = self.queue.lock().unwrap();
        let v = q.pop_front();
        self.len.store(q.len(), Ordering::Release);
        v
    }

    /// Current length (exact at the instant of the read).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let inj = Injector::new();
        inj.push(1);
        inj.push(2);
        inj.push(3);
        assert_eq!(inj.len(), 3);
        assert_eq!(inj.pop(), Some(1));
        assert_eq!(inj.pop(), Some(2));
        assert_eq!(inj.pop(), Some(3));
        assert_eq!(inj.pop(), None);
        assert!(inj.is_empty());
    }

    #[test]
    fn mpmc_accounts_for_every_item() {
        let inj = Arc::new(Injector::<u64>::new());
        let producers = 4;
        let per = 2_500u64;
        let mut handles = Vec::new();
        for p in 0..producers {
            let inj = Arc::clone(&inj);
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    inj.push(p * per + i);
                }
            }));
        }
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let inj = Arc::clone(&inj);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut misses = 0;
                    while misses < 200 {
                        match inj.pop() {
                            Some(v) => {
                                got.push(v);
                                misses = 0;
                            }
                            None => {
                                misses += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        while let Some(v) = inj.pop() {
            all.push(v);
        }
        all.sort_unstable();
        let expect: Vec<u64> = (0..producers * per).collect();
        assert_eq!(all, expect);
    }
}
