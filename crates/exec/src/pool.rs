//! The work-stealing thread pool.
//!
//! Architecture (see `docs/executor.md` for the full design notes):
//!
//! * one [`deque`](crate::deque) per worker — the lock-free hot path
//!   for a worker scheduling and re-acquiring its own tasks;
//! * a global [`Injector`] for external submission and batch overflow;
//! * a per-worker *inbox* (small locked queue) for **targeted**
//!   submission ([`Pool::submit_to`]) — the steal-bench driver
//!   addresses arrivals to a specific worker the way the paper's
//!   Poisson streams address a specific processor;
//! * randomized single-victim stealing with two victim policies
//!   ([`StealMode`]): `Greedy` for throughput workloads
//!   (replication fan-out), `OnEmptyOnce` reproducing the paper's
//!   dynamics — exactly one steal attempt each time a worker runs dry;
//! * parking on a per-worker mutex/condvar with a stamped flag and a
//!   timeout backstop, so idle workers cost nothing but wake promptly;
//! * panic isolation: a panicking task never takes down its worker,
//!   and batch siblings all run before the first panic resumes on the
//!   caller (drain semantics).
//!
//! When built with a tracer ([`PoolBuilder::tracer`]) the pool emits
//! `loadsteal.trace.v1` events — arrival / completion / steal-attempt
//! / steal-success / migration with real wall-clock timestamps mapped
//! to model time — through any [`Recorder`], using the exact
//! conventions of the simulator engine so `loadsteal report` and the
//! transient comparator consume measured executor traces unchanged.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use loadsteal_obs::span::span;
use loadsteal_obs::{Event as ObsEvent, Recorder, ShardSink, SimEventKind};

use crate::deque::{self, Steal, Stealer, Worker};
use crate::injector::Injector;
use crate::rng::Rng;

/// A unit of work.
pub(crate) type Task = Box<dyn FnOnce() + Send + 'static>;

/// Victim-probing policy for idle workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StealMode {
    /// Keep stealing while any queue has work; park only when a full
    /// sweep finds nothing. Right for throughput workloads.
    Greedy,
    /// One steal attempt at one uniformly random victim each time the
    /// worker *transitions* to empty, then park until targeted work
    /// arrives. This reproduces the load-stealing dynamics of the
    /// source paper (a processor completing its last task probes a
    /// single random partner), so measured steal rates are comparable
    /// to the mean-field model.
    OnEmptyOnce,
}

/// Monotonic counters kept by the pool (see [`Pool::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks executed to completion (including panicked ones).
    pub executed: u64,
    /// Steal probes issued by idle workers.
    pub steal_attempts: u64,
    /// Probes that brought back a task.
    pub steal_successes: u64,
    /// Panics caught and isolated from workers.
    pub panics: u64,
}

/// Live per-worker view (see [`Pool::worker_stats`]). Queue depths are
/// instantaneous reads of lock-free state; the counters are that
/// worker's own slots, so a sampler thread sees them without touching
/// any line the workers write on the hot path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Tasks currently in this worker's deque (excluding one mid-run).
    pub queue_depth: usize,
    /// Targeted submissions awaiting inbox drain.
    pub inbox_depth: usize,
    /// Tasks this worker executed to completion.
    pub executed: u64,
    /// Steal probes this worker issued.
    pub steal_attempts: u64,
    /// Probes of this worker's that brought back a task.
    pub steal_successes: u64,
    /// Park episodes (blocked-idle transitions).
    pub parks: u64,
    /// Currently blocked in `park`.
    pub parked: bool,
    /// Currently executing a task body.
    pub busy: bool,
}

/// Where trace events go: the legacy single-lock sink, or one shard
/// per emitting thread (the executor's default — no cross-worker
/// contention per event).
enum TraceSink {
    /// Every emit takes this lock; the timestamp is read *inside* it,
    /// so the emitted stream is globally monotone in `t` as written.
    Locked(Arc<Mutex<dyn Recorder + Send>>),
    /// Every emit stamps `t` on the emitting thread and appends to its
    /// own shard. Per-shard streams are monotone; the global order is
    /// recovered by the [`ShardedRecorder`](loadsteal_obs::ShardedRecorder)
    /// merge on drain.
    Sharded(Arc<dyn ShardSink>),
}

/// Wall-clock → model-time trace emission state.
struct Tracer {
    sink: TraceSink,
    epoch: Instant,
    /// Seconds of wall clock per unit of model time.
    tau: f64,
}

impl Tracer {
    /// Record one simulator-schema event. `shard` identifies the
    /// emitting thread (worker index, or `n` for the external driver)
    /// and is ignored by the locked path.
    fn emit(&self, kind: SimEventKind, proc: usize, src: Option<usize>, count: u32, shard: usize) {
        match &self.sink {
            TraceSink::Locked(sink) => {
                let mut sink = sink.lock().unwrap();
                if !sink.enabled() {
                    return;
                }
                let t = self.epoch.elapsed().as_secs_f64() / self.tau;
                sink.record(&ObsEvent::Sim {
                    kind,
                    t,
                    proc: proc as u32,
                    src: src.map(|s| s as u32),
                    count,
                });
            }
            TraceSink::Sharded(sink) => {
                if !sink.enabled() {
                    return;
                }
                let t = self.epoch.elapsed().as_secs_f64() / self.tau;
                sink.record(
                    shard,
                    &ObsEvent::Sim {
                        kind,
                        t,
                        proc: proc as u32,
                        src: src.map(|s| s as u32),
                        count,
                    },
                );
            }
        }
    }
}

/// Per-worker state visible to every thread. Cache-line aligned so
/// one worker's counter writes never invalidate a neighbor's slot.
#[repr(align(128))]
struct WorkerShared {
    stealer: Stealer<Task>,
    inbox: Mutex<VecDeque<Task>>,
    inbox_len: AtomicUsize,
    /// True while this worker is executing a task body. Thieves use it
    /// to tell "victim busy with an undrained inbox" (queue ≥ 2,
    /// stealable under the paper's threshold) from "victim idle, inbox
    /// task merely awaiting wakeup" (queue = 1, not stealable).
    busy: AtomicBool,
    parked: AtomicBool,
    park_lock: Mutex<()>,
    park_cv: Condvar,
    /// Per-worker counter slots: each worker writes only its own,
    /// [`Pool::stats`] folds them on read (the sharded-counter
    /// discipline — no shared hot cache line).
    executed: AtomicU64,
    steal_attempts: AtomicU64,
    steal_successes: AtomicU64,
    parks: AtomicU64,
}

/// State shared by all workers and external handles.
pub(crate) struct Shared {
    injector: Injector<Task>,
    workers: Vec<WorkerShared>,
    sleepers: AtomicUsize,
    shutdown: AtomicBool,
    mode: StealMode,
    tracer: Option<Tracer>,
    seed: u64,
    /// Tasks executed by non-worker helper threads (batch helping),
    /// which have no per-worker slot to charge.
    external_executed: AtomicU64,
    panics: AtomicU64,
}

/// Thread-local identity of a pool worker, used to route nested
/// parallel work back onto the same pool without going through the
/// injector.
struct WorkerCtx {
    shared: Arc<Shared>,
    index: usize,
    deque: Worker<Task>,
    /// Victim-selection RNG. Interior mutability because steal probes
    /// happen both from the idle loop and from batch-help re-entry.
    rng: std::cell::RefCell<Rng>,
}

thread_local! {
    /// Points at the executing worker's [`WorkerCtx`] (stack frame of
    /// `worker_loop`) for the lifetime of that loop; null elsewhere.
    static CTX: std::cell::Cell<*const WorkerCtx> = const { std::cell::Cell::new(std::ptr::null()) };
}

/// Run `f` with the current thread's worker context, if any.
///
/// Soundness: the pointer is set by `worker_loop` whose stack frame
/// owns the `WorkerCtx` and strictly outlives every task executed on
/// that thread; it is cleared before the frame unwinds.
fn with_ctx<R>(f: impl FnOnce(Option<&WorkerCtx>) -> R) -> R {
    CTX.with(|c| {
        let p = c.get();
        if p.is_null() {
            f(None)
        } else {
            f(Some(unsafe { &*p }))
        }
    })
}

impl Shared {
    fn n(&self) -> usize {
        self.workers.len()
    }

    fn emit(&self, kind: SimEventKind, proc: usize, src: Option<usize>, count: u32, shard: usize) {
        if let Some(tr) = &self.tracer {
            tr.emit(kind, proc, src, count, shard);
        }
    }

    /// Execute one task with panic isolation and bookkeeping.
    /// `proc` is the worker index for trace attribution (`None` when
    /// an external helper runs a batch job).
    fn execute(&self, task: Task, proc: Option<usize>) {
        let _span = span("exec.task");
        if let Some(i) = proc {
            self.workers[i].busy.store(true, Ordering::SeqCst);
        }
        let r = catch_unwind(AssertUnwindSafe(task));
        if let Some(i) = proc {
            self.workers[i].busy.store(false, Ordering::SeqCst);
            self.workers[i].executed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.external_executed.fetch_add(1, Ordering::Relaxed);
        }
        if r.is_err() {
            // Batch jobs catch their own panics (drain semantics), so
            // anything reaching here came from a raw `spawn`; isolate
            // it — the worker lives on.
            self.panics.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(i) = proc {
            self.emit(SimEventKind::Completion, i, None, 1, i);
        }
    }

    /// Move every inbox task onto the worker's own deque. Returns how
    /// many were transferred.
    fn drain_inbox(&self, ctx: &WorkerCtx) -> usize {
        let me = &self.workers[ctx.index];
        if me.inbox_len.load(Ordering::SeqCst) == 0 {
            return 0;
        }
        let mut moved = 0;
        let mut q = me.inbox.lock().unwrap();
        while let Some(t) = q.pop_front() {
            ctx.deque.push(t);
            moved += 1;
        }
        me.inbox_len.store(0, Ordering::SeqCst);
        moved
    }

    /// One steal probe at one uniformly random victim (the paper's
    /// protocol). Emits attempt/success/migration events when tracing.
    fn steal_once(&self, ctx: &WorkerCtx) -> Option<Task> {
        let n = self.n();
        if n < 2 {
            return None;
        }
        let _span = span("exec.steal");
        // Uniform over the other n-1 workers.
        let victim = {
            let mut rng = ctx.rng.borrow_mut();
            let v = rng.below(n - 1);
            if v >= ctx.index {
                v + 1
            } else {
                v
            }
        };
        let me = &self.workers[ctx.index];
        me.steal_attempts.fetch_add(1, Ordering::Relaxed);
        self.emit(SimEventKind::StealAttempt, ctx.index, None, 1, ctx.index);
        if let Some(t) = self.probe(victim) {
            me.steal_successes.fetch_add(1, Ordering::Relaxed);
            self.emit(SimEventKind::StealSuccess, ctx.index, None, 1, ctx.index);
            self.emit(
                SimEventKind::Migration,
                ctx.index,
                Some(victim),
                1,
                ctx.index,
            );
            return Some(t);
        }
        None
    }

    /// Probe one victim: its deque first (tasks beyond the one in
    /// service), then — only while the victim is mid-task — its inbox
    /// (arrivals it has not had a chance to drain). An idle victim's
    /// inbox is off limits: that task is the victim's *only* one and
    /// the paper's threshold-2 rule says leave it alone.
    fn probe(&self, victim: usize) -> Option<Task> {
        let w = &self.workers[victim];
        let mut spins = 0;
        loop {
            match w.stealer.steal() {
                Steal::Success(t) => return Some(t),
                Steal::Empty => break,
                Steal::Retry => {
                    spins += 1;
                    if spins > 32 {
                        break;
                    }
                    std::hint::spin_loop();
                }
            }
        }
        if w.busy.load(Ordering::SeqCst) && w.inbox_len.load(Ordering::SeqCst) > 0 {
            let mut q = w.inbox.lock().unwrap();
            let t = q.pop_front();
            w.inbox_len.store(q.len(), Ordering::SeqCst);
            return t;
        }
        None
    }

    /// Greedy acquisition for throughput mode and batch helping: own
    /// deque, then the injector, then a full randomized sweep of every
    /// other worker's deque.
    fn find_task_greedy(&self, ctx: &WorkerCtx) -> Option<Task> {
        self.drain_inbox(ctx);
        if let Some(t) = ctx.deque.pop() {
            return Some(t);
        }
        if let Some(t) = self.injector.pop() {
            return Some(t);
        }
        let n = self.n();
        if n < 2 {
            return None;
        }
        let start = ctx.rng.borrow_mut().below(n);
        for k in 0..n {
            let v = (start + k) % n;
            if v == ctx.index {
                continue;
            }
            self.workers[ctx.index]
                .steal_attempts
                .fetch_add(1, Ordering::Relaxed);
            let mut spins = 0;
            loop {
                match self.workers[v].stealer.steal() {
                    Steal::Success(t) => {
                        self.workers[ctx.index]
                            .steal_successes
                            .fetch_add(1, Ordering::Relaxed);
                        return Some(t);
                    }
                    Steal::Empty => break,
                    Steal::Retry => {
                        spins += 1;
                        if spins > 32 {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
            }
        }
        None
    }

    /// Is there anything this worker could run right now without
    /// stealing? (`OnEmptyOnce` parking must not be woken into extra
    /// steal attempts, so cross-worker deques are checked only in
    /// greedy mode.)
    fn work_available(&self, index: usize) -> bool {
        let me = &self.workers[index];
        if me.inbox_len.load(Ordering::SeqCst) > 0 || !me.stealer.is_empty() {
            return true;
        }
        if !self.injector.is_empty() {
            return true;
        }
        if self.mode == StealMode::Greedy {
            return self
                .workers
                .iter()
                .enumerate()
                .any(|(i, w)| i != index && !w.stealer.is_empty());
        }
        false
    }

    /// Block until targeted work arrives (or the timeout backstop
    /// rechecks). Two-phase: advertise the parked flag, re-verify
    /// emptiness, then wait — wakers clear the flag under the same
    /// lock, so a submission can never slip between check and sleep.
    fn park(&self, index: usize) {
        let me = &self.workers[index];
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        if self.work_available(index) || self.shutdown.load(Ordering::SeqCst) {
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let _span = span("exec.park");
        me.parks.fetch_add(1, Ordering::Relaxed);
        let mut guard = me.park_lock.lock().unwrap();
        me.parked.store(true, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        if self.work_available(index) || self.shutdown.load(Ordering::SeqCst) {
            me.parked.store(false, Ordering::SeqCst);
            drop(guard);
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        while me.parked.load(Ordering::SeqCst) && !self.shutdown.load(Ordering::SeqCst) {
            let (g, timeout) = me
                .park_cv
                .wait_timeout(guard, Duration::from_millis(10))
                .unwrap();
            guard = g;
            if timeout.timed_out() && self.work_available(index) {
                me.parked.store(false, Ordering::SeqCst);
            }
        }
        me.parked.store(false, Ordering::SeqCst);
        drop(guard);
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Wake a specific worker (targeted submission).
    fn wake_worker(&self, index: usize) {
        fence(Ordering::SeqCst);
        let me = &self.workers[index];
        if me.parked.load(Ordering::SeqCst) {
            let _g = me.park_lock.lock().unwrap();
            me.parked.store(false, Ordering::SeqCst);
            me.park_cv.notify_one();
        }
    }

    /// Wake one parked worker, if any (untargeted submission).
    fn wake_one(&self) {
        fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) == 0 {
            return;
        }
        for w in &self.workers {
            if w.parked.load(Ordering::SeqCst) {
                let _g = w.park_lock.lock().unwrap();
                if w.parked.load(Ordering::SeqCst) {
                    w.parked.store(false, Ordering::SeqCst);
                    w.park_cv.notify_one();
                    return;
                }
            }
        }
    }

    /// Wake every parked worker (batch submission, shutdown).
    fn wake_all(&self) {
        fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) == 0 {
            return;
        }
        for w in &self.workers {
            if w.parked.load(Ordering::SeqCst) {
                let _g = w.park_lock.lock().unwrap();
                w.parked.store(false, Ordering::SeqCst);
                w.park_cv.notify_one();
            }
        }
    }
}

/// The main worker loop: drain inbox → own deque → injector → steal →
/// park, with the steal step shaped by [`StealMode`].
fn worker_loop(shared: Arc<Shared>, index: usize, own: Worker<Task>) {
    let ctx = WorkerCtx {
        rng: std::cell::RefCell::new(Rng::new(
            shared.seed ^ (index as u64).wrapping_mul(0x9E3779B97F4A7C15),
        )),
        shared: Arc::clone(&shared),
        index,
        deque: own,
    };
    CTX.with(|c| c.set(&ctx as *const WorkerCtx));
    // `had_work`: the worker has executed something since its last
    // steal attempt, i.e. the next empty deque is a *transition* to
    // empty — the only moment OnEmptyOnce is allowed to probe.
    let mut had_work = false;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        shared.drain_inbox(&ctx);
        if let Some(t) = ctx.deque.pop() {
            shared.execute(t, Some(index));
            had_work = true;
            continue;
        }
        if let Some(t) = shared.injector.pop() {
            shared.execute(t, Some(index));
            had_work = true;
            continue;
        }
        match shared.mode {
            StealMode::Greedy => {
                if let Some(t) = shared.find_task_greedy(&ctx) {
                    shared.execute(t, Some(index));
                    had_work = true;
                    continue;
                }
                shared.park(index);
            }
            StealMode::OnEmptyOnce => {
                if had_work {
                    had_work = false;
                    if let Some(t) = shared.steal_once(&ctx) {
                        shared.execute(t, Some(index));
                        had_work = true;
                        continue;
                    }
                }
                shared.park(index);
            }
        }
    }
    CTX.with(|c| c.set(std::ptr::null()));
}

/// Configures and builds a [`Pool`].
pub struct PoolBuilder {
    threads: Option<usize>,
    mode: StealMode,
    seed: u64,
    tracer: Option<(TraceSink, f64)>,
}

impl Default for PoolBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PoolBuilder {
    /// Start from defaults: hardware parallelism, greedy stealing.
    pub fn new() -> Self {
        PoolBuilder {
            threads: None,
            mode: StealMode::Greedy,
            seed: 0x10ad_57ea,
            tracer: None,
        }
    }

    /// Set the number of worker threads (0 means "default").
    pub fn num_threads(mut self, n: usize) -> Self {
        self.threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Set the victim-probing policy.
    pub fn steal_mode(mut self, mode: StealMode) -> Self {
        self.mode = mode;
        self
    }

    /// Seed the per-worker victim-selection RNGs (deterministic victim
    /// sequences per worker, given a quiescent schedule).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Emit simulator-schema trace events into `sink`, mapping wall
    /// clock to model time at `tau` seconds per time unit. The epoch
    /// is the moment [`PoolBuilder::build`] runs. Every event takes
    /// the sink lock; prefer [`PoolBuilder::sharded_tracer`] when the
    /// pool itself is the system under measurement.
    pub fn tracer(mut self, sink: Arc<Mutex<dyn Recorder + Send>>, tau: f64) -> Self {
        assert!(tau > 0.0, "tau must be positive");
        self.tracer = Some((TraceSink::Locked(sink), tau));
        self
    }

    /// Emit trace events through per-thread shards: each worker
    /// appends to its own shard (no cross-worker lock per event), and
    /// external [`Pool::submit_to`] callers share shard `n`. The sink
    /// must provide at least `threads + 1` shards —
    /// [`PoolBuilder::build`] asserts this — and is expected to
    /// merge-sort shards back into one `t`-ordered stream on drain
    /// (what [`loadsteal_obs::ShardedRecorder`] does).
    pub fn sharded_tracer(mut self, sink: Arc<dyn ShardSink>, tau: f64) -> Self {
        assert!(tau > 0.0, "tau must be positive");
        self.tracer = Some((TraceSink::Sharded(sink), tau));
        self
    }

    /// Spawn the workers and return the pool handle.
    pub fn build(self) -> Pool {
        let threads = self.threads.unwrap_or_else(default_threads).max(1);
        if let Some((TraceSink::Sharded(sink), _)) = &self.tracer {
            assert!(
                sink.shards() > threads,
                "sharded tracer needs {} shards ({} workers + 1 driver), sink has {}",
                threads + 1,
                threads,
                sink.shards()
            );
        }
        let epoch = Instant::now();
        let mut owners = Vec::with_capacity(threads);
        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (owner, stealer) = deque::deque::<Task>();
            owners.push(owner);
            workers.push(WorkerShared {
                stealer,
                inbox: Mutex::new(VecDeque::new()),
                inbox_len: AtomicUsize::new(0),
                busy: AtomicBool::new(false),
                parked: AtomicBool::new(false),
                park_lock: Mutex::new(()),
                park_cv: Condvar::new(),
                executed: AtomicU64::new(0),
                steal_attempts: AtomicU64::new(0),
                steal_successes: AtomicU64::new(0),
                parks: AtomicU64::new(0),
            });
        }
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            workers,
            sleepers: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            mode: self.mode,
            tracer: self.tracer.map(|(sink, tau)| Tracer { sink, epoch, tau }),
            seed: self.seed,
            external_executed: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        });
        let handles = owners
            .into_iter()
            .enumerate()
            .map(|(i, own)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("exec-worker-{i}"))
                    .spawn(move || worker_loop(shared, i, own))
                    .expect("spawn worker thread")
            })
            .collect();
        Pool {
            shared,
            handles,
            epoch,
        }
    }
}

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("LOADSTEAL_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// A handle to a running work-stealing pool. Dropping it shuts the
/// workers down (pending queue contents are discarded).
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    epoch: Instant,
}

impl Pool {
    /// Builder entry point.
    pub fn builder() -> PoolBuilder {
        PoolBuilder::new()
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.shared.n()
    }

    /// The instant model time 0 corresponds to (pool construction).
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Snapshot of the pool counters: the per-worker slots folded
    /// together, plus tasks run by external helper threads.
    pub fn stats(&self) -> PoolStats {
        let mut stats = PoolStats {
            executed: self.shared.external_executed.load(Ordering::SeqCst),
            panics: self.shared.panics.load(Ordering::SeqCst),
            ..PoolStats::default()
        };
        for w in &self.shared.workers {
            stats.executed += w.executed.load(Ordering::SeqCst);
            stats.steal_attempts += w.steal_attempts.load(Ordering::SeqCst);
            stats.steal_successes += w.steal_successes.load(Ordering::SeqCst);
        }
        stats
    }

    /// Live per-worker snapshot, indexed by worker. Safe to call from
    /// any thread at any rate: reads are lock-free loads of each
    /// worker's own padded slots (the `loadsteal top` poll path).
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        self.shared
            .workers
            .iter()
            .map(|w| WorkerStats {
                queue_depth: w.stealer.len(),
                inbox_depth: w.inbox_len.load(Ordering::SeqCst),
                executed: w.executed.load(Ordering::SeqCst),
                steal_attempts: w.steal_attempts.load(Ordering::SeqCst),
                steal_successes: w.steal_successes.load(Ordering::SeqCst),
                parks: w.parks.load(Ordering::SeqCst),
                parked: w.parked.load(Ordering::SeqCst),
                busy: w.busy.load(Ordering::SeqCst),
            })
            .collect()
    }

    /// Fire-and-forget execution via the global injector.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        self.shared.injector.push(Box::new(task));
        self.shared.wake_one();
    }

    /// Targeted submission: enqueue at worker `index`'s inbox (the
    /// steal-bench "arrival at processor i"). Emits an `arrival` trace
    /// event when the pool has a tracer.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn submit_to(&self, index: usize, task: impl FnOnce() + Send + 'static) {
        assert!(index < self.shared.n(), "worker index out of range");
        // Arrival goes on the wire before the task becomes runnable so
        // the trace can never complete a task it has not admitted.
        // Shard `n` is the external-submitter shard: the driver is not
        // a worker, so it must not write into any worker's shard.
        self.shared
            .emit(SimEventKind::Arrival, index, None, 1, self.shared.n());
        let w = &self.shared.workers[index];
        {
            let mut q = w.inbox.lock().unwrap();
            q.push_back(Box::new(task));
            w.inbox_len.store(q.len(), Ordering::SeqCst);
        }
        self.shared.wake_worker(index);
    }

    /// Run `f` on this pool and wait for its result. If the calling
    /// thread already is a worker of this pool, `f` runs inline;
    /// otherwise it is injected and the caller blocks (without
    /// consuming pool tasks) until it finishes. Panics in `f`
    /// propagate to the caller.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        let inline = with_ctx(|ctx| matches!(ctx, Some(c) if Arc::ptr_eq(&c.shared, &self.shared)));
        if inline {
            return f();
        }
        let batch = Arc::new(Batch::new(1));
        let slot: Arc<Mutex<Option<R>>> = Arc::new(Mutex::new(None));
        {
            let batch = Arc::clone(&batch);
            let slot = Arc::clone(&slot);
            // Lifetime erasure: `f` borrows the caller's stack, but the
            // wait below does not return until the job has run, so the
            // borrow outlives the use. See `erase_task`.
            let job: Box<dyn FnOnce() + Send> = Box::new(move || {
                match catch_unwind(AssertUnwindSafe(f)) {
                    Ok(r) => *slot.lock().unwrap() = Some(r),
                    Err(p) => batch.record_panic(p),
                }
                batch.job_done();
            });
            let job = unsafe { erase_task(job) };
            self.shared.injector.push(job);
        }
        self.shared.wake_one();
        batch.wait_without_helping();
        batch.resume_if_panicked();
        let r = slot.lock().unwrap().take();
        r.expect("install job completed without a result or a panic")
    }

    /// Stop the workers, wait for them to exit, and return the final
    /// counters. (Unlike plain `drop`, the returned stats are taken
    /// *after* the last task has finished.)
    pub fn shutdown(self) -> PoolStats {
        self.shutdown_detailed().0
    }

    /// [`shutdown`](Self::shutdown), also returning the settled
    /// per-worker stats.
    pub fn shutdown_detailed(mut self) -> (PoolStats, Vec<WorkerStats>) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        (self.stats(), self.worker_stats())
    }

    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The process-wide default pool (size from `LOADSTEAL_THREADS` or the
/// hardware). Built on first use; never torn down.
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(|| PoolBuilder::new().build())
}

/// Erase a scoped task's lifetime so it can ride the `'static` queues.
///
/// # Safety
/// The caller must guarantee the task runs (or is dropped) before any
/// borrow it captures goes out of scope. Every call site pairs the
/// erased task with a [`Batch`] whose wait does not return until the
/// job has executed, and pool shutdown only drops queues after the
/// owning `Pool` handle — which the waiting caller keeps alive — is
/// itself dropped.
pub(crate) unsafe fn erase_task<'a>(task: Box<dyn FnOnce() + Send + 'a>) -> Task {
    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'a>, Task>(task) }
}

/// Completion latch for a group of jobs, with first-panic capture.
pub(crate) struct Batch {
    remaining: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Batch {
    pub(crate) fn new(jobs: usize) -> Self {
        Batch {
            remaining: AtomicUsize::new(jobs),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    /// Add `k` more jobs before they are pushed (scope spawning).
    pub(crate) fn add_jobs(&self, k: usize) {
        self.remaining.fetch_add(k, Ordering::SeqCst);
    }

    pub(crate) fn job_done(&self) {
        if self.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _g = self.lock.lock().unwrap();
            self.cv.notify_all();
        }
    }

    pub(crate) fn is_done(&self) -> bool {
        self.remaining.load(Ordering::SeqCst) == 0
    }

    /// Keep the *first* panic; later siblings still drain.
    pub(crate) fn record_panic(&self, p: Box<dyn Any + Send>) {
        let mut g = self.panic.lock().unwrap();
        g.get_or_insert(p);
    }

    pub(crate) fn resume_if_panicked(&self) {
        if let Some(p) = self.panic.lock().unwrap().take() {
            resume_unwind(p);
        }
    }

    /// Short condvar wait used between help attempts.
    pub(crate) fn wait_brief(&self) {
        let g = self.lock.lock().unwrap();
        if !self.is_done() {
            let _ = self.cv.wait_timeout(g, Duration::from_millis(1)).unwrap();
        }
    }

    /// Block until all jobs finished, executing nothing.
    fn wait_without_helping(&self) {
        let mut g = self.lock.lock().unwrap();
        while !self.is_done() {
            let (g2, _) = self.cv.wait_timeout(g, Duration::from_millis(10)).unwrap();
            g = g2;
        }
    }
}

/// The pool whose worker is running the current thread, if any. Lets
/// nested parallel iterators stay on the pool they were `install`ed
/// into instead of hopping to the global one.
pub(crate) fn current_shared() -> Option<Arc<Shared>> {
    with_ctx(|ctx| ctx.map(|c| Arc::clone(&c.shared)))
}

/// Enqueue one erased task: a worker of `shared` schedules it on its
/// own deque (the lock-free path, stealable by the others); any other
/// thread goes through the injector.
pub(crate) fn push_task(shared: &Arc<Shared>, task: Task) {
    let leftover = with_ctx(|ctx| match ctx {
        Some(c) if Arc::ptr_eq(&c.shared, shared) => {
            c.deque.push(task);
            None
        }
        _ => Some(task),
    });
    if let Some(t) = leftover {
        shared.injector.push(t);
    }
    shared.wake_one();
}

/// Help run pool tasks until `batch`'s latch opens. A worker of the
/// pool helps greedily — own deque, injector, stealing; executing
/// *unrelated* pool tasks while waiting is what makes nested
/// parallelism deadlock-free. An external thread helps from the
/// injector only (it never takes tasks a worker already owns).
pub(crate) fn help_until_done(shared: &Arc<Shared>, batch: &Batch) {
    with_ctx(|ctx| match ctx {
        Some(c) if Arc::ptr_eq(&c.shared, shared) => {
            while !batch.is_done() {
                if let Some(t) = shared.find_task_greedy(c) {
                    shared.execute(t, Some(c.index));
                } else {
                    batch.wait_brief();
                }
            }
        }
        _ => {
            while !batch.is_done() {
                if let Some(t) = shared.injector.pop() {
                    shared.execute(t, None);
                } else {
                    batch.wait_brief();
                }
            }
        }
    })
}

/// Push a set of erased jobs belonging to `batch` onto `shared` from
/// the current thread and help run them until the batch completes.
pub(crate) fn run_batch(shared: &Arc<Shared>, jobs: Vec<Task>, batch: &Arc<Batch>) {
    let many = jobs.len() > 1;
    let leftover = with_ctx(|ctx| match ctx {
        Some(c) if Arc::ptr_eq(&c.shared, shared) => {
            for j in jobs {
                c.deque.push(j);
            }
            None
        }
        _ => Some(jobs),
    });
    if let Some(jobs) = leftover {
        for j in jobs {
            shared.injector.push(j);
        }
    }
    if many {
        shared.wake_all();
    } else {
        shared.wake_one();
    }
    help_until_done(shared, batch);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn spawn_runs_tasks() {
        let pool = Pool::builder().num_threads(2).build();
        let hits = Arc::new(AtomicU32::new(0));
        for _ in 0..100 {
            let hits = Arc::clone(&hits);
            pool.spawn(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while hits.load(Ordering::SeqCst) < 100 {
            assert!(Instant::now() < deadline, "spawned tasks did not drain");
            std::thread::yield_now();
        }
        assert_eq!(pool.stats().executed, 100);
    }

    #[test]
    fn submit_to_targets_a_worker_and_panics_are_isolated() {
        let pool = Pool::builder().num_threads(2).build();
        let hits = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hits);
        pool.submit_to(0, move || panic!("isolated"));
        pool.submit_to(1, move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        let deadline = Instant::now() + Duration::from_secs(10);
        while pool.stats().executed < 2 {
            assert!(Instant::now() < deadline, "submissions did not drain");
            std::thread::yield_now();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(pool.stats().panics, 1);
    }

    #[test]
    #[should_panic(expected = "worker index out of range")]
    fn submit_to_checks_bounds() {
        let pool = Pool::builder().num_threads(1).build();
        pool.submit_to(5, || {});
    }

    #[test]
    fn install_returns_value_and_runs_on_a_worker() {
        let pool = Pool::builder().num_threads(2).build();
        let on_worker = pool.install(|| with_ctx(|c| c.is_some()));
        assert!(on_worker, "install body must run on a pool worker");
        let x = pool.install(|| 21 * 2);
        assert_eq!(x, 42);
    }

    #[test]
    fn install_propagates_panics() {
        let pool = Pool::builder().num_threads(1).build();
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| panic!("through install"));
        }));
        assert!(r.is_err());
        // And the pool still works afterwards.
        assert_eq!(pool.install(|| 7), 7);
    }

    #[test]
    fn on_empty_once_steals_from_a_busy_victim() {
        let pool = Pool::builder()
            .num_threads(2)
            .steal_mode(StealMode::OnEmptyOnce)
            .build();
        // Keep worker 0 busy, then pile work into its inbox; worker 1
        // runs one task (to arm its transition-to-empty), goes idle,
        // and must eventually steal some of worker 0's backlog.
        let done = Arc::new(AtomicU32::new(0));
        for _ in 0..40 {
            let done = Arc::clone(&done);
            pool.submit_to(0, move || {
                std::thread::sleep(Duration::from_millis(2));
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        let d1 = Arc::clone(&done);
        pool.submit_to(1, move || {
            std::thread::sleep(Duration::from_millis(1));
            d1.fetch_add(1, Ordering::SeqCst);
        });
        let deadline = Instant::now() + Duration::from_secs(30);
        while done.load(Ordering::SeqCst) < 41 {
            assert!(Instant::now() < deadline, "backlog did not drain");
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = pool.stats();
        assert!(
            stats.steal_successes >= 1,
            "expected at least one successful steal, got {stats:?}"
        );
    }

    #[test]
    fn shutdown_joins_workers() {
        let pool = Pool::builder().num_threads(4).build();
        pool.spawn(|| {});
        drop(pool); // must not hang
    }

    #[test]
    fn worker_stats_fold_into_pool_stats() {
        let pool = Pool::builder().num_threads(3).build();
        let hits = Arc::new(AtomicU32::new(0));
        for i in 0..30 {
            let hits = Arc::clone(&hits);
            pool.submit_to(i % 3, move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while pool.stats().executed < 30 {
            assert!(Instant::now() < deadline, "submissions did not drain");
            std::thread::yield_now();
        }
        let per = pool.worker_stats();
        let total = pool.stats();
        assert_eq!(per.len(), 3);
        // No external helpers ran, so the fold is exact.
        assert_eq!(per.iter().map(|w| w.executed).sum::<u64>(), total.executed);
        assert_eq!(
            per.iter().map(|w| w.steal_attempts).sum::<u64>(),
            total.steal_attempts
        );
        assert_eq!(
            per.iter().map(|w| w.steal_successes).sum::<u64>(),
            total.steal_successes
        );
        // Each worker executed its targeted share (possibly rebalanced
        // by steals, but something ran everywhere in aggregate).
        assert!(per.iter().map(|w| w.queue_depth).sum::<usize>() == 0);
    }

    #[test]
    #[should_panic(expected = "sharded tracer needs")]
    fn sharded_tracer_shard_count_is_checked() {
        use loadsteal_obs::{NullRecorder, ShardedRecorder};
        let sink: Arc<dyn ShardSink> = Arc::new(ShardedRecorder::with_shards(NullRecorder, 2));
        let _ = Pool::builder()
            .num_threads(4)
            .sharded_tracer(sink, 0.004)
            .build();
    }
}
