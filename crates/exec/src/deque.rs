//! Chase–Lev work-stealing deque on `std` atomics.
//!
//! One [`Worker`] (the owner) pushes and pops at the *bottom* in LIFO
//! order; any number of [`Stealer`] clones take from the *top* in FIFO
//! order. The algorithm is the C11 formulation of Lê, Pop, Cohen and
//! Nardelli ("Correct and efficient work-stealing for weak memory
//! models", PPoPP 2013), which this module follows operation by
//! operation; the buffer-reclamation scheme is simpler than the
//! hazard-pointer/epoch machinery of general-purpose implementations
//! and is described below.
//!
//! # Memory-ordering argument (summary; the long form is in
//! `docs/executor.md`)
//!
//! * `push` writes the slot, then publishes it with a `Release` store
//!   of `bottom`. A stealer that observes the new `bottom` (via its
//!   `Acquire` load) therefore also observes the slot contents.
//! * `pop` first lowers `bottom`, then issues a `SeqCst` fence before
//!   reading `top`. Symmetrically, `steal` loads `top`, issues a
//!   `SeqCst` fence, and only then loads `bottom`. The two fences
//!   order the owner's claim against the thief's: at most one side can
//!   see the *last* element as available, so the final item is decided
//!   by the `SeqCst` CAS on `top` and can never be handed out twice.
//! * `steal` reads the slot *before* its CAS on `top`. That read can
//!   race with the owner overwriting the slot (wrap-around `push`) or
//!   with buffer growth; the value is only *kept* when the CAS
//!   succeeds, which proves no writer has recycled index `t` yet. A
//!   value obtained from a lost race is `mem::forget`-ten without
//!   being dropped or inspected, so a torn read is never observed.
//!
//! # Buffer reclamation
//!
//! Growth allocates a buffer of twice the capacity, copies the live
//! window `top..bottom`, and publishes it with a `Release` store.
//! Concurrent stealers may still hold a pointer to the *old* buffer
//! and read (then discard) slots from it, so the old buffer cannot be
//! freed at that point. Instead it is parked in a retired list on the
//! shared channel and freed when the last handle drops — by then no
//! thread can be inside `steal`. This trades a little memory (retired
//! buffers accumulate until the deque itself goes away, ~2× the peak
//! in the geometric-growth worst case) for zero reclamation
//! synchronization on the steal path. The ABA hazard on the growth
//! path — a stale stealer reading index `t` from the *old* buffer
//! after the owner grew and popped past it — is closed by the same
//! CAS-validates-read rule and regression-tested in
//! `tests/deque_stress.rs`.

#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

/// Initial buffer capacity (must be a power of two).
const MIN_CAP: usize = 64;

/// A circular buffer of possibly-uninitialized slots.
///
/// Indexing is by the *unwrapped* deque index; the power-of-two mask
/// picks the physical slot. Reads and writes are raw (`ptr::read` /
/// `ptr::write`): slot liveness is tracked by `top`/`bottom` in the
/// deque, never by the buffer itself.
struct Buffer<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
}

impl<T> Buffer<T> {
    fn alloc(cap: usize) -> Box<Self> {
        debug_assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Box::new(Buffer {
            slots,
            mask: cap - 1,
        })
    }

    fn cap(&self) -> usize {
        self.slots.len()
    }

    /// Read the value at deque index `i`.
    ///
    /// # Safety
    /// The caller must either be the owner reading a slot it knows to
    /// be live, or a stealer that will validate the read with a CAS on
    /// `top` and `mem::forget` the value on failure.
    unsafe fn read(&self, i: isize) -> T {
        let slot = &self.slots[i as usize & self.mask];
        unsafe { slot.get().read().assume_init() }
    }

    /// Write `v` into deque index `i`.
    ///
    /// # Safety
    /// Only the owner writes, and only to slots outside the live
    /// `top..bottom` window (a `push` at `bottom`, or growth copying
    /// into a fresh buffer).
    unsafe fn write(&self, i: isize, v: T) {
        let slot = &self.slots[i as usize & self.mask];
        unsafe { slot.get().write(MaybeUninit::new(v)) };
    }
}

/// State shared between the owner and all stealers.
struct Inner<T> {
    /// Next index a stealer will take (FIFO end). Monotonically
    /// non-decreasing; advanced only by CAS.
    top: AtomicIsize,
    /// Next index the owner will push at (LIFO end). Written only by
    /// the owner (except the lost-pop restore, also owner-side).
    bottom: AtomicIsize,
    /// Current buffer. Swapped (with `Release`) only by the owner on
    /// growth.
    buffer: AtomicPtr<Buffer<T>>,
    /// Buffers replaced by growth, kept alive until the deque drops so
    /// in-flight stealers can still read (and discard) from them.
    retired: Mutex<Vec<*mut Buffer<T>>>,
}

// The raw buffer pointers are owned by `Inner` and only dereferenced
// under the protocol above; `T: Send` is all that moving values across
// threads requires.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Exclusive access: drop the live window, then free buffers.
        let top = self.top.load(Ordering::Relaxed);
        let bottom = self.bottom.load(Ordering::Relaxed);
        let buf = self.buffer.load(Ordering::Relaxed);
        unsafe {
            for i in top..bottom {
                drop((*buf).read(i));
            }
            drop(Box::from_raw(buf));
            for old in self.retired.lock().unwrap().drain(..) {
                drop(Box::from_raw(old));
            }
        }
    }
}

/// Outcome of a [`Stealer::steal`] attempt.
#[derive(Debug)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another stealer; retrying may
    /// succeed.
    Retry,
    /// Took the oldest item.
    Success(T),
}

impl<T> Steal<T> {
    /// `Some` for [`Steal::Success`].
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }
}

/// The owning endpoint: LIFO push/pop at the bottom.
///
/// `Worker` is `Send` but deliberately `!Sync` and not `Clone`: all
/// owner operations must come from one thread at a time. Methods take
/// `&self` so the pool can re-enter `push` from a task executing on
/// the same thread (calls are sequential on one thread, which is all
/// the algorithm needs).
pub struct Worker<T> {
    inner: Arc<Inner<T>>,
    /// Makes `Worker` `!Sync` (single-owner discipline).
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

unsafe impl<T: Send> Send for Worker<T> {}

/// A stealing endpoint: FIFO steal at the top. Freely cloneable and
/// shareable.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Create a new empty deque as an owner/stealer pair.
pub fn deque<T: Send>() -> (Worker<T>, Stealer<T>) {
    let buf = Box::into_raw(Buffer::alloc(MIN_CAP));
    let inner = Arc::new(Inner {
        top: AtomicIsize::new(0),
        bottom: AtomicIsize::new(0),
        buffer: AtomicPtr::new(buf),
        retired: Mutex::new(Vec::new()),
    });
    (
        Worker {
            inner: Arc::clone(&inner),
            _not_sync: PhantomData,
        },
        Stealer { inner },
    )
}

impl<T: Send> Worker<T> {
    /// Push `v` at the bottom (the LIFO end).
    pub fn push(&self, v: T) {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Acquire);
        let mut buf = inner.buffer.load(Ordering::Relaxed);
        if b - t >= unsafe { (*buf).cap() } as isize {
            buf = self.grow(b, t, buf);
        }
        unsafe { (*buf).write(b, v) };
        // Publish the slot before the new bottom becomes visible.
        inner.bottom.store(b + 1, Ordering::Release);
    }

    /// Pop from the bottom (most recently pushed). Returns `None` when
    /// empty.
    pub fn pop(&self) -> Option<T> {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed) - 1;
        let buf = inner.buffer.load(Ordering::Relaxed);
        inner.bottom.store(b, Ordering::Relaxed);
        // Order the bottom decrement against stealers' top reads: after
        // this fence, either we see every completed steal in `top`, or
        // the racing stealer sees our lowered `bottom` and backs off.
        fence(Ordering::SeqCst);
        let t = inner.top.load(Ordering::Relaxed);
        if t <= b {
            if t == b {
                // Last element: race the stealers for it via `top`.
                let won = inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                inner.bottom.store(b + 1, Ordering::Relaxed);
                if !won {
                    return None; // a stealer got it
                }
            }
            Some(unsafe { (*buf).read(b) })
        } else {
            // Already empty; restore bottom.
            inner.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Best-effort element count (exact when quiescent).
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// Best-effort emptiness check.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Double the buffer, copying the live window `t..b`. Returns the
    /// new buffer pointer. Only the owner calls this.
    fn grow(&self, b: isize, t: isize, old: *mut Buffer<T>) -> *mut Buffer<T> {
        let inner = &*self.inner;
        let new = Box::into_raw(Buffer::alloc(unsafe { (*old).cap() } * 2));
        unsafe {
            for i in t..b {
                // Indices `t..b` are live and, while we hold the owner
                // role, only stealers consume them — and a stealer that
                // takes index i after this copy simply reads the stale
                // slot from `old` (still allocated) and keeps it only
                // if its CAS on `top` succeeds. Either buffer yields
                // the same bits: the owner never mutates a live slot.
                (*new).write(i, (*old).read(i));
            }
        }
        // Publish the copied window together with the new pointer.
        inner.buffer.store(new, Ordering::Release);
        inner.retired.lock().unwrap().push(old);
        new
    }
}

impl<T: Send> Stealer<T> {
    /// Try to take the oldest item (the FIFO end).
    pub fn steal(&self) -> Steal<T> {
        let inner = &*self.inner;
        let t = inner.top.load(Ordering::Acquire);
        // Pair with the fence in `pop`: every `bottom` decrement by an
        // owner that already claimed index `t` is visible below.
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // Read the slot *before* claiming it. The read may race with a
        // wrap-around push or with growth; the CAS below validates it.
        let buf = inner.buffer.load(Ordering::Acquire);
        let v = unsafe { (*buf).read(t) };
        if inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            // Someone else consumed index t; our copy may be torn or a
            // duplicate. Forget it without dropping.
            std::mem::forget(v);
            return Steal::Retry;
        }
        Steal::Success(v)
    }

    /// Best-effort element count (exact when quiescent).
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// Best-effort emptiness check.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_lifo() {
        let (w, _s) = deque::<u32>();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn thief_is_fifo() {
        let (w, s) = deque::<u32>();
        for i in 0..5 {
            w.push(i);
        }
        assert_eq!(s.steal().success(), Some(0));
        assert_eq!(s.steal().success(), Some(1));
        assert_eq!(w.pop(), Some(4));
        assert_eq!(s.steal().success(), Some(2));
    }

    #[test]
    fn growth_preserves_order() {
        let (w, s) = deque::<usize>();
        let n = MIN_CAP * 4 + 3; // force two growths
        for i in 0..n {
            w.push(i);
        }
        assert_eq!(w.len(), n);
        for i in 0..n {
            assert_eq!(s.steal().success(), Some(i));
        }
        assert!(matches!(s.steal(), Steal::Empty));
    }

    #[test]
    fn values_drop_with_the_deque() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let (w, _s) = deque::<D>();
            for _ in 0..10 {
                w.push(D);
            }
            drop(w.pop()); // 1 explicit
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn two_thread_smoke() {
        let (w, s) = deque::<u64>();
        let total = 10_000u64;
        let thief = std::thread::spawn(move || {
            let mut got = Vec::new();
            loop {
                match s.steal() {
                    Steal::Success(v) => {
                        if v == u64::MAX {
                            break;
                        }
                        got.push(v);
                    }
                    Steal::Retry | Steal::Empty => std::hint::spin_loop(),
                }
            }
            got
        });
        let mut kept = Vec::new();
        for i in 0..total {
            w.push(i);
            if i % 3 == 0 {
                if let Some(v) = w.pop() {
                    kept.push(v);
                }
            }
        }
        while let Some(v) = w.pop() {
            kept.push(v);
        }
        w.push(u64::MAX); // poison pill for the thief
        let stolen = thief.join().unwrap();
        let mut all: Vec<u64> = kept.into_iter().chain(stolen).collect();
        all.sort_unstable();
        let expect: Vec<u64> = (0..total).collect();
        assert_eq!(all, expect, "every pushed item seen exactly once");
    }
}
