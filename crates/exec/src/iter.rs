//! Rayon-style parallel iterators over the work-stealing pool.
//!
//! The surface is the exact subset the workspace uses —
//! `range.into_par_iter().map(f).collect::<Vec<_>>()` — with the same
//! three contracts the old sequential shim promised and the
//! replication driver relies on:
//!
//! 1. results come back in **input order** (slot-addressed writes);
//! 2. panics in workers propagate to the caller — after every sibling
//!    item has drained (so a 64-item batch with one poisoned item
//!    still evaluates the other 63, on any worker count);
//! 3. evaluation of `f` is pure fan-out: each item is claimed by
//!    exactly one thread.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use crate::pool::{current_shared, erase_task, global, run_batch, Batch, Pool, Shared};

/// The rayon-style prelude: `use rayon::prelude::*;`.
pub mod prelude {
    pub use super::{IntoParallelIterator, ParallelIterator};
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// A value-producing parallel pipeline.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Drive the pipeline, returning elements in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Map each element through `f` (evaluated on pool workers).
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Execute the pipeline and collect the results.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.run().into_iter().collect()
    }
}

macro_rules! impl_range_source {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = VecSource<$t>;
            fn into_par_iter(self) -> VecSource<$t> {
                VecSource { items: self.collect() }
            }
        }
    )*};
}

impl_range_source!(usize, u64, u32, i64, i32);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecSource<T>;
    fn into_par_iter(self) -> VecSource<T> {
        VecSource { items: self }
    }
}

/// A materialized source of work items.
pub struct VecSource<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecSource<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

/// Lazily mapped parallel iterator (see [`ParallelIterator::map`]).
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, F, R> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> R + Sync,
    R: Send,
{
    type Item = R;
    fn run(self) -> Vec<R> {
        // Stay on the pool this thread belongs to (the one `install`
        // put us on); fall back to the global pool from the outside.
        let items = self.base.run();
        match current_shared() {
            Some(shared) => parallel_map_shared(&shared, items, &self.f),
            None => parallel_map_shared(global().shared(), items, &self.f),
        }
    }
}

/// Evaluate `f` over `items` on `pool`, preserving input order.
///
/// Each item becomes one pool task writing its slot; the caller helps
/// execute until the batch latch opens, then the first captured panic
/// (if any) resumes on the caller — after all siblings have drained.
pub fn parallel_map_on<T: Send, R: Send>(
    pool: &Pool,
    items: Vec<T>,
    f: &(impl Fn(T) -> R + Sync),
) -> Vec<R> {
    parallel_map_shared(pool.shared(), items, f)
}

fn parallel_map_shared<T: Send, R: Send>(
    shared: &Arc<Shared>,
    items: Vec<T>,
    f: &(impl Fn(T) -> R + Sync),
) -> Vec<R> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        // No fan-out to have, and no siblings whose drain semantics
        // could differ: evaluate in place.
        return items.into_iter().map(f).collect();
    }
    let slots: Arc<Vec<Mutex<Option<R>>>> = Arc::new((0..n).map(|_| Mutex::new(None)).collect());
    let batch = Arc::new(Batch::new(n));
    let jobs: Vec<_> = items
        .into_iter()
        .enumerate()
        .map(|(i, item)| {
            let slots = Arc::clone(&slots);
            let batch = Arc::clone(&batch);
            let job: Box<dyn FnOnce() + Send> = Box::new(move || {
                match catch_unwind(AssertUnwindSafe(|| f(item))) {
                    Ok(r) => *slots[i].lock().unwrap() = Some(r),
                    Err(p) => batch.record_panic(p),
                }
                // Release the slot handle *before* opening the latch:
                // the caller unwraps the slots Arc as soon as the batch
                // reads done.
                drop(slots);
                batch.job_done();
            });
            // Safety: `run_batch` does not return before every job has
            // executed, so the borrows of `f` (and anything captured
            // by the items) outlive their use.
            unsafe { erase_task(job) }
        })
        .collect();
    run_batch(shared, jobs, &batch);
    batch.resume_if_panicked();
    let slots = Arc::into_inner(slots).expect("all job handles released");
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("every slot filled by a completed batch")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use crate::pool::PoolBuilder;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..100).into_par_iter().map(|i| i * i).collect();
        let expect: Vec<u64> = (0u64..100).map(|i| i * i).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u64> = (0u64..0).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn vec_source_works() {
        let out: Vec<u32> = vec![3u32, 1, 4, 1, 5]
            .into_par_iter()
            .map(|v| v * 10)
            .collect();
        assert_eq!(out, vec![30, 10, 40, 10, 50]);
    }

    #[test]
    fn explicit_pool_map() {
        let pool = PoolBuilder::new().num_threads(3).build();
        let out = parallel_map_on(&pool, (0..50u32).collect(), &|i| i + 1);
        assert_eq!(out, (1..=50u32).collect::<Vec<_>>());
    }

    #[test]
    fn nested_parallelism_does_not_deadlock() {
        let pool = PoolBuilder::new().num_threads(2).build();
        let out = pool.install(|| {
            let inner: Vec<Vec<u32>> =
                parallel_map_on(crate::pool::global(), (0u32..4).collect(), &|i| {
                    (0u32..8).into_par_iter().map(|j| i * 8 + j).collect()
                });
            inner
        });
        let flat: Vec<u32> = out.into_iter().flatten().collect();
        assert_eq!(flat, (0u32..32).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let _: Vec<u64> = (0u64..8)
            .into_par_iter()
            .map(|i| {
                if i == 3 {
                    panic!("boom");
                }
                i
            })
            .collect();
    }

    /// The watchdog port from the old shim: one poisoned item among 64
    /// must neither deadlock the batch nor strand the siblings — the
    /// other 63 all run (on *any* worker count; the old shim's
    /// single-worker path stopped early), and the panic reaches the
    /// caller.
    #[test]
    fn panicking_worker_does_not_deadlock_or_strand_items() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::{mpsc, Arc};
        let processed = Arc::new(AtomicU32::new(0));
        let p = Arc::clone(&processed);
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _: Vec<u64> = (0u64..64)
                    .into_par_iter()
                    .map(|i| {
                        if i == 5 {
                            panic!("injected worker panic");
                        }
                        p.fetch_add(1, Ordering::Relaxed);
                        i
                    })
                    .collect();
            }));
            let _ = tx.send(result.is_err());
        });
        let panicked = rx
            .recv_timeout(std::time::Duration::from_secs(30))
            .expect("parallel map hung after a worker panic");
        assert!(panicked, "the injected panic must reach the caller");
        // Drain semantics hold unconditionally now.
        assert_eq!(processed.load(Ordering::Relaxed), 63);
    }
}
