//! Stress and property tests for the Chase–Lev deque.
//!
//! Three families:
//!
//! 1. a **sequential model test** — random push/pop/steal programs
//!    replayed against a `VecDeque` reference nail the LIFO-owner /
//!    FIFO-thief contract exactly;
//! 2. a **randomized multi-thread stress** — one owner interleaving
//!    pushes and pops with 1–7 concurrent thieves (2–8 threads
//!    total), asserting every item is consumed exactly once and that
//!    each thief observes a strictly increasing (FIFO) sequence;
//! 3. an **ABA regression on the growth path** — repeated
//!    grow-while-stealing episodes that would double- or mis-deliver
//!    items if a stale thief's CAS could succeed against a recycled
//!    index (the retired-buffer design under test).
//!
//! `EXEC_STRESS_ITERS` scales the threaded repetitions (CI runs an
//! elevated count in release mode).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use loadsteal_exec::deque::{deque, Steal};
use proptest::prelude::*;

/// Threaded-test repetition factor (default quick; CI elevates).
fn stress_iters() -> usize {
    std::env::var("EXEC_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

/// One step of a sequential deque program.
#[derive(Debug, Clone, Copy)]
enum Op {
    Push,
    Pop,
    Steal,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            // Push-biased so the deque actually fills (and grows).
            Just(Op::Push),
            Just(Op::Push),
            Just(Op::Push),
            Just(Op::Pop),
            Just(Op::Steal),
        ],
        1..600,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Sequential linearization: with no concurrency, `push`/`pop` must
    /// behave as a stack at the bottom and `steal` as a queue at the
    /// top — exactly a `VecDeque` with `push_back`/`pop_back`/
    /// `pop_front`.
    #[test]
    fn sequential_ops_match_vecdeque_model(ops in arb_ops()) {
        let (w, s) = deque::<u64>();
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64;
        for op in ops {
            match op {
                Op::Push => {
                    w.push(next);
                    model.push_back(next);
                    next += 1;
                }
                Op::Pop => {
                    prop_assert_eq!(w.pop(), model.pop_back());
                }
                Op::Steal => {
                    let got = match s.steal() {
                        Steal::Success(v) => Some(v),
                        Steal::Empty => None,
                        Steal::Retry => panic!("sequential steal cannot race"),
                    };
                    prop_assert_eq!(got, model.pop_front());
                }
            }
            prop_assert_eq!(w.len(), model.len());
        }
    }
}

proptest! {
    // Fewer sampled shapes for the threaded stress — each case already
    // repeats `stress_iters()` rounds, and CI scales that up.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized interleavings across 2–8 threads: every pushed item
    /// is consumed exactly once (by the owner or exactly one thief),
    /// and each thief's local steal sequence is strictly increasing —
    /// the observable face of FIFO-from-the-top.
    #[test]
    fn threaded_interleavings_lose_and_duplicate_nothing(
        thieves in 1usize..8,
        items in 256usize..2048,
        pop_stride in 2usize..7,
    ) {
        for round in 0..stress_iters() {
            let (w, s) = deque::<u64>();
            let stop = Arc::new(AtomicBool::new(false));
            let handles: Vec<_> = (0..thieves)
                .map(|_| {
                    let s = s.clone();
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        let mut got: Vec<u64> = Vec::new();
                        loop {
                            match s.steal() {
                                Steal::Success(v) => got.push(v),
                                Steal::Retry => std::thread::yield_now(),
                                Steal::Empty => {
                                    if stop.load(Ordering::Acquire) {
                                        break;
                                    }
                                    std::thread::yield_now();
                                }
                            }
                        }
                        got
                    })
                })
                .collect();
            let mut owned: Vec<u64> = Vec::new();
            for i in 0..items as u64 {
                w.push(i);
                if i % pop_stride as u64 == round as u64 % pop_stride as u64 {
                    if let Some(v) = w.pop() {
                        owned.push(v);
                    }
                }
            }
            while let Some(v) = w.pop() {
                owned.push(v);
            }
            stop.store(true, Ordering::Release);
            let mut all = owned;
            for h in handles {
                let got = h.join().expect("thief panicked");
                prop_assert!(
                    got.windows(2).all(|p| p[0] < p[1]),
                    "a thief observed a non-increasing steal sequence"
                );
                all.extend(got);
            }
            // One final sweep: the stop flag may have raced a push.
            loop {
                match s.steal() {
                    Steal::Success(v) => all.push(v),
                    Steal::Empty => break,
                    Steal::Retry => std::thread::yield_now(),
                }
            }
            all.sort_unstable();
            let expect: Vec<u64> = (0..items as u64).collect();
            prop_assert_eq!(all, expect);
        }
    }
}

/// ABA regression on the circular-buffer growth path. The deque starts
/// at its minimum capacity (64); each episode pushes far past it —
/// forcing one or more buffer swaps *while* a thief is mid-steal — and
/// pops concurrently so indices wrap. If a thief's stale read of a
/// pre-growth buffer could survive a recycled index, some value would
/// go missing or arrive twice; retiring old buffers (never reusing
/// them) plus the CAS-validates-read rule is what this pins.
#[test]
fn growth_under_concurrent_stealing_is_aba_safe() {
    let episodes = 6 * stress_iters();
    for ep in 0..episodes {
        let (w, s) = deque::<u64>();
        let stop = Arc::new(AtomicBool::new(false));
        let thief = {
            let s = s.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match s.steal() {
                        Steal::Success(v) => got.push(v),
                        Steal::Retry => std::thread::yield_now(),
                        Steal::Empty => {
                            if stop.load(Ordering::Acquire) {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
                got
            })
        };
        // Fill to the brink of capacity, then oscillate push/pop right
        // at the growth boundary so successive pushes trigger growth
        // with the thief inside `steal`.
        let mut owned = Vec::new();
        let mut next = 0u64;
        let total = 64 * 8 + (ep as u64 % 64); // several doublings
        while next < total {
            let burst = 3 + (ep + next as usize) % 5;
            for _ in 0..burst {
                if next < total {
                    w.push(next);
                    next += 1;
                }
            }
            if next % 2 == 0 {
                if let Some(v) = w.pop() {
                    owned.push(v);
                }
            }
        }
        while let Some(v) = w.pop() {
            owned.push(v);
        }
        stop.store(true, Ordering::Release);
        let stolen = thief.join().expect("thief panicked");
        assert!(
            stolen.windows(2).all(|p| p[0] < p[1]),
            "thief order regressed in episode {ep}"
        );
        let mut all = owned;
        all.extend(stolen);
        loop {
            match s.steal() {
                Steal::Success(v) => all.push(v),
                Steal::Empty => break,
                Steal::Retry => std::thread::yield_now(),
            }
        }
        all.sort_unstable();
        assert_eq!(
            all,
            (0..total).collect::<Vec<u64>>(),
            "episode {ep}: items lost or duplicated across growth"
        );
    }
}
