//! Differential equivalence of the two engines over randomized
//! configurations.
//!
//! The zoo presets are covered by the `engine` verify layer
//! (trace-hash equality on every quick-tier preset); this suite covers
//! the cross-product the presets don't reach — random policies ×
//! service laws × sizes × loads × seeds — and asserts the heap and
//! calendar engines agree on every observable of the run, bit for
//! bit. Any drift between the two future-event lists (a tie broken
//! differently, an event lost in a bucket rebuild, a cursor skipping a
//! window) shows up as a counter or a sojourn-moment mismatch here
//! long before it would move a statistical check.

use proptest::prelude::*;

use loadsteal_queueing::ServiceDistribution;
use loadsteal_sim::{run, EngineKind, SimConfig, SimResult, StealPolicy};

fn arb_policy() -> impl Strategy<Value = StealPolicy> {
    prop_oneof![
        Just(StealPolicy::None),
        (2usize..6, 1usize..3).prop_map(|(t, d)| StealPolicy::OnEmpty {
            threshold: t,
            choices: d,
            batch: 1,
        }),
        (4usize..8).prop_map(|t| StealPolicy::OnEmpty {
            threshold: t,
            choices: 1,
            batch: t / 2,
        }),
        (0usize..2, 2usize..3).prop_map(|(b, extra)| StealPolicy::Preemptive {
            begin_at: b,
            rel_threshold: b + extra,
        }),
        (0.5f64..4.0, 2usize..4).prop_map(|(r, t)| StealPolicy::Repeated {
            rate: r,
            threshold: t,
        }),
    ]
}

fn arb_service() -> impl Strategy<Value = ServiceDistribution> {
    prop_oneof![
        Just(ServiceDistribution::unit_exponential()),
        Just(ServiceDistribution::unit_deterministic()),
        (2u32..12).prop_map(ServiceDistribution::unit_erlang),
    ]
}

/// Every observable of a run, with floats at bit granularity.
fn fingerprint(r: &SimResult) -> (Vec<u64>, Vec<u64>) {
    let counters = vec![
        r.tasks_arrived,
        r.tasks_completed,
        r.tasks_migrated,
        r.steal_attempts,
        r.steal_successes,
        r.sojourn.count(),
    ];
    let mut floats: Vec<u64> = r.load_tails.iter().map(|t| t.to_bits()).collect();
    floats.push(r.mean_sojourn().to_bits());
    if r.sojourn.count() > 0 {
        floats.push(r.sojourn.min().to_bits());
        floats.push(r.sojourn.max().to_bits());
    }
    floats.push(r.makespan.unwrap_or(-1.0).to_bits());
    (counters, floats)
}

fn run_with(cfg: &SimConfig, seed: u64, engine: EngineKind) -> SimResult {
    let mut cfg = cfg.clone();
    cfg.engine = engine;
    run(&cfg, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engines_agree_on_random_configs(
        n in 2usize..24,
        lambda in 0.2f64..0.9,
        policy in arb_policy(),
        service in arb_service(),
        seed in any::<u64>(),
    ) {
        let mut cfg = SimConfig::paper_default(n, lambda);
        cfg.policy = policy;
        cfg.service = service;
        cfg.horizon = 600.0;
        cfg.warmup = 60.0;
        let heap = run_with(&cfg, seed, EngineKind::Heap);
        let cal = run_with(&cfg, seed, EngineKind::Calendar);
        prop_assert_eq!(fingerprint(&heap), fingerprint(&cal));
    }

    /// Drained runs exercise the queue's emptying tail (the cursor
    /// hunting across ever-sparser windows) — the regime where a
    /// calendar bug would drop the final events and change makespan.
    #[test]
    fn engines_agree_on_drained_runs(
        n in 2usize..12,
        initial in 1usize..12,
        policy in arb_policy(),
        seed in any::<u64>(),
    ) {
        let mut cfg = SimConfig::paper_default(n, 0.0);
        cfg.lambda = 0.0;
        cfg.policy = policy;
        cfg.run_until_drained = true;
        cfg.initial_load = initial;
        cfg.warmup = 0.0;
        let heap = run_with(&cfg, seed, EngineKind::Heap);
        let cal = run_with(&cfg, seed, EngineKind::Calendar);
        prop_assert_eq!(heap.tasks_completed, cal.tasks_completed);
        prop_assert_eq!(
            heap.makespan.map(f64::to_bits),
            cal.makespan.map(f64::to_bits)
        );
        prop_assert_eq!(fingerprint(&heap), fingerprint(&cal));
    }
}
