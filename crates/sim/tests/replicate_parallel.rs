//! Determinism of parallel replication under real worker-stealing.
//!
//! `replicate` fans runs out over the work-stealing executor; each run
//! is seeded independently and results land in slot-addressed,
//! input-ordered storage. Parallelism may therefore change *when* a
//! replication executes — which worker, in what wall order — but never
//! *what* it computes. These tests pin that: for fixed seeds the
//! aggregates are **bit-identical** (`f64::to_bits`, not an epsilon)
//! across a sequential baseline and pools of 1, 2, and 8 workers.

use loadsteal_sim::{replicate, run_seeded, ReplicateResult, SimConfig};

fn quick_cfg() -> SimConfig {
    let mut cfg = SimConfig::paper_default(16, 0.7);
    cfg.horizon = 1_500.0;
    cfg.warmup = 150.0;
    cfg
}

/// Fingerprint every numeric channel of the aggregate at full bit
/// precision.
fn fingerprint(r: &ReplicateResult) -> Vec<u64> {
    let mut bits = vec![r.mean_sojourn().to_bits()];
    bits.push(r.sojourn_ci().half_width.to_bits());
    for v in r.mean_load_tails() {
        bits.push(v.to_bits());
    }
    for run in &r.runs {
        bits.push(run.seed);
        bits.push(run.tasks_arrived);
        bits.push(run.tasks_completed);
        bits.push(run.steal_attempts);
        bits.push(run.sojourn.mean().to_bits());
        for &t in &run.load_tails {
            bits.push(t.to_bits());
        }
    }
    bits
}

#[test]
fn parallel_replicate_is_bit_identical_across_worker_counts() {
    let cfg = quick_cfg();
    let runs = 6;
    let seed = 42;

    // Sequential ground truth: drive the engine directly, no pool.
    let sequential: Vec<u64> = {
        let results: Vec<_> = (0..runs as u64)
            .map(|i| run_seeded(&cfg, seed + i))
            .collect();
        results
            .iter()
            .flat_map(|r| {
                let mut b = vec![r.seed, r.tasks_completed, r.sojourn.mean().to_bits()];
                b.extend(r.load_tails.iter().map(|t| t.to_bits()));
                b
            })
            .collect()
    };

    for workers in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(workers)
            .build()
            .expect("pool builds");
        let agg = pool.install(|| replicate(&cfg, runs, seed));
        assert_eq!(agg.runs.len(), runs);
        // Per-run values match the sequential engine bit for bit.
        let got: Vec<u64> = agg
            .runs
            .iter()
            .flat_map(|r| {
                let mut b = vec![r.seed, r.tasks_completed, r.sojourn.mean().to_bits()];
                b.extend(r.load_tails.iter().map(|t| t.to_bits()));
                b
            })
            .collect();
        assert_eq!(
            got, sequential,
            "{workers}-worker replicate diverged from the sequential engine"
        );
    }
}

#[test]
fn aggregates_agree_between_pool_sizes_and_repeats() {
    let cfg = quick_cfg();
    let runs = 5;
    let seed = 7;
    let mut prints = Vec::new();
    for workers in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(workers)
            .build()
            .expect("pool builds");
        // Twice on the same pool: scheduling order varies, values don't.
        let a = pool.install(|| replicate(&cfg, runs, seed));
        let b = pool.install(|| replicate(&cfg, runs, seed));
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "repeat on the {workers}-worker pool was not reproducible"
        );
        prints.push(fingerprint(&a));
    }
    assert_eq!(prints[0], prints[1], "1- vs 2-worker aggregates diverged");
    assert_eq!(prints[1], prints[2], "2- vs 8-worker aggregates diverged");
}

#[test]
fn global_pool_matches_pinned_pools() {
    let cfg = quick_cfg();
    let on_global = replicate(&cfg, 4, 1234);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(3)
        .build()
        .expect("pool builds");
    let pinned = pool.install(|| replicate(&cfg, 4, 1234));
    assert_eq!(fingerprint(&on_global), fingerprint(&pinned));
}
