//! Property tests of the calendar queue against the `BinaryHeap`
//! oracle, in isolation from the engine.
//!
//! The contract under test is the [`EventQueue`] one: pops come out in
//! exactly the pinned event total order ([`event_order`]: time, then
//! sequence) — the heap enforces it by comparison, the calendar by
//! window arithmetic plus bucket scans, and any disagreement between
//! the two is a calendar bug by definition. The generators lean on the
//! structures the calendar actually has: clustered times (many events
//! per window), exact ties (sequence-number tie-breaks), sparse
//! far-future outliers (year rollovers and the `pop_direct` fallback),
//! and interleaved push/pop (cursor advancement and the self-tuning
//! rebuilds).

use proptest::prelude::*;

use loadsteal_sim::{CalendarQueue, Event, EventKind, EventQueue};

fn ev(time: f64, seq: u64) -> Event {
    Event {
        time,
        seq,
        kind: EventKind::ExtArrival { proc: 0 },
    }
}

/// Event times with deliberate structure. The compat `prop_oneof!` is
/// unweighted, so the dense-cluster arm is repeated to dominate the
/// mix while ties and far-future jumps stay regular visitors.
fn arb_times() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            (0.0f64..50.0).prop_map(|t| t),
            (0.0f64..50.0).prop_map(|t| t),
            (0.0f64..50.0).prop_map(|t| t),
            // Exact ties: a small set of representable values.
            (0u32..40).prop_map(|k| k as f64 * 1.25),
            // Sparse far future: many empty years.
            (1.0e3f64..1.0e6).prop_map(|t| t),
        ],
        1..400,
    )
}

fn drain_both(cal: &mut CalendarQueue, heap: &mut std::collections::BinaryHeap<Event>) {
    loop {
        let (c, h) = (cal.pop(), EventQueue::pop(heap));
        match (c, h) {
            (None, None) => break,
            (c, h) => {
                let c = c.expect("calendar drained before the oracle");
                let h = h.expect("oracle drained before the calendar");
                assert_eq!(
                    (c.time.to_bits(), c.seq),
                    (h.time.to_bits(), h.seq),
                    "pop order diverged"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bulk load, then drain: the calendar's full pop sequence equals
    /// the heap's, including tie-breaks (equal times are generated
    /// often; sequence numbers are the insertion order, so stability
    /// is directly observable).
    #[test]
    fn bulk_drain_matches_heap_oracle(times in arb_times()) {
        let mut cal = CalendarQueue::with_hint(times.len());
        let mut heap = std::collections::BinaryHeap::with_hint(times.len());
        for (i, &t) in times.iter().enumerate() {
            cal.push(ev(t, i as u64));
            heap.push(ev(t, i as u64));
        }
        prop_assert_eq!(cal.len(), EventQueue::len(&heap));
        drain_both(&mut cal, &mut heap);
    }

    /// Interleaved pushes and pops like the engine's advancing-time
    /// usage, plus occasional far-ahead pushes. Every intermediate pop
    /// and every intermediate length must agree.
    #[test]
    fn interleaved_ops_match_heap_oracle(
        ops in prop::collection::vec(
            prop_oneof![
                (0.0f64..100.0).prop_map(Some),
                (0.0f64..100.0).prop_map(Some),
                (0.0f64..100.0).prop_map(Some),
                (500.0f64..2.0e4).prop_map(Some),
                Just(None),
                Just(None),
            ],
            1..600,
        ),
    ) {
        let mut cal = CalendarQueue::new();
        let mut heap = std::collections::BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0.0f64;
        for op in ops {
            match op {
                Some(dt) => {
                    // Times advance with the drained frontier, like the
                    // engine scheduling at `now + dt`.
                    let t = now + dt;
                    cal.push(ev(t, seq));
                    EventQueue::push(&mut heap, ev(t, seq));
                    seq += 1;
                }
                None => {
                    let (c, h) = (cal.pop(), EventQueue::pop(&mut heap));
                    match (c, h) {
                        (None, None) => {}
                        (Some(c), Some(h)) => {
                            prop_assert_eq!(
                                (c.time.to_bits(), c.seq),
                                (h.time.to_bits(), h.seq)
                            );
                            now = c.time;
                        }
                        (c, h) => panic!("emptiness diverged: calendar {c:?} vs heap {h:?}"),
                    }
                }
            }
            prop_assert_eq!(cal.len(), EventQueue::len(&heap));
        }
        drain_both(&mut cal, &mut heap);
    }

    /// Epoch-style lazy cancellation over both queues: a driver pushes
    /// probe events carrying `(proc, epoch)`, bumps per-proc epochs as
    /// it goes, and discards stale pops — the engine's invalidation
    /// idiom. Both queues must accept exactly the same events in the
    /// same order; in particular a cancelled (stale-epoch) event must
    /// never be delivered where the oracle would have skipped it.
    #[test]
    fn epoch_invalidation_never_resurrects_cancelled_events(
        ops in prop::collection::vec(
            (0u32..4u32, 0.0f64..80.0, 0u8..4u8),
            1..300,
        ),
    ) {
        let mut cal = CalendarQueue::new();
        let mut heap = std::collections::BinaryHeap::new();
        let mut epoch = [0u32; 4];
        let mut seq = 0u64;
        let mut now = 0.0f64;
        let mut accepted_cal: Vec<(u64, u64)> = Vec::new();
        let mut accepted_heap: Vec<(u64, u64)> = Vec::new();
        for (proc, dt, action) in ops {
            match action {
                // Schedule a probe at the proc's current epoch.
                0 | 1 => {
                    let k = EventKind::StealProbe { proc, epoch: epoch[proc as usize] };
                    let e = Event { time: now + dt, seq, kind: k };
                    cal.push(e);
                    EventQueue::push(&mut heap, e);
                    seq += 1;
                }
                // Invalidate everything pending for this proc.
                2 => epoch[proc as usize] += 1,
                // Pop one event from each queue, engine-style: stale
                // epochs are discarded, fresh ones accepted.
                _ => {
                    for (q, accepted) in [
                        (cal.pop(), &mut accepted_cal),
                        (EventQueue::pop(&mut heap), &mut accepted_heap),
                    ] {
                        if let Some(e) = q {
                            now = now.max(e.time);
                            if let EventKind::StealProbe { proc, epoch: ep } = e.kind {
                                if ep == epoch[proc as usize] {
                                    accepted.push((e.time.to_bits(), e.seq));
                                }
                            }
                        }
                    }
                    prop_assert_eq!(accepted_cal.last(), accepted_heap.last());
                }
            }
        }
        // Drain what's left under a frozen epoch table.
        loop {
            let (c, h) = (cal.pop(), EventQueue::pop(&mut heap));
            if c.is_none() && h.is_none() {
                break;
            }
            let (c, h) = (c.unwrap(), h.unwrap());
            prop_assert_eq!((c.time.to_bits(), c.seq), (h.time.to_bits(), h.seq));
        }
        prop_assert_eq!(accepted_cal, accepted_heap);
    }

    /// Bucket rollover: events whole "years" apart land in the same
    /// bucket with different stored windows. The earlier window must
    /// always drain first — a pop must never skip into the next year
    /// while the current one still has events.
    #[test]
    fn same_bucket_different_year_pops_in_time_order(
        base in 0.0f64..10.0,
        years in prop::collection::vec(0u64..5u64, 2..40),
    ) {
        // Default sizing: 16 buckets × width 1.0 ⇒ a year is 16 s.
        let mut cal = CalendarQueue::new();
        let mut heap = std::collections::BinaryHeap::new();
        for (i, &y) in years.iter().enumerate() {
            let t = base + 16.0 * y as f64;
            cal.push(ev(t, i as u64));
            EventQueue::push(&mut heap, ev(t, i as u64));
        }
        drain_both(&mut cal, &mut heap);
    }
}
