//! Property-based tests on simulator invariants across random
//! configurations: conservation laws, tail monotonicity, determinism.

use proptest::prelude::*;

use loadsteal_queueing::ServiceDistribution;
use loadsteal_sim::{run, SimConfig, StealPolicy};

fn arb_policy() -> impl Strategy<Value = StealPolicy> {
    prop_oneof![
        Just(StealPolicy::None),
        (2usize..6, 1usize..3).prop_map(|(t, d)| StealPolicy::OnEmpty {
            threshold: t,
            choices: d,
            batch: 1,
        }),
        (4usize..8).prop_map(|t| StealPolicy::OnEmpty {
            threshold: t,
            choices: 1,
            batch: t / 2,
        }),
        (0usize..2, 2usize..3).prop_map(|(b, extra)| StealPolicy::Preemptive {
            begin_at: b,
            rel_threshold: b + extra,
        }),
        (0.5f64..4.0, 2usize..4).prop_map(|(r, t)| StealPolicy::Repeated {
            rate: r,
            threshold: t,
        }),
    ]
}

fn arb_service() -> impl Strategy<Value = ServiceDistribution> {
    prop_oneof![
        Just(ServiceDistribution::unit_exponential()),
        Just(ServiceDistribution::unit_deterministic()),
        (2u32..12).prop_map(ServiceDistribution::unit_erlang),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn invariants_hold_for_random_configs(
        n in 2usize..24,
        lambda in 0.2f64..0.9,
        policy in arb_policy(),
        service in arb_service(),
        seed in any::<u64>(),
    ) {
        let mut cfg = SimConfig::paper_default(n, lambda);
        cfg.policy = policy;
        cfg.service = service;
        cfg.horizon = 800.0;
        cfg.warmup = 100.0;
        let r = run(&cfg, seed);

        // Conservation: completions never exceed arrivals.
        prop_assert!(r.tasks_completed <= r.tasks_arrived);
        // Tails: start at 1, non-increasing, within [0, 1].
        prop_assert!((r.load_tails[0] - 1.0).abs() < 1e-9);
        for w in r.load_tails.windows(2) {
            prop_assert!(w[0] + 1e-12 >= w[1]);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&w[1]));
        }
        // Successes never exceed attempts; migrations imply successes.
        prop_assert!(r.steal_successes <= r.steal_attempts);
        if r.tasks_migrated > 0 {
            prop_assert!(r.steal_successes > 0);
        }
        // Sojourn times are at least 0 and the mean is finite.
        if r.sojourn.count() > 0 {
            prop_assert!(r.sojourn.min() >= 0.0);
            prop_assert!(r.mean_sojourn().is_finite());
        }
    }

    #[test]
    fn identical_seeds_are_bitwise_reproducible(
        n in 2usize..16,
        lambda in 0.3f64..0.9,
        seed in any::<u64>(),
    ) {
        let cfg = SimConfig::paper_default(n, lambda);
        let mut cfg = cfg;
        cfg.horizon = 500.0;
        cfg.warmup = 50.0;
        let a = run(&cfg, seed);
        let b = run(&cfg, seed);
        prop_assert_eq!(a.tasks_arrived, b.tasks_arrived);
        prop_assert_eq!(a.tasks_completed, b.tasks_completed);
        prop_assert_eq!(a.steal_attempts, b.steal_attempts);
        prop_assert!(a.mean_sojourn() == b.mean_sojourn());
    }

    #[test]
    fn drained_runs_complete_every_task(
        n in 2usize..12,
        initial in 1usize..12,
        seed in any::<u64>(),
    ) {
        let mut cfg = SimConfig::paper_default(n, 0.0);
        cfg.lambda = 0.0;
        cfg.run_until_drained = true;
        cfg.initial_load = initial;
        cfg.warmup = 0.0;
        let r = run(&cfg, seed);
        prop_assert_eq!(r.tasks_completed, (n * initial) as u64);
        prop_assert!(r.makespan.is_some());
        prop_assert!(r.makespan.unwrap() > 0.0);
    }
}
