//! Simulation configuration: the dynamic work-stealing system of the
//! paper with every variant it analyzes.

use loadsteal_queueing::ServiceDistribution;

/// How an idle (or nearly idle) processor acquires work.
#[derive(Debug, Clone, PartialEq)]
pub enum StealPolicy {
    /// No stealing: `n` independent queues (the paper's eq. (1) baseline).
    None,
    /// Steal when the queue empties (Sections 2.2–2.3, 3.3, 3.4).
    ///
    /// The thief samples `choices` victims independently and uniformly at
    /// random, picks the most loaded, and — if that victim holds at least
    /// `threshold` tasks — takes `batch` tasks from the tail of its
    /// queue. The paper's simple WS algorithm is
    /// `threshold = 2, choices = 1, batch = 1`.
    OnEmpty {
        /// Minimum victim load `T ≥ 2` for a steal to happen.
        threshold: usize,
        /// Number of iid victim candidates `d ≥ 1` (Section 3.3).
        choices: usize,
        /// Tasks taken per successful steal, `k ≥ 1`, `2k ≤ T`
        /// (Section 3.4).
        batch: usize,
    },
    /// Preemptive stealing (Section 2.4): when a service completion
    /// leaves `j ≤ begin_at` tasks, attempt to steal one task from a
    /// victim with at least `j + rel_threshold` tasks.
    Preemptive {
        /// `B`: start stealing when the queue drops to this many tasks.
        begin_at: usize,
        /// `T`: required victim surplus over the thief's current load.
        rel_threshold: usize,
    },
    /// Repeated attempts (Section 2.5): empty processors retry failed
    /// steals at exponential rate `rate`; a victim must hold at least
    /// `threshold` tasks.
    Repeated {
        /// Retry rate `r > 0` per empty processor.
        rate: f64,
        /// Minimum victim load `T ≥ 2`.
        threshold: usize,
    },
    /// Pairwise rebalancing (Section 3.4, after Rudolph–Slivkin-Allalouf–
    /// Upfal): at rate `rate(i)` a processor with `i` tasks picks a
    /// uniform partner and the two equalize their loads (the initially
    /// larger keeps the ceiling).
    Rebalance {
        /// Rate at which a processor initiates a rebalance.
        rate: RebalanceRate,
    },
    /// Sender-initiated work *sharing* (the paper's Introduction foil):
    /// an arrival landing on a processor already holding at least
    /// `send_threshold` tasks probes one uniform target and is forwarded
    /// there if the target holds fewer than `recv_threshold` tasks.
    Share {
        /// Forward arrivals when the local queue is at least this long.
        send_threshold: usize,
        /// The probed target accepts if its queue is shorter than this.
        recv_threshold: usize,
    },
}

impl StealPolicy {
    /// The paper's simple WS policy (steal one task whenever a random
    /// victim has at least two).
    pub fn simple_ws() -> Self {
        Self::OnEmpty {
            threshold: 2,
            choices: 1,
            batch: 1,
        }
    }
}

/// Load-dependent rebalance initiation rate `r(i)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RebalanceRate {
    /// `r(i) = rate` for every processor regardless of load.
    Constant(f64),
    /// `r(i) = rate · i`: busier processors rebalance more often.
    PerTask(f64),
}

impl RebalanceRate {
    /// Evaluate `r(i)`.
    #[inline]
    pub fn rate(&self, load: usize) -> f64 {
        match *self {
            Self::Constant(r) => r,
            Self::PerTask(r) => r * load as f64,
        }
    }
}

/// Which future-event-list implementation orders the simulation.
///
/// Both engines share one core (state layout, RNG call sites, recorder
/// semantics) and one event total-order ([`crate::event::event_order`]:
/// time, then sequence number), so a given `(SimConfig, seed)` produces
/// a bit-identical trace under either choice. The calendar queue is the
/// default because its push/pop cost is O(1) amortized instead of the
/// heap's O(log m); the heap remains available as a differential-testing
/// oracle and a fallback for pathological event-time distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Binary min-heap future-event list (the original engine).
    Heap,
    /// Calendar-queue (timing-wheel) future-event list.
    #[default]
    Calendar,
}

impl EngineKind {
    /// Parse a CLI spelling (`heap` or `calendar`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "heap" => Ok(Self::Heap),
            "calendar" => Ok(Self::Calendar),
            other => Err(format!("unknown engine '{other}' (expected heap|calendar)")),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Heap => write!(f, "heap"),
            Self::Calendar => write!(f, "calendar"),
        }
    }
}

/// Time for a stolen task to move from victim to thief (Section 3.2).
/// While a transfer is outstanding the thief does not steal again.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferTime {
    /// Transfer-duration distribution; the paper uses `Exp(rate r)`.
    pub dist: ServiceDistribution,
}

impl TransferTime {
    /// Exponential transfers with the given rate (paper's default form).
    pub fn exponential(rate: f64) -> Self {
        Self {
            dist: ServiceDistribution::Exponential { rate },
        }
    }
}

/// Processor speed profile (Section 3.5).
#[derive(Debug, Clone, PartialEq)]
pub enum SpeedProfile {
    /// All processors serve at rate 1.
    Homogeneous,
    /// Speed classes `(fraction, speed)`; fractions must sum to 1.
    /// Processor `p` belongs to the class covering index `p` when the
    /// fractions are laid out contiguously over `0..n`.
    Classes(Vec<(f64, f64)>),
}

impl SpeedProfile {
    /// Mean service capacity per processor: `Σ fraction × speed`
    /// (1 for the homogeneous profile). Stability of a horizon run
    /// requires `λ` strictly below this.
    pub fn mean_capacity(&self) -> f64 {
        match self {
            Self::Homogeneous => 1.0,
            Self::Classes(classes) => classes.iter().map(|&(f, s)| f * s).sum(),
        }
    }

    /// Speed of processor `p` out of `n`.
    pub fn speed_of(&self, p: usize, n: usize) -> f64 {
        match self {
            Self::Homogeneous => 1.0,
            Self::Classes(classes) => {
                let mut boundary = 0.0;
                for &(frac, speed) in classes {
                    boundary += frac;
                    if (p as f64) < boundary * n as f64 - 1e-9 || boundary >= 1.0 {
                        return speed;
                    }
                }
                classes.last().map_or(1.0, |c| c.1)
            }
        }
    }
}

/// Full configuration of one simulated system.
///
/// ```
/// use loadsteal_sim::{SimConfig, StealPolicy};
/// let mut cfg = SimConfig::paper_default(128, 0.9);
/// cfg.policy = StealPolicy::OnEmpty { threshold: 4, choices: 2, batch: 2 };
/// cfg.validate().unwrap();
/// // Inconsistent knobs are caught before a long run starts:
/// cfg.policy = StealPolicy::OnEmpty { threshold: 4, choices: 2, batch: 3 };
/// assert!(cfg.validate().is_err()); // 2k > T
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of processors `n`.
    pub n: usize,
    /// External Poisson arrival rate per processor (`λ` or `λ_ext`).
    pub lambda: f64,
    /// Internal arrival rate (`λ_int`): new tasks spawned by a processor
    /// while it has at least one task (Section 3.5). Usually 0.
    pub internal_lambda: f64,
    /// Service requirement distribution (mean 1 in the paper).
    pub service: ServiceDistribution,
    /// Inter-arrival distribution per processor. `None` means
    /// exponential with rate `lambda` (Poisson arrivals, the paper's
    /// base model); `Some(d)` must have mean `1/lambda` so Little's-law
    /// accounting stays consistent (e.g. Erlang stages approximating
    /// constant inter-arrival times, Section 3.1).
    pub arrival: Option<ServiceDistribution>,
    /// Stealing policy.
    pub policy: StealPolicy,
    /// Optional transfer delay for stolen tasks.
    pub transfer: Option<TransferTime>,
    /// Processor speed profile.
    pub speeds: SpeedProfile,
    /// Tasks pre-loaded on every processor at `t = 0` (static
    /// experiments; their arrival time is 0).
    pub initial_load: usize,
    /// Simulated time horizon.
    pub horizon: f64,
    /// Tasks completing before this time are not measured (the paper
    /// throws away the first 10% of each run).
    pub warmup: f64,
    /// Whether a thief's uniform victim draw may hit itself (a self-draw
    /// always fails to steal). `true` matches the mean-field probability
    /// `s_T` exactly; `false` matches a "choose among the other n − 1"
    /// reading.
    pub allow_self_victim: bool,
    /// Stop when the system has drained (no queued or in-flight tasks).
    /// Requires `lambda == 0`; used for makespan experiments.
    pub run_until_drained: bool,
    /// Record instantaneous occupancy tails every this many simulated
    /// seconds (for transient/convergence studies against the ODE
    /// trajectory). `None` disables snapshots.
    pub snapshot_interval: Option<f64>,
    /// Emit a progress heartbeat every this many processed events when a
    /// recorder is attached; `0` disables heartbeats entirely.
    pub heartbeat_every: u64,
    /// Collect post-warmup sojourn times into a mergeable quantile
    /// digest (reported in [`crate::SimResult::sojourn_digest`]).
    /// Off by default: the digest costs one branch plus a bucket
    /// increment per completion, which benchmark configurations avoid.
    pub sojourn_digest: bool,
    /// Emit per-job lifecycle events (`job_arrival`, `job_migrate`,
    /// `job_service_start`, `job_completion`) to the attached recorder,
    /// so traces can be decomposed into per-job sojourn components.
    /// Off by default: the identity counter always runs (it draws no
    /// randomness), but event construction is skipped entirely, keeping
    /// the disabled path inside the benchmark overhead budget.
    pub trace_jobs: bool,
    /// Emit a `tail_sample` event carrying the instantaneous empirical
    /// tail vector `ŝ₁…ŝ_k` every this many simulated seconds (for
    /// live transient comparison against the ODE trajectory). `None`
    /// disables sampling; the disabled path shares `trace_jobs`'
    /// benchmark budget.
    pub sample_tails: Option<f64>,
    /// Future-event-list implementation. Pure mechanism: any value
    /// yields the same trace for the same seed (see [`EngineKind`]).
    pub engine: EngineKind,
}

/// Default heartbeat cadence (every 65,536 processed events).
pub const DEFAULT_HEARTBEAT_EVERY: u64 = 1 << 16;

/// Typed reason a [`SimConfig`] failed [`SimConfig::validate`].
///
/// Each variant names one inconsistency; [`std::fmt::Display`] renders
/// the same human-readable diagnostics callers saw when `validate`
/// returned bare strings, so `panic!("... {e}")` call sites and CLI
/// error output are unchanged.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `n == 0`: there is nothing to simulate.
    ZeroProcessors,
    /// `n` exceeds the engine's u32 processor-index space
    /// (`n > 2³² − 1`); the struct-of-arrays core addresses processors
    /// with 32-bit indices.
    TooManyProcessors(usize),
    /// `λ` is negative, NaN, or infinite.
    BadLambda(f64),
    /// `λ` is at or above the aggregate service capacity
    /// `Σ fraction × speed`, so queues grow without bound and horizon
    /// statistics are meaningless.
    UnstableLambda {
        /// The offending arrival rate.
        lambda: f64,
        /// Mean per-processor service capacity of the speed profile.
        capacity: f64,
    },
    /// `λ_int` is negative, NaN, or infinite.
    BadInternalLambda(f64),
    /// A service, arrival, or transfer distribution rejected its own
    /// parameters (message from [`ServiceDistribution::validate`]).
    Distribution(String),
    /// An explicit arrival distribution was given with `λ ≤ 0`.
    ArrivalNeedsLambda,
    /// The arrival distribution's mean is not `1/λ`.
    ArrivalMeanMismatch {
        /// Mean of the supplied inter-arrival distribution.
        mean: f64,
        /// The configured arrival rate.
        lambda: f64,
    },
    /// Steal threshold `T < 2` (a steal from a 1-task victim is a swap).
    ThresholdTooLow,
    /// `choices == 0`: no victim is ever sampled.
    ZeroChoices,
    /// Batch size outside `1 ≤ k ≤ T/2` (Section 3.4's constraint).
    BadBatch {
        /// The offending batch size `k`.
        batch: usize,
        /// The configured steal threshold `T`.
        threshold: usize,
    },
    /// Transfer delays combined with multi-task steals.
    TransferBatchSteals,
    /// Transfer delays combined with a policy that does not model them;
    /// the payload names the policy.
    TransferNotModeled(&'static str),
    /// Preemptive relative threshold `< 2`.
    BadPreemptiveThreshold,
    /// Repeated-steal retry rate not a positive finite number.
    BadRepeatedRate,
    /// A work-sharing threshold of zero.
    BadShareThresholds,
    /// Rebalance rate not a positive finite number.
    BadRebalanceRate,
    /// `SpeedProfile::Classes` with no classes.
    EmptySpeedClasses,
    /// Speed-class fractions do not sum to 1 (payload: actual sum).
    SpeedFractionsSum(f64),
    /// A speed class with a negative fraction or non-positive speed.
    BadSpeedClass,
    /// Snapshot interval not a positive finite number.
    BadSnapshotInterval(f64),
    /// Tail-sample interval not a positive finite number.
    BadSampleInterval(f64),
    /// Drained mode with external arrivals still switched on.
    DrainedNeedsZeroLambda(f64),
    /// Drained mode with no initial load and no internal arrivals.
    DrainedEndsImmediately,
    /// Horizon not a positive finite number.
    BadHorizon(f64),
    /// Warmup outside `[0, horizon)`.
    BadWarmup {
        /// The offending warmup time.
        warmup: f64,
        /// The configured horizon.
        horizon: f64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ZeroProcessors => write!(f, "need at least one processor"),
            Self::TooManyProcessors(n) => write!(
                f,
                "n = {n} exceeds the engine's 32-bit processor index space \
                 (max {})",
                u32::MAX
            ),
            Self::BadLambda(l) => write!(f, "lambda must be finite and >= 0, got {l}"),
            Self::UnstableLambda { lambda, capacity } => write!(
                f,
                "lambda {lambda} is at or above the mean service capacity {capacity}; \
                 the system is unstable and horizon statistics diverge"
            ),
            Self::BadInternalLambda(l) => {
                write!(f, "internal_lambda must be finite and >= 0, got {l}")
            }
            Self::Distribution(msg) => write!(f, "{msg}"),
            Self::ArrivalNeedsLambda => {
                write!(f, "an explicit arrival distribution needs lambda > 0")
            }
            Self::ArrivalMeanMismatch { mean, lambda } => write!(
                f,
                "arrival distribution mean {mean} is inconsistent with lambda {lambda} \
                 (need mean = 1/lambda)"
            ),
            Self::ThresholdTooLow => write!(f, "steal threshold must be >= 2"),
            Self::ZeroChoices => write!(f, "need at least one victim choice"),
            Self::BadBatch { batch, threshold } => write!(
                f,
                "batch k must satisfy 1 <= k <= T/2 (got k = {batch}, T = {threshold})"
            ),
            Self::TransferBatchSteals => {
                write!(f, "transfer delays are modeled for single-task steals only")
            }
            Self::TransferNotModeled(policy) => {
                write!(f, "{policy} with transfer delays is not modeled")
            }
            Self::BadPreemptiveThreshold => {
                write!(f, "preemptive relative threshold must be >= 2")
            }
            Self::BadRepeatedRate => write!(f, "repeated steal rate must be > 0"),
            Self::BadShareThresholds => write!(f, "sharing thresholds must be >= 1"),
            Self::BadRebalanceRate => write!(f, "rebalance rate must be > 0"),
            Self::EmptySpeedClasses => write!(f, "speed classes must be non-empty"),
            Self::SpeedFractionsSum(total) => {
                write!(f, "speed-class fractions must sum to 1, got {total}")
            }
            Self::BadSpeedClass => {
                write!(f, "speed-class fractions must be >= 0 and speeds > 0")
            }
            Self::BadSnapshotInterval(dt) => {
                write!(f, "snapshot interval must be > 0, got {dt}")
            }
            Self::BadSampleInterval(dt) => {
                write!(f, "tail-sample interval must be > 0, got {dt}")
            }
            Self::DrainedNeedsZeroLambda(l) => {
                write!(f, "drained mode requires lambda = 0, got {l}")
            }
            Self::DrainedEndsImmediately => {
                write!(f, "drained mode with no initial load ends immediately")
            }
            Self::BadHorizon(h) => write!(f, "horizon must be positive and finite, got {h}"),
            Self::BadWarmup { warmup, horizon } => write!(
                f,
                "warmup must lie in [0, horizon), got warmup {warmup} with horizon {horizon}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<String> for ConfigError {
    /// Lets distribution validators (which report plain strings) be
    /// `?`-propagated out of [`SimConfig::validate`].
    fn from(msg: String) -> Self {
        Self::Distribution(msg)
    }
}

impl SimConfig {
    /// A paper-default configuration: `n` processors, arrival rate
    /// `lambda`, unit-exponential service, simple WS stealing,
    /// 100,000 s horizon with 10,000 s warmup.
    pub fn paper_default(n: usize, lambda: f64) -> Self {
        Self {
            n,
            lambda,
            internal_lambda: 0.0,
            service: ServiceDistribution::unit_exponential(),
            arrival: None,
            policy: StealPolicy::simple_ws(),
            transfer: None,
            speeds: SpeedProfile::Homogeneous,
            initial_load: 0,
            horizon: 100_000.0,
            warmup: 10_000.0,
            allow_self_victim: true,
            run_until_drained: false,
            snapshot_interval: None,
            heartbeat_every: DEFAULT_HEARTBEAT_EVERY,
            sojourn_digest: false,
            trace_jobs: false,
            sample_tails: None,
            engine: EngineKind::default(),
        }
    }

    /// Validate the configuration; returns a typed [`ConfigError`]
    /// (whose `Display` is the human-readable reason) when it is
    /// inconsistent.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n == 0 {
            return Err(ConfigError::ZeroProcessors);
        }
        if self.n > u32::MAX as usize {
            return Err(ConfigError::TooManyProcessors(self.n));
        }
        if !(self.lambda >= 0.0 && self.lambda.is_finite()) {
            return Err(ConfigError::BadLambda(self.lambda));
        }
        if !(self.internal_lambda >= 0.0 && self.internal_lambda.is_finite()) {
            return Err(ConfigError::BadInternalLambda(self.internal_lambda));
        }
        self.service.validate()?;
        if let Some(arrival) = &self.arrival {
            arrival.validate()?;
            if self.lambda <= 0.0 {
                return Err(ConfigError::ArrivalNeedsLambda);
            }
            let mean = arrival.mean();
            if (mean * self.lambda - 1.0).abs() > 1e-9 {
                return Err(ConfigError::ArrivalMeanMismatch {
                    mean,
                    lambda: self.lambda,
                });
            }
        }
        if let Some(t) = &self.transfer {
            t.dist.validate()?;
        }
        match &self.policy {
            StealPolicy::None => {}
            StealPolicy::OnEmpty {
                threshold,
                choices,
                batch,
            } => {
                if *threshold < 2 {
                    return Err(ConfigError::ThresholdTooLow);
                }
                if *choices == 0 {
                    return Err(ConfigError::ZeroChoices);
                }
                if *batch == 0 || batch * 2 > *threshold {
                    return Err(ConfigError::BadBatch {
                        batch: *batch,
                        threshold: *threshold,
                    });
                }
                if self.transfer.is_some() && *batch != 1 {
                    return Err(ConfigError::TransferBatchSteals);
                }
            }
            StealPolicy::Preemptive {
                rel_threshold: t, ..
            } => {
                if *t < 2 {
                    return Err(ConfigError::BadPreemptiveThreshold);
                }
            }
            StealPolicy::Repeated { rate, threshold } => {
                if !rate.is_finite() || *rate <= 0.0 {
                    return Err(ConfigError::BadRepeatedRate);
                }
                if *threshold < 2 {
                    return Err(ConfigError::ThresholdTooLow);
                }
                if self.transfer.is_some() {
                    return Err(ConfigError::TransferNotModeled("repeated stealing"));
                }
            }
            StealPolicy::Share {
                send_threshold,
                recv_threshold,
            } => {
                if *send_threshold == 0 || *recv_threshold == 0 {
                    return Err(ConfigError::BadShareThresholds);
                }
                if self.transfer.is_some() {
                    return Err(ConfigError::TransferNotModeled("sharing"));
                }
            }
            StealPolicy::Rebalance { rate } => {
                let r = match rate {
                    RebalanceRate::Constant(r) | RebalanceRate::PerTask(r) => *r,
                };
                if !(r > 0.0 && r.is_finite()) {
                    return Err(ConfigError::BadRebalanceRate);
                }
                if self.transfer.is_some() {
                    return Err(ConfigError::TransferNotModeled("rebalancing"));
                }
            }
        }
        if let SpeedProfile::Classes(classes) = &self.speeds {
            if classes.is_empty() {
                return Err(ConfigError::EmptySpeedClasses);
            }
            let total: f64 = classes.iter().map(|c| c.0).sum();
            if (total - 1.0).abs() > 1e-9 {
                return Err(ConfigError::SpeedFractionsSum(total));
            }
            if classes.iter().any(|c| c.0 < 0.0 || c.1 <= 0.0) {
                return Err(ConfigError::BadSpeedClass);
            }
        }
        if let Some(dt) = self.snapshot_interval {
            if !(dt > 0.0 && dt.is_finite()) {
                return Err(ConfigError::BadSnapshotInterval(dt));
            }
        }
        if let Some(dt) = self.sample_tails {
            if !(dt > 0.0 && dt.is_finite()) {
                return Err(ConfigError::BadSampleInterval(dt));
            }
        }
        if self.run_until_drained {
            if self.lambda > 0.0 {
                return Err(ConfigError::DrainedNeedsZeroLambda(self.lambda));
            }
            if self.initial_load == 0 && self.internal_lambda == 0.0 {
                return Err(ConfigError::DrainedEndsImmediately);
            }
        } else {
            let capacity = self.speeds.mean_capacity();
            if self.lambda >= capacity {
                return Err(ConfigError::UnstableLambda {
                    lambda: self.lambda,
                    capacity,
                });
            }
            if !(self.horizon > 0.0 && self.horizon.is_finite()) {
                return Err(ConfigError::BadHorizon(self.horizon));
            }
            if !(0.0..self.horizon).contains(&self.warmup) {
                return Err(ConfigError::BadWarmup {
                    warmup: self.warmup,
                    horizon: self.horizon,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        SimConfig::paper_default(128, 0.9).validate().unwrap();
    }

    #[test]
    fn rejects_bad_thresholds() {
        let mut cfg = SimConfig::paper_default(8, 0.5);
        cfg.policy = StealPolicy::OnEmpty {
            threshold: 1,
            choices: 1,
            batch: 1,
        };
        assert!(cfg.validate().is_err());
        cfg.policy = StealPolicy::OnEmpty {
            threshold: 4,
            choices: 1,
            batch: 3, // 2k > T
        };
        assert!(cfg.validate().is_err());
        cfg.policy = StealPolicy::OnEmpty {
            threshold: 4,
            choices: 1,
            batch: 2,
        };
        cfg.validate().unwrap();
    }

    #[test]
    fn typed_errors_for_nonsensical_configs() {
        assert_eq!(
            SimConfig::paper_default(0, 0.5).validate(),
            Err(ConfigError::ZeroProcessors)
        );
        assert_eq!(
            SimConfig::paper_default(8, -0.1).validate(),
            Err(ConfigError::BadLambda(-0.1))
        );
        assert!(matches!(
            SimConfig::paper_default(8, f64::NAN).validate(),
            Err(ConfigError::BadLambda(l)) if l.is_nan()
        ));
        let mut cfg = SimConfig::paper_default(8, 0.5);
        cfg.speeds = SpeedProfile::Classes(vec![]);
        assert_eq!(cfg.validate(), Err(ConfigError::EmptySpeedClasses));
    }

    #[test]
    fn rejects_unstable_lambda() {
        // λ = 1 saturates unit-speed processors: no stationary regime.
        assert_eq!(
            SimConfig::paper_default(8, 1.0).validate(),
            Err(ConfigError::UnstableLambda {
                lambda: 1.0,
                capacity: 1.0
            })
        );
        // Drained mode has no arrivals, so no stability requirement.
        let mut drained = SimConfig::paper_default(8, 0.0);
        drained.run_until_drained = true;
        drained.initial_load = 10;
        drained.validate().unwrap();
    }

    #[test]
    fn fast_speed_classes_raise_the_stability_ceiling() {
        // The heterogeneous figure drives λ = 0.9 into a profile of
        // aggregate capacity 1.15; λ may exceed 1 there, but not 1.15.
        let mut cfg = SimConfig::paper_default(8, 1.05);
        cfg.speeds = SpeedProfile::Classes(vec![(0.5, 1.5), (0.5, 0.8)]);
        assert_eq!(cfg.speeds.mean_capacity(), 1.15);
        cfg.validate().unwrap();
        cfg.lambda = 1.15;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::UnstableLambda { .. })
        ));
    }

    #[test]
    fn error_display_keeps_legacy_wording() {
        assert_eq!(
            ConfigError::ZeroProcessors.to_string(),
            "need at least one processor"
        );
        assert_eq!(
            ConfigError::BadBatch {
                batch: 3,
                threshold: 4
            }
            .to_string(),
            "batch k must satisfy 1 <= k <= T/2 (got k = 3, T = 4)"
        );
        assert_eq!(
            ConfigError::SpeedFractionsSum(0.9).to_string(),
            "speed-class fractions must sum to 1, got 0.9"
        );
    }

    #[test]
    fn rejects_bad_sample_interval() {
        let mut cfg = SimConfig::paper_default(8, 0.5);
        cfg.sample_tails = Some(0.0);
        assert_eq!(cfg.validate(), Err(ConfigError::BadSampleInterval(0.0)));
        cfg.sample_tails = Some(f64::INFINITY);
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::BadSampleInterval(_))
        ));
        cfg.sample_tails = Some(0.5);
        cfg.validate().unwrap();
    }

    #[test]
    fn rejects_transfer_with_batch_steals() {
        let mut cfg = SimConfig::paper_default(8, 0.5);
        cfg.transfer = Some(TransferTime::exponential(0.25));
        cfg.policy = StealPolicy::OnEmpty {
            threshold: 4,
            choices: 1,
            batch: 2,
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn drained_mode_requires_zero_lambda() {
        let mut cfg = SimConfig::paper_default(8, 0.5);
        cfg.run_until_drained = true;
        cfg.initial_load = 10;
        assert!(cfg.validate().is_err());
        cfg.lambda = 0.0;
        cfg.validate().unwrap();
    }

    #[test]
    fn speed_classes_must_sum_to_one() {
        let mut cfg = SimConfig::paper_default(8, 0.5);
        cfg.speeds = SpeedProfile::Classes(vec![(0.5, 2.0), (0.4, 1.0)]);
        assert!(cfg.validate().is_err());
        cfg.speeds = SpeedProfile::Classes(vec![(0.5, 2.0), (0.5, 1.0)]);
        cfg.validate().unwrap();
    }

    #[test]
    fn speed_of_assigns_contiguous_classes() {
        let profile = SpeedProfile::Classes(vec![(0.25, 2.0), (0.75, 1.0)]);
        let n = 8;
        let speeds: Vec<f64> = (0..n).map(|p| profile.speed_of(p, n)).collect();
        assert_eq!(speeds, vec![2.0, 2.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn homogeneous_speed_is_one() {
        assert_eq!(SpeedProfile::Homogeneous.speed_of(3, 10), 1.0);
    }

    #[test]
    fn rebalance_rate_forms() {
        assert_eq!(RebalanceRate::Constant(0.5).rate(7), 0.5);
        assert_eq!(RebalanceRate::PerTask(0.5).rate(4), 2.0);
    }

    #[test]
    fn engine_kind_parses_and_defaults_to_calendar() {
        assert_eq!(EngineKind::parse("heap").unwrap(), EngineKind::Heap);
        assert_eq!(EngineKind::parse("calendar").unwrap(), EngineKind::Calendar);
        assert!(EngineKind::parse("wheel").is_err());
        assert_eq!(
            SimConfig::paper_default(8, 0.5).engine,
            EngineKind::Calendar
        );
        assert_eq!(EngineKind::Heap.to_string(), "heap");
        assert_eq!(EngineKind::Calendar.to_string(), "calendar");
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    fn rejects_n_beyond_u32_index_space() {
        let mut cfg = SimConfig::paper_default(8, 0.5);
        cfg.n = u32::MAX as usize + 1;
        assert_eq!(cfg.validate(), Err(ConfigError::TooManyProcessors(cfg.n)));
        // The boundary itself is addressable (validation is pure; no
        // allocation happens here).
        cfg.n = u32::MAX as usize;
        cfg.validate().unwrap();
    }
}
