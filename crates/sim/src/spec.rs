//! Deriving a [`SimConfig`] from a declarative
//! [`loadsteal_core::ModelSpec`].
//!
//! This is the simulator's half of the spec contract: the same typed
//! description that selects a mean-field model in `loadsteal-core`
//! deterministically produces the equivalent event-driven
//! configuration, so the two layers can never drift apart on what
//! "the threshold model at λ = 0.85" means. Protocol knobs that are
//! not part of the *system* being modeled — horizon, warmup,
//! snapshots, heartbeats — keep their [`SimConfig::paper_default`]
//! values and stay adjustable on the returned config.

use loadsteal_core::spec::{ArrivalSpec, ModelSpec, PolicySpec, ServiceSpec, SpeedSpec};
use loadsteal_queueing::ServiceDistribution;

use crate::config::{
    ConfigError, RebalanceRate, SimConfig, SpeedProfile, StealPolicy, TransferTime,
};

/// Build the simulator configuration equivalent of `spec` for `n`
/// processors. The result is validated; a spec that passes
/// `ModelSpec::validate` cannot produce an invalid config.
pub fn sim_config(spec: &ModelSpec, n: usize) -> Result<SimConfig, ConfigError> {
    let mut cfg = SimConfig::paper_default(n, spec.lambda);
    cfg.service = match spec.service {
        ServiceSpec::Exponential => ServiceDistribution::unit_exponential(),
        ServiceSpec::Erlang { stages } => ServiceDistribution::Erlang {
            stages,
            rate: f64::from(stages),
        },
        ServiceSpec::Deterministic => ServiceDistribution::unit_deterministic(),
        ServiceSpec::HyperExp { p, rate1, rate2 } => {
            ServiceDistribution::HyperExp { p, rate1, rate2 }
        }
    };
    cfg.arrival = match spec.arrival {
        ArrivalSpec::Poisson => None,
        // `phases` exponential phases at rate `phases × λ` each keep
        // the mean inter-arrival time at 1/λ.
        ArrivalSpec::Erlang { phases } => Some(ServiceDistribution::Erlang {
            stages: phases,
            rate: f64::from(phases) * spec.lambda,
        }),
    };
    cfg.policy = match spec.policy {
        PolicySpec::NoSteal => StealPolicy::None,
        PolicySpec::OnEmpty {
            threshold,
            choices,
            batch,
        } => StealPolicy::OnEmpty {
            threshold,
            choices: choices as usize,
            batch,
        },
        PolicySpec::Preemptive {
            begin_at,
            rel_threshold,
        } => StealPolicy::Preemptive {
            begin_at,
            rel_threshold,
        },
        PolicySpec::Repeated { rate, threshold } => StealPolicy::Repeated { rate, threshold },
        PolicySpec::Rebalance { rate, per_task } => StealPolicy::Rebalance {
            rate: if per_task {
                RebalanceRate::PerTask(rate)
            } else {
                RebalanceRate::Constant(rate)
            },
        },
        PolicySpec::Share {
            send_threshold,
            recv_threshold,
        } => StealPolicy::Share {
            send_threshold,
            recv_threshold,
        },
    };
    cfg.transfer = spec.transfer_rate.map(TransferTime::exponential);
    cfg.speeds = match spec.speeds {
        SpeedSpec::Homogeneous => SpeedProfile::Homogeneous,
        SpeedSpec::TwoClass {
            fast_fraction,
            fast_rate,
            slow_rate,
        } => SpeedProfile::Classes(vec![
            (fast_fraction, fast_rate),
            (1.0 - fast_fraction, slow_rate),
        ]),
    };
    cfg.validate()?;
    Ok(cfg)
}

/// Extension trait putting [`sim_config`] on [`ModelSpec`] itself, so
/// call sites read `spec.sim_config(n)`.
pub trait ToSimConfig {
    /// See [`sim_config`].
    fn sim_config(&self, n: usize) -> Result<SimConfig, ConfigError>;
}

impl ToSimConfig for ModelSpec {
    fn sim_config(&self, n: usize) -> Result<SimConfig, ConfigError> {
        sim_config(self, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loadsteal_core::ModelRegistry;

    #[test]
    fn every_registry_preset_yields_a_valid_config() {
        for p in ModelRegistry::standard().presets() {
            let cfg = p
                .spec
                .sim_config(64)
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert_eq!(cfg.n, 64, "{}", p.name);
            assert_eq!(cfg.lambda, p.spec.lambda, "{}", p.name);
        }
    }

    #[test]
    fn simple_ws_spec_matches_paper_default() {
        let spec = ModelSpec::simple_ws(0.9);
        assert_eq!(
            spec.sim_config(128).unwrap(),
            SimConfig::paper_default(128, 0.9)
        );
    }

    #[test]
    fn erlang_arrival_rate_preserves_mean() {
        let spec = ModelSpec::parse("lambda=0.8,policy=steal,T=2,arrival=erlang:5").unwrap();
        let cfg = spec.sim_config(16).unwrap();
        let arrival = cfg.arrival.expect("erlang arrivals set");
        assert!((arrival.mean() - 1.0 / 0.8).abs() < 1e-12);
    }

    #[test]
    fn two_class_fractions_sum_to_one() {
        let spec =
            ModelSpec::parse("lambda=0.8,policy=steal,T=2,speeds=classes:0.25:2:0.9").unwrap();
        let cfg = spec.sim_config(16).unwrap();
        assert_eq!(
            cfg.speeds,
            SpeedProfile::Classes(vec![(0.25, 2.0), (0.75, 0.9)])
        );
    }

    #[test]
    fn cross_product_threshold_erlang_is_simulable() {
        let spec = ModelSpec::parse("threshold-erlang").unwrap();
        let cfg = spec.sim_config(16).unwrap();
        assert_eq!(
            cfg.policy,
            StealPolicy::OnEmpty {
                threshold: 4,
                choices: 1,
                batch: 1
            }
        );
        assert_eq!(
            cfg.service,
            ServiceDistribution::Erlang {
                stages: 10,
                rate: 10.0
            }
        );
    }
}
