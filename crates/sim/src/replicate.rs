//! Parallel independent replications.
//!
//! The paper reports "the average of 10 simulations of 100,000 seconds
//! each". Replications are independent given distinct seeds, so they run
//! on the rayon thread pool and are reduced with run-level statistics
//! (mean of run means plus a confidence interval over runs).

use rayon::prelude::*;

use loadsteal_obs::{Event as ObsEvent, Recorder, SharedRecorder};
use loadsteal_queueing::{ConfidenceInterval, OnlineStats};

use crate::config::SimConfig;
use crate::engine::{run_recorded, run_seeded};
use crate::metrics::SimResult;

/// Aggregated outcome of a set of replications.
#[derive(Debug, Clone)]
pub struct ReplicateResult {
    /// One result per run, in seed order.
    pub runs: Vec<SimResult>,
    /// Run-level statistics of the mean sojourn time.
    pub sojourn_mean: OnlineStats,
    /// Run-level statistics of the makespan (drained mode only).
    pub makespan_mean: OnlineStats,
}

impl ReplicateResult {
    /// Grand mean of per-run mean sojourn times (the paper's "Sim"
    /// columns).
    pub fn mean_sojourn(&self) -> f64 {
        self.sojourn_mean.mean()
    }

    /// 95% confidence interval over runs for the mean sojourn time.
    pub fn sojourn_ci(&self) -> ConfidenceInterval {
        self.sojourn_mean.confidence_interval(0.95)
    }

    /// Merged sojourn-time digest across all runs (`None` unless
    /// [`SimConfig::sojourn_digest`] was set). Per-run digests are built
    /// independently on worker threads and folded here — the mergeable
    /// layout makes the combined quantiles identical to a single-stream
    /// digest.
    pub fn merged_sojourn_digest(&self) -> Option<loadsteal_obs::Digest> {
        let mut acc: Option<loadsteal_obs::Digest> = None;
        for r in &self.runs {
            if let Some(d) = &r.sojourn_digest {
                acc.get_or_insert_with(loadsteal_obs::Digest::new).merge(d);
            }
        }
        acc
    }

    /// Average measured tail vector `s_i` across runs, padded with zeros
    /// to the longest run.
    pub fn mean_load_tails(&self) -> Vec<f64> {
        let len = self
            .runs
            .iter()
            .map(|r| r.load_tails.len())
            .max()
            .unwrap_or(0);
        let mut acc = vec![0.0; len];
        for r in &self.runs {
            for (i, &v) in r.load_tails.iter().enumerate() {
                acc[i] += v;
            }
        }
        let n = self.runs.len().max(1) as f64;
        for v in &mut acc {
            *v /= n;
        }
        acc
    }
}

/// Run `runs` independent replications in parallel, seeded
/// `base_seed, base_seed + 1, …`.
///
/// # Panics
/// Panics if `runs == 0` or the configuration is invalid.
pub fn replicate(cfg: &SimConfig, runs: usize, base_seed: u64) -> ReplicateResult {
    assert!(runs > 0, "need at least one replication");
    cfg.validate()
        .unwrap_or_else(|e| panic!("invalid simulation config: {e}"));
    let results: Vec<SimResult> = (0..runs as u64)
        .into_par_iter()
        .map(|i| {
            let _span = loadsteal_obs::span::span("sim.replicate");
            run_seeded(cfg, base_seed.wrapping_add(i))
        })
        .collect();
    aggregate(results)
}

/// [`replicate`] with every run's events — and one `replicate_done`
/// throughput summary per run — funneled into a shared recorder.
///
/// Runs still execute in parallel; the [`SharedRecorder`] serializes
/// sink access, so an NDJSON trace of a multi-run batch interleaves
/// events from concurrent runs (each tagged by wall order, not seed).
/// When the underlying recorder is disabled the engines skip event
/// construction exactly as in [`replicate`].
///
/// # Panics
/// Panics if `runs == 0` or the configuration is invalid.
pub fn replicate_recorded<R: Recorder + Send>(
    cfg: &SimConfig,
    runs: usize,
    base_seed: u64,
    rec: &SharedRecorder<R>,
) -> ReplicateResult {
    assert!(runs > 0, "need at least one replication");
    cfg.validate()
        .unwrap_or_else(|e| panic!("invalid simulation config: {e}"));
    let results: Vec<SimResult> = (0..runs as u64)
        .into_par_iter()
        .map(|i| {
            let _span = loadsteal_obs::span::span("sim.replicate");
            let seed = base_seed.wrapping_add(i);
            let mut handle = rec.clone();
            let mut r = run_recorded(cfg, seed, &mut handle);
            r.seed = seed;
            if handle.enabled() {
                handle.record(&ObsEvent::ReplicateDone {
                    seed,
                    wall_ms: r.wall_ms,
                    events: r.events_processed,
                    events_per_sec: r.events_per_sec(),
                });
            }
            r
        })
        .collect();
    aggregate(results)
}

fn aggregate(results: Vec<SimResult>) -> ReplicateResult {
    let mut sojourn_mean = OnlineStats::new();
    let mut makespan_mean = OnlineStats::new();
    for r in &results {
        if r.sojourn.count() > 0 {
            sojourn_mean.push(r.sojourn.mean());
        }
        if let Some(m) = r.makespan {
            makespan_mean.push(m);
        }
    }
    ReplicateResult {
        runs: results,
        sojourn_mean,
        makespan_mean,
    }
}

/// Run replications in batches until the 95% confidence interval of the
/// mean sojourn time is narrower than `target_half_width` (or `max_runs`
/// is reached). Returns the aggregate over all runs performed.
///
/// Batches of `batch` runs execute in parallel; precision typically
/// improves like `1/√runs`, so the loop predicts little and simply
/// re-checks after each batch.
pub fn replicate_until(
    cfg: &SimConfig,
    target_half_width: f64,
    max_runs: usize,
    base_seed: u64,
) -> ReplicateResult {
    assert!(target_half_width > 0.0, "need a positive precision target");
    assert!(max_runs >= 2, "need at least two runs for an interval");
    let batch = 4;
    let mut result = replicate(cfg, batch.min(max_runs), base_seed);
    while result.runs.len() < max_runs {
        let ci = result.sojourn_ci();
        if ci.half_width <= target_half_width && result.runs.len() >= 3 {
            break;
        }
        let next = batch.min(max_runs - result.runs.len());
        let more = replicate(cfg, next, base_seed + result.runs.len() as u64);
        for r in more.runs {
            if r.sojourn.count() > 0 {
                result.sojourn_mean.push(r.sojourn.mean());
            }
            if let Some(m) = r.makespan {
                result.makespan_mean.push(m);
            }
            result.runs.push(r);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StealPolicy;

    fn quick_cfg() -> SimConfig {
        let mut cfg = SimConfig::paper_default(16, 0.5);
        cfg.horizon = 2_000.0;
        cfg.warmup = 200.0;
        cfg
    }

    #[test]
    fn replications_are_deterministic_per_seed() {
        let cfg = quick_cfg();
        let a = replicate(&cfg, 3, 7);
        let b = replicate(&cfg, 3, 7);
        for (x, y) in a.runs.iter().zip(&b.runs) {
            assert_eq!(x.sojourn.mean(), y.sojourn.mean());
            assert_eq!(x.tasks_completed, y.tasks_completed);
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_runs() {
        let cfg = quick_cfg();
        let r = replicate(&cfg, 2, 100);
        assert_ne!(r.runs[0].sojourn.mean(), r.runs[1].sojourn.mean());
        assert_eq!(r.runs[0].seed, 100);
        assert_eq!(r.runs[1].seed, 101);
    }

    #[test]
    fn aggregate_mean_is_mean_of_run_means() {
        let cfg = quick_cfg();
        let r = replicate(&cfg, 4, 11);
        let manual: f64 =
            r.runs.iter().map(|x| x.sojourn.mean()).sum::<f64>() / r.runs.len() as f64;
        assert!((r.mean_sojourn() - manual).abs() < 1e-12);
    }

    #[test]
    fn replicate_until_stops_on_precision() {
        let cfg = quick_cfg();
        // A loose target stops at the first batch…
        let loose = replicate_until(&cfg, 1.0, 32, 7);
        assert!(loose.runs.len() <= 4);
        // …a tight one keeps going (but respects the cap).
        let tight = replicate_until(&cfg, 1e-4, 8, 7);
        assert_eq!(tight.runs.len(), 8);
        // More runs means a narrower interval.
        assert!(tight.sojourn_ci().half_width <= loose.sojourn_ci().half_width);
    }

    #[test]
    fn replicate_until_uses_distinct_seeds() {
        let cfg = quick_cfg();
        let r = replicate_until(&cfg, 1e-4, 8, 100);
        let mut seeds: Vec<u64> = r.runs.iter().map(|x| x.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), r.runs.len(), "duplicate seeds: {seeds:?}");
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_runs_panics() {
        let _ = replicate(&quick_cfg(), 0, 1);
    }

    #[test]
    #[should_panic(expected = "positive precision target")]
    fn replicate_until_rejects_zero_target() {
        let _ = replicate_until(&quick_cfg(), 0.0, 8, 1);
    }

    #[test]
    #[should_panic(expected = "at least two runs")]
    fn replicate_until_rejects_tiny_cap() {
        let _ = replicate_until(&quick_cfg(), 0.1, 1, 1);
    }

    #[test]
    fn recorded_replication_counts_events_and_matches_plain() {
        use loadsteal_obs::CountingRecorder;
        let cfg = quick_cfg();
        let shared = SharedRecorder::new(CountingRecorder::new());
        let rec = replicate_recorded(&cfg, 2, 7, &shared);
        let plain = replicate(&cfg, 2, 7);
        // Instrumentation must not perturb the simulation itself.
        assert_eq!(rec.mean_sojourn(), plain.mean_sojourn());
        assert_eq!(rec.runs[0].seed, 7);
        assert_eq!(rec.runs[1].seed, 8);
        let counts = shared.with(|r| r.counts());
        assert_eq!(counts.replicates, 2);
        let arrived: u64 = rec.runs.iter().map(|r| r.tasks_arrived).sum();
        let completed: u64 = rec.runs.iter().map(|r| r.tasks_completed).sum();
        assert_eq!(counts.arrivals, arrived);
        assert_eq!(counts.completions, completed);
        assert!(counts.steal_attempts > 0);
        let events: u64 = rec.runs.iter().map(|r| r.events_processed).sum();
        assert!(events > 0);
    }

    #[test]
    fn disabled_recorder_sees_nothing() {
        use loadsteal_obs::NullRecorder;
        let shared = SharedRecorder::new(NullRecorder);
        let r = replicate_recorded(&quick_cfg(), 1, 3, &shared);
        assert!(r.runs[0].events_processed > 0);
    }

    #[test]
    fn no_steal_mode_runs_too() {
        let mut cfg = quick_cfg();
        cfg.policy = StealPolicy::None;
        let r = replicate(&cfg, 2, 5);
        assert!(r.mean_sojourn() > 1.0);
        for run in &r.runs {
            assert_eq!(run.steal_attempts, 0);
        }
    }
}
