//! Discrete-event simulation of randomized work stealing on `n`
//! processors — the finite-system counterpart of the mean-field models
//! in `loadsteal-core`.
//!
//! The system simulated here is the paper's dynamic model: each of `n`
//! processors receives its own Poisson(λ) arrival stream, serves tasks
//! FIFO, and — depending on the [`config::StealPolicy`] — steals tasks
//! from the tails of other processors' queues when it runs low. Every
//! variant the paper analyzes is supported: victim-load thresholds,
//! multiple victim choices, multi-task steals, preemptive stealing,
//! repeated retry probes, transfer delays, pairwise rebalancing,
//! heterogeneous speeds, internal arrivals, and static drain runs.
//!
//! # Example
//!
//! Reproduce one cell of the paper's Table 1 (`λ = 0.5`, 16 processors)
//! at reduced horizon:
//!
//! ```
//! use loadsteal_sim::{SimConfig, replicate};
//!
//! let mut cfg = SimConfig::paper_default(16, 0.5);
//! cfg.horizon = 5_000.0; // the paper uses 100_000 s
//! cfg.warmup = 500.0;
//! let result = replicate(&cfg, 3, 42);
//! // Mean time in system ≈ 1.63 in the paper; sampling noise at this
//! // short horizon keeps the bound loose.
//! assert!((result.mean_sojourn() - 1.63).abs() < 0.25);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
pub mod config;
pub mod engine;
pub mod event;
pub mod metrics;
pub mod replicate;
pub mod spec;

pub use calendar::{CalendarQueue, EventQueue};
pub use config::{
    ConfigError, EngineKind, RebalanceRate, SimConfig, SpeedProfile, StealPolicy, TransferTime,
    DEFAULT_HEARTBEAT_EVERY,
};
pub use engine::{run, run_recorded, run_seeded};
pub use event::{event_order, Event, EventKind};
pub use metrics::{LoadHistogram, SimResult};
pub use replicate::{replicate, replicate_recorded, replicate_until, ReplicateResult};
pub use spec::{sim_config, ToSimConfig};
