//! The discrete-event engine: one run of the n-processor work-stealing
//! system, on a cache-compact core that scales to `n = 10⁶`.
//!
//! Design notes:
//!
//! * The future-event list is pluggable ([`EventQueue`]): the
//!   calendar queue ([`crate::calendar`]) by default, the original
//!   `BinaryHeap` as a differential oracle. Both pop in the pinned
//!   event total order ([`crate::event::event_order`]: time, then
//!   sequence), so the engine choice cannot change a run's trajectory —
//!   `(config, seed)` determines the trace bit-for-bit.
//! * Processor state is struct-of-arrays with u32 indices
//!   (`n ≤ 2³² − 1`, enforced by `SimConfig::validate`): queue lengths
//!   live in their own array so the O(1) uniform victim sampling of a
//!   steal probe touches one cache line, not a processor struct. Tasks
//!   live in one arena of 32-byte nodes forming intrusive doubly-linked
//!   deques — pushes, pops, and tail-segment steals relink indices and
//!   never allocate on the hot path.
//! * Service completions are never stale — steals and rebalances only
//!   move *tail* tasks, so the task at the head of a queue can only
//!   leave by completing. Everything whose rate depends on mutable state
//!   (retry probes, rebalance ticks, internal arrivals) carries an epoch
//!   and is lazily invalidated; exponential interarrival times make
//!   resampling on every rate change statistically exact.
//! * Victims are sampled uniformly over all `n` processors by default
//!   (a self-draw simply fails), which is exactly the limiting
//!   probability `s_T` used by the differential equations.

use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use loadsteal_obs::span;
use loadsteal_obs::{
    Digest, Event as ObsEvent, JobEventKind, NullRecorder, Recorder, SimEventKind,
    TAIL_SAMPLE_DEPTH,
};
use loadsteal_queueing::dist::exp_sample;
use loadsteal_queueing::OnlineStats;

use crate::calendar::{CalendarQueue, EventQueue};
use crate::config::{EngineKind, SimConfig, SpeedProfile, StealPolicy};
use crate::event::{Event, EventKind};
use crate::metrics::{LoadHistogram, SimResult};

/// Sentinel index: "no node".
const NIL: u32 = u32::MAX;

/// One task in the arena: identity, arrival time, service requirement,
/// and the intrusive deque links. 32 bytes.
#[derive(Debug, Clone, Copy)]
struct TaskNode {
    /// Job id, assigned from a per-run counter at admission. The
    /// counter runs unconditionally (it draws no randomness), so ids
    /// are identical whether or not job tracing is on.
    id: u64,
    arrived: f64,
    work: f64,
    /// Towards the tail (also the free-list link).
    next: u32,
    /// Towards the head.
    prev: u32,
}

/// All processor queues: struct-of-arrays deque state over one shared
/// task arena. `len` is deliberately its own array — victim sampling
/// reads nothing else.
#[derive(Debug)]
struct Queues {
    len: Vec<u32>,
    head: Vec<u32>,
    tail: Vec<u32>,
    nodes: Vec<TaskNode>,
    free: u32,
}

impl Queues {
    fn new(n: usize) -> Self {
        Self {
            len: vec![0; n],
            head: vec![NIL; n],
            tail: vec![NIL; n],
            nodes: Vec::new(),
            free: NIL,
        }
    }

    #[inline]
    fn alloc(&mut self, id: u64, arrived: f64, work: f64) -> u32 {
        let node = TaskNode {
            id,
            arrived,
            work,
            next: NIL,
            prev: NIL,
        };
        if self.free != NIL {
            let i = self.free;
            self.free = self.nodes[i as usize].next;
            self.nodes[i as usize] = node;
            i
        } else {
            let i = self.nodes.len() as u32;
            self.nodes.push(node);
            i
        }
    }

    #[inline]
    fn dealloc(&mut self, i: u32) {
        self.nodes[i as usize].next = self.free;
        self.free = i;
    }

    #[inline]
    fn node(&self, i: u32) -> &TaskNode {
        &self.nodes[i as usize]
    }

    #[inline]
    fn push_back(&mut self, p: usize, i: u32) {
        let t = self.tail[p];
        self.nodes[i as usize].prev = t;
        self.nodes[i as usize].next = NIL;
        if t == NIL {
            self.head[p] = i;
        } else {
            self.nodes[t as usize].next = i;
        }
        self.tail[p] = i;
        self.len[p] += 1;
    }

    #[inline]
    fn pop_front(&mut self, p: usize) -> u32 {
        let h = self.head[p];
        debug_assert_ne!(h, NIL, "pop_front on an empty queue");
        let next = self.nodes[h as usize].next;
        self.head[p] = next;
        if next == NIL {
            self.tail[p] = NIL;
        } else {
            self.nodes[next as usize].prev = NIL;
        }
        self.len[p] -= 1;
        h
    }

    #[inline]
    fn pop_back(&mut self, p: usize) -> u32 {
        let t = self.tail[p];
        debug_assert_ne!(t, NIL, "pop_back on an empty queue");
        let prev = self.nodes[t as usize].prev;
        self.tail[p] = prev;
        if prev == NIL {
            self.head[p] = NIL;
        } else {
            self.nodes[prev as usize].next = NIL;
        }
        self.len[p] -= 1;
        t
    }

    /// Detach the last `take` tasks of `src` and append them — relative
    /// order preserved — to the back of `dst`. Pure pointer surgery:
    /// O(take) index walks, no allocation.
    fn splice_tail(&mut self, src: usize, dst: usize, take: usize) {
        debug_assert!(take >= 1 && take <= self.len[src] as usize);
        let seg_end = self.tail[src];
        let mut seg_start = seg_end;
        for _ in 1..take {
            seg_start = self.nodes[seg_start as usize].prev;
        }
        let before = self.nodes[seg_start as usize].prev;
        self.tail[src] = before;
        if before == NIL {
            self.head[src] = NIL;
        } else {
            self.nodes[before as usize].next = NIL;
        }
        self.len[src] -= take as u32;
        let dtail = self.tail[dst];
        self.nodes[seg_start as usize].prev = dtail;
        if dtail == NIL {
            self.head[dst] = seg_start;
        } else {
            self.nodes[dtail as usize].next = seg_start;
        }
        self.tail[dst] = seg_end;
        self.len[dst] += take as u32;
    }

    /// Job ids of the last `take` tasks of `p`, in front-to-back order
    /// (what a tail steal moves). Only called under job tracing.
    fn tail_ids(&self, p: usize, take: usize) -> Vec<u64> {
        let mut ids = vec![0u64; take];
        let mut cur = self.tail[p];
        for slot in ids.iter_mut().rev() {
            *slot = self.nodes[cur as usize].id;
            cur = self.nodes[cur as usize].prev;
        }
        ids
    }
}

/// Payloads of stolen tasks currently in flight (Section 3.2's transfer
/// delays). Keeping them out of [`EventKind::TransferArrive`] keeps
/// every event at 32 bytes; slots are recycled through a free list.
#[derive(Debug, Default)]
struct TransferPool {
    slots: Vec<(u64, f64, f64)>,
    free: Vec<u32>,
}

impl TransferPool {
    fn put(&mut self, job: u64, arrived: f64, work: f64) -> u32 {
        if let Some(i) = self.free.pop() {
            self.slots[i as usize] = (job, arrived, work);
            i
        } else {
            self.slots.push((job, arrived, work));
            (self.slots.len() - 1) as u32
        }
    }

    fn take(&mut self, i: u32) -> (u64, f64, f64) {
        self.free.push(i);
        self.slots[i as usize]
    }
}

/// Run one simulation to completion and collect its measurements.
///
/// # Panics
/// Panics if the configuration fails [`SimConfig::validate`].
pub fn run(cfg: &SimConfig, seed: u64) -> SimResult {
    run_recorded(cfg, seed, &mut NullRecorder)
}

/// [`run`] with per-event observations (arrivals, completions, steal
/// attempts/successes, migrations, heartbeats) sent to `rec`.
///
/// The recorder's [`Recorder::enabled`] hint is sampled once at engine
/// construction; a disabled recorder costs one predictable branch per
/// emission site and builds no events. The engine is monomorphized over
/// both `R` and the future-event list selected by `cfg.engine`, so the
/// [`NullRecorder`] path compiles to the uninstrumented loop.
///
/// # Panics
/// Panics if the configuration fails [`SimConfig::validate`].
pub fn run_recorded<R: Recorder>(cfg: &SimConfig, seed: u64, rec: &mut R) -> SimResult {
    if let Err(e) = cfg.validate() {
        panic!("invalid simulation config: {e}");
    }
    match cfg.engine {
        EngineKind::Heap => Engine::<R, BinaryHeap<Event>>::new(cfg, seed, rec).run(),
        EngineKind::Calendar => Engine::<R, CalendarQueue>::new(cfg, seed, rec).run(),
    }
}

struct Engine<'a, R: Recorder, Q: EventQueue> {
    cfg: &'a SimConfig,
    rec: &'a mut R,
    /// `rec.enabled()`, sampled once.
    tracing: bool,
    /// `tracing && cfg.trace_jobs`, sampled once.
    job_tracing: bool,
    /// `tracing && cfg.sample_tails.is_some()`, sampled once.
    tail_sampling: bool,
    /// Tail-sample grid spacing (`∞` when sampling is off, so the hot
    /// loop's grid check is one always-false comparison).
    sample_every: f64,
    /// Next tail-sample grid time.
    next_tail_sample: f64,
    /// Next job id to assign.
    next_job_id: u64,
    events_processed: u64,
    queues: Queues,
    /// Invalidates steal probes and rebalance ticks.
    probe_epoch: Vec<u32>,
    /// Invalidates internal-arrival events.
    internal_epoch: Vec<u32>,
    /// A stolen task is in flight towards this processor.
    waiting_transfer: Vec<bool>,
    /// Per-processor speed; empty for the homogeneous profile, whose
    /// unit speed is special-cased to skip the division.
    speed: Vec<f64>,
    transfers: TransferPool,
    q: Q,
    rng: SmallRng,
    seq: u64,
    t: f64,
    tasks_in_system: u64,
    tasks_arrived: u64,
    tasks_completed: u64,
    steal_attempts: u64,
    steal_successes: u64,
    tasks_migrated: u64,
    sojourn: OnlineStats,
    sojourn_digest: Option<Digest>,
    hist: LoadHistogram,
    makespan: Option<f64>,
    snapshots: Vec<(f64, Vec<f64>)>,
    next_snapshot: f64,
    /// `min(next_snapshot, next_tail_sample)`: the single grid check
    /// the hot loop performs per event.
    next_wake: f64,
}

impl<'a, R: Recorder, Q: EventQueue> Engine<'a, R, Q> {
    fn new(cfg: &'a SimConfig, seed: u64, rec: &'a mut R) -> Self {
        let rng = SmallRng::seed_from_u64(seed);
        let tracing = rec.enabled();
        let speed = match &cfg.speeds {
            SpeedProfile::Homogeneous => Vec::new(),
            profile => (0..cfg.n).map(|p| profile.speed_of(p, cfg.n)).collect(),
        };
        Self {
            cfg,
            rec,
            tracing,
            job_tracing: tracing && cfg.trace_jobs,
            tail_sampling: tracing && cfg.sample_tails.is_some(),
            sample_every: if tracing {
                cfg.sample_tails.unwrap_or(f64::INFINITY)
            } else {
                f64::INFINITY
            },
            next_tail_sample: if tracing {
                cfg.sample_tails.unwrap_or(f64::INFINITY)
            } else {
                f64::INFINITY
            },
            next_job_id: 0,
            events_processed: 0,
            queues: Queues::new(cfg.n),
            probe_epoch: vec![0; cfg.n],
            internal_epoch: vec![0; cfg.n],
            waiting_transfer: vec![false; cfg.n],
            speed,
            transfers: TransferPool::default(),
            q: Q::with_hint(2 * cfg.n),
            rng,
            seq: 0,
            t: 0.0,
            tasks_in_system: 0,
            tasks_arrived: 0,
            tasks_completed: 0,
            steal_attempts: 0,
            steal_successes: 0,
            tasks_migrated: 0,
            sojourn: OnlineStats::new(),
            sojourn_digest: cfg.sojourn_digest.then(Digest::new),
            hist: LoadHistogram::new(cfg.n, cfg.initial_load, cfg.warmup),
            makespan: None,
            snapshots: Vec::new(),
            next_snapshot: cfg.snapshot_interval.unwrap_or(f64::INFINITY),
            next_wake: f64::INFINITY,
        }
    }

    #[inline]
    fn schedule(&mut self, time: f64, kind: EventKind) {
        self.seq += 1;
        self.q.push(Event {
            time,
            seq: self.seq,
            kind,
        });
    }

    #[inline]
    fn sample_work(&mut self) -> f64 {
        self.cfg.service.sample(&mut self.rng)
    }

    /// Mint the next job id (the counter draws no randomness).
    #[inline]
    fn next_id(&mut self) -> u64 {
        let id = self.next_job_id;
        self.next_job_id += 1;
        id
    }

    /// Service duration of `work` on processor `p`.
    #[inline]
    fn service_time(&self, p: usize, work: f64) -> f64 {
        if self.speed.is_empty() {
            work
        } else {
            work / self.speed[p]
        }
    }

    /// Report one job lifecycle stage (no-op unless job tracing).
    #[inline]
    fn emit_job(&mut self, kind: JobEventKind, job: u64, p: usize) {
        if self.job_tracing {
            self.rec.record(&ObsEvent::Job {
                kind,
                t: self.t,
                job,
                proc: p as u32,
                src: None,
                delay: 0.0,
            });
        }
    }

    /// Report one job hop from victim `src` to thief `dst` with its
    /// transfer delay (no-op unless job tracing).
    #[inline]
    fn emit_job_migrate(&mut self, job: u64, dst: usize, src: usize, delay: f64) {
        if self.job_tracing {
            self.rec.record(&ObsEvent::Job {
                kind: JobEventKind::Migrate,
                t: self.t,
                job,
                proc: dst as u32,
                src: Some(src as u32),
                delay,
            });
        }
    }

    /// Emit the instantaneous empirical tail vector at grid time `t`
    /// (callers gate on `tail_sampling`). O(k) in the histogram depth:
    /// the load histogram already maintains counts-per-depth, so no
    /// per-processor walk happens here.
    fn emit_tail_sample(&mut self, t: f64) {
        let inst = self.hist.instant_tails(self.cfg.n);
        let mut tails = [0.0f64; TAIL_SAMPLE_DEPTH];
        let mut depth = 0u32;
        for i in 1..=TAIL_SAMPLE_DEPTH {
            let s = inst.get(i).copied().unwrap_or(0.0);
            tails[i - 1] = s;
            if s != 0.0 {
                depth = i as u32;
            }
        }
        self.rec.record(&ObsEvent::TailSample { t, tails, depth });
    }

    /// Report one simulator observation (no-op unless tracing).
    #[inline]
    fn emit(&mut self, kind: SimEventKind, p: usize, count: u32) {
        if self.tracing {
            self.rec.record(&ObsEvent::Sim {
                kind,
                t: self.t,
                proc: p as u32,
                src: None,
                count,
            });
        }
    }

    /// Report a migration of `count` tasks from `src` to `dst` (no-op
    /// unless tracing). Recording the donor lets trace consumers rebuild
    /// per-processor queue timelines.
    #[inline]
    fn emit_migration(&mut self, dst: usize, src: usize, count: u32) {
        if self.tracing {
            self.rec.record(&ObsEvent::Sim {
                kind: SimEventKind::Migration,
                t: self.t,
                proc: dst as u32,
                src: Some(src as u32),
                count,
            });
        }
    }

    fn initialize(&mut self) {
        // Pre-loaded tasks (static experiments).
        if self.cfg.initial_load > 0 {
            for p in 0..self.cfg.n {
                for _ in 0..self.cfg.initial_load {
                    let work = self.sample_work();
                    let id = self.next_id();
                    let node = self.queues.alloc(id, 0.0, work);
                    self.queues.push_back(p, node);
                    self.emit(SimEventKind::Arrival, p, 1);
                    self.emit_job(JobEventKind::Arrival, id, p);
                }
                self.tasks_in_system += self.cfg.initial_load as u64;
                self.tasks_arrived += self.cfg.initial_load as u64;
                // The histogram was constructed at this initial load;
                // only service needs starting.
                self.start_service(p);
            }
        }
        // External arrival streams.
        if self.cfg.lambda > 0.0 {
            for p in 0..self.cfg.n {
                let dt = self.sample_interarrival();
                self.schedule(dt, EventKind::ExtArrival { proc: p as u32 });
            }
        }
        // Internal arrival streams for initially busy processors.
        if self.cfg.internal_lambda > 0.0 {
            for p in 0..self.cfg.n {
                if self.queues.len[p] > 0 {
                    self.schedule_internal_arrival(p);
                }
            }
        }
        // Repeated-steal probes for initially empty processors.
        if let StealPolicy::Repeated { rate, .. } = self.cfg.policy {
            for p in 0..self.cfg.n {
                if self.queues.len[p] == 0 {
                    self.schedule_steal_probe(p, rate);
                }
            }
        }
        // Rebalance ticks for every processor.
        if let StealPolicy::Rebalance { rate } = self.cfg.policy {
            for p in 0..self.cfg.n {
                let r = rate.rate(self.queues.len[p] as usize);
                self.schedule_rebalance_tick(p, r);
            }
        }
    }

    fn run(mut self) -> SimResult {
        let _run_span = span::span("sim.run");
        let wall = std::time::Instant::now();
        self.initialize();
        self.next_wake = self.next_snapshot.min(self.next_tail_sample);
        let horizon = if self.cfg.run_until_drained {
            f64::INFINITY
        } else {
            self.cfg.horizon
        };
        while let Some(ev) = self.q.pop() {
            // Snapshots and tail samples capture the state *just
            // before* the first event past each grid time (loads are
            // piecewise constant). Both grids fold into one wake time
            // so the per-event cost of the disabled features is a
            // single always-false comparison (`next_wake = ∞`).
            if self.next_wake <= ev.time {
                while self.next_snapshot <= ev.time && self.next_snapshot <= horizon {
                    let tails = self.hist.instant_tails(self.cfg.n);
                    self.snapshots.push((self.next_snapshot, tails));
                    self.next_snapshot += self.cfg.snapshot_interval.unwrap();
                }
                while self.next_tail_sample <= ev.time && self.next_tail_sample <= horizon {
                    let t = self.next_tail_sample;
                    self.emit_tail_sample(t);
                    self.next_tail_sample += self.sample_every;
                }
                self.next_wake = self.next_snapshot.min(self.next_tail_sample);
            }
            if ev.time > horizon {
                self.t = horizon;
                break;
            }
            self.t = ev.time;
            self.events_processed += 1;
            if self.tracing
                && self.cfg.heartbeat_every != 0
                && self.events_processed % self.cfg.heartbeat_every == 0
            {
                let _hb_span = span::span("sim.heartbeat");
                self.rec.record(&ObsEvent::Heartbeat {
                    t: self.t,
                    events: self.events_processed,
                    tasks_in_system: self.tasks_in_system,
                });
                // Live transient consumers (piped `transient -`, the
                // serve endpoint) need samples at heartbeat cadence,
                // not batched until the run ends.
                if self.tail_sampling {
                    self.rec.flush();
                }
            }
            // One profiler span per simulated event, named by phase.
            // Disabled cost: selecting the static name plus one relaxed
            // atomic load — inside the bench gate's ≤2% budget.
            let _ev_span = span::span(match ev.kind {
                EventKind::ExtArrival { .. } | EventKind::IntArrival { .. } => "sim.arrival",
                EventKind::Completion { .. } => "sim.completion",
                EventKind::StealProbe { .. } => "sim.steal_attempt",
                EventKind::RebalanceTick { .. } => "sim.rebalance",
                EventKind::TransferArrive { .. } => "sim.transfer",
            });
            match ev.kind {
                EventKind::ExtArrival { proc } => self.on_ext_arrival(proc as usize),
                EventKind::IntArrival { proc, epoch } => self.on_int_arrival(proc as usize, epoch),
                EventKind::Completion { proc } => self.on_completion(proc as usize),
                EventKind::StealProbe { proc, epoch } => self.on_steal_probe(proc as usize, epoch),
                EventKind::RebalanceTick { proc, epoch } => {
                    self.on_rebalance_tick(proc as usize, epoch)
                }
                EventKind::TransferArrive { proc, slot } => {
                    self.on_transfer_arrive(proc as usize, slot)
                }
            }
            drop(_ev_span);
            if self.cfg.run_until_drained && self.tasks_in_system == 0 {
                self.makespan = Some(self.t);
                break;
            }
        }
        let end = if self.cfg.run_until_drained {
            self.t
        } else {
            self.cfg.horizon
        };
        self.hist.finish(end);
        if self.tracing {
            self.rec.flush();
        }
        SimResult {
            sojourn: self.sojourn,
            sojourn_digest: self.sojourn_digest,
            tasks_arrived: self.tasks_arrived,
            tasks_completed: self.tasks_completed,
            steal_attempts: self.steal_attempts,
            steal_successes: self.steal_successes,
            tasks_migrated: self.tasks_migrated,
            events_processed: self.events_processed,
            wall_ms: wall.elapsed().as_secs_f64() * 1e3,
            load_tails: self.hist.tails(self.cfg.n),
            snapshots: self.snapshots,
            end_time: end,
            makespan: self.makespan,
            seed: 0, // filled by the caller-facing wrapper below
        }
    }

    // ----- event handlers -------------------------------------------------

    fn on_ext_arrival(&mut self, p: usize) {
        let work = self.sample_work();
        let id = self.next_id();
        self.route_arrival(p, id, self.t, work);
        let dt = self.sample_interarrival();
        self.schedule(self.t + dt, EventKind::ExtArrival { proc: p as u32 });
    }

    /// Deliver a fresh arrival, applying the work-sharing forward rule
    /// when the `Share` policy is active.
    fn route_arrival(&mut self, p: usize, id: u64, arrived: f64, work: f64) {
        if let StealPolicy::Share {
            send_threshold,
            recv_threshold,
        } = self.cfg.policy
        {
            if self.queues.len[p] as usize >= send_threshold {
                self.steal_attempts += 1; // a probe message
                self.emit(SimEventKind::StealAttempt, p, 1);
                let target = self.pick_victim(p, 1);
                if target != p && (self.queues.len[target] as usize) < recv_threshold {
                    self.steal_successes += 1;
                    self.tasks_migrated += 1;
                    self.emit(SimEventKind::StealSuccess, p, 1);
                    self.emit_migration(target, p, 1);
                    self.admit_task(target, id, arrived, work);
                    return;
                }
            }
        }
        self.admit_task(p, id, arrived, work);
    }

    #[inline]
    fn sample_interarrival(&mut self) -> f64 {
        match &self.cfg.arrival {
            None => exp_sample(&mut self.rng, self.cfg.lambda),
            Some(dist) => dist.sample(&mut self.rng),
        }
    }

    fn on_int_arrival(&mut self, p: usize, epoch: u32) {
        if self.internal_epoch[p] != epoch {
            return;
        }
        debug_assert!(self.queues.len[p] > 0);
        let work = self.sample_work();
        let id = self.next_id();
        self.route_arrival(p, id, self.t, work);
        self.schedule_internal_arrival(p);
    }

    fn on_completion(&mut self, p: usize) {
        let old_len = self.queues.len[p] as usize;
        let node = self.queues.pop_front(p);
        let (id, arrived) = {
            let n = self.queues.node(node);
            (n.id, n.arrived)
        };
        self.queues.dealloc(node);
        self.tasks_in_system -= 1;
        self.tasks_completed += 1;
        self.emit(SimEventKind::Completion, p, 1);
        self.emit_job(JobEventKind::Completion, id, p);
        if self.t >= self.cfg.warmup {
            let dt = self.t - arrived;
            self.sojourn.push(dt);
            if let Some(d) = self.sojourn_digest.as_mut() {
                d.record(dt);
            }
        }
        // Start the next task before stealing: a steal sees a consistent
        // queue and can never take the in-service task.
        if self.queues.len[p] > 0 {
            self.start_service(p);
        }
        self.on_load_changed(p, old_len);

        let remaining = self.queues.len[p] as usize;
        match self.cfg.policy {
            StealPolicy::None | StealPolicy::Rebalance { .. } | StealPolicy::Share { .. } => {}
            StealPolicy::OnEmpty {
                threshold,
                choices,
                batch,
            } => {
                if remaining == 0 && !self.waiting_transfer[p] {
                    self.attempt_steal(p, threshold, choices, batch);
                }
            }
            StealPolicy::Preemptive {
                begin_at,
                rel_threshold,
            } => {
                if remaining <= begin_at && !self.waiting_transfer[p] {
                    self.attempt_steal(p, remaining + rel_threshold, 1, 1);
                }
            }
            StealPolicy::Repeated { rate, threshold } => {
                if remaining == 0 {
                    let stolen = self.attempt_steal(p, threshold, 1, 1);
                    if !stolen && self.queues.len[p] == 0 {
                        self.schedule_steal_probe(p, rate);
                    }
                }
            }
        }
    }

    fn on_steal_probe(&mut self, p: usize, epoch: u32) {
        if self.probe_epoch[p] != epoch {
            return;
        }
        let StealPolicy::Repeated { rate, threshold } = self.cfg.policy else {
            return;
        };
        debug_assert!(self.queues.len[p] == 0);
        let stolen = self.attempt_steal(p, threshold, 1, 1);
        if !stolen && self.queues.len[p] == 0 {
            self.schedule_steal_probe(p, rate);
        }
    }

    fn on_rebalance_tick(&mut self, p: usize, epoch: u32) {
        if self.probe_epoch[p] != epoch {
            return;
        }
        let StealPolicy::Rebalance { rate } = self.cfg.policy else {
            return;
        };
        self.steal_attempts += 1;
        self.emit(SimEventKind::StealAttempt, p, 1);
        // Partner: uniform among the other processors.
        let partner = if self.cfg.n == 1 {
            p
        } else {
            let mut q = self.rng.random_range(0..self.cfg.n - 1);
            if q >= p {
                q += 1;
            }
            q
        };
        if partner != p {
            self.rebalance_pair(p, partner);
        }
        // If our load changed, `on_load_changed` already rescheduled the
        // tick under a fresh epoch; otherwise continue this stream.
        if self.probe_epoch[p] == epoch {
            let r = rate.rate(self.queues.len[p] as usize);
            self.schedule_rebalance_tick(p, r);
        }
    }

    fn on_transfer_arrive(&mut self, p: usize, slot: u32) {
        debug_assert!(self.waiting_transfer[p]);
        self.waiting_transfer[p] = false;
        let (id, arrived, work) = self.transfers.take(slot);
        // The task re-enters a queue; it was counted in-system throughout.
        let old_len = self.queues.len[p] as usize;
        let node = self.queues.alloc(id, arrived, work);
        self.queues.push_back(p, node);
        if old_len == 0 {
            self.start_service(p);
        }
        self.on_load_changed(p, old_len);
    }

    // ----- mechanics ------------------------------------------------------

    /// A genuinely new task enters the system at processor `p`.
    fn admit_task(&mut self, p: usize, id: u64, arrived: f64, work: f64) {
        self.tasks_in_system += 1;
        self.tasks_arrived += 1;
        self.emit(SimEventKind::Arrival, p, 1);
        self.emit_job(JobEventKind::Arrival, id, p);
        let old_len = self.queues.len[p] as usize;
        let node = self.queues.alloc(id, arrived, work);
        self.queues.push_back(p, node);
        if old_len == 0 {
            self.start_service(p);
        }
        self.on_load_changed(p, old_len);
    }

    /// The moment a task reaches the front of `p`'s queue: its service
    /// begins now and its completion is scheduled. The single site for
    /// `job_service_start` — steals only move tail tasks, so a job's
    /// service starts exactly once, on its final processor.
    fn start_service(&mut self, p: usize) {
        let front = self.queues.head[p];
        let (id, work) = {
            let n = self.queues.node(front);
            (n.id, n.work)
        };
        self.emit_job(JobEventKind::ServiceStart, id, p);
        let duration = self.service_time(p, work);
        self.schedule(self.t + duration, EventKind::Completion { proc: p as u32 });
    }

    fn schedule_internal_arrival(&mut self, p: usize) {
        let dt = exp_sample(&mut self.rng, self.cfg.internal_lambda);
        let epoch = self.internal_epoch[p];
        self.schedule(
            self.t + dt,
            EventKind::IntArrival {
                proc: p as u32,
                epoch,
            },
        );
    }

    fn schedule_steal_probe(&mut self, p: usize, rate: f64) {
        let dt = exp_sample(&mut self.rng, rate);
        let epoch = self.probe_epoch[p];
        self.schedule(
            self.t + dt,
            EventKind::StealProbe {
                proc: p as u32,
                epoch,
            },
        );
    }

    fn schedule_rebalance_tick(&mut self, p: usize, rate: f64) {
        if rate <= 0.0 {
            return;
        }
        let dt = exp_sample(&mut self.rng, rate);
        let epoch = self.probe_epoch[p];
        self.schedule(
            self.t + dt,
            EventKind::RebalanceTick {
                proc: p as u32,
                epoch,
            },
        );
    }

    /// Bookkeeping after processor `p`'s queue length changed.
    fn on_load_changed(&mut self, p: usize, old_len: usize) {
        let new_len = self.queues.len[p] as usize;
        if new_len == old_len {
            return;
        }
        self.hist.transition(old_len, new_len, self.t);
        // Anything whose rate depends on the load is invalidated.
        self.probe_epoch[p] = self.probe_epoch[p].wrapping_add(1);
        if let StealPolicy::Rebalance { rate } = self.cfg.policy {
            let r = rate.rate(new_len);
            self.schedule_rebalance_tick(p, r);
        }
        // Internal arrivals run exactly while the processor is busy.
        if self.cfg.internal_lambda > 0.0 {
            if old_len == 0 && new_len > 0 {
                self.schedule_internal_arrival(p);
            } else if old_len > 0 && new_len == 0 {
                self.internal_epoch[p] = self.internal_epoch[p].wrapping_add(1);
            }
        }
    }

    /// Pick a victim: the most loaded of `choices` iid uniform draws.
    /// O(1) per draw — only the length array is touched.
    fn pick_victim(&mut self, thief: usize, choices: usize) -> usize {
        let mut best = usize::MAX;
        let mut best_load = 0;
        for _ in 0..choices {
            let v = if self.cfg.allow_self_victim {
                self.rng.random_range(0..self.cfg.n)
            } else if self.cfg.n == 1 {
                thief
            } else {
                let mut v = self.rng.random_range(0..self.cfg.n - 1);
                if v >= thief {
                    v += 1;
                }
                v
            };
            let load = self.queues.len[v];
            if best == usize::MAX || load > best_load {
                best = v;
                best_load = load;
            }
        }
        best
    }

    /// Attempt a steal of up to `batch` tasks for `thief` against a
    /// victim-load requirement. Returns whether tasks moved (or, with
    /// transfer delays, started moving).
    fn attempt_steal(
        &mut self,
        thief: usize,
        need_victim_load: usize,
        choices: usize,
        batch: usize,
    ) -> bool {
        self.steal_attempts += 1;
        self.emit(SimEventKind::StealAttempt, thief, 1);
        let victim = self.pick_victim(thief, choices);
        if victim == thief {
            return false;
        }
        let victim_len = self.queues.len[victim] as usize;
        if victim_len < need_victim_load {
            return false;
        }
        self.steal_successes += 1;
        self.emit(SimEventKind::StealSuccess, thief, 1);

        if self.cfg.transfer.is_some() {
            // Single-task steal with a transfer delay: the task leaves
            // the victim now and reaches the thief later.
            debug_assert_eq!(batch, 1);
            let node = self.queues.pop_back(victim);
            let (id, arrived, work) = {
                let n = self.queues.node(node);
                (n.id, n.arrived, n.work)
            };
            self.queues.dealloc(node);
            self.tasks_migrated += 1;
            self.emit_migration(thief, victim, 1);
            self.on_load_changed(victim, victim_len);
            self.waiting_transfer[thief] = true;
            let delay = self
                .cfg
                .transfer
                .as_ref()
                .unwrap()
                .dist
                .sample(&mut self.rng);
            self.emit_job_migrate(id, thief, victim, delay);
            let slot = self.transfers.put(id, arrived, work);
            self.schedule(
                self.t + delay,
                EventKind::TransferArrive {
                    proc: thief as u32,
                    slot,
                },
            );
            return true;
        }

        // Instantaneous steal of `batch` tail tasks, preserving their
        // relative order on the thief.
        let take = batch.min(victim_len.saturating_sub(1));
        debug_assert!(take >= 1);
        let thief_old = self.queues.len[thief] as usize;
        let moved_ids: Vec<u64> = if self.job_tracing {
            self.queues.tail_ids(victim, take)
        } else {
            Vec::new()
        };
        self.queues.splice_tail(victim, thief, take);
        self.tasks_migrated += take as u64;
        self.emit_migration(thief, victim, take as u32);
        for id in moved_ids {
            self.emit_job_migrate(id, thief, victim, 0.0);
        }
        self.on_load_changed(victim, victim_len);
        if thief_old == 0 {
            self.start_service(thief);
        }
        self.on_load_changed(thief, thief_old);
        true
    }

    /// Equalize the loads of `a` and `b` (Section 3.4): the initially
    /// larger queue keeps `⌈total/2⌉`, donating tail tasks to the other.
    fn rebalance_pair(&mut self, a: usize, b: usize) {
        let (la, lb) = (self.queues.len[a] as usize, self.queues.len[b] as usize);
        let (hi, lo, lhi, llo) = if la >= lb {
            (a, b, la, lb)
        } else {
            (b, a, lb, la)
        };
        let total = lhi + llo;
        let keep = total.div_ceil(2);
        let moves = lhi - keep;
        if moves == 0 {
            return;
        }
        self.steal_successes += 1;
        self.emit(SimEventKind::StealSuccess, a, 1);
        let lo_old = llo;
        let moved_ids: Vec<u64> = if self.job_tracing {
            self.queues.tail_ids(hi, moves)
        } else {
            Vec::new()
        };
        self.queues.splice_tail(hi, lo, moves);
        self.tasks_migrated += moves as u64;
        self.emit_migration(lo, hi, moves as u32);
        for id in moved_ids {
            self.emit_job_migrate(id, lo, hi, 0.0);
        }
        self.on_load_changed(hi, lhi);
        if lo_old == 0 {
            self.start_service(lo);
        }
        self.on_load_changed(lo, lo_old);
    }
}

/// Run one simulation with the seed recorded in the result.
pub fn run_seeded(cfg: &SimConfig, seed: u64) -> SimResult {
    let mut r = run(cfg, seed);
    r.seed = seed;
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RebalanceRate, StealPolicy, TransferTime};
    use loadsteal_queueing::mm1::{md1_mean_time_in_system, Mm1};
    use loadsteal_queueing::ServiceDistribution;

    fn base(n: usize, lambda: f64) -> SimConfig {
        let mut cfg = SimConfig::paper_default(n, lambda);
        cfg.horizon = 20_000.0;
        cfg.warmup = 2_000.0;
        cfg
    }

    #[test]
    fn single_queue_matches_mm1() {
        let mut cfg = base(1, 0.5);
        cfg.policy = StealPolicy::None;
        let r = run(&cfg, 1);
        let w = Mm1::new(0.5, 1.0).unwrap().mean_time_in_system();
        assert!(
            (r.mean_sojourn() - w).abs() < 0.1,
            "sim {} vs theory {w}",
            r.mean_sojourn()
        );
    }

    #[test]
    fn no_steal_tails_are_geometric() {
        let mut cfg = base(16, 0.6);
        cfg.policy = StealPolicy::None;
        let r = run(&cfg, 2);
        // s_i should be close to lambda^i.
        for i in 1..4 {
            let expect = 0.6f64.powi(i);
            let got = r.load_tails[i as usize];
            assert!((got - expect).abs() < 0.05, "s_{i}: sim {got} vs {expect}");
        }
    }

    #[test]
    fn deterministic_service_beats_exponential_without_stealing() {
        let mut cfg = base(1, 0.8);
        cfg.policy = StealPolicy::None;
        let exp = run(&cfg, 3).mean_sojourn();
        cfg.service = ServiceDistribution::unit_deterministic();
        let det = run(&cfg, 3).mean_sojourn();
        let w_md1 = md1_mean_time_in_system(0.8, 1.0);
        assert!(det < exp, "M/D/1 {det} should beat M/M/1 {exp}");
        assert!((det - w_md1).abs() < 0.25, "sim {det} vs P-K {w_md1}");
    }

    #[test]
    fn stealing_reduces_sojourn_time() {
        let mut cfg = base(64, 0.9);
        cfg.policy = StealPolicy::None;
        let none = run(&cfg, 4).mean_sojourn();
        cfg.policy = StealPolicy::simple_ws();
        let ws = run(&cfg, 4).mean_sojourn();
        assert!(
            ws < 0.6 * none,
            "work stealing should help substantially: {ws} vs {none}"
        );
    }

    #[test]
    fn task_conservation_holds() {
        let cfg = base(32, 0.8);
        let r = run(&cfg, 5);
        assert!(r.tasks_completed <= r.tasks_arrived);
        // In steady state nearly everything that arrived completes.
        let ratio = r.tasks_completed as f64 / r.tasks_arrived as f64;
        assert!(ratio > 0.99, "completion ratio {ratio}");
    }

    #[test]
    fn tails_start_at_one_and_decrease() {
        let cfg = base(32, 0.9);
        let r = run(&cfg, 6);
        assert!((r.load_tails[0] - 1.0).abs() < 1e-9);
        for w in r.load_tails.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn two_choices_beat_one_at_high_load() {
        let mut cfg = base(64, 0.95);
        cfg.policy = StealPolicy::OnEmpty {
            threshold: 2,
            choices: 1,
            batch: 1,
        };
        let one = run(&cfg, 7).mean_sojourn();
        cfg.policy = StealPolicy::OnEmpty {
            threshold: 2,
            choices: 2,
            batch: 1,
        };
        let two = run(&cfg, 7).mean_sojourn();
        assert!(two < one, "2 choices {two} should beat 1 choice {one}");
    }

    #[test]
    fn transfer_delay_slows_things_down() {
        let mut cfg = base(32, 0.8);
        cfg.policy = StealPolicy::OnEmpty {
            threshold: 4,
            choices: 1,
            batch: 1,
        };
        let instant = run(&cfg, 8).mean_sojourn();
        cfg.transfer = Some(TransferTime::exponential(0.25));
        let delayed = run(&cfg, 8).mean_sojourn();
        assert!(
            delayed > instant,
            "transfers {delayed} vs instant {instant}"
        );
    }

    #[test]
    fn preemptive_stealing_runs_and_helps() {
        let mut cfg = base(32, 0.9);
        cfg.policy = StealPolicy::None;
        let none = run(&cfg, 9).mean_sojourn();
        cfg.policy = StealPolicy::Preemptive {
            begin_at: 1,
            rel_threshold: 2,
        };
        let pre = run(&cfg, 9).mean_sojourn();
        assert!(pre < none);
    }

    #[test]
    fn repeated_attempts_beat_single_attempt() {
        let mut cfg = base(32, 0.9);
        cfg.policy = StealPolicy::OnEmpty {
            threshold: 2,
            choices: 1,
            batch: 1,
        };
        let single = run(&cfg, 10).mean_sojourn();
        cfg.policy = StealPolicy::Repeated {
            rate: 4.0,
            threshold: 2,
        };
        let repeated = run(&cfg, 10).mean_sojourn();
        assert!(repeated < single, "repeated {repeated} vs single {single}");
    }

    #[test]
    fn rebalancing_helps_at_high_load() {
        let mut cfg = base(32, 0.9);
        cfg.policy = StealPolicy::None;
        let none = run(&cfg, 11).mean_sojourn();
        cfg.policy = StealPolicy::Rebalance {
            rate: RebalanceRate::Constant(1.0),
        };
        let reb = run(&cfg, 11).mean_sojourn();
        assert!(reb < none, "rebalance {reb} vs none {none}");
    }

    #[test]
    fn batch_steals_run_with_high_threshold() {
        let mut cfg = base(32, 0.9);
        cfg.policy = StealPolicy::OnEmpty {
            threshold: 6,
            choices: 1,
            batch: 3,
        };
        let r = run(&cfg, 12);
        assert!(r.steal_successes > 0);
        assert!(r.tasks_migrated >= r.steal_successes * 3);
    }

    #[test]
    fn drained_mode_reports_makespan() {
        let mut cfg = base(16, 0.0);
        cfg.lambda = 0.0;
        cfg.run_until_drained = true;
        cfg.initial_load = 20;
        cfg.warmup = 0.0;
        cfg.policy = StealPolicy::simple_ws();
        let r = run(&cfg, 13);
        let makespan = r.makespan.expect("must drain");
        assert!(
            makespan > 15.0,
            "20 unit-mean tasks can't finish in {makespan}"
        );
        assert_eq!(r.tasks_completed, 16 * 20);
        assert_eq!(r.tasks_arrived, 16 * 20);
    }

    #[test]
    fn stealing_shortens_drain_time() {
        // The one-shot WS policy can leave the straggler untouched (an
        // idle processor that fails its single attempt never retries),
        // so use the repeated-attempt policy, which provably keeps
        // probing until the system drains.
        let mut cfg = base(16, 0.0);
        cfg.lambda = 0.0;
        cfg.run_until_drained = true;
        cfg.initial_load = 30;
        cfg.warmup = 0.0;
        cfg.policy = StealPolicy::None;
        let slow = run(&cfg, 14).makespan.unwrap();
        cfg.policy = StealPolicy::Repeated {
            rate: 2.0,
            threshold: 2,
        };
        let fast = run(&cfg, 14).makespan.unwrap();
        assert!(fast < slow, "steal {fast} vs none {slow}");
    }

    #[test]
    fn internal_arrivals_increase_load() {
        let mut cfg = base(16, 0.4);
        cfg.policy = StealPolicy::simple_ws();
        let quiet = run(&cfg, 15);
        cfg.internal_lambda = 0.3;
        let busy = run(&cfg, 15);
        assert!(busy.tasks_arrived > quiet.tasks_arrived);
        assert!(busy.mean_sojourn() > quiet.mean_sojourn());
    }

    #[test]
    fn heterogeneous_speeds_run_and_conserve() {
        use crate::config::SpeedProfile;
        let mut cfg = base(16, 0.8);
        cfg.speeds = SpeedProfile::Classes(vec![(0.5, 2.0), (0.5, 1.0)]);
        let r = run(&cfg, 16);
        let ratio = r.tasks_completed as f64 / r.tasks_arrived as f64;
        assert!(ratio > 0.99);
    }

    #[test]
    fn excluding_self_victim_also_works() {
        let mut cfg = base(8, 0.9);
        cfg.allow_self_victim = false;
        let r = run(&cfg, 17);
        assert!(r.steal_successes > 0);
    }

    #[test]
    fn erlang_service_runs() {
        let mut cfg = base(16, 0.8);
        cfg.service = ServiceDistribution::unit_erlang(10);
        let r = run(&cfg, 18);
        assert!(r.mean_sojourn() > 1.0);
    }

    #[test]
    fn snapshots_record_transient_tails() {
        let mut cfg = base(32, 0.8);
        cfg.horizon = 100.0;
        cfg.warmup = 0.0;
        cfg.snapshot_interval = Some(10.0);
        let r = run(&cfg, 20);
        assert_eq!(r.snapshots.len(), 10, "expected one snapshot per 10 s");
        // Starting empty, the early busy fraction is below the late one.
        let early = r.snapshots[0].1.get(1).copied().unwrap_or(0.0);
        let late = r.snapshots[9].1.get(1).copied().unwrap_or(0.0);
        assert!(early <= late + 0.2, "early {early} vs late {late}");
        for (t, tails) in &r.snapshots {
            assert!(*t > 0.0);
            assert!((tails[0] - 1.0).abs() < 1e-9);
            for w in tails.windows(2) {
                assert!(w[0] >= w[1] - 1e-12);
            }
        }
    }

    #[test]
    fn tail_samples_track_the_snapshot_grid() {
        use loadsteal_obs::{CollectingRecorder, Event as ObsEvent};
        let mut cfg = base(32, 0.8);
        cfg.horizon = 100.0;
        cfg.warmup = 0.0;
        cfg.snapshot_interval = Some(10.0);
        cfg.sample_tails = Some(10.0);
        let mut rec = CollectingRecorder::new();
        let r = run_recorded(&cfg, 20, &mut rec);
        let samples: Vec<(f64, [f64; 8], u32)> = rec
            .events()
            .iter()
            .filter_map(|ev| match *ev {
                ObsEvent::TailSample { t, tails, depth } => Some((t, tails, depth)),
                _ => None,
            })
            .collect();
        // Same grid convention as in-memory snapshots: one per 10 s,
        // and identical values at every shared instant.
        assert_eq!(samples.len(), r.snapshots.len());
        for ((st, tails, depth), (qt, snap)) in samples.iter().zip(&r.snapshots) {
            assert_eq!(st, qt);
            for i in 1..=TAIL_SAMPLE_DEPTH {
                let expect = snap.get(i).copied().unwrap_or(0.0);
                assert_eq!(tails[i - 1], expect, "s_{i} at t = {st}");
            }
            // Trailing zeros are elided from the meaningful depth.
            assert!((*depth as usize) <= TAIL_SAMPLE_DEPTH);
            for &s in &tails[*depth as usize..] {
                assert_eq!(s, 0.0);
            }
        }
        // Tails are valid distributions at every instant.
        for (_, tails, _) in &samples {
            for w in tails.windows(2) {
                assert!(w[0] >= w[1] - 1e-12);
            }
            assert!(tails[0] <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn tail_sampling_does_not_perturb_the_run() {
        use loadsteal_obs::CountingRecorder;
        let mut cfg = base(16, 0.8);
        cfg.horizon = 5_000.0;
        cfg.warmup = 500.0;
        let plain = run(&cfg, 24);
        cfg.sample_tails = Some(5.0);
        // Disabled recorder: the flag is inert.
        let silent = run(&cfg, 24);
        assert_eq!(plain.sojourn.mean(), silent.sojourn.mean());
        assert_eq!(plain.events_processed, silent.events_processed);
        // Live recorder: identical trajectory (sampling reads the load
        // histogram, never the RNG), one sample per grid point.
        let mut rec = CountingRecorder::new();
        let traced = run_recorded(&cfg, 24, &mut rec);
        assert_eq!(plain.sojourn.mean(), traced.sojourn.mean());
        assert_eq!(plain.events_processed, traced.events_processed);
        assert_eq!(rec.counts().tail_samples, 1_000);
        // Without the flag a live recorder sees no samples.
        cfg.sample_tails = None;
        let mut rec = CountingRecorder::new();
        let _ = run_recorded(&cfg, 24, &mut rec);
        assert_eq!(rec.counts().tail_samples, 0);
    }

    #[test]
    #[should_panic(expected = "invalid simulation config")]
    fn invalid_config_panics() {
        let mut cfg = base(0, 0.5);
        cfg.n = 0;
        let _ = run(&cfg, 1);
    }

    fn heartbeat_count(cfg: &SimConfig) -> u64 {
        use loadsteal_obs::CountingRecorder;
        let mut rec = CountingRecorder::new();
        let _ = run_recorded(cfg, 21, &mut rec);
        rec.counts().heartbeats
    }

    #[test]
    fn heartbeat_interval_is_configurable_and_zero_disables() {
        let mut cfg = base(8, 0.8);
        cfg.horizon = 5_000.0;
        cfg.warmup = 500.0;
        // Default cadence (1 << 16) fires rarely at this scale…
        let default_beats = heartbeat_count(&cfg);
        // …a tight cadence fires much more often…
        cfg.heartbeat_every = 1_000;
        let tight_beats = heartbeat_count(&cfg);
        assert!(
            tight_beats > default_beats,
            "tight {tight_beats} vs default {default_beats}"
        );
        assert!(tight_beats > 10);
        // …and 0 disables heartbeats entirely.
        cfg.heartbeat_every = 0;
        assert_eq!(heartbeat_count(&cfg), 0);
    }

    #[test]
    fn heartbeats_silent_without_recorder() {
        // A disabled recorder emits nothing regardless of cadence.
        let mut cfg = base(8, 0.8);
        cfg.horizon = 2_000.0;
        cfg.warmup = 200.0;
        cfg.heartbeat_every = 100;
        let r = run(&cfg, 22);
        assert!(r.events_processed > 100);
    }

    #[test]
    fn job_tracing_does_not_perturb_the_run() {
        use loadsteal_obs::CountingRecorder;
        let mut cfg = base(16, 0.8);
        cfg.horizon = 5_000.0;
        cfg.warmup = 500.0;
        let plain = run(&cfg, 24);
        cfg.trace_jobs = true;
        // With a disabled recorder the flag is inert.
        let silent = run(&cfg, 24);
        assert_eq!(plain.sojourn.mean(), silent.sojourn.mean());
        assert_eq!(plain.events_processed, silent.events_processed);
        // With a live recorder the trajectory is still identical — job
        // ids come from a counter, never the RNG.
        let mut rec = CountingRecorder::new();
        let traced = run_recorded(&cfg, 24, &mut rec);
        assert_eq!(plain.sojourn.mean(), traced.sojourn.mean());
        assert_eq!(plain.events_processed, traced.events_processed);
        let c = rec.counts();
        assert!(c.job_events > 0);
        // Without the flag a live recorder sees no job events.
        cfg.trace_jobs = false;
        let mut rec = CountingRecorder::new();
        let _ = run_recorded(&cfg, 24, &mut rec);
        assert_eq!(rec.counts().job_events, 0);
    }

    #[test]
    fn job_events_tell_a_consistent_story() {
        use loadsteal_obs::{CollectingRecorder, Event as ObsEvent, JobEventKind};
        use std::collections::HashMap;
        let mut cfg = base(8, 0.85);
        cfg.horizon = 1_000.0;
        cfg.warmup = 0.0;
        cfg.trace_jobs = true;
        let mut rec = CollectingRecorder::new();
        let result = run_recorded(&cfg, 25, &mut rec);
        let mut arrivals: HashMap<u64, f64> = HashMap::new();
        let mut starts = 0u64;
        let mut completions = 0u64;
        let mut migrated = 0u64;
        for ev in rec.events() {
            if let ObsEvent::Job { kind, t, job, .. } = *ev {
                match kind {
                    JobEventKind::Arrival => {
                        assert!(arrivals.insert(job, t).is_none(), "job {job} arrived twice");
                    }
                    JobEventKind::Migrate => migrated += 1,
                    JobEventKind::ServiceStart => {
                        starts += 1;
                        assert!(arrivals[&job] <= t, "service before arrival for job {job}");
                    }
                    JobEventKind::Completion => {
                        completions += 1;
                        assert!(
                            arrivals[&job] <= t,
                            "completion before arrival for job {job}"
                        );
                    }
                }
            }
        }
        assert_eq!(arrivals.len() as u64, result.tasks_arrived);
        assert_eq!(completions, result.tasks_completed);
        assert_eq!(migrated, result.tasks_migrated);
        // Every completion follows a service start; some jobs may still
        // be queued (arrived but unstarted) at the horizon.
        assert!(starts >= completions);
        assert!(starts <= result.tasks_arrived);
    }

    #[test]
    fn sojourn_digest_matches_online_stats() {
        let mut cfg = base(16, 0.8);
        cfg.horizon = 5_000.0;
        cfg.warmup = 500.0;
        // Off by default.
        assert!(run(&cfg, 23).sojourn_digest.is_none());
        cfg.sojourn_digest = true;
        let r = run(&cfg, 23);
        let d = r.sojourn_digest.as_ref().expect("digest requested");
        assert_eq!(d.count(), r.sojourn.count());
        assert!(
            (d.mean() - r.sojourn.mean()).abs() < 1e-9 * r.sojourn.mean(),
            "digest mean {} vs stats mean {}",
            d.mean(),
            r.sojourn.mean()
        );
        // Quantiles are ordered and bracket the mean plausibly.
        let p50 = d.quantile(0.5).unwrap();
        let p99 = d.quantile(0.99).unwrap();
        assert!(p50 < p99);
        assert!(p50 <= r.sojourn.mean() && r.sojourn.mean() <= p99);
        // The digest must not perturb the simulation itself.
        let plain = {
            let mut c = cfg.clone();
            c.sojourn_digest = false;
            run(&c, 23)
        };
        assert_eq!(plain.sojourn.mean(), r.sojourn.mean());
        assert_eq!(plain.events_processed, r.events_processed);
    }

    // ----- engine-equivalence regressions ---------------------------------

    /// Run `cfg` under both engines with a collecting recorder and full
    /// instrumentation, returning the two (trace, result) pairs.
    fn both_engines(
        mut cfg: SimConfig,
        seed: u64,
    ) -> ((Vec<ObsEvent>, SimResult), (Vec<ObsEvent>, SimResult)) {
        use loadsteal_obs::CollectingRecorder;
        cfg.trace_jobs = true;
        cfg.engine = EngineKind::Heap;
        let mut rec_h = CollectingRecorder::new();
        let r_h = run_recorded(&cfg, seed, &mut rec_h);
        cfg.engine = EngineKind::Calendar;
        let mut rec_c = CollectingRecorder::new();
        let r_c = run_recorded(&cfg, seed, &mut rec_c);
        (
            (rec_h.events().to_vec(), r_h),
            (rec_c.events().to_vec(), r_c),
        )
    }

    fn assert_equivalent(cfg: SimConfig, seed: u64, what: &str) {
        let ((ev_h, r_h), (ev_c, r_c)) = both_engines(cfg, seed);
        assert_eq!(
            r_h.events_processed, r_c.events_processed,
            "{what}: event counts diverged"
        );
        assert_eq!(
            r_h.sojourn.mean(),
            r_c.sojourn.mean(),
            "{what}: sojourn means diverged"
        );
        assert_eq!(r_h.load_tails, r_c.load_tails, "{what}: tails diverged");
        assert_eq!(ev_h.len(), ev_c.len(), "{what}: trace lengths diverged");
        for (i, (a, b)) in ev_h.iter().zip(&ev_c).enumerate() {
            assert_eq!(a, b, "{what}: traces diverged at event {i}");
        }
    }

    #[test]
    fn heap_and_calendar_engines_emit_identical_traces() {
        // One config per structurally distinct event mix: plain WS,
        // repeated probes, rebalancing, transfer delays, sharing, and
        // internal arrivals.
        let mut ws = base(16, 0.8);
        ws.horizon = 500.0;
        ws.warmup = 50.0;
        assert_equivalent(ws.clone(), 31, "simple ws");

        let mut rep = ws.clone();
        rep.policy = StealPolicy::Repeated {
            rate: 2.0,
            threshold: 2,
        };
        assert_equivalent(rep, 32, "repeated");

        let mut reb = ws.clone();
        reb.policy = StealPolicy::Rebalance {
            rate: RebalanceRate::PerTask(0.5),
        };
        assert_equivalent(reb, 33, "rebalance");

        let mut tr = ws.clone();
        tr.policy = StealPolicy::OnEmpty {
            threshold: 4,
            choices: 2,
            batch: 1,
        };
        tr.transfer = Some(TransferTime::exponential(0.5));
        assert_equivalent(tr, 34, "transfer");

        let mut share = ws.clone();
        share.policy = StealPolicy::Share {
            send_threshold: 2,
            recv_threshold: 2,
        };
        assert_equivalent(share, 35, "share");

        let mut internal = ws;
        internal.internal_lambda = 0.2;
        assert_equivalent(internal, 36, "internal arrivals");
    }

    #[test]
    fn simultaneous_events_replay_identically_across_engines() {
        // Deterministic arrivals land on every processor at the same
        // instants (t = 2, 4, 6, …) and deterministic unit service makes
        // completions collide with them exactly — a dense stream of
        // time ties that only the pinned (time, seq) order untangles.
        let mut cfg = base(8, 0.5);
        cfg.service = ServiceDistribution::unit_deterministic();
        cfg.arrival = Some(ServiceDistribution::Deterministic { value: 2.0 });
        cfg.horizon = 400.0;
        cfg.warmup = 40.0;
        assert_equivalent(cfg.clone(), 37, "deterministic tie storm");
        // And each engine replays itself bit-for-bit.
        for engine in [EngineKind::Heap, EngineKind::Calendar] {
            cfg.engine = engine;
            let a = run(&cfg, 37);
            let b = run(&cfg, 37);
            assert_eq!(a.sojourn.mean(), b.sojourn.mean(), "{engine} replay");
            assert_eq!(a.events_processed, b.events_processed, "{engine} replay");
        }
    }

    #[test]
    fn drained_runs_agree_across_engines() {
        let mut cfg = base(16, 0.0);
        cfg.lambda = 0.0;
        cfg.run_until_drained = true;
        cfg.initial_load = 12;
        cfg.warmup = 0.0;
        cfg.policy = StealPolicy::Repeated {
            rate: 2.0,
            threshold: 2,
        };
        cfg.engine = EngineKind::Heap;
        let heap = run(&cfg, 38);
        cfg.engine = EngineKind::Calendar;
        let cal = run(&cfg, 38);
        assert_eq!(heap.makespan, cal.makespan);
        assert_eq!(heap.events_processed, cal.events_processed);
    }
}
