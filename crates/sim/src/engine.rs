//! The discrete-event engine: one run of the n-processor work-stealing
//! system.
//!
//! Design notes:
//!
//! * A single `BinaryHeap` orders all future events; time ties break by
//!   sequence number so runs are deterministic given a seed.
//! * Service completions are never stale — steals and rebalances only
//!   move *tail* tasks, so the task at the head of a queue can only
//!   leave by completing. Everything whose rate depends on mutable state
//!   (retry probes, rebalance ticks, internal arrivals) carries an epoch
//!   and is lazily invalidated; exponential interarrival times make
//!   resampling on every rate change statistically exact.
//! * Victims are sampled uniformly over all `n` processors by default
//!   (a self-draw simply fails), which is exactly the limiting
//!   probability `s_T` used by the differential equations.

use std::collections::{BinaryHeap, VecDeque};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use loadsteal_obs::span;
use loadsteal_obs::{
    Digest, Event as ObsEvent, JobEventKind, NullRecorder, Recorder, SimEventKind,
    TAIL_SAMPLE_DEPTH,
};
use loadsteal_queueing::dist::exp_sample;
use loadsteal_queueing::OnlineStats;

use crate::config::{SimConfig, SpeedProfile, StealPolicy};
use crate::event::{Event, EventKind};
use crate::metrics::{LoadHistogram, SimResult};

/// A task: its stable identity, when it entered the system, and how
/// much work it carries.
#[derive(Debug, Clone, Copy)]
struct Task {
    /// Job id, assigned from a per-run counter at admission. The
    /// counter runs unconditionally (it draws no randomness), so ids
    /// are identical whether or not job tracing is on.
    id: u64,
    arrived: f64,
    work: f64,
}

/// Per-processor state.
#[derive(Debug, Clone)]
struct Proc {
    /// FIFO queue; the front task is in service.
    queue: VecDeque<Task>,
    /// Invalidates steal probes and rebalance ticks.
    probe_epoch: u32,
    /// Invalidates internal-arrival events.
    internal_epoch: u32,
    /// A stolen task is in flight towards this processor.
    waiting_transfer: bool,
    /// Service speed (rate multiplier).
    speed: f64,
}

/// Run one simulation to completion and collect its measurements.
///
/// # Panics
/// Panics if the configuration fails [`SimConfig::validate`].
pub fn run(cfg: &SimConfig, seed: u64) -> SimResult {
    run_recorded(cfg, seed, &mut NullRecorder)
}

/// [`run`] with per-event observations (arrivals, completions, steal
/// attempts/successes, migrations, heartbeats) sent to `rec`.
///
/// The recorder's [`Recorder::enabled`] hint is sampled once at engine
/// construction; a disabled recorder costs one predictable branch per
/// emission site and builds no events. The engine is monomorphized over
/// `R`, so the [`NullRecorder`] path compiles to the uninstrumented
/// loop.
///
/// # Panics
/// Panics if the configuration fails [`SimConfig::validate`].
pub fn run_recorded<R: Recorder>(cfg: &SimConfig, seed: u64, rec: &mut R) -> SimResult {
    if let Err(e) = cfg.validate() {
        panic!("invalid simulation config: {e}");
    }
    Engine::new(cfg, seed, rec).run()
}

struct Engine<'a, R: Recorder> {
    cfg: &'a SimConfig,
    rec: &'a mut R,
    /// `rec.enabled()`, sampled once.
    tracing: bool,
    /// `tracing && cfg.trace_jobs`, sampled once.
    job_tracing: bool,
    /// `tracing && cfg.sample_tails.is_some()`, sampled once.
    tail_sampling: bool,
    /// Tail-sample grid spacing (`∞` when sampling is off, so the hot
    /// loop's grid check is one always-false comparison).
    sample_every: f64,
    /// Next tail-sample grid time.
    next_tail_sample: f64,
    /// Next job id to assign.
    next_job_id: u64,
    events_processed: u64,
    procs: Vec<Proc>,
    heap: BinaryHeap<Event>,
    rng: SmallRng,
    seq: u64,
    t: f64,
    tasks_in_system: u64,
    tasks_arrived: u64,
    tasks_completed: u64,
    steal_attempts: u64,
    steal_successes: u64,
    tasks_migrated: u64,
    sojourn: OnlineStats,
    sojourn_digest: Option<Digest>,
    hist: LoadHistogram,
    makespan: Option<f64>,
    snapshots: Vec<(f64, Vec<f64>)>,
    next_snapshot: f64,
}

impl<'a, R: Recorder> Engine<'a, R> {
    fn new(cfg: &'a SimConfig, seed: u64, rec: &'a mut R) -> Self {
        let rng = SmallRng::seed_from_u64(seed);
        let tracing = rec.enabled();
        let procs = (0..cfg.n)
            .map(|p| Proc {
                queue: VecDeque::new(),
                probe_epoch: 0,
                internal_epoch: 0,
                waiting_transfer: false,
                speed: match &cfg.speeds {
                    SpeedProfile::Homogeneous => 1.0,
                    profile => profile.speed_of(p, cfg.n),
                },
            })
            .collect();
        Self {
            cfg,
            rec,
            tracing,
            job_tracing: tracing && cfg.trace_jobs,
            tail_sampling: tracing && cfg.sample_tails.is_some(),
            sample_every: if tracing {
                cfg.sample_tails.unwrap_or(f64::INFINITY)
            } else {
                f64::INFINITY
            },
            next_tail_sample: if tracing {
                cfg.sample_tails.unwrap_or(f64::INFINITY)
            } else {
                f64::INFINITY
            },
            next_job_id: 0,
            events_processed: 0,
            procs,
            heap: BinaryHeap::new(),
            rng,
            seq: 0,
            t: 0.0,
            tasks_in_system: 0,
            tasks_arrived: 0,
            tasks_completed: 0,
            steal_attempts: 0,
            steal_successes: 0,
            tasks_migrated: 0,
            sojourn: OnlineStats::new(),
            sojourn_digest: cfg.sojourn_digest.then(Digest::new),
            hist: LoadHistogram::new(cfg.n, cfg.initial_load, cfg.warmup),
            makespan: None,
            snapshots: Vec::new(),
            next_snapshot: cfg.snapshot_interval.unwrap_or(f64::INFINITY),
        }
    }

    #[inline]
    fn schedule(&mut self, time: f64, kind: EventKind) {
        self.seq += 1;
        self.heap.push(Event {
            time,
            seq: self.seq,
            kind,
        });
    }

    #[inline]
    fn sample_work(&mut self) -> f64 {
        self.cfg.service.sample(&mut self.rng)
    }

    /// Mint a task with the next job id.
    #[inline]
    fn new_task(&mut self, arrived: f64, work: f64) -> Task {
        let id = self.next_job_id;
        self.next_job_id += 1;
        Task { id, arrived, work }
    }

    /// Report one job lifecycle stage (no-op unless job tracing).
    #[inline]
    fn emit_job(&mut self, kind: JobEventKind, job: u64, p: usize) {
        if self.job_tracing {
            self.rec.record(&ObsEvent::Job {
                kind,
                t: self.t,
                job,
                proc: p as u32,
                src: None,
                delay: 0.0,
            });
        }
    }

    /// Report one job hop from victim `src` to thief `dst` with its
    /// transfer delay (no-op unless job tracing).
    #[inline]
    fn emit_job_migrate(&mut self, job: u64, dst: usize, src: usize, delay: f64) {
        if self.job_tracing {
            self.rec.record(&ObsEvent::Job {
                kind: JobEventKind::Migrate,
                t: self.t,
                job,
                proc: dst as u32,
                src: Some(src as u32),
                delay,
            });
        }
    }

    /// Emit the instantaneous empirical tail vector at grid time `t`
    /// (callers gate on `tail_sampling`). O(k) in the histogram depth:
    /// the load histogram already maintains counts-per-depth, so no
    /// per-processor walk happens here.
    fn emit_tail_sample(&mut self, t: f64) {
        let inst = self.hist.instant_tails(self.cfg.n);
        let mut tails = [0.0f64; TAIL_SAMPLE_DEPTH];
        let mut depth = 0u32;
        for i in 1..=TAIL_SAMPLE_DEPTH {
            let s = inst.get(i).copied().unwrap_or(0.0);
            tails[i - 1] = s;
            if s != 0.0 {
                depth = i as u32;
            }
        }
        self.rec.record(&ObsEvent::TailSample { t, tails, depth });
    }

    /// Report one simulator observation (no-op unless tracing).
    #[inline]
    fn emit(&mut self, kind: SimEventKind, p: usize, count: u32) {
        if self.tracing {
            self.rec.record(&ObsEvent::Sim {
                kind,
                t: self.t,
                proc: p as u32,
                src: None,
                count,
            });
        }
    }

    /// Report a migration of `count` tasks from `src` to `dst` (no-op
    /// unless tracing). Recording the donor lets trace consumers rebuild
    /// per-processor queue timelines.
    #[inline]
    fn emit_migration(&mut self, dst: usize, src: usize, count: u32) {
        if self.tracing {
            self.rec.record(&ObsEvent::Sim {
                kind: SimEventKind::Migration,
                t: self.t,
                proc: dst as u32,
                src: Some(src as u32),
                count,
            });
        }
    }

    fn initialize(&mut self) {
        // Pre-loaded tasks (static experiments).
        if self.cfg.initial_load > 0 {
            for p in 0..self.cfg.n {
                for _ in 0..self.cfg.initial_load {
                    let work = self.sample_work();
                    let task = self.new_task(0.0, work);
                    self.procs[p].queue.push_back(task);
                    self.emit(SimEventKind::Arrival, p, 1);
                    self.emit_job(JobEventKind::Arrival, task.id, p);
                }
                self.tasks_in_system += self.cfg.initial_load as u64;
                self.tasks_arrived += self.cfg.initial_load as u64;
                // The histogram was constructed at this initial load;
                // only service needs starting.
                let front = self.procs[p].queue.front().copied().unwrap();
                self.schedule_completion(p, front);
            }
        }
        // External arrival streams.
        if self.cfg.lambda > 0.0 {
            for p in 0..self.cfg.n {
                let dt = self.sample_interarrival();
                self.schedule(dt, EventKind::ExtArrival { proc: p as u32 });
            }
        }
        // Internal arrival streams for initially busy processors.
        if self.cfg.internal_lambda > 0.0 {
            for p in 0..self.cfg.n {
                if !self.procs[p].queue.is_empty() {
                    self.schedule_internal_arrival(p);
                }
            }
        }
        // Repeated-steal probes for initially empty processors.
        if let StealPolicy::Repeated { rate, .. } = self.cfg.policy {
            for p in 0..self.cfg.n {
                if self.procs[p].queue.is_empty() {
                    self.schedule_steal_probe(p, rate);
                }
            }
        }
        // Rebalance ticks for every processor.
        if let StealPolicy::Rebalance { rate } = self.cfg.policy {
            for p in 0..self.cfg.n {
                let r = rate.rate(self.procs[p].queue.len());
                self.schedule_rebalance_tick(p, r);
            }
        }
    }

    fn run(mut self) -> SimResult {
        let _run_span = span::span("sim.run");
        let wall = std::time::Instant::now();
        self.initialize();
        let horizon = if self.cfg.run_until_drained {
            f64::INFINITY
        } else {
            self.cfg.horizon
        };
        while let Some(ev) = self.heap.pop() {
            // Snapshots capture the state *just before* the first event
            // past each snapshot time (loads are piecewise constant).
            while self.next_snapshot <= ev.time && self.next_snapshot <= horizon {
                let tails = self.hist.instant_tails(self.cfg.n);
                self.snapshots.push((self.next_snapshot, tails));
                self.next_snapshot += self.cfg.snapshot_interval.unwrap();
            }
            // Tail samples use the same just-before-the-next-event
            // convention, but flow to the recorder instead of memory so
            // piped consumers see the trajectory live. Disabled cost:
            // one always-false comparison (`next_tail_sample = ∞`).
            while self.next_tail_sample <= ev.time && self.next_tail_sample <= horizon {
                let t = self.next_tail_sample;
                self.emit_tail_sample(t);
                self.next_tail_sample += self.sample_every;
            }
            if ev.time > horizon {
                self.t = horizon;
                break;
            }
            self.t = ev.time;
            self.events_processed += 1;
            if self.tracing
                && self.cfg.heartbeat_every != 0
                && self.events_processed % self.cfg.heartbeat_every == 0
            {
                let _hb_span = span::span("sim.heartbeat");
                self.rec.record(&ObsEvent::Heartbeat {
                    t: self.t,
                    events: self.events_processed,
                    tasks_in_system: self.tasks_in_system,
                });
                // Live transient consumers (piped `transient -`, the
                // serve endpoint) need samples at heartbeat cadence,
                // not batched until the run ends.
                if self.tail_sampling {
                    self.rec.flush();
                }
            }
            // One profiler span per simulated event, named by phase.
            // Disabled cost: selecting the static name plus one relaxed
            // atomic load — inside the bench gate's ≤2% budget.
            let _ev_span = span::span(match ev.kind {
                EventKind::ExtArrival { .. } | EventKind::IntArrival { .. } => "sim.arrival",
                EventKind::Completion { .. } => "sim.completion",
                EventKind::StealProbe { .. } => "sim.steal_attempt",
                EventKind::RebalanceTick { .. } => "sim.rebalance",
                EventKind::TransferArrive { .. } => "sim.transfer",
            });
            match ev.kind {
                EventKind::ExtArrival { proc } => self.on_ext_arrival(proc as usize),
                EventKind::IntArrival { proc, epoch } => self.on_int_arrival(proc as usize, epoch),
                EventKind::Completion { proc } => self.on_completion(proc as usize),
                EventKind::StealProbe { proc, epoch } => self.on_steal_probe(proc as usize, epoch),
                EventKind::RebalanceTick { proc, epoch } => {
                    self.on_rebalance_tick(proc as usize, epoch)
                }
                EventKind::TransferArrive {
                    proc,
                    job,
                    arrived,
                    work,
                } => self.on_transfer_arrive(proc as usize, job, arrived, work),
            }
            drop(_ev_span);
            if self.cfg.run_until_drained && self.tasks_in_system == 0 {
                self.makespan = Some(self.t);
                break;
            }
        }
        let end = if self.cfg.run_until_drained {
            self.t
        } else {
            self.cfg.horizon
        };
        self.hist.finish(end);
        if self.tracing {
            self.rec.flush();
        }
        SimResult {
            sojourn: self.sojourn,
            sojourn_digest: self.sojourn_digest,
            tasks_arrived: self.tasks_arrived,
            tasks_completed: self.tasks_completed,
            steal_attempts: self.steal_attempts,
            steal_successes: self.steal_successes,
            tasks_migrated: self.tasks_migrated,
            events_processed: self.events_processed,
            wall_ms: wall.elapsed().as_secs_f64() * 1e3,
            load_tails: self.hist.tails(self.cfg.n),
            snapshots: self.snapshots,
            end_time: end,
            makespan: self.makespan,
            seed: 0, // filled by the caller-facing wrapper below
        }
    }

    // ----- event handlers -------------------------------------------------

    fn on_ext_arrival(&mut self, p: usize) {
        let work = self.sample_work();
        let task = self.new_task(self.t, work);
        self.route_arrival(p, task);
        let dt = self.sample_interarrival();
        self.schedule(self.t + dt, EventKind::ExtArrival { proc: p as u32 });
    }

    /// Deliver a fresh arrival, applying the work-sharing forward rule
    /// when the `Share` policy is active.
    fn route_arrival(&mut self, p: usize, task: Task) {
        if let StealPolicy::Share {
            send_threshold,
            recv_threshold,
        } = self.cfg.policy
        {
            if self.procs[p].queue.len() >= send_threshold {
                self.steal_attempts += 1; // a probe message
                self.emit(SimEventKind::StealAttempt, p, 1);
                let target = self.pick_victim(p, 1);
                if target != p && self.procs[target].queue.len() < recv_threshold {
                    self.steal_successes += 1;
                    self.tasks_migrated += 1;
                    self.emit(SimEventKind::StealSuccess, p, 1);
                    self.emit_migration(target, p, 1);
                    self.admit_task(target, task);
                    return;
                }
            }
        }
        self.admit_task(p, task);
    }

    #[inline]
    fn sample_interarrival(&mut self) -> f64 {
        match &self.cfg.arrival {
            None => exp_sample(&mut self.rng, self.cfg.lambda),
            Some(dist) => dist.sample(&mut self.rng),
        }
    }

    fn on_int_arrival(&mut self, p: usize, epoch: u32) {
        if self.procs[p].internal_epoch != epoch {
            return;
        }
        debug_assert!(!self.procs[p].queue.is_empty());
        let work = self.sample_work();
        let task = self.new_task(self.t, work);
        self.route_arrival(p, task);
        self.schedule_internal_arrival(p);
    }

    fn on_completion(&mut self, p: usize) {
        let old_len = self.procs[p].queue.len();
        let task = self.procs[p]
            .queue
            .pop_front()
            .expect("completion fired on an empty queue");
        self.tasks_in_system -= 1;
        self.tasks_completed += 1;
        self.emit(SimEventKind::Completion, p, 1);
        self.emit_job(JobEventKind::Completion, task.id, p);
        if self.t >= self.cfg.warmup {
            let dt = self.t - task.arrived;
            self.sojourn.push(dt);
            if let Some(d) = self.sojourn_digest.as_mut() {
                d.record(dt);
            }
        }
        // Start the next task before stealing: a steal sees a consistent
        // queue and can never take the in-service task.
        if let Some(next) = self.procs[p].queue.front().copied() {
            self.schedule_completion(p, next);
        }
        self.on_load_changed(p, old_len);

        let remaining = self.procs[p].queue.len();
        match self.cfg.policy {
            StealPolicy::None | StealPolicy::Rebalance { .. } | StealPolicy::Share { .. } => {}
            StealPolicy::OnEmpty {
                threshold,
                choices,
                batch,
            } => {
                if remaining == 0 && !self.procs[p].waiting_transfer {
                    self.attempt_steal(p, threshold, choices, batch);
                }
            }
            StealPolicy::Preemptive {
                begin_at,
                rel_threshold,
            } => {
                if remaining <= begin_at && !self.procs[p].waiting_transfer {
                    self.attempt_steal(p, remaining + rel_threshold, 1, 1);
                }
            }
            StealPolicy::Repeated { rate, threshold } => {
                if remaining == 0 {
                    let stolen = self.attempt_steal(p, threshold, 1, 1);
                    if !stolen && self.procs[p].queue.is_empty() {
                        self.schedule_steal_probe(p, rate);
                    }
                }
            }
        }
    }

    fn on_steal_probe(&mut self, p: usize, epoch: u32) {
        if self.procs[p].probe_epoch != epoch {
            return;
        }
        let StealPolicy::Repeated { rate, threshold } = self.cfg.policy else {
            return;
        };
        debug_assert!(self.procs[p].queue.is_empty());
        let stolen = self.attempt_steal(p, threshold, 1, 1);
        if !stolen && self.procs[p].queue.is_empty() {
            self.schedule_steal_probe(p, rate);
        }
    }

    fn on_rebalance_tick(&mut self, p: usize, epoch: u32) {
        if self.procs[p].probe_epoch != epoch {
            return;
        }
        let StealPolicy::Rebalance { rate } = self.cfg.policy else {
            return;
        };
        self.steal_attempts += 1;
        self.emit(SimEventKind::StealAttempt, p, 1);
        // Partner: uniform among the other processors.
        let partner = if self.cfg.n == 1 {
            p
        } else {
            let mut q = self.rng.random_range(0..self.cfg.n - 1);
            if q >= p {
                q += 1;
            }
            q
        };
        if partner != p {
            self.rebalance_pair(p, partner);
        }
        // If our load changed, `on_load_changed` already rescheduled the
        // tick under a fresh epoch; otherwise continue this stream.
        if self.procs[p].probe_epoch == epoch {
            let r = rate.rate(self.procs[p].queue.len());
            self.schedule_rebalance_tick(p, r);
        }
    }

    fn on_transfer_arrive(&mut self, p: usize, job: u64, arrived: f64, work: f64) {
        debug_assert!(self.procs[p].waiting_transfer);
        self.procs[p].waiting_transfer = false;
        // The task re-enters a queue; it was counted in-system throughout.
        let old_len = self.procs[p].queue.len();
        self.procs[p].queue.push_back(Task {
            id: job,
            arrived,
            work,
        });
        if old_len == 0 {
            let front = self.procs[p].queue.front().copied().unwrap();
            self.schedule_completion(p, front);
        }
        self.on_load_changed(p, old_len);
    }

    // ----- mechanics ------------------------------------------------------

    /// A genuinely new task enters the system at processor `p`.
    fn admit_task(&mut self, p: usize, task: Task) {
        self.tasks_in_system += 1;
        self.tasks_arrived += 1;
        self.emit(SimEventKind::Arrival, p, 1);
        self.emit_job(JobEventKind::Arrival, task.id, p);
        let old_len = self.procs[p].queue.len();
        self.procs[p].queue.push_back(task);
        if old_len == 0 {
            self.schedule_completion(p, task);
        }
        self.on_load_changed(p, old_len);
    }

    /// The moment `task` reaches the front of `p`'s queue: its service
    /// begins now and its completion is scheduled. The single site for
    /// `job_service_start` — steals only move tail tasks, so a job's
    /// service starts exactly once, on its final processor.
    fn schedule_completion(&mut self, p: usize, task: Task) {
        self.emit_job(JobEventKind::ServiceStart, task.id, p);
        let duration = task.work / self.procs[p].speed;
        self.schedule(self.t + duration, EventKind::Completion { proc: p as u32 });
    }

    fn schedule_internal_arrival(&mut self, p: usize) {
        let dt = exp_sample(&mut self.rng, self.cfg.internal_lambda);
        let epoch = self.procs[p].internal_epoch;
        self.schedule(
            self.t + dt,
            EventKind::IntArrival {
                proc: p as u32,
                epoch,
            },
        );
    }

    fn schedule_steal_probe(&mut self, p: usize, rate: f64) {
        let dt = exp_sample(&mut self.rng, rate);
        let epoch = self.procs[p].probe_epoch;
        self.schedule(
            self.t + dt,
            EventKind::StealProbe {
                proc: p as u32,
                epoch,
            },
        );
    }

    fn schedule_rebalance_tick(&mut self, p: usize, rate: f64) {
        if rate <= 0.0 {
            return;
        }
        let dt = exp_sample(&mut self.rng, rate);
        let epoch = self.procs[p].probe_epoch;
        self.schedule(
            self.t + dt,
            EventKind::RebalanceTick {
                proc: p as u32,
                epoch,
            },
        );
    }

    /// Bookkeeping after processor `p`'s queue length changed.
    fn on_load_changed(&mut self, p: usize, old_len: usize) {
        let new_len = self.procs[p].queue.len();
        if new_len == old_len {
            return;
        }
        self.hist.transition(old_len, new_len, self.t);
        // Anything whose rate depends on the load is invalidated.
        self.procs[p].probe_epoch = self.procs[p].probe_epoch.wrapping_add(1);
        if let StealPolicy::Rebalance { rate } = self.cfg.policy {
            let r = rate.rate(new_len);
            self.schedule_rebalance_tick(p, r);
        }
        // Internal arrivals run exactly while the processor is busy.
        if self.cfg.internal_lambda > 0.0 {
            if old_len == 0 && new_len > 0 {
                self.schedule_internal_arrival(p);
            } else if old_len > 0 && new_len == 0 {
                self.procs[p].internal_epoch = self.procs[p].internal_epoch.wrapping_add(1);
            }
        }
    }

    /// Pick a victim: the most loaded of `choices` iid uniform draws.
    fn pick_victim(&mut self, thief: usize, choices: usize) -> usize {
        let mut best = usize::MAX;
        let mut best_load = 0;
        for _ in 0..choices {
            let v = if self.cfg.allow_self_victim {
                self.rng.random_range(0..self.cfg.n)
            } else if self.cfg.n == 1 {
                thief
            } else {
                let mut v = self.rng.random_range(0..self.cfg.n - 1);
                if v >= thief {
                    v += 1;
                }
                v
            };
            let load = self.procs[v].queue.len();
            if best == usize::MAX || load > best_load {
                best = v;
                best_load = load;
            }
        }
        best
    }

    /// Attempt a steal of up to `batch` tasks for `thief` against a
    /// victim-load requirement. Returns whether tasks moved (or, with
    /// transfer delays, started moving).
    fn attempt_steal(
        &mut self,
        thief: usize,
        need_victim_load: usize,
        choices: usize,
        batch: usize,
    ) -> bool {
        self.steal_attempts += 1;
        self.emit(SimEventKind::StealAttempt, thief, 1);
        let victim = self.pick_victim(thief, choices);
        if victim == thief {
            return false;
        }
        let victim_len = self.procs[victim].queue.len();
        if victim_len < need_victim_load {
            return false;
        }
        self.steal_successes += 1;
        self.emit(SimEventKind::StealSuccess, thief, 1);

        if self.cfg.transfer.is_some() {
            // Single-task steal with a transfer delay: the task leaves
            // the victim now and reaches the thief later.
            debug_assert_eq!(batch, 1);
            let task = self.procs[victim].queue.pop_back().unwrap();
            self.tasks_migrated += 1;
            self.emit_migration(thief, victim, 1);
            self.on_load_changed(victim, victim_len);
            self.procs[thief].waiting_transfer = true;
            let delay = self
                .cfg
                .transfer
                .as_ref()
                .unwrap()
                .dist
                .sample(&mut self.rng);
            self.emit_job_migrate(task.id, thief, victim, delay);
            self.schedule(
                self.t + delay,
                EventKind::TransferArrive {
                    proc: thief as u32,
                    job: task.id,
                    arrived: task.arrived,
                    work: task.work,
                },
            );
            return true;
        }

        // Instantaneous steal of `batch` tail tasks, preserving their
        // relative order on the thief.
        let take = batch.min(victim_len.saturating_sub(1));
        debug_assert!(take >= 1);
        let thief_old = self.procs[thief].queue.len();
        let split_at = victim_len - take;
        let mut moved = self.procs[victim].queue.split_off(split_at);
        let moved_ids: Vec<u64> = if self.job_tracing {
            moved.iter().map(|t| t.id).collect()
        } else {
            Vec::new()
        };
        self.procs[thief].queue.append(&mut moved);
        self.tasks_migrated += take as u64;
        self.emit_migration(thief, victim, take as u32);
        for id in moved_ids {
            self.emit_job_migrate(id, thief, victim, 0.0);
        }
        self.on_load_changed(victim, victim_len);
        if thief_old == 0 {
            let front = self.procs[thief].queue.front().copied().unwrap();
            self.schedule_completion(thief, front);
        }
        self.on_load_changed(thief, thief_old);
        true
    }

    /// Equalize the loads of `a` and `b` (Section 3.4): the initially
    /// larger queue keeps `⌈total/2⌉`, donating tail tasks to the other.
    fn rebalance_pair(&mut self, a: usize, b: usize) {
        let (la, lb) = (self.procs[a].queue.len(), self.procs[b].queue.len());
        let (hi, lo, lhi, llo) = if la >= lb {
            (a, b, la, lb)
        } else {
            (b, a, lb, la)
        };
        let total = lhi + llo;
        let keep = total.div_ceil(2);
        let moves = lhi - keep;
        if moves == 0 {
            return;
        }
        self.steal_successes += 1;
        self.emit(SimEventKind::StealSuccess, a, 1);
        let lo_old = self.procs[lo].queue.len();
        let mut moved = self.procs[hi].queue.split_off(lhi - moves);
        let moved_ids: Vec<u64> = if self.job_tracing {
            moved.iter().map(|t| t.id).collect()
        } else {
            Vec::new()
        };
        self.procs[lo].queue.append(&mut moved);
        self.tasks_migrated += moves as u64;
        self.emit_migration(lo, hi, moves as u32);
        for id in moved_ids {
            self.emit_job_migrate(id, lo, hi, 0.0);
        }
        self.on_load_changed(hi, lhi);
        if lo_old == 0 {
            let front = self.procs[lo].queue.front().copied().unwrap();
            self.schedule_completion(lo, front);
        }
        self.on_load_changed(lo, lo_old);
    }
}

/// Run one simulation with the seed recorded in the result.
pub fn run_seeded(cfg: &SimConfig, seed: u64) -> SimResult {
    let mut r = run(cfg, seed);
    r.seed = seed;
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RebalanceRate, StealPolicy, TransferTime};
    use loadsteal_queueing::mm1::{md1_mean_time_in_system, Mm1};
    use loadsteal_queueing::ServiceDistribution;

    fn base(n: usize, lambda: f64) -> SimConfig {
        let mut cfg = SimConfig::paper_default(n, lambda);
        cfg.horizon = 20_000.0;
        cfg.warmup = 2_000.0;
        cfg
    }

    #[test]
    fn single_queue_matches_mm1() {
        let mut cfg = base(1, 0.5);
        cfg.policy = StealPolicy::None;
        let r = run(&cfg, 1);
        let w = Mm1::new(0.5, 1.0).unwrap().mean_time_in_system();
        assert!(
            (r.mean_sojourn() - w).abs() < 0.1,
            "sim {} vs theory {w}",
            r.mean_sojourn()
        );
    }

    #[test]
    fn no_steal_tails_are_geometric() {
        let mut cfg = base(16, 0.6);
        cfg.policy = StealPolicy::None;
        let r = run(&cfg, 2);
        // s_i should be close to lambda^i.
        for i in 1..4 {
            let expect = 0.6f64.powi(i);
            let got = r.load_tails[i as usize];
            assert!((got - expect).abs() < 0.05, "s_{i}: sim {got} vs {expect}");
        }
    }

    #[test]
    fn deterministic_service_beats_exponential_without_stealing() {
        let mut cfg = base(1, 0.8);
        cfg.policy = StealPolicy::None;
        let exp = run(&cfg, 3).mean_sojourn();
        cfg.service = ServiceDistribution::unit_deterministic();
        let det = run(&cfg, 3).mean_sojourn();
        let w_md1 = md1_mean_time_in_system(0.8, 1.0);
        assert!(det < exp, "M/D/1 {det} should beat M/M/1 {exp}");
        assert!((det - w_md1).abs() < 0.25, "sim {det} vs P-K {w_md1}");
    }

    #[test]
    fn stealing_reduces_sojourn_time() {
        let mut cfg = base(64, 0.9);
        cfg.policy = StealPolicy::None;
        let none = run(&cfg, 4).mean_sojourn();
        cfg.policy = StealPolicy::simple_ws();
        let ws = run(&cfg, 4).mean_sojourn();
        assert!(
            ws < 0.6 * none,
            "work stealing should help substantially: {ws} vs {none}"
        );
    }

    #[test]
    fn task_conservation_holds() {
        let cfg = base(32, 0.8);
        let r = run(&cfg, 5);
        assert!(r.tasks_completed <= r.tasks_arrived);
        // In steady state nearly everything that arrived completes.
        let ratio = r.tasks_completed as f64 / r.tasks_arrived as f64;
        assert!(ratio > 0.99, "completion ratio {ratio}");
    }

    #[test]
    fn tails_start_at_one_and_decrease() {
        let cfg = base(32, 0.9);
        let r = run(&cfg, 6);
        assert!((r.load_tails[0] - 1.0).abs() < 1e-9);
        for w in r.load_tails.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn two_choices_beat_one_at_high_load() {
        let mut cfg = base(64, 0.95);
        cfg.policy = StealPolicy::OnEmpty {
            threshold: 2,
            choices: 1,
            batch: 1,
        };
        let one = run(&cfg, 7).mean_sojourn();
        cfg.policy = StealPolicy::OnEmpty {
            threshold: 2,
            choices: 2,
            batch: 1,
        };
        let two = run(&cfg, 7).mean_sojourn();
        assert!(two < one, "2 choices {two} should beat 1 choice {one}");
    }

    #[test]
    fn transfer_delay_slows_things_down() {
        let mut cfg = base(32, 0.8);
        cfg.policy = StealPolicy::OnEmpty {
            threshold: 4,
            choices: 1,
            batch: 1,
        };
        let instant = run(&cfg, 8).mean_sojourn();
        cfg.transfer = Some(TransferTime::exponential(0.25));
        let delayed = run(&cfg, 8).mean_sojourn();
        assert!(
            delayed > instant,
            "transfers {delayed} vs instant {instant}"
        );
    }

    #[test]
    fn preemptive_stealing_runs_and_helps() {
        let mut cfg = base(32, 0.9);
        cfg.policy = StealPolicy::None;
        let none = run(&cfg, 9).mean_sojourn();
        cfg.policy = StealPolicy::Preemptive {
            begin_at: 1,
            rel_threshold: 2,
        };
        let pre = run(&cfg, 9).mean_sojourn();
        assert!(pre < none);
    }

    #[test]
    fn repeated_attempts_beat_single_attempt() {
        let mut cfg = base(32, 0.9);
        cfg.policy = StealPolicy::OnEmpty {
            threshold: 2,
            choices: 1,
            batch: 1,
        };
        let single = run(&cfg, 10).mean_sojourn();
        cfg.policy = StealPolicy::Repeated {
            rate: 4.0,
            threshold: 2,
        };
        let repeated = run(&cfg, 10).mean_sojourn();
        assert!(repeated < single, "repeated {repeated} vs single {single}");
    }

    #[test]
    fn rebalancing_helps_at_high_load() {
        let mut cfg = base(32, 0.9);
        cfg.policy = StealPolicy::None;
        let none = run(&cfg, 11).mean_sojourn();
        cfg.policy = StealPolicy::Rebalance {
            rate: RebalanceRate::Constant(1.0),
        };
        let reb = run(&cfg, 11).mean_sojourn();
        assert!(reb < none, "rebalance {reb} vs none {none}");
    }

    #[test]
    fn batch_steals_run_with_high_threshold() {
        let mut cfg = base(32, 0.9);
        cfg.policy = StealPolicy::OnEmpty {
            threshold: 6,
            choices: 1,
            batch: 3,
        };
        let r = run(&cfg, 12);
        assert!(r.steal_successes > 0);
        assert!(r.tasks_migrated >= r.steal_successes * 3);
    }

    #[test]
    fn drained_mode_reports_makespan() {
        let mut cfg = base(16, 0.0);
        cfg.lambda = 0.0;
        cfg.run_until_drained = true;
        cfg.initial_load = 20;
        cfg.warmup = 0.0;
        cfg.policy = StealPolicy::simple_ws();
        let r = run(&cfg, 13);
        let makespan = r.makespan.expect("must drain");
        assert!(
            makespan > 15.0,
            "20 unit-mean tasks can't finish in {makespan}"
        );
        assert_eq!(r.tasks_completed, 16 * 20);
        assert_eq!(r.tasks_arrived, 16 * 20);
    }

    #[test]
    fn stealing_shortens_drain_time() {
        // The one-shot WS policy can leave the straggler untouched (an
        // idle processor that fails its single attempt never retries),
        // so use the repeated-attempt policy, which provably keeps
        // probing until the system drains.
        let mut cfg = base(16, 0.0);
        cfg.lambda = 0.0;
        cfg.run_until_drained = true;
        cfg.initial_load = 30;
        cfg.warmup = 0.0;
        cfg.policy = StealPolicy::None;
        let slow = run(&cfg, 14).makespan.unwrap();
        cfg.policy = StealPolicy::Repeated {
            rate: 2.0,
            threshold: 2,
        };
        let fast = run(&cfg, 14).makespan.unwrap();
        assert!(fast < slow, "steal {fast} vs none {slow}");
    }

    #[test]
    fn internal_arrivals_increase_load() {
        let mut cfg = base(16, 0.4);
        cfg.policy = StealPolicy::simple_ws();
        let quiet = run(&cfg, 15);
        cfg.internal_lambda = 0.3;
        let busy = run(&cfg, 15);
        assert!(busy.tasks_arrived > quiet.tasks_arrived);
        assert!(busy.mean_sojourn() > quiet.mean_sojourn());
    }

    #[test]
    fn heterogeneous_speeds_run_and_conserve() {
        use crate::config::SpeedProfile;
        let mut cfg = base(16, 0.8);
        cfg.speeds = SpeedProfile::Classes(vec![(0.5, 2.0), (0.5, 1.0)]);
        let r = run(&cfg, 16);
        let ratio = r.tasks_completed as f64 / r.tasks_arrived as f64;
        assert!(ratio > 0.99);
    }

    #[test]
    fn excluding_self_victim_also_works() {
        let mut cfg = base(8, 0.9);
        cfg.allow_self_victim = false;
        let r = run(&cfg, 17);
        assert!(r.steal_successes > 0);
    }

    #[test]
    fn erlang_service_runs() {
        let mut cfg = base(16, 0.8);
        cfg.service = ServiceDistribution::unit_erlang(10);
        let r = run(&cfg, 18);
        assert!(r.mean_sojourn() > 1.0);
    }

    #[test]
    fn snapshots_record_transient_tails() {
        let mut cfg = base(32, 0.8);
        cfg.horizon = 100.0;
        cfg.warmup = 0.0;
        cfg.snapshot_interval = Some(10.0);
        let r = run(&cfg, 20);
        assert_eq!(r.snapshots.len(), 10, "expected one snapshot per 10 s");
        // Starting empty, the early busy fraction is below the late one.
        let early = r.snapshots[0].1.get(1).copied().unwrap_or(0.0);
        let late = r.snapshots[9].1.get(1).copied().unwrap_or(0.0);
        assert!(early <= late + 0.2, "early {early} vs late {late}");
        for (t, tails) in &r.snapshots {
            assert!(*t > 0.0);
            assert!((tails[0] - 1.0).abs() < 1e-9);
            for w in tails.windows(2) {
                assert!(w[0] >= w[1] - 1e-12);
            }
        }
    }

    #[test]
    fn tail_samples_track_the_snapshot_grid() {
        use loadsteal_obs::{CollectingRecorder, Event as ObsEvent};
        let mut cfg = base(32, 0.8);
        cfg.horizon = 100.0;
        cfg.warmup = 0.0;
        cfg.snapshot_interval = Some(10.0);
        cfg.sample_tails = Some(10.0);
        let mut rec = CollectingRecorder::new();
        let r = run_recorded(&cfg, 20, &mut rec);
        let samples: Vec<(f64, [f64; 8], u32)> = rec
            .events()
            .iter()
            .filter_map(|ev| match *ev {
                ObsEvent::TailSample { t, tails, depth } => Some((t, tails, depth)),
                _ => None,
            })
            .collect();
        // Same grid convention as in-memory snapshots: one per 10 s,
        // and identical values at every shared instant.
        assert_eq!(samples.len(), r.snapshots.len());
        for ((st, tails, depth), (qt, snap)) in samples.iter().zip(&r.snapshots) {
            assert_eq!(st, qt);
            for i in 1..=TAIL_SAMPLE_DEPTH {
                let expect = snap.get(i).copied().unwrap_or(0.0);
                assert_eq!(tails[i - 1], expect, "s_{i} at t = {st}");
            }
            // Trailing zeros are elided from the meaningful depth.
            assert!((*depth as usize) <= TAIL_SAMPLE_DEPTH);
            for &s in &tails[*depth as usize..] {
                assert_eq!(s, 0.0);
            }
        }
        // Tails are valid distributions at every instant.
        for (_, tails, _) in &samples {
            for w in tails.windows(2) {
                assert!(w[0] >= w[1] - 1e-12);
            }
            assert!(tails[0] <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn tail_sampling_does_not_perturb_the_run() {
        use loadsteal_obs::CountingRecorder;
        let mut cfg = base(16, 0.8);
        cfg.horizon = 5_000.0;
        cfg.warmup = 500.0;
        let plain = run(&cfg, 24);
        cfg.sample_tails = Some(5.0);
        // Disabled recorder: the flag is inert.
        let silent = run(&cfg, 24);
        assert_eq!(plain.sojourn.mean(), silent.sojourn.mean());
        assert_eq!(plain.events_processed, silent.events_processed);
        // Live recorder: identical trajectory (sampling reads the load
        // histogram, never the RNG), one sample per grid point.
        let mut rec = CountingRecorder::new();
        let traced = run_recorded(&cfg, 24, &mut rec);
        assert_eq!(plain.sojourn.mean(), traced.sojourn.mean());
        assert_eq!(plain.events_processed, traced.events_processed);
        assert_eq!(rec.counts().tail_samples, 1_000);
        // Without the flag a live recorder sees no samples.
        cfg.sample_tails = None;
        let mut rec = CountingRecorder::new();
        let _ = run_recorded(&cfg, 24, &mut rec);
        assert_eq!(rec.counts().tail_samples, 0);
    }

    #[test]
    #[should_panic(expected = "invalid simulation config")]
    fn invalid_config_panics() {
        let mut cfg = base(0, 0.5);
        cfg.n = 0;
        let _ = run(&cfg, 1);
    }

    fn heartbeat_count(cfg: &SimConfig) -> u64 {
        use loadsteal_obs::CountingRecorder;
        let mut rec = CountingRecorder::new();
        let _ = run_recorded(cfg, 21, &mut rec);
        rec.counts().heartbeats
    }

    #[test]
    fn heartbeat_interval_is_configurable_and_zero_disables() {
        let mut cfg = base(8, 0.8);
        cfg.horizon = 5_000.0;
        cfg.warmup = 500.0;
        // Default cadence (1 << 16) fires rarely at this scale…
        let default_beats = heartbeat_count(&cfg);
        // …a tight cadence fires much more often…
        cfg.heartbeat_every = 1_000;
        let tight_beats = heartbeat_count(&cfg);
        assert!(
            tight_beats > default_beats,
            "tight {tight_beats} vs default {default_beats}"
        );
        assert!(tight_beats > 10);
        // …and 0 disables heartbeats entirely.
        cfg.heartbeat_every = 0;
        assert_eq!(heartbeat_count(&cfg), 0);
    }

    #[test]
    fn heartbeats_silent_without_recorder() {
        // A disabled recorder emits nothing regardless of cadence.
        let mut cfg = base(8, 0.8);
        cfg.horizon = 2_000.0;
        cfg.warmup = 200.0;
        cfg.heartbeat_every = 100;
        let r = run(&cfg, 22);
        assert!(r.events_processed > 100);
    }

    #[test]
    fn job_tracing_does_not_perturb_the_run() {
        use loadsteal_obs::CountingRecorder;
        let mut cfg = base(16, 0.8);
        cfg.horizon = 5_000.0;
        cfg.warmup = 500.0;
        let plain = run(&cfg, 24);
        cfg.trace_jobs = true;
        // With a disabled recorder the flag is inert.
        let silent = run(&cfg, 24);
        assert_eq!(plain.sojourn.mean(), silent.sojourn.mean());
        assert_eq!(plain.events_processed, silent.events_processed);
        // With a live recorder the trajectory is still identical — job
        // ids come from a counter, never the RNG.
        let mut rec = CountingRecorder::new();
        let traced = run_recorded(&cfg, 24, &mut rec);
        assert_eq!(plain.sojourn.mean(), traced.sojourn.mean());
        assert_eq!(plain.events_processed, traced.events_processed);
        let c = rec.counts();
        assert!(c.job_events > 0);
        // Without the flag a live recorder sees no job events.
        cfg.trace_jobs = false;
        let mut rec = CountingRecorder::new();
        let _ = run_recorded(&cfg, 24, &mut rec);
        assert_eq!(rec.counts().job_events, 0);
    }

    #[test]
    fn job_events_tell_a_consistent_story() {
        use loadsteal_obs::{CollectingRecorder, Event as ObsEvent, JobEventKind};
        use std::collections::HashMap;
        let mut cfg = base(8, 0.85);
        cfg.horizon = 1_000.0;
        cfg.warmup = 0.0;
        cfg.trace_jobs = true;
        let mut rec = CollectingRecorder::new();
        let result = run_recorded(&cfg, 25, &mut rec);
        let mut arrivals: HashMap<u64, f64> = HashMap::new();
        let mut starts = 0u64;
        let mut completions = 0u64;
        let mut migrated = 0u64;
        for ev in rec.events() {
            if let ObsEvent::Job { kind, t, job, .. } = *ev {
                match kind {
                    JobEventKind::Arrival => {
                        assert!(arrivals.insert(job, t).is_none(), "job {job} arrived twice");
                    }
                    JobEventKind::Migrate => migrated += 1,
                    JobEventKind::ServiceStart => {
                        starts += 1;
                        assert!(arrivals[&job] <= t, "service before arrival for job {job}");
                    }
                    JobEventKind::Completion => {
                        completions += 1;
                        assert!(
                            arrivals[&job] <= t,
                            "completion before arrival for job {job}"
                        );
                    }
                }
            }
        }
        assert_eq!(arrivals.len() as u64, result.tasks_arrived);
        assert_eq!(completions, result.tasks_completed);
        assert_eq!(migrated, result.tasks_migrated);
        // Every completion follows a service start; some jobs may still
        // be queued (arrived but unstarted) at the horizon.
        assert!(starts >= completions);
        assert!(starts <= result.tasks_arrived);
    }

    #[test]
    fn sojourn_digest_matches_online_stats() {
        let mut cfg = base(16, 0.8);
        cfg.horizon = 5_000.0;
        cfg.warmup = 500.0;
        // Off by default.
        assert!(run(&cfg, 23).sojourn_digest.is_none());
        cfg.sojourn_digest = true;
        let r = run(&cfg, 23);
        let d = r.sojourn_digest.as_ref().expect("digest requested");
        assert_eq!(d.count(), r.sojourn.count());
        assert!(
            (d.mean() - r.sojourn.mean()).abs() < 1e-9 * r.sojourn.mean(),
            "digest mean {} vs stats mean {}",
            d.mean(),
            r.sojourn.mean()
        );
        // Quantiles are ordered and bracket the mean plausibly.
        let p50 = d.quantile(0.5).unwrap();
        let p99 = d.quantile(0.99).unwrap();
        assert!(p50 < p99);
        assert!(p50 <= r.sojourn.mean() && r.sojourn.mean() <= p99);
        // The digest must not perturb the simulation itself.
        let plain = {
            let mut c = cfg.clone();
            c.sojourn_digest = false;
            run(&c, 23)
        };
        assert_eq!(plain.sojourn.mean(), r.sojourn.mean());
        assert_eq!(plain.events_processed, r.events_processed);
    }
}
