//! A calendar-queue future-event list (Brown 1988): the O(1)-amortized
//! replacement for the binary heap at simulator scale.
//!
//! # Design
//!
//! Time is divided into fixed-width *windows*; window `w` covers
//! `[w·width, (w+1)·width)`. A power-of-two array of buckets holds the
//! pending events, with window `w` hashing to bucket `w mod nbuckets` —
//! one simulated "year" spans `nbuckets` consecutive windows, and a
//! bucket holds every event whose window falls on its residue (this
//! year's, next year's, …). Buckets are unsorted: a push is an index
//! computation plus a `Vec::push`, and a pop linearly scans the
//! cursor's bucket for the minimum and `swap_remove`s it. With the
//! width tuned so a window holds O(1) events, both operations are
//! amortized O(1) — against the heap's O(log m) percolation with its
//! branch-mispredict-heavy comparisons. (A sorted-bucket variant was
//! measured and lost: at the ~3-entry bucket widths the tuner
//! maintains, a full scan plus `swap_remove` beats ordered insertion
//! and front removal, which pay memmoves on every operation.)
//!
//! # Exactness
//!
//! Pop order is **exactly** the pinned event total order
//! ([`event_order`]: time, then sequence), not merely approximately
//! time-sorted: each event's window index is computed once at push time
//! and stored beside it, so the boundary rounding of
//! `time → window` cannot disagree between push and pop; windows are
//! visited in increasing order; the window function is monotone (so
//! events in earlier windows strictly precede events in later ones);
//! and equal times share a window, where the bucket scan breaks the
//! tie by [`event_order`]. The differential suite in `loadsteal-verify`
//! leans on this: heap and calendar engines must produce bit-identical
//! traces.
//!
//! # Self-tuning
//!
//! The queue resizes itself from observed behaviour only — never from
//! wall-clock time or randomness, so runs stay deterministic. Pushes
//! that overfill the table (or pops that drain it) trigger a rebuild
//! sizing `nbuckets` to the live event count. A scan-cost trigger
//! (windows visited *plus bucket entries examined* per pop, averaged
//! over a maintenance period) rebuilds when the width is badly off,
//! with an emergency variant that fires after 64 pops when the cost is
//! catastrophic (the cold-start width can be orders of magnitude
//! wrong). The new width comes from the observed inter-dequeue
//! separation — `1.5 × (time popped during the period / pops)`, the
//! density of events where the cursor actually is (the multiplier was
//! swept; 1.5 minimizes end-to-end event cost) — falling back to the
//! pending-event spread only when no pop history exists yet.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::event::{event_order, Event};

/// A future-event list: the minimal queue interface the simulation
/// engine needs. Implementations must pop in exactly the pinned
/// [`event_order`] (time, then sequence number).
pub trait EventQueue {
    /// Create a queue expecting on the order of `hint` pending events.
    fn with_hint(hint: usize) -> Self;
    /// Insert an event.
    fn push(&mut self, ev: Event);
    /// Remove and return the minimum event under [`event_order`].
    fn pop(&mut self) -> Option<Event>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The original engine's future-event list, kept as the differential
/// oracle: `std`'s d-ary-heap-free, comparison-exact binary heap.
impl EventQueue for BinaryHeap<Event> {
    fn with_hint(hint: usize) -> Self {
        BinaryHeap::with_capacity(hint.saturating_mul(2).max(16))
    }

    #[inline]
    fn push(&mut self, ev: Event) {
        BinaryHeap::push(self, ev);
    }

    #[inline]
    fn pop(&mut self) -> Option<Event> {
        BinaryHeap::pop(self)
    }

    fn len(&self) -> usize {
        BinaryHeap::len(self)
    }
}

const MIN_BUCKETS: usize = 16;
const MAX_BUCKETS: usize = 1 << 22;
/// Rebuild when a maintenance period averages more than this many scan
/// steps (windows visited + entries examined) per pop. Equilibrium at
/// the ~1.5-events-per-window target costs ≈3, so 6 leaves headroom
/// against thrash.
const SCAN_COST_LIMIT: u64 = 6;
/// Emergency rebuild threshold: fires after only 64 pops, so a badly
/// wrong cold-start width is corrected before it can hurt.
const EMERGENCY_SCAN_FACTOR: u64 = 64;

/// The calendar queue. See the module docs for the design; use it
/// through [`EventQueue`].
#[derive(Debug)]
pub struct CalendarQueue {
    /// `buckets[w % nbuckets]` holds `(window, event)` pairs,
    /// unsorted; the window index is computed once at push time and
    /// stored with the event.
    buckets: Vec<Vec<(u64, Event)>>,
    /// `nbuckets - 1` (bucket count is a power of two).
    mask: usize,
    /// Window width in simulated time.
    width: f64,
    /// `1.0 / width`, so pushes multiply instead of divide.
    inv_width: f64,
    /// Pending event count.
    len: usize,
    /// The cursor: the window currently being drained.
    cur_window: u64,
    /// Maintenance counters since the last reset: windows visited plus
    /// bucket entries examined, and pops.
    scan_steps: u64,
    pops: u64,
    /// Time of the first pop of the current maintenance period.
    period_t0: f64,
    /// Time of the most recent pop.
    last_pop_t: f64,
}

impl CalendarQueue {
    /// An empty queue with default capacity.
    pub fn new() -> Self {
        Self::sized(MIN_BUCKETS, 1.0)
    }

    fn sized(nbuckets: usize, width: f64) -> Self {
        let nbuckets = nbuckets.next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        Self {
            buckets: vec![Vec::new(); nbuckets],
            mask: nbuckets - 1,
            width,
            inv_width: 1.0 / width,
            len: 0,
            cur_window: 0,
            scan_steps: 0,
            pops: 0,
            period_t0: 0.0,
            last_pop_t: 0.0,
        }
    }

    /// The window an event time falls into. Monotone in `t`; the result
    /// is stored with the event so push and pop can never disagree
    /// about a boundary.
    #[inline]
    fn window_of(&self, t: f64) -> u64 {
        // Non-negative finite times only (the engine schedules at
        // `now + dt`, `dt >= 0`); the saturating cast keeps even a
        // misuse safe, merely slow.
        (t * self.inv_width) as u64
    }

    /// Rebuild the table for the current contents: bucket count near
    /// the live event count, width matched to the observed event
    /// density at the cursor.
    fn rebuild(&mut self) {
        let nbuckets = self.len.next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        let mut events: Vec<Event> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            events.extend(b.drain(..).map(|(_, e)| e));
        }
        // Preferred width signal: the observed inter-dequeue separation,
        // aiming for ~1.5 pops per window. The pending-event *spread* is a
        // poor proxy (exponential interarrival tails stretch it far past
        // where the events are dense), so it is only the cold fallback,
        // and "no signal at all" (empty, or a pure tie storm) keeps the
        // old width.
        let hist_width = if self.pops >= 32 {
            let dt = self.last_pop_t - self.period_t0;
            (dt > 0.0 && dt.is_finite()).then(|| (dt / self.pops as f64 * 1.5).max(1e-300))
        } else {
            None
        };
        let width = hist_width.unwrap_or_else(|| {
            let (mut t_min, mut t_max) = (f64::INFINITY, f64::NEG_INFINITY);
            for e in &events {
                t_min = t_min.min(e.time);
                t_max = t_max.max(e.time);
            }
            if t_max > t_min && !events.is_empty() {
                ((t_max - t_min) / events.len() as f64 * 1.5).max(1e-300)
            } else {
                self.width
            }
        });
        *self = Self::sized(nbuckets, width);
        self.len = events.len();
        let mut min_window = u64::MAX;
        for e in events {
            let w = self.window_of(e.time);
            min_window = min_window.min(w);
            self.buckets[(w as usize) & self.mask].push((w, e));
        }
        if min_window != u64::MAX {
            self.cur_window = min_window;
        }
    }

    /// Sparse fallback: nothing in the next simulated year, so find the
    /// global minimum directly and jump the cursor to its window.
    fn pop_direct(&mut self) -> Option<Event> {
        let mut best: Option<(usize, usize)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (i, (_, e)) in bucket.iter().enumerate() {
                let better = match best {
                    None => true,
                    Some((bb, bi)) => event_order(e, &self.buckets[bb][bi].1) == Ordering::Less,
                };
                if better {
                    best = Some((b, i));
                }
            }
        }
        let (b, i) = best?;
        let (w, e) = self.buckets[b].swap_remove(i);
        self.cur_window = w;
        self.len -= 1;
        Some(e)
    }

    /// Run the maintenance trigger after a pop.
    #[inline]
    fn maintain(&mut self) {
        // Catastrophic scan cost (a badly wrong width) is corrected
        // after a short burst of evidence; ordinary drift waits for a
        // full maintenance period.
        let period = ((self.mask + 1) as u64).clamp(64, 8_192);
        let emergency = self.pops >= 64 && self.scan_steps > EMERGENCY_SCAN_FACTOR * self.pops;
        if emergency || self.pops >= period {
            let too_slow = self.scan_steps > SCAN_COST_LIMIT * self.pops;
            let too_empty = self.len < (self.mask + 1) / 8 && self.mask + 1 > MIN_BUCKETS;
            if emergency || too_slow || too_empty {
                self.rebuild();
            }
            self.scan_steps = 0;
            self.pops = 0;
        }
    }
}

impl Default for CalendarQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue for CalendarQueue {
    fn with_hint(hint: usize) -> Self {
        Self::sized(hint.max(MIN_BUCKETS), 1.0)
    }

    #[inline]
    fn push(&mut self, ev: Event) {
        let w = self.window_of(ev.time);
        // The engine never schedules into the past, but an
        // out-of-order push (oracle tests, reuse after a drain) is
        // handled by rewinding the cursor: scanning earlier windows
        // again is always safe, just slower.
        if w < self.cur_window {
            self.cur_window = w;
        }
        self.buckets[(w as usize) & self.mask].push((w, ev));
        self.len += 1;
        if self.len > 2 * (self.mask + 1) && self.mask + 1 < MAX_BUCKETS {
            self.rebuild();
        }
    }

    fn pop(&mut self) -> Option<Event> {
        if self.len == 0 {
            return None;
        }
        self.pops += 1;
        // Scan at most one simulated year window by window. No entry's
        // window is ever below the cursor (pushes rewind it), so the
        // first window that holds an entry holds the global minimum.
        let mut popped = None;
        for _ in 0..=self.mask {
            let b = (self.cur_window as usize) & self.mask;
            let bucket = &self.buckets[b];
            self.scan_steps += 1 + bucket.len() as u64;
            let mut min_idx: Option<usize> = None;
            for (i, (w, e)) in bucket.iter().enumerate() {
                if *w == self.cur_window {
                    let better = match min_idx {
                        None => true,
                        Some(mi) => event_order(e, &bucket[mi].1) == Ordering::Less,
                    };
                    if better {
                        min_idx = Some(i);
                    }
                }
            }
            if let Some(i) = min_idx {
                let (_, e) = self.buckets[b].swap_remove(i);
                self.len -= 1;
                popped = Some(e);
                break;
            }
            self.cur_window += 1;
        }
        let e = match popped {
            Some(e) => e,
            // Nothing in the next year: sparse fallback.
            None => self.pop_direct()?,
        };
        if self.pops == 1 {
            self.period_t0 = e.time;
        }
        self.last_pop_t = e.time;
        self.maintain();
        Some(e)
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(time: f64, seq: u64) -> Event {
        Event {
            time,
            seq,
            kind: EventKind::ExtArrival { proc: 0 },
        }
    }

    fn drain(q: &mut CalendarQueue) -> Vec<(f64, u64)> {
        std::iter::from_fn(|| q.pop())
            .map(|e| (e.time, e.seq))
            .collect()
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        for (i, t) in [3.0, 1.0, 2.0, 0.5, 7.25, 0.1].into_iter().enumerate() {
            q.push(ev(t, i as u64));
        }
        let times: Vec<f64> = drain(&mut q).into_iter().map(|(t, _)| t).collect();
        assert_eq!(times, vec![0.1, 0.5, 1.0, 2.0, 3.0, 7.25]);
    }

    #[test]
    fn ties_break_by_sequence() {
        let mut q = CalendarQueue::new();
        for s in [5u64, 2, 9, 7] {
            q.push(ev(1.0, s));
        }
        let seqs: Vec<u64> = drain(&mut q).into_iter().map(|(_, s)| s).collect();
        assert_eq!(seqs, vec![2, 5, 7, 9]);
    }

    #[test]
    fn empty_queue_pops_none() {
        let mut q = CalendarQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        q.push(ev(1.0, 1));
        assert_eq!(q.len(), 1);
        assert!(q.pop().is_some());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn survives_growth_and_sparse_jumps() {
        // Enough events to force several rebuilds, with times spread
        // over many years of the initial width.
        let mut q = CalendarQueue::new();
        let mut times: Vec<f64> = (0..5_000)
            .map(|i| ((i * 2_654_435_761_u64 % 1_000_003) as f64) * 0.37)
            .collect();
        for (i, &t) in times.iter().enumerate() {
            q.push(ev(t, i as u64));
        }
        times.sort_by(f64::total_cmp);
        let popped: Vec<f64> = drain(&mut q).into_iter().map(|(t, _)| t).collect();
        assert_eq!(popped, times);
    }

    #[test]
    fn interleaved_push_pop_respects_order() {
        // Advancing-time usage like the engine's: pop one, push a few
        // ahead of it.
        let mut q = CalendarQueue::new();
        let mut seq = 0u64;
        for p in 0..8 {
            q.push(ev(p as f64 * 0.1, seq));
            seq += 1;
        }
        let mut last = f64::NEG_INFINITY;
        for _ in 0..2_000 {
            let e = q.pop().unwrap();
            assert!(e.time >= last);
            last = e.time;
            q.push(ev(e.time + 0.731, seq));
            seq += 1;
        }
    }

    #[test]
    fn reuse_after_drain_rewinds_the_cursor() {
        let mut q = CalendarQueue::new();
        q.push(ev(1_000.0, 0));
        assert_eq!(q.pop().unwrap().time, 1_000.0);
        // The cursor sits at t = 1000's window; a fresh event earlier
        // than that must still come out.
        q.push(ev(1.0, 1));
        q.push(ev(2.0, 2));
        assert_eq!(q.pop().unwrap().time, 1.0);
        assert_eq!(q.pop().unwrap().time, 2.0);
    }

    #[test]
    fn shrink_trigger_keeps_contents() {
        let mut q = CalendarQueue::new();
        for i in 0..4_096u64 {
            q.push(ev(i as f64, i));
        }
        // Drain most of it so the occupancy trigger fires, then verify
        // the stragglers are intact and ordered.
        for i in 0..4_000u64 {
            assert_eq!(q.pop().unwrap().seq, i);
        }
        let rest: Vec<u64> = drain(&mut q).into_iter().map(|(_, s)| s).collect();
        assert_eq!(rest, (4_000u64..4_096).collect::<Vec<_>>());
    }

    #[test]
    fn zero_time_ties_with_large_future_events() {
        let mut q = CalendarQueue::new();
        q.push(ev(0.0, 3));
        q.push(ev(1.0e6, 1));
        q.push(ev(0.0, 2));
        let popped = drain(&mut q);
        assert_eq!(popped, vec![(0.0, 2), (0.0, 3), (1.0e6, 1)]);
    }
}
