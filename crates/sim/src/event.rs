//! The future-event list: a binary min-heap ordered by time with a
//! sequence number for deterministic tie-breaking.

use std::cmp::Ordering;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// External Poisson arrival at a processor.
    ExtArrival {
        /// Target processor.
        proc: u32,
    },
    /// Internal (spawned-while-busy) arrival; valid only if the
    /// processor's internal epoch still matches.
    IntArrival {
        /// Target processor.
        proc: u32,
        /// Epoch at scheduling time.
        epoch: u32,
    },
    /// The task at the head of a processor's queue finishes service.
    /// Never stale: steals and rebalances only move tail tasks.
    Completion {
        /// Serving processor.
        proc: u32,
    },
    /// A repeated-steal retry by an empty processor (Section 2.5);
    /// valid only if the probe epoch still matches.
    StealProbe {
        /// The thief.
        proc: u32,
        /// Epoch at scheduling time.
        epoch: u32,
    },
    /// A pairwise rebalance initiation (Section 3.4); valid only if the
    /// probe epoch still matches (the rate depends on the load).
    RebalanceTick {
        /// The initiating processor.
        proc: u32,
        /// Epoch at scheduling time.
        epoch: u32,
    },
    /// A stolen task reaches its thief after a transfer delay
    /// (Section 3.2). Carries the task inline.
    TransferArrive {
        /// The thief.
        proc: u32,
        /// Stable job identity of the task in flight.
        job: u64,
        /// Original arrival time of the task (sojourn accounting).
        arrived: f64,
        /// Remaining service requirement of the task.
        work: f64,
    },
}

/// A scheduled event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Firing time.
    pub time: f64,
    /// Monotone sequence number breaking time ties deterministically.
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    /// Reversed so that `BinaryHeap<Event>` pops the *earliest* event.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn ev(time: f64, seq: u64) -> Event {
        Event {
            time,
            seq,
            kind: EventKind::ExtArrival { proc: 0 },
        }
    }

    #[test]
    fn heap_pops_in_time_order() {
        let mut heap = BinaryHeap::new();
        for (i, t) in [3.0, 1.0, 2.0, 0.5].into_iter().enumerate() {
            heap.push(ev(t, i as u64));
        }
        let times: Vec<f64> = std::iter::from_fn(|| heap.pop()).map(|e| e.time).collect();
        assert_eq!(times, vec![0.5, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_break_by_sequence() {
        let mut heap = BinaryHeap::new();
        heap.push(ev(1.0, 5));
        heap.push(ev(1.0, 2));
        heap.push(ev(1.0, 9));
        let seqs: Vec<u64> = std::iter::from_fn(|| heap.pop()).map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 5, 9]);
    }
}
