//! The future-event list's currency: compact scheduled events and the
//! single pinned total order every engine must pop them in.

use std::cmp::Ordering;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// External Poisson arrival at a processor.
    ExtArrival {
        /// Target processor.
        proc: u32,
    },
    /// Internal (spawned-while-busy) arrival; valid only if the
    /// processor's internal epoch still matches.
    IntArrival {
        /// Target processor.
        proc: u32,
        /// Epoch at scheduling time.
        epoch: u32,
    },
    /// The task at the head of a processor's queue finishes service.
    /// Never stale: steals and rebalances only move tail tasks.
    Completion {
        /// Serving processor.
        proc: u32,
    },
    /// A repeated-steal retry by an empty processor (Section 2.5);
    /// valid only if the probe epoch still matches.
    StealProbe {
        /// The thief.
        proc: u32,
        /// Epoch at scheduling time.
        epoch: u32,
    },
    /// A pairwise rebalance initiation (Section 3.4); valid only if the
    /// probe epoch still matches (the rate depends on the load).
    RebalanceTick {
        /// The initiating processor.
        proc: u32,
        /// Epoch at scheduling time.
        epoch: u32,
    },
    /// A stolen task reaches its thief after a transfer delay
    /// (Section 3.2). The task's payload (job id, arrival time,
    /// remaining work) lives in the engine's transfer pool under
    /// `slot`, keeping every event at two words of payload.
    TransferArrive {
        /// The thief.
        proc: u32,
        /// Index into the engine's in-flight transfer pool.
        slot: u32,
    },
}

/// A scheduled event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Firing time.
    pub time: f64,
    /// Monotone sequence number breaking time ties deterministically.
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

/// The event total order: time first (`f64::total_cmp`), then the
/// monotone sequence number.
///
/// This is the **pinned contract** every future-event-list
/// implementation must honour. Simultaneous events (a deterministic
/// arrival landing at the instant a steal probe fires, transfer delays
/// of exactly zero, …) replay in scheduling order under any engine, so
/// heap and calendar runs of the same `(config, seed)` pop the same
/// event sequence and therefore make identical RNG draws and emit
/// bit-identical traces. Tie-breaking by anything engine-internal
/// (bucket index, heap arity, insertion address) would silently fork
/// the engines on the first simultaneous pair.
#[inline]
pub fn event_order(a: &Event, b: &Event) -> Ordering {
    a.time.total_cmp(&b.time).then_with(|| a.seq.cmp(&b.seq))
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    /// [`event_order`] reversed so that `BinaryHeap<Event>` pops the
    /// *earliest* event.
    fn cmp(&self, other: &Self) -> Ordering {
        event_order(other, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn ev(time: f64, seq: u64) -> Event {
        Event {
            time,
            seq,
            kind: EventKind::ExtArrival { proc: 0 },
        }
    }

    #[test]
    fn heap_pops_in_time_order() {
        let mut heap = BinaryHeap::new();
        for (i, t) in [3.0, 1.0, 2.0, 0.5].into_iter().enumerate() {
            heap.push(ev(t, i as u64));
        }
        let times: Vec<f64> = std::iter::from_fn(|| heap.pop()).map(|e| e.time).collect();
        assert_eq!(times, vec![0.5, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_break_by_sequence() {
        let mut heap = BinaryHeap::new();
        heap.push(ev(1.0, 5));
        heap.push(ev(1.0, 2));
        heap.push(ev(1.0, 9));
        let seqs: Vec<u64> = std::iter::from_fn(|| heap.pop()).map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 5, 9]);
    }

    #[test]
    fn event_order_is_time_then_sequence() {
        assert_eq!(event_order(&ev(1.0, 9), &ev(2.0, 0)), Ordering::Less);
        assert_eq!(event_order(&ev(1.0, 2), &ev(1.0, 5)), Ordering::Less);
        assert_eq!(event_order(&ev(1.0, 5), &ev(1.0, 5)), Ordering::Equal);
        assert_eq!(event_order(&ev(3.0, 0), &ev(1.0, 9)), Ordering::Greater);
    }

    #[test]
    fn heap_order_delegates_to_event_order() {
        // `Ord` must stay the exact reverse of the shared comparator —
        // a drift here would let heap and calendar engines disagree.
        let cases = [
            (ev(1.0, 0), ev(2.0, 1)),
            (ev(1.0, 3), ev(1.0, 4)),
            (ev(5.0, 7), ev(5.0, 7)),
            (ev(0.0, 1), ev(0.0, 0)),
        ];
        for (a, b) in cases {
            assert_eq!(a.cmp(&b), event_order(&b, &a));
        }
    }

    #[test]
    fn events_stay_two_words_of_payload() {
        // The calendar queue's bucket density (and the heap's percolation
        // cost) depends on the event staying compact: 8 (time) + 8 (seq)
        // + 12 (kind) rounded to alignment.
        assert!(std::mem::size_of::<Event>() <= 32);
    }
}
