//! Measurement collection: per-task sojourn times, steal counters, and a
//! time-weighted load histogram for comparing against the mean-field
//! tails `s_i`.

use loadsteal_obs::Digest;
use loadsteal_queueing::OnlineStats;

/// Time-weighted histogram of processor loads.
///
/// Maintains `count[l]` = number of processors currently holding `l`
/// tasks and integrates each count over post-warmup time, so that
/// `fraction(l)` estimates the stationary `p_l` and [`Self::tails`]
/// estimates the paper's `s_i`.
#[derive(Debug, Clone)]
pub struct LoadHistogram {
    warmup: f64,
    bins: Vec<Bin>,
    end_time: f64,
}

/// One load level's occupancy state. Kept together (not parallel
/// arrays) because transitions touch two *adjacent* levels: one struct
/// line usually covers both.
#[derive(Debug, Clone, Copy)]
struct Bin {
    /// Processors currently at this load.
    count: u64,
    /// Post-warmup time integral of `count`.
    integral: f64,
    /// Last time this bin's integral was settled.
    last: f64,
}

impl LoadHistogram {
    /// Create a histogram for `n` processors all starting at load
    /// `initial`, measuring from `warmup` onwards.
    pub fn new(n: usize, initial: usize, warmup: f64) -> Self {
        let mut bins = vec![
            Bin {
                count: 0,
                integral: 0.0,
                last: warmup,
            };
            (initial + 1).max(8)
        ];
        bins[initial].count = n as u64;
        Self {
            warmup,
            bins,
            end_time: warmup,
        }
    }

    fn ensure_len(&mut self, load: usize) {
        if load >= self.bins.len() {
            // New bins have held count 0 since the warmup boundary.
            self.bins.resize(
                load + 1,
                Bin {
                    count: 0,
                    integral: 0.0,
                    last: self.warmup,
                },
            );
        }
    }

    #[inline]
    fn settle(bin: &mut Bin, warmup: f64, t: f64) {
        if t > warmup {
            let since = if bin.last > warmup { bin.last } else { warmup };
            bin.integral += bin.count as f64 * (t - since);
        }
        bin.last = t;
    }

    /// Record one processor moving from load `from` to load `to` at
    /// time `t`.
    #[inline]
    pub fn transition(&mut self, from: usize, to: usize, t: f64) {
        if from == to {
            return;
        }
        self.ensure_len(from.max(to));
        let w = self.warmup;
        let b = &mut self.bins[from];
        Self::settle(b, w, t);
        debug_assert!(b.count > 0, "histogram underflow at load {from}");
        // A `from` bin at zero means the caller double-reported a
        // transition. That is a bug (caught above in debug builds), but
        // in release it must not wrap the counter to 2^64 and poison
        // every later integral — saturate instead.
        b.count = b.count.saturating_sub(1);
        let b = &mut self.bins[to];
        Self::settle(b, w, t);
        b.count += 1;
        if t > self.end_time {
            self.end_time = t;
        }
    }

    /// Close the measurement window at time `t`.
    pub fn finish(&mut self, t: f64) {
        let w = self.warmup;
        for bin in &mut self.bins {
            Self::settle(bin, w, t);
        }
        self.end_time = self.end_time.max(t);
    }

    /// Measured span (post-warmup time covered).
    pub fn span(&self) -> f64 {
        (self.end_time - self.warmup).max(0.0)
    }

    /// Time-averaged number of processors at each load.
    pub fn mean_counts(&self) -> Vec<f64> {
        let span = self.span();
        if span == 0.0 {
            return vec![0.0; self.bins.len()];
        }
        self.bins.iter().map(|b| b.integral / span).collect()
    }

    /// Instantaneous tail fractions `s_i` from the current counts (used
    /// for transient snapshots; no time averaging).
    pub fn instant_tails(&self, n: usize) -> Vec<f64> {
        let mut acc = 0u64;
        let mut tails = vec![0.0; self.bins.len() + 1];
        for (l, b) in self.bins.iter().enumerate().rev() {
            acc += b.count;
            tails[l] = acc as f64 / n as f64;
        }
        tails
    }

    /// Time-averaged tail fractions `s_i = fraction of processors with
    /// load ≥ i`, given the total processor count `n`.
    pub fn tails(&self, n: usize) -> Vec<f64> {
        let means = self.mean_counts();
        let mut acc = 0.0;
        let mut tails = vec![0.0; means.len() + 1];
        for (l, &m) in means.iter().enumerate().rev() {
            acc += m;
            tails[l] = acc / n as f64;
        }
        tails
    }
}

/// Counters and statistics from a single simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Sojourn time (arrival → completion) of post-warmup completions.
    pub sojourn: OnlineStats,
    /// Quantile digest of the same sojourn times, collected when
    /// [`crate::SimConfig::sojourn_digest`] is set (`None` otherwise).
    pub sojourn_digest: Option<Digest>,
    /// Total tasks that arrived (including pre-loaded ones).
    pub tasks_arrived: u64,
    /// Total tasks completed.
    pub tasks_completed: u64,
    /// Steal attempts (including failed ones and rebalance initiations).
    pub steal_attempts: u64,
    /// Steals that moved at least one task.
    pub steal_successes: u64,
    /// Tasks moved between processors by steals/rebalances.
    pub tasks_migrated: u64,
    /// Discrete events processed by the engine.
    pub events_processed: u64,
    /// Wall-clock duration of the run in milliseconds.
    pub wall_ms: f64,
    /// Time-averaged tail fractions `s_i` (post-warmup).
    pub load_tails: Vec<f64>,
    /// Instantaneous tail snapshots `(t, s)` when
    /// `snapshot_interval` was set.
    pub snapshots: Vec<(f64, Vec<f64>)>,
    /// Time at which the run ended (horizon, or drain time).
    pub end_time: f64,
    /// Drain time when `run_until_drained` was set.
    pub makespan: Option<f64>,
    /// Seed that produced this run.
    pub seed: u64,
}

impl SimResult {
    /// Mean sojourn time of measured tasks.
    pub fn mean_sojourn(&self) -> f64 {
        self.sojourn.mean()
    }

    /// Fraction of steal attempts that succeeded (0 if none were made).
    pub fn steal_success_rate(&self) -> f64 {
        if self.steal_attempts == 0 {
            0.0
        } else {
            self.steal_successes as f64 / self.steal_attempts as f64
        }
    }

    /// Engine throughput in events per wall-clock second (0 when the
    /// run was too fast to time).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.events_processed as f64 / (self.wall_ms / 1e3)
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_tracks_constant_state() {
        let mut h = LoadHistogram::new(4, 0, 0.0);
        h.finish(10.0);
        let means = h.mean_counts();
        assert!((means[0] - 4.0).abs() < 1e-12);
        let tails = h.tails(4);
        assert!((tails[0] - 1.0).abs() < 1e-12);
        assert_eq!(tails[1], 0.0);
    }

    #[test]
    fn histogram_integrates_transitions() {
        let mut h = LoadHistogram::new(2, 0, 0.0);
        h.transition(0, 1, 5.0); // one proc at load 1 for the last half
        h.finish(10.0);
        let tails = h.tails(2);
        // s_1: one of two processors loaded for 5 of 10 seconds = 0.25.
        assert!((tails[1] - 0.25).abs() < 1e-12, "{tails:?}");
        assert!((tails[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn warmup_period_is_excluded() {
        let mut h = LoadHistogram::new(1, 0, 10.0);
        h.transition(0, 3, 2.0); // pre-warmup: loads still tracked
        h.finish(20.0);
        let tails = h.tails(1);
        // Load 3 held for the whole measured window.
        assert!((tails[3] - 1.0).abs() < 1e-12, "{tails:?}");
        assert!((h.span() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn tails_are_non_increasing() {
        let mut h = LoadHistogram::new(3, 0, 0.0);
        h.transition(0, 1, 1.0);
        h.transition(0, 2, 2.0);
        h.transition(2, 1, 4.0);
        h.finish(8.0);
        let tails = h.tails(3);
        for w in tails.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "{tails:?}");
        }
    }

    #[test]
    fn histogram_grows_for_large_loads() {
        let mut h = LoadHistogram::new(1, 0, 0.0);
        h.transition(0, 100, 1.0);
        h.finish(2.0);
        assert!(h.tails(1)[100] > 0.0);
    }

    /// Release-build behaviour of a double-reported transition: the
    /// drained bin saturates at zero instead of wrapping to 2^64 and
    /// poisoning every subsequent time integral.
    #[test]
    #[cfg(not(debug_assertions))]
    fn underflow_saturates_in_release() {
        let mut h = LoadHistogram::new(1, 0, 0.0);
        h.transition(0, 1, 1.0);
        // Bogus second report of the same departure: load-0 bin is empty.
        h.transition(0, 1, 2.0);
        h.finish(10.0);
        let means = h.mean_counts();
        // A wrapped counter would make mean_counts[0] astronomically
        // large; saturation keeps it at zero.
        assert_eq!(means[0], 0.0, "{means:?}");
        assert!(means[1] <= 2.0 + 1e-12, "{means:?}");
    }

    /// Debug-build twin of `underflow_saturates_in_release`: the same
    /// misuse is caught loudly by the debug assertion.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "histogram underflow")]
    fn underflow_panics_in_debug() {
        let mut h = LoadHistogram::new(1, 0, 0.0);
        h.transition(0, 1, 1.0);
        h.transition(0, 1, 2.0);
    }

    fn result_with_steals(attempts: u64, successes: u64) -> SimResult {
        SimResult {
            sojourn: OnlineStats::new(),
            sojourn_digest: None,
            tasks_arrived: 0,
            tasks_completed: 0,
            steal_attempts: attempts,
            steal_successes: successes,
            tasks_migrated: 0,
            events_processed: 0,
            wall_ms: 0.0,
            load_tails: Vec::new(),
            snapshots: Vec::new(),
            end_time: 0.0,
            makespan: None,
            seed: 0,
        }
    }

    #[test]
    fn steal_success_rate_divides_successes_by_attempts() {
        assert_eq!(result_with_steals(8, 2).steal_success_rate(), 0.25);
        assert_eq!(result_with_steals(5, 5).steal_success_rate(), 1.0);
    }

    #[test]
    fn steal_success_rate_with_no_attempts_is_zero() {
        let r = result_with_steals(0, 0);
        assert_eq!(r.steal_success_rate(), 0.0);
        assert!(r.steal_success_rate().is_finite());
    }

    #[test]
    fn events_per_sec_handles_untimed_runs() {
        let mut r = result_with_steals(0, 0);
        assert_eq!(r.events_per_sec(), 0.0);
        r.events_processed = 500;
        r.wall_ms = 250.0;
        assert_eq!(r.events_per_sec(), 2000.0);
    }
}
