//! Hierarchical span profiler: thread-local span stacks, monotonic
//! clocks, and per-span aggregates (call count, total/self time, and
//! duration quantiles through [`Digest`]).
//!
//! The profiler is a process-wide singleton gated by one relaxed
//! [`AtomicBool`]: when disabled (the default) a span site costs a
//! single atomic load and a branch, which keeps the instrumented hot
//! loops inside the ≤2% overhead budget enforced by the bench gate.
//! When enabled, every [`span`] pushes a frame onto a thread-local
//! stack; dropping the returned [`SpanGuard`] pops the frame, charges
//! the elapsed time to the span's aggregate (keyed by the full
//! `parent;child` path), and adds the duration to the parent's child
//! time so self time is always `total − children`.
//!
//! Worker threads (the replication pool is `std::thread::scope`-based)
//! merge their local aggregates into a global profile when the thread
//! exits; the calling thread merges explicitly via [`flush_thread`],
//! which [`snapshot`] does for you. Individual span instances are kept
//! — capped at [`MAX_INSTANCES`] with an overflow counter — so the
//! profile can be exported as Chrome trace-event JSON
//! ([`ProfileReport::chrome_trace`], loadable in `chrome://tracing` or
//! Perfetto) or folded-stack lines ([`ProfileReport::folded`], ready
//! for `inferno` / `flamegraph.pl`).

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::JsonBuf;
use crate::registry::Registry;
use crate::sketch::Digest;

/// Upper bound on retained span *instances* (for Chrome traces) across
/// the whole process. Aggregates are exact regardless; once the cap is
/// hit further instances are counted in
/// [`ProfileReport::dropped_instances`] instead of stored.
pub const MAX_INSTANCES: usize = 200_000;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether the profiler is currently recording. One relaxed load —
/// this is the only cost a span site pays when profiling is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the profiler on or off process-wide. Spans opened while
/// enabled still record on drop after a disable.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide monotonic epoch all span timestamps are relative
/// to (established by the first span recorded).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> f64 {
    epoch().elapsed().as_secs_f64() * 1e6
}

/// Intern a dynamic span name, returning a `'static` string. The pool
/// only grows — callers are expected to produce a bounded set of names
/// (command names, verify check names), not per-event strings.
fn intern(name: String) -> &'static str {
    static POOL: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut pool = POOL.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(s) = pool.get(name.as_str()) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.into_boxed_str());
    pool.insert(leaked);
    leaked
}

// ---------------------------------------------------------------------
// Thread-local state.

struct Frame {
    /// Interned full path `root;…;name`.
    path: &'static str,
    name: &'static str,
    start_us: f64,
    child_us: f64,
}

#[derive(Default)]
struct LocalAgg {
    count: u64,
    total_us: f64,
    self_us: f64,
    durations: Digest,
}

impl LocalAgg {
    fn merge(&mut self, other: &LocalAgg) {
        self.count += other.count;
        self.total_us += other.total_us;
        self.self_us += other.self_us;
        self.durations.merge(&other.durations);
    }
}

struct ThreadState {
    tid: u32,
    /// OS thread name at first span, if any (`exec-worker-<i>` for the
    /// pool's workers) — carried into the per-thread profile view.
    name: Option<String>,
    stack: Vec<Frame>,
    agg: BTreeMap<&'static str, LocalAgg>,
    /// Memo of `(parent_path, name) → full path` so the global intern
    /// lock is only taken once per distinct path per thread.
    paths: BTreeMap<(&'static str, &'static str), &'static str>,
    instances: Vec<SpanInstance>,
    dropped: u64,
}

impl ThreadState {
    fn new() -> Self {
        let name = std::thread::current().name().map(str::to_owned);
        let mut g = global().lock().unwrap_or_else(|p| p.into_inner());
        let tid = g.next_tid;
        g.next_tid += 1;
        Self {
            tid,
            name,
            stack: Vec::new(),
            agg: BTreeMap::new(),
            paths: BTreeMap::new(),
            instances: Vec::new(),
            dropped: 0,
        }
    }
}

/// TLS cell. Completed data is merged into the global profile eagerly
/// whenever the thread's outermost span closes (see [`exit_current`]);
/// the `Drop` impl is only a backstop for threads that die with spans
/// still open. Eager merging matters because `std::thread::scope` can
/// return *before* its workers' TLS destructors have run, so a joiner
/// snapshotting right after a scope would otherwise race the merge.
struct TlsSlot(Option<ThreadState>);

impl Drop for TlsSlot {
    fn drop(&mut self) {
        if let Some(state) = self.0.take() {
            merge_into_global(state);
        }
    }
}

thread_local! {
    static TLS: RefCell<TlsSlot> = const { RefCell::new(TlsSlot(None)) };
}

// ---------------------------------------------------------------------
// Global merged profile.

/// One thread's merged aggregates inside the global profile, keyed by
/// the profiler tid so re-flushes from the same thread accumulate.
#[derive(Default)]
struct ThreadAgg {
    name: Option<String>,
    agg: BTreeMap<&'static str, LocalAgg>,
}

struct GlobalProfile {
    agg: BTreeMap<&'static str, LocalAgg>,
    threads: BTreeMap<u32, ThreadAgg>,
    instances: Vec<SpanInstance>,
    dropped: u64,
    next_tid: u32,
}

fn global() -> &'static Mutex<GlobalProfile> {
    static GLOBAL: Mutex<GlobalProfile> = Mutex::new(GlobalProfile {
        agg: BTreeMap::new(),
        threads: BTreeMap::new(),
        instances: Vec::new(),
        dropped: 0,
        next_tid: 0,
    });
    &GLOBAL
}

fn merge_into_global(state: ThreadState) {
    let mut g = global().lock().unwrap_or_else(|p| p.into_inner());
    let per_thread = g.threads.entry(state.tid).or_default();
    if per_thread.name.is_none() {
        per_thread.name = state.name;
    }
    for (path, la) in &state.agg {
        per_thread.agg.entry(path).or_default().merge(la);
    }
    for (path, la) in &state.agg {
        g.agg.entry(path).or_default().merge(la);
    }
    let room = MAX_INSTANCES.saturating_sub(g.instances.len());
    let take = state.instances.len().min(room);
    let overflow = (state.instances.len() - take) as u64;
    g.instances.extend(state.instances.into_iter().take(take));
    g.dropped += state.dropped + overflow;
}

// ---------------------------------------------------------------------
// The span API.

/// RAII guard returned by [`span`]; records the span on drop. Inert
/// (and nearly free) when the profiler is disabled.
#[must_use = "a span measures the scope it is alive for"]
#[derive(Debug)]
pub struct SpanGuard {
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            exit_current();
        }
    }
}

/// Open a span named `name` under the innermost open span of this
/// thread. The span closes when the guard drops.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: false };
    }
    enter(name);
    SpanGuard { active: true }
}

/// [`span`] for dynamically built names (command names, check names).
/// The name is interned into a process-lifetime pool, so call this
/// with a bounded set of distinct names only.
pub fn span_dyn(name: String) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: false };
    }
    span(intern(name))
}

fn enter(name: &'static str) {
    let _ = TLS.try_with(|slot| {
        let mut slot = slot.borrow_mut();
        let state = slot.0.get_or_insert_with(ThreadState::new);
        let parent = state.stack.last().map(|f| f.path).unwrap_or("");
        let path = *state.paths.entry((parent, name)).or_insert_with(|| {
            if parent.is_empty() {
                name
            } else {
                intern(format!("{parent};{name}"))
            }
        });
        state.stack.push(Frame {
            path,
            name,
            start_us: now_us(),
            child_us: 0.0,
        });
    });
}

fn exit_current() {
    let _ = TLS.try_with(|slot| {
        let mut slot = slot.borrow_mut();
        let Some(state) = slot.0.as_mut() else {
            return;
        };
        let Some(frame) = state.stack.pop() else {
            return;
        };
        let dur = (now_us() - frame.start_us).max(0.0);
        if let Some(parent) = state.stack.last_mut() {
            parent.child_us += dur;
        }
        let self_us = (dur - frame.child_us).max(0.0);
        let agg = state.agg.entry(frame.path).or_default();
        agg.count += 1;
        agg.total_us += dur;
        agg.self_us += self_us;
        agg.durations.record(dur);
        if state.instances.len() < MAX_INSTANCES {
            state.instances.push(SpanInstance {
                name: frame.name,
                tid: state.tid,
                start_us: frame.start_us,
                dur_us: dur,
            });
        } else {
            state.dropped += 1;
        }
        // The outermost span just closed: publish this thread's data
        // now. Scoped worker threads may be observed (joined) before
        // their TLS destructors run, so merging on drop alone would
        // lose completed work in a post-scope snapshot.
        if state.stack.is_empty() {
            let flushed = ThreadState {
                tid: state.tid,
                name: state.name.clone(),
                stack: Vec::new(),
                agg: std::mem::take(&mut state.agg),
                paths: BTreeMap::new(),
                instances: std::mem::take(&mut state.instances),
                dropped: std::mem::take(&mut state.dropped),
            };
            merge_into_global(flushed);
        }
    });
}

/// Merge this thread's span data into the global profile. Open spans
/// stay on the thread's stack and keep accumulating. Worker threads do
/// this automatically on exit; the main thread calls it (via
/// [`snapshot`]) before reporting.
pub fn flush_thread() {
    let _ = TLS.try_with(|slot| {
        let mut slot = slot.borrow_mut();
        let Some(state) = slot.0.as_mut() else {
            return;
        };
        // Move the completed data out; keep the thread identity, path
        // memo, and any still-open frames in place.
        let flushed = ThreadState {
            tid: state.tid,
            name: state.name.clone(),
            stack: Vec::new(),
            agg: std::mem::take(&mut state.agg),
            paths: BTreeMap::new(),
            instances: std::mem::take(&mut state.instances),
            dropped: std::mem::take(&mut state.dropped),
        };
        merge_into_global(flushed);
    });
}

/// Clear all recorded span data (global and this thread's local
/// state). Test-oriented; thread ids keep incrementing.
pub fn reset() {
    let _ = TLS.try_with(|slot| {
        slot.borrow_mut().0 = None;
    });
    let mut g = global().lock().unwrap_or_else(|p| p.into_inner());
    g.agg.clear();
    g.threads.clear();
    g.instances.clear();
    g.dropped = 0;
}

/// Flush the current thread and return a merged copy of everything
/// recorded so far. Does not reset.
pub fn snapshot() -> ProfileReport {
    flush_thread();
    let g = global().lock().unwrap_or_else(|p| p.into_inner());
    let to_aggregates = |agg: &BTreeMap<&'static str, LocalAgg>| -> Vec<SpanAggregate> {
        agg.iter()
            .map(|(path, la)| SpanAggregate {
                path: (*path).to_owned(),
                count: la.count,
                total_us: la.total_us,
                self_us: la.self_us,
                durations: la.durations.clone(),
            })
            .collect()
    };
    let spans = to_aggregates(&g.agg);
    let thread_spans = g
        .threads
        .iter()
        .map(|(tid, t)| ThreadProfile {
            tid: *tid,
            name: t.name.clone().unwrap_or_else(|| format!("thread-{tid}")),
            spans: to_aggregates(&t.agg),
        })
        .collect();
    let mut instances = g.instances.clone();
    instances.sort_by(|a, b| {
        (a.tid, a.start_us)
            .partial_cmp(&(b.tid, b.start_us))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    ProfileReport {
        spans,
        thread_spans,
        instances,
        dropped_instances: g.dropped,
    }
}

// ---------------------------------------------------------------------
// Report types and exports.

/// Aggregate statistics for one span path.
#[derive(Debug, Clone)]
pub struct SpanAggregate {
    /// Full `parent;child` path (semicolon-separated, folded-stack
    /// convention).
    pub path: String,
    /// Number of completed spans on this path.
    pub count: u64,
    /// Total wall time, microseconds.
    pub total_us: f64,
    /// Self time (total minus time spent in child spans), microseconds.
    pub self_us: f64,
    /// Quantile sketch of individual span durations, microseconds.
    pub durations: Digest,
}

impl SpanAggregate {
    /// Leaf name (the path segment after the last `;`).
    pub fn name(&self) -> &str {
        self.path.rsplit(';').next().unwrap_or(&self.path)
    }

    /// Median span duration in microseconds (0 when empty).
    pub fn p50_us(&self) -> f64 {
        self.durations.quantile(0.5).unwrap_or(0.0)
    }

    /// 99th-percentile span duration in microseconds (0 when empty).
    pub fn p99_us(&self) -> f64 {
        self.durations.quantile(0.99).unwrap_or(0.0)
    }

    /// The NDJSON summary record for this aggregate.
    pub fn to_record(&self) -> SpanRecord {
        SpanRecord {
            path: self.path.clone(),
            count: self.count,
            total_us: self.total_us,
            self_us: self.self_us,
            p50_us: self.p50_us(),
            p99_us: self.p99_us(),
        }
    }
}

/// One completed span occurrence (for Chrome trace export).
#[derive(Debug, Clone, Copy)]
pub struct SpanInstance {
    /// Leaf span name.
    pub name: &'static str,
    /// Small per-thread id assigned in first-span order.
    pub tid: u32,
    /// Start timestamp, microseconds since the profiler epoch.
    pub start_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
}

/// One thread's slice of the profile: the same per-path aggregates,
/// restricted to spans that closed on that thread. With concurrent
/// worker threads, the *global* self-time sum exceeds the process
/// wall clock (every busy thread contributes wall time in parallel);
/// the per-thread view is what compares meaningfully against wall.
#[derive(Debug, Clone, Default)]
pub struct ThreadProfile {
    /// Profiler-assigned thread id (first-span order, matches
    /// [`SpanInstance::tid`]).
    pub tid: u32,
    /// OS thread name at first span (`exec-worker-<i>` for pool
    /// workers), or `thread-<tid>` when unnamed.
    pub name: String,
    /// Per-path aggregates for this thread, sorted by path.
    pub spans: Vec<SpanAggregate>,
}

impl ThreadProfile {
    /// Sum of self time over this thread's span paths, microseconds.
    pub fn self_us(&self) -> f64 {
        self.spans.iter().map(|s| s.self_us).sum()
    }

    /// Completed span count on this thread.
    pub fn count(&self) -> u64 {
        self.spans.iter().map(|s| s.count).sum()
    }

    /// The path with the most self time on this thread, if any.
    pub fn hottest(&self) -> Option<&SpanAggregate> {
        self.spans
            .iter()
            .max_by(|a, b| a.self_us.total_cmp(&b.self_us))
    }
}

/// A merged snapshot of the profiler: aggregates, retained instances,
/// and the overflow count.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Per-path aggregates, sorted by path.
    pub spans: Vec<SpanAggregate>,
    /// The same aggregates split by recording thread, sorted by tid.
    pub thread_spans: Vec<ThreadProfile>,
    /// Retained span instances (capped at [`MAX_INSTANCES`]), sorted
    /// by thread then start time.
    pub instances: Vec<SpanInstance>,
    /// Instances dropped once the cap was reached.
    pub dropped_instances: u64,
}

impl ProfileReport {
    /// Sum of self time over every span path, microseconds. With a
    /// root span wrapping the whole command on a single thread this
    /// equals the profiled wall time; with worker threads it is the
    /// *CPU* time across all of them and can legitimately exceed wall
    /// (see [`ThreadProfile`] for the per-thread decomposition).
    pub fn total_self_us(&self) -> f64 {
        self.spans.iter().map(|s| s.self_us).sum()
    }

    /// Render as Chrome trace-event JSON: an array of complete-event
    /// objects (`"ph":"X"`) with microsecond `ts`/`dur`, loadable in
    /// `chrome://tracing` and Perfetto.
    pub fn chrome_trace(&self) -> String {
        let pid = std::process::id() as u64;
        let mut j = JsonBuf::new();
        j.begin_arr();
        for i in &self.instances {
            j.begin_obj()
                .field_str("name", i.name)
                .field_str("cat", "loadsteal")
                .field_str("ph", "X")
                .field_f64("ts", i.start_us)
                .field_f64("dur", i.dur_us)
                .field_u64("pid", pid)
                .field_u64("tid", u64::from(i.tid));
            j.end_obj();
        }
        j.end_arr();
        j.finish()
    }

    /// Render as folded-stack lines (`root;child self_us` per path),
    /// the input format of `inferno` / `flamegraph.pl`.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            let weight = s.self_us.round().max(0.0) as u64;
            out.push_str(&s.path);
            out.push(' ');
            out.push_str(&weight.to_string());
            out.push('\n');
        }
        out
    }

    /// The NDJSON summary records, one per aggregate.
    pub fn to_records(&self) -> Vec<SpanRecord> {
        self.spans.iter().map(SpanAggregate::to_record).collect()
    }
}

/// Publish per-span aggregates into a metrics [`Registry`] so they
/// flow through the metrics document and the Prometheus exposition:
/// `span.<path>.calls` (counter), `span.<path>.self_us` (gauge), and
/// `span.<path>.us` (duration sketch → quantile summary).
pub fn export_to_registry(reg: &Registry, report: &ProfileReport) {
    for a in &report.spans {
        reg.counter(&format!("span.{}.calls", a.path)).add(a.count);
        reg.gauge(&format!("span.{}.self_us", a.path))
            .set(a.self_us);
        reg.sketch(&format!("span.{}.us", a.path))
            .merge_from(&a.durations);
    }
}

// ---------------------------------------------------------------------
// The wire record.

/// One `{"ev":"span",…}` NDJSON line: the summary of a span path,
/// appended to traces when profiling is on and parsed back by the
/// trace reader.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Full semicolon-separated span path.
    pub path: String,
    /// Completed span count.
    pub count: u64,
    /// Total microseconds.
    pub total_us: f64,
    /// Self microseconds.
    pub self_us: f64,
    /// Median duration, microseconds.
    pub p50_us: f64,
    /// 99th-percentile duration, microseconds.
    pub p99_us: f64,
}

impl SpanRecord {
    /// Serialize as one NDJSON object (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj()
            .field_str("ev", "span")
            .field_str("path", &self.path)
            .field_u64("count", self.count)
            .field_f64("total_us", self.total_us)
            .field_f64("self_us", self.self_us)
            .field_f64("p50_us", self.p50_us)
            .field_f64("p99_us", self.p99_us);
        j.end_obj();
        j.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    /// The profiler is process-global; tests serialize on this.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static TEST_LOCK: Mutex<()> = Mutex::new(());
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn spin_us(us: u64) {
        let t = Instant::now();
        while t.elapsed().as_micros() < u128::from(us) {
            std::hint::black_box(0u64);
        }
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _l = lock();
        set_enabled(false);
        reset();
        {
            let _a = span("outer");
            let _b = span("inner");
        }
        let r = snapshot();
        assert!(r.spans.is_empty());
        assert!(r.instances.is_empty());
    }

    #[test]
    fn hierarchy_splits_self_and_total_time() {
        let _l = lock();
        set_enabled(true);
        reset();
        {
            let _a = span("outer");
            spin_us(200);
            {
                let _b = span("inner");
                spin_us(200);
            }
        }
        set_enabled(false);
        let r = snapshot();
        let outer = r.spans.iter().find(|s| s.path == "outer").unwrap();
        let inner = r.spans.iter().find(|s| s.path == "outer;inner").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(outer.total_us >= inner.total_us);
        assert!(
            outer.self_us <= outer.total_us - inner.total_us + 1.0,
            "self {} total {} inner {}",
            outer.self_us,
            outer.total_us,
            inner.total_us
        );
        assert!(inner.p50_us() > 0.0);
        // Self times sum to the root total (the wall-coverage property
        // the CLI report relies on).
        let sum: f64 = r.total_self_us();
        assert!(
            (sum - outer.total_us).abs() <= 0.05 * outer.total_us + 1.0,
            "sum {sum} vs root {}",
            outer.total_us
        );
    }

    #[test]
    fn worker_threads_merge_on_exit() {
        let _l = lock();
        set_enabled(true);
        reset();
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let _g = span("worker");
                    spin_us(50);
                });
            }
        });
        set_enabled(false);
        let r = snapshot();
        let w = r.spans.iter().find(|s| s.path == "worker").unwrap();
        assert_eq!(w.count, 2);
        let tids: BTreeSet<u32> = r.instances.iter().map(|i| i.tid).collect();
        assert_eq!(tids.len(), 2, "each worker gets its own tid");
    }

    #[test]
    fn per_thread_view_splits_self_time_by_worker() {
        let _l = lock();
        set_enabled(true);
        reset();
        for i in 0..2 {
            std::thread::Builder::new()
                .name(format!("hammer-{i}"))
                .spawn(|| {
                    let _g = span("worker");
                    spin_us(100);
                })
                .unwrap()
                .join()
                .unwrap();
        }
        set_enabled(false);
        let r = snapshot();
        let workers: Vec<_> = r
            .thread_spans
            .iter()
            .filter(|t| t.name.starts_with("hammer-"))
            .collect();
        assert_eq!(workers.len(), 2, "one per-thread profile per worker");
        for t in &workers {
            assert_eq!(t.count(), 1);
            assert!(t.self_us() > 0.0);
            assert_eq!(t.hottest().unwrap().path, "worker");
        }
        // The per-thread slices partition the global aggregate.
        let global_self: f64 = r
            .spans
            .iter()
            .filter(|s| s.path == "worker")
            .map(|s| s.self_us)
            .sum();
        let split: f64 = workers.iter().map(|t| t.self_us()).sum();
        assert!(
            (global_self - split).abs() < 1e-6,
            "global {global_self} vs per-thread sum {split}"
        );
    }

    #[test]
    fn chrome_trace_is_valid_json_with_complete_events() {
        let _l = lock();
        set_enabled(true);
        reset();
        {
            let _a = span("alpha");
            let _b = span("beta");
        }
        set_enabled(false);
        let r = snapshot();
        let doc = r.chrome_trace();
        let v = json::parse(&doc).expect("chrome trace parses");
        let json::JsonValue::Arr(events) = v else {
            panic!("top level is an array");
        };
        assert_eq!(events.len(), 2);
        for ev in &events {
            assert_eq!(ev.get("ph").and_then(|v| v.as_str()), Some("X"));
            assert!(ev.get("ts").and_then(|v| v.as_f64()).is_some());
            assert!(ev.get("dur").and_then(|v| v.as_f64()).is_some());
            assert!(ev.get("name").and_then(|v| v.as_str()).is_some());
        }
    }

    #[test]
    fn folded_lines_carry_the_full_path() {
        let _l = lock();
        set_enabled(true);
        reset();
        {
            let _a = span("outer");
            let _b = span("inner");
            spin_us(20);
        }
        set_enabled(false);
        let folded = snapshot().folded();
        assert!(folded.lines().any(|l| l.starts_with("outer;inner ")));
        for line in folded.lines() {
            let (_, weight) = line.rsplit_once(' ').unwrap();
            weight.parse::<u64>().expect("integer weight");
        }
    }

    #[test]
    fn span_record_round_trips_through_json() {
        let rec = SpanRecord {
            path: "cli.simulate;sim.run".into(),
            count: 3,
            total_us: 1500.5,
            self_us: 200.25,
            p50_us: 480.0,
            p99_us: 700.0,
        };
        let line = rec.to_json_line();
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("ev").and_then(|v| v.as_str()), Some("span"));
        assert_eq!(
            v.get("path").and_then(|v| v.as_str()),
            Some("cli.simulate;sim.run")
        );
        assert_eq!(v.get("count").and_then(|v| v.as_u64()), Some(3));
    }

    #[test]
    fn registry_export_lands_counters_and_sketches() {
        let _l = lock();
        set_enabled(true);
        reset();
        {
            let _a = span("phase");
            spin_us(30);
        }
        set_enabled(false);
        let report = snapshot();
        let reg = Registry::new();
        export_to_registry(&reg, &report);
        assert_eq!(reg.counter("span.phase.calls").get(), 1);
        assert!(reg.gauge("span.phase.self_us").get() > 0.0);
        assert_eq!(reg.sketch("span.phase.us").snapshot().count(), 1);
    }

    #[test]
    fn dyn_names_intern_to_stable_paths() {
        let _l = lock();
        set_enabled(true);
        reset();
        for _ in 0..3 {
            let _g = span_dyn(format!("verify.{}", "zoo"));
        }
        set_enabled(false);
        let r = snapshot();
        let agg = r.spans.iter().find(|s| s.path == "verify.zoo").unwrap();
        assert_eq!(agg.count, 3);
    }
}
