//! Sharded, contention-free event recording for multi-threaded
//! producers.
//!
//! The [`SharedRecorder`](crate::SharedRecorder) that PR 9's executor
//! traces through serializes every worker on one mutex — the telemetry
//! path contends on exactly the parallelism it is supposed to observe.
//! [`ShardedRecorder`] removes that lock from the hot path: each
//! producer thread owns one *shard* (a bounded buffer behind a mutex
//! that only that producer and the drainer ever touch, on its own
//! cache line), events are stamped with a per-shard sequence number as
//! they land, and a drainer merge-sorts the shards into a single
//! stream for the wrapped [`Recorder`].
//!
//! # Ordering contract (`loadsteal.trace.v1`)
//!
//! The locked path timestamps *inside* the sink lock, which makes the
//! emitted stream globally monotone in `t` by construction. The
//! sharded path relaxes that to the contract documented in
//! `docs/trace-schema.md` and `docs/telemetry.md`:
//!
//! * **per-shard order is preserved** — events from one shard appear
//!   in the merged stream exactly in the order they were recorded
//!   (the per-shard sequence number is the final sort key);
//! * **the merged stream is sorted by `t`** — provided each producer
//!   stamps non-decreasing timestamps into its own shard, which every
//!   emitter in this codebase does (timestamps come from a monotone
//!   clock read by the recording thread);
//! * **the event multiset is exactly what was recorded** — shards are
//!   bounded, but a full shard spills its buffer to an overflow list
//!   (one extra lock acquisition per `capacity` events, amortized)
//!   instead of dropping; nothing is ever lost.
//!
//! Events without their own timestamp (heartbeats, replication
//! summaries) inherit the last timestamp seen on their shard, so they
//! keep their recorded position through the merge.
//!
//! Draining while producers are still recording is allowed — per-shard
//! order still holds across drains, and each drained batch is
//! internally sorted — but only a drain after producers quiesce (the
//! terminal [`ShardedRecorder::drain`] / [`ShardedRecorder::finish`])
//! guarantees the *whole* stream is globally sorted.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::event::Event;
use crate::recorder::Recorder;

/// A multi-producer event sink addressed by shard index: the trait the
/// executor pool traces through without knowing the wrapped recorder's
/// concrete type. [`ShardedRecorder`] is the canonical implementation.
pub trait ShardSink: Send + Sync {
    /// Cheap enabled gate (cached at construction; never takes a
    /// lock). Producers skip event construction entirely when false.
    fn enabled(&self) -> bool;
    /// Record one event on `shard` (indices wrap modulo
    /// [`ShardSink::shards`]). Never blocks on another shard.
    fn record(&self, shard: usize, ev: &Event);
    /// Number of shards. Producers that need exclusive shards (one per
    /// thread) check this at setup time.
    fn shards(&self) -> usize;
}

/// One buffered event: merge key plus provenance.
#[derive(Clone, Copy)]
struct Stamped {
    /// Sort key: the event's own `t`, or the shard's last seen `t` for
    /// timestampless events.
    key: f64,
    /// Originating shard (first tiebreak).
    shard: u32,
    /// Per-shard sequence number (final tiebreak — preserves per-shard
    /// recording order even on equal timestamps).
    seq: u64,
    ev: Event,
}

/// A shard's mutable state. The mutex around it is only ever contended
/// by its owning producer and the drainer — never by another producer.
struct ShardBuf {
    seq: u64,
    last_key: f64,
    events: Vec<Stamped>,
}

/// Cache-line-aligned so adjacent shards' locks never share a line
/// (the whole point is that worker A recording never invalidates
/// worker B's cache).
#[repr(align(128))]
struct Shard {
    buf: Mutex<ShardBuf>,
}

/// A sharded front-end for any [`Recorder`]: lock-free *between*
/// producers on the hot path, merge-sorted back into one globally
/// ordered stream on drain. See the module docs for the ordering
/// contract.
pub struct ShardedRecorder<R> {
    shards: Vec<Shard>,
    /// Overflow from full shards (appended wholesale, one lock per
    /// `capacity` events).
    spill: Mutex<Vec<Stamped>>,
    inner: Mutex<R>,
    enabled: bool,
    capacity: usize,
    recorded: AtomicU64,
    spilled: AtomicU64,
}

impl<R: Recorder + Send> ShardedRecorder<R> {
    /// Default per-shard buffer capacity: large enough that even a
    /// shard recording at full simulator rate spills rarely, small
    /// enough (~56 bytes/event) that idle shards cost little.
    pub const DEFAULT_CAPACITY: usize = 8 * 1024;

    /// Wrap `inner` behind `shards` independent producer buffers of
    /// `capacity` events each. The enabled gate is cached from
    /// `inner.enabled()` here, exactly like
    /// [`SharedRecorder`](crate::SharedRecorder) does.
    pub fn new(inner: R, shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let capacity = capacity.max(16);
        let enabled = inner.enabled();
        ShardedRecorder {
            shards: (0..shards)
                .map(|_| Shard {
                    buf: Mutex::new(ShardBuf {
                        seq: 0,
                        last_key: f64::NEG_INFINITY,
                        events: Vec::new(),
                    }),
                })
                .collect(),
            spill: Mutex::new(Vec::new()),
            inner: Mutex::new(inner),
            enabled,
            capacity,
            recorded: AtomicU64::new(0),
            spilled: AtomicU64::new(0),
        }
    }

    /// Wrap with [`Self::DEFAULT_CAPACITY`].
    pub fn with_shards(inner: R, shards: usize) -> Self {
        Self::new(inner, shards, Self::DEFAULT_CAPACITY)
    }

    /// Run `f` against the wrapped recorder (e.g. to write a trace
    /// header before producers start). Takes the inner lock — not for
    /// the hot path.
    pub fn with<T>(&self, f: impl FnOnce(&mut R) -> T) -> T {
        f(&mut self.inner.lock().unwrap())
    }

    /// Events recorded so far (including already-drained ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Events that overflowed a full shard into the spill list. None
    /// of them were lost — this counts amortized slow-path traffic.
    pub fn spilled(&self) -> u64 {
        self.spilled.load(Ordering::Relaxed)
    }

    /// Events currently buffered (undraned). Approximate under
    /// concurrent recording.
    pub fn pending(&self) -> usize {
        let mut n = self.spill.lock().unwrap().len();
        for s in &self.shards {
            n += s.buf.lock().unwrap().events.len();
        }
        n
    }

    /// Collect everything buffered, merge-sort by `(t, shard, seq)`,
    /// and forward to the wrapped recorder in that order. Returns how
    /// many events were forwarded. Safe to call concurrently with
    /// producers (see the module docs for what ordering survives).
    pub fn drain(&self) -> u64 {
        // Inner lock first: concurrent drains serialize here, so two
        // drained batches never interleave their forwarding.
        let mut inner = self.inner.lock().unwrap();
        let mut all = Vec::new();
        for s in &self.shards {
            let mut b = s.buf.lock().unwrap();
            all.append(&mut b.events);
        }
        // The spill list is swept strictly AFTER the shards: a
        // producer moves a full buffer into the spill before recording
        // that shard's next event, so any event captured from a shard
        // buffer above already has every spilled predecessor in the
        // spill list by now — sweeping in the other order can forward
        // a later event one batch ahead of its predecessors and break
        // the per-shard ordering contract.
        all.extend(std::mem::take(&mut *self.spill.lock().unwrap()));
        all.sort_by(|a, b| {
            a.key
                .total_cmp(&b.key)
                .then(a.shard.cmp(&b.shard))
                .then(a.seq.cmp(&b.seq))
        });
        for st in &all {
            inner.record(&st.ev);
        }
        inner.flush();
        all.len() as u64
    }

    /// Terminal drain: forward everything still buffered and hand the
    /// wrapped recorder back.
    pub fn finish(self) -> R {
        self.drain();
        self.inner.into_inner().unwrap()
    }
}

impl<R: Recorder + Send> ShardSink for ShardedRecorder<R> {
    fn enabled(&self) -> bool {
        self.enabled
    }

    fn record(&self, shard: usize, ev: &Event) {
        if !self.enabled {
            return;
        }
        let idx = shard % self.shards.len();
        let s = &self.shards[idx];
        let mut b = s.buf.lock().unwrap();
        let key = match event_time(ev) {
            Some(t) => {
                b.last_key = t;
                t
            }
            None => b.last_key,
        };
        b.seq += 1;
        let stamped = Stamped {
            key,
            shard: idx as u32,
            seq: b.seq,
            ev: *ev,
        };
        b.events.push(stamped);
        self.recorded.fetch_add(1, Ordering::Relaxed);
        if b.events.len() >= self.capacity {
            let full = std::mem::replace(&mut b.events, Vec::with_capacity(self.capacity));
            // Release the shard before touching the shared spill list:
            // the producer pays one cross-shard lock per `capacity`
            // events, and the drainer never blocks this shard on it.
            drop(b);
            self.spilled.fetch_add(full.len() as u64, Ordering::Relaxed);
            self.spill.lock().unwrap().extend(full);
        }
    }

    fn shards(&self) -> usize {
        self.shards.len()
    }
}

/// The event's own timestamp, when it carries one. Used as the merge
/// key; timestampless events inherit their shard's last key.
pub fn event_time(ev: &Event) -> Option<f64> {
    match ev {
        Event::SolverStep { t, .. }
        | Event::SolverSteady { t, .. }
        | Event::Sim { t, .. }
        | Event::Job { t, .. }
        | Event::TailSample { t, .. }
        | Event::Heartbeat { t, .. } => Some(*t),
        Event::SolverDone { .. } | Event::ReplicateDone { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SimEventKind;
    use crate::recorder::CollectingRecorder;

    fn sim(t: f64, proc: u32) -> Event {
        Event::Sim {
            kind: SimEventKind::Arrival,
            t,
            proc,
            src: None,
            count: 1,
        }
    }

    #[test]
    fn merges_shards_into_time_order() {
        let rec = ShardedRecorder::new(CollectingRecorder::new(), 3, 64);
        // Interleave records across shards with increasing per-shard t.
        rec.record(0, &sim(0.1, 0));
        rec.record(1, &sim(0.05, 1));
        rec.record(2, &sim(0.2, 2));
        rec.record(0, &sim(0.3, 0));
        rec.record(1, &sim(0.15, 1));
        assert_eq!(rec.recorded(), 5);
        let inner = rec.finish();
        let ts: Vec<f64> = inner
            .events()
            .iter()
            .map(|e| match e {
                Event::Sim { t, .. } => *t,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ts, vec![0.05, 0.1, 0.15, 0.2, 0.3]);
    }

    #[test]
    fn equal_timestamps_tiebreak_by_shard_then_seq() {
        let rec = ShardedRecorder::new(CollectingRecorder::new(), 2, 64);
        rec.record(1, &sim(1.0, 10));
        rec.record(0, &sim(1.0, 20));
        rec.record(1, &sim(1.0, 11));
        let inner = rec.finish();
        let procs: Vec<u32> = inner
            .events()
            .iter()
            .map(|e| match e {
                Event::Sim { proc, .. } => *proc,
                _ => unreachable!(),
            })
            .collect();
        // Shard 0 first, then shard 1 in its recording order.
        assert_eq!(procs, vec![20, 10, 11]);
    }

    #[test]
    fn full_shard_spills_without_losing_events() {
        let rec = ShardedRecorder::new(CollectingRecorder::new(), 1, 16);
        for i in 0..100 {
            rec.record(0, &sim(i as f64, 0));
        }
        assert!(rec.spilled() >= 16, "spill path must have triggered");
        assert_eq!(rec.recorded(), 100);
        let inner = rec.finish();
        assert_eq!(inner.events().len(), 100);
        // And the merge restored global time order across spills.
        let mut last = f64::NEG_INFINITY;
        for e in inner.events() {
            if let Event::Sim { t, .. } = e {
                assert!(*t >= last);
                last = *t;
            }
        }
    }

    #[test]
    fn timestampless_events_inherit_shard_position() {
        let rec = ShardedRecorder::new(CollectingRecorder::new(), 2, 64);
        rec.record(0, &sim(1.0, 0));
        rec.record(
            0,
            &Event::ReplicateDone {
                seed: 7,
                wall_ms: 1.0,
                events: 1,
                events_per_sec: 1.0,
            },
        );
        rec.record(1, &sim(0.5, 1));
        rec.record(0, &sim(2.0, 0));
        let inner = rec.finish();
        let names: Vec<&str> = inner.events().iter().map(|e| e.name()).collect();
        // The summary keeps its slot right after t=1.0 on shard 0.
        assert_eq!(
            names,
            vec!["arrival", "arrival", "replicate_done", "arrival"]
        );
    }

    #[test]
    fn disabled_inner_disables_the_whole_pipeline() {
        let rec = ShardedRecorder::new(crate::recorder::NullRecorder, 4, 64);
        assert!(!ShardSink::enabled(&rec));
        rec.record(0, &sim(1.0, 0));
        assert_eq!(rec.recorded(), 0);
        assert_eq!(rec.pending(), 0);
    }

    #[test]
    fn drain_is_incremental() {
        let rec = ShardedRecorder::new(CollectingRecorder::new(), 2, 64);
        rec.record(0, &sim(1.0, 0));
        assert_eq!(rec.drain(), 1);
        rec.record(1, &sim(2.0, 1));
        assert_eq!(rec.drain(), 1);
        assert_eq!(rec.drain(), 0);
        let inner = rec.finish();
        assert_eq!(inner.events().len(), 2);
    }

    #[test]
    fn shard_indices_wrap() {
        let rec = ShardedRecorder::new(CollectingRecorder::new(), 2, 64);
        rec.record(7, &sim(1.0, 0)); // lands on shard 7 % 2 == 1
        assert_eq!(rec.shards(), 2);
        assert_eq!(rec.recorded(), 1);
    }
}
